#include "service/query_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "data/workload.h"
#include "lang/query.h"
#include "service/plan_cache.h"
#include "storage/fault.h"
#include "storage/wal.h"

namespace ccdb::service {
namespace {

/// A small box dataset as a constraint relation over (x, y).
Relation BoxRelation(size_t count, uint64_t seed) {
  WorkloadParams params;
  params.data_count = count;
  return BoxesToConstraintRelation(GenerateDataBoxes(seed, params));
}

/// The mixed read-only workload: per-script selection windows that shift
/// with `i`, a projection, and a small join of two selections.
std::vector<std::string> MakeScripts(size_t count) {
  std::vector<std::string> scripts;
  for (size_t i = 0; i < count; ++i) {
    const int lo = static_cast<int>((i * 157) % 2400);
    const int lo2 = static_cast<int>((i * 311 + 500) % 2400);
    switch (i % 3) {
      case 0:
        scripts.push_back("R0 = select x >= " + std::to_string(lo) +
                          ", x <= " + std::to_string(lo + 400) +
                          " from Boxes\n"
                          "R1 = project R0 on y");
        break;
      case 1:
        scripts.push_back("R0 = select y >= " + std::to_string(lo) +
                          ", y <= " + std::to_string(lo + 300) +
                          " from Boxes");
        break;
      default:
        scripts.push_back("R0 = select x >= " + std::to_string(lo) +
                          ", x <= " + std::to_string(lo + 250) +
                          " from Boxes\n"
                          "R1 = select y >= " + std::to_string(lo2) +
                          ", y <= " + std::to_string(lo2 + 250) +
                          " from Boxes\n"
                          "R2 = join R0 and R1");
        break;
    }
  }
  return scripts;
}

/// Serial reference: the same per-session script sequence run by the
/// plain single-threaded executor, steps accumulating like a session.
std::vector<std::string> SerialResults(const Relation& boxes,
                                       const std::vector<std::string>& seq) {
  Database db;
  EXPECT_TRUE(db.Create("Boxes", boxes).ok());
  std::vector<std::string> rendered;
  for (const std::string& script : seq) {
    auto last = lang::ExecuteScript(script, &db);
    EXPECT_TRUE(last.ok()) << last.status().ToString();
    auto rel = db.Get(*last);
    EXPECT_TRUE(rel.ok());
    rendered.push_back((*rel)->ToString());
  }
  return rendered;
}

void RunStress(size_t cache_capacity) {
  const Relation boxes = BoxRelation(150, 7);
  Database base;
  ASSERT_TRUE(base.Create("Boxes", boxes).ok());

  ServiceOptions options;
  options.num_workers = 4;
  options.max_queue_depth = 256;
  options.cache_capacity = cache_capacity;
  QueryService service(&base, options);

  const size_t kSessions = 4;
  const size_t kQueriesPerSession = 12;
  // Sessions share most scripts (so the cache can hit across sessions)
  // but start at different offsets.
  const std::vector<std::string> scripts = MakeScripts(16);

  std::vector<std::vector<std::string>> sequences(kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    for (size_t q = 0; q < kQueriesPerSession; ++q) {
      sequences[s].push_back(scripts[(s * 3 + q) % scripts.size()]);
    }
  }

  std::vector<std::vector<std::string>> got(kSessions);
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    clients.emplace_back([&, s] {
      SessionId id = service.OpenSession();
      for (const std::string& script : sequences[s]) {
        auto response = service.Execute(id, script);
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        got[s].push_back(response->relation.ToString());
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (size_t s = 0; s < kSessions; ++s) {
    std::vector<std::string> want = SerialResults(boxes, sequences[s]);
    ASSERT_EQ(got[s].size(), want.size());
    for (size_t q = 0; q < want.size(); ++q) {
      EXPECT_EQ(got[s][q], want[q])
          << "session " << s << " query " << q << " diverged from serial";
    }
  }

  ServiceMetrics m = service.Metrics();
  EXPECT_EQ(m.completed, kSessions * kQueriesPerSession);
  EXPECT_EQ(m.failed, 0u);
  EXPECT_EQ(m.rejected, 0u);
  if (cache_capacity > 0) {
    EXPECT_GT(m.cache_hits, 0u) << "shared scripts should hit the cache";
  } else {
    EXPECT_EQ(m.cache_hits + m.cache_misses, 0u);
  }
}

TEST(QueryServiceStressTest, ParallelMatchesSerialCacheOff) { RunStress(0); }

TEST(QueryServiceStressTest, ParallelMatchesSerialCacheOn) { RunStress(64); }

TEST(QueryServiceTest, QueueOverflowRejectsWithUnavailable) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(20, 3)).ok());
  ServiceOptions options;
  options.num_workers = 2;
  options.max_queue_depth = 2;
  options.start_paused = true;
  QueryService service(&base, options);
  SessionId id = service.OpenSession();

  auto f1 = service.Submit(id, "R0 = select x >= 0 from Boxes");
  auto f2 = service.Submit(id, "R0 = select x >= 1 from Boxes");
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  auto f3 = service.Submit(id, "R0 = select x >= 2 from Boxes");
  ASSERT_FALSE(f3.ok());
  EXPECT_EQ(f3.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(f3.status().retry_after_ms(), 0)
      << "a shed submission must carry a backoff hint";

  service.Resume();
  EXPECT_TRUE(f1->future.get().ok());
  EXPECT_TRUE(f2->future.get().ok());

  ServiceMetrics m = service.Metrics();
  EXPECT_EQ(m.submitted, 2u);
  EXPECT_EQ(m.rejected, 1u);
  EXPECT_EQ(m.sheds, 1u);
  EXPECT_EQ(m.queue_high_water, 2u);
}

TEST(QueryServiceTest, ShutdownCancelsQueuedQueriesWithTypedStatus) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(20, 3)).ok());
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 8;
  options.start_paused = true;
  QueryService service(&base, options);
  SessionId id = service.OpenSession();

  std::vector<std::future<Result<QueryResponse>>> futures;
  for (int i = 0; i < 3; ++i) {
    auto f = service.Submit(
        id, "R0 = select x >= " + std::to_string(i) + " from Boxes");
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(f->future));
  }

  // Queued-but-not-running work is cancelled, not silently dropped: every
  // caller's future resolves with a typed kCancelled.
  service.Shutdown();
  for (auto& f : futures) {
    auto response = f.get();
    ASSERT_FALSE(response.ok());
    EXPECT_EQ(response.status().code(), StatusCode::kCancelled)
        << response.status().ToString();
  }
  EXPECT_EQ(service.Metrics().cancels, 3u);

  auto after = service.Submit(id, "R0 = select x >= 9 from Boxes");
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
}

TEST(QueryServiceTest, CacheHitSkipsExecutionAndReplayRegistersSteps) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(30, 5)).ok());
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 16;
  QueryService service(&base, options);

  const std::string script =
      "R0 = select x >= 100, x <= 900 from Boxes\nR1 = project R0 on y";
  SessionId a = service.OpenSession();
  auto first = service.Execute(a, script);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);

  SessionId b = service.OpenSession();
  auto second = service.Execute(b, script);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->relation.ToString(), first->relation.ToString());

  // The hit replayed both steps into session b, so a follow-up referencing
  // the *intermediate* step works exactly as after real execution.
  auto followup = service.Execute(b, "R2 = project R0 on x");
  ASSERT_TRUE(followup.ok()) << followup.status().ToString();
}

TEST(QueryServiceTest, ReplacingInputRelationInvalidatesCache) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(30, 5)).ok());
  ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 16;
  QueryService service(&base, options);
  SessionId id = service.OpenSession();

  const std::string script = "R0 = select x >= 0 from Boxes";
  auto v1 = service.Execute(id, script);
  ASSERT_TRUE(v1.ok());
  EXPECT_FALSE(v1->cache_hit);
  auto v2 = service.Execute(id, script);
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE(v2->cache_hit);

  ASSERT_TRUE(service.ReplaceRelation("Boxes", BoxRelation(10, 11)).ok());
  auto v3 = service.Execute(id, script);
  ASSERT_TRUE(v3.ok());
  EXPECT_FALSE(v3->cache_hit) << "version bump must invalidate the entry";
  EXPECT_NE(v3->relation.ToString(), v2->relation.ToString());
}

TEST(QueryServiceTest, SessionStepsAreIsolatedAndUncached) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(30, 5)).ok());
  ServiceOptions options;
  options.num_workers = 2;
  options.cache_capacity = 16;
  QueryService service(&base, options);

  SessionId a = service.OpenSession();
  SessionId b = service.OpenSession();
  ASSERT_TRUE(
      service.Execute(a, "S0 = select x >= 0, x <= 500 from Boxes").ok());
  ASSERT_TRUE(
      service.Execute(b, "S0 = select x >= 2000, x <= 2900 from Boxes").ok());

  const uint64_t lookups_before =
      service.Metrics().cache_hits + service.Metrics().cache_misses;
  auto in_a = service.Execute(a, "S1 = project S0 on x");
  auto in_b = service.Execute(b, "S1 = project S0 on x");
  ASSERT_TRUE(in_a.ok());
  ASSERT_TRUE(in_b.ok());
  EXPECT_NE(in_a->relation.ToString(), in_b->relation.ToString())
      << "sessions must not see each other's steps";
  const uint64_t lookups_after =
      service.Metrics().cache_hits + service.Metrics().cache_misses;
  EXPECT_EQ(lookups_before, lookups_after)
      << "step-reading scripts must bypass the cache";

  // Step results are visible to the owning session's front-end reads only.
  EXPECT_TRUE(service.GetRelation(a, "S1").ok());
  auto names = service.VisibleNames(a);
  EXPECT_NE(std::find(names.begin(), names.end(), "S0"), names.end());
  ASSERT_TRUE(service.CloseSession(b).ok());
  EXPECT_FALSE(service.GetRelation(b, "S1").ok());
  EXPECT_EQ(service.Metrics().sessions, 1u);
}

TEST(QueryServiceTest, UnknownSessionAndBadScriptFail) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(10, 2)).ok());
  QueryService service(&base, {});
  auto bad_session = service.Submit(12345, "R0 = select x >= 0 from Boxes");
  EXPECT_EQ(bad_session.status().code(), StatusCode::kNotFound);

  SessionId id = service.OpenSession();
  auto bad_script = service.Execute(id, "R0 = frobnicate Boxes");
  ASSERT_FALSE(bad_script.ok());
  EXPECT_EQ(service.Metrics().failed, 1u);
}

TEST(ResultCacheTest, LruEvictionAndStats) {
  ResultCache cache(2);
  CachedResult value;
  value.final_step = "R0";
  value.steps.emplace_back("R0", Relation());
  cache.Insert("k1", value);
  cache.Insert("k2", value);

  EXPECT_NE(cache.Lookup("k1"), nullptr);  // k1 most recent now
  cache.Insert("k3", value);               // evicts k2
  EXPECT_EQ(cache.Lookup("k2"), nullptr);
  EXPECT_NE(cache.Lookup("k1"), nullptr);
  auto hit = cache.Lookup("k3");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->final_step, "R0");

  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  EXPECT_FALSE(cache.enabled());
  CachedResult value;
  cache.Insert("k", value);
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(LatencyRecorderTest, SummaryOverSamples) {
  LatencyRecorder recorder;
  EXPECT_EQ(recorder.Summarize().count, 0u);
  for (int i = 1; i <= 100; ++i) recorder.Record(static_cast<double>(i));
  LatencyRecorder::Summary s = recorder.Summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min_us, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_us, 50.5);
  EXPECT_NEAR(s.p50_us, 50.0, 1.0);
  EXPECT_NEAR(s.p99_us, 99.0, 1.0);
}

TEST(ServiceMetricsTest, ToStringMentionsEveryGroup) {
  ServiceMetrics m;
  m.submitted = 10;
  m.workers = 4;
  std::string text = m.ToString();
  EXPECT_NE(text.find("queries:"), std::string::npos);
  EXPECT_NE(text.find("cache:"), std::string::npos);
  EXPECT_NE(text.find("latency:"), std::string::npos);
  EXPECT_NE(text.find("storage:"), std::string::npos);
  EXPECT_NE(text.find("wal:"), std::string::npos);
}

TEST(ServiceMetricsTest, NearestRankPercentileIsPinned) {
  // The classic nearest-rank reference set: rank = ceil(fraction * N).
  const std::vector<double> samples = {15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(NearestRankPercentile(samples, 0.05), 15.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile(samples, 0.30), 20.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile(samples, 0.40), 20.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile(samples, 0.50), 35.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile(samples, 1.00), 50.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile({}, 0.50), 0.0);

  std::vector<double> one_to_hundred;
  for (int i = 1; i <= 100; ++i) one_to_hundred.push_back(i);
  EXPECT_DOUBLE_EQ(NearestRankPercentile(one_to_hundred, 0.50), 50.0);
  EXPECT_DOUBLE_EQ(NearestRankPercentile(one_to_hundred, 0.99), 99.0);
}

TEST(QueryServiceTest, ThrowingStatementFailsRequestNotService) {
  // The hook throws from inside the worker thread, mid-request — the
  // worker's exception barrier must fail that request and keep serving.
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(10, 2)).ok());
  ServiceOptions options;
  options.num_workers = 1;
  options.execution_hook = [](const std::string& script) {
    if (script.find("Trap") != std::string::npos) {
      throw std::runtime_error("deliberate test explosion");
    }
  };
  QueryService service(&base, options);
  SessionId id = service.OpenSession();

  auto boom = service.Execute(id, "R0 = select x >= 0 from Trap");
  ASSERT_FALSE(boom.ok());
  EXPECT_EQ(boom.status().code(), StatusCode::kInternal);
  EXPECT_NE(boom.status().ToString().find("uncaught exception"),
            std::string::npos)
      << boom.status().ToString();

  // The worker survived: the same service keeps serving.
  auto fine = service.Execute(id, "R0 = select x >= 0 from Boxes");
  EXPECT_TRUE(fine.ok()) << fine.status().ToString();
  EXPECT_EQ(service.Metrics().failed, 1u);
  EXPECT_EQ(service.Metrics().completed, 1u);
}

TEST(QueryServiceTest, DurableCatalogWritesSurviveReopen) {
  PageManager disk;
  PageId wal_root = kInvalidPageId;
  std::vector<std::string> names;
  std::string kept_text;
  {
    auto store = DurableStore::Create(&disk);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    wal_root = (*store)->wal_root();
    Database base;
    ServiceOptions options;
    options.num_workers = 1;
    options.store = store->get();
    QueryService service(&base, options);

    ASSERT_TRUE(service.CreateRelation("Kept", BoxRelation(12, 3)).ok());
    ASSERT_TRUE(service.CreateRelation("Doomed", BoxRelation(6, 4)).ok());
    ASSERT_TRUE(service.ReplaceRelation("Kept", BoxRelation(20, 5)).ok());
    ASSERT_TRUE(service.DropRelation("Doomed").ok());

    // The service owns its catalog: read the committed state back through
    // it, not through the seed `base` (which it never mutates).
    Database committed = service.CloneBase();
    names = committed.Names();
    kept_text = (*committed.Get("Kept"))->ToString();
    EXPECT_TRUE(base.Names().empty()) << "service writes must not touch base";

    ServiceMetrics m = service.Metrics();
    EXPECT_EQ(m.wal_batches, 4u);
    EXPECT_GT(m.wal_bytes, 0u);
    EXPECT_GE(m.wal_fsyncs, 4u);
  }
  // "Reboot": reopen the store from the disk and the WAL root alone.
  auto reopened = DurableStore::Open(&disk, wal_root);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto loaded = (*reopened)->LoadCatalog();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Names(), names);
  ASSERT_TRUE(loaded->Get("Kept").ok());
  EXPECT_EQ((*loaded->Get("Kept"))->ToString(), kept_text);
  EXPECT_FALSE(loaded->Has("Doomed"));
}

TEST(QueryServiceTest, FailedCommitRollsBackCatalogInMemory) {
  // Regression: a WAL-failed commit must leave the published catalog —
  // epoch AND per-name version counters — exactly as it found them. The
  // candidate snapshot (with its bumped counters) is discarded unpublished;
  // nothing needs un-doing. The version probe is the result cache: its
  // keys embed relation versions, so a counter that moved would turn the
  // re-run below into a miss.
  FaultInjectingPager disk;
  auto store = DurableStore::Create(&disk);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  Database base;
  ServiceOptions options;
  options.num_workers = 1;
  options.store = store->get();
  QueryService service(&base, options);
  EXPECT_EQ(service.CatalogEpoch(), 1u);

  disk.Arm(FaultInjectingPager::Fault::kCrash, 0);
  Status failed = service.CreateRelation("Boxes", BoxRelation(8, 6));
  ASSERT_FALSE(failed.ok());
  EXPECT_FALSE(service.CloneBase().Has("Boxes"))
      << "unacknowledged create must roll back";
  EXPECT_EQ(service.CatalogEpoch(), 1u) << "failed commit must not publish";

  disk.ClearFault();
  ASSERT_TRUE(service.CreateRelation("Boxes", BoxRelation(8, 6)).ok());
  EXPECT_TRUE(service.CloneBase().Has("Boxes"));
  EXPECT_EQ(service.CatalogEpoch(), 2u);

  // Warm the result cache under the committed version of Boxes.
  SessionId id = service.OpenSession();
  ASSERT_TRUE(service.Execute(id, "R0 = select x >= 0 from Boxes").ok());
  const uint64_t hits_before = service.Metrics().cache_hits;

  // Failed replace keeps the committed relation...
  auto kept = service.GetRelation(id, "Boxes");
  ASSERT_TRUE(kept.ok());
  const std::string before = kept->ToString();
  disk.Arm(FaultInjectingPager::Fault::kFail, 0);
  ASSERT_FALSE(service.ReplaceRelation("Boxes", BoxRelation(3, 7)).ok());
  auto after = service.GetRelation(id, "Boxes");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->ToString(), before);
  EXPECT_EQ(service.CatalogEpoch(), 2u);

  // ...and restores its version counter exactly: the cached entry keyed
  // on the pre-commit version is still valid, so the re-run is a hit.
  ASSERT_TRUE(service.Execute(id, "R0 = select x >= 0 from Boxes").ok());
  EXPECT_EQ(service.Metrics().cache_hits, hits_before + 1);

  // Failed drop keeps it too (kFail is transient: no ClearFault needed).
  disk.Arm(FaultInjectingPager::Fault::kFail, 0);
  ASSERT_FALSE(service.DropRelation("Boxes").ok());
  EXPECT_TRUE(service.CloneBase().Has("Boxes"));
  EXPECT_EQ(service.CatalogEpoch(), 2u);
}

TEST(QueryServiceTest, CheckpointRequiresStoreAndCounts) {
  Database plain;
  QueryService storeless(&plain, {});
  EXPECT_EQ(storeless.Checkpoint().code(), StatusCode::kUnavailable);

  PageManager disk;
  auto store = DurableStore::Create(&disk);
  ASSERT_TRUE(store.ok());
  Database base;
  ServiceOptions options;
  options.store = store->get();
  QueryService service(&base, options);
  ASSERT_TRUE(service.CreateRelation("Boxes", BoxRelation(5, 8)).ok());
  ASSERT_TRUE(service.Checkpoint().ok());
  EXPECT_EQ(service.Metrics().wal_checkpoints, 1u);
}

TEST(ResultCacheTest, ConcurrentHitsShareOneEntry) {
  ResultCache cache(8);
  CachedResult value;
  value.final_step = "R0";
  value.steps.emplace_back("R0", BoxRelation(200, 9));
  cache.Insert("big", value);

  constexpr size_t kThreads = 8;
  constexpr size_t kLookups = 200;
  std::vector<std::shared_ptr<const CachedResult>> first(kThreads);
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (size_t i = 0; i < kLookups; ++i) {
        auto hit = cache.Lookup("big");
        ASSERT_NE(hit, nullptr);
        ASSERT_EQ(hit->steps.size(), 1u);
        if (i == 0) first[t] = hit;
      }
    });
  }
  for (std::thread& t : readers) t.join();

  // Every thread got the same shared entry — no per-hit deep copies.
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(first[t].get(), first[0].get());
  }
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, kThreads * kLookups);
  EXPECT_EQ(stats.misses, 0u);
}

}  // namespace
}  // namespace ccdb::service
