#include "core/advisor.h"

#include <gtest/gtest.h>

#include "data/workload.h"
#include "lang/data_parser.h"

namespace ccdb::cqa {
namespace {

Rect Domain() { return Rect::Make2D(-10, 3110, -10, 3110); }

std::vector<BoxQuery> ConjunctiveWorkload(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<BoxQuery> out;
  for (size_t i = 0; i < n; ++i) {
    double x = static_cast<double>(rng.UniformInt(0, 3000));
    double y = static_cast<double>(rng.UniformInt(0, 3000));
    out.push_back(BoxQuery::Both(x, x + 80, y, y + 80));
  }
  return out;
}

std::vector<BoxQuery> SingleAttrWorkload(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<BoxQuery> out;
  for (size_t i = 0; i < n; ++i) {
    double lo = static_cast<double>(rng.UniformInt(0, 3000));
    out.push_back(i % 2 ? BoxQuery::XOnly(lo, lo + 60)
                        : BoxQuery::YOnly(lo, lo + 60));
  }
  return out;
}

TEST(AdvisorTest, RecommendsJointForConjunctiveWorkload) {
  Relation rel = BoxesToConstraintRelation(GenerateRectangles(3000, 5));
  auto report =
      AdviseIndexing(rel, ConjunctiveWorkload(20, 6), "x", "y", Domain());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->recommendation, IndexChoice::kJoint)
      << report->ToString();
  EXPECT_EQ(report->queries_both, 20u);
  EXPECT_EQ(report->candidates.size(), 4u);
  // Costs sorted ascending.
  for (size_t i = 1; i < report->candidates.size(); ++i) {
    EXPECT_LE(report->candidates[i - 1].total_accesses,
              report->candidates[i].total_accesses);
  }
}

TEST(AdvisorTest, RecommendsSeparateOrSingleForSingleAttrWorkload) {
  Relation rel = BoxesToConstraintRelation(GenerateRectangles(3000, 5));
  auto report =
      AdviseIndexing(rel, SingleAttrWorkload(20, 7), "x", "y", Domain());
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->recommendation, IndexChoice::kJoint)
      << report->ToString();
  EXPECT_EQ(report->queries_x_only + report->queries_y_only, 20u);
}

TEST(AdvisorTest, SingleAxisWinsWhenOnlyThatAxisIsQueried) {
  Relation rel = BoxesToConstraintRelation(GenerateRectangles(3000, 5));
  Rng rng(8);
  std::vector<BoxQuery> xonly;
  for (int i = 0; i < 20; ++i) {
    double lo = static_cast<double>(rng.UniformInt(0, 3000));
    xonly.push_back(BoxQuery::XOnly(lo, lo + 60));
  }
  auto report = AdviseIndexing(rel, xonly, "x", "y", Domain());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->recommendation, IndexChoice::kXOnly)
      << report->ToString();
}

TEST(AdvisorTest, ReportsIndependenceSignal) {
  // Box data: independent attributes.
  Relation boxes = BoxesToConstraintRelation(GenerateRectangles(50, 5));
  auto r1 = AdviseIndexing(boxes, ConjunctiveWorkload(5, 1), "x", "y",
                           Domain());
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->attributes_independent);

  // Diagonal (coupled) data.
  Relation diag(boxes.schema());
  LinearExpr x = LinearExpr::Variable("x");
  LinearExpr y = LinearExpr::Variable("y");
  for (int i = 0; i < 10; ++i) {
    Tuple t;
    t.AddConstraint(Constraint::Eq(y, x));
    t.AddConstraint(Constraint::Ge(x, LinearExpr::Constant(Rational(i))));
    t.AddConstraint(
        Constraint::Le(x, LinearExpr::Constant(Rational(i + 1))));
    ASSERT_TRUE(diag.Insert(std::move(t)).ok());
  }
  auto r2 = AdviseIndexing(diag, ConjunctiveWorkload(5, 1), "x", "y",
                           Domain());
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->attributes_independent);
}

TEST(AdvisorTest, ValidatesInput) {
  Relation rel = BoxesToConstraintRelation(GenerateRectangles(10, 5));
  EXPECT_FALSE(AdviseIndexing(rel, {}, "x", "y", Domain()).ok());
  EXPECT_FALSE(
      AdviseIndexing(rel, ConjunctiveWorkload(1, 1), "x", "nope", Domain())
          .ok());
  std::vector<BoxQuery> empty_query{BoxQuery{}};
  EXPECT_FALSE(AdviseIndexing(rel, empty_query, "x", "y", Domain()).ok());
}

TEST(AdvisorTest, ReportRendersAllSections) {
  Relation rel = BoxesToConstraintRelation(GenerateRectangles(100, 5));
  auto report =
      AdviseIndexing(rel, ConjunctiveWorkload(3, 2), "x", "y", Domain());
  ASSERT_TRUE(report.ok());
  std::string text = report->ToString();
  EXPECT_NE(text.find("recommendation:"), std::string::npos);
  EXPECT_NE(text.find("workload:"), std::string::npos);
  EXPECT_NE(text.find("joint(x,y)"), std::string::npos);
  EXPECT_NE(text.find("costs"), std::string::npos);
}

// --- Database export round-trip (exercised here to keep suites balanced) ---

TEST(DataExportTest, DatabaseRoundTripsThroughText) {
  Database db;
  Status load = lang::LoadDatabaseFile(
      std::string(CCDB_DATA_DIR) + "/hurricane/hurricane.cdb", &db);
  ASSERT_TRUE(load.ok()) << load.ToString();

  std::string text = lang::FormatDatabaseText(db);
  Database reloaded;
  Status reload = lang::LoadDatabaseText(text, &reloaded);
  ASSERT_TRUE(reload.ok()) << reload.ToString() << "\n--- exported ---\n"
                           << text;
  ASSERT_EQ(reloaded.Names(), db.Names());
  for (const std::string& name : db.Names()) {
    const Relation* a = db.Get(name).value();
    const Relation* b = reloaded.Get(name).value();
    EXPECT_EQ(a->schema(), b->schema()) << name;
    ASSERT_EQ(a->size(), b->size()) << name;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ(a->tuples()[i], b->tuples()[i]) << name << " tuple " << i;
    }
  }
}

TEST(DataExportTest, SaveAndLoadFile) {
  Database db;
  Relation rel(Schema::Make({Schema::RelationalString("tag"),
                             Schema::ConstraintRational("v")})
                   .value());
  Tuple t;
  t.SetValue("tag", Value::String("answer"));
  t.AddConstraint(Constraint::Eq(LinearExpr::Variable("v"),
                                 LinearExpr::Constant(Rational(42))));
  ASSERT_TRUE(rel.Insert(std::move(t)).ok());
  ASSERT_TRUE(db.Create("R", std::move(rel)).ok());

  std::string path = ::testing::TempDir() + "/ccdb_export_test.cdb";
  ASSERT_TRUE(lang::SaveDatabaseFile(path, db).ok());
  Database back;
  ASSERT_TRUE(lang::LoadDatabaseFile(path, &back).ok());
  EXPECT_EQ(back.Get("R").value()->size(), 1u);
}

}  // namespace
}  // namespace ccdb::cqa
