#include "storage/catalog.h"

#include <gtest/gtest.h>

#include "core/access.h"
#include "data/workload.h"
#include "index/rstar_tree.h"
#include "lang/data_parser.h"
#include "util/random.h"

namespace ccdb {
namespace {

/// PageManager that starts failing reads/writes after a budget of
/// successful operations — the failure-injection harness.
class FlakyPageManager : public PageManager {
 public:
  explicit FlakyPageManager(uint64_t budget) : budget_(budget) {}

  Status Read(PageId id, Page* out) override {
    if (budget_ == 0) return Status::IoError("injected read failure");
    --budget_;
    return PageManager::Read(id, out);
  }
  Status Write(PageId id, const Page& page) override {
    if (budget_ == 0) return Status::IoError("injected write failure");
    --budget_;
    return PageManager::Write(id, page);
  }

  void SetBudget(uint64_t budget) { budget_ = budget; }

 private:
  uint64_t budget_;
};

Database HurricaneDb() {
  Database db;
  Status s = lang::LoadDatabaseFile(
      std::string(CCDB_DATA_DIR) + "/hurricane/hurricane.cdb", &db);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return db;
}

// --- Heap file reopen --------------------------------------------------------------

TEST(HeapFileOpenTest, ReopenSeesAllRecordsAcrossPages) {
  PageManager disk;
  BufferPool pool(&disk, 0);
  PageId first;
  std::vector<RecordId> ids;
  {
    HeapFile heap(&pool);
    first = heap.first_page();
    std::vector<uint8_t> rec(900);
    for (uint8_t i = 0; i < 40; ++i) {
      rec[0] = i;
      auto id = heap.Append(rec);
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    ASSERT_GT(heap.num_pages(), 1u) << "need a page chain to test";
  }
  // "Restart": a fresh HeapFile object over the same disk.
  auto reopened = HeapFile::Open(&pool, first);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->num_records(), 40u);
  for (uint8_t i = 0; i < 40; ++i) {
    auto rec = reopened->Read(ids[i]);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ((*rec)[0], i);
  }
  // Appends continue after reopen, preserving the chain.
  ASSERT_TRUE(reopened->Append({0xEE}).ok());
  EXPECT_EQ(reopened->num_records(), 41u);
}

TEST(HeapFileOpenTest, OpenOfUnallocatedPageFails) {
  PageManager disk;
  BufferPool pool(&disk, 0);
  EXPECT_FALSE(HeapFile::Open(&pool, 99).ok());
}

// --- Catalog persistence -------------------------------------------------------------

TEST(CatalogTest, SaveLoadRoundTripsHurricane) {
  PageManager disk;
  BufferPool pool(&disk, 4);
  Database db = HurricaneDb();

  auto root = SaveDatabase(&pool, db);
  ASSERT_TRUE(root.ok()) << root.status().ToString();

  // Simulated restart: a brand-new pool over the same disk.
  BufferPool fresh_pool(&disk, 4);
  auto loaded = LoadDatabase(&fresh_pool, *root);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->Names(), db.Names());
  for (const std::string& name : db.Names()) {
    const Relation* a = db.Get(name).value();
    const Relation* b = loaded->Get(name).value();
    EXPECT_EQ(a->schema(), b->schema()) << name;
    ASSERT_EQ(a->size(), b->size()) << name;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ(a->tuples()[i], b->tuples()[i]) << name << "[" << i << "]";
    }
  }
}

TEST(CatalogTest, EmptyDatabaseRoundTrips) {
  PageManager disk;
  BufferPool pool(&disk, 0);
  auto root = SaveDatabase(&pool, Database{});
  ASSERT_TRUE(root.ok());
  auto loaded = LoadDatabase(&pool, *root);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
}

TEST(CatalogTest, LargeRelationSpansManyPages) {
  PageManager disk;
  BufferPool pool(&disk, 0);
  Database db;
  ASSERT_TRUE(
      db.Create("boxes",
                BoxesToConstraintRelation(GenerateRectangles(2000, 17)))
          .ok());
  auto root = SaveDatabase(&pool, db);
  ASSERT_TRUE(root.ok());
  EXPECT_GT(disk.num_pages(), 10u);
  auto loaded = LoadDatabase(&pool, *root);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Get("boxes").value()->size(), 2000u);
}

TEST(CatalogTest, MultipleDatabasesCoexistOnOneDisk) {
  PageManager disk;
  BufferPool pool(&disk, 0);
  Database db1, db2;
  ASSERT_TRUE(db1.Create("only_in_1", Relation()).ok());
  ASSERT_TRUE(db2.Create("only_in_2", Relation()).ok());
  auto root1 = SaveDatabase(&pool, db1);
  auto root2 = SaveDatabase(&pool, db2);
  ASSERT_TRUE(root1.ok() && root2.ok());
  EXPECT_NE(*root1, *root2);
  EXPECT_TRUE(LoadDatabase(&pool, *root1).value().Has("only_in_1"));
  EXPECT_TRUE(LoadDatabase(&pool, *root2).value().Has("only_in_2"));
}

TEST(CatalogTest, LoadFromGarbageRootFailsCleanly) {
  PageManager disk;
  BufferPool pool(&disk, 0);
  EXPECT_FALSE(LoadDatabase(&pool, 12345).ok()) << "unallocated page";
  // An allocated page full of zeroes is an empty heap -> empty catalog.
  PageId zero_page = disk.Allocate();
  auto loaded = LoadDatabase(&pool, zero_page);
  // next_page = 0 points at itself only if zero_page == 0; otherwise a
  // zeroed header reads next = 0 which is a *valid* page id; either way
  // the loader must terminate and not crash.
  (void)loaded;
}

// --- Failure injection ------------------------------------------------------------------

TEST(FailureInjectionTest, RTreePropagatesReadFailures) {
  FlakyPageManager disk(1u << 30);
  BufferPool pool(&disk, 0);
  RStarTree tree(&pool, 2);
  Rng rng(5);
  for (uint64_t i = 0; i < 500; ++i) {
    double x = static_cast<double>(rng.UniformInt(0, 3000));
    double y = static_cast<double>(rng.UniformInt(0, 3000));
    ASSERT_TRUE(tree.Insert(Rect::Make2D(x, x + 10, y, y + 10), i).ok());
  }
  disk.SetBudget(2);  // allow a couple of reads, then fail
  auto hits = tree.Search(Rect::Make2D(0, 3000, 0, 3000));
  EXPECT_FALSE(hits.ok());
  EXPECT_EQ(hits.status().code(), StatusCode::kIoError);

  disk.SetBudget(0);
  EXPECT_FALSE(tree.Insert(Rect::Make2D(0, 1, 0, 1), 999).ok());
  EXPECT_FALSE(tree.Delete(Rect::Make2D(0, 1, 0, 1), 0).ok());
}

TEST(FailureInjectionTest, HeapFilePropagatesFailures) {
  FlakyPageManager disk(1u << 30);
  BufferPool pool(&disk, 0);
  HeapFile heap(&pool);
  auto id = heap.Append({1, 2, 3});
  ASSERT_TRUE(id.ok());
  disk.SetBudget(0);
  EXPECT_FALSE(heap.Read(*id).ok());
  EXPECT_FALSE(heap.Append({4}).ok());
  EXPECT_FALSE(heap.Scan([](RecordId, const std::vector<uint8_t>&) {
                     return true;
                   })
                   .ok());
}

TEST(FailureInjectionTest, SaveAndLoadDatabasePropagateFailures) {
  FlakyPageManager disk(1u << 30);
  BufferPool pool(&disk, 0);
  Database db = HurricaneDb();
  auto root = SaveDatabase(&pool, db);
  ASSERT_TRUE(root.ok());

  disk.SetBudget(3);
  auto loaded = LoadDatabase(&pool, *root);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);

  disk.SetBudget(1);
  EXPECT_FALSE(SaveDatabase(&pool, db).ok());
}

TEST(FailureInjectionTest, StoredRelationSurvivesUpToFailurePoint) {
  FlakyPageManager disk(1u << 30);
  BufferPool pool(&disk, 0);
  Relation rel = BoxesToConstraintRelation(GenerateRectangles(200, 3));
  auto stored = cqa::StoredRelation::Create(
      &pool, rel, cqa::AccessIndexKind::kJoint, "x", "y",
      Rect::Make2D(-10, 3110, -10, 3110));
  ASSERT_TRUE(stored.ok());
  disk.SetBudget(1);
  auto out = (*stored)->BoxSelect(BoxQuery::Both(0, 3000, 0, 3000));
  EXPECT_FALSE(out.ok());
  // Recovery: budget restored, the same query succeeds (no corrupted
  // in-memory state left behind).
  disk.SetBudget(1u << 30);
  auto retry = (*stored)->BoxSelect(BoxQuery::Both(0, 3000, 0, 3000));
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->size(), 200u);
}

}  // namespace
}  // namespace ccdb
