#include "core/spatial.h"

#include <algorithm>
#include <chrono>
#include <set>

#include <gtest/gtest.h>

#include "obs/governance.h"
#include "util/random.h"

namespace ccdb::cqa {
namespace {

LinearExpr V(const std::string& n) { return LinearExpr::Variable(n); }
LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

Schema SpatialSchema() {
  return Schema::Make({Schema::RelationalString("fid"),
                       Schema::ConstraintRational("x"),
                       Schema::ConstraintRational("y")})
      .value();
}

/// Adds one axis-aligned box tuple for feature `fid`.
void AddBoxFeature(Relation* rel, const std::string& fid, int64_t x0,
                   int64_t x1, int64_t y0, int64_t y1) {
  Tuple t;
  t.SetValue("fid", Value::String(fid));
  t.AddConstraint(Constraint::Ge(V("x"), C(x0)));
  t.AddConstraint(Constraint::Le(V("x"), C(x1)));
  t.AddConstraint(Constraint::Ge(V("y"), C(y0)));
  t.AddConstraint(Constraint::Le(V("y"), C(y1)));
  ASSERT_TRUE(rel->Insert(std::move(t)).ok());
}

/// Adds a segment tuple (the paper's trajectory encoding).
void AddSegmentFeature(Relation* rel, const std::string& fid,
                       const geom::Point& a, const geom::Point& b) {
  Tuple t;
  t.SetValue("fid", Value::String(fid));
  t.SetConstraints(geom::SegmentToConjunction(geom::Segment(a, b), "x", "y"));
  ASSERT_TRUE(rel->Insert(std::move(t)).ok());
}

std::set<std::pair<std::string, std::string>> PairsOf(const Relation& rel) {
  std::set<std::pair<std::string, std::string>> out;
  for (const Tuple& t : rel.tuples()) {
    out.emplace(t.GetValue("fid1").AsString(), t.GetValue("fid2").AsString());
  }
  return out;
}

// --- FeatureSet -----------------------------------------------------------------

TEST(FeatureSetTest, GroupsTuplesByFeatureId) {
  Relation rel(SpatialSchema());
  AddBoxFeature(&rel, "lake", 0, 2, 0, 2);
  AddBoxFeature(&rel, "lake", 2, 4, 0, 1);  // second convex piece
  AddBoxFeature(&rel, "town", 10, 12, 10, 12);
  auto set = FeatureSet::FromRelation(rel);
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_EQ(set->size(), 2u);
  const Feature& lake = set->features()[0];
  EXPECT_EQ(lake.id, "lake");
  EXPECT_EQ(lake.parts.size(), 2u);
  EXPECT_EQ(lake.bounds, geom::Box::FromCorners(geom::Point(0, 0),
                                                geom::Point(4, 2)));
}

TEST(FeatureSetTest, ValidatesSchemaShape) {
  // Missing fid.
  Relation no_fid(Schema::Make({Schema::ConstraintRational("x"),
                                Schema::ConstraintRational("y")})
                      .value());
  EXPECT_FALSE(FeatureSet::FromRelation(no_fid).ok());
  // x relational instead of constraint.
  Relation bad_x(Schema::Make({Schema::RelationalString("fid"),
                               Schema::RelationalRational("x"),
                               Schema::ConstraintRational("y")})
                     .value());
  EXPECT_FALSE(FeatureSet::FromRelation(bad_x).ok());
}

TEST(FeatureSetTest, RejectsUnboundedAndNullId) {
  Relation rel(SpatialSchema());
  Tuple unbounded;
  unbounded.SetValue("fid", Value::String("f"));
  unbounded.AddConstraint(Constraint::Ge(V("x"), C(0)));
  unbounded.AddConstraint(Constraint::Ge(V("y"), C(0)));
  ASSERT_TRUE(rel.Insert(unbounded).ok());
  EXPECT_FALSE(FeatureSet::FromRelation(rel).ok());

  Relation rel2(SpatialSchema());
  Tuple no_id;
  no_id.AddConstraint(Constraint::Eq(V("x"), C(0)));
  no_id.AddConstraint(Constraint::Eq(V("y"), C(0)));
  ASSERT_TRUE(rel2.Insert(no_id).ok());
  EXPECT_FALSE(FeatureSet::FromRelation(rel2).ok());
}

TEST(FeatureSetTest, MultiPartDistanceTakesMinimum) {
  Relation rel(SpatialSchema());
  AddBoxFeature(&rel, "a", 0, 1, 0, 1);
  AddBoxFeature(&rel, "a", 100, 101, 0, 1);  // far second part
  AddBoxFeature(&rel, "b", 3, 4, 0, 1);
  auto set = FeatureSet::FromRelation(rel);
  ASSERT_TRUE(set.ok());
  // dist(a, b) = min(dist(part1, b)=2, dist(part2, b)=96) = 2.
  EXPECT_EQ(FeatureSet::SquaredDistance(set->features()[0],
                                        set->features()[1]),
            Rational(4));
}

// --- BufferJoin -----------------------------------------------------------------

TEST(BufferJoinTest, BasicPairsWithinDistance) {
  Relation r(SpatialSchema());
  AddBoxFeature(&r, "A", 0, 1, 0, 1);
  Relation s(SpatialSchema());
  AddBoxFeature(&s, "near", 2, 3, 0, 1);    // distance 1
  AddBoxFeature(&s, "far", 10, 11, 0, 1);   // distance 9
  AddBoxFeature(&s, "touch", 1, 2, 0, 1);   // distance 0

  auto rf = FeatureSet::FromRelation(r);
  auto sf = FeatureSet::FromRelation(s);
  ASSERT_TRUE(rf.ok() && sf.ok());

  auto out = BufferJoin(*rf, *sf, Rational(1));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(PairsOf(*out),
            (std::set<std::pair<std::string, std::string>>{
                {"A", "near"}, {"A", "touch"}}));
}

TEST(BufferJoinTest, DistanceZeroMeansTouchingOnly) {
  Relation r(SpatialSchema());
  AddBoxFeature(&r, "A", 0, 1, 0, 1);
  Relation s(SpatialSchema());
  AddBoxFeature(&s, "touch", 1, 2, 1, 2);   // corner touch
  AddBoxFeature(&s, "near", 2, 3, 0, 1);
  auto rf = FeatureSet::FromRelation(r);
  auto sf = FeatureSet::FromRelation(s);
  auto out = BufferJoin(*rf, *sf, Rational(0));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(PairsOf(*out), (std::set<std::pair<std::string, std::string>>{
                               {"A", "touch"}}));
  EXPECT_FALSE(BufferJoin(*rf, *sf, Rational(-1)).ok());
}

TEST(BufferJoinTest, SegmentFeaturesExactDistance) {
  // Two diagonal segments at exact rational distance.
  Relation r(SpatialSchema());
  AddSegmentFeature(&r, "road", geom::Point(0, 0), geom::Point(10, 0));
  Relation s(SpatialSchema());
  AddSegmentFeature(&s, "river", geom::Point(0, 3), geom::Point(10, 3));
  AddSegmentFeature(&s, "creek", geom::Point(0, 5), geom::Point(10, 5));
  auto rf = FeatureSet::FromRelation(r);
  auto sf = FeatureSet::FromRelation(s);
  ASSERT_TRUE(rf.ok() && sf.ok()) << rf.status().ToString();

  // d = 3 reaches the river exactly, not the creek.
  auto out = BufferJoin(*rf, *sf, Rational(3));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(PairsOf(*out), (std::set<std::pair<std::string, std::string>>{
                               {"road", "river"}}));
}

TEST(BufferJoinTest, IndexedMatchesNestedLoopRandomized) {
  Rng rng(4242);
  Relation r(SpatialSchema());
  Relation s(SpatialSchema());
  for (int i = 0; i < 60; ++i) {
    int64_t x = rng.UniformInt(0, 500), y = rng.UniformInt(0, 500);
    AddBoxFeature(&r, "r" + std::to_string(i), x, x + rng.UniformInt(1, 30),
                  y, y + rng.UniformInt(1, 30));
    int64_t u = rng.UniformInt(0, 500), v = rng.UniformInt(0, 500);
    AddBoxFeature(&s, "s" + std::to_string(i), u, u + rng.UniformInt(1, 30),
                  v, v + rng.UniformInt(1, 30));
  }
  auto rf = FeatureSet::FromRelation(r);
  auto sf = FeatureSet::FromRelation(s);
  ASSERT_TRUE(rf.ok() && sf.ok());
  for (int64_t d : {0, 5, 25, 100}) {
    SpatialOptions indexed;
    indexed.use_index = true;
    SpatialOptions naive;
    naive.use_index = false;
    auto a = BufferJoin(*rf, *sf, Rational(d), indexed);
    auto b = BufferJoin(*rf, *sf, Rational(d), naive);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(PairsOf(*a), PairsOf(*b)) << "d=" << d;
  }
}

TEST(BufferJoinTest, SelfJoinExcludesSameId) {
  Relation r(SpatialSchema());
  AddBoxFeature(&r, "A", 0, 1, 0, 1);
  AddBoxFeature(&r, "B", 1, 2, 0, 1);
  auto rf = FeatureSet::FromRelation(r);
  SpatialOptions opts;
  opts.exclude_same_id = true;
  auto out = BufferJoin(*rf, *rf, Rational(0), opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(PairsOf(*out), (std::set<std::pair<std::string, std::string>>{
                               {"A", "B"}, {"B", "A"}}));
}

// --- KNearest -----------------------------------------------------------------

TEST(KNearestTest, OrdersByDistance) {
  Relation r(SpatialSchema());
  AddBoxFeature(&r, "Q", 0, 1, 0, 1);
  Relation s(SpatialSchema());
  AddBoxFeature(&s, "d2", 3, 4, 0, 1);
  AddBoxFeature(&s, "d1", 2, 3, 0, 1);
  AddBoxFeature(&s, "d5", 6, 7, 0, 1);
  auto rf = FeatureSet::FromRelation(r);
  auto sf = FeatureSet::FromRelation(s);

  auto k1 = KNearest(*rf, *sf, 1);
  ASSERT_TRUE(k1.ok());
  EXPECT_EQ(PairsOf(*k1), (std::set<std::pair<std::string, std::string>>{
                              {"Q", "d1"}}));
  auto k2 = KNearest(*rf, *sf, 2);
  ASSERT_TRUE(k2.ok());
  EXPECT_EQ(PairsOf(*k2), (std::set<std::pair<std::string, std::string>>{
                              {"Q", "d1"}, {"Q", "d2"}}));
  // k larger than |S| returns all.
  auto k9 = KNearest(*rf, *sf, 9);
  ASSERT_TRUE(k9.ok());
  EXPECT_EQ(k9->size(), 3u);
  // k = 0 returns nothing.
  auto k0 = KNearest(*rf, *sf, 0);
  ASSERT_TRUE(k0.ok());
  EXPECT_EQ(k0->size(), 0u);
}

TEST(KNearestTest, TieBrokenByFeatureId) {
  Relation r(SpatialSchema());
  AddBoxFeature(&r, "Q", 0, 1, 0, 1);
  Relation s(SpatialSchema());
  AddBoxFeature(&s, "beta", 3, 4, 0, 1);   // distance 2
  AddBoxFeature(&s, "alpha", 0, 1, 3, 4);  // distance 2
  auto rf = FeatureSet::FromRelation(r);
  auto sf = FeatureSet::FromRelation(s);
  auto out = KNearest(*rf, *sf, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(PairsOf(*out), (std::set<std::pair<std::string, std::string>>{
                               {"Q", "alpha"}}));
}

TEST(KNearestTest, IndexedMatchesNestedLoopRandomized) {
  Rng rng(31337);
  Relation r(SpatialSchema());
  Relation s(SpatialSchema());
  for (int i = 0; i < 40; ++i) {
    int64_t x = rng.UniformInt(0, 2000), y = rng.UniformInt(0, 2000);
    AddBoxFeature(&r, "r" + std::to_string(i), x, x + 10, y, y + 10);
    int64_t u = rng.UniformInt(0, 2000), v = rng.UniformInt(0, 2000);
    AddBoxFeature(&s, "s" + std::to_string(i), u, u + 10, v, v + 10);
  }
  auto rf = FeatureSet::FromRelation(r);
  auto sf = FeatureSet::FromRelation(s);
  ASSERT_TRUE(rf.ok() && sf.ok());
  for (size_t k : {1u, 3u, 7u}) {
    SpatialOptions indexed;
    indexed.use_index = true;
    SpatialOptions naive;
    naive.use_index = false;
    auto a = KNearest(*rf, *sf, k, indexed);
    auto b = KNearest(*rf, *sf, k, naive);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(PairsOf(*a), PairsOf(*b)) << "k=" << k;
  }
}

TEST(KNearestTest, OutputIsSafeTraditionalRelation) {
  // §4: whole-feature operators return a traditional relation — both
  // attributes relational strings, no constraint store.
  Relation r(SpatialSchema());
  AddBoxFeature(&r, "Q", 0, 1, 0, 1);
  auto rf = FeatureSet::FromRelation(r);
  auto out = KNearest(*rf, *rf, 1);
  ASSERT_TRUE(out.ok());
  for (const Attribute& attr : out->schema().attributes()) {
    EXPECT_EQ(attr.kind, AttributeKind::kRelational);
    EXPECT_EQ(attr.domain, AttributeDomain::kString);
  }
  for (const Tuple& t : out->tuples()) {
    EXPECT_TRUE(t.constraints().IsTriviallyTrue());
  }
}

TEST(KNearestTest, CustomOutputAttributeNames) {
  Relation r(SpatialSchema());
  AddBoxFeature(&r, "A", 0, 1, 0, 1);
  auto rf = FeatureSet::FromRelation(r);
  SpatialOptions opts;
  opts.out_left = "land";
  opts.out_right = "nearest";
  auto out = KNearest(*rf, *rf, 1, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->schema().Has("land"));
  EXPECT_TRUE(out->schema().Has("nearest"));
}

// --- Governance: truncation soundness ------------------------------------

TEST(SpatialGovernanceTest, TruncatingQueryGetsEmptyKNearest) {
  Relation probes(SpatialSchema());
  AddBoxFeature(&probes, "p1", 0, 1, 0, 1);
  AddBoxFeature(&probes, "p2", 10, 11, 0, 1);
  Relation targets(SpatialSchema());
  AddBoxFeature(&targets, "t1", 2, 3, 0, 1);
  AddBoxFeature(&targets, "t2", 12, 13, 0, 1);
  auto lhs = FeatureSet::FromRelation(probes);
  auto rhs = FeatureSet::FromRelation(targets);
  ASSERT_TRUE(lhs.ok() && rhs.ok());

  for (bool use_index : {false, true}) {
    SpatialOptions options;
    options.use_index = use_index;
    obs::GovernanceLimits limits;
    limits.max_tuples = 1;
    limits.allow_partial = true;
    obs::ExecContext ctx(limits, std::chrono::steady_clock::now());
    obs::ExecContextScope scope(&ctx);
    ctx.ChargeTuples(2);  // an upstream operator tripped the budget
    ASSERT_TRUE(ctx.truncating());

    // k-nearest over a truncated (subset) input is non-monotone: its k
    // slots would fill with farther features whose pairs are not in the
    // true answer. The only sound subset is the empty one.
    auto pairs = KNearest(*lhs, *rhs, 1, options);
    ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
    EXPECT_EQ(pairs->size(), 0u) << "use_index=" << use_index;

    // Buffer-join is monotone: it just stops consuming probe features.
    auto joined = BufferJoin(*lhs, *rhs, Rational(5), options);
    ASSERT_TRUE(joined.ok()) << joined.status().ToString();
    EXPECT_EQ(joined->size(), 0u) << "use_index=" << use_index;
  }
}

TEST(SpatialGovernanceTest, MidQueryTruncationKeepsSoundKNearestPrefix) {
  // Four probes, each with an unambiguous nearest target.
  Relation probes(SpatialSchema());
  AddBoxFeature(&probes, "p1", 0, 1, 0, 1);
  AddBoxFeature(&probes, "p2", 10, 11, 0, 1);
  AddBoxFeature(&probes, "p3", 20, 21, 0, 1);
  AddBoxFeature(&probes, "p4", 30, 31, 0, 1);
  Relation targets(SpatialSchema());
  AddBoxFeature(&targets, "t1", 1, 2, 0, 1);
  AddBoxFeature(&targets, "t2", 11, 12, 0, 1);
  AddBoxFeature(&targets, "t3", 21, 22, 0, 1);
  AddBoxFeature(&targets, "t4", 31, 32, 0, 1);
  auto lhs = FeatureSet::FromRelation(probes);
  auto rhs = FeatureSet::FromRelation(targets);
  ASSERT_TRUE(lhs.ok() && rhs.ok());

  SpatialOptions options;
  options.use_index = false;
  obs::GovernanceLimits limits;
  limits.max_tuples = 2;  // latches while emitting the third pair
  limits.allow_partial = true;
  obs::ExecContext ctx(limits, std::chrono::steady_clock::now());
  obs::ExecContextScope scope(&ctx);

  auto pairs = KNearest(*lhs, *rhs, 1, options);
  ASSERT_TRUE(pairs.ok()) << pairs.status().ToString();
  EXPECT_TRUE(ctx.truncating());
  // Probes processed before the trip keep their true nearest neighbor
  // (ranked against the full rhs); later probes are dropped whole, so
  // every emitted pair is in the true answer.
  auto got = PairsOf(*pairs);
  std::set<std::pair<std::string, std::string>> want = {
      {"p1", "t1"}, {"p2", "t2"}, {"p3", "t3"}};
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace ccdb::cqa
