#include "num/bigint.h"

#include "num/rational.h"

#include <cmath>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "util/random.h"

namespace ccdb {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.Sign(), 0);
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_FALSE(zero.IsNegative());
}

TEST(BigIntTest, FromInt64RoundTrips) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42},
                    int64_t{-987654321}, INT64_MAX, INT64_MIN}) {
    BigInt b(v);
    auto back = b.ToInt64();
    ASSERT_TRUE(back.ok()) << v;
    EXPECT_EQ(back.value(), v);
    EXPECT_EQ(b.ToString(), std::to_string(v));
  }
}

TEST(BigIntTest, FromStringParsesAndRejects) {
  auto ok = BigInt::FromString("-123456789012345678901234567890");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().ToString(), "-123456789012345678901234567890");

  EXPECT_TRUE(BigInt::FromString("+77").ok());
  EXPECT_EQ(BigInt::FromString("+77").value(), BigInt(77));
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12a").ok());
  EXPECT_FALSE(BigInt::FromString("1 2").ok());
}

TEST(BigIntTest, NegativeZeroNormalizes) {
  auto parsed = BigInt::FromString("-0");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().IsZero());
  EXPECT_FALSE(parsed.value().IsNegative());
  EXPECT_EQ(parsed.value(), BigInt(0));
}

TEST(BigIntTest, AdditionBasics) {
  EXPECT_EQ(BigInt(2) + BigInt(3), BigInt(5));
  EXPECT_EQ(BigInt(-2) + BigInt(3), BigInt(1));
  EXPECT_EQ(BigInt(2) + BigInt(-3), BigInt(-1));
  EXPECT_EQ(BigInt(-2) + BigInt(-3), BigInt(-5));
  EXPECT_EQ(BigInt(5) + BigInt(-5), BigInt(0));
}

TEST(BigIntTest, CarryPropagatesAcrossLimbs) {
  BigInt a = BigInt::FromString("4294967295").value();  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).ToString(), "4294967296");
  BigInt b = BigInt::FromString("18446744073709551615").value();  // 2^64-1
  EXPECT_EQ((b + BigInt(1)).ToString(), "18446744073709551616");
}

TEST(BigIntTest, MultiplicationBasics) {
  EXPECT_EQ(BigInt(6) * BigInt(7), BigInt(42));
  EXPECT_EQ(BigInt(-6) * BigInt(7), BigInt(-42));
  EXPECT_EQ(BigInt(-6) * BigInt(-7), BigInt(42));
  EXPECT_EQ(BigInt(0) * BigInt(123456), BigInt(0));
}

TEST(BigIntTest, LargeMultiplication) {
  BigInt a = BigInt::FromString("123456789012345678901234567890").value();
  BigInt b = BigInt::FromString("987654321098765432109876543210").value();
  EXPECT_EQ((a * b).ToString(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ(BigInt(7) / BigInt(2), BigInt(3));
  EXPECT_EQ(BigInt(-7) / BigInt(2), BigInt(-3));
  EXPECT_EQ(BigInt(7) / BigInt(-2), BigInt(-3));
  EXPECT_EQ(BigInt(-7) / BigInt(-2), BigInt(3));
  EXPECT_EQ(BigInt(7) % BigInt(2), BigInt(1));
  EXPECT_EQ(BigInt(-7) % BigInt(2), BigInt(-1));
  EXPECT_EQ(BigInt(7) % BigInt(-2), BigInt(1));
  EXPECT_EQ(BigInt(-7) % BigInt(-2), BigInt(-1));
}

TEST(BigIntTest, KnuthDMultiLimbDivision) {
  // Divisor > one limb forces the Algorithm D path.
  BigInt a = BigInt::FromString("340282366920938463463374607431768211456")
                 .value();  // 2^128
  BigInt b = BigInt::FromString("18446744073709551616").value();  // 2^64
  EXPECT_EQ((a / b).ToString(), "18446744073709551616");
  EXPECT_EQ(a % b, BigInt(0));

  BigInt c = a + BigInt(12345);
  EXPECT_EQ((c / b).ToString(), "18446744073709551616");
  EXPECT_EQ(c % b, BigInt(12345));
}

TEST(BigIntTest, KnuthDAddBackCase) {
  // Classic add-back trigger family: dividend u = b^2(b-1) style patterns.
  // Verified against Python: (2**96 - 2**64) // (2**64 - 1), remainder.
  BigInt num = BigInt::FromString("79228162495817593519834398720").value();
  BigInt den = BigInt::FromString("18446744073709551615").value();
  BigInt q, r;
  BigInt::DivMod(num, den, &q, &r);
  EXPECT_EQ(q.ToString(), "4294967295");
  EXPECT_EQ(r.ToString(), "4294967295");
  EXPECT_EQ(q * den + r, num);
}

TEST(BigIntTest, DivModIdentityRandomized) {
  Rng rng(20030608);
  for (int iter = 0; iter < 2000; ++iter) {
    int64_t a = rng.UniformInt(-1000000000000LL, 1000000000000LL);
    int64_t b = rng.UniformInt(-1000000, 1000000);
    if (b == 0) continue;
    BigInt q, r;
    BigInt::DivMod(BigInt(a), BigInt(b), &q, &r);
    EXPECT_EQ(q, BigInt(a / b)) << a << "/" << b;
    EXPECT_EQ(r, BigInt(a % b)) << a << "%" << b;
  }
}

TEST(BigIntTest, DivModIdentityLargeRandomized) {
  // q*b + r == a and |r| < |b| for multi-limb operands.
  Rng rng(42);
  for (int iter = 0; iter < 300; ++iter) {
    std::string sa, sb;
    int la = static_cast<int>(rng.UniformInt(1, 40));
    int lb = static_cast<int>(rng.UniformInt(1, 25));
    for (int i = 0; i < la; ++i) sa += static_cast<char>('0' + rng.UniformInt(i ? 0 : 1, 9));
    for (int i = 0; i < lb; ++i) sb += static_cast<char>('0' + rng.UniformInt(i ? 0 : 1, 9));
    if (rng.UniformInt(0, 1)) sa = "-" + sa;
    if (rng.UniformInt(0, 1)) sb = "-" + sb;
    BigInt a = BigInt::FromString(sa).value();
    BigInt b = BigInt::FromString(sb).value();
    if (b.IsZero()) continue;
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a) << sa << " / " << sb;
    EXPECT_LT(r.Abs().Compare(b.Abs()), 0) << sa << " / " << sb;
    // Remainder sign matches dividend (or is zero).
    if (!r.IsZero()) EXPECT_EQ(r.Sign(), a.Sign());
  }
}

TEST(BigIntTest, ArithmeticMatchesInt64Reference) {
  Rng rng(7);
  for (int iter = 0; iter < 3000; ++iter) {
    int64_t a = rng.UniformInt(-2000000000LL, 2000000000LL);
    int64_t b = rng.UniformInt(-2000000000LL, 2000000000LL);
    EXPECT_EQ(BigInt(a) + BigInt(b), BigInt(a + b));
    EXPECT_EQ(BigInt(a) - BigInt(b), BigInt(a - b));
    EXPECT_EQ(BigInt(a) * BigInt(b), BigInt(a * b));
    EXPECT_EQ(BigInt(a).Compare(BigInt(b)), a < b ? -1 : (a == b ? 0 : 1));
  }
}

TEST(BigIntTest, StringRoundTripRandomized) {
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    std::string s;
    int len = static_cast<int>(rng.UniformInt(1, 60));
    for (int i = 0; i < len; ++i) {
      s += static_cast<char>('0' + rng.UniformInt(i ? 0 : 1, 9));
    }
    if (rng.UniformInt(0, 1)) s = "-" + s;
    auto parsed = BigInt::FromString(s);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().ToString(), s);
  }
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(-18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::Gcd(BigInt(5), BigInt(0)), BigInt(5));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)), BigInt(0));
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)), BigInt(1));
}

TEST(BigIntTest, GcdDividesBothRandomized) {
  Rng rng(11);
  for (int iter = 0; iter < 500; ++iter) {
    int64_t a = rng.UniformInt(-1000000000LL, 1000000000LL);
    int64_t b = rng.UniformInt(-1000000000LL, 1000000000LL);
    BigInt g = BigInt::Gcd(BigInt(a), BigInt(b));
    if (a == 0 && b == 0) {
      EXPECT_TRUE(g.IsZero());
      continue;
    }
    EXPECT_FALSE(g.IsNegative());
    EXPECT_TRUE((BigInt(a) % g).IsZero());
    EXPECT_TRUE((BigInt(b) % g).IsZero());
  }
}

TEST(BigIntTest, PowBasics) {
  EXPECT_EQ(BigInt::Pow(BigInt(2), 10), BigInt(1024));
  EXPECT_EQ(BigInt::Pow(BigInt(10), 0), BigInt(1));
  EXPECT_EQ(BigInt::Pow(BigInt(0), 5), BigInt(0));
  EXPECT_EQ(BigInt::Pow(BigInt(-3), 3), BigInt(-27));
  EXPECT_EQ(BigInt::Pow(BigInt(10), 30).ToString(),
            "1000000000000000000000000000000");
}

TEST(BigIntTest, ToDoubleApproximates) {
  EXPECT_DOUBLE_EQ(BigInt(12345).ToDouble(), 12345.0);
  EXPECT_DOUBLE_EQ(BigInt(-7).ToDouble(), -7.0);
  BigInt big = BigInt::FromString("1000000000000000000000").value();
  EXPECT_NEAR(big.ToDouble(), 1e21, 1e6);
}

TEST(BigIntTest, ToInt64RangeChecks) {
  BigInt max(INT64_MAX);
  BigInt min(INT64_MIN);
  EXPECT_TRUE(max.ToInt64().ok());
  EXPECT_TRUE(min.ToInt64().ok());
  EXPECT_FALSE((max + BigInt(1)).ToInt64().ok());
  EXPECT_FALSE((min - BigInt(1)).ToInt64().ok());
}

TEST(BigIntTest, ComparisonOperators) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_GT(BigInt(100), BigInt(99));
  EXPECT_LE(BigInt(4), BigInt(4));
  EXPECT_GE(BigInt(4), BigInt(4));
  EXPECT_NE(BigInt(1), BigInt(-1));
  // Magnitude vs limb count: more limbs means larger magnitude.
  BigInt huge = BigInt::FromString("99999999999999999999999999").value();
  EXPECT_GT(huge, BigInt(INT64_MAX));
  EXPECT_LT(-huge, BigInt(INT64_MIN));
}

TEST(BigIntTest, HashEqualValuesAgree) {
  BigInt a = BigInt::FromString("123456789123456789123456789").value();
  BigInt b = BigInt::FromString("123456789123456789123456789").value();
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(BigInt(1).Hash(), BigInt(-1).Hash());
}


TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(-1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt::Pow(BigInt(2), 100).BitLength(), 101u);
}

TEST(BigIntTest, ShiftRight) {
  EXPECT_EQ(BigInt(256).ShiftRight(4), BigInt(16));
  EXPECT_EQ(BigInt(255).ShiftRight(4), BigInt(15));
  EXPECT_EQ(BigInt(-256).ShiftRight(4), BigInt(-16));
  EXPECT_EQ(BigInt(7).ShiftRight(10), BigInt(0));
  BigInt big = BigInt::Pow(BigInt(2), 200) + BigInt(12345);
  EXPECT_EQ(big.ShiftRight(200), BigInt(1));
  EXPECT_EQ(big.ShiftRight(0), big);
  // Shift by whole limbs exactly.
  EXPECT_EQ(BigInt::Pow(BigInt(2), 64).ShiftRight(32),
            BigInt::Pow(BigInt(2), 32));
}

TEST(BigIntTest, ShiftRightMatchesDivisionRandomized) {
  Rng rng(77);
  for (int iter = 0; iter < 300; ++iter) {
    int64_t v = rng.UniformInt(0, int64_t{1} << 60);
    size_t k = static_cast<size_t>(rng.UniformInt(0, 70));
    BigInt expected(k >= 63 ? 0 : v >> k);
    EXPECT_EQ(BigInt(v).ShiftRight(k), expected) << v << " >> " << k;
  }
}

TEST(RationalHugeTest, ToDoubleOfHugeRatiosIsFinite) {
  // Regression: inf/inf used to produce NaN for very large operands.
  BigInt huge = BigInt::Pow(BigInt(7), 1500);   // ~4200 bits
  Rational near_three(huge * BigInt(3), huge);
  EXPECT_DOUBLE_EQ(near_three.ToDouble(), 3.0);
  Rational tiny(BigInt(1), huge);
  EXPECT_EQ(tiny.ToDouble(), 0.0);
  Rational big_ratio(huge, BigInt(2));
  EXPECT_TRUE(std::isinf(big_ratio.ToDouble()) ||
              big_ratio.ToDouble() > 1e300);
}

}  // namespace
}  // namespace ccdb
