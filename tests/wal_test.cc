#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "data/database.h"
#include "data/workload.h"
#include "storage/fault.h"

namespace ccdb {
namespace {

Relation TinyRelation(size_t count, uint64_t seed) {
  WorkloadParams params;
  params.data_count = count;
  return BoxesToConstraintRelation(GenerateDataBoxes(seed, params));
}

/// Canonical rendering of a whole database — the crash-matrix oracle.
std::string Fingerprint(const Database& db) {
  std::string out;
  for (const std::string& name : db.Names()) {
    auto rel = db.Get(name);
    if (!rel.ok()) return "<error: " + rel.status().ToString() + ">";
    out += name + "|" + (*rel)->schema().ToString() + "|" +
           (*rel)->ToString() + "\n";
  }
  return out;
}

// --- CRC ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVectorsAndSensitivity) {
  // The standard IEEE check value for "123456789".
  const uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(digits, sizeof(digits)), 0xCBF43926u);
  EXPECT_EQ(Crc32(digits, 0), 0u);
  uint8_t flipped[sizeof(digits)];
  std::memcpy(flipped, digits, sizeof(digits));
  flipped[4] ^= 1;
  EXPECT_NE(Crc32(flipped, sizeof(flipped)), Crc32(digits, sizeof(digits)));
}

// --- FaultInjectingPager -----------------------------------------------------------

TEST(FaultInjectingPagerTest, TransientTornAndCrashModes) {
  FaultInjectingPager disk;
  PageId a = disk.Allocate();
  ASSERT_NE(a, kInvalidPageId);
  Page before;
  before.Zero();
  before.bytes()[0] = 1;
  before.bytes()[kPageSize - 1] = 2;
  ASSERT_TRUE(disk.Write(a, before).ok());

  // kFail: exactly one operation fails, then the disk is healthy.
  disk.Arm(FaultInjectingPager::Fault::kFail, 0);
  EXPECT_FALSE(disk.Write(a, before).ok());
  EXPECT_TRUE(disk.fired());
  EXPECT_FALSE(disk.crashed());
  EXPECT_TRUE(disk.Write(a, before).ok());

  // kTornWrite: half the new image lands, then the disk is down.
  Page update;
  for (size_t i = 0; i < kPageSize; ++i) update.data[i] = 7;
  disk.Arm(FaultInjectingPager::Fault::kTornWrite, 0);
  EXPECT_FALSE(disk.Write(a, update).ok());
  EXPECT_TRUE(disk.crashed());
  Page out;
  EXPECT_FALSE(disk.Read(a, &out).ok()) << "disk stays down after tearing";
  EXPECT_EQ(disk.Allocate(), kInvalidPageId);
  disk.ClearFault();
  ASSERT_TRUE(disk.Read(a, &out).ok());
  EXPECT_EQ(out.bytes()[0], 7) << "new first half";
  EXPECT_EQ(out.bytes()[kPageSize / 2 - 1], 7);
  EXPECT_EQ(out.bytes()[kPageSize / 2], 0) << "old second half";
  EXPECT_EQ(out.bytes()[kPageSize - 1], 2);

  // kCrash: nothing lands, every later operation fails until ClearFault.
  disk.Arm(FaultInjectingPager::Fault::kCrash, 1);
  EXPECT_TRUE(disk.Read(a, &out).ok()) << "one op before the fault";
  EXPECT_FALSE(disk.Write(a, before).ok());
  EXPECT_FALSE(disk.Read(a, &out).ok());
  disk.ClearFault();
  ASSERT_TRUE(disk.Read(a, &out).ok());
  EXPECT_EQ(out.bytes()[0], 7) << "crashed write must not persist";
  EXPECT_GT(disk.io_count(), 0u);
}

// --- WriteAheadLog frame-level protocol --------------------------------------------

TEST(WriteAheadLogTest, CommitThenReplayAppliesFrames) {
  PageManager disk;
  PageId a = disk.Allocate();
  PageId b = disk.Allocate();
  WriteAheadLog wal(&disk);
  ASSERT_TRUE(wal.Create().ok());

  WalFrame fa;
  fa.page_id = a;
  for (size_t i = 0; i < kPageSize; ++i) fa.image.data[i] = 0xAA;
  WalFrame fb;
  fb.page_id = b;
  for (size_t i = 0; i < kPageSize; ++i) fb.image.data[i] = 0xBB;
  ASSERT_TRUE(wal.CommitBatch({fa, fb}, a).ok());
  EXPECT_EQ(wal.next_lsn(), 2u);
  EXPECT_EQ(wal.stats().batches_committed, 1u);
  EXPECT_GT(wal.stats().bytes_appended, 2 * kPageSize);

  // CommitBatch journals; it does not touch the home pages.
  Page out;
  ASSERT_TRUE(disk.Read(a, &out).ok());
  EXPECT_NE(out.bytes()[0], 0xAA);

  // A record of two full page images spans multiple log pages.
  EXPECT_GE(wal.log_page_count(), 3u);

  WriteAheadLog reopened(&disk);
  ASSERT_TRUE(reopened.Open(wal.header_page()).ok());
  EXPECT_EQ(reopened.stats().batches_recovered, 1u);
  EXPECT_EQ(reopened.stats().records_discarded, 0u);
  EXPECT_EQ(reopened.recovered_catalog_root(), a);
  EXPECT_EQ(reopened.next_lsn(), 2u);
  ASSERT_TRUE(disk.Read(a, &out).ok());
  EXPECT_EQ(out.bytes()[0], 0xAA);
  ASSERT_TRUE(disk.Read(b, &out).ok());
  EXPECT_EQ(out.bytes()[0], 0xBB);
}

TEST(WriteAheadLogTest, TruncateDropsRecordsAndKeepsRoot) {
  PageManager disk;
  PageId a = disk.Allocate();
  WriteAheadLog wal(&disk);
  ASSERT_TRUE(wal.Create().ok());
  WalFrame frame;
  frame.page_id = a;
  frame.image.data[0] = 0xCC;
  ASSERT_TRUE(wal.CommitBatch({frame}, a).ok());
  ASSERT_TRUE(disk.Write(a, frame.image).ok());  // apply by hand
  ASSERT_TRUE(wal.Truncate(a).ok());
  EXPECT_EQ(wal.stats().checkpoints, 1u);

  // Reopen: nothing replays, but the root survives via the header.
  WriteAheadLog reopened(&disk);
  ASSERT_TRUE(reopened.Open(wal.header_page()).ok());
  EXPECT_EQ(reopened.stats().batches_recovered, 0u);
  EXPECT_EQ(reopened.recovered_catalog_root(), a);
  EXPECT_EQ(reopened.next_lsn(), wal.next_lsn()) << "LSN floor persists";

  // The log chain is reused after a truncate: a new commit still works.
  frame.image.data[0] = 0xDD;
  ASSERT_TRUE(reopened.CommitBatch({frame}, a).ok());
  WriteAheadLog again(&disk);
  ASSERT_TRUE(again.Open(wal.header_page()).ok());
  EXPECT_EQ(again.stats().batches_recovered, 1u);
  Page out;
  ASSERT_TRUE(disk.Read(a, &out).ok());
  EXPECT_EQ(out.bytes()[0], 0xDD);
}

// --- DurableStore round trips ------------------------------------------------------

TEST(DurableStoreTest, CatalogRoundTripAndLatestCommitWins) {
  PageManager disk;
  auto store = DurableStore::Create(&disk);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  Database db;
  ASSERT_TRUE(db.Create("A", TinyRelation(4, 1)).ok());
  ASSERT_TRUE((*store)->CommitCatalog(db).ok());
  ASSERT_TRUE(db.Create("B", TinyRelation(3, 2)).ok());
  db.CreateOrReplace("A", TinyRelation(6, 3));
  ASSERT_TRUE((*store)->CommitCatalog(db).ok());

  // Live load sees the latest commit.
  auto live = (*store)->LoadCatalog();
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(Fingerprint(*live), Fingerprint(db));

  // Reopen from disk + root alone: recovery replays both batches.
  auto reopened = DurableStore::Open(&disk, (*store)->wal_root());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->stats().batches_recovered, 2u);
  auto loaded = (*reopened)->LoadCatalog();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(Fingerprint(*loaded), Fingerprint(db));
}

TEST(DurableStoreTest, CheckpointTruncatesAndPreservesState) {
  PageManager disk;
  auto store = DurableStore::Create(&disk);
  ASSERT_TRUE(store.ok());
  Database db;
  ASSERT_TRUE(db.Create("A", TinyRelation(5, 4)).ok());
  ASSERT_TRUE((*store)->CommitCatalog(db).ok());
  ASSERT_TRUE((*store)->Checkpoint().ok());

  // After the checkpoint the log is empty but the state is intact.
  auto after_ckpt = DurableStore::Open(&disk, (*store)->wal_root());
  ASSERT_TRUE(after_ckpt.ok());
  EXPECT_EQ((*after_ckpt)->stats().batches_recovered, 0u);
  auto loaded = (*after_ckpt)->LoadCatalog();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(Fingerprint(*loaded), Fingerprint(db));

  // Commits after a checkpoint recover too (fresh LSNs above the floor).
  ASSERT_TRUE(db.Create("B", TinyRelation(2, 5)).ok());
  ASSERT_TRUE((*store)->CommitCatalog(db).ok());
  auto final_open = DurableStore::Open(&disk, (*store)->wal_root());
  ASSERT_TRUE(final_open.ok());
  EXPECT_EQ((*final_open)->stats().batches_recovered, 1u);
  auto final_loaded = (*final_open)->LoadCatalog();
  ASSERT_TRUE(final_loaded.ok());
  EXPECT_EQ(Fingerprint(*final_loaded), Fingerprint(db));
}

TEST(DurableStoreTest, TransientFailureThenRetryWithoutReopen) {
  FaultInjectingPager disk;
  auto store = DurableStore::Create(&disk);
  ASSERT_TRUE(store.ok());
  Database db;
  ASSERT_TRUE(db.Create("A", TinyRelation(4, 6)).ok());
  ASSERT_TRUE((*store)->CommitCatalog(db).ok());

  // One transient I/O error somewhere inside the commit: the commit must
  // fail, and the store must remain usable without reopening.
  ASSERT_TRUE(db.Create("B", TinyRelation(4, 7)).ok());
  disk.Arm(FaultInjectingPager::Fault::kFail, 5);
  Status failed = (*store)->CommitCatalog(db);
  ASSERT_FALSE(failed.ok());
  ASSERT_TRUE(disk.fired());

  // The failed batch was never acknowledged: a fresh load sees only A.
  auto reopened = DurableStore::Open(&disk, (*store)->wal_root());
  ASSERT_TRUE(reopened.ok());
  auto loaded = (*reopened)->LoadCatalog();
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->Has("B"));

  // Retry on the original store: overwrites the torn tail record.
  ASSERT_TRUE((*store)->CommitCatalog(db).ok());
  auto after_retry = DurableStore::Open(&disk, (*store)->wal_root());
  ASSERT_TRUE(after_retry.ok());
  auto retried = (*after_retry)->LoadCatalog();
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(Fingerprint(*retried), Fingerprint(db));
}

// --- The crash matrix --------------------------------------------------------------
//
// For every fault mode and every I/O index N: run the standard commit
// workload with the fault armed at N, "reboot" (ClearFault), reopen, and
// require the recovered catalog to equal the state at the last
// acknowledged commit — acknowledged batches are never lost and
// unacknowledged batches never surface — with one classical exception: a
// commit whose final write failed may still have fully reached the disk
// (a torn write that happened to cover the whole record). Such a commit
// is *indeterminate*, exactly as in real databases when the connection
// dies mid-COMMIT, so recovery may surface the one in-flight batch; it
// must never surface anything beyond it. Then prove the recovered store
// is fully usable by committing once more and reopening again.

constexpr int kMatrixCommits = 3;

void AddMatrixRelation(Database* db, int i) {
  db->CreateOrReplace("R" + std::to_string(i),
                      TinyRelation(2, 10 + static_cast<uint64_t>(i)));
}

struct MatrixOutcome {
  std::string last_acked;  // fingerprint at the last acknowledged commit
  std::string pending;     // first unacknowledged attempt after it, if any
};

/// Runs the workload; returns the fingerprint after the last acknowledged
/// commit ("" when none was acknowledged) plus the fingerprint of the
/// first commit attempt that failed after it — only that attempt can have
/// (indeterminately) reached the disk, since every later attempt starts
/// after the injected fault has taken the disk down.
MatrixOutcome RunMatrixWorkload(DurableStore* store, Database* db) {
  MatrixOutcome out;
  for (int i = 0; i < kMatrixCommits; ++i) {
    AddMatrixRelation(db, i);
    if (store->CommitCatalog(*db).ok()) {
      out.last_acked = Fingerprint(*db);
      out.pending.clear();
    } else if (out.pending.empty()) {
      out.pending = Fingerprint(*db);
    }
  }
  return out;
}

void RunCrashMatrix(FaultInjectingPager::Fault fault, const char* label) {
  // Measure the total I/O count of an unfaulted run — the index space.
  uint64_t total_ios = 0;
  {
    FaultInjectingPager disk;
    auto store = DurableStore::Create(&disk);
    ASSERT_TRUE(store.ok());
    Database db;
    const MatrixOutcome all = RunMatrixWorkload(store->get(), &db);
    EXPECT_EQ(all.last_acked, Fingerprint(db)) << "unfaulted run must ack all";
    total_ios = disk.io_count();
  }
  ASSERT_GT(total_ios, 0u);

  size_t verified = 0;
  for (uint64_t n = 0; n < total_ios; ++n) {
    SCOPED_TRACE(std::string(label) + " fault at I/O " + std::to_string(n));
    FaultInjectingPager disk;
    disk.Arm(fault, n);
    auto store = DurableStore::Create(&disk);
    if (!store.ok()) continue;  // died before the store existed: no acks
    const PageId wal_root = (*store)->wal_root();
    Database db;
    const MatrixOutcome outcome = RunMatrixWorkload(store->get(), &db);

    // Reboot and recover.
    disk.ClearFault();
    auto reopened = DurableStore::Open(&disk, wal_root);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    auto loaded = (*reopened)->LoadCatalog();
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const std::string recovered = Fingerprint(*loaded);
    if (recovered != outcome.last_acked) {
      // The only other legal state: the one indeterminate in-flight batch.
      ASSERT_FALSE(outcome.pending.empty())
          << "recovered a state with no matching commit attempt:\n"
          << recovered;
      ASSERT_EQ(recovered, outcome.pending);
    }

    // The recovered store must accept and persist new commits.
    Database next = *loaded;
    AddMatrixRelation(&next, 99);
    ASSERT_TRUE((*reopened)->CommitCatalog(next).ok());
    auto final_open = DurableStore::Open(&disk, wal_root);
    ASSERT_TRUE(final_open.ok()) << final_open.status().ToString();
    auto final_loaded = (*final_open)->LoadCatalog();
    ASSERT_TRUE(final_loaded.ok()) << final_loaded.status().ToString();
    ASSERT_EQ(Fingerprint(*final_loaded), Fingerprint(next));
    ++verified;
  }
  EXPECT_GT(verified, 0u);
}

TEST(CrashMatrixTest, TransientFailureAtEveryIoPoint) {
  RunCrashMatrix(FaultInjectingPager::Fault::kFail, "kFail");
}

TEST(CrashMatrixTest, TornWriteAtEveryIoPoint) {
  RunCrashMatrix(FaultInjectingPager::Fault::kTornWrite, "kTornWrite");
}

TEST(CrashMatrixTest, CrashAtEveryIoPoint) {
  RunCrashMatrix(FaultInjectingPager::Fault::kCrash, "kCrash");
}

}  // namespace
}  // namespace ccdb
