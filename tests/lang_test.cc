#include <gtest/gtest.h>

#include <algorithm>

#include "lang/data_parser.h"
#include "lang/expr_parser.h"
#include "lang/lexer.h"
#include "lang/query.h"

namespace ccdb::lang {
namespace {

// --- Lexer -----------------------------------------------------------------------

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("R0 = select x <= 2.5, name != \"Smith\" from R");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  TokenStream ts(std::move(tokens).value());
  EXPECT_EQ(ts.Next().text, "R0");
  EXPECT_TRUE(ts.Next().IsSymbol("="));
  EXPECT_TRUE(ts.Peek().IsKeyword("SELECT")) << "keywords case-insensitive";
  ts.Next();
  EXPECT_EQ(ts.Next().text, "x");
  EXPECT_TRUE(ts.Next().IsSymbol("<="));
  EXPECT_EQ(ts.Next().text, "2.5");
  EXPECT_TRUE(ts.Next().IsSymbol(","));
  ts.Next();  // name
  EXPECT_TRUE(ts.Next().IsSymbol("!="));
  Token str = ts.Next();
  EXPECT_TRUE(str.Is(TokenKind::kString));
  EXPECT_EQ(str.text, "Smith");
}

TEST(LexerTest, CommentsAndErrors) {
  auto tokens = Tokenize("x <= 1 # everything after is ignored $%");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 4u);  // x, <=, 1, END
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("x @ y").ok());
  auto diamond = Tokenize("x <> y");
  ASSERT_TRUE(diamond.ok());
  EXPECT_EQ((*diamond)[1].text, "!=") << "<> normalizes to !=";
}

// --- Expression parsing -----------------------------------------------------------

Result<LinearExpr> ParseExprText(const std::string& text) {
  CCDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  TokenStream ts(std::move(tokens));
  return ParseLinearExpr(&ts);
}

TEST(ExprParserTest, TermsAndCoefficients) {
  auto e = ParseExprText("2x + 3/2y - 7");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(e->Coeff("x"), Rational(2));
  EXPECT_EQ(e->Coeff("y"), Rational(3, 2));
  EXPECT_EQ(e->constant(), Rational(-7));

  auto decimal = ParseExprText("2.5x");
  ASSERT_TRUE(decimal.ok());
  EXPECT_EQ(decimal->Coeff("x"), Rational(5, 2));

  auto star = ParseExprText("2 * x - 1");
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(star->Coeff("x"), Rational(2));

  auto unary = ParseExprText("-x + y");
  ASSERT_TRUE(unary.ok());
  EXPECT_EQ(unary->Coeff("x"), Rational(-1));

  EXPECT_FALSE(ParseExprText("+").ok());
  EXPECT_FALSE(ParseExprText("2 +").ok());
}

TEST(ExprParserTest, ComparisonListAndOps) {
  auto list = ParseComparisonList("t >= 4, t <= 9, x + y = 2");
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  ASSERT_EQ(list->size(), 3u);
  EXPECT_EQ((*list)[0].op, ">=");
  EXPECT_EQ((*list)[2].op, "=");
  EXPECT_TRUE(ParseComparisonList("").value().empty());
  EXPECT_FALSE(ParseComparisonList("x <").ok());
  EXPECT_FALSE(ParseComparisonList("x = 1 y = 2").ok()) << "missing comma";
}

// --- Binding ----------------------------------------------------------------------

Schema BindSchema() {
  return Schema::Make({Schema::RelationalString("name"),
                       Schema::RelationalString("landId"),
                       Schema::RelationalRational("pop"),
                       Schema::ConstraintRational("t")})
      .value();
}

TEST(BindPredicateTest, ResolvesStringAndLinearAtoms) {
  auto parsed = ParseComparisonList(
      "landId = A, name != \"Smith\", t >= 4, pop <= 1000");
  ASSERT_TRUE(parsed.ok());
  auto pred = BindPredicate(BindSchema(), *parsed);
  ASSERT_TRUE(pred.ok()) << pred.status().ToString();
  ASSERT_EQ(pred->strings.size(), 2u);
  EXPECT_EQ(pred->strings[0].attribute, "landId");
  EXPECT_EQ(pred->strings[0].literal, "A") << "bare literal, §3.3 style";
  EXPECT_TRUE(pred->strings[1].negated);
  EXPECT_EQ(pred->linear.size(), 2u);
}

TEST(BindPredicateTest, AttrEqualsAttrOnStrings) {
  auto parsed = ParseComparisonList("name = landId");
  ASSERT_TRUE(parsed.ok());
  auto pred = BindPredicate(BindSchema(), *parsed);
  ASSERT_TRUE(pred.ok());
  ASSERT_EQ(pred->strings.size(), 1u);
  EXPECT_EQ(pred->strings[0].kind, StringAtom::Kind::kAttrEqualsAttr);
}

TEST(BindPredicateTest, RejectsIllTypedAtoms) {
  // Numeric != is not atomic.
  auto ne = ParseComparisonList("t != 3");
  ASSERT_TRUE(ne.ok());
  EXPECT_FALSE(BindPredicate(BindSchema(), *ne).ok());
  // String attr vs rational attr.
  auto mixed = ParseComparisonList("name = pop");
  ASSERT_TRUE(mixed.ok());
  EXPECT_FALSE(BindPredicate(BindSchema(), *mixed).ok());
  // Quoted string with inequality.
  auto strcmp_le = ParseComparisonList("name <= \"Z\"");
  ASSERT_TRUE(strcmp_le.ok());
  EXPECT_FALSE(BindPredicate(BindSchema(), *strcmp_le).ok());
}

TEST(BindTupleTest, SplitsValuesAndConstraints) {
  auto parsed = ParseComparisonList(
      "name = \"Smith\", landId = A, pop = 42, t >= 0, t <= 5");
  ASSERT_TRUE(parsed.ok());
  auto tuple = BindTuple(BindSchema(), *parsed);
  ASSERT_TRUE(tuple.ok()) << tuple.status().ToString();
  EXPECT_EQ(tuple->GetValue("name").AsString(), "Smith");
  EXPECT_EQ(tuple->GetValue("landId").AsString(), "A");
  EXPECT_EQ(tuple->GetValue("pop").AsNumber(), Rational(42));
  EXPECT_EQ(tuple->constraints().size(), 2u);
}

// --- Data files -------------------------------------------------------------------

constexpr char kTinyDb[] = R"(
# a tiny database
relation Points
schema label: string relational; x: rational constraint; y: rational constraint
tuple label = "origin", x = 0, y = 0
tuple label = "line", y = 2x, x >= 0, x <= 1
)";

TEST(DataParserTest, LoadsRelations) {
  Database db;
  Status s = LoadDatabaseText(kTinyDb, &db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto rel = db.Get("Points");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->size(), 2u);
  EXPECT_TRUE((*rel)->ContainsPoint({{{"label", Value::String("line")}},
                                     {{"x", Rational(1, 2)},
                                      {"y", Rational(1)}}}));
  EXPECT_FALSE((*rel)->ContainsPoint({{{"label", Value::String("line")}},
                                      {{"x", Rational(1, 2)},
                                       {"y", Rational(2)}}}));
}

TEST(DataParserTest, ReportsErrorsWithLineNumbers) {
  Database db;
  Status s = LoadDatabaseText("relation R\nschema x: rational constraint\n"
                              "tuple y = 1\n",
                              &db);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.ToString();

  Database db2;
  EXPECT_FALSE(LoadDatabaseText("tuple x = 1\n", &db2).ok())
      << "tuple before relation";
  Database db3;
  EXPECT_FALSE(LoadDatabaseText("relation R\nnonsense\n", &db3).ok());
  Database db4;
  EXPECT_FALSE(
      LoadDatabaseText("relation R\nschema x: rational wiggly\n", &db4).ok());
}

TEST(DataParserTest, LoadsHurricaneFile) {
  Database db;
  Status s = LoadDatabaseFile(std::string(CCDB_DATA_DIR) +
                                  "/hurricane/hurricane.cdb",
                              &db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(db.Has("Land"));
  EXPECT_TRUE(db.Has("Landownership"));
  EXPECT_TRUE(db.Has("Hurricane"));
  EXPECT_TRUE(db.Has("HurricanePath"));
  EXPECT_EQ(db.Get("Land").value()->size(), 4u);
  EXPECT_EQ(db.Get("Landownership").value()->size(), 6u);
  EXPECT_EQ(db.Get("Hurricane").value()->size(), 2u);
  // The hurricane is at (1, 3/2) at t = 4.
  EXPECT_TRUE(db.Get("Hurricane").value()->ContainsPoint(
      {{}, {{"t", Rational(4)}, {"x", Rational(1)}, {"y", Rational(3, 2)}}}));
}

// --- Query language ----------------------------------------------------------------

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Status s = LoadDatabaseFile(std::string(CCDB_DATA_DIR) +
                                    "/hurricane/hurricane.cdb",
                                &db_);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  Database db_;
};

TEST_F(QueryTest, Query1WhoOwnedLandAAndWhen) {
  // The paper's Query 1 verbatim (modulo quoting style).
  auto rel = RunQuery(
      "R0 = select landId = A from Landownership\n"
      "R1 = project R0 on name, t\n",
      &db_);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->size(), 2u);
  EXPECT_TRUE(rel->ContainsPoint(
      {{{"name", Value::String("Smith")}}, {{"t", Rational(3)}}}));
  EXPECT_TRUE(rel->ContainsPoint(
      {{{"name", Value::String("Jones")}}, {{"t", Rational(7)}}}));
  EXPECT_FALSE(rel->ContainsPoint(
      {{{"name", Value::String("Jones")}}, {{"t", Rational(3)}}}));
}

TEST_F(QueryTest, Query2LandsTheHurricanePassed) {
  auto rel = RunQuery(
      "R0 = join Hurricane and Land\n"
      "R1 = project R0 on landId\n",
      &db_);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  std::set<std::string> ids;
  for (const Tuple& t : rel->tuples()) {
    ids.insert(t.GetValue("landId").AsString());
  }
  // The path crosses A diagonally, exits through D; it touches the shared
  // corner (2,2), which lies in all four closed parcels.
  EXPECT_EQ(ids, (std::set<std::string>{"A", "B", "C", "D"}));
}

TEST_F(QueryTest, Query3WhoseLandWasHitBetween4And9) {
  auto rel = RunQuery(
      "R0 = join Landownership and Land\n"
      "R1 = select t >= 4, t <= 9 from Hurricane\n"
      "R2 = join R0 and R1\n"
      "R3 = project R2 on name\n",
      &db_);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  std::set<std::string> names;
  for (const Tuple& t : rel->tuples()) {
    names.insert(t.GetValue("name").AsString());
  }
  // t in [4,5]: hurricane in A (Smith owns through t=5; Jones from t=5 —
  // the instant t=5 itself is shared). At t=5 it touches the corner of all
  // parcels (B: Jones, C: Brown, D: Davis). t in [5,8]: inside D
  // (Davis through t=7, Smith from t=7).
  EXPECT_EQ(names,
            (std::set<std::string>{"Smith", "Jones", "Brown", "Davis"}));
}

TEST_F(QueryTest, Query4WhereWasTheHurricaneAtTime6) {
  auto rel = RunQuery(
      "R0 = select t = 6 from Hurricane\n"
      "R1 = project R0 on x, y\n",
      &db_);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  ASSERT_EQ(rel->size(), 1u);
  // Segment 2 at t = 6: 3x = 8, y = x.
  EXPECT_TRUE(rel->ContainsPoint(
      {{}, {{"x", Rational(8, 3)}, {"y", Rational(8, 3)}}}));
  EXPECT_FALSE(rel->ContainsPoint(
      {{}, {{"x", Rational(1)}, {"y", Rational(1)}}}));
}

TEST_F(QueryTest, Query5ParcelsNearTheHurricanePath) {
  // Whole-feature operators from the language: parcels within distance 1/2
  // of the trajectory (all four touch it: distance 0) and 2-nearest.
  auto rel = RunQuery(
      "R0 = buffer-join LandFeatures and HurricanePath within 1/2\n",
      &db_);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->size(), 4u);

  auto knn = RunQuery(
      "R0 = k-nearest HurricanePath and LandFeatures k 2\n",
      &db_);
  ASSERT_TRUE(knn.ok()) << knn.status().ToString();
  EXPECT_EQ(knn->size(), 2u);
}

TEST_F(QueryTest, UnionMinusRenameRoundTrip) {
  auto rel = RunQuery(
      "R0 = select landId = A from Land\n"
      "R1 = select landId = B from Land\n"
      "R2 = union R0 and R1\n"
      "R3 = minus R2 and R1\n"
      "R4 = rename x to easting in R3\n"
      "R5 = project R4 on landId\n",
      &db_);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  ASSERT_EQ(rel->size(), 1u);
  EXPECT_EQ(rel->tuples()[0].GetValue("landId").AsString(), "A");
}

TEST_F(QueryTest, ErrorsCarryLineNumbers) {
  auto bad = ExecuteScript("R0 = select t >= 4 from Hurricane\n"
                           "R1 = frobnicate R0 and R0\n",
                           &db_);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);

  auto missing = ExecuteScript("R0 = join NoSuch and Land\n", &db_);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  EXPECT_FALSE(ExecuteScript("", &db_).ok()) << "empty script";
  EXPECT_FALSE(ExecuteScript("R0 = select t >= 4 from Hurricane extra\n",
                             &db_)
                   .ok())
      << "trailing tokens rejected";
}


TEST_F(QueryTest, NormalizeStatementCompactsResults) {
  // [0,10] minus [3,5] yields two pieces plus strict bounds; union with the
  // original interval makes the pieces redundant; normalize collapses them.
  Database db;
  Status s = lang::LoadDatabaseText(
      "relation R\n"
      "schema t: rational constraint\n"
      "tuple t >= 0, t <= 10\n"
      "relation S\n"
      "schema t: rational constraint\n"
      "tuple t >= 3, t <= 5\n",
      &db);
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto rel = RunQuery(
      "R0 = minus R and S\n"
      "R1 = union R0 and R\n"
      "R2 = normalize R1\n",
      &db);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->size(), 1u) << rel->ToString();
  EXPECT_TRUE(rel->ContainsPoint({{}, {{"t", Rational(4)}}}));
  EXPECT_FALSE(rel->ContainsPoint({{}, {{"t", Rational(11)}}}));
}

TEST_F(QueryTest, StepsCanBeRedefined) {
  auto rel = RunQuery(
      "R0 = select t >= 4 from Hurricane\n"
      "R0 = select t >= 7 from R0\n",
      &db_);
  ASSERT_TRUE(rel.ok());
  EXPECT_FALSE(rel->ContainsPoint(
      {{}, {{"t", Rational(5)}, {"x", Rational(2, 3)},
            {"y", Rational(2)}}}));
}

// --- Canonicalization & input analysis (service cache-key support) ---------------

TEST(CanonicalizeTest, NormalizesWhitespaceCommentsAndSymbols) {
  auto canon = CanonicalizeScript(
      "# query 3\n"
      "\n"
      "  R0   =  select t>=4 ,t<=9 from   Hurricane   # trailing\n"
      "R1 = select name <> \"Smith\" from R0\n");
  ASSERT_TRUE(canon.ok()) << canon.status().ToString();
  EXPECT_EQ(*canon,
            "R0 = select t >= 4 , t <= 9 from Hurricane\n"
            "R1 = select name != \"Smith\" from R0");

  // Equal canonical text regardless of the original spacing.
  auto respaced = CanonicalizeScript(
      "R0 = select t >= 4, t <= 9 from Hurricane\n"
      "R1 = select name != \"Smith\" from R0");
  ASSERT_TRUE(respaced.ok());
  EXPECT_EQ(*canon, *respaced);

  // Identifier case is preserved (names are case-sensitive).
  auto cased = CanonicalizeScript("R0 = select t >= 4 from hurricane");
  ASSERT_TRUE(cased.ok());
  EXPECT_NE(*canon, *cased);

  EXPECT_FALSE(CanonicalizeScript("R0 = select x @ y").ok());
}

TEST(ScriptInputsTest, ExcludesStepsDefinedEarlier) {
  auto inputs = ScriptInputs(
      "R0 = join Landownership and Land\n"
      "R1 = select t >= 4, t <= 9 from Hurricane\n"
      "R2 = join R0 and R1\n"
      "R3 = project R2 on name\n");
  ASSERT_TRUE(inputs.ok()) << inputs.status().ToString();
  auto has = [&](const std::string& name) {
    return std::find(inputs->begin(), inputs->end(), name) != inputs->end();
  };
  EXPECT_TRUE(has("Landownership"));
  EXPECT_TRUE(has("Land"));
  EXPECT_TRUE(has("Hurricane"));
  EXPECT_FALSE(has("R0")) << "steps defined by the script are not inputs";
  EXPECT_FALSE(has("R1"));
  EXPECT_FALSE(has("R2"));
  // Over-approximation: keywords and attributes may appear; callers filter
  // by catalog membership.
  EXPECT_TRUE(has("name"));
}

TEST(ScriptInputsTest, SelfReferenceBeforeDefinitionIsAnInput) {
  auto inputs = ScriptInputs("R0 = select t >= 7 from R0");
  ASSERT_TRUE(inputs.ok());
  EXPECT_NE(std::find(inputs->begin(), inputs->end(), "R0"), inputs->end())
      << "reading a base relation the step then shadows counts as an input";
}

}  // namespace
}  // namespace ccdb::lang
