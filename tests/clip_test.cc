#include "geom/clip.h"

#include <gtest/gtest.h>

#include "constraint/fourier_motzkin.h"
#include "core/operators.h"
#include "util/random.h"

namespace ccdb::geom {
namespace {

std::vector<Point> Square(int64_t x0, int64_t y0, int64_t size) {
  return {Point(x0, y0), Point(x0 + size, y0), Point(x0 + size, y0 + size),
          Point(x0, y0 + size)};
}

// --- ClipConvex -----------------------------------------------------------------

TEST(ClipTest, OverlappingSquares) {
  auto out = ClipConvex(Square(0, 0, 4), Square(2, 2, 4));
  ASSERT_EQ(out.size(), 4u);
  auto poly = Polygon::Make(out);
  ASSERT_TRUE(poly.ok());
  EXPECT_EQ(poly->Area(), Rational(4));
  EXPECT_EQ(poly->BoundingBox(),
            Box::FromCorners(Point(2, 2), Point(4, 4)));
}

TEST(ClipTest, ContainmentGivesInnerPolygon) {
  auto out = ClipConvex(Square(1, 1, 2), Square(0, 0, 10));
  auto poly = Polygon::Make(out);
  ASSERT_TRUE(poly.ok());
  EXPECT_EQ(poly->Area(), Rational(4));
  // Symmetric: clipping the big one by the small one gives the small one.
  auto out2 = ClipConvex(Square(0, 0, 10), Square(1, 1, 2));
  EXPECT_EQ(Polygon::Make(out2).value().Area(), Rational(4));
}

TEST(ClipTest, DisjointSquaresGiveEmpty) {
  EXPECT_TRUE(ClipConvex(Square(0, 0, 2), Square(5, 5, 2)).empty());
}

TEST(ClipTest, EdgeTouchGivesSegment) {
  auto out = ClipConvex(Square(0, 0, 2), Square(2, 0, 2));
  ASSERT_EQ(out.size(), 2u) << "shared edge";
  EXPECT_EQ(Box::FromCorners(out[0], out[1]),
            Box::FromCorners(Point(2, 0), Point(2, 2)));
}

TEST(ClipTest, CornerTouchGivesPoint) {
  auto out = ClipConvex(Square(0, 0, 2), Square(2, 2, 2));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Point(2, 2));
}

TEST(ClipTest, TriangleThroughSquare) {
  // Big triangle clipped by unit-ish square: exact rational cuts.
  std::vector<Point> tri{Point(-2, 0), Point(6, 0), Point(2, 6)};
  auto out = ClipConvex(tri, Square(0, 0, 4));
  auto poly = Polygon::Make(out);
  ASSERT_TRUE(poly.ok()) << poly.status().ToString();
  // Every vertex of the result is in both regions (closed).
  auto tri_poly = Polygon::Make(tri).value();
  auto sq_poly = Polygon::Make(Square(0, 0, 4)).value();
  for (const Point& v : out) {
    EXPECT_TRUE(tri_poly.Contains(v)) << v.ToString();
    EXPECT_TRUE(sq_poly.Contains(v)) << v.ToString();
  }
}

TEST(ClipTest, ClipCommutes) {
  Rng rng(12);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<Point> a = Square(rng.UniformInt(0, 10), rng.UniformInt(0, 10),
                                  rng.UniformInt(2, 8));
    std::vector<Point> b = Square(rng.UniformInt(0, 10), rng.UniformInt(0, 10),
                                  rng.UniformInt(2, 8));
    EXPECT_EQ(IntersectionArea(a, b), IntersectionArea(b, a));
  }
}

TEST(ClipTest, AreaMatchesMonteCarloMembership) {
  // Exact area vs exact membership on a fine grid.
  std::vector<Point> a{Point(0, 0), Point(8, 2), Point(6, 8), Point(1, 6)};
  std::vector<Point> b{Point(3, -1), Point(9, 4), Point(4, 9)};
  auto pa = Polygon::Make(a).value();
  auto pb = Polygon::Make(b).value();
  Rational area = IntersectionArea(a, b);
  // Count unit-grid cell centers inside both; must be within the area
  // plus/minus the boundary cells (coarse sanity envelope).
  int inside = 0;
  for (int x = -2; x < 12; ++x) {
    for (int y = -2; y < 12; ++y) {
      Point p(Rational(2 * x + 1, 2), Rational(2 * y + 1, 2));
      if (pa.Contains(p) && pb.Contains(p)) ++inside;
    }
  }
  EXPECT_NEAR(area.ToDouble(), inside, 8.0);
}

// --- IntersectRegions ---------------------------------------------------------------

TEST(ClipTest, RegionKindsIntersections) {
  ConvexRegion pt = ConvexRegion::MakePoint(Point(1, 1));
  ConvexRegion seg =
      ConvexRegion::MakeSegment(Segment(Point(0, 0), Point(4, 4)));
  ConvexRegion poly = ConvexRegion::MakePolygon(
      Polygon::Make(Square(0, 0, 2)).value());

  // point ∧ segment / polygon.
  auto ps = IntersectRegions(pt, seg);
  ASSERT_TRUE(ps.has_value());
  EXPECT_EQ(ps->kind(), ConvexRegion::Kind::kPoint);
  auto pp = IntersectRegions(pt, poly);
  ASSERT_TRUE(pp.has_value());
  EXPECT_FALSE(
      IntersectRegions(ConvexRegion::MakePoint(Point(9, 9)), poly).has_value());

  // segment ∧ polygon: clipped to the square.
  auto sp = IntersectRegions(seg, poly);
  ASSERT_TRUE(sp.has_value());
  ASSERT_EQ(sp->kind(), ConvexRegion::Kind::kSegment);
  EXPECT_EQ(sp->BoundingBox(),
            Box::FromCorners(Point(0, 0), Point(2, 2)));

  // segment ∧ segment: proper crossing.
  ConvexRegion cross =
      ConvexRegion::MakeSegment(Segment(Point(0, 4), Point(4, 0)));
  auto ss = IntersectRegions(seg, cross);
  ASSERT_TRUE(ss.has_value());
  ASSERT_EQ(ss->kind(), ConvexRegion::Kind::kPoint);
  EXPECT_EQ(ss->point(), Point(2, 2));

  // segment ∧ segment collinear overlap.
  ConvexRegion along =
      ConvexRegion::MakeSegment(Segment(Point(2, 2), Point(6, 6)));
  auto overlap = IntersectRegions(seg, along);
  ASSERT_TRUE(overlap.has_value());
  ASSERT_EQ(overlap->kind(), ConvexRegion::Kind::kSegment);
  EXPECT_EQ(overlap->BoundingBox(),
            Box::FromCorners(Point(2, 2), Point(4, 4)));

  // polygon ∧ polygon.
  ConvexRegion poly2 = ConvexRegion::MakePolygon(
      Polygon::Make(Square(1, 1, 4)).value());
  auto pq = IntersectRegions(poly, poly2);
  ASSERT_TRUE(pq.has_value());
  ASSERT_EQ(pq->kind(), ConvexRegion::Kind::kPolygon);
  EXPECT_EQ(pq->polygon().Area(), Rational(1));
}

// --- Cross-validation: CQA join == geometric clipping -------------------------------

// §6 representation-neutrality, made a theorem of the test suite: for
// random convex regions, intersecting via the CONSTRAINT path (natural
// join conjoins stores, then vertex enumeration) equals intersecting via
// the VECTOR path (Sutherland-Hodgman clipping).
TEST(ClipTest, JoinEqualsClippingRandomized) {
  Rng rng(777);
  int nonempty = 0;
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<Point> a = Square(rng.UniformInt(0, 12), rng.UniformInt(0, 12),
                                  rng.UniformInt(2, 9));
    // Random convex quad: hull of four random points (retry degenerate).
    std::vector<Point> b;
    while (true) {
      std::vector<Point> pts;
      for (int i = 0; i < 4; ++i) {
        pts.emplace_back(rng.UniformInt(0, 16), rng.UniformInt(0, 16));
      }
      b = ConvexHull(pts);
      if (b.size() >= 3) break;
    }

    // Vector path.
    std::vector<Point> clipped = ClipConvex(a, b);

    // Constraint path.
    Conjunction ca = ConvexRingToConjunction(a, "x", "y");
    Conjunction cb = ConvexRingToConjunction(b, "x", "y");
    Conjunction both = Conjunction::And(ca, cb);
    if (!fm::IsSatisfiable(both)) {
      EXPECT_TRUE(clipped.empty())
          << "constraint path empty but clipping found "
          << clipped.size() << " vertices";
      continue;
    }
    auto region = ConjunctionToRegion(both, "x", "y");
    ASSERT_TRUE(region.ok()) << region.status().ToString();
    ++nonempty;
    switch (region->kind()) {
      case ConvexRegion::Kind::kPoint:
        ASSERT_EQ(clipped.size(), 1u);
        EXPECT_EQ(clipped[0], region->point());
        break;
      case ConvexRegion::Kind::kSegment:
        ASSERT_EQ(clipped.size(), 2u);
        EXPECT_EQ(Box::FromCorners(clipped[0], clipped[1]),
                  region->segment().BoundingBox());
        break;
      case ConvexRegion::Kind::kPolygon: {
        auto poly = Polygon::Make(clipped);
        ASSERT_TRUE(poly.ok());
        EXPECT_EQ(poly->Area(), region->polygon().Area());
        EXPECT_EQ(poly->size(), region->polygon().size());
        break;
      }
    }
  }
  EXPECT_GT(nonempty, 10) << "workload should produce real intersections";
}

}  // namespace
}  // namespace ccdb::geom
