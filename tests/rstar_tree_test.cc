#include "index/rstar_tree.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "index/strategy.h"
#include "util/random.h"

namespace ccdb {
namespace {

Rect RandomBox2D(Rng* rng) {
  double x = static_cast<double>(rng->UniformInt(0, 3000));
  double y = static_cast<double>(rng->UniformInt(0, 3000));
  double w = static_cast<double>(rng->UniformInt(1, 100));
  double h = static_cast<double>(rng->UniformInt(1, 100));
  return Rect::Make2D(x, x + w, y, y + h);
}

/// Brute-force reference: ids of boxes intersecting the query.
std::vector<uint64_t> LinearSearch(const std::vector<Rect>& boxes,
                                   const Rect& query) {
  std::vector<uint64_t> out;
  for (size_t i = 0; i < boxes.size(); ++i) {
    if (boxes[i].Intersects(query)) out.push_back(i);
  }
  return out;
}

// --- Rect ------------------------------------------------------------------------

TEST(RectTest, Measures) {
  Rect r = Rect::Make2D(0, 4, 0, 3);
  EXPECT_DOUBLE_EQ(r.Area(), 12.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 7.0);
  Rect r1 = Rect::Make1D(2, 5);
  EXPECT_DOUBLE_EQ(r1.Area(), 3.0);
  EXPECT_DOUBLE_EQ(r1.Margin(), 3.0);
}

TEST(RectTest, IntersectsAndContains) {
  Rect a = Rect::Make2D(0, 2, 0, 2);
  Rect b = Rect::Make2D(1, 3, 1, 3);
  Rect c = Rect::Make2D(5, 6, 5, 6);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Intersects(Rect::Make2D(2, 3, 0, 1))) << "touching edge";
  EXPECT_TRUE(a.Contains(Rect::Make2D(0.5, 1.5, 0.5, 1.5)));
  EXPECT_FALSE(b.Contains(a));
}

TEST(RectTest, ExpandOverlapEnlarge) {
  Rect a = Rect::Make2D(0, 2, 0, 2);
  Rect b = Rect::Make2D(1, 3, 1, 3);
  Rect u = a.ExpandedBy(b);
  EXPECT_DOUBLE_EQ(u.Area(), 9.0);
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 1.0);
  EXPECT_DOUBLE_EQ(a.OverlapArea(Rect::Make2D(5, 6, 5, 6)), 0.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 5.0);
}

TEST(RectTest, ConservativeRoundingBracketsRationals) {
  Rational third(1, 3);
  EXPECT_LT(Rect::RoundDown(third), third.ToDouble());
  EXPECT_GT(Rect::RoundUp(third), third.ToDouble());
}

// --- Basic tree operations ---------------------------------------------------------

TEST(RStarTreeTest, EmptyTreeSearch) {
  PageManager pm;
  BufferPool pool(&pm, 0);
  RStarTree tree(&pool, 2);
  auto hits = tree.Search(Rect::Make2D(0, 100, 0, 100));
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RStarTreeTest, FanoutDerivedFromPageSize) {
  PageManager pm;
  BufferPool pool(&pm, 0);
  RStarTree tree2(&pool, 2);
  RStarTree tree1(&pool, 1);
  EXPECT_EQ(tree2.max_entries(), (kPageSize - 4) / 40);
  EXPECT_EQ(tree1.max_entries(), (kPageSize - 4) / 24);
  EXPECT_GE(tree2.min_entries(), 2u);
  EXPECT_LE(tree2.min_entries(), tree2.max_entries() / 2);
}

TEST(RStarTreeTest, InsertAndFindFew) {
  PageManager pm;
  BufferPool pool(&pm, 0);
  RStarTree tree(&pool, 2);
  ASSERT_TRUE(tree.Insert(Rect::Make2D(0, 1, 0, 1), 10).ok());
  ASSERT_TRUE(tree.Insert(Rect::Make2D(5, 6, 5, 6), 20).ok());
  ASSERT_TRUE(tree.Insert(Rect::Make2D(0.5, 5.5, 0.5, 5.5), 30).ok());
  EXPECT_EQ(tree.size(), 3u);

  auto hits = tree.Search(Rect::Make2D(0, 1, 0, 1));
  ASSERT_TRUE(hits.ok());
  std::set<uint64_t> got(hits->begin(), hits->end());
  EXPECT_EQ(got, (std::set<uint64_t>{10, 30}));

  auto none = tree.Search(Rect::Make2D(100, 200, 100, 200));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(RStarTreeTest, SplitsGrowTheTree) {
  PageManager pm;
  BufferPool pool(&pm, 0);
  RStarTree tree(&pool, 2);
  Rng rng(1);
  const size_t n = tree.max_entries() * 3;  // force several splits
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.Insert(RandomBox2D(&rng), i).ok());
  }
  EXPECT_GE(tree.height(), 2);
  EXPECT_EQ(tree.size(), n);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  auto count = tree.CountNodes();
  ASSERT_TRUE(count.ok());
  EXPECT_GT(*count, 1u);
}

TEST(RStarTreeTest, SearchMatchesLinearScanRandomized) {
  PageManager pm;
  BufferPool pool(&pm, 0);
  RStarTree tree(&pool, 2);
  Rng rng(77);
  std::vector<Rect> boxes;
  for (uint64_t i = 0; i < 2000; ++i) {
    boxes.push_back(RandomBox2D(&rng));
    ASSERT_TRUE(tree.Insert(boxes.back(), i).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int q = 0; q < 100; ++q) {
    Rect query = RandomBox2D(&rng);
    auto hits = tree.Search(query);
    ASSERT_TRUE(hits.ok());
    std::vector<uint64_t> got = *hits;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, LinearSearch(boxes, query));
  }
}

TEST(RStarTreeTest, OneDimensionalTreeWorks) {
  PageManager pm;
  BufferPool pool(&pm, 0);
  RStarTree tree(&pool, 1);
  Rng rng(5);
  std::vector<Rect> intervals;
  for (uint64_t i = 0; i < 1500; ++i) {
    double lo = static_cast<double>(rng.UniformInt(0, 3000));
    double len = static_cast<double>(rng.UniformInt(1, 100));
    intervals.push_back(Rect::Make1D(lo, lo + len));
    ASSERT_TRUE(tree.Insert(intervals.back(), i).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int q = 0; q < 50; ++q) {
    double lo = static_cast<double>(rng.UniformInt(0, 3000));
    Rect query = Rect::Make1D(lo, lo + 50);
    auto hits = tree.Search(query);
    ASSERT_TRUE(hits.ok());
    std::vector<uint64_t> got = *hits;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, LinearSearch(intervals, query));
  }
}

TEST(RStarTreeTest, DuplicateRectsDistinctIds) {
  PageManager pm;
  BufferPool pool(&pm, 0);
  RStarTree tree(&pool, 2);
  Rect same = Rect::Make2D(10, 20, 10, 20);
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree.Insert(same, i).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  auto hits = tree.Search(same);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 300u);
}

// --- Delete -------------------------------------------------------------------------

TEST(RStarTreeTest, DeleteBasic) {
  PageManager pm;
  BufferPool pool(&pm, 0);
  RStarTree tree(&pool, 2);
  Rect a = Rect::Make2D(0, 1, 0, 1);
  Rect b = Rect::Make2D(5, 6, 5, 6);
  ASSERT_TRUE(tree.Insert(a, 1).ok());
  ASSERT_TRUE(tree.Insert(b, 2).ok());
  ASSERT_TRUE(tree.Delete(a, 1).ok());
  EXPECT_EQ(tree.size(), 1u);
  auto hits = tree.Search(Rect::Make2D(0, 10, 0, 10));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(*hits, std::vector<uint64_t>{2});
  EXPECT_FALSE(tree.Delete(a, 1).ok()) << "second delete must be NotFound";
}

TEST(RStarTreeTest, DeleteHalfThenSearchStillExact) {
  PageManager pm;
  BufferPool pool(&pm, 0);
  RStarTree tree(&pool, 2);
  Rng rng(9);
  std::vector<Rect> boxes;
  for (uint64_t i = 0; i < 1200; ++i) {
    boxes.push_back(RandomBox2D(&rng));
    ASSERT_TRUE(tree.Insert(boxes.back(), i).ok());
  }
  // Delete every even id; trigger condensation and root shrinks.
  for (uint64_t i = 0; i < 1200; i += 2) {
    ASSERT_TRUE(tree.Delete(boxes[i], i).ok()) << i;
  }
  EXPECT_EQ(tree.size(), 600u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int q = 0; q < 50; ++q) {
    Rect query = RandomBox2D(&rng);
    auto hits = tree.Search(query);
    ASSERT_TRUE(hits.ok());
    std::vector<uint64_t> got = *hits;
    std::sort(got.begin(), got.end());
    std::vector<uint64_t> expected;
    for (uint64_t i = 1; i < 1200; i += 2) {
      if (boxes[i].Intersects(query)) expected.push_back(i);
    }
    EXPECT_EQ(got, expected);
  }
}

TEST(RStarTreeTest, DeleteEverythingLeavesEmptyTree) {
  PageManager pm;
  BufferPool pool(&pm, 0);
  RStarTree tree(&pool, 2);
  Rng rng(13);
  std::vector<Rect> boxes;
  for (uint64_t i = 0; i < 500; ++i) {
    boxes.push_back(RandomBox2D(&rng));
    ASSERT_TRUE(tree.Insert(boxes[i], i).ok());
  }
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Delete(boxes[i], i).ok()) << i;
  }
  EXPECT_EQ(tree.size(), 0u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  auto hits = tree.Search(Rect::Make2D(0, 4000, 0, 4000));
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST(RStarTreeTest, InterleavedInsertDeleteFuzz) {
  PageManager pm;
  BufferPool pool(&pm, 0);
  RStarTree tree(&pool, 2);
  Rng rng(2718);
  std::vector<std::pair<Rect, uint64_t>> live;
  uint64_t next_id = 0;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng.UniformInt(0, 2) > 0) {
      Rect box = RandomBox2D(&rng);
      ASSERT_TRUE(tree.Insert(box, next_id).ok());
      live.emplace_back(box, next_id);
      ++next_id;
    } else {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      ASSERT_TRUE(tree.Delete(live[pick].first, live[pick].second).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    }
    if (step % 500 == 499) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "step " << step;
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), live.size());
  // Final exactness check.
  Rect query = Rect::Make2D(1000, 2000, 1000, 2000);
  auto hits = tree.Search(query);
  ASSERT_TRUE(hits.ok());
  std::set<uint64_t> got(hits->begin(), hits->end());
  std::set<uint64_t> expected;
  for (const auto& [box, id] : live) {
    if (box.Intersects(query)) expected.insert(id);
  }
  EXPECT_EQ(got, expected);
}

// --- Disk-access accounting ------------------------------------------------------------

TEST(RStarTreeTest, SearchCostsLogarithmicNotLinear) {
  PageManager pm;
  BufferPool pool(&pm, 0);
  RStarTree tree(&pool, 2);
  Rng rng(31);
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(tree.Insert(RandomBox2D(&rng), i).ok());
  }
  auto nodes = tree.CountNodes();
  ASSERT_TRUE(nodes.ok());
  pm.ResetStats();
  auto hits = tree.Search(Rect::Make2D(1500, 1550, 1500, 1550));
  ASSERT_TRUE(hits.ok());
  uint64_t accesses = pm.stats().reads;
  EXPECT_GT(accesses, 0u);
  EXPECT_LT(accesses, *nodes / 4)
      << "a selective query must touch a small fraction of " << *nodes
      << " nodes";
}

// --- Strategies --------------------------------------------------------------------------

TEST(StrategyTest, JointAndSeparateAgreeOnResults) {
  PageManager pm;
  BufferPool pool(&pm, 0);
  Rect domain = Rect::Make2D(0, 3100, 0, 3100);
  JointIndex joint(&pool, domain);
  SeparateIndex separate(&pool);
  Rng rng(64);
  std::vector<Rect> boxes;
  for (uint64_t i = 0; i < 2000; ++i) {
    boxes.push_back(RandomBox2D(&rng));
    ASSERT_TRUE(joint.Insert(boxes.back(), i).ok());
    ASSERT_TRUE(separate.Insert(boxes.back(), i).ok());
  }
  for (int q = 0; q < 40; ++q) {
    Rect query = RandomBox2D(&rng);
    BoxQuery both = BoxQuery::Both(query.lo[0], query.hi[0], query.lo[1],
                                   query.hi[1]);
    auto joint_hits = joint.Search(both);
    auto sep_hits = separate.Search(both);
    ASSERT_TRUE(joint_hits.ok() && sep_hits.ok());
    std::sort(joint_hits->begin(), joint_hits->end());
    std::sort(sep_hits->begin(), sep_hits->end());
    EXPECT_EQ(*joint_hits, *sep_hits);
    EXPECT_EQ(*joint_hits, LinearSearch(boxes, query));

    BoxQuery xonly = BoxQuery::XOnly(query.lo[0], query.hi[0]);
    auto jx = joint.Search(xonly);
    auto sx = separate.Search(xonly);
    ASSERT_TRUE(jx.ok() && sx.ok());
    std::sort(jx->begin(), jx->end());
    std::sort(sx->begin(), sx->end());
    EXPECT_EQ(*jx, *sx);
  }
}

TEST(StrategyTest, SeparateRejectsEmptyQuery) {
  PageManager pm;
  BufferPool pool(&pm, 0);
  SeparateIndex separate(&pool);
  EXPECT_FALSE(separate.Search(BoxQuery{}).ok());
}

TEST(StrategyTest, JointWinsOnConjunctiveLowSelectivityQueries) {
  // The §5.3 worked example: each attribute alone has ~50% selectivity but
  // the conjunction is tiny. Separate indices pay for both big scans.
  PageManager pm;
  BufferPool pool(&pm, 0);
  Rect domain = Rect::Make2D(0, 3100, 0, 3100);
  JointIndex joint(&pool, domain);
  SeparateIndex separate(&pool);
  Rng rng(99);
  for (uint64_t i = 0; i < 5000; ++i) {
    Rect box = RandomBox2D(&rng);
    ASSERT_TRUE(joint.Insert(box, i).ok());
    ASSERT_TRUE(separate.Insert(box, i).ok());
  }
  // x < 1500 AND y > 1500 — half the domain each, a quarter combined.
  BoxQuery query = BoxQuery::Both(0, 1500, 1500, 3100);
  pm.ResetStats();
  ASSERT_TRUE(joint.Search(query).ok());
  uint64_t joint_cost = pm.stats().reads;
  pm.ResetStats();
  ASSERT_TRUE(separate.Search(query).ok());
  uint64_t separate_cost = pm.stats().reads;
  EXPECT_LT(joint_cost, separate_cost);
}

}  // namespace
}  // namespace ccdb
