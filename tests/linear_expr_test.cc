#include "constraint/linear_expr.h"

#include <gtest/gtest.h>

namespace ccdb {
namespace {

TEST(LinearExprTest, ZeroByDefault) {
  LinearExpr e;
  EXPECT_TRUE(e.IsZero());
  EXPECT_TRUE(e.IsConstant());
  EXPECT_EQ(e.ToString(), "0");
}

TEST(LinearExprTest, VariableAndTerm) {
  LinearExpr x = LinearExpr::Variable("x");
  EXPECT_EQ(x.Coeff("x"), Rational(1));
  EXPECT_EQ(x.Coeff("y"), Rational(0));
  EXPECT_TRUE(x.Mentions("x"));
  EXPECT_FALSE(x.Mentions("y"));

  LinearExpr t = LinearExpr::Term("y", Rational(3, 2));
  EXPECT_EQ(t.Coeff("y"), Rational(3, 2));

  // A zero-coefficient term must not be stored.
  LinearExpr z = LinearExpr::Term("z", Rational(0));
  EXPECT_TRUE(z.IsZero());
  EXPECT_FALSE(z.Mentions("z"));
}

TEST(LinearExprTest, AdditionMergesAndCancels) {
  LinearExpr a = LinearExpr::Term("x", Rational(2)) +
                 LinearExpr::Term("y", Rational(1)) +
                 LinearExpr::Constant(Rational(5));
  LinearExpr b = LinearExpr::Term("x", Rational(-2)) +
                 LinearExpr::Term("y", Rational(3));
  LinearExpr sum = a + b;
  EXPECT_FALSE(sum.Mentions("x")) << "cancelled coefficient must be erased";
  EXPECT_EQ(sum.Coeff("y"), Rational(4));
  EXPECT_EQ(sum.constant(), Rational(5));
}

TEST(LinearExprTest, ScalarMultiplication) {
  LinearExpr e = LinearExpr::Term("x", Rational(2)) +
                 LinearExpr::Constant(Rational(3));
  LinearExpr half = e * Rational(1, 2);
  EXPECT_EQ(half.Coeff("x"), Rational(1));
  EXPECT_EQ(half.constant(), Rational(3, 2));
  EXPECT_TRUE((e * Rational(0)).IsZero());
}

TEST(LinearExprTest, SubstituteReplacesVariable) {
  // x + 2y, substitute y := 3x - 1  =>  7x - 2.
  LinearExpr e = LinearExpr::Variable("x") + LinearExpr::Term("y", Rational(2));
  LinearExpr repl = LinearExpr::Term("x", Rational(3)) -
                    LinearExpr::Constant(Rational(1));
  LinearExpr out = e.Substitute("y", repl);
  EXPECT_EQ(out.Coeff("x"), Rational(7));
  EXPECT_FALSE(out.Mentions("y"));
  EXPECT_EQ(out.constant(), Rational(-2));
}

TEST(LinearExprTest, SubstituteAbsentVariableIsIdentity) {
  LinearExpr e = LinearExpr::Variable("x");
  EXPECT_EQ(e.Substitute("q", LinearExpr::Constant(Rational(9))), e);
}

TEST(LinearExprTest, RenameVariable) {
  LinearExpr e = LinearExpr::Term("x", Rational(5)) +
                 LinearExpr::Variable("y");
  LinearExpr renamed = e.RenameVariable("x", "z");
  EXPECT_EQ(renamed.Coeff("z"), Rational(5));
  EXPECT_FALSE(renamed.Mentions("x"));
  EXPECT_EQ(renamed.Coeff("y"), Rational(1));
}

TEST(LinearExprTest, EvaluateAtPoint) {
  LinearExpr e = LinearExpr::Term("x", Rational(2)) +
                 LinearExpr::Term("y", Rational(-1)) +
                 LinearExpr::Constant(Rational(1, 2));
  Assignment p{{"x", Rational(3)}, {"y", Rational(1, 2)}};
  EXPECT_EQ(e.Evaluate(p), Rational(6));
}

TEST(LinearExprTest, VariablesSet) {
  LinearExpr e = LinearExpr::Variable("b") + LinearExpr::Variable("a");
  auto vars = e.Variables();
  EXPECT_EQ(vars, (std::set<std::string>{"a", "b"}));
}

TEST(LinearExprTest, ToStringReadable) {
  LinearExpr e = LinearExpr::Term("x", Rational(2)) +
                 LinearExpr::Term("y", Rational(3, 2)) -
                 LinearExpr::Constant(Rational(7));
  EXPECT_EQ(e.ToString(), "2x + 3/2y - 7");

  LinearExpr neg = LinearExpr::Term("x", Rational(-1)) +
                   LinearExpr::Variable("y");
  EXPECT_EQ(neg.ToString(), "-x + y");
}

TEST(LinearExprTest, TotalOrderIsConsistent) {
  LinearExpr a = LinearExpr::Variable("x");
  LinearExpr b = LinearExpr::Variable("y");
  LinearExpr c = LinearExpr::Term("x", Rational(2));
  EXPECT_TRUE((a < b) != (b < a));
  EXPECT_TRUE((a < c) != (c < a));
  EXPECT_FALSE(a < a);
}

}  // namespace
}  // namespace ccdb
