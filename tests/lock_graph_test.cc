// Tests for the runtime lock-order deadlock detector
// (src/util/lock_graph.*). Substantive only in -DCCDB_DEADLOCK_DETECT=ON
// builds; in a normal build every hook compiles away and the suite
// degenerates to checking the no-op stubs, with the detector cases
// GTEST_SKIPped so the skip is visible rather than silently green.

#include "util/lock_graph.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/mutex.h"

namespace ccdb {
namespace {

#if defined(CCDB_DEADLOCK_DETECT)

TEST(LockGraphTest, NamedAcquisitionRecordsEdge) {
  const uint64_t before = lock_graph::EdgeCount();
  Mutex outer{"test.edge_outer"};
  Mutex inner{"test.edge_inner"};
  {
    MutexLock a(outer);
    MutexLock b(inner);
  }
  EXPECT_GT(lock_graph::EdgeCount(), before);
  const std::string json = lock_graph::DumpJson();
  EXPECT_NE(json.find("\"test.edge_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"from\":\"test.edge_outer\",\"to\":\"test.edge_inner\""),
            std::string::npos)
      << json;
}

// The ABBA inversion: thread 1 takes A then B (recording A→B), the same
// or another thread then takes B and attempts A. The attempt must abort
// *before blocking* — no actual deadlock is needed to catch it — and the
// report must carry both conflicting hold-stacks.
TEST(LockGraphDeathTest, AbbaInversionAbortsWithBothStacks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a{"test.abba_a"};
        Mutex b{"test.abba_b"};
        std::thread t([&] {
          MutexLock la(a);
          MutexLock lb(b);  // records test.abba_a -> test.abba_b
        });
        t.join();
        MutexLock lb(b);
        MutexLock la(a);  // closes the cycle: must abort here
      },
      // Both stacks in one report: the acquiring thread's (holding
      // abba_b, wanting abba_a) and the recorded witness of the opposing
      // edge (held abba_a while taking abba_b).
      "lock-order violation(.|\n)*"
      "holds: \\[test\\.abba_b\\], acquiring \"test\\.abba_a\"(.|\n)*"
      "edge \"test\\.abba_a\" -> \"test\\.abba_b\"(.|\n)*"
      "hold-stack \\[test\\.abba_a -> test\\.abba_b\\]");
}

// Same-rank recursion (two instances sharing a name, or re-entry on one
// instance) is an order violation by definition.
TEST(LockGraphDeathTest, SameRankNestingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex first{"test.same_rank"};
        Mutex second{"test.same_rank"};
        MutexLock l1(first);
        MutexLock l2(second);
      },
      "lock-order violation(.|\n)*test\\.same_rank");
}

// The portable REQUIRES contract: AssertHeld with the lock not held must
// abort and name the lock (this is what every CCDB_REQUIRES entry point
// calls, so the contract fails loudly under GCC too).
TEST(LockGraphDeathTest, AssertHeldViolationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex mu{"test.assert_held"};
        mu.AssertHeld();  // not held: contract violation
      },
      "lock assertion failure(.|\n)*test\\.assert_held");
}

TEST(LockGraphTest, AssertHeldPassesWhileHeld) {
  Mutex mu{"test.assert_ok"};
  MutexLock lock(mu);
  mu.AssertHeld();  // must not abort
}

TEST(LockGraphTest, SharedMutexReaderAssertions) {
  SharedMutex mu{"test.shared_assert"};
  {
    ReaderLock lock(mu);
    mu.AssertReaderHeld();
  }
  {
    WriterLock lock(mu);
    mu.AssertHeld();
    mu.AssertReaderHeld();  // exclusive implies reader access
  }
}

// An anonymous lock joins the held-set (AssertHeld works) but not the
// graph (no rank to order against).
TEST(LockGraphTest, AnonymousLocksStayOutOfGraph) {
  const uint64_t before = lock_graph::EdgeCount();
  Mutex anon_a;
  Mutex anon_b;
  MutexLock a(anon_a);
  MutexLock b(anon_b);
  anon_a.AssertHeld();
  anon_b.AssertHeld();
  EXPECT_EQ(lock_graph::EdgeCount(), before);
}

// TryLock acquisitions record advisory (try_only) edges but must never
// abort: a try-acquisition cannot block, so it cannot deadlock.
TEST(LockGraphTest, TryLockCycleDoesNotAbort) {
  Mutex a{"test.try_a"};
  Mutex b{"test.try_b"};
  {
    MutexLock la(a);
    ASSERT_TRUE(b.TryLock());
    b.Unlock();
  }
  {
    MutexLock lb(b);
    ASSERT_TRUE(a.TryLock());  // would close a cycle if it could block
    a.Unlock();
  }
  const std::string json = lock_graph::DumpJson();
  EXPECT_NE(json.find("\"from\":\"test.try_b\",\"to\":\"test.try_a\","),
            std::string::npos)
      << json;
}

// CondVar::Wait releases the mutex: the held-set must reflect that (a
// concurrent AssertHeld contract can't be satisfied by a waiter), and
// the reacquisition must not record bogus edges from locks the waiter
// never held across the wait.
TEST(LockGraphTest, CondVarWaitMaintainsHeldSet) {
  Mutex mu{"test.cv_mu"};
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    mu.AssertHeld();  // reacquired: held again
  }
  waker.join();
}

TEST(LockGraphTest, NoteBlockingCallCountsHeldLocks) {
  const uint64_t before = lock_graph::HeldOverBlockCount();
  lock_graph::NoteBlockingCall("test.block_site.unheld");
  EXPECT_EQ(lock_graph::HeldOverBlockCount(), before);  // nothing held
  Mutex mu{"test.block_mu"};
  {
    MutexLock lock(mu);
    lock_graph::NoteBlockingCall("test.block_site.held");
  }
  EXPECT_EQ(lock_graph::HeldOverBlockCount(), before + 1);
  const std::string json = lock_graph::DumpJson();
  EXPECT_NE(json.find("test.block_site.held"), std::string::npos);
  EXPECT_EQ(json.find("test.block_site.unheld"), std::string::npos) << json;
}

TEST(LockGraphTest, SetEnabledSuppressesRecording) {
  Mutex outer{"test.toggle_outer"};
  Mutex inner{"test.toggle_inner"};
  lock_graph::SetEnabled(false);
  const uint64_t before = lock_graph::EdgeCount();
  {
    MutexLock a(outer);
    MutexLock b(inner);
  }
  lock_graph::SetEnabled(true);
  EXPECT_EQ(lock_graph::EdgeCount(), before);
  {
    MutexLock a(outer);
    MutexLock b(inner);
  }
  EXPECT_GT(lock_graph::EdgeCount(), before);
}

TEST(LockGraphTest, WriteDumpProducesReadableFile) {
  EXPECT_FALSE(lock_graph::WriteDump("/nonexistent-dir/definitely"));
  EXPECT_TRUE(lock_graph::WriteDump(::testing::TempDir()));
}

// Concurrent hammering must be race-free (the suite runs under TSan via
// tools/run_sanitizers.sh) and deterministic in edge content.
TEST(LockGraphTest, ConcurrentAcquisitionsAreConsistent) {
  Mutex outer{"test.mt_outer"};
  Mutex inner{"test.mt_inner"};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        MutexLock a(outer);
        MutexLock b(inner);
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::string json = lock_graph::DumpJson();
  EXPECT_NE(json.find("\"from\":\"test.mt_outer\",\"to\":\"test.mt_inner\""),
            std::string::npos);
}

#else  // !CCDB_DEADLOCK_DETECT

TEST(LockGraphTest, StubsCompileToNothing) {
  // The off-build stubs: callable, inert, and Mutex carries no hooks.
  EXPECT_EQ(lock_graph::HeldOverBlockCount(), 0u);
  EXPECT_EQ(lock_graph::EdgeCount(), 0u);
  EXPECT_FALSE(lock_graph::Enabled());
  EXPECT_EQ(lock_graph::DumpJson(), "{}");
  CCDB_NOTE_BLOCKING_CALL("test.noop");
  Mutex mu{"test.named_off"};
  MutexLock lock(mu);
  mu.AssertHeld();  // no-op without the detector
}

TEST(LockGraphTest, DetectorCasesRequireDetectorBuild) {
  GTEST_SKIP() << "built without -DCCDB_DEADLOCK_DETECT=ON; the deadlock "
                  "detector and its death tests are compiled out";
}

#endif  // CCDB_DEADLOCK_DETECT

}  // namespace
}  // namespace ccdb
