#include "constraint/constraint.h"

#include <gtest/gtest.h>

namespace ccdb {
namespace {

LinearExpr X() { return LinearExpr::Variable("x"); }
LinearExpr Y() { return LinearExpr::Variable("y"); }
LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

TEST(ConstraintTest, MakeMapsAllOperators) {
  // x <= 5 and 5 >= x must canonicalize identically.
  auto le = Constraint::Make(X(), "<=", C(5));
  auto ge = Constraint::Make(C(5), ">=", X());
  ASSERT_TRUE(le.ok());
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(le.value(), ge.value());

  auto lt = Constraint::Make(X(), "<", C(5));
  auto gt = Constraint::Make(C(5), ">", X());
  ASSERT_TRUE(lt.ok());
  ASSERT_TRUE(gt.ok());
  EXPECT_EQ(lt.value(), gt.value());
  EXPECT_NE(le.value(), lt.value());

  EXPECT_TRUE(Constraint::Make(X(), "=", C(5)).ok());
  EXPECT_TRUE(Constraint::Make(X(), "==", C(5)).ok());
  EXPECT_FALSE(Constraint::Make(X(), "!=", C(5)).ok());
  EXPECT_FALSE(Constraint::Make(X(), "~", C(5)).ok());
}

TEST(ConstraintTest, CanonicalizationScalesToCoprimeIntegers) {
  // 2x + 4y <= 6  and  x + 2y <= 3  are the same constraint.
  Constraint a = Constraint::Le(X() * Rational(2) + Y() * Rational(4), C(6));
  Constraint b = Constraint::Le(X() + Y() * Rational(2), C(3));
  EXPECT_EQ(a, b);

  // Fractions scale up: x/2 <= 3/4  ==  2x <= 3.
  Constraint c = Constraint::Le(X() * Rational(1, 2), C(3) * Rational(1, 4));
  Constraint d = Constraint::Le(X() * Rational(2), C(3));
  EXPECT_EQ(c, d);
}

TEST(ConstraintTest, EqualitySignIsCanonical) {
  // x - y = 0 and y - x = 0 are the same equality.
  Constraint a = Constraint::Eq(X(), Y());
  Constraint b = Constraint::Eq(Y(), X());
  EXPECT_EQ(a, b);
}

TEST(ConstraintTest, InequalitySignIsNotFlipped) {
  // x <= y and y <= x are different.
  EXPECT_NE(Constraint::Le(X(), Y()), Constraint::Le(Y(), X()));
}

TEST(ConstraintTest, TrivialDetection) {
  EXPECT_TRUE(Constraint::Le(C(-1), C(0)).IsTriviallyTrue());
  EXPECT_TRUE(Constraint::Lt(C(0), C(1)).IsTriviallyTrue());
  EXPECT_TRUE(Constraint::Eq(C(2), C(2)).IsTriviallyTrue());
  EXPECT_TRUE(Constraint::Le(C(1), C(0)).IsTriviallyFalse());
  EXPECT_TRUE(Constraint::Lt(C(0), C(0)).IsTriviallyFalse());
  EXPECT_TRUE(Constraint::Eq(C(1), C(2)).IsTriviallyFalse());
  EXPECT_FALSE(Constraint::Le(X(), C(0)).IsTriviallyTrue());
  EXPECT_FALSE(Constraint::Le(X(), C(0)).IsTriviallyFalse());
}

TEST(ConstraintTest, SatisfactionAtPoint) {
  Constraint c = Constraint::Le(X() + Y(), C(3));
  EXPECT_TRUE(c.IsSatisfiedBy({{"x", Rational(1)}, {"y", Rational(2)}}));
  EXPECT_FALSE(c.IsSatisfiedBy({{"x", Rational(2)}, {"y", Rational(2)}}));

  Constraint strict = Constraint::Lt(X(), C(1));
  EXPECT_FALSE(strict.IsSatisfiedBy({{"x", Rational(1)}}));
  EXPECT_TRUE(strict.IsSatisfiedBy({{"x", Rational(99, 100)}}));

  Constraint eq = Constraint::Eq(X(), C(4));
  EXPECT_TRUE(eq.IsSatisfiedBy({{"x", Rational(4)}}));
  EXPECT_FALSE(eq.IsSatisfiedBy({{"x", Rational(5)}}));
}

TEST(ConstraintTest, NegationOfLe) {
  Constraint c = Constraint::Le(X(), C(5));  // x <= 5
  auto negated = c.Negate();
  ASSERT_EQ(negated.size(), 1u);
  // ¬(x <= 5)  ==  x > 5.
  Assignment at6{{"x", Rational(6)}};
  Assignment at5{{"x", Rational(5)}};
  EXPECT_TRUE(negated[0].IsSatisfiedBy(at6));
  EXPECT_FALSE(negated[0].IsSatisfiedBy(at5));
}

TEST(ConstraintTest, NegationOfLt) {
  Constraint c = Constraint::Lt(X(), C(5));
  auto negated = c.Negate();
  ASSERT_EQ(negated.size(), 1u);
  EXPECT_TRUE(negated[0].IsSatisfiedBy({{"x", Rational(5)}}));
  EXPECT_FALSE(negated[0].IsSatisfiedBy({{"x", Rational(4)}}));
}

TEST(ConstraintTest, NegationOfEqIsTwoStrictSides) {
  Constraint c = Constraint::Eq(X(), C(5));
  auto negated = c.Negate();
  ASSERT_EQ(negated.size(), 2u);
  Assignment at4{{"x", Rational(4)}};
  Assignment at5{{"x", Rational(5)}};
  Assignment at6{{"x", Rational(6)}};
  int satisfied4 = negated[0].IsSatisfiedBy(at4) + negated[1].IsSatisfiedBy(at4);
  int satisfied5 = negated[0].IsSatisfiedBy(at5) + negated[1].IsSatisfiedBy(at5);
  int satisfied6 = negated[0].IsSatisfiedBy(at6) + negated[1].IsSatisfiedBy(at6);
  EXPECT_EQ(satisfied4, 1);
  EXPECT_EQ(satisfied5, 0);
  EXPECT_EQ(satisfied6, 1);
}

TEST(ConstraintTest, DoubleNegationPreservesSemantics) {
  Constraint c = Constraint::Le(X() * Rational(2) - Y(), C(3));
  auto once = c.Negate();
  ASSERT_EQ(once.size(), 1u);
  auto twice = once[0].Negate();
  ASSERT_EQ(twice.size(), 1u);
  EXPECT_EQ(twice[0], c);
}

TEST(ConstraintTest, SubstituteRecanonicalizes) {
  // x + y <= 3, y := x  =>  2x <= 3 (canonical: 2x - 3 <= 0).
  Constraint c = Constraint::Le(X() + Y(), C(3));
  Constraint sub = c.Substitute("y", X());
  EXPECT_EQ(sub, Constraint::Le(X() * Rational(2), C(3)));
}

TEST(ConstraintTest, SubstituteCanCollapseToTrivial) {
  Constraint c = Constraint::Le(X() - Y(), C(0));
  Constraint sub = c.Substitute("x", Y());
  EXPECT_TRUE(sub.IsTriviallyTrue());
}

TEST(ConstraintTest, RenameVariable) {
  Constraint c = Constraint::Le(X(), C(5));
  Constraint renamed = c.RenameVariable("x", "t");
  EXPECT_TRUE(renamed.Mentions("t"));
  EXPECT_FALSE(renamed.Mentions("x"));
  EXPECT_TRUE(renamed.IsSatisfiedBy({{"t", Rational(5)}}));
}

TEST(ConstraintTest, PrettyStringMovesConstant) {
  Constraint c = Constraint::Le(X() + Y(), C(3));
  EXPECT_EQ(c.ToPrettyString(), "x + y <= 3");
  Constraint eq = Constraint::Eq(X(), C(1));
  EXPECT_EQ(eq.ToPrettyString(), "x = 1");
}

}  // namespace
}  // namespace ccdb
