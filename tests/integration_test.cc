// System-level integration: the full stack exercised in one scenario —
// geometry -> constraint conversion -> relations -> text export/import ->
// disk persistence -> stored+indexed relations -> language queries ->
// whole-feature operators — with cross-path consistency assertions.

#include <gtest/gtest.h>

#include "ccdb.h"

namespace ccdb {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema spatial = Schema::Make({Schema::RelationalString("fid"),
                                   Schema::ConstraintRational("x"),
                                   Schema::ConstraintRational("y")})
                         .value();
    // A 4x4 grid of 100x100 parcels...
    parcels_ = Relation(spatial);
    for (int gx = 0; gx < 4; ++gx) {
      for (int gy = 0; gy < 4; ++gy) {
        geom::Polygon cell = geom::Polygon::Rectangle(geom::Box::FromCorners(
            geom::Point(gx * 100, gy * 100),
            geom::Point(gx * 100 + 100, gy * 100 + 100)));
        Tuple t;
        t.SetValue("fid", Value::String("p" + std::to_string(gx) + "_" +
                                        std::to_string(gy)));
        t.SetConstraints(
            geom::ConvexRingToConjunction(cell.vertices(), "x", "y"));
        ASSERT_TRUE(parcels_.Insert(std::move(t)).ok());
      }
    }
    // ...and a diagonal path crossing them.
    geom::Polyline path({geom::Point(-50, -50), geom::Point(450, 450)});
    trail_ = Relation(spatial);
    for (const Conjunction& seg :
         geom::PolylineToConstraintTuples(path, "x", "y")) {
      Tuple t;
      t.SetValue("fid", Value::String("trail"));
      t.SetConstraints(seg);
      ASSERT_TRUE(trail_.Insert(std::move(t)).ok());
    }
    db_.CreateOrReplace("Parcels", parcels_);
    db_.CreateOrReplace("Trail", trail_);
  }

  Relation parcels_;
  Relation trail_;
  Database db_;
};

TEST_F(IntegrationTest, TextAndDiskPersistenceAgree) {
  // Text round trip.
  std::string text = lang::FormatDatabaseText(db_);
  Database from_text;
  ASSERT_TRUE(lang::LoadDatabaseText(text, &from_text).ok());
  // Disk round trip.
  PageManager disk;
  BufferPool pool(&disk, 8);
  auto root = SaveDatabase(&pool, db_);
  ASSERT_TRUE(root.ok());
  auto from_disk = LoadDatabase(&pool, *root);
  ASSERT_TRUE(from_disk.ok());
  // All three copies identical.
  for (const std::string& name : db_.Names()) {
    const Relation* original = db_.Get(name).value();
    const Relation* text_copy = from_text.Get(name).value();
    const Relation* disk_copy = from_disk->Get(name).value();
    ASSERT_EQ(original->size(), text_copy->size()) << name;
    ASSERT_EQ(original->size(), disk_copy->size()) << name;
    for (size_t i = 0; i < original->size(); ++i) {
      EXPECT_EQ(original->tuples()[i], text_copy->tuples()[i]);
      EXPECT_EQ(original->tuples()[i], disk_copy->tuples()[i]);
    }
  }
}

TEST_F(IntegrationTest, DiagonalTrailCrossesExactlyTheDiagonalParcels) {
  auto crossed = lang::RunQuery(
      "R0 = buffer-join Trail and Parcels within 0\n", &db_);
  ASSERT_TRUE(crossed.ok()) << crossed.status().ToString();
  // The diagonal from (-50,-50) to (450,450) passes through the four
  // diagonal parcels' interiors and touches the corners of the six
  // adjacent off-diagonal parcels (closed regions: touching counts).
  std::set<std::string> ids;
  for (const Tuple& t : crossed->tuples()) {
    ids.insert(t.GetValue("fid2").AsString());
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ids.count("p" + std::to_string(i) + "_" + std::to_string(i)))
        << "diagonal parcel " << i;
  }
  EXPECT_EQ(ids.size(), 4u + 6u) << "4 crossed + 6 corner-touched";
}

TEST_F(IntegrationTest, LanguagePipelineMatchesDirectApi) {
  // Language path.
  auto via_lang = lang::RunQuery(
      "R0 = select x >= 100, x <= 200 from Parcels\n"
      "R1 = project R0 on fid\n",
      &db_);
  ASSERT_TRUE(via_lang.ok());
  // Direct API path.
  Predicate pred;
  pred.linear.push_back(Constraint::Ge(LinearExpr::Variable("x"),
                                       LinearExpr::Constant(Rational(100))));
  pred.linear.push_back(Constraint::Le(LinearExpr::Variable("x"),
                                       LinearExpr::Constant(Rational(200))));
  auto selected = cqa::Select(parcels_, pred);
  ASSERT_TRUE(selected.ok());
  auto via_api = cqa::Project(*selected, {"fid"});
  ASSERT_TRUE(via_api.ok());
  EXPECT_EQ(via_lang->size(), via_api->size());
  // Columns 1 and 2 of the grid qualify (x ranges [100,200] and [200,300]
  // intersect the band [100,200]); column 0 touches at x=100 too.
  EXPECT_EQ(via_api->size(), 12u) << via_api->ToString();
}

TEST_F(IntegrationTest, StoredRelationMatchesInMemorySelect) {
  PageManager disk;
  BufferPool pool(&disk, 0);
  auto stored = cqa::StoredRelation::Create(
      &pool, parcels_, cqa::AccessIndexKind::kJoint, "x", "y",
      Rect::Make2D(-100, 600, -100, 600));
  ASSERT_TRUE(stored.ok());
  BoxQuery window = BoxQuery::Both(150, 250, 150, 250);
  auto from_disk = (*stored)->BoxSelect(window);
  ASSERT_TRUE(from_disk.ok());

  Predicate pred;
  for (auto [attr, lo, hi] :
       {std::tuple{"x", 150, 250}, std::tuple{"y", 150, 250}}) {
    pred.linear.push_back(Constraint::Ge(LinearExpr::Variable(attr),
                                         LinearExpr::Constant(Rational(lo))));
    pred.linear.push_back(Constraint::Le(LinearExpr::Variable(attr),
                                         LinearExpr::Constant(Rational(hi))));
  }
  auto in_memory = cqa::Select(parcels_, pred);
  ASSERT_TRUE(in_memory.ok());
  EXPECT_EQ(from_disk->size(), in_memory->size());
}

TEST_F(IntegrationTest, GeometricAndConstraintIntersectionAgree) {
  // Clip every pair of adjacent parcels geometrically and compare with
  // the constraint-path join region (shared edges -> segments).
  auto features = cqa::FeatureSet::FromRelation(parcels_);
  ASSERT_TRUE(features.ok());
  int shared_edges = 0;
  const auto& fs = features->features();
  for (size_t i = 0; i < fs.size(); ++i) {
    for (size_t j = i + 1; j < fs.size(); ++j) {
      auto geo = geom::IntersectRegions(fs[i].parts[0], fs[j].parts[0]);
      Conjunction both = Conjunction::And(
          geom::ConvexRingToConjunction(fs[i].parts[0].polygon().vertices(),
                                        "x", "y"),
          geom::ConvexRingToConjunction(fs[j].parts[0].polygon().vertices(),
                                        "x", "y"));
      bool constraint_nonempty = fm::IsSatisfiable(both);
      EXPECT_EQ(geo.has_value(), constraint_nonempty)
          << fs[i].id << " vs " << fs[j].id;
      if (geo && geo->kind() == geom::ConvexRegion::Kind::kSegment) {
        ++shared_edges;
      }
    }
  }
  EXPECT_EQ(shared_edges, 24) << "4x4 grid has 2*4*3 = 24 interior edges";
}

}  // namespace
}  // namespace ccdb
