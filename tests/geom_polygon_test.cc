#include "geom/polygon.h"

#include <gtest/gtest.h>

#include "geom/decompose.h"
#include "util/random.h"

namespace ccdb::geom {
namespace {

Polygon MustMake(std::vector<Point> ring) {
  auto p = Polygon::Make(std::move(ring));
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return p.value();
}

// An L-shaped (concave) hexagon used across tests.
Polygon LShape() {
  return MustMake({Point(0, 0), Point(4, 0), Point(4, 2), Point(2, 2),
                   Point(2, 4), Point(0, 4)});
}

// --- Polygon::Make validation -------------------------------------------------

TEST(PolygonTest, MakeRejectsDegenerateInput) {
  EXPECT_FALSE(Polygon::Make({Point(0, 0), Point(1, 1)}).ok());
  // Zero area (collinear).
  EXPECT_FALSE(Polygon::Make({Point(0, 0), Point(1, 1), Point(2, 2)}).ok());
  // Repeated adjacent vertex.
  EXPECT_FALSE(
      Polygon::Make({Point(0, 0), Point(0, 0), Point(1, 0), Point(0, 1)}).ok());
  // Self-intersecting bow-tie.
  EXPECT_FALSE(Polygon::Make(
                   {Point(0, 0), Point(2, 2), Point(2, 0), Point(0, 2)})
                   .ok());
}

TEST(PolygonTest, MakeNormalizesOrientationAndClosingVertex) {
  // Clockwise input gets reversed to CCW.
  Polygon cw = MustMake({Point(0, 0), Point(0, 2), Point(2, 2), Point(2, 0)});
  EXPECT_GT(TwiceSignedArea(cw.vertices()).Sign(), 0);
  // Duplicated closing vertex is dropped.
  Polygon closed = MustMake(
      {Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2), Point(0, 0)});
  EXPECT_EQ(closed.size(), 4u);
}

TEST(PolygonTest, AreaExact) {
  Polygon square = MustMake(
      {Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)});
  EXPECT_EQ(square.Area(), Rational(4));
  EXPECT_EQ(LShape().Area(), Rational(12));
  Polygon triangle = MustMake({Point(0, 0), Point(1, 0), Point(0, 1)});
  EXPECT_EQ(triangle.Area(), Rational(1, 2));
}

TEST(PolygonTest, ConvexityDetection) {
  EXPECT_TRUE(
      MustMake({Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)}).IsConvex());
  EXPECT_FALSE(LShape().IsConvex());
  // Convex with a collinear boundary vertex still counts as convex.
  EXPECT_TRUE(MustMake({Point(0, 0), Point(1, 0), Point(2, 0), Point(2, 2),
                        Point(0, 2)})
                  .IsConvex());
}

TEST(PolygonTest, ContainsInteriorBoundaryExterior) {
  Polygon l = LShape();
  EXPECT_TRUE(l.Contains(Point(1, 1)));
  EXPECT_TRUE(l.Contains(Point(1, 3)));
  EXPECT_TRUE(l.Contains(Point(3, 1)));
  EXPECT_FALSE(l.Contains(Point(3, 3))) << "the notch is outside";
  EXPECT_TRUE(l.Contains(Point(0, 0))) << "vertex on boundary";
  EXPECT_TRUE(l.Contains(Point(2, 3))) << "edge point";
  EXPECT_FALSE(l.Contains(Point(5, 1)));
  EXPECT_FALSE(l.Contains(Point(-1, 0)));
}

TEST(PolygonTest, ContainsRayThroughVertexIsHandled) {
  // Diamond: a +x ray from the center passes through vertex (2, 1).
  Polygon diamond = MustMake(
      {Point(1, 0), Point(2, 1), Point(1, 2), Point(0, 1)});
  EXPECT_TRUE(diamond.Contains(Point(1, 1)));
  EXPECT_FALSE(diamond.Contains(Point(-1, 1)));
  EXPECT_FALSE(diamond.Contains(Point(3, 1)));
  EXPECT_TRUE(diamond.Contains(Point(2, 1)));
  EXPECT_TRUE(diamond.Contains(Point(Rational(1, 2), Rational(1, 2))));
}

TEST(PolygonTest, BoundingBox) {
  Box b = LShape().BoundingBox();
  EXPECT_EQ(b, Box::FromCorners(Point(0, 0), Point(4, 4)));
}

TEST(PolygonTest, RectangleHelper) {
  Polygon r = Polygon::Rectangle(Box::FromCorners(Point(1, 2), Point(3, 5)));
  EXPECT_EQ(r.Area(), Rational(6));
  EXPECT_TRUE(r.IsConvex());
}

// --- Distances -----------------------------------------------------------------

TEST(PolygonDistanceTest, PointToPolygon) {
  Polygon sq = MustMake({Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)});
  EXPECT_EQ(SquaredDistance(Point(1, 1), sq), Rational(0)) << "inside";
  EXPECT_EQ(SquaredDistance(Point(2, 1), sq), Rational(0)) << "boundary";
  EXPECT_EQ(SquaredDistance(Point(4, 1), sq), Rational(4));
  EXPECT_EQ(SquaredDistance(Point(4, 4), sq), Rational(8)) << "corner gap";
}

TEST(PolygonDistanceTest, PolygonToPolygon) {
  Polygon a = MustMake({Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)});
  Polygon b = MustMake({Point(3, 0), Point(4, 0), Point(4, 1), Point(3, 1)});
  EXPECT_EQ(SquaredDistance(a, b), Rational(4));
  Polygon touching = MustMake(
      {Point(1, 0), Point(2, 0), Point(2, 1), Point(1, 1)});
  EXPECT_EQ(SquaredDistance(a, touching), Rational(0));
  // Containment: inner polygon inside outer.
  Polygon outer = MustMake(
      {Point(-5, -5), Point(5, -5), Point(5, 5), Point(-5, 5)});
  EXPECT_EQ(SquaredDistance(a, outer), Rational(0));
  EXPECT_EQ(SquaredDistance(outer, a), Rational(0));
}

TEST(PolygonDistanceTest, PolylineToPolyline) {
  Polyline a({Point(0, 0), Point(4, 0)});
  Polyline b({Point(0, 3), Point(4, 3)});
  EXPECT_EQ(SquaredDistance(a, b), Rational(9));
  Polyline crossing({Point(2, -1), Point(2, 1)});
  EXPECT_EQ(SquaredDistance(a, crossing), Rational(0));
  // Multi-segment: closest approach on the second leg.
  Polyline bent({Point(0, 5), Point(4, 5), Point(4, 1)});
  EXPECT_EQ(SquaredDistance(a, bent), Rational(1));
}

TEST(PolygonDistanceTest, PolylineToPolygon) {
  Polygon sq = MustMake({Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)});
  Polyline through({Point(-1, 1), Point(3, 1)});
  EXPECT_EQ(SquaredDistance(through, sq), Rational(0));
  Polyline above({Point(0, 5), Point(2, 5)});
  EXPECT_EQ(SquaredDistance(above, sq), Rational(9));
}

TEST(PolylineTest, LengthAndBox) {
  Polyline line({Point(0, 0), Point(3, 4), Point(3, 6)});
  EXPECT_DOUBLE_EQ(line.Length(), 7.0);
  EXPECT_EQ(line.BoundingBox(), Box::FromCorners(Point(0, 0), Point(3, 6)));
  EXPECT_EQ(line.NumSegments(), 2u);
}

// --- Triangulation / decomposition ----------------------------------------------

TEST(DecomposeTest, TriangulateCountsAndArea) {
  Polygon l = LShape();
  auto triangles = Triangulate(l);
  EXPECT_EQ(triangles.size(), l.size() - 2);
  Rational total(0);
  for (const auto& t : triangles) {
    Rational area2 = TwiceSignedArea(t);
    EXPECT_GT(area2.Sign(), 0) << "triangles must be CCW";
    total += area2;
  }
  EXPECT_EQ(total * Rational(1, 2), l.Area());
}

TEST(DecomposeTest, TriangulateConvexPolygon) {
  Polygon hex = MustMake({Point(2, 0), Point(4, 1), Point(4, 3), Point(2, 4),
                          Point(0, 3), Point(0, 1)});
  auto triangles = Triangulate(hex);
  EXPECT_EQ(triangles.size(), 4u);
}

TEST(DecomposeTest, ConvexPolygonStaysWhole) {
  Polygon sq = MustMake({Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)});
  auto pieces = DecomposeConvex(sq);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], sq.vertices());
}

TEST(DecomposeTest, LShapeDecomposesIntoFewConvexPieces) {
  auto pieces = DecomposeConvex(LShape());
  ASSERT_GE(pieces.size(), 2u);
  EXPECT_LE(pieces.size(), 3u) << "Hertel-Mehlhorn should merge triangles";
  Rational total(0);
  for (const auto& piece : pieces) {
    // Every piece is convex and CCW.
    const size_t n = piece.size();
    for (size_t i = 0; i < n; ++i) {
      EXPECT_GE(Orientation(piece[i], piece[(i + 1) % n], piece[(i + 2) % n]),
                0);
    }
    total += TwiceSignedArea(piece);
  }
  EXPECT_EQ(total * Rational(1, 2), LShape().Area())
      << "pieces must partition the polygon";
}

TEST(DecomposeTest, SpiralPolygonDecomposes) {
  // A polygon with several reflex vertices.
  Polygon spiral = MustMake({Point(0, 0), Point(6, 0), Point(6, 6),
                             Point(1, 6), Point(1, 2), Point(3, 2),
                             Point(3, 4), Point(2, 4), Point(2, 5),
                             Point(5, 5), Point(5, 1), Point(0, 1)});
  auto pieces = DecomposeConvex(spiral);
  Rational total(0);
  for (const auto& piece : pieces) total += TwiceSignedArea(piece);
  EXPECT_EQ(total * Rational(1, 2), spiral.Area());
}

TEST(DecomposeTest, PiecesCoverSamplePoints) {
  Polygon l = LShape();
  auto pieces = DecomposeConvex(l);
  std::vector<Polygon> piece_polys;
  for (auto& ring : pieces) {
    auto p = Polygon::Make(ring);
    ASSERT_TRUE(p.ok());
    piece_polys.push_back(p.value());
  }
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    Point p(Rational(rng.UniformInt(-8, 80), 16),
            Rational(rng.UniformInt(-8, 80), 16));
    bool in_l = l.Contains(p);
    bool in_pieces = false;
    for (const Polygon& piece : piece_polys) {
      if (piece.Contains(p)) {
        in_pieces = true;
        break;
      }
    }
    EXPECT_EQ(in_l, in_pieces) << "at " << p.ToString();
  }
}

// --- Convex hull -----------------------------------------------------------------

TEST(ConvexHullTest, BasicHull) {
  auto hull = ConvexHull({Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4),
                          Point(2, 2), Point(1, 3)});
  EXPECT_EQ(hull.size(), 4u);
  Rational area2 = TwiceSignedArea(hull);
  EXPECT_EQ(area2, Rational(32));
}

TEST(ConvexHullTest, CollinearInputsGiveExtremes) {
  auto hull = ConvexHull({Point(0, 0), Point(1, 1), Point(2, 2), Point(3, 3)});
  ASSERT_EQ(hull.size(), 2u);
  EXPECT_EQ(hull[0], Point(0, 0));
  EXPECT_EQ(hull[1], Point(3, 3));
}

TEST(ConvexHullTest, DuplicatesAndSmallInputs) {
  EXPECT_EQ(ConvexHull({Point(1, 1), Point(1, 1)}).size(), 1u);
  EXPECT_EQ(ConvexHull({Point(1, 1)}).size(), 1u);
  auto hull = ConvexHull({Point(0, 0), Point(2, 0), Point(1, 1), Point(2, 0)});
  EXPECT_EQ(hull.size(), 3u);
}

TEST(ConvexHullTest, HullDropsCollinearBoundaryPoints) {
  auto hull = ConvexHull(
      {Point(0, 0), Point(2, 0), Point(4, 0), Point(4, 4), Point(0, 4)});
  EXPECT_EQ(hull.size(), 4u) << "midpoint of bottom edge is not a vertex";
}

}  // namespace
}  // namespace ccdb::geom
