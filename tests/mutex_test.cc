// Tests for the annotated lock wrappers in src/util/mutex.h.
//
// The functional half exercises Mutex/SharedMutex/CondVar/guards under real
// contention; run the suite with CCDB_SANITIZE=thread to get the TSan-clean
// smoke test the wrappers are meant to guarantee (tools/run_sanitizers.sh).
// The *static* half of the contract — off-lock access is a compile error —
// is covered by tools/check_thread_safety.sh, not here.

#include "util/mutex.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ccdb {
namespace {

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  std::atomic<bool> second_acquired{false};
  std::thread t([&] {
    if (mu.TryLock()) {
      second_acquired = true;
      mu.Unlock();
    }
  });
  t.join();
  EXPECT_FALSE(second_acquired);
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockExcludesConcurrentIncrements) {
  struct Counter {
    Mutex mu;
    int value CCDB_GUARDED_BY(mu) = 0;
  } counter;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < kIters; ++j) {
        MutexLock lock(counter.mu);
        ++counter.value;
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock lock(counter.mu);
  EXPECT_EQ(counter.value, kThreads * kIters);
}

TEST(SharedMutexTest, ManyReadersOneWriter) {
  struct Table {
    mutable SharedMutex mu;
    std::vector<int> rows CCDB_GUARDED_BY(mu);
  } table;
  constexpr int kWrites = 2000;
  constexpr int kReaders = 3;
  std::atomic<bool> done{false};
  std::atomic<int> torn_reads{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      while (!done) {
        ReaderLock lock(table.mu);
        // Writer appends value == index, so any prefix is consistent;
        // a torn view would break that invariant.
        for (size_t j = 0; j < table.rows.size(); ++j) {
          if (table.rows[j] != static_cast<int>(j)) {
            torn_reads.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < kWrites; ++i) {
      WriterLock lock(table.mu);
      table.rows.push_back(i);
    }
    done = true;
  });
  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn_reads, 0);
  ReaderLock lock(table.mu);
  EXPECT_EQ(table.rows.size(), static_cast<size_t>(kWrites));
}

// A minimal bounded queue in the style of QueryService's worker queue:
// predicate loop in the annotated caller, CondVar::Wait(Mutex&) inside.
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  void Push(int v) {
    MutexLock lock(mu_);
    while (items_.size() >= capacity_ && !closed_) cv_.Wait(mu_);
    if (closed_) return;
    items_.push_back(v);
    cv_.NotifyAll();
  }

  bool Pop(int& out) {
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) cv_.Wait(mu_);
    if (items_.empty()) return false;  // closed and drained
    out = items_.front();
    items_.erase(items_.begin());
    cv_.NotifyAll();
    return true;
  }

  void Close() {
    MutexLock lock(mu_);
    closed_ = true;
    cv_.NotifyAll();
  }

 private:
  const size_t capacity_;
  Mutex mu_;
  CondVar cv_;
  std::vector<int> items_ CCDB_GUARDED_BY(mu_);
  bool closed_ CCDB_GUARDED_BY(mu_) = false;
};

TEST(CondVarTest, ProducersAndConsumersDrainExactly) {
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 1000;
  BoundedQueue queue(8);
  std::atomic<int> consumed{0};
  std::atomic<long long> sum{0};

  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int i = 0; i < kConsumers; ++i) {
    consumers.emplace_back([&] {
      int v = 0;
      while (queue.Pop(v)) {
        consumed.fetch_add(1);
        sum.fetch_add(v);
      }
    });
  }
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) queue.Push(i);
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(consumed, kProducers * kPerProducer);
  constexpr long long kPerProducerSum =
      static_cast<long long>(kPerProducer) * (kPerProducer + 1) / 2;
  EXPECT_EQ(sum, kProducers * kPerProducerSum);
}

TEST(CondVarTest, WaitReturnsWithLockHeld) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // GUARDED_BY does not apply to locals; mu protects it

  std::thread signaller([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    // If Wait failed to reacquire, the guard's destructor would unlock an
    // unowned mutex (UB that TSan/UBSan flags); reaching here with the
    // predicate true under the lock is the behavioral assertion.
    EXPECT_TRUE(ready);
  }
  signaller.join();
}

}  // namespace
}  // namespace ccdb
