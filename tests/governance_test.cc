// Resource-governance tests: ExecContext mechanics, typed trips
// (deadline / budget / cancellation), partial results, admission control,
// and the service-level Cancel path.
//
// The cancellation matrix mirrors the WAL crash matrix: instead of
// crashing the pager at the Nth write, it cancels the query at the Nth
// governance check and asserts the engine unwinds cleanly every time —
// a typed status out, no crash, and a service that keeps serving.

#include "obs/governance.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "data/workload.h"
#include "obs/trace_sink.h"
#include "service/query_service.h"

namespace ccdb {
namespace {

using obs::CancelFlag;
using obs::ExecContext;
using obs::ExecContextScope;
using obs::GovernanceLimits;
using obs::TripKind;
using std::chrono::steady_clock;

Relation BoxRelation(size_t count, uint64_t seed) {
  WorkloadParams params;
  params.data_count = count;
  return BoxesToConstraintRelation(GenerateDataBoxes(seed, params));
}

// --- ExecContext unit mechanics (no service, no threads) ---

TEST(ExecContextTest, UngovernedThreadIsFree) {
  EXPECT_EQ(obs::ActiveExecContext(), nullptr);
  EXPECT_TRUE(obs::CheckGovernance().ok());
  EXPECT_FALSE(obs::GovernanceAborting());
  EXPECT_FALSE(obs::GovernanceTruncating());
  obs::GovernTuples(10);  // no-ops, must not crash
  obs::GovernBytes(1 << 20);
}

TEST(ExecContextTest, ScopeInstallsAndRestores) {
  GovernanceLimits limits;
  ExecContext ctx(limits, steady_clock::now());
  {
    ExecContextScope scope(&ctx);
    EXPECT_EQ(obs::ActiveExecContext(), &ctx);
    obs::GovernTuples(3);
    EXPECT_EQ(ctx.tuples(), 3u);
  }
  EXPECT_EQ(obs::ActiveExecContext(), nullptr);
}

TEST(ExecContextTest, ExpiredDeadlineTripsWithTypedStatus) {
  GovernanceLimits limits;
  limits.deadline_us = 1000;  // 1 ms, already over when we check
  ExecContext ctx(limits,
                  steady_clock::now() - std::chrono::milliseconds(5));
  ctx.FullCheck();
  EXPECT_TRUE(ctx.aborting());
  EXPECT_EQ(ctx.trip_kind(), TripKind::kDeadline);
  EXPECT_EQ(ctx.trip_status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecContextTest, TupleBudgetTripsImmediately) {
  GovernanceLimits limits;
  limits.max_tuples = 2;
  ExecContext ctx(limits, steady_clock::now());
  ctx.ChargeTuples(2);
  EXPECT_FALSE(ctx.tripped());
  ctx.ChargeTuples(1);
  EXPECT_TRUE(ctx.aborting());
  EXPECT_EQ(ctx.trip_kind(), TripKind::kBudget);
  EXPECT_TRUE(ctx.budget_tripped());
  EXPECT_EQ(ctx.trip_status().code(), StatusCode::kResourceExhausted);
}

TEST(ExecContextTest, AllowPartialTruncatesThenEscalatesToCancel) {
  GovernanceLimits limits;
  limits.max_constraints = 1;
  limits.allow_partial = true;
  auto cancel = std::make_shared<CancelFlag>(false);
  ExecContext ctx(limits, steady_clock::now(), cancel);

  ctx.ChargeConstraints(2);
  EXPECT_TRUE(ctx.truncating()) << "partial budgets truncate, not abort";
  EXPECT_FALSE(ctx.aborting());
  EXPECT_TRUE(ctx.budget_tripped());

  // Cancellation still aborts a truncating query; the budget trip stays
  // visible for the metrics layer.
  cancel->store(true);
  ctx.FullCheck();
  EXPECT_TRUE(ctx.aborting());
  EXPECT_EQ(ctx.trip_status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(ctx.budget_tripped());
}

TEST(ExecContextTest, StrideAmortizesFullChecks) {
  GovernanceLimits limits;
  limits.check_stride = 4;
  ExecContext ctx(limits, steady_clock::now());
  for (int i = 0; i < 8; ++i) ctx.ChargeTuples(1);
  EXPECT_EQ(ctx.checks(), 2u) << "8 charges / stride 4 = 2 full checks";
}

TEST(ExecContextTest, TripAtCheckInjectsCancellation) {
  GovernanceLimits limits;
  limits.trip_at_check = 3;
  limits.check_stride = 1;
  ExecContext ctx(limits, steady_clock::now());
  ctx.ChargeTuples(1);
  ctx.ChargeTuples(1);
  EXPECT_FALSE(ctx.tripped());
  ctx.ChargeTuples(1);
  EXPECT_TRUE(ctx.aborting());
  EXPECT_EQ(ctx.trip_status().code(), StatusCode::kCancelled);
}

// --- Service-level governance ---

TEST(GovernanceServiceTest, DeadlineOnExplosiveJoinReturnsTyped) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(400, 7)).ok());
  service::ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;
  service::QueryService service(&base, options);
  service::SessionId id = service.OpenSession();

  // A selection pair plus a join: quadratic constraint pairing, far more
  // than 50 ms of work on this relation.
  const std::string script =
      "R0 = select x >= 0, x <= 2900 from Boxes\n"
      "R1 = select y >= 0, y <= 2900 from Boxes\n"
      "R2 = join R0 and R1";
  service::QueryOptions opts;
  opts.deadline_us = 50'000;
  const auto started = steady_clock::now();
  auto response = service.Execute(id, script, opts);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(steady_clock::now() - started)
          .count();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded)
      << response.status().ToString();
  // Trip latency must be a small multiple of the deadline (the hard bound
  // of 2x is enforced by tools/stress_governance.sh in a Release build;
  // here we leave headroom for sanitizer instrumentation).
  EXPECT_LT(elapsed_ms, 500.0) << "deadline trip took too long";
  EXPECT_EQ(service.Metrics().deadline_hits, 1u);

  // The worker unwound cleanly: the same service keeps serving.
  auto fine = service.Execute(id, "R3 = select x >= 0, x <= 10 from Boxes");
  EXPECT_TRUE(fine.ok()) << fine.status().ToString();
}

TEST(GovernanceServiceTest, TupleBudgetFailsWithResourceExhausted) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(100, 3)).ok());
  service::ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;
  service::QueryService service(&base, options);
  service::SessionId id = service.OpenSession();

  service::QueryOptions opts;
  opts.max_tuples = 10;
  auto response =
      service.Execute(id, "R0 = select x >= 0 from Boxes", opts);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted)
      << response.status().ToString();
  EXPECT_EQ(service.Metrics().budget_trips, 1u);
}

TEST(GovernanceServiceTest, BudgetTripOnFinalChargeStillFails) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(100, 3)).ok());
  service::ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 16;
  service::QueryService service(&base, options);
  service::SessionId id = service.OpenSession();

  // max_tuples = 99 latches the abort on the *last* Insert of the only
  // statement — after that iteration's top-of-loop check-point, with no
  // later loop iteration to observe it. The trip must still surface as
  // the typed error, never escape as an OK result.
  const std::string script = "R0 = select x >= 0 from Boxes";
  service::QueryOptions opts;
  opts.max_tuples = 99;
  auto response = service.Execute(id, script, opts);
  ASSERT_FALSE(response.ok())
      << "a trip latched on the final charge escaped as OK";
  EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted)
      << response.status().ToString();
  EXPECT_EQ(service.Metrics().budget_trips, 1u);

  // ... and the tripped run must not have seeded the result cache: the
  // ungoverned rerun misses and computes the full answer.
  auto full = service.Execute(id, script);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full->cache_hit)
      << "a tripped run must never seed the result cache";
  EXPECT_EQ(full->relation.size(), 100u);
}

TEST(GovernanceServiceTest, TrippedGovernedQueryEmitsTraceWithoutSlowLog) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(30, 3)).ok());
  std::ostringstream jsonl;
  obs::TraceSink sink(&jsonl);
  service::ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;
  options.trace_sink = &sink;
  options.slow_query_us = 0;  // a governance trip is the only emit path
  service::QueryService service(&base, options);
  service::SessionId id = service.OpenSession();

  // Governed (a budget is set): statement spans are recorded, and the
  // trip emits them to the sink even with the slow-query log disabled.
  service::QueryOptions opts;
  opts.max_tuples = 10;
  auto tripped = service.Execute(id, "R0 = select x >= 0 from Boxes", opts);
  ASSERT_FALSE(tripped.ok());
  EXPECT_EQ(sink.events(), 1u) << "a governed trip must reach the sink";
  EXPECT_NE(jsonl.str().find("\"trace\":"), std::string::npos)
      << "governed queries must carry statement spans: " << jsonl.str();

  // An ungoverned success emits nothing (and pays no span recording).
  auto fine = service.Execute(id, "R1 = select x >= 0, x <= 5 from Boxes");
  ASSERT_TRUE(fine.ok()) << fine.status().ToString();
  EXPECT_EQ(sink.events(), 1u);
}

TEST(GovernanceServiceTest, AllowPartialReturnsTruncatedSubsetUncached) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(100, 3)).ok());
  service::ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 16;
  service::QueryService service(&base, options);
  service::SessionId id = service.OpenSession();

  const std::string script = "R0 = select x >= 0 from Boxes";
  service::QueryOptions opts;
  opts.max_tuples = 10;
  opts.allow_partial = true;
  auto partial = service.Execute(id, script, opts);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(partial->truncated);
  EXPECT_GT(partial->relation.size(), 0u);
  EXPECT_LT(partial->relation.size(), 100u)
      << "the budget must actually have cut the result short";

  // The truncated result must not have been cached: the ungoverned rerun
  // misses and returns the full relation.
  auto full = service.Execute(id, script);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->cache_hit)
      << "a partial result must never seed the result cache";
  EXPECT_FALSE(full->truncated);
  EXPECT_EQ(full->relation.size(), 100u);

  service::ServiceMetrics m = service.Metrics();
  EXPECT_EQ(m.truncated, 1u);
  EXPECT_EQ(m.budget_trips, 1u);
  EXPECT_EQ(m.failed, 0u) << "truncation is a success, not a failure";
}

TEST(GovernanceServiceTest, CancellationMatrixUnwindsCleanlyAtEveryCheck) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(8, 2)).ok());
  service::ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;  // every run must execute for real
  service::QueryService service(&base, options);
  service::SessionId id = service.OpenSession();

  const std::string script =
      "R0 = select x >= 0, x <= 2000 from Boxes\n"
      "R1 = select y >= 0, y <= 2000 from Boxes\n"
      "R2 = join R0 and R1";

  // Like the WAL crash matrix: trip at check N until the query survives.
  // Every tripped run must fail with exactly kCancelled (clean unwind, no
  // crash, no stuck worker). Exhaustive for the first 64 check positions,
  // then a geometric tail so the matrix stays fast under sanitizers.
  constexpr uint64_t kMaxChecks = 10'000'000;
  uint64_t tripped_runs = 0;
  bool survived = false;
  for (uint64_t n = 1; n <= kMaxChecks; n += (n < 64 ? 1 : n / 16)) {
    service::QueryOptions opts;
    opts.trip_at_check = n;
    auto response = service.Execute(id, script, opts);
    if (response.ok()) {
      survived = true;
      break;
    }
    ASSERT_EQ(response.status().code(), StatusCode::kCancelled)
        << "check " << n << ": " << response.status().ToString();
    ++tripped_runs;
  }
  ASSERT_TRUE(survived) << "query never completed within the matrix";
  EXPECT_GT(tripped_runs, 10u) << "the script must take many checks";
  EXPECT_EQ(service.Metrics().cancels, tripped_runs);

  // An ungoverned rerun still produces the right answer.
  auto clean = service.Execute(id, script);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_GT(clean->relation.size(), 0u);
}

TEST(GovernanceServiceTest, ExternalCancelFlagAbortsPromptly) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(300, 5)).ok());
  service::ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;
  service::QueryService service(&base, options);
  service::SessionId id = service.OpenSession();

  service::QueryOptions opts;
  opts.cancel = std::make_shared<CancelFlag>(true);  // cancelled at birth
  auto submitted = service.Submit(
      id,
      "R0 = select x >= 0 from Boxes\nR1 = select y >= 0 from Boxes\n"
      "R2 = join R0 and R1",
      opts);
  ASSERT_TRUE(submitted.ok());
  auto response = submitted->future.get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kCancelled);
}

TEST(GovernanceServiceTest, CancelQueuedFailsFutureImmediately) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(20, 3)).ok());
  service::ServiceOptions options;
  options.num_workers = 1;
  options.start_paused = true;  // everything stays queued
  service::QueryService service(&base, options);
  service::SessionId id = service.OpenSession();
  service::SessionId other = service.OpenSession();

  auto submitted = service.Submit(id, "R0 = select x >= 0 from Boxes");
  ASSERT_TRUE(submitted.ok());

  // Wrong session and unknown ids are rejected without side effects.
  EXPECT_EQ(service.Cancel(other, submitted->query_id).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.Cancel(id, 777777).code(), StatusCode::kNotFound);

  ASSERT_TRUE(service.Cancel(id, submitted->query_id).ok());
  auto response = submitted->future.get();  // resolves without any worker
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(service.Cancel(id, submitted->query_id).code(),
            StatusCode::kNotFound)
      << "a cancelled query is gone";
  EXPECT_EQ(service.Metrics().cancels, 1u);
}

TEST(GovernanceServiceTest, CancelRunningQueryUnwinds) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(500, 9)).ok());
  service::ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;
  service::QueryService service(&base, options);
  service::SessionId id = service.OpenSession();

  // Several seconds of join work — the Cancel below lands mid-flight.
  auto submitted = service.Submit(
      id,
      "R0 = select x >= 0 from Boxes\nR1 = select y >= 0 from Boxes\n"
      "R2 = join R0 and R1");
  ASSERT_TRUE(submitted.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(service.Cancel(id, submitted->query_id).ok());
  auto response = submitted->future.get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kCancelled)
      << response.status().ToString();
  EXPECT_EQ(service.Metrics().cancels, 1u);

  auto fine = service.Execute(id, "R3 = select x >= 0, x <= 5 from Boxes");
  EXPECT_TRUE(fine.ok()) << fine.status().ToString();
}

TEST(GovernanceServiceTest, CostBasedSheddingRefusesWithRetryAfter) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(20, 3)).ok());
  service::ServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 64;
  options.start_paused = true;
  // With no completed queries the estimator uses its 1 ms prior, so the
  // second submission estimates (1 queued + 0 running + 1) x 1000 us.
  options.shed_inflight_us = 1500;
  service::QueryService service(&base, options);
  service::SessionId id = service.OpenSession();

  auto first = service.Submit(id, "R0 = select x >= 0 from Boxes");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = service.Submit(id, "R0 = select x >= 1 from Boxes");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(second.status().retry_after_ms(), 0);
  EXPECT_NE(second.status().ToString().find("retry after"),
            std::string::npos)
      << second.status().ToString();
  EXPECT_EQ(service.Metrics().sheds, 1u);

  service.Resume();
  EXPECT_TRUE(first->future.get().ok());
}

TEST(GovernanceServiceTest, ServiceDefaultsApplyWithoutPerQueryOptions) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(100, 3)).ok());
  service::ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;
  options.governance.max_tuples = 10;  // every query inherits this
  service::QueryService service(&base, options);
  service::SessionId id = service.OpenSession();

  auto response = service.Execute(id, "R0 = select x >= 0 from Boxes");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted);

  // A per-query override lifts the default.
  service::QueryOptions opts;
  opts.max_tuples = 1000;
  auto lifted = service.Execute(id, "R0 = select x >= 0 from Boxes", opts);
  EXPECT_TRUE(lifted.ok()) << lifted.status().ToString();
}

TEST(GovernanceServiceTest, MetricsRenderGovernanceLine) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(30, 3)).ok());
  service::ServiceOptions options;
  options.num_workers = 1;
  options.cache_capacity = 0;
  service::QueryService service(&base, options);
  service::SessionId id = service.OpenSession();

  service::QueryOptions deadline;
  deadline.deadline_us = 1;  // expires during queue wait, deterministically
  auto dead = service.Execute(id, "R0 = select x >= 0 from Boxes", deadline);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kDeadlineExceeded);

  service::ServiceMetrics m = service.Metrics();
  EXPECT_EQ(m.deadline_hits, 1u);
  EXPECT_NE(m.ToString().find("governance:"), std::string::npos)
      << m.ToString();
}

TEST(StatusTest, RetryAfterRoundTripsThroughToString) {
  Status s = Status::Unavailable("overloaded");
  EXPECT_EQ(s.retry_after_ms(), 0);
  s.WithRetryAfter(42);
  EXPECT_EQ(s.retry_after_ms(), 42);
  EXPECT_NE(s.ToString().find("retry after 42 ms"), std::string::npos)
      << s.ToString();
  EXPECT_EQ(Status::Cancelled("c").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("d").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("r").code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace ccdb
