// Tests for the fleet-observability surfaces: the Prometheus text
// exposition (golden format, name mangling, cumulative bucket series),
// the declared-name coverage gate (every metric_names.h family must
// render), scrape-under-load race freedom (run under
// -DCCDB_SANITIZE=thread), the structured JSONL event log, and the
// slow-query-log field set (query_id / session / trace_id stamping).

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ccdb.h"

namespace ccdb {
namespace {

// --- Name mangling and label escaping --------------------------------------

TEST(PrometheusNameTest, ManglesToExpositionCharset) {
  EXPECT_EQ(obs::PrometheusName("query.latency_us"), "ccdb_query_latency_us");
  EXPECT_EQ(obs::PrometheusName("net.connections.open"),
            "ccdb_net_connections_open");
  EXPECT_EQ(obs::PrometheusName("weird-name with spaces"),
            "ccdb_weird_name_with_spaces");
  // The exposition charset itself passes through untouched.
  EXPECT_EQ(obs::PrometheusName("already_ok:name42"),
            "ccdb_already_ok:name42");
}

TEST(PrometheusNameTest, LabelEscapeCoversTheThreeSpecials) {
  EXPECT_EQ(obs::PrometheusLabelEscape("plain"), "plain");
  EXPECT_EQ(obs::PrometheusLabelEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::PrometheusLabelEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::PrometheusLabelEscape("a\nb"), "a\\nb");
}

// --- Histogram bucket geometry ---------------------------------------------

TEST(HistogramSnapshotTest, BucketUpperBoundsAreLog2) {
  EXPECT_EQ(obs::Histogram::Snapshot::BucketUpperBound(0), uint64_t{0});
  EXPECT_EQ(obs::Histogram::Snapshot::BucketUpperBound(1), uint64_t{1});
  EXPECT_EQ(obs::Histogram::Snapshot::BucketUpperBound(2), uint64_t{3});
  EXPECT_EQ(obs::Histogram::Snapshot::BucketUpperBound(10), uint64_t{1023});
  // The overflow bucket renders as +Inf.
  EXPECT_EQ(
      obs::Histogram::Snapshot::BucketUpperBound(obs::Histogram::kBuckets - 1),
      UINT64_MAX);
}

TEST(HistogramSnapshotTest, CumulativeCountsAreMonotoneAndEndAtCount) {
  obs::Histogram hist;
  const uint64_t samples[] = {0, 1, 2, 3, 100, 5000, 5000, 1u << 20};
  for (uint64_t v : samples) hist.Record(v);
  const obs::Histogram::Snapshot snap = hist.snapshot();
  const auto cumulative = snap.CumulativeCounts();
  for (size_t i = 1; i < obs::Histogram::kBuckets; ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1]) << "bucket " << i;
  }
  EXPECT_EQ(cumulative[obs::Histogram::kBuckets - 1], snap.count);
  // Spot checks against the log2 bounds: samples <= 3 are {0,1,2,3}.
  EXPECT_EQ(cumulative[0], uint64_t{1});
  EXPECT_EQ(cumulative[2], uint64_t{4});
}

// --- The golden exposition format ------------------------------------------

TEST(RenderPrometheusTest, GoldenFormatForEachKind) {
  obs::MetricsRegistry registry;
  registry.GetCounter("queries.submitted")->Add(3);
  registry.SetGauge("queue.depth", 2);
  obs::Histogram* hist = registry.GetHistogram("query.latency_us");
  hist->Record(0);
  hist->Record(3);
  hist->Record(100);
  const std::string out = obs::RenderPrometheus(registry.TakeSnapshot());

  // Counter family: HELP + TYPE + one sample.
  EXPECT_NE(out.find("# HELP ccdb_queries_submitted ccdb metric "
                     "queries.submitted\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE ccdb_queries_submitted counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("ccdb_queries_submitted 3\n"), std::string::npos);

  // Gauge family: the gauges set flips the TYPE.
  EXPECT_NE(out.find("# TYPE ccdb_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(out.find("ccdb_queue_depth 2\n"), std::string::npos);

  // Histogram family: cumulative buckets — 0 lands in le="0", 3 in
  // le="3", 100 in le="127" — then +Inf, _sum, _count.
  EXPECT_NE(out.find("# TYPE ccdb_query_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(out.find("ccdb_query_latency_us_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("ccdb_query_latency_us_bucket{le=\"3\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("ccdb_query_latency_us_bucket{le=\"127\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("ccdb_query_latency_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("ccdb_query_latency_us_sum 103\n"), std::string::npos);
  EXPECT_NE(out.find("ccdb_query_latency_us_count 3\n"), std::string::npos);
}

TEST(RenderPrometheusTest, BucketSeriesIsMonotone) {
  obs::MetricsRegistry registry;
  obs::Histogram* hist = registry.GetHistogram("query.tuples_out");
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    hist->Record(static_cast<uint64_t>(rng.UniformInt(0, 100000)));
  }
  const std::string out = obs::RenderPrometheus(registry.TakeSnapshot());
  // Walk the rendered _bucket lines in order; counts must never decrease
  // and the +Inf bucket must equal _count.
  const std::string prefix = "ccdb_query_tuples_out_bucket{le=";
  uint64_t previous = 0;
  uint64_t inf_value = 0;
  size_t buckets_seen = 0;
  std::istringstream lines(out);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const uint64_t value = std::strtoull(line.c_str() + space + 1, nullptr, 10);
    EXPECT_GE(value, previous) << line;
    previous = value;
    ++buckets_seen;
    if (line.find("+Inf") != std::string::npos) inf_value = value;
  }
  EXPECT_GT(buckets_seen, size_t{2});
  EXPECT_EQ(inf_value, uint64_t{500});
  EXPECT_NE(out.find("ccdb_query_tuples_out_count 500\n"), std::string::npos);
}

TEST(RenderPrometheusTest, BuildInfoCarriesTheVersionLabel) {
  const std::string out = obs::RenderBuildInfo();
  EXPECT_NE(out.find("# TYPE ccdb_build_info gauge\n"), std::string::npos);
  EXPECT_NE(out.find("ccdb_build_info{version=\""), std::string::npos);
  EXPECT_NE(out.find("\"} 1\n"), std::string::npos);
  EXPECT_NE(std::string(obs::BuildVersion()), "");
}

TEST(RenderPrometheusTest, ProcessGaugesPublish) {
  obs::MetricsRegistry registry;
  obs::PublishProcessGauges(&registry);
  const obs::MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.gauges.count(obs::names::kProcessUptimeSeconds), size_t{1});
  EXPECT_EQ(snap.gauges.count(obs::names::kProcessStartTime), size_t{1});
  // Start time is wall-clock epoch seconds: comfortably past 2020.
  EXPECT_GT(snap.Value(obs::names::kProcessStartTime),
            uint64_t{1577836800});
}

// --- Coverage gate: every declared name renders ----------------------------

TEST(RenderPrometheusTest, EveryDeclaredMetricNameRenders) {
  obs::MetricsRegistry registry;
  for (const char* name : obs::names::AllMetricNames()) {
    bool is_histogram = false;
    for (const char* hist_name : obs::names::HistogramMetricNames()) {
      if (std::string(name) == hist_name) is_histogram = true;
    }
    if (is_histogram) {
      registry.GetHistogram(name)->Record(1);
    } else {
      registry.GetCounter(name)->Add(1);
    }
  }
  const std::string out = obs::RenderPrometheus(registry.TakeSnapshot()) +
                          obs::RenderBuildInfo();
  for (const char* name : obs::names::AllMetricNames()) {
    const std::string type_line = "# TYPE " + obs::PrometheusName(name) + " ";
    EXPECT_NE(out.find(type_line), std::string::npos)
        << "metric_names.h declares '" << name
        << "' but the exposition surface never renders it";
  }
}

// --- Scrape under concurrent load (TSan-clean) -----------------------------

TEST(RenderPrometheusTest, ConcurrentScrapeUnderLoad) {
  obs::MetricsRegistry registry;
  // Register (and occupy) the families up front, so every scrape — even
  // one that wins the race against the first writer iteration — sees them.
  registry.GetCounter("queries.completed")->Increment();
  registry.GetHistogram("query.latency_us")->Record(1);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry, &stop, t] {
      obs::Counter* counter = registry.GetCounter("queries.completed");
      obs::Histogram* hist = registry.GetHistogram("query.latency_us");
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Increment();
        hist->Record(i++ % 10000);
        registry.SetGauge("queue.depth", i % 7);
      }
      (void)t;
    });
  }
  for (int scrape = 0; scrape < 50; ++scrape) {
    const std::string out = obs::RenderPrometheus(registry.TakeSnapshot());
    EXPECT_NE(out.find("ccdb_queries_completed"), std::string::npos);
    EXPECT_NE(out.find("ccdb_query_latency_us_count"), std::string::npos);
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  // A final quiesced scrape agrees with the counter exactly.
  const obs::MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.Value("queries.completed"),
            registry.GetCounter("queries.completed")->Value());
}

// --- The structured event log ----------------------------------------------

TEST(EventLogTest, EmitsOneJsonObjectPerLine) {
  std::ostringstream out;
  obs::EventLog log(&out);

  obs::Event open;
  open.type = "conn_open";
  open.conn_id = 7;
  log.Emit(open);

  obs::Event shed;
  shed.type = "shed";
  shed.session = 3;
  shed.trace_id = 99;
  shed.detail = "queue full";
  log.Emit(shed);

  EXPECT_EQ(log.events(), uint64_t{2});
  std::istringstream lines(out.str());
  std::string first;
  std::string second;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));

  EXPECT_NE(first.find("\"type\":\"conn_open\""), std::string::npos);
  EXPECT_NE(first.find("\"conn\":7"), std::string::npos);
  EXPECT_NE(first.find("\"ts_us\":"), std::string::npos);
  // Zero-valued ids stay out of the line entirely.
  EXPECT_EQ(first.find("\"session\""), std::string::npos);
  EXPECT_EQ(first.find("\"trace_id\""), std::string::npos);
  EXPECT_EQ(first.find("\"detail\""), std::string::npos);

  EXPECT_NE(second.find("\"type\":\"shed\""), std::string::npos);
  EXPECT_NE(second.find("\"session\":3"), std::string::npos);
  EXPECT_NE(second.find("\"trace_id\":99"), std::string::npos);
  EXPECT_NE(second.find("\"detail\":\"queue full\""), std::string::npos);
  EXPECT_EQ(second.find("\"conn\""), std::string::npos);

  for (const std::string& line : {first, second}) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(EventLogTest, EscapesDetailText) {
  std::ostringstream out;
  obs::EventLog log(&out);
  obs::Event event;
  event.type = "checkpoint";
  event.detail = "quote \" and\nnewline";
  log.Emit(event);
  const std::string line = out.str();
  EXPECT_NE(line.find("\\\""), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
  // Exactly one line: the raw newline was escaped, not emitted.
  EXPECT_EQ(line.find('\n'), line.size() - 1);
}

// --- Slow-query log stamping -----------------------------------------------

/// A database with one constraint relation of generated boxes.
Database BoxDatabase(size_t count) {
  WorkloadParams params;
  params.data_count = count;
  Database db;
  EXPECT_TRUE(
      db.Create("Boxes", BoxesToConstraintRelation(GenerateDataBoxes(7, params)))
          .ok());
  return db;
}

constexpr const char* kJoinScript =
    "R0 = select x >= 100, x <= 600 from Boxes\n"
    "R1 = select y >= 100, y <= 600 from Boxes\n"
    "R2 = join R0 and R1";

TEST(SlowQueryLogTest, EntriesCarryQueryIdSessionAndTraceId) {
  Database db = BoxDatabase(60);
  std::ostringstream jsonl;
  obs::TraceSink sink(&jsonl);
  service::ServiceOptions options;
  options.num_workers = 2;
  options.slow_query_us = 0.001;  // everything is slow
  options.trace_sink = &sink;
  service::QueryService svc(&db, options);
  const service::SessionId session = svc.OpenSession();

  service::QueryOptions opts;
  opts.trace_id = 424242;
  auto response = svc.Execute(session, kJoinScript, opts);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_GE(sink.events(), uint64_t{1});

  const std::string line = jsonl.str();
  // The pinned field set: slow flag plus the three correlation ids.
  EXPECT_NE(line.find("\"slow\":true"), std::string::npos);
  EXPECT_NE(line.find("\"query_id\":"), std::string::npos);
  EXPECT_NE(line.find("\"session\":" + std::to_string(session)),
            std::string::npos);
  EXPECT_NE(line.find("\"trace_id\":424242"), std::string::npos);
}

TEST(SlowQueryLogTest, TraceReportsEchoTheCallerTraceId) {
  Database db = BoxDatabase(40);
  service::ServiceOptions options;
  options.num_workers = 1;
  service::QueryService svc(&db, options);
  const service::SessionId session = svc.OpenSession();

  auto report = svc.Trace(session, kJoinScript, /*trace_id=*/555);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->trace_id, uint64_t{555});
}

// --- The merged service snapshot -------------------------------------------

TEST(MetricsSnapshotTest, PublishesHealthAndProcessGauges) {
  Database db = BoxDatabase(20);
  PageManager disk;
  auto store = DurableStore::Create(&disk);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  service::ServiceOptions options;
  options.num_workers = 1;
  options.disk = &disk;
  options.store = store->get();
  service::QueryService svc(&db, options);
  const service::SessionId session = svc.OpenSession();
  ASSERT_TRUE(
      svc.Execute(session, "R0 = select x >= 0, x <= 500 from Boxes").ok());

  const obs::MetricsRegistry::Snapshot snap = svc.MetricsSnapshot();
  EXPECT_EQ(snap.gauges.count(obs::names::kWalLsn), size_t{1});
  EXPECT_EQ(snap.gauges.count(obs::names::kTxnConflictRate), size_t{1});
  EXPECT_EQ(snap.gauges.count(obs::names::kCatalogEpoch), size_t{1});
  EXPECT_EQ(snap.gauges.count(obs::names::kProcessUptimeSeconds), size_t{1});
  EXPECT_GE(snap.Value(obs::names::kCatalogEpoch), uint64_t{1});
  EXPECT_GE(snap.Value(obs::names::kWalLsn), uint64_t{1});
  EXPECT_GE(snap.Value(obs::names::kQueriesCompleted), uint64_t{1});
}

}  // namespace
}  // namespace ccdb
