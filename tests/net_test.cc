// Tests for the network edge: Status wire serde, frame and payload
// codecs, client/server integration (including governance surfaced over
// the wire), protocol-fuzz robustness (malformed / truncated / oversized
// / CRC-corrupted frames, mid-frame disconnects — typed errors or clean
// close, never a crash, hang, or leaked session), and WAL-shipping
// replication with injected shipment faults forcing snapshot re-sync.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "data/workload.h"
#include "net/client.h"
#include "net/replica.h"
#include "net/server.h"
#include "net/status_server.h"
#include "net/wire.h"
#include "obs/exposition.h"
#include "obs/metric_names.h"
#include "obs/registry.h"
#include "service/query_service.h"
#include "storage/serde.h"
#include "storage/wal.h"
#include "util/random.h"
#include "util/socket.h"
#include "util/status.h"

namespace ccdb {
namespace {

// ---------------------------------------------------------------------
// Status wire serde
// ---------------------------------------------------------------------

struct CodeCase {
  StatusCode code;
  Status status;
};

std::vector<CodeCase> AllErrorCodes() {
  return {
      {StatusCode::kInvalidArgument, Status::InvalidArgument("bad arg")},
      {StatusCode::kNotFound, Status::NotFound("missing")},
      {StatusCode::kAlreadyExists, Status::AlreadyExists("dup")},
      {StatusCode::kOutOfRange, Status::OutOfRange("oob")},
      {StatusCode::kUnsupported, Status::Unsupported("nope")},
      {StatusCode::kParseError, Status::ParseError("syntax")},
      {StatusCode::kIoError, Status::IoError("disk")},
      {StatusCode::kUnavailable, Status::Unavailable("busy")},
      {StatusCode::kInternal, Status::Internal("bug")},
      {StatusCode::kCancelled, Status::Cancelled("stop")},
      {StatusCode::kDeadlineExceeded, Status::DeadlineExceeded("late")},
      {StatusCode::kResourceExhausted, Status::ResourceExhausted("budget")},
      {StatusCode::kFailedPrecondition,
       Status::FailedPrecondition("stale term")},
  };
}

TEST(StatusWire, EveryErrorCodeRoundTrips) {
  for (const CodeCase& c : AllErrorCodes()) {
    const std::string bytes = EncodeStatus(c.status);
    Status decoded = Status::OK();
    ASSERT_TRUE(DecodeStatus(bytes, &decoded).ok())
        << "code " << static_cast<int>(c.code);
    EXPECT_EQ(decoded.code(), c.code);
    EXPECT_EQ(decoded.message(), c.status.message());
    EXPECT_EQ(decoded.retry_after_ms(), 0);
  }
}

TEST(StatusWire, OkRoundTrips) {
  Status decoded = Status::InvalidArgument("overwritten");
  ASSERT_TRUE(DecodeStatus(EncodeStatus(Status::OK()), &decoded).ok());
  EXPECT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.message().empty());
}

TEST(StatusWire, RetryAfterHintRoundTrips) {
  Status shed = Status::Unavailable("shed").WithRetryAfter(137);
  Status decoded = Status::OK();
  ASSERT_TRUE(DecodeStatus(EncodeStatus(shed), &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kUnavailable);
  EXPECT_EQ(decoded.retry_after_ms(), 137);
}

TEST(StatusWire, OversizedMessageIsTruncatedNotRejected) {
  const std::string huge(kMaxStatusMessageBytes + 5000, 'x');
  Status decoded = Status::OK();
  ASSERT_TRUE(
      DecodeStatus(EncodeStatus(Status::Internal(huge)), &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kInternal);
  EXPECT_LE(decoded.message().size(), kMaxStatusMessageBytes);
  EXPECT_NE(decoded.message().find("..."), std::string::npos);
}

TEST(StatusWire, MalformedBytesAreRejected) {
  Status out = Status::OK();
  // Too short for the fixed header.
  EXPECT_FALSE(DecodeStatus("abc", &out).ok());
  // Unknown code.
  std::string bytes = EncodeStatus(Status::Internal("x"));
  bytes[0] = static_cast<char>(0xff);
  EXPECT_FALSE(DecodeStatus(bytes, &out).ok());
  // Trailing garbage.
  EXPECT_FALSE(DecodeStatus(EncodeStatus(Status::Internal("x")) + "z", &out)
                   .ok());
  // OK must carry no message.
  std::string ok_with_msg = EncodeStatus(Status::Internal("msg"));
  for (int i = 0; i < 4; ++i) ok_with_msg[i] = 0;  // code -> kOk
  EXPECT_FALSE(DecodeStatus(ok_with_msg, &out).ok());
}

TEST(StatusWire, NormalizeIsIdentityForLocalStatuses) {
  for (const CodeCase& c : AllErrorCodes()) {
    const Status normalized = NormalizeStatusForWire(c.status);
    EXPECT_EQ(normalized.code(), c.status.code());
    EXPECT_EQ(normalized.message(), c.status.message());
  }
}

// ---------------------------------------------------------------------
// Frame + payload codecs
// ---------------------------------------------------------------------

/// A connected loopback socket pair (server side accepted in-line).
struct SocketPair {
  Listener listener;
  Socket client;
  Socket server;
};

SocketPair MakeSocketPair() {
  SocketPair p;
  auto listener = Listener::Bind(0);
  EXPECT_TRUE(listener.ok());
  p.listener = std::move(*listener);
  auto client = TcpConnect("127.0.0.1", p.listener.port());
  EXPECT_TRUE(client.ok());
  p.client = std::move(*client);
  auto server = p.listener.Accept();
  EXPECT_TRUE(server.ok());
  p.server = std::move(*server);
  return p;
}

TEST(Wire, FrameRoundTrips) {
  SocketPair p = MakeSocketPair();
  const std::vector<uint8_t> payload = {1, 2, 3, 250, 0, 7};
  uint64_t out_bytes = 0;
  ASSERT_TRUE(
      net::WriteFrame(&p.client, net::MsgType::kQuery, payload, &out_bytes)
          .ok());
  EXPECT_EQ(out_bytes, net::kFrameOverhead + payload.size());
  net::Frame frame;
  uint64_t in_bytes = 0;
  ASSERT_TRUE(net::ReadFrame(&p.server, &frame, &in_bytes).ok());
  EXPECT_EQ(in_bytes, out_bytes);
  EXPECT_EQ(frame.type, net::MsgType::kQuery);
  EXPECT_EQ(frame.payload, payload);
}

TEST(Wire, EmptyPayloadFrameRoundTrips) {
  SocketPair p = MakeSocketPair();
  ASSERT_TRUE(net::WriteFrame(&p.client, net::MsgType::kMetrics, {}).ok());
  net::Frame frame;
  ASSERT_TRUE(net::ReadFrame(&p.server, &frame).ok());
  EXPECT_EQ(frame.type, net::MsgType::kMetrics);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(Wire, OversizedWriteIsRejectedLocally) {
  SocketPair p = MakeSocketPair();
  std::vector<uint8_t> huge(net::kMaxFramePayload + 1);
  Status s = net::WriteFrame(&p.client, net::MsgType::kQuery, huge);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(Wire, CorruptCrcIsRejected) {
  SocketPair p = MakeSocketPair();
  // A hand-built frame with a wrong CRC.
  const uint8_t wire[] = {2, 0, 0, 0,  // len
                          2,           // type kQuery
                          9, 9,        // payload
                          1, 2, 3, 4};  // bogus crc
  ASSERT_TRUE(p.client.SendAll(wire, sizeof(wire)).ok());
  net::Frame frame;
  Status s = net::ReadFrame(&p.server, &frame);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("CRC"), std::string::npos);
}

TEST(Wire, OversizedLengthPrefixIsRejectedWithoutAllocation) {
  SocketPair p = MakeSocketPair();
  const uint8_t wire[] = {0xff, 0xff, 0xff, 0xff, 2};
  ASSERT_TRUE(p.client.SendAll(wire, sizeof(wire)).ok());
  net::Frame frame;
  EXPECT_EQ(net::ReadFrame(&p.server, &frame).code(),
            StatusCode::kInvalidArgument);
}

TEST(Wire, UnknownTypeIsRejected) {
  SocketPair p = MakeSocketPair();
  // Valid CRC over an unknown type byte.
  std::vector<uint8_t> body = {200};
  const uint32_t crc = Crc32(body.data(), body.size());
  std::vector<uint8_t> wire = {0, 0, 0, 0, 200};
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  ASSERT_TRUE(p.client.SendAll(wire.data(), wire.size()).ok());
  net::Frame frame;
  Status s = net::ReadFrame(&p.server, &frame);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("unknown frame type"), std::string::npos);
}

TEST(Wire, CleanEofIsUnavailableTornFrameIsIoError) {
  {
    SocketPair p = MakeSocketPair();
    p.client.Close();
    net::Frame frame;
    EXPECT_EQ(net::ReadFrame(&p.server, &frame).code(),
              StatusCode::kUnavailable);
  }
  {
    SocketPair p = MakeSocketPair();
    const uint8_t partial[] = {40, 0, 0, 0, 2, 1, 2, 3};  // announces 40
    ASSERT_TRUE(p.client.SendAll(partial, sizeof(partial)).ok());
    p.client.Close();
    net::Frame frame;
    EXPECT_EQ(net::ReadFrame(&p.server, &frame).code(), StatusCode::kIoError);
  }
}

Relation BoxRelation(size_t count, uint64_t seed) {
  WorkloadParams params;
  params.data_count = count;
  return BoxesToConstraintRelation(GenerateDataBoxes(seed, params));
}

TEST(Wire, RelationRoundTrips) {
  const Relation boxes = BoxRelation(40, 3);
  Writer w;
  net::PutRelation(&w, boxes);
  Reader r(w.buffer());
  Relation back;
  ASSERT_TRUE(net::GetRelation(&r, &back).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back.ToString(), boxes.ToString());
}

TEST(Wire, QueryOptionsRoundTrip) {
  service::QueryOptions opts;
  opts.deadline_us = 1234.5;
  opts.max_tuples = 77;
  opts.max_memory_bytes = 1 << 20;
  opts.allow_partial = true;
  opts.trip_at_check = 9;
  opts.trace_id = 0xabcdef0123456789ull;
  Writer w;
  net::PutQueryOptions(&w, opts);
  Reader r(w.buffer());
  service::QueryOptions back;
  ASSERT_TRUE(net::GetQueryOptions(&r, &back).ok());
  EXPECT_EQ(back.deadline_us, opts.deadline_us);
  EXPECT_EQ(back.max_tuples, opts.max_tuples);
  EXPECT_FALSE(back.max_constraints.has_value());
  EXPECT_EQ(back.max_memory_bytes, opts.max_memory_bytes);
  EXPECT_EQ(back.allow_partial, opts.allow_partial);
  EXPECT_EQ(back.trip_at_check, opts.trip_at_check);
  EXPECT_EQ(back.trace_id, opts.trace_id);

  // Defaults survive too.
  Writer w2;
  net::PutQueryOptions(&w2, {});
  Reader r2(w2.buffer());
  ASSERT_TRUE(net::GetQueryOptions(&r2, &back).ok());
  EXPECT_FALSE(back.deadline_us.has_value());
  EXPECT_FALSE(back.allow_partial.has_value());
  EXPECT_EQ(back.trace_id, uint64_t{0});
}

TEST(Wire, TraceNodeRoundTrips) {
  obs::TraceNode root;
  root.label = "R2 = join R0 and R1";
  root.wall_us = 1234.5;
  root.self_us = 12.25;
  root.tuples_in = 80;
  root.tuples_out = 17;
  root.counters.conjunctions = 99;
  root.counters.fm_eliminations = 7;
  root.counters.pages_read = 3;
  obs::TraceNode child;
  child.label = "R0 = select x >= 100 from Boxes";
  child.wall_us = 600.0;
  child.tuples_out = 40;
  child.counters.index_node_visits = 5;
  root.children.push_back(child);
  root.children.push_back(child);
  root.children[1].label = "R1 = select y >= 100 from Boxes";

  Writer w;
  net::PutTraceNode(&w, root);
  Reader r(w.buffer());
  obs::TraceNode back;
  ASSERT_TRUE(net::GetTraceNode(&r, &back).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back.label, root.label);
  EXPECT_EQ(back.wall_us, root.wall_us);
  EXPECT_EQ(back.self_us, root.self_us);
  EXPECT_EQ(back.tuples_in, root.tuples_in);
  EXPECT_EQ(back.tuples_out, root.tuples_out);
  EXPECT_EQ(back.counters.conjunctions, root.counters.conjunctions);
  EXPECT_EQ(back.counters.pages_read, root.counters.pages_read);
  ASSERT_EQ(back.children.size(), size_t{2});
  EXPECT_EQ(back.children[0].label, root.children[0].label);
  EXPECT_EQ(back.children[0].counters.index_node_visits, uint64_t{5});
  EXPECT_EQ(back.children[1].label, root.children[1].label);
  // Rendering and totals survive the wire unchanged.
  EXPECT_EQ(back.ToString(), root.ToString());
  EXPECT_EQ(back.TotalCounters().conjunctions,
            root.TotalCounters().conjunctions);
}

TEST(Wire, TraceNodeDeeperThanGuardIsRejected) {
  // A pathological chain one past the depth limit must decode to a typed
  // error, not a stack overflow.
  obs::TraceNode chain;
  obs::TraceNode* tip = &chain;
  for (uint32_t d = 0; d < net::kMaxTraceDepth + 1; ++d) {
    tip->children.emplace_back();
    tip = &tip->children.back();
  }
  Writer w;
  net::PutTraceNode(&w, chain);
  Reader r(w.buffer());
  obs::TraceNode back;
  EXPECT_EQ(net::GetTraceNode(&r, &back).code(),
            StatusCode::kInvalidArgument);
}

TEST(Wire, RegistrySnapshotRoundTrips) {
  obs::MetricsRegistry registry;
  registry.GetCounter("queries.completed")->Add(41);
  registry.SetGauge("queue.depth", 6);
  obs::Histogram* hist = registry.GetHistogram("query.latency_us");
  hist->Record(12);
  hist->Record(90000);
  const obs::MetricsRegistry::Snapshot snapshot = registry.TakeSnapshot();

  Writer w;
  net::PutRegistrySnapshot(&w, snapshot);
  Reader r(w.buffer());
  obs::MetricsRegistry::Snapshot back;
  ASSERT_TRUE(net::GetRegistrySnapshot(&r, &back).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back.values, snapshot.values);
  EXPECT_EQ(back.gauges, snapshot.gauges);
  ASSERT_EQ(back.histograms.size(), size_t{1});
  EXPECT_EQ(back.histograms[0].name, "query.latency_us");
  EXPECT_EQ(back.histograms[0].count, uint64_t{2});
  EXPECT_EQ(back.histograms[0].sum, uint64_t{90012});
  EXPECT_EQ(back.histograms[0].buckets, snapshot.histograms[0].buckets);
  // The two exposition surfaces agree by construction: rendering the
  // decoded snapshot is byte-identical to rendering the original.
  EXPECT_EQ(obs::RenderPrometheus(back), obs::RenderPrometheus(snapshot));
}

TEST(Wire, RegistrySnapshotWithImplausibleCountIsRejected) {
  Writer w;
  w.PutU32(0xffffff);  // claims ~16M values in a tiny payload
  Reader r(w.buffer());
  obs::MetricsRegistry::Snapshot back;
  EXPECT_FALSE(net::GetRegistrySnapshot(&r, &back).ok());
}

// ---------------------------------------------------------------------
// Client / server integration
// ---------------------------------------------------------------------

/// A leader: durable store + query service + wire server.
class Leader {
 public:
  explicit Leader(net::ShipFaults faults = {},
                  service::ServiceOptions sopts = {}) {
    EXPECT_TRUE(db_.Create("Boxes", BoxRelation(50, 7)).ok());
    auto store = DurableStore::Create(&disk_);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(*store);
    EXPECT_TRUE(store_->CommitCatalog(db_).ok());
    sopts.disk = &disk_;
    sopts.store = store_.get();
    service_ = std::make_unique<service::QueryService>(&db_, sopts);
    net::ServerOptions nopts;
    nopts.store = store_.get();
    nopts.ship_faults = faults;
    auto server = net::Server::Start(service_.get(), nopts);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  uint16_t port() const { return server_->port(); }
  service::QueryService* service() { return service_.get(); }
  net::Server* server() { return server_.get(); }
  DurableStore* store() { return store_.get(); }

  std::unique_ptr<net::Client> Connect() {
    auto client = net::Client::Connect("127.0.0.1", port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  /// Waits until every server-side session is gone (drained connection
  /// threads close theirs asynchronously).
  void WaitSessionsDrained() {
    for (int i = 0; i < 1000; ++i) {
      if (service_->Metrics().sessions == 0) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    FAIL() << "sessions leaked: " << service_->Metrics().sessions;
  }

 private:
  Database db_;
  PageManager disk_;
  std::unique_ptr<DurableStore> store_;
  std::unique_ptr<service::QueryService> service_;
  std::unique_ptr<net::Server> server_;
};

TEST(NetServer, HelloExecuteMatchesLocalExecution) {
  Leader leader;
  auto client = leader.Connect();
  ASSERT_NE(client, nullptr);
  EXPECT_FALSE(client->server_read_only());
  EXPECT_GT(client->session_id(), 0u);

  const std::string script =
      "R0 = select x >= 0, x <= 400 from Boxes\nR1 = project R0 on y";
  auto remote = client->Execute(script);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  const auto local_session = leader.service()->OpenSession();
  auto local = leader.service()->Execute(local_session, script);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(remote->step, local->step);
  EXPECT_EQ(remote->relation.ToString(), local->relation.ToString());
  EXPECT_GT(remote->latency_us, 0);
  EXPECT_TRUE(leader.service()->CloseSession(local_session).ok());
}

TEST(NetServer, ServiceErrorsCrossTheWireTyped) {
  Leader leader;
  auto client = leader.Connect();
  auto result = client->Execute("R0 = select x >= 0 from NoSuchRelation");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("NoSuchRelation"),
            std::string::npos);
  // The connection survives a service-level error.
  EXPECT_TRUE(client->Execute("R0 = select x >= 0 from Boxes").ok());
}

TEST(NetServer, StepsPersistAcrossCallsAndSessionsAreIsolated) {
  Leader leader;
  auto a = leader.Connect();
  auto b = leader.Connect();
  ASSERT_TRUE(a->Execute("R0 = select x >= 100 from Boxes").ok());
  // a's step is visible to a...
  EXPECT_TRUE(a->Execute("R1 = project R0 on y").ok());
  // ...but not to b (separate server-side session).
  auto other = b->Execute("R1 = project R0 on y");
  ASSERT_FALSE(other.ok());
  EXPECT_EQ(other.status().code(), StatusCode::kNotFound);
}

TEST(NetServer, SubmitWaitCancelOverTheWire) {
  Leader leader;
  auto client = leader.Connect();
  auto id = client->Submit("R0 = select x >= 0 from Boxes");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto result = client->Wait(*id);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->step, "R0");
  // A second WAIT on the same id is a typed NotFound.
  EXPECT_EQ(client->Wait(*id).status().code(), StatusCode::kNotFound);
  // Cancelling an unknown id is a typed NotFound, not a dropped link.
  EXPECT_EQ(client->Cancel(999999).code(), StatusCode::kNotFound);
  EXPECT_TRUE(client->Execute("R1 = select y >= 0 from Boxes").ok());
}

TEST(NetServer, CancelledSubmissionFailsItsWaitTyped) {
  service::ServiceOptions sopts;
  sopts.start_paused = true;  // keep the query queued so Cancel wins
  Leader leader({}, sopts);
  auto client = leader.Connect();
  auto id = client->Submit("R0 = select x >= 0 from Boxes");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client->Cancel(*id).ok());
  auto result = client->Wait(*id);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  leader.service()->Resume();
}

TEST(NetServer, GovernanceDeadlineSurfacesOverTheWire) {
  Leader leader;
  auto client = leader.Connect();
  service::QueryOptions opts;
  opts.deadline_us = 0.01;  // expires during queue wait
  auto result = client->Execute("R0 = select x >= 0 from Boxes", opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(NetServer, SheddingCarriesRetryAfterAcrossTheWire) {
  service::ServiceOptions sopts;
  sopts.start_paused = true;
  sopts.num_workers = 1;
  sopts.max_queue_depth = 1;
  Leader leader({}, sopts);
  auto client = leader.Connect();
  auto first = client->Submit("R0 = select x >= 0 from Boxes");
  ASSERT_TRUE(first.ok());
  auto second = client->Submit("R0 = select x >= 1 from Boxes");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(second.status().retry_after_ms(), 0)
      << "shed status lost its backoff hint on the wire: "
      << second.status().ToString();
  leader.service()->Resume();
  EXPECT_TRUE(client->Wait(*first).ok());
}

TEST(NetServer, MetricsTraceListGetLoadCheckpoint) {
  Leader leader;
  auto client = leader.Connect();

  auto metrics = client->MetricsText();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("net.connections.open"), std::string::npos);
  EXPECT_NE(metrics->find("queries:"), std::string::npos);

  auto trace = client->Trace("R0 = select x >= 0, x <= 900 from Boxes");
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_TRUE(trace->used_plan);
  EXPECT_FALSE(trace->plan_text.empty());
  EXPECT_FALSE(trace->trace_text.empty());
  EXPECT_EQ(trace->response.step, "R0");

  auto names = client->ListRelations();
  ASSERT_TRUE(names.ok());
  EXPECT_NE(std::find(names->begin(), names->end(), "Boxes"), names->end());

  auto fetched = client->GetRelation("Boxes");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->size(), 50u);

  const Relation more = BoxRelation(10, 99);
  ASSERT_TRUE(client->LoadRelation("More", more).ok());
  auto more_back = client->GetRelation("More");
  ASSERT_TRUE(more_back.ok());
  EXPECT_EQ(more_back->ToString(), more.ToString());

  EXPECT_TRUE(client->Checkpoint().ok());
  EXPECT_EQ(client->GetRelation("Nope").status().code(),
            StatusCode::kNotFound);
}

TEST(NetServer, DisconnectReclaimsSessionsAndPendingQueries) {
  Leader leader;
  {
    auto client = leader.Connect();
    ASSERT_TRUE(client->Execute("R0 = select x >= 0 from Boxes").ok());
    EXPECT_GE(leader.service()->Metrics().sessions, 1u);
  }  // destructor closes the socket
  leader.WaitSessionsDrained();
}

TEST(NetServer, GracefulDrainUnblocksAndRefuses) {
  Leader leader;
  auto client = leader.Connect();
  ASSERT_TRUE(client->Execute("R0 = select x >= 0 from Boxes").ok());
  leader.server()->Shutdown();
  // The drained server closed the connection under the client.
  EXPECT_FALSE(client->Execute("R1 = select y >= 0 from Boxes").ok());
  // And nobody new can connect.
  EXPECT_FALSE(net::Client::Connect("127.0.0.1", leader.port()).ok());
  EXPECT_EQ(leader.server()->open_connections(), 0u);
  leader.WaitSessionsDrained();
}

// ---------------------------------------------------------------------
// Protocol fuzz: the server must answer garbage with typed errors or a
// clean close — never crash, hang, or leak a session.
// ---------------------------------------------------------------------

Socket RawConnect(uint16_t port) {
  auto sock = TcpConnect("127.0.0.1", port);
  EXPECT_TRUE(sock.ok());
  return std::move(*sock);
}

/// Reads one frame expecting a typed kError carrying `code`.
void ExpectErrorFrame(Socket* sock, StatusCode code) {
  net::Frame frame;
  ASSERT_TRUE(net::ReadFrame(sock, &frame).ok());
  ASSERT_EQ(frame.type, net::MsgType::kError);
  Status transported = Status::OK();
  ASSERT_TRUE(net::DecodeErrorPayload(frame.payload, &transported).ok());
  EXPECT_EQ(transported.code(), code);
}

/// After the server closes, reads must hit EOF (not hang).
void ExpectPeerClose(Socket* sock) {
  uint8_t byte = 0;
  Status s = sock->RecvAll(&byte, 1);
  EXPECT_FALSE(s.ok());
}

TEST(NetFuzz, CorruptCrcGetsTypedErrorThenClose) {
  Leader leader;
  Socket sock = RawConnect(leader.port());
  const uint8_t wire[] = {2, 0, 0, 0, 2, 9, 9, 1, 2, 3, 4};
  ASSERT_TRUE(sock.SendAll(wire, sizeof(wire)).ok());
  ExpectErrorFrame(&sock, StatusCode::kInvalidArgument);
  ExpectPeerClose(&sock);
  // The server is still alive for the next client.
  auto client = leader.Connect();
  EXPECT_TRUE(client->Execute("R0 = select x >= 0 from Boxes").ok());
  client.reset();
  leader.WaitSessionsDrained();
  EXPECT_GE(leader.server()->registry().TakeSnapshot().Value(
                "net.protocol_errors"),
            1u);
}

TEST(NetFuzz, OversizedLengthGetsTypedErrorThenClose) {
  Leader leader;
  Socket sock = RawConnect(leader.port());
  const uint8_t wire[] = {0xff, 0xff, 0xff, 0x7f, 1};
  ASSERT_TRUE(sock.SendAll(wire, sizeof(wire)).ok());
  ExpectErrorFrame(&sock, StatusCode::kInvalidArgument);
  ExpectPeerClose(&sock);
  leader.WaitSessionsDrained();
}

TEST(NetFuzz, MidFrameDisconnectIsHarmless) {
  Leader leader;
  {
    Socket sock = RawConnect(leader.port());
    const uint8_t partial[] = {64, 0, 0, 0, 2, 1, 2};
    ASSERT_TRUE(sock.SendAll(partial, sizeof(partial)).ok());
  }  // close mid-frame
  auto client = leader.Connect();
  EXPECT_TRUE(client->Execute("R0 = select x >= 0 from Boxes").ok());
  client.reset();
  leader.WaitSessionsDrained();
}

TEST(NetFuzz, RequestBeforeHelloIsTypedAndRecoverable) {
  Leader leader;
  Socket sock = RawConnect(leader.port());
  Writer w;
  w.PutU64(1);
  ASSERT_TRUE(net::WriteFrame(&sock, net::MsgType::kWait, w.buffer()).ok());
  ExpectErrorFrame(&sock, StatusCode::kInvalidArgument);
  // Same connection can still HELLO afterwards.
  Writer hello;
  hello.PutU32(net::kProtocolVersion);
  hello.PutString("late-hello");
  ASSERT_TRUE(
      net::WriteFrame(&sock, net::MsgType::kHello, hello.buffer()).ok());
  net::Frame frame;
  ASSERT_TRUE(net::ReadFrame(&sock, &frame).ok());
  EXPECT_EQ(frame.type, net::MsgType::kHelloOk);
  sock.Close();
  leader.WaitSessionsDrained();
}

TEST(NetFuzz, VersionMismatchIsTypedUnsupported) {
  Leader leader;
  Socket sock = RawConnect(leader.port());
  Writer hello;
  hello.PutU32(net::kProtocolVersion + 7);
  hello.PutString("from-the-future");
  ASSERT_TRUE(
      net::WriteFrame(&sock, net::MsgType::kHello, hello.buffer()).ok());
  ExpectErrorFrame(&sock, StatusCode::kUnsupported);
  ExpectPeerClose(&sock);
  leader.WaitSessionsDrained();
}

TEST(NetFuzz, ResponseTypeAsRequestIsTypedError) {
  Leader leader;
  Socket sock = RawConnect(leader.port());
  ASSERT_TRUE(net::WriteFrame(&sock, net::MsgType::kOk, {}).ok());
  ExpectErrorFrame(&sock, StatusCode::kInvalidArgument);
  ExpectPeerClose(&sock);
  leader.WaitSessionsDrained();
}

TEST(NetFuzz, MalformedPayloadOfKnownTypeIsTypedError) {
  Leader leader;
  auto client = leader.Connect();
  // Ride the established session: a QUERY frame whose payload is not a
  // valid (script, options) encoding, sent raw through a second client's
  // socket — easiest is a raw connection that HELLOs first.
  Socket sock = RawConnect(leader.port());
  Writer hello;
  hello.PutU32(net::kProtocolVersion);
  hello.PutString("fuzzer");
  ASSERT_TRUE(
      net::WriteFrame(&sock, net::MsgType::kHello, hello.buffer()).ok());
  net::Frame frame;
  ASSERT_TRUE(net::ReadFrame(&sock, &frame).ok());
  ASSERT_EQ(frame.type, net::MsgType::kHelloOk);
  ASSERT_TRUE(
      net::WriteFrame(&sock, net::MsgType::kQuery, {0xde, 0xad}).ok());
  ExpectErrorFrame(&sock, StatusCode::kInvalidArgument);
  // Connection survives a payload-level error (the stream is aligned).
  ASSERT_TRUE(net::WriteFrame(&sock, net::MsgType::kListRelations, {}).ok());
  ASSERT_TRUE(net::ReadFrame(&sock, &frame).ok());
  EXPECT_EQ(frame.type, net::MsgType::kNameList);
  sock.Close();
  client.reset();
  leader.WaitSessionsDrained();
}

TEST(NetFuzz, RandomGarbageNeverCrashesOrLeaks) {
  Leader leader;
  Rng rng(0xfeed);
  for (int round = 0; round < 40; ++round) {
    Socket sock = RawConnect(leader.port());
    const int len = static_cast<int>(rng.UniformInt(1, 64));
    std::vector<uint8_t> bytes;
    bytes.reserve(static_cast<size_t>(len));
    for (int i = 0; i < len; ++i) {
      bytes.push_back(static_cast<uint8_t>(rng.UniformInt(0, 255)));
    }
    IgnoreError(sock.SendAll(bytes.data(), bytes.size()));
    // Never block on a reply: random bytes may announce a longer frame
    // than was sent, in which case the server is (correctly) waiting for
    // the rest. Half the rounds half-close first so the server sees the
    // torn frame before the teardown; all rounds then close, which
    // unblocks any server thread mid-read.
    if (round % 2 == 0) sock.ShutdownSend();
  }
  // The server survived it all and leaked nothing.
  auto client = leader.Connect();
  EXPECT_TRUE(client->Execute("R0 = select x >= 0 from Boxes").ok());
  client.reset();
  leader.WaitSessionsDrained();
}

TEST(NetServer, ConcurrentClientsExecuteCorrectly) {
  Leader leader;
  constexpr int kClients = 8;
  constexpr int kQueriesEach = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&leader, &failures, c] {
      auto client = net::Client::Connect("127.0.0.1", leader.port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int q = 0; q < kQueriesEach; ++q) {
        const int lo = (c * 293 + q * 157) % 2000;
        auto result = (*client)->Execute(
            "R0 = select x >= " + std::to_string(lo) + ", x <= " +
            std::to_string(lo + 300) + " from Boxes");
        if (!result.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  leader.WaitSessionsDrained();
}

// ---------------------------------------------------------------------
// Trace propagation + metrics snapshot over the wire
// ---------------------------------------------------------------------

TEST(NetServer, FetchTraceReturnsRemoteSpanTreeWithCallerTraceId) {
  Leader leader;
  auto client = leader.Connect();
  constexpr uint64_t kTraceId = 0xfeedbeef;
  auto remote = client->FetchTrace(
      "R0 = select x >= 100, x <= 600 from Boxes\n"
      "R1 = select y >= 100, y <= 600 from Boxes\n"
      "R2 = join R0 and R1",
      kTraceId);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  // The server echoes the client-assigned id and ships the full tree —
  // structure and per-layer counters, not pre-rendered text.
  EXPECT_EQ(remote->trace_id, kTraceId);
  EXPECT_TRUE(remote->used_plan);
  EXPECT_FALSE(remote->plan_text.empty());
  EXPECT_FALSE(remote->root.children.empty());
  EXPECT_EQ(remote->root.tuples_out, remote->response.relation.size());
  EXPECT_GT(remote->root.TotalCounters().conjunctions, uint64_t{0});
  EXPECT_GT(remote->root.wall_us, 0.0);
  client.reset();
  leader.WaitSessionsDrained();
}

TEST(NetServer, MetricsSnapshotMergesServiceAndNetRegistries) {
  Leader leader;
  auto client = leader.Connect();
  ASSERT_TRUE(client->Execute("R0 = select x >= 0 from Boxes").ok());
  auto snapshot = client->MetricsSnapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  // Service-side values and the server's own net.* registry arrive in
  // one snapshot, sorted by name.
  EXPECT_GE(snapshot->Value(obs::names::kQueriesCompleted), uint64_t{1});
  EXPECT_GE(snapshot->Value(obs::names::kNetConnectionsTotal), uint64_t{1});
  EXPECT_EQ(snapshot->gauges.count(obs::names::kWalLsn), size_t{1});
  EXPECT_EQ(snapshot->gauges.count(obs::names::kProcessUptimeSeconds),
            size_t{1});
  EXPECT_TRUE(std::is_sorted(snapshot->values.begin(),
                             snapshot->values.end()));
  // The latency histogram crossed the wire with the query in it.
  bool found_latency = false;
  for (const auto& hist : snapshot->histograms) {
    if (hist.name == obs::names::kQueryLatencyUs) {
      found_latency = true;
      EXPECT_GE(hist.count, uint64_t{1});
    }
  }
  EXPECT_TRUE(found_latency);
  client.reset();
  leader.WaitSessionsDrained();
}

// ---------------------------------------------------------------------
// The HTTP status listener
// ---------------------------------------------------------------------

/// Sends raw bytes as an HTTP request and reads the whole response.
std::string HttpExchange(uint16_t port, const std::string& request) {
  Socket sock = RawConnect(port);
  EXPECT_TRUE(sock.SendAll(request.data(), request.size()).ok());
  sock.ShutdownSend();
  std::string response;
  char buf[2048];
  while (true) {
    auto got = sock.RecvSome(buf, sizeof(buf));
    if (!got.ok() || *got == 0) break;
    response.append(buf, *got);
  }
  return response;
}

/// The response body (after the blank line), or "" when malformed.
std::string HttpBody(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(StatusHttp, MetricsEndpointServesPrometheusExposition) {
  Leader leader;
  auto status = net::StatusServer::Start(leader.server());
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  auto client = leader.Connect();
  ASSERT_TRUE(client->Execute("R0 = select x >= 0 from Boxes").ok());

  const std::string response = HttpExchange(
      (*status)->port(), "GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), size_t{0});
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  const std::string body = HttpBody(response);
  EXPECT_NE(body.find("# TYPE ccdb_queries_completed counter\n"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE ccdb_net_connections_total counter\n"),
            std::string::npos);
  EXPECT_NE(body.find("ccdb_query_latency_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(body.find("ccdb_build_info{version=\""), std::string::npos);
  // Content-Length matches the body exactly.
  const std::string marker = "Content-Length: ";
  const size_t at = response.find(marker);
  ASSERT_NE(at, std::string::npos);
  EXPECT_EQ(std::strtoull(response.c_str() + at + marker.size(), nullptr, 10),
            body.size());
  client.reset();
  leader.WaitSessionsDrained();
}

TEST(StatusHttp, HealthzReportsLeaderRole) {
  Leader leader;
  auto status = net::StatusServer::Start(leader.server());
  ASSERT_TRUE(status.ok());
  const std::string response = HttpExchange(
      (*status)->port(), "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), size_t{0});
  const std::string body = HttpBody(response);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(body.find("\"role\":\"leader\""), std::string::npos);
  EXPECT_NE(body.find("\"catalog_epoch\":"), std::string::npos);
  EXPECT_NE(body.find("\"wal_lsn\":"), std::string::npos);
  EXPECT_EQ(body.find("\"replica\""), std::string::npos);
}

TEST(StatusHttp, MalformedOversizeAndUnknownRequestsGetTypedResponses) {
  Leader leader;
  auto status = net::StatusServer::Start(leader.server());
  ASSERT_TRUE(status.ok());
  const uint16_t port = (*status)->port();

  // Unknown path -> 404.
  EXPECT_EQ(HttpExchange(port, "GET /nope HTTP/1.0\r\n\r\n")
                .rfind("HTTP/1.0 404 Not Found\r\n", 0),
            size_t{0});
  // Non-GET -> 405.
  EXPECT_EQ(HttpExchange(port, "POST /metrics HTTP/1.0\r\n\r\n")
                .rfind("HTTP/1.0 405 Method Not Allowed\r\n", 0),
            size_t{0});
  // Malformed request line -> 400.
  EXPECT_EQ(HttpExchange(port, "NONSENSE\r\n\r\n")
                .rfind("HTTP/1.0 400 Bad Request\r\n", 0),
            size_t{0});
  // Binary garbage -> 400 (or clean close), never a hang or crash.
  const std::string garbage("\x01\x02\xff\xfe\x00\x07 garbage\r\n\r\n", 16);
  const std::string garbage_response = HttpExchange(port, garbage);
  if (!garbage_response.empty()) {
    EXPECT_EQ(garbage_response.rfind("HTTP/1.0 4", 0), size_t{0});
  }
  // Oversize head (no terminating blank line within the cap) -> 400.
  const std::string oversize =
      "GET /metrics HTTP/1.0\r\nX-Junk: " +
      std::string(net::StatusServer::kMaxRequestBytes + 100, 'j');
  EXPECT_EQ(HttpExchange(port, oversize)
                .rfind("HTTP/1.0 400 Bad Request\r\n", 0),
            size_t{0});
  // The status server survived it all.
  EXPECT_EQ(HttpExchange(port, "GET /healthz HTTP/1.0\r\n\r\n")
                .rfind("HTTP/1.0 200 OK\r\n", 0),
            size_t{0});
}

TEST(StatusHttp, ConcurrentScrapesWhileQueriesRun) {
  Leader leader;
  auto status = net::StatusServer::Start(leader.server());
  ASSERT_TRUE(status.ok());
  const uint16_t http_port = (*status)->port();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&leader, &failures] {
      auto client = net::Client::Connect("127.0.0.1", leader.port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int q = 0; q < 5; ++q) {
        if (!(*client)->Execute("R0 = select x >= 0 from Boxes").ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int s = 0; s < 8; ++s) {
    const std::string response =
        HttpExchange(http_port, "GET /metrics HTTP/1.0\r\n\r\n");
    if (response.rfind("HTTP/1.0 200 OK\r\n", 0) != 0) failures.fetch_add(1);
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  leader.WaitSessionsDrained();
}

TEST(StatusHttp, HealthzReportsReplicaRoleAndLag) {
  Leader leader;
  // A follower fronted by a read-only server; the replica publishes its
  // lag gauges into that server's registry, so both scrape surfaces see
  // them.
  Database follower_db;
  service::QueryService follower_service(&follower_db);
  net::ServerOptions sopts;
  sopts.read_only = true;
  auto follower_server = net::Server::Start(&follower_service, sopts);
  ASSERT_TRUE(follower_server.ok());
  net::ReplicaOptions ropts;
  ropts.start_paused = true;
  ropts.registry = &(*follower_server)->registry();
  auto replica = net::Replica::Start("127.0.0.1", leader.port(),
                                     &follower_service, ropts);
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  ASSERT_TRUE((*replica)->WaitCaughtUp(10000).ok());

  net::StatusServerOptions stopts;
  stopts.replica = replica->get();
  auto status = net::StatusServer::Start(follower_server->get(), stopts);
  ASSERT_TRUE(status.ok());
  const uint16_t port = (*status)->port();

  const std::string health =
      HttpBody(HttpExchange(port, "GET /healthz HTTP/1.0\r\n\r\n"));
  EXPECT_NE(health.find("\"role\":\"replica\""), std::string::npos);
  EXPECT_NE(health.find("\"caught_up\":true"), std::string::npos);
  EXPECT_NE(health.find("\"lag_batches\":0"), std::string::npos);
  EXPECT_NE(health.find("\"applied_lsn\":"), std::string::npos);

  const std::string metrics =
      HttpBody(HttpExchange(port, "GET /metrics HTTP/1.0\r\n\r\n"));
  EXPECT_NE(metrics.find("# TYPE ccdb_replica_lag_batches gauge\n"),
            std::string::npos);
  EXPECT_NE(metrics.find("ccdb_replica_last_apply_lsn "), std::string::npos);
  EXPECT_NE(metrics.find("ccdb_replica_resyncs "), std::string::npos);
}

// ---------------------------------------------------------------------
// WAL-shipping replication
// ---------------------------------------------------------------------

/// A follower: its own service + a paused Replica driven by the test.
class Follower {
 public:
  explicit Follower(uint16_t leader_port) {
    service_ = std::make_unique<service::QueryService>(&db_);
    net::ReplicaOptions opts;
    opts.start_paused = true;
    auto replica =
        net::Replica::Start("127.0.0.1", leader_port, service_.get(), opts);
    EXPECT_TRUE(replica.ok()) << replica.status().ToString();
    replica_ = std::move(*replica);
  }

  net::Replica* replica() { return replica_.get(); }
  service::QueryService* service() { return service_.get(); }

 private:
  Database db_;
  std::unique_ptr<service::QueryService> service_;
  std::unique_ptr<net::Replica> replica_;
};

/// Every leader-visible base relation must read identically on the
/// follower.
void ExpectCatalogsEqual(service::QueryService* leader,
                         service::QueryService* follower) {
  const auto ls = leader->OpenSession();
  const auto fs = follower->OpenSession();
  const std::vector<std::string> names = leader->VisibleNames(ls);
  EXPECT_EQ(names, follower->VisibleNames(fs));
  for (const std::string& name : names) {
    auto lrel = leader->GetRelation(ls, name);
    auto frel = follower->GetRelation(fs, name);
    ASSERT_TRUE(lrel.ok());
    ASSERT_TRUE(frel.ok()) << name << ": " << frel.status().ToString();
    EXPECT_EQ(lrel->ToString(), frel->ToString()) << name;
  }
  EXPECT_TRUE(leader->CloseSession(ls).ok());
  EXPECT_TRUE(follower->CloseSession(fs).ok());
}

TEST(Replication, BootstrapSnapshotThenFollowBatches) {
  Leader leader;
  Follower follower(leader.port());

  // First sync: full snapshot bootstrap.
  ASSERT_TRUE(follower.replica()->SyncOnce().ok());
  auto stats = follower.replica()->stats();
  EXPECT_EQ(stats.snapshots_installed, 1u);
  EXPECT_TRUE(stats.caught_up);
  ExpectCatalogsEqual(leader.service(), follower.service());

  // Continuous writes on the leader; the follower applies them as
  // shipped batches — no further snapshot.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(leader.service()
                    ->ReplaceRelation("Boxes", BoxRelation(30 + i, 11 + i))
                    .ok());
    ASSERT_TRUE(follower.replica()->SyncOnce().ok());
  }
  stats = follower.replica()->stats();
  EXPECT_EQ(stats.snapshots_installed, 1u);
  EXPECT_GE(stats.batches_applied, 3u);
  EXPECT_TRUE(stats.caught_up);
  EXPECT_EQ(stats.lag_batches, 0u);
  ExpectCatalogsEqual(leader.service(), follower.service());
}

TEST(Replication, FollowerServesReadsAndRefusesWrites) {
  Leader leader;
  Follower follower(leader.port());
  ASSERT_TRUE(follower.replica()->SyncOnce().ok());

  // Front the follower with a read-only server.
  net::ServerOptions nopts;
  nopts.read_only = true;
  auto front = net::Server::Start(follower.service(), nopts);
  ASSERT_TRUE(front.ok());
  auto client = net::Client::Connect("127.0.0.1", (*front)->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->server_read_only());
  auto result = (*client)->Execute("R0 = select x >= 0 from Boxes");
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*client)->LoadRelation("X", BoxRelation(3, 1)).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ((*client)->Checkpoint().code(), StatusCode::kUnavailable);
}

struct FaultCase {
  const char* name;
  net::ShipFaults faults;
};

/// Dropped, truncated, corrupted, and reordered shipments must each be
/// rejected by the recovery-grade validation and healed by a snapshot
/// re-sync that restores leader/follower equality.
TEST(Replication, ShipmentFaultsForceResyncThenConverge) {
  // Fault indexes are 1-based over the server-lifetime shipped batches;
  // the bootstrap is a snapshot, so batch #1 is the first post-bootstrap
  // shipment.
  const FaultCase cases[] = {
      {"drop", {.drop_at = 1}},
      {"truncate", {.truncate_at = 1}},
      {"corrupt", {.corrupt_at = 1}},
      {"reorder", {.reorder_at = 1}},
  };
  for (const FaultCase& c : cases) {
    SCOPED_TRACE(c.name);
    Leader leader(c.faults);
    Follower follower(leader.port());
    ASSERT_TRUE(follower.replica()->SyncOnce().ok());  // bootstrap

    // Two committed batches; the fault hits the first shipped record.
    ASSERT_TRUE(
        leader.service()->ReplaceRelation("Boxes", BoxRelation(20, 5)).ok());
    ASSERT_TRUE(
        leader.service()->ReplaceRelation("Boxes", BoxRelation(25, 6)).ok());

    // Drive syncs until converged; the faulted round may fail (typed) —
    // it must never apply a bad batch.
    Status last = Status::OK();
    for (int i = 0; i < 6; ++i) {
      last = follower.replica()->SyncOnce();
      if (last.ok() && follower.replica()->stats().caught_up) break;
    }
    ASSERT_TRUE(last.ok()) << last.ToString();
    const auto stats = follower.replica()->stats();
    EXPECT_TRUE(stats.caught_up);
    // Dropping the *last* record of a shipment self-heals by re-request;
    // every other fault forces a snapshot re-sync.
    if (std::string(c.name) != "drop") {
      EXPECT_GE(stats.resyncs, 1u) << c.name;
      EXPECT_GE(stats.snapshots_installed, 2u) << c.name;
    }
    ExpectCatalogsEqual(leader.service(), follower.service());
  }
}

TEST(Replication, LagIsReportedWhenShipmentsGoMissing) {
  net::ShipFaults faults;
  faults.drop_at = 2;  // swallow the second post-bootstrap batch
  Leader leader(faults);
  Follower follower(leader.port());
  ASSERT_TRUE(follower.replica()->SyncOnce().ok());

  ASSERT_TRUE(
      leader.service()->ReplaceRelation("Boxes", BoxRelation(21, 8)).ok());
  ASSERT_TRUE(
      leader.service()->ReplaceRelation("Boxes", BoxRelation(22, 9)).ok());
  // The shipment delivers batch 1 but drops batch 2: the follower is
  // behind and must say so.
  ASSERT_TRUE(follower.replica()->SyncOnce().ok());
  auto stats = follower.replica()->stats();
  EXPECT_FALSE(stats.caught_up);
  EXPECT_GE(stats.lag_batches, 1u);
  // The next round re-requests the missing LSN and catches up.
  ASSERT_TRUE(follower.replica()->SyncOnce().ok());
  stats = follower.replica()->stats();
  EXPECT_TRUE(stats.caught_up);
  EXPECT_EQ(stats.lag_batches, 0u);
  ExpectCatalogsEqual(leader.service(), follower.service());
}

TEST(Replication, LeaderCheckpointForcesSnapshotResync) {
  Leader leader;
  Follower follower(leader.port());
  ASSERT_TRUE(follower.replica()->SyncOnce().ok());

  // Writes the follower never saw, then a checkpoint that truncates them
  // out of the log: SHIP_WAL from the follower's position must answer
  // with a snapshot, not a hole.
  ASSERT_TRUE(
      leader.service()->ReplaceRelation("Boxes", BoxRelation(33, 4)).ok());
  ASSERT_TRUE(leader.service()->Checkpoint().ok());

  ASSERT_TRUE(follower.replica()->SyncOnce().ok());
  const auto stats = follower.replica()->stats();
  EXPECT_GE(stats.snapshots_installed, 2u);
  EXPECT_TRUE(stats.caught_up);
  ExpectCatalogsEqual(leader.service(), follower.service());
}

TEST(Replication, ContinuousSyncThreadCatchesUp) {
  Leader leader;
  Database fdb;
  service::QueryService fservice(&fdb);
  net::ReplicaOptions opts;
  opts.poll_interval_ms = 2;
  auto replica =
      net::Replica::Start("127.0.0.1", leader.port(), &fservice, opts);
  ASSERT_TRUE(replica.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(leader.service()
                    ->ReplaceRelation("Boxes", BoxRelation(15 + i, 40 + i))
                    .ok());
  }
  ASSERT_TRUE((*replica)->WaitCaughtUp(10000).ok());
  ExpectCatalogsEqual(leader.service(), &fservice);
  (*replica)->Stop();
}

/// Regression: the follower must never expose a half-applied catalog.
/// The leader commits relation pairs (A, B) with identical contents in
/// one transaction; follower readers difference them in single scripts
/// (one pinned snapshot each) while syncs — including a fault-forced
/// snapshot re-sync — republish the catalog. Any non-empty difference
/// means a reader saw new-A with old-B: a torn publish.
TEST(Replication, FollowerNeverExposesHalfAppliedCatalog) {
  net::ShipFaults faults;
  faults.corrupt_at = 3;  // force a mid-storm snapshot re-sync
  Leader leader(faults);
  const auto ls = leader.service()->OpenSession();
  ASSERT_TRUE(leader.service()->Begin(ls).ok());
  ASSERT_TRUE(
      leader.service()->CreateRelation(ls, "A", BoxRelation(10, 1)).ok());
  ASSERT_TRUE(
      leader.service()->CreateRelation(ls, "B", BoxRelation(10, 1)).ok());
  ASSERT_TRUE(leader.service()->Commit(ls).ok());

  Follower follower(leader.port());
  ASSERT_TRUE(follower.replica()->SyncOnce().ok());

  // Sanity-check the torn-pair detector while nothing is being written.
  {
    const auto fs = follower.service()->OpenSession();
    auto same = follower.service()->Execute(fs, "R0 = minus A and B");
    ASSERT_TRUE(same.ok()) << same.status().ToString();
    ASSERT_EQ(same->relation.size(), 0u);
    EXPECT_TRUE(follower.service()->CloseSession(fs).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      const auto fs = follower.service()->OpenSession();
      while (!stop.load()) {
        auto diff = follower.service()->Execute(fs, "R0 = minus A and B");
        ASSERT_TRUE(diff.ok()) << diff.status().ToString();
        ++reads;
        if (diff->relation.size() != 0) ++torn;
      }
      EXPECT_TRUE(follower.service()->CloseSession(fs).ok());
    });
  }

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(leader.service()->Begin(ls).ok());
    ASSERT_TRUE(leader.service()
                    ->ReplaceRelation(ls, "A", BoxRelation(8 + i, 20 + i))
                    .ok());
    ASSERT_TRUE(leader.service()
                    ->ReplaceRelation(ls, "B", BoxRelation(8 + i, 20 + i))
                    .ok());
    ASSERT_TRUE(leader.service()->Commit(ls).ok());
    // The corrupted shipment round fails (typed) and heals by re-sync on
    // a later round — both publish paths run under the readers.
    IgnoreError(follower.replica()->SyncOnce());
  }
  Status synced = Status::OK();
  for (int i = 0; i < 6 && !follower.replica()->stats().caught_up; ++i) {
    synced = follower.replica()->SyncOnce();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  ASSERT_TRUE(synced.ok()) << synced.ToString();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(torn.load(), 0u)
      << "a reader observed a half-applied follower catalog";
  EXPECT_GE(follower.replica()->stats().resyncs, 1u);
  ExpectCatalogsEqual(leader.service(), follower.service());
  EXPECT_TRUE(leader.service()->CloseSession(ls).ok());
}

TEST(Replication, DroppedRelationPropagates) {
  Leader leader;
  Follower follower(leader.port());
  ASSERT_TRUE(follower.replica()->SyncOnce().ok());
  ASSERT_TRUE(leader.service()->DropRelation("Boxes").ok());
  ASSERT_TRUE(follower.replica()->SyncOnce().ok());
  ExpectCatalogsEqual(leader.service(), follower.service());
  const auto fs = follower.service()->OpenSession();
  EXPECT_TRUE(follower.service()->VisibleNames(fs).empty());
  EXPECT_TRUE(follower.service()->CloseSession(fs).ok());
}

}  // namespace
}  // namespace ccdb
