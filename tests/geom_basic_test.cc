#include <gtest/gtest.h>

#include "geom/box.h"
#include "geom/point.h"
#include "geom/segment.h"

namespace ccdb::geom {
namespace {

// --- Point -------------------------------------------------------------------

TEST(PointTest, OrientationSigns) {
  Point o(0, 0), a(1, 0), left(1, 1), right(1, -1), ahead(2, 0);
  EXPECT_EQ(Orientation(o, a, left), 1);
  EXPECT_EQ(Orientation(o, a, right), -1);
  EXPECT_EQ(Orientation(o, a, ahead), 0);
}

TEST(PointTest, OrientationIsExactForNearCollinear) {
  // A classic double-precision failure: tiny rational perturbations.
  Point o(0, 0);
  Point a(Rational(1), Rational(1));
  Point almost(Rational(BigInt::FromString("1000000000000000001").value()),
               Rational(BigInt::FromString("1000000000000000000").value()));
  EXPECT_EQ(Orientation(o, a, almost), -1);
  Point exact(Rational(BigInt::FromString("1000000000000000000").value()),
              Rational(BigInt::FromString("1000000000000000000").value()));
  EXPECT_EQ(Orientation(o, a, exact), 0);
}

TEST(PointTest, CrossAndDot) {
  EXPECT_EQ(Cross(Point(0, 0), Point(1, 0), Point(0, 1)), Rational(1));
  EXPECT_EQ(Dot(Point(2, 3), Point(4, 5)), Rational(23));
}

TEST(PointTest, SquaredDistance) {
  EXPECT_EQ(SquaredDistance(Point(0, 0), Point(3, 4)), Rational(25));
  EXPECT_EQ(SquaredDistance(Point(1, 1), Point(1, 1)), Rational(0));
  EXPECT_EQ(SquaredDistance(Point(Rational(1, 2), Rational(0)),
                            Point(Rational(0), Rational(1, 2))),
            Rational(1, 2));
}

TEST(PointTest, ArithmeticAndOrder) {
  EXPECT_EQ(Point(1, 2) + Point(3, 4), Point(4, 6));
  EXPECT_EQ(Point(1, 2) - Point(3, 4), Point(-2, -2));
  EXPECT_EQ(Point(1, 2) * Rational(3), Point(3, 6));
  EXPECT_LT(Point(1, 5), Point(2, 0));
  EXPECT_LT(Point(1, 0), Point(1, 5));
}

// --- Box ---------------------------------------------------------------------

TEST(BoxTest, EmptyBehaviour) {
  Box e = Box::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_EQ(e.Area(), Rational(0));
  EXPECT_FALSE(e.Intersects(e));
  Box b = Box::FromCorners(Point(0, 0), Point(2, 2));
  EXPECT_EQ(e.ExpandedBy(b), b);
  EXPECT_EQ(b.ExpandedBy(e), b);
  EXPECT_TRUE(b.ContainsBox(e));
  EXPECT_FALSE(e.ContainsBox(b));
}

TEST(BoxTest, FromCornersNormalizesOrder) {
  Box b = Box::FromCorners(Point(5, 1), Point(2, 7));
  EXPECT_EQ(b.x_min, Rational(2));
  EXPECT_EQ(b.x_max, Rational(5));
  EXPECT_EQ(b.y_min, Rational(1));
  EXPECT_EQ(b.y_max, Rational(7));
}

TEST(BoxTest, ContainsAndIntersects) {
  Box b = Box::FromCorners(Point(0, 0), Point(4, 4));
  EXPECT_TRUE(b.Contains(Point(2, 2)));
  EXPECT_TRUE(b.Contains(Point(0, 0))) << "closed box includes boundary";
  EXPECT_TRUE(b.Contains(Point(4, 4)));
  EXPECT_FALSE(b.Contains(Point(5, 2)));

  Box touching = Box::FromCorners(Point(4, 0), Point(6, 4));
  EXPECT_TRUE(b.Intersects(touching)) << "shared edge counts";
  Box disjoint = Box::FromCorners(Point(5, 5), Point(6, 6));
  EXPECT_FALSE(b.Intersects(disjoint));
  Box inside = Box::FromCorners(Point(1, 1), Point(2, 2));
  EXPECT_TRUE(b.ContainsBox(inside));
  EXPECT_FALSE(inside.ContainsBox(b));
}

TEST(BoxTest, ExpandIntersectGrow) {
  Box a = Box::FromCorners(Point(0, 0), Point(2, 2));
  Box b = Box::FromCorners(Point(1, 1), Point(3, 3));
  Box u = a.ExpandedBy(b);
  EXPECT_EQ(u, Box::FromCorners(Point(0, 0), Point(3, 3)));
  Box i = a.IntersectedWith(b);
  EXPECT_EQ(i, Box::FromCorners(Point(1, 1), Point(2, 2)));
  Box far = Box::FromCorners(Point(10, 10), Point(11, 11));
  EXPECT_TRUE(a.IntersectedWith(far).IsEmpty());
  Box grown = a.GrownBy(Rational(1));
  EXPECT_EQ(grown, Box::FromCorners(Point(-1, -1), Point(3, 3)));
}

TEST(BoxTest, Measures) {
  Box b = Box::FromCorners(Point(0, 0), Point(3, 2));
  EXPECT_EQ(b.Area(), Rational(6));
  EXPECT_EQ(b.Margin(), Rational(5));
  EXPECT_EQ(b.Center(), Point(Rational(3, 2), Rational(1)));
}

TEST(BoxTest, SquaredDistanceBetweenBoxes) {
  Box a = Box::FromCorners(Point(0, 0), Point(1, 1));
  Box diag = Box::FromCorners(Point(4, 5), Point(6, 7));
  EXPECT_EQ(Box::SquaredDistance(a, diag), Rational(25));  // dx=3, dy=4
  Box overlap = Box::FromCorners(Point(1, 1), Point(2, 2));
  EXPECT_EQ(Box::SquaredDistance(a, overlap), Rational(0));
  Box beside = Box::FromCorners(Point(3, 0), Point(4, 1));
  EXPECT_EQ(Box::SquaredDistance(a, beside), Rational(4));
}

// --- Segment -------------------------------------------------------------------

TEST(SegmentTest, ContainsExact) {
  Segment s(Point(0, 0), Point(4, 4));
  EXPECT_TRUE(s.Contains(Point(2, 2)));
  EXPECT_TRUE(s.Contains(Point(0, 0)));
  EXPECT_TRUE(s.Contains(Point(4, 4)));
  EXPECT_TRUE(s.Contains(Point(Rational(1, 2), Rational(1, 2))));
  EXPECT_FALSE(s.Contains(Point(5, 5))) << "beyond the endpoint";
  EXPECT_FALSE(s.Contains(Point(2, 3)));
}

TEST(SegmentTest, ProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect(Segment(Point(0, 0), Point(4, 4)),
                                Segment(Point(0, 4), Point(4, 0))));
  EXPECT_FALSE(SegmentsIntersect(Segment(Point(0, 0), Point(1, 1)),
                                 Segment(Point(3, 0), Point(4, 1))));
}

TEST(SegmentTest, TouchingAtEndpointCounts) {
  EXPECT_TRUE(SegmentsIntersect(Segment(Point(0, 0), Point(2, 2)),
                                Segment(Point(2, 2), Point(4, 0))));
  // T-junction: endpoint on interior.
  EXPECT_TRUE(SegmentsIntersect(Segment(Point(0, 0), Point(4, 0)),
                                Segment(Point(2, 0), Point(2, 3))));
}

TEST(SegmentTest, CollinearCases) {
  Segment s(Point(0, 0), Point(4, 0));
  EXPECT_TRUE(SegmentsIntersect(s, Segment(Point(2, 0), Point(6, 0))));
  EXPECT_TRUE(SegmentsIntersect(s, Segment(Point(4, 0), Point(6, 0))));
  EXPECT_FALSE(SegmentsIntersect(s, Segment(Point(5, 0), Point(6, 0))));
  // Parallel non-collinear.
  EXPECT_FALSE(SegmentsIntersect(s, Segment(Point(0, 1), Point(4, 1))));
}

TEST(SegmentTest, DegenerateSegments) {
  Segment pt(Point(1, 1), Point(1, 1));
  EXPECT_TRUE(pt.IsDegenerate());
  EXPECT_TRUE(SegmentsIntersect(pt, Segment(Point(0, 0), Point(2, 2))));
  EXPECT_FALSE(SegmentsIntersect(pt, Segment(Point(0, 0), Point(2, 0))));
  EXPECT_TRUE(SegmentsIntersect(pt, pt));
  Segment other(Point(2, 2), Point(2, 2));
  EXPECT_FALSE(SegmentsIntersect(pt, other));
}

TEST(SegmentTest, PointToSegmentDistance) {
  Segment s(Point(0, 0), Point(4, 0));
  EXPECT_EQ(SquaredDistance(Point(2, 3), s), Rational(9));  // foot inside
  EXPECT_EQ(SquaredDistance(Point(-3, 4), s), Rational(25));  // clamps to a
  EXPECT_EQ(SquaredDistance(Point(7, 4), s), Rational(25));   // clamps to b
  EXPECT_EQ(SquaredDistance(Point(2, 0), s), Rational(0));    // on segment
}

TEST(SegmentTest, SegmentToSegmentDistance) {
  Segment s(Point(0, 0), Point(4, 0));
  EXPECT_EQ(SquaredDistance(s, Segment(Point(0, 2), Point(4, 2))), Rational(4));
  EXPECT_EQ(SquaredDistance(s, Segment(Point(2, -1), Point(2, 1))), Rational(0));
  EXPECT_EQ(SquaredDistance(s, Segment(Point(6, 0), Point(8, 0))), Rational(4));
  // Skew: closest pair is endpoint-to-interior.
  EXPECT_EQ(SquaredDistance(s, Segment(Point(5, 3), Point(5, -3))), Rational(1));
}

}  // namespace
}  // namespace ccdb::geom
