#include "constraint/conjunction.h"

#include <gtest/gtest.h>

namespace ccdb {
namespace {

LinearExpr X() { return LinearExpr::Variable("x"); }
LinearExpr Y() { return LinearExpr::Variable("y"); }
LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

TEST(ConjunctionTest, EmptyIsTrue) {
  Conjunction c;
  EXPECT_TRUE(c.IsTriviallyTrue());
  EXPECT_FALSE(c.IsKnownFalse());
  EXPECT_EQ(c.ToString(), "true");
  EXPECT_TRUE(c.IsSatisfiedBy({}));
}

TEST(ConjunctionTest, FalseIsFalse) {
  Conjunction f = Conjunction::False();
  EXPECT_TRUE(f.IsKnownFalse());
  EXPECT_FALSE(f.IsTriviallyTrue());
  EXPECT_EQ(f.ToString(), "false");
  EXPECT_FALSE(f.IsSatisfiedBy({}));
}

TEST(ConjunctionTest, AddDropsTriviallyTrue) {
  Conjunction c;
  c.Add(Constraint::Le(C(-1), C(0)));
  EXPECT_TRUE(c.IsTriviallyTrue());
  EXPECT_EQ(c.size(), 0u);
}

TEST(ConjunctionTest, AddCollapsesOnTriviallyFalse) {
  Conjunction c;
  c.Add(Constraint::Le(X(), C(1)));
  c.Add(Constraint::Le(C(1), C(0)));
  EXPECT_TRUE(c.IsKnownFalse());
  EXPECT_EQ(c.size(), 0u) << "collapse must clear members";
  // Further adds are ignored.
  c.Add(Constraint::Le(X(), C(9)));
  EXPECT_TRUE(c.IsKnownFalse());
}

TEST(ConjunctionTest, AddDeduplicatesCanonicalForms) {
  Conjunction c;
  c.Add(Constraint::Le(X() * Rational(2), C(6)));
  c.Add(Constraint::Le(X(), C(3)));  // same canonical constraint
  EXPECT_EQ(c.size(), 1u);
}

TEST(ConjunctionTest, SatisfactionRequiresAllMembers) {
  Conjunction c;
  c.Add(Constraint::Le(X(), C(5)));
  c.Add(Constraint::Ge(X(), C(2)));
  EXPECT_TRUE(c.IsSatisfiedBy({{"x", Rational(3)}}));
  EXPECT_TRUE(c.IsSatisfiedBy({{"x", Rational(2)}}));
  EXPECT_TRUE(c.IsSatisfiedBy({{"x", Rational(5)}}));
  EXPECT_FALSE(c.IsSatisfiedBy({{"x", Rational(6)}}));
  EXPECT_FALSE(c.IsSatisfiedBy({{"x", Rational(1)}}));
}

TEST(ConjunctionTest, AndMergesBoth) {
  Conjunction a;
  a.Add(Constraint::Le(X(), C(5)));
  Conjunction b;
  b.Add(Constraint::Le(Y(), C(2)));
  Conjunction both = Conjunction::And(a, b);
  EXPECT_EQ(both.size(), 2u);
  EXPECT_EQ(both.Variables(), (std::set<std::string>{"x", "y"}));
}

TEST(ConjunctionTest, AndWithFalseIsFalse) {
  Conjunction a;
  a.Add(Constraint::Le(X(), C(5)));
  EXPECT_TRUE(Conjunction::And(a, Conjunction::False()).IsKnownFalse());
  EXPECT_TRUE(Conjunction::And(Conjunction::False(), a).IsKnownFalse());
}

TEST(ConjunctionTest, SubstituteAllMembers) {
  Conjunction c;
  c.Add(Constraint::Le(X() + Y(), C(4)));
  c.Add(Constraint::Ge(Y(), C(1)));
  Conjunction sub = c.Substitute("y", X());
  // Becomes 2x <= 4 AND x >= 1.
  EXPECT_TRUE(sub.IsSatisfiedBy({{"x", Rational(2)}}));
  EXPECT_FALSE(sub.IsSatisfiedBy({{"x", Rational(3)}}));
  EXPECT_FALSE(sub.IsSatisfiedBy({{"x", Rational(0)}}));
  EXPECT_FALSE(sub.Mentions("y"));
}

TEST(ConjunctionTest, SubstituteCanCollapseToFalse) {
  Conjunction c;
  c.Add(Constraint::Lt(X(), Y()));
  Conjunction sub = c.Substitute("y", X());  // x < x
  EXPECT_TRUE(sub.IsKnownFalse());
}

TEST(ConjunctionTest, RenameVariable) {
  Conjunction c;
  c.Add(Constraint::Le(X(), C(5)));
  Conjunction renamed = c.RenameVariable("x", "t");
  EXPECT_TRUE(renamed.Mentions("t"));
  EXPECT_FALSE(renamed.Mentions("x"));
}

TEST(ConjunctionTest, ConstructorFromVector) {
  Conjunction c({Constraint::Le(X(), C(5)), Constraint::Ge(X(), C(2))});
  EXPECT_EQ(c.size(), 2u);
}

TEST(ConjunctionTest, ToStringJoinsWithAnd) {
  Conjunction c;
  c.Add(Constraint::Eq(X(), C(1)));
  c.Add(Constraint::Le(Y(), C(2)));
  EXPECT_EQ(c.ToString(), "x = 1 AND y <= 2");
}

TEST(ConjunctionTest, EqualityAndOrdering) {
  Conjunction a({Constraint::Le(X(), C(5))});
  Conjunction b({Constraint::Le(X() * Rational(3), C(15))});
  EXPECT_EQ(a, b) << "canonicalization makes syntactic equality semantic here";
  Conjunction c({Constraint::Le(X(), C(6))});
  EXPECT_NE(a, c);
  EXPECT_TRUE((a < c) != (c < a));
}

}  // namespace
}  // namespace ccdb
