#include "num/rational.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ccdb {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_TRUE(zero.IsInteger());
  EXPECT_EQ(zero.ToString(), "0");
}

TEST(RationalTest, NormalizesOnConstruction) {
  Rational half(2, 4);
  EXPECT_EQ(half.numerator(), BigInt(1));
  EXPECT_EQ(half.denominator(), BigInt(2));

  Rational negative(3, -6);
  EXPECT_EQ(negative.numerator(), BigInt(-1));
  EXPECT_EQ(negative.denominator(), BigInt(2));

  Rational zero(0, -7);
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.denominator(), BigInt(1));
}

TEST(RationalTest, ParsesIntegerFractionAndDecimal) {
  EXPECT_EQ(Rational::FromString("-3").value(), Rational(-3));
  EXPECT_EQ(Rational::FromString("3/4").value(), Rational(3, 4));
  EXPECT_EQ(Rational::FromString("-6/8").value(), Rational(-3, 4));
  EXPECT_EQ(Rational::FromString("2.5").value(), Rational(5, 2));
  EXPECT_EQ(Rational::FromString("-0.125").value(), Rational(-1, 8));
  EXPECT_EQ(Rational::FromString(".5").value(), Rational(1, 2));
  EXPECT_EQ(Rational::FromString("-.5").value(), Rational(-1, 2));
  EXPECT_EQ(Rational::FromString(" 7/2 ").value(), Rational(7, 2));
}

TEST(RationalTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Rational::FromString("").ok());
  EXPECT_FALSE(Rational::FromString("1/0").ok());
  EXPECT_FALSE(Rational::FromString("2.").ok());
  EXPECT_FALSE(Rational::FromString("a/b").ok());
  EXPECT_FALSE(Rational::FromString("1.2.3").ok());
  EXPECT_FALSE(Rational::FromString("1.-5").ok());
}

TEST(RationalTest, ToStringIntegerVsFraction) {
  EXPECT_EQ(Rational(4, 2).ToString(), "2");
  EXPECT_EQ(Rational(1, 3).ToString(), "1/3");
  EXPECT_EQ(Rational(-5, 10).ToString(), "-1/2");
}

TEST(RationalTest, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
  EXPECT_EQ(Rational(-7, 3).Abs(), Rational(7, 3));
}

TEST(RationalTest, InverseSwapsAndFixesSign) {
  EXPECT_EQ(Rational(2, 3).Inverse(), Rational(3, 2));
  EXPECT_EQ(Rational(-2, 3).Inverse(), Rational(-3, 2));
  EXPECT_EQ(Rational(-2, 3).Inverse().denominator(), BigInt(2));
}

TEST(RationalTest, ComparisonIsExact) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4).Compare(Rational(1, 2)), 0);
  // A comparison a double would get wrong: 1/3 vs 33333.../100000...
  Rational third(1, 3);
  Rational close(BigInt::FromString("3333333333333333").value(),
                 BigInt::FromString("10000000000000000").value());
  EXPECT_GT(third, close);
}

TEST(RationalTest, FieldAxiomsRandomized) {
  Rng rng(20030608);
  for (int iter = 0; iter < 500; ++iter) {
    Rational a(rng.UniformInt(-50, 50), rng.UniformInt(1, 20));
    Rational b(rng.UniformInt(-50, 50), rng.UniformInt(1, 20));
    Rational c(rng.UniformInt(-50, 50), rng.UniformInt(1, 20));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Rational(0));
    if (!b.IsZero()) EXPECT_EQ(a / b * b, a);
  }
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).Floor(), BigInt(3));
  EXPECT_EQ(Rational(7, 2).Ceil(), BigInt(4));
  EXPECT_EQ(Rational(-7, 2).Floor(), BigInt(-4));
  EXPECT_EQ(Rational(-7, 2).Ceil(), BigInt(-3));
  EXPECT_EQ(Rational(4).Floor(), BigInt(4));
  EXPECT_EQ(Rational(4).Ceil(), BigInt(4));
  EXPECT_EQ(Rational(0).Floor(), BigInt(0));
}

TEST(RationalTest, FloorCeilBracketRandomized) {
  Rng rng(5);
  for (int iter = 0; iter < 500; ++iter) {
    Rational v(rng.UniformInt(-10000, 10000), rng.UniformInt(1, 97));
    Rational floor{Rational(v.Floor())};
    Rational ceil{Rational(v.Ceil())};
    EXPECT_LE(floor, v);
    EXPECT_GE(ceil, v);
    EXPECT_LE(v - floor, Rational(1));
    EXPECT_LE(ceil - v, Rational(1));
  }
}

TEST(RationalTest, MinMax) {
  EXPECT_EQ(Rational::Min(Rational(1, 2), Rational(1, 3)), Rational(1, 3));
  EXPECT_EQ(Rational::Max(Rational(1, 2), Rational(1, 3)), Rational(1, 2));
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).ToDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-3, 4).ToDouble(), -0.75);
  EXPECT_NEAR(Rational(1, 3).ToDouble(), 0.333333333, 1e-9);
}

TEST(RationalTest, HashEqualValuesAgree) {
  EXPECT_EQ(Rational(2, 4).Hash(), Rational(1, 2).Hash());
}

}  // namespace
}  // namespace ccdb
