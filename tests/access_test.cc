#include "core/access.h"

#include <cstring>

#include <gtest/gtest.h>

#include "data/workload.h"
#include "util/random.h"

namespace ccdb::cqa {
namespace {

LinearExpr V(const std::string& n) { return LinearExpr::Variable(n); }

/// Canonical multiset signature of a relation for equality checks.
std::multiset<std::string> Signature(const Relation& rel) {
  std::multiset<std::string> out;
  for (const Tuple& t : rel.tuples()) out.insert(t.ToString());
  return out;
}

class AccessTest : public ::testing::Test {
 protected:
  PageManager disk_;
};

TEST_F(AccessTest, CreateValidatesAttributes) {
  BufferPool pool(&disk_, 0);
  Relation rel(Schema::Make({Schema::RelationalString("name")}).value());
  EXPECT_FALSE(StoredRelation::Create(&pool, rel, AccessIndexKind::kNone,
                                      "x", "y")
                   .ok());
}

TEST_F(AccessTest, AllAccessPathsAgreeOnConstraintData) {
  BufferPool pool(&disk_, 0);
  auto boxes = GenerateRectangles(400, 11);
  Relation rel = BoxesToConstraintRelation(boxes);
  Rect domain = Rect::Make2D(-100, 3300, -100, 3300);

  auto none = StoredRelation::Create(&pool, rel, AccessIndexKind::kNone,
                                     "x", "y", domain);
  auto joint = StoredRelation::Create(&pool, rel, AccessIndexKind::kJoint,
                                      "x", "y", domain);
  auto separate = StoredRelation::Create(
      &pool, rel, AccessIndexKind::kSeparate, "x", "y", domain);
  ASSERT_TRUE(none.ok() && joint.ok() && separate.ok());

  Rng rng(77);
  for (int q = 0; q < 25; ++q) {
    double lo_x = static_cast<double>(rng.UniformInt(0, 3000));
    double lo_y = static_cast<double>(rng.UniformInt(0, 3000));
    BoxQuery query = BoxQuery::Both(lo_x, lo_x + 80, lo_y, lo_y + 80);
    auto a = (*none)->BoxSelect(query);
    auto b = (*joint)->BoxSelect(query);
    auto c = (*separate)->BoxSelect(query);
    auto d = (*joint)->ScanSelect(query);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
    EXPECT_EQ(Signature(*a), Signature(*b));
    EXPECT_EQ(Signature(*a), Signature(*c));
    EXPECT_EQ(Signature(*a), Signature(*d));
  }
}

TEST_F(AccessTest, SingleAttributeQueries) {
  BufferPool pool(&disk_, 0);
  auto boxes = GenerateRectangles(300, 12);
  Relation rel = BoxesToConstraintRelation(boxes);
  Rect domain = Rect::Make2D(-100, 3300, -100, 3300);
  auto joint = StoredRelation::Create(&pool, rel, AccessIndexKind::kJoint,
                                      "x", "y", domain);
  auto separate = StoredRelation::Create(
      &pool, rel, AccessIndexKind::kSeparate, "x", "y", domain);
  ASSERT_TRUE(joint.ok() && separate.ok());
  Rng rng(13);
  for (int q = 0; q < 20; ++q) {
    double lo = static_cast<double>(rng.UniformInt(0, 3000));
    BoxQuery query = rng.UniformInt(0, 1) ? BoxQuery::XOnly(lo, lo + 60)
                                          : BoxQuery::YOnly(lo, lo + 60);
    auto a = (*joint)->BoxSelect(query);
    auto b = (*separate)->BoxSelect(query);
    auto c = (*joint)->ScanSelect(query);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_EQ(Signature(*a), Signature(*b));
    EXPECT_EQ(Signature(*a), Signature(*c));
  }
}

TEST_F(AccessTest, RelationalDataWithNullsUsesOutlierPath) {
  BufferPool pool(&disk_, 0);
  Schema schema = Schema::Make({Schema::RelationalRational("x"),
                                Schema::RelationalRational("y")})
                      .value();
  Relation rel(schema);
  Tuple a;
  a.SetValue("x", Value::Number(10));
  a.SetValue("y", Value::Number(10));
  Tuple with_null;  // y missing: excluded from the index
  with_null.SetValue("x", Value::Number(10));
  ASSERT_TRUE(rel.Insert(a).ok());
  ASSERT_TRUE(rel.Insert(with_null).ok());

  auto stored = StoredRelation::Create(&pool, rel, AccessIndexKind::kJoint,
                                       "x", "y",
                                       Rect::Make2D(0, 100, 0, 100));
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();
  // The null-y tuple is not in the index; it must reach results through
  // the outlier list, never silently dropped. An x-only query does not
  // mention y, so narrow semantics admit it: both tuples match.
  auto out = (*stored)->BoxSelect(BoxQuery::XOnly(5, 15));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  // A y-range predicate mentions y: the null-y tuple fails (narrow).
  auto out_y = (*stored)->BoxSelect(BoxQuery::YOnly(5, 15));
  ASSERT_TRUE(out_y.ok());
  EXPECT_EQ(out_y->size(), 1u);
}

TEST_F(AccessTest, MaterializeRoundTrips) {
  BufferPool pool(&disk_, 0);
  auto boxes = GenerateRectangles(50, 3);
  Relation rel = BoxesToConstraintRelation(boxes);
  auto stored = StoredRelation::Create(&pool, rel, AccessIndexKind::kNone);
  ASSERT_TRUE(stored.ok());
  auto back = (*stored)->Materialize();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(Signature(*back), Signature(rel));
}

TEST_F(AccessTest, MaterializeFailsOnCorruptRecordInsteadOfTruncating) {
  BufferPool pool(&disk_, 0);
  auto boxes = GenerateRectangles(20, 5);
  Relation rel = BoxesToConstraintRelation(boxes);
  auto stored = StoredRelation::Create(&pool, rel, AccessIndexKind::kNone);
  ASSERT_TRUE(stored.ok());
  // Scribble over the record payload of the heap's first page (page 0 of
  // this fresh disk) while leaving the page header and the slot directory
  // at the page tail intact: the scan still walks every slot, but the
  // record bytes no longer decode.
  Page page;
  ASSERT_TRUE(disk_.Read(0, &page).ok());
  std::memset(page.bytes() + 12, 0xFF, 16);
  ASSERT_TRUE(disk_.Write(0, page).ok());
  // A record that cannot be decoded must fail the materialization; an
  // earlier version silently skipped it and returned a truncated relation
  // as if it were the full answer.
  auto back = (*stored)->Materialize();
  EXPECT_FALSE(back.ok());
}

TEST_F(AccessTest, IndexedSelectTouchesFewerPagesThanScan) {
  BufferPool pool(&disk_, 0);
  auto boxes = GenerateRectangles(5000, 21);
  Relation rel = BoxesToConstraintRelation(boxes);
  Rect domain = Rect::Make2D(-100, 3300, -100, 3300);
  auto joint = StoredRelation::Create(&pool, rel, AccessIndexKind::kJoint,
                                      "x", "y", domain);
  ASSERT_TRUE(joint.ok());
  BoxQuery query = BoxQuery::Both(1000, 1080, 1000, 1080);

  disk_.ResetStats();
  ASSERT_TRUE((*joint)->BoxSelect(query).ok());
  uint64_t indexed_reads = disk_.stats().reads;

  disk_.ResetStats();
  ASSERT_TRUE((*joint)->ScanSelect(query).ok());
  uint64_t scan_reads = disk_.stats().reads;

  EXPECT_LT(indexed_reads, scan_reads / 5)
      << "indexed: " << indexed_reads << ", scan: " << scan_reads;
}

}  // namespace
}  // namespace ccdb::cqa
