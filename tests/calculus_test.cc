#include "core/calculus.h"

#include <gtest/gtest.h>

#include "lang/data_parser.h"
#include "lang/query.h"
#include "util/random.h"

namespace ccdb::cqc {
namespace {

LinearExpr V(const std::string& n) { return LinearExpr::Variable(n); }
LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

class CalculusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Status s = lang::LoadDatabaseFile(
        std::string(CCDB_DATA_DIR) + "/hurricane/hurricane.cdb", &db_);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  Database db_;
};

TEST_F(CalculusTest, PureAtomIsAnInfiniteRelation) {
  // The CDB framework's core move: `x + y <= 2` alone is a relation.
  auto rel = Evaluate(*Formula::Atom(Constraint::Le(V("x") + V("y"), C(2))),
                      db_);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->size(), 1u);
  EXPECT_TRUE(rel->ContainsPoint({{}, {{"x", Rational(1)}, {"y", Rational(1)}}}));
  EXPECT_FALSE(rel->ContainsPoint({{}, {{"x", Rational(2)}, {"y", Rational(1)}}}));
}

TEST_F(CalculusTest, RelationAtomBindsPositionally) {
  // Hurricane(when, ex, wy): attributes renamed to the formula's variables.
  auto rel = Evaluate(*Formula::Rel("Hurricane", {"when", "ex", "wy"}), db_);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_TRUE(rel->schema().Has("when"));
  EXPECT_TRUE(rel->schema().Has("ex"));
  EXPECT_EQ(rel->size(), 2u);
  EXPECT_TRUE(rel->ContainsPoint(
      {{}, {{"when", Rational(4)}, {"ex", Rational(1)},
            {"wy", Rational(3, 2)}}}));
}

TEST_F(CalculusTest, RelationAtomArityChecked) {
  EXPECT_FALSE(Evaluate(*Formula::Rel("Hurricane", {"t"}), db_).ok());
  EXPECT_FALSE(Evaluate(*Formula::Rel("NoSuch", {"a"}), db_).ok());
}

TEST_F(CalculusTest, RepeatedVariableMeansEquality) {
  // Hurricane(t, v, v): positions where the hurricane's x equals its y —
  // segment 2 is y = x for x in [2, 4].
  auto rel = Evaluate(*Formula::Rel("Hurricane", {"t", "v", "v"}), db_);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_TRUE(rel->ContainsPoint(
      {{}, {{"t", Rational(6)}, {"v", Rational(8, 3)}}}));
  EXPECT_FALSE(rel->ContainsPoint(
      {{}, {{"t", Rational(4)}, {"v", Rational(1)}}}))
      << "at t=4 the hurricane is at (1, 3/2): x != y";
}

TEST_F(CalculusTest, PaperQuery2AsCalculus) {
  // "all landIds the hurricane passed":
  //   { id | ∃t ∃x ∃y. Hurricane(t, x, y) AND Land(id, x, y) }
  FormulaPtr body = Formula::And(Formula::Rel("Hurricane", {"t", "x", "y"}),
                                 Formula::Rel("Land", {"id", "x", "y"}));
  FormulaPtr query = Formula::ExistsAll({"t", "x", "y"}, body);
  auto rel = Evaluate(*query, db_);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  std::set<std::string> ids;
  for (const Tuple& t : rel->tuples()) {
    ids.insert(t.GetValue("id").AsString());
  }
  EXPECT_EQ(ids, (std::set<std::string>{"A", "B", "C", "D"}));
}

TEST_F(CalculusTest, PaperQuery3AsCalculus) {
  // "names of those whose land was hit between t=4 and t=9":
  //   { n | ∃t ∃x ∃y ∃id. Owns(n, t, id) AND Land(id, x, y) AND
  //                        Hurricane(t, x, y) AND 4 <= t AND t <= 9 }
  FormulaPtr body = Formula::And(
      Formula::And(Formula::Rel("Landownership", {"n", "t", "id"}),
                   Formula::Rel("Land", {"id", "x", "y"})),
      Formula::And(
          Formula::Rel("Hurricane", {"t", "x", "y"}),
          Formula::And(Formula::Atom(Constraint::Ge(V("t"), C(4))),
                       Formula::Atom(Constraint::Le(V("t"), C(9))))));
  auto rel = Evaluate(*Formula::ExistsAll({"t", "x", "y", "id"}, body), db_);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  std::set<std::string> names;
  for (const Tuple& t : rel->tuples()) {
    names.insert(t.GetValue("n").AsString());
  }
  EXPECT_EQ(names,
            (std::set<std::string>{"Smith", "Jones", "Brown", "Davis"}));
}

TEST_F(CalculusTest, StringAtomsBindOrMaterialize) {
  // Bound: Owns(n, t, id) AND id = "A".
  FormulaPtr bound = Formula::And(
      Formula::Rel("Landownership", {"n", "t", "id"}),
      Formula::StrAtom(StringAtom::EqualsLiteral("id", "A")));
  auto rel = Evaluate(*Formula::ExistsAll({"t", "id"}, bound), db_);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->size(), 2u);  // Smith and Jones

  // Unbound positive literal materializes a singleton.
  auto singleton = Evaluate(
      *Formula::StrAtom(StringAtom::EqualsLiteral("who", "Ada")), db_);
  ASSERT_TRUE(singleton.ok());
  EXPECT_EQ(singleton->size(), 1u);
  EXPECT_EQ(singleton->tuples()[0].GetValue("who").AsString(), "Ada");

  // Unbound negated literal is unsafe.
  auto unsafe = Evaluate(
      *Formula::StrAtom(StringAtom::NotEqualsLiteral("who", "Ada")), db_);
  EXPECT_FALSE(unsafe.ok());
  EXPECT_EQ(unsafe.status().code(), StatusCode::kUnsupported);
}

TEST_F(CalculusTest, OrPadsMissingVariablesBroadly) {
  // x < 1 OR y < 1 over {x, y}: CDB broad semantics on the absent side.
  FormulaPtr f = Formula::Or(Formula::Atom(Constraint::Lt(V("x"), C(1))),
                             Formula::Atom(Constraint::Lt(V("y"), C(1))));
  auto rel = Evaluate(*f, db_);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_TRUE(rel->ContainsPoint({{}, {{"x", Rational(0)}, {"y", Rational(9)}}}));
  EXPECT_TRUE(rel->ContainsPoint({{}, {{"x", Rational(9)}, {"y", Rational(0)}}}));
  EXPECT_FALSE(rel->ContainsPoint({{}, {{"x", Rational(9)}, {"y", Rational(9)}}}));
}

TEST_F(CalculusTest, NegationClosedForConstraintVariables) {
  // NOT (0 <= x AND x <= 1): the complement of an interval.
  FormulaPtr inner = Formula::And(Formula::Atom(Constraint::Ge(V("x"), C(0))),
                                  Formula::Atom(Constraint::Le(V("x"), C(1))));
  auto rel = Evaluate(*Formula::Not(inner), db_);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_TRUE(rel->ContainsPoint({{}, {{"x", Rational(-1)}}}));
  EXPECT_TRUE(rel->ContainsPoint({{}, {{"x", Rational(2)}}}));
  EXPECT_FALSE(rel->ContainsPoint({{}, {{"x", Rational(1, 2)}}}));
  EXPECT_FALSE(rel->ContainsPoint({{}, {{"x", Rational(0)}}}));
  EXPECT_FALSE(rel->ContainsPoint({{}, {{"x", Rational(1)}}}));
}

TEST_F(CalculusTest, NegationOverRelationalVariablesRejected) {
  auto rel = Evaluate(*Formula::Not(Formula::Rel("Land", {"id", "x", "y"})),
                      db_);
  EXPECT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kUnsupported);
}

TEST_F(CalculusTest, DoubleNegationRoundTrips) {
  FormulaPtr interval =
      Formula::And(Formula::Atom(Constraint::Ge(V("x"), C(0))),
                   Formula::Atom(Constraint::Le(V("x"), C(1))));
  auto twice = Evaluate(*Formula::Not(Formula::Not(interval)), db_);
  ASSERT_TRUE(twice.ok()) << twice.status().ToString();
  auto once = Evaluate(*interval, db_);
  ASSERT_TRUE(once.ok());
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    Rational x(rng.UniformInt(-20, 20), rng.UniformInt(1, 4));
    PointRow p{{}, {{"x", x}}};
    EXPECT_EQ(once->ContainsPoint(p), twice->ContainsPoint(p))
        << x.ToString();
  }
}

TEST_F(CalculusTest, ExistsOverOnlyVariableYieldsBoolean) {
  // ∃x. (x >= 0 AND x <= 1) — the zero-ary TRUE relation.
  FormulaPtr sat = Formula::Exists(
      "x", Formula::And(Formula::Atom(Constraint::Ge(V("x"), C(0))),
                        Formula::Atom(Constraint::Le(V("x"), C(1)))));
  auto truth = Evaluate(*sat, db_);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(truth->schema().arity(), 0u);
  EXPECT_EQ(truth->size(), 1u) << "TRUE = one empty tuple";

  // ∃x. (x >= 1 AND x <= 0) — FALSE: empty zero-ary relation.
  FormulaPtr unsat = Formula::Exists(
      "x", Formula::And(Formula::Atom(Constraint::Ge(V("x"), C(1))),
                        Formula::Atom(Constraint::Le(V("x"), C(0)))));
  auto falsity = Evaluate(*unsat, db_);
  ASSERT_TRUE(falsity.ok());
  EXPECT_EQ(falsity->size(), 0u);
}

TEST_F(CalculusTest, ToStringRendersFormula) {
  FormulaPtr f = Formula::Exists(
      "t", Formula::And(Formula::Rel("Hurricane", {"t", "x", "y"}),
                        Formula::Atom(Constraint::Ge(V("t"), C(4)))));
  std::string text = f->ToString();
  EXPECT_NE(text.find("EXISTS t."), std::string::npos);
  EXPECT_NE(text.find("Hurricane(t, x, y)"), std::string::npos);
  EXPECT_NE(text.find("AND"), std::string::npos);
  EXPECT_EQ(f->FreeVariables(), (std::set<std::string>{"x", "y"}));
}

// The paper's equivalence claim, sampled: a calculus query and its
// hand-translated algebra query produce the same point sets.
TEST_F(CalculusTest, CalculusMatchesAlgebraOnHurricaneQueries) {
  // Calculus: ∃x ∃y. Hurricane(t, x, y) AND Land(id, x, y) — keep (t, id).
  FormulaPtr calculus = Formula::ExistsAll(
      {"x", "y"},
      Formula::And(Formula::Rel("Hurricane", {"t", "x", "y"}),
                   Formula::Rel("Land", {"id", "x", "y"})));
  auto via_cqc = Evaluate(*calculus, db_);
  ASSERT_TRUE(via_cqc.ok()) << via_cqc.status().ToString();

  // Algebra, via the step language (same variable names by renaming).
  auto via_cqa = lang::RunQuery(
      "R0 = join Hurricane and Land\n"
      "R1 = project R0 on t, landId\n"
      "R2 = rename landId to id in R1\n",
      &db_);
  ASSERT_TRUE(via_cqa.ok()) << via_cqa.status().ToString();

  const char* ids[] = {"A", "B", "C", "D"};
  for (const char* id : ids) {
    for (int numerator = 0; numerator <= 20; ++numerator) {
      Rational t(numerator, 2);
      PointRow p{{{"id", Value::String(id)}}, {{"t", t}}};
      EXPECT_EQ(via_cqc->ContainsPoint(p), via_cqa->ContainsPoint(p))
          << id << " at t=" << t.ToString();
    }
  }
}

}  // namespace
}  // namespace ccdb::cqc
