#include "geom/minkowski.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace ccdb::geom {
namespace {

Rational SquaredNorm(const Point& p) { return p.x * p.x + p.y * p.y; }

// --- Circle approximation ---------------------------------------------------------

class CirclePolygonProperty : public ::testing::TestWithParam<int> {};

TEST_P(CirclePolygonProperty, InscribedVerticesLieExactlyOnCircle) {
  const int k = GetParam();
  Rational r(7);
  auto ring = ApproximateCirclePolygon(r, k, /*circumscribed=*/false);
  ASSERT_GE(ring.size(), 3u);
  for (const Point& p : ring) {
    EXPECT_EQ(SquaredNorm(p), r * r)
        << "tangent-half-angle points must be EXACTLY on the circle: "
        << p.ToString();
  }
  // CCW convex.
  auto polygon = Polygon::Make(ring);
  ASSERT_TRUE(polygon.ok());
  EXPECT_TRUE(polygon->IsConvex());
}

TEST_P(CirclePolygonProperty, CircumscribedContainsTheDisk) {
  const int k = GetParam();
  Rational r(5);
  auto outer = ApproximateCirclePolygon(r, k, /*circumscribed=*/true);
  auto poly = Polygon::Make(outer);
  ASSERT_TRUE(poly.ok());
  // Sample points on (and just inside) the circle via the same exact
  // parametrization; all must be inside the circumscribed polygon.
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    Rational t(rng.UniformInt(-10000, 10000), 1 + rng.UniformInt(0, 9999));
    Rational t2 = t * t;
    Rational denom = t2 + Rational(1);
    Point on_circle(r * (Rational(1) - t2) / denom, r * (t + t) / denom);
    EXPECT_TRUE(poly->Contains(on_circle))
        << "k=" << k << " point " << on_circle.ToString();
  }
}

TEST_P(CirclePolygonProperty, InscribedAreaApproachesDiskArea) {
  const int k = GetParam();
  Rational r(10);
  auto ring = ApproximateCirclePolygon(r, k, false);
  auto poly = Polygon::Make(ring);
  ASSERT_TRUE(poly.ok());
  double area = poly->Area().ToDouble();
  double disk = 3.14159265358979 * 100.0;
  EXPECT_LT(area, disk) << "inscribed is a subset";
  // Known bound: inscribed regular k-gon area = (k/2) r^2 sin(2π/k).
  double lower = 0.5 * k * 100.0 * std::sin(2.0 * M_PI / k) * 0.98;
  EXPECT_GT(area, lower) << "should be near the regular k-gon area";
}

INSTANTIATE_TEST_SUITE_P(SegmentCounts, CirclePolygonProperty,
                         ::testing::Values(4, 8, 16, 32, 64),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

// --- Minkowski sum ----------------------------------------------------------------

TEST(MinkowskiTest, SquarePlusSquare) {
  auto a = Polygon::Rectangle(Box::FromCorners(Point(0, 0), Point(2, 2)));
  auto b = Polygon::Rectangle(Box::FromCorners(Point(-1, -1), Point(1, 1)));
  auto sum = MinkowskiSum(a.vertices(), b.vertices());
  auto poly = Polygon::Make(sum);
  ASSERT_TRUE(poly.ok());
  EXPECT_EQ(poly->BoundingBox(),
            Box::FromCorners(Point(-1, -1), Point(3, 3)));
  EXPECT_EQ(poly->Area(), Rational(16));  // (2+2)^2
  EXPECT_EQ(poly->size(), 4u);
}

TEST(MinkowskiTest, SquarePlusTriangle) {
  auto square = Polygon::Rectangle(Box::FromCorners(Point(0, 0), Point(2, 2)));
  auto tri = Polygon::Make({Point(0, 0), Point(1, 0), Point(0, 1)}).value();
  auto sum = MinkowskiSum(square.vertices(), tri.vertices());
  auto poly = Polygon::Make(sum);
  ASSERT_TRUE(poly.ok());
  EXPECT_TRUE(poly->IsConvex());
  // Area of A⊕B for convex A,B: |A| + |B| + mixed area; here 4 + 1/2 +
  // perimeter-interaction = 4 + 0.5 + (2+2)*1/2*... verify by sampling
  // instead: every a+b with a in A, b in B is inside.
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Point a(Rational(rng.UniformInt(0, 8), 4), Rational(rng.UniformInt(0, 8), 4));
    if (!square.Contains(a)) continue;
    Point b(Rational(rng.UniformInt(0, 4), 4), Rational(rng.UniformInt(0, 4), 4));
    if (!tri.Contains(b)) continue;
    EXPECT_TRUE(poly->Contains(a + b))
        << a.ToString() << " + " << b.ToString();
  }
}

TEST(MinkowskiTest, SumCommutes) {
  auto a = Polygon::Make({Point(0, 0), Point(3, 1), Point(1, 3)}).value();
  auto b = Polygon::Make({Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)})
               .value();
  auto ab = MinkowskiSum(a.vertices(), b.vertices());
  auto ba = MinkowskiSum(b.vertices(), a.vertices());
  EXPECT_EQ(ConvexHull(ab), ConvexHull(ba));
}

// --- Buffer approximation (the paper's arbitrary-accuracy claim) -------------------

TEST(BufferTest, SandwichContainment) {
  auto base = Polygon::Rectangle(Box::FromCorners(Point(0, 0), Point(10, 6)));
  Rational d(2);
  auto inner = ApproximateBuffer(base.vertices(), d, 16, /*outer=*/false);
  auto outer = ApproximateBuffer(base.vertices(), d, 16, /*outer=*/true);
  auto inner_poly = Polygon::Make(inner);
  auto outer_poly = Polygon::Make(outer);
  ASSERT_TRUE(inner_poly.ok() && outer_poly.ok());

  // Points at exact distance <= d from the rectangle must lie inside the
  // OUTER approximation; points of the INNER approximation must be within
  // distance d (closure) of the rectangle.
  Rng rng(3);
  int checked_outer = 0;
  for (int i = 0; i < 500 && checked_outer < 120; ++i) {
    Point p(Rational(rng.UniformInt(-3, 13)), Rational(rng.UniformInt(-3, 9)));
    Rational dist2 = SquaredDistance(p, base);
    if (dist2 <= d * d) {
      EXPECT_TRUE(outer_poly->Contains(p)) << p.ToString();
      ++checked_outer;
    }
  }
  for (const Point& v : inner) {
    EXPECT_LE(SquaredDistance(v, base), d * d)
        << "inner approximation vertex beyond the true buffer: "
        << v.ToString();
  }
  // Inner ⊆ outer.
  for (const Point& v : inner) {
    EXPECT_TRUE(outer_poly->Contains(v));
  }
}

TEST(BufferTest, AccuracyImprovesWithSegments) {
  // §1.1: "approximate any spatial extent to an arbitrary accuracy (by
  // making line segments shorter)". The inner/outer area gap must shrink
  // as the circle approximation refines.
  auto base = Polygon::Rectangle(Box::FromCorners(Point(0, 0), Point(8, 8)));
  Rational d(3);
  double previous_gap = 1e18;
  for (int k : {4, 8, 16, 32}) {
    auto inner = Polygon::Make(ApproximateBuffer(base.vertices(), d, k, false));
    auto outer = Polygon::Make(ApproximateBuffer(base.vertices(), d, k, true));
    ASSERT_TRUE(inner.ok() && outer.ok());
    double gap = outer->Area().ToDouble() - inner->Area().ToDouble();
    EXPECT_GT(gap, 0.0);
    EXPECT_LT(gap, previous_gap) << "k=" << k;
    previous_gap = gap;
  }
  EXPECT_LT(previous_gap, 1.0) << "k=32 gap should be under one unit^2";
}

TEST(BufferTest, ZeroDistanceIsIdentity) {
  auto base = Polygon::Rectangle(Box::FromCorners(Point(0, 0), Point(4, 4)));
  auto same = ApproximateBuffer(base.vertices(), Rational(0), 8, true);
  EXPECT_EQ(same, base.vertices());
}

}  // namespace
}  // namespace ccdb::geom
