#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/pager.h"
#include "storage/serde.h"
#include "util/random.h"

namespace ccdb {
namespace {

// --- PageManager ----------------------------------------------------------------

TEST(PageManagerTest, AllocateReadWrite) {
  PageManager pm;
  PageId a = pm.Allocate();
  PageId b = pm.Allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(pm.num_pages(), 2u);

  Page page;
  page.bytes()[0] = 0xAB;
  ASSERT_TRUE(pm.Write(a, page).ok());
  Page read;
  ASSERT_TRUE(pm.Read(a, &read).ok());
  EXPECT_EQ(read.bytes()[0], 0xAB);
  Page fresh;
  ASSERT_TRUE(pm.Read(b, &fresh).ok());
  EXPECT_EQ(fresh.bytes()[0], 0) << "new pages are zeroed";
}

TEST(PageManagerTest, CountsAccesses) {
  PageManager pm;
  PageId a = pm.Allocate();
  Page page;
  ASSERT_TRUE(pm.Read(a, &page).ok());
  ASSERT_TRUE(pm.Read(a, &page).ok());
  ASSERT_TRUE(pm.Write(a, page).ok());
  EXPECT_EQ(pm.stats().reads, 2u);
  EXPECT_EQ(pm.stats().writes, 1u);
  EXPECT_EQ(pm.stats().allocations, 1u);
  pm.ResetStats();
  EXPECT_EQ(pm.stats().total_accesses(), 0u);
}

TEST(PageManagerTest, RejectsUnallocatedAccess) {
  PageManager pm;
  Page page;
  EXPECT_FALSE(pm.Read(0, &page).ok());
  EXPECT_FALSE(pm.Write(5, page).ok());
}

// --- BufferPool -----------------------------------------------------------------

TEST(BufferPoolTest, PassThroughWhenCapacityZero) {
  PageManager pm;
  BufferPool pool(&pm, 0);
  PageId a = pm.Allocate();
  Page page;
  ASSERT_TRUE(pool.Get(a, &page).ok());
  ASSERT_TRUE(pool.Get(a, &page).ok());
  EXPECT_EQ(pm.stats().reads, 2u) << "no caching at capacity 0";
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pool.stats().hits, 0u);
}

TEST(BufferPoolTest, CachesAndEvictsLru) {
  PageManager pm;
  BufferPool pool(&pm, 2);
  PageId a = pm.Allocate(), b = pm.Allocate(), c = pm.Allocate();
  Page page;
  ASSERT_TRUE(pool.Get(a, &page).ok());  // miss
  ASSERT_TRUE(pool.Get(a, &page).ok());  // hit
  ASSERT_TRUE(pool.Get(b, &page).ok());  // miss
  ASSERT_TRUE(pool.Get(c, &page).ok());  // miss, evicts a (LRU)
  ASSERT_TRUE(pool.Get(b, &page).ok());  // hit
  ASSERT_TRUE(pool.Get(a, &page).ok());  // miss again
  EXPECT_EQ(pool.stats().hits, 2u);
  EXPECT_EQ(pool.stats().misses, 4u);
  EXPECT_EQ(pm.stats().reads, 4u);
}

TEST(BufferPoolTest, WriteThroughKeepsCacheCoherent) {
  PageManager pm;
  BufferPool pool(&pm, 4);
  PageId a = pm.Allocate();
  Page page;
  ASSERT_TRUE(pool.Get(a, &page).ok());
  page.bytes()[7] = 42;
  ASSERT_TRUE(pool.Put(a, page).ok());
  EXPECT_EQ(pm.stats().writes, 1u) << "write-through hits the disk";
  Page reread;
  ASSERT_TRUE(pool.Get(a, &reread).ok());
  EXPECT_EQ(reread.bytes()[7], 42);
  EXPECT_EQ(pm.stats().reads, 1u) << "second read served from cache";
}

// --- Serde ----------------------------------------------------------------------

TEST(SerdeTest, PrimitivesRoundTrip) {
  Writer w;
  w.PutU8(7);
  w.PutU16(65535);
  w.PutU32(123456789);
  w.PutU64(0xDEADBEEFCAFEBABEULL);
  w.PutString("hello");
  w.PutRational(Rational(-22, 7));

  Reader r(w.buffer());
  EXPECT_EQ(r.GetU8().value(), 7);
  EXPECT_EQ(r.GetU16().value(), 65535);
  EXPECT_EQ(r.GetU32().value(), 123456789u);
  EXPECT_EQ(r.GetU64().value(), 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(r.GetString().value(), "hello");
  EXPECT_EQ(r.GetRational().value(), Rational(-22, 7));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, ReaderRejectsTruncation) {
  Writer w;
  w.PutU32(100);  // claims a 100-byte string follows
  Reader r(w.buffer());
  EXPECT_FALSE(r.GetString().ok());
  Reader r2(w.buffer().data(), 2);
  EXPECT_FALSE(r2.GetU32().ok());
}

TEST(SerdeTest, TupleRoundTripsExactly) {
  Tuple t;
  t.SetValue("name", Value::String("Khalid"));
  t.SetValue("score", Value::Number(Rational(-7, 3)));
  t.AddConstraint(Constraint::Le(
      LinearExpr::Term("x", Rational(2)) + LinearExpr::Variable("y"),
      LinearExpr::Constant(Rational(5, 2))));
  t.AddConstraint(Constraint::Eq(LinearExpr::Variable("t"),
                                 LinearExpr::Constant(Rational(4))));

  auto bytes = SerializeTuple(t);
  auto back = DeserializeTuple(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, t);
}

TEST(SerdeTest, TupleWithHugeCoefficientsRoundTrips) {
  // BigInt coefficients beyond 64 bits must survive storage exactly.
  Rational huge(BigInt::FromString("123456789012345678901234567890").value(),
                BigInt::FromString("98765432109876543210987").value());
  Tuple t;
  t.AddConstraint(Constraint::Le(LinearExpr::Term("x", huge),
                                 LinearExpr::Constant(Rational(1))));
  auto back = DeserializeTuple(SerializeTuple(t));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(SerdeTest, KnownFalseTupleRoundTrips) {
  Tuple t;
  t.SetConstraints(Conjunction::False());
  auto back = DeserializeTuple(SerializeTuple(t));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->constraints().IsKnownFalse());
}

TEST(SerdeTest, SchemaRoundTrips) {
  Schema s = Schema::Make({Schema::RelationalString("landId"),
                           Schema::ConstraintRational("x"),
                           Schema::RelationalRational("pop")})
                 .value();
  auto back = DeserializeSchema(SerializeSchema(s));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, s);
}

TEST(SerdeTest, RejectsCorruptTags) {
  Writer w;
  w.PutU32(1);
  w.PutString("a");
  w.PutU8(99);  // invalid value tag
  EXPECT_FALSE(DeserializeTuple(w.buffer()).ok());
}

// --- HeapFile -------------------------------------------------------------------

TEST(HeapFileTest, AppendReadRoundTrip) {
  PageManager pm;
  BufferPool pool(&pm, 8);
  HeapFile heap(&pool);
  std::vector<uint8_t> rec1{1, 2, 3};
  std::vector<uint8_t> rec2{9, 8, 7, 6};
  auto id1 = heap.Append(rec1);
  auto id2 = heap.Append(rec2);
  ASSERT_TRUE(id1.ok() && id2.ok());
  EXPECT_NE(*id1, *id2);
  EXPECT_EQ(heap.Read(*id1).value(), rec1);
  EXPECT_EQ(heap.Read(*id2).value(), rec2);
  EXPECT_EQ(heap.num_records(), 2u);
}

TEST(HeapFileTest, SpillsToNewPages) {
  PageManager pm;
  BufferPool pool(&pm, 8);
  HeapFile heap(&pool);
  std::vector<uint8_t> big(1000, 0xCD);
  std::vector<RecordId> ids;
  for (int i = 0; i < 20; ++i) {
    big[0] = static_cast<uint8_t>(i);
    auto id = heap.Append(big);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  EXPECT_GT(heap.num_pages(), 1u);
  for (int i = 0; i < 20; ++i) {
    auto rec = heap.Read(ids[static_cast<size_t>(i)]);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ((*rec)[0], static_cast<uint8_t>(i));
    EXPECT_EQ(rec->size(), 1000u);
  }
}

TEST(HeapFileTest, RejectsOversizedRecord) {
  PageManager pm;
  BufferPool pool(&pm, 8);
  HeapFile heap(&pool);
  std::vector<uint8_t> huge(HeapFile::MaxRecordSize() + 1);
  EXPECT_FALSE(heap.Append(huge).ok());
  std::vector<uint8_t> max(HeapFile::MaxRecordSize());
  EXPECT_TRUE(heap.Append(max).ok());
}

TEST(HeapFileTest, ScanVisitsAllInOrder) {
  PageManager pm;
  BufferPool pool(&pm, 8);
  HeapFile heap(&pool);
  for (uint8_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(heap.Append(std::vector<uint8_t>{i}).ok());
  }
  std::vector<uint8_t> seen;
  ASSERT_TRUE(heap.Scan([&](RecordId, const std::vector<uint8_t>& rec) {
                    seen.push_back(rec[0]);
                    return true;
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 50u);
  for (uint8_t i = 0; i < 50; ++i) EXPECT_EQ(seen[i], i);
}

TEST(HeapFileTest, ScanEarlyStop) {
  PageManager pm;
  BufferPool pool(&pm, 8);
  HeapFile heap(&pool);
  for (uint8_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(heap.Append(std::vector<uint8_t>{i}).ok());
  }
  int visits = 0;
  ASSERT_TRUE(heap.Scan([&](RecordId, const std::vector<uint8_t>&) {
                    return ++visits < 3;
                  })
                  .ok());
  EXPECT_EQ(visits, 3);
}

TEST(RecordIdTest, PackUnpackRoundTrip) {
  RecordId id{123456, 789};
  EXPECT_EQ(RecordId::Unpack(id.Pack()), id);
}

// --- Concurrency ----------------------------------------------------------------

TEST(BufferPoolTest, ShardsLargePoolsKeepsSmallOnesExact) {
  PageManager pm;
  EXPECT_EQ(BufferPool(&pm, 2).shard_count(), 1u)
      << "small pools keep exact global LRU order";
  EXPECT_EQ(BufferPool(&pm, 256).shard_count(), BufferPool::kMaxShards);
}

TEST(BufferPoolTest, ConcurrentReadersSeeConsistentPages) {
  PageManager pm;
  const size_t kPages = 64;
  for (size_t i = 0; i < kPages; ++i) {
    PageId id = pm.Allocate();
    Page page;
    page.bytes()[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(pm.Write(id, page).ok());
  }
  BufferPool pool(&pm, 128);

  const size_t kThreads = 8;
  const size_t kReadsPerThread = 400;
  std::vector<std::thread> threads;
  std::atomic<int> corrupt{0};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kReadsPerThread; ++i) {
        PageId id = (t * 13 + i * 7) % kPages;
        Page page;
        if (!pool.Get(id, &page).ok() ||
            page.bytes()[0] != static_cast<uint8_t>(id)) {
          corrupt.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(corrupt.load(), 0);
  CacheStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kReadsPerThread);
  EXPECT_GT(stats.hits, 0u);
}

}  // namespace
}  // namespace ccdb
