#include "core/plan.h"

#include <gtest/gtest.h>

#include "lang/data_parser.h"
#include "util/random.h"

namespace ccdb::cqa {
namespace {

LinearExpr V(const std::string& n) { return LinearExpr::Variable(n); }
LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

Predicate LinearPred(std::vector<Constraint> cs) {
  Predicate p;
  p.linear = std::move(cs);
  return p;
}

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Status s = lang::LoadDatabaseFile(
        std::string(CCDB_DATA_DIR) + "/hurricane/hurricane.cdb", &db_);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  Database db_;
};

TEST_F(PlanTest, InferSchemaMatchesExecution) {
  auto plan = PlanNode::Project(
      PlanNode::Select(
          PlanNode::Join(PlanNode::Scan("Landownership"),
                         PlanNode::Scan("Land")),
          LinearPred({Constraint::Ge(V("t"), C(4))})),
      {"name", "landId"});
  auto schema = InferSchema(*plan, db_);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  auto result = Execute(*plan, db_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->schema(), *schema);
}

TEST_F(PlanTest, InferSchemaReportsErrors) {
  EXPECT_FALSE(InferSchema(*PlanNode::Scan("NoSuch"), db_).ok());
  auto bad_union = PlanNode::UnionOf(PlanNode::Scan("Land"),
                                     PlanNode::Scan("Hurricane"));
  EXPECT_FALSE(InferSchema(*bad_union, db_).ok());
}

TEST_F(PlanTest, EmptySelectIsRemoved) {
  auto plan = PlanNode::Select(PlanNode::Scan("Land"), Predicate{});
  auto optimized = Optimize(plan->Clone(), db_);
  EXPECT_EQ(optimized->op, PlanNode::Op::kScan);
}

TEST_F(PlanTest, AdjacentSelectsMerge) {
  auto plan = PlanNode::Select(
      PlanNode::Select(PlanNode::Scan("Hurricane"),
                       LinearPred({Constraint::Ge(V("t"), C(4))})),
      LinearPred({Constraint::Le(V("t"), C(9))}));
  auto optimized = Optimize(plan->Clone(), db_);
  ASSERT_EQ(optimized->op, PlanNode::Op::kSelect);
  EXPECT_EQ(optimized->children[0]->op, PlanNode::Op::kScan);
  EXPECT_EQ(optimized->predicate.linear.size(), 2u);
}

TEST_F(PlanTest, SelectPushesBelowUnion) {
  auto plan = PlanNode::Select(
      PlanNode::UnionOf(PlanNode::Scan("Land"), PlanNode::Scan("Land")),
      LinearPred({Constraint::Le(V("x"), C(2))}));
  auto optimized = Optimize(plan->Clone(), db_);
  ASSERT_EQ(optimized->op, PlanNode::Op::kUnion);
  EXPECT_EQ(optimized->children[0]->op, PlanNode::Op::kSelect);
  EXPECT_EQ(optimized->children[1]->op, PlanNode::Op::kSelect);
}

TEST_F(PlanTest, SelectPushesThroughRename) {
  auto plan = PlanNode::Select(
      PlanNode::RenameAttr(PlanNode::Scan("Hurricane"), "t", "when"),
      LinearPred({Constraint::Ge(V("when"), C(4))}));
  auto optimized = Optimize(plan->Clone(), db_);
  ASSERT_EQ(optimized->op, PlanNode::Op::kRename);
  ASSERT_EQ(optimized->children[0]->op, PlanNode::Op::kSelect);
  EXPECT_TRUE(optimized->children[0]->predicate.linear[0].Mentions("t"))
      << "predicate rewritten to the pre-rename attribute";
  // Semantics preserved.
  auto before = Execute(*plan, db_);
  auto after = Execute(*optimized, db_);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(before->size(), after->size());
}

TEST_F(PlanTest, SelectSplitsAcrossJoin) {
  // t only touches Landownership+Hurricane side; landId atom touches both
  // scans of the join (it is in both schemas)... use x for the Land side.
  auto plan = PlanNode::Select(
      PlanNode::Join(PlanNode::Scan("Landownership"),
                     PlanNode::Scan("Land")),
      LinearPred({Constraint::Ge(V("t"), C(4)),
                  Constraint::Le(V("x"), C(2))}));
  auto optimized = Optimize(plan->Clone(), db_);
  // Both atoms are single-side: the top select disappears entirely.
  ASSERT_EQ(optimized->op, PlanNode::Op::kJoin);
  EXPECT_EQ(optimized->children[0]->op, PlanNode::Op::kSelect);
  EXPECT_EQ(optimized->children[1]->op, PlanNode::Op::kSelect);
}

TEST_F(PlanTest, CrossSideAtomStaysAbove) {
  // Rename Land's x to position so the predicate ties both sides:
  // t <= position mentions t (left) and position (right).
  auto plan = PlanNode::Select(
      PlanNode::Join(PlanNode::Scan("Landownership"),
                     PlanNode::RenameAttr(PlanNode::Scan("Land"), "x",
                                          "position")),
      LinearPred({Constraint::Le(V("t"), V("position"))}));
  auto optimized = Optimize(plan->Clone(), db_);
  ASSERT_EQ(optimized->op, PlanNode::Op::kSelect);
  EXPECT_EQ(optimized->children[0]->op, PlanNode::Op::kJoin);
}

TEST_F(PlanTest, OptimizationPreservesSemanticsRandomized) {
  Rng rng(5150);
  for (int iter = 0; iter < 30; ++iter) {
    // Random select-over-join/union shapes with random interval predicates.
    auto base = rng.UniformInt(0, 1)
                    ? PlanNode::Join(PlanNode::Scan("Landownership"),
                                     PlanNode::Scan("Land"))
                    : PlanNode::UnionOf(PlanNode::Scan("Hurricane"),
                                        PlanNode::Scan("Hurricane"));
    bool joined = base->op == PlanNode::Op::kJoin;
    std::vector<Constraint> atoms;
    int n = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < n; ++i) {
      std::string attr = joined ? (rng.UniformInt(0, 1) ? "t" : "x")
                                : (rng.UniformInt(0, 1) ? "t" : "y");
      int64_t bound = rng.UniformInt(-2, 10);
      atoms.push_back(rng.UniformInt(0, 1)
                          ? Constraint::Ge(V(attr), C(bound))
                          : Constraint::Le(V(attr), C(bound)));
    }
    auto plan = PlanNode::Select(std::move(base), LinearPred(atoms));
    auto optimized = Optimize(plan->Clone(), db_);

    ExecStats naive_stats, opt_stats;
    auto naive = Execute(*plan, db_, &naive_stats);
    auto optimal = Execute(*optimized, db_, &opt_stats);
    ASSERT_TRUE(naive.ok() && optimal.ok());
    ASSERT_EQ(naive->schema(), optimal->schema());
    // Compare semantics at sample points.
    for (int s = 0; s < 30; ++s) {
      PointRow p;
      for (const Attribute& attr : naive->schema().attributes()) {
        if (attr.kind == AttributeKind::kRelational) {
          p.relational[attr.name] =
              Value::String(std::string(1, static_cast<char>(
                                               'A' + rng.UniformInt(0, 4))));
        } else {
          p.constraint[attr.name] =
              Rational(rng.UniformInt(-2, 12), rng.UniformInt(1, 2));
        }
      }
      // Names in Landownership are multi-letter; also sample those.
      if (p.relational.count("name")) {
        const char* names[] = {"Smith", "Jones", "Brown", "Davis"};
        p.relational["name"] =
            Value::String(names[rng.UniformInt(0, 3)]);
      }
      EXPECT_EQ(naive->ContainsPoint(p), optimal->ContainsPoint(p));
    }
  }
}

TEST_F(PlanTest, PushdownReducesIntermediateWork) {
  // A synthetic pair of relations whose cross-style join is large: 30
  // intervals on `a` times 30 intervals on `b`. Pushing the selective
  // predicates below the join shrinks the join input from 30x30 to 2x2.
  auto make = [](const std::string& attr) {
    Relation rel(Schema::Make({Schema::ConstraintRational(attr)}).value());
    for (int64_t i = 0; i < 30; ++i) {
      Tuple t;
      t.AddConstraint(Constraint::Ge(V(attr), C(i)));
      t.AddConstraint(Constraint::Le(V(attr), C(i + 1)));
      EXPECT_TRUE(rel.Insert(std::move(t)).ok());
    }
    return rel;
  };
  Database db;
  ASSERT_TRUE(db.Create("R", make("a")).ok());
  ASSERT_TRUE(db.Create("S", make("b")).ok());

  auto plan = PlanNode::Select(
      PlanNode::Join(PlanNode::Scan("R"), PlanNode::Scan("S")),
      LinearPred({Constraint::Ge(V("a"), C(28)),
                  Constraint::Le(V("b"), C(2))}));
  auto optimized = Optimize(plan->Clone(), db);
  ExecStats naive_stats, opt_stats;
  auto naive = Execute(*plan, db, &naive_stats);
  auto optimal = Execute(*optimized, db, &opt_stats);
  ASSERT_TRUE(naive.ok() && optimal.ok());
  EXPECT_EQ(naive->size(), optimal->size());
  EXPECT_LT(opt_stats.intermediate_tuples,
            naive_stats.intermediate_tuples / 5)
      << "optimized " << opt_stats.intermediate_tuples << " vs naive "
      << naive_stats.intermediate_tuples;
}

TEST_F(PlanTest, ToStringRendersTree) {
  auto plan = PlanNode::Project(
      PlanNode::Select(PlanNode::Scan("Hurricane"),
                       LinearPred({Constraint::Ge(V("t"), C(4))})),
      {"x", "y"});
  std::string text = plan->ToString();
  EXPECT_NE(text.find("Project [x, y]"), std::string::npos);
  EXPECT_NE(text.find("Select ["), std::string::npos);
  EXPECT_NE(text.find("Scan Hurricane"), std::string::npos);
}

TEST_F(PlanTest, DifferencePlanExecutes) {
  auto plan = PlanNode::DifferenceOf(PlanNode::Scan("Land"),
                                     PlanNode::Scan("Land"));
  auto out = Execute(*plan, db_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 0u);
}


// --- Projection rewrites ------------------------------------------------------------

TEST_F(PlanTest, IdentityProjectionVanishes) {
  auto plan = PlanNode::Project(PlanNode::Scan("Hurricane"), {"t", "x", "y"});
  auto optimized = Optimize(plan->Clone(), db_);
  EXPECT_EQ(optimized->op, PlanNode::Op::kScan);
  // Reordered attribute lists are NOT identities.
  auto reorder = PlanNode::Project(PlanNode::Scan("Hurricane"),
                                   {"y", "x", "t"});
  EXPECT_EQ(Optimize(reorder->Clone(), db_)->op, PlanNode::Op::kProject);
}

TEST_F(PlanTest, AdjacentProjectionsCompose) {
  auto plan = PlanNode::Project(
      PlanNode::Project(PlanNode::Scan("Landownership"), {"name", "t"}),
      {"name"});
  auto optimized = Optimize(plan->Clone(), db_);
  ASSERT_EQ(optimized->op, PlanNode::Op::kProject);
  EXPECT_EQ(optimized->children[0]->op, PlanNode::Op::kScan);
  EXPECT_EQ(optimized->attrs, (std::vector<std::string>{"name"}));
}

TEST_F(PlanTest, ProjectionPushesBelowUnion) {
  auto plan = PlanNode::Project(
      PlanNode::UnionOf(PlanNode::Scan("Land"), PlanNode::Scan("Land")),
      {"landId"});
  auto optimized = Optimize(plan->Clone(), db_);
  ASSERT_EQ(optimized->op, PlanNode::Op::kUnion);
  EXPECT_EQ(optimized->children[0]->op, PlanNode::Op::kProject);
  EXPECT_EQ(optimized->children[1]->op, PlanNode::Op::kProject);
  auto before = Execute(*plan, db_);
  auto after = Execute(*optimized, db_);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(before->size(), after->size());
}

TEST_F(PlanTest, SelectSinksBelowProjection) {
  Predicate pred = LinearPred({Constraint::Ge(V("t"), C(4))});
  auto plan = PlanNode::Select(
      PlanNode::Project(PlanNode::Scan("Hurricane"), {"t", "x"}), pred);
  auto optimized = Optimize(plan->Clone(), db_);
  ASSERT_EQ(optimized->op, PlanNode::Op::kProject);
  EXPECT_EQ(optimized->children[0]->op, PlanNode::Op::kSelect);
  auto before = Execute(*plan, db_);
  auto after = Execute(*optimized, db_);
  ASSERT_TRUE(before.ok() && after.ok());
  ASSERT_EQ(before->schema(), after->schema());
  for (int t = 0; t <= 10; ++t) {
    for (int x = 0; x <= 5; ++x) {
      PointRow p{{}, {{"t", Rational(t)}, {"x", Rational(x)}}};
      EXPECT_EQ(before->ContainsPoint(p), after->ContainsPoint(p))
          << "t=" << t << " x=" << x;
    }
  }
}

TEST_F(PlanTest, ProjectionNarrowsJoinInputs) {
  // pi_{name}(Landownership |x| Land): Land contributes only landId to the
  // join; its x and y can be dropped before the join.
  auto plan = PlanNode::Project(
      PlanNode::Join(PlanNode::Scan("Landownership"), PlanNode::Scan("Land")),
      {"name"});
  auto optimized = Optimize(plan->Clone(), db_);
  ASSERT_EQ(optimized->op, PlanNode::Op::kProject);
  ASSERT_EQ(optimized->children[0]->op, PlanNode::Op::kJoin);
  const PlanNode& join = *optimized->children[0];
  // The Land side must have been narrowed to its join attribute.
  bool narrowed = false;
  for (const auto& side : join.children) {
    if (side->op == PlanNode::Op::kProject) narrowed = true;
  }
  EXPECT_TRUE(narrowed) << optimized->ToString();
  auto before = Execute(*plan, db_);
  auto after = Execute(*optimized, db_);
  ASSERT_TRUE(before.ok() && after.ok());
  ASSERT_EQ(before->schema(), after->schema());
  EXPECT_EQ(before->size(), after->size());
}

TEST_F(PlanTest, ProjectionRewritesReachFixpoint) {
  // A deliberately messy plan; optimization must terminate and preserve
  // semantics.
  Predicate pred = LinearPred({Constraint::Le(V("t"), C(8))});
  auto plan = PlanNode::Project(
      PlanNode::Select(
          PlanNode::Project(
              PlanNode::Join(PlanNode::Scan("Landownership"),
                             PlanNode::Scan("Land")),
              {"name", "t", "landId"}),
          pred),
      {"name", "t"});
  auto optimized = Optimize(plan->Clone(), db_);
  auto before = Execute(*plan, db_);
  auto after = Execute(*optimized, db_);
  ASSERT_TRUE(before.ok() && after.ok()) << after.status().ToString();
  ASSERT_EQ(before->schema(), after->schema());
  const char* names[] = {"Smith", "Jones", "Brown", "Davis"};
  for (const char* name : names) {
    for (int t = 0; t <= 10; ++t) {
      PointRow p{{{"name", Value::String(name)}}, {{"t", Rational(t)}}};
      EXPECT_EQ(before->ContainsPoint(p), after->ContainsPoint(p))
          << name << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace ccdb::cqa
