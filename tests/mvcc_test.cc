// MVCC catalog and transaction tests.
//
// Covers the snapshot layer (immutable `CatalogSnapshot` chain, copy-on-
// write `CatalogEdit`, `MvccCatalog` publication, `SnapshotReadView`
// overlays), the query service's BEGIN/COMMIT/ROLLBACK transactions
// (read-your-writes, isolation, first-committer-wins conflicts, atomic
// WAL-batch commits), the regression pins for the failed-commit version
// restore and the result-cache version-stamp TOCTOU, a service-level
// crash matrix (transaction atomicity at every I/O fault point), and an
// N-writers x M-readers stress with a torn-snapshot detector.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/snapshot.h"
#include "data/workload.h"
#include "lang/query.h"
#include "service/query_service.h"
#include "storage/fault.h"
#include "storage/wal.h"

namespace ccdb {
namespace {

Relation BoxRelation(size_t count, uint64_t seed) {
  WorkloadParams params;
  params.data_count = count;
  return BoxesToConstraintRelation(GenerateDataBoxes(seed, params));
}

std::shared_ptr<const Relation> SharedBoxes(size_t count, uint64_t seed) {
  return std::make_shared<const Relation>(BoxRelation(count, seed));
}

// ---------------------------------------------------------------------
// Snapshot layer units
// ---------------------------------------------------------------------

TEST(SnapshotTest, EmptyAndFromDatabasePreserveVersions) {
  SnapshotPtr empty = CatalogSnapshot::Empty();
  EXPECT_EQ(empty->epoch(), 1u);
  EXPECT_EQ(empty->size(), 0u);
  EXPECT_EQ(empty->Version("A"), 0u);
  EXPECT_EQ(empty->Find("A"), nullptr);

  Database db;
  ASSERT_TRUE(db.Create("A", BoxRelation(5, 1)).ok());
  db.CreateOrReplace("A", BoxRelation(6, 2));  // version 2
  ASSERT_TRUE(db.Create("B", BoxRelation(4, 3)).ok());
  SnapshotPtr snap = CatalogSnapshot::FromDatabase(db);
  EXPECT_EQ(snap->epoch(), 1u);
  EXPECT_EQ(snap->size(), 2u);
  EXPECT_EQ(snap->Version("A"), 2u);
  EXPECT_EQ(snap->Version("B"), 1u);
  EXPECT_EQ(snap->Names(), (std::vector<std::string>{"A", "B"}));
  ASSERT_NE(snap->Find("A"), nullptr);
  EXPECT_EQ(snap->Find("A")->ToString(), (*db.Get("A"))->ToString());
}

TEST(SnapshotTest, EditsShareUntouchedRelationsAndBumpTouched) {
  Database seed;
  ASSERT_TRUE(seed.Create("A", BoxRelation(5, 1)).ok());
  ASSERT_TRUE(seed.Create("B", BoxRelation(5, 2)).ok());
  SnapshotPtr base = CatalogSnapshot::FromDatabase(seed);

  CatalogEdit edit(base);
  edit.CreateOrReplace("B", SharedBoxes(9, 9));
  ASSERT_TRUE(edit.Create("C", BoxRelation(3, 4)).ok());
  EXPECT_EQ(edit.Create("A", BoxRelation(1, 1)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(edit.dirty());
  EXPECT_EQ(edit.touched(), (std::set<std::string>{"B", "C"}));

  std::shared_ptr<CatalogSnapshot> next = edit.Build();
  EXPECT_EQ(next->epoch(), 0u) << "unpublished candidates carry epoch 0";
  // Untouched relation: the same object, not a copy.
  EXPECT_EQ(next->Find("A"), base->Find("A"));
  EXPECT_NE(next->Find("B"), base->Find("B"));
  EXPECT_EQ(next->Version("A"), base->Version("A"));
  EXPECT_EQ(next->Version("B"), base->Version("B") + 1);
  EXPECT_EQ(next->Version("C"), 1u);
}

TEST(SnapshotTest, DiscardedEditLeavesNoTrace) {
  MvccCatalog catalog;
  Database seed;
  ASSERT_TRUE(seed.Create("R", BoxRelation(5, 1)).ok());
  catalog.Seed(seed);
  SnapshotPtr before = catalog.Snapshot();
  {
    CatalogEdit edit(before);
    edit.CreateOrReplace("R", SharedBoxes(7, 2));
    ASSERT_TRUE(edit.Create("S", BoxRelation(3, 3)).ok());
    std::shared_ptr<CatalogSnapshot> built = edit.Build();
    EXPECT_EQ(built->Version("R"), 2u);
    // ...and the candidate dies here, unpublished.
  }
  EXPECT_EQ(catalog.Snapshot().get(), before.get());
  EXPECT_EQ(before->Version("R"), 1u);
  EXPECT_FALSE(before->Has("S"));
  EXPECT_EQ(catalog.epoch(), 1u);
}

TEST(SnapshotTest, PublicationStampsStrictlyIncreasingEpochs) {
  MvccCatalog catalog;
  EXPECT_EQ(catalog.epoch(), 1u);
  SnapshotPtr pinned = catalog.Snapshot();

  CatalogEdit create(pinned);
  ASSERT_TRUE(create.Create("A", BoxRelation(3, 1)).ok());
  SnapshotPtr p1 = catalog.PublishSnapshot(create.Build());
  EXPECT_EQ(p1->epoch(), 2u);
  EXPECT_EQ(catalog.epoch(), 2u);

  // The pin taken before the publish is frozen at the old state.
  EXPECT_EQ(pinned->epoch(), 1u);
  EXPECT_EQ(pinned->size(), 0u);

  CatalogEdit drop(p1);
  ASSERT_TRUE(drop.Drop("A").ok());
  EXPECT_EQ(drop.Drop("A").code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.PublishSnapshot(drop.Build())->epoch(), 3u);

  // The version counter survives the drop (never repeats on recreate).
  SnapshotPtr now = catalog.Snapshot();
  EXPECT_FALSE(now->Has("A"));
  EXPECT_EQ(now->Version("A"), 0u);
  EXPECT_EQ(now->VersionCounter("A"), 2u);
}

TEST(SnapshotTest, ReadViewOverlaysStagedWrites) {
  Database seed;
  ASSERT_TRUE(seed.Create("A", BoxRelation(5, 1)).ok());
  ASSERT_TRUE(seed.Create("B", BoxRelation(5, 2)).ok());
  SnapshotPtr snap = CatalogSnapshot::FromDatabase(seed);

  StagedWrites staged;
  staged["B"] = nullptr;  // dropped in this transaction
  staged["C"] = SharedBoxes(7, 3);

  SnapshotReadView view(snap, &staged);
  EXPECT_TRUE(view.Has("A"));
  EXPECT_FALSE(view.Has("B"));
  EXPECT_TRUE(view.Has("C"));
  EXPECT_EQ(view.Names(), (std::vector<std::string>{"A", "C"}));
  EXPECT_EQ(view.size(), 2u);
  EXPECT_EQ(view.Version("A"), 1u);
  EXPECT_EQ(view.Version("B"), 0u) << "a staged drop reads as unbound";
  EXPECT_EQ(view.Version("C"), 1u) << "one ahead of the (absent) counter";

  auto dropped = view.Get("B");
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.status().code(), StatusCode::kNotFound);
  auto created = view.Get("C");
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(*created, staged["C"].get());

  // The Database write interface is sealed on a read view.
  EXPECT_EQ(view.Create("X", BoxRelation(1, 1)).code(), StatusCode::kInternal);
  EXPECT_EQ(view.Drop("A").code(), StatusCode::kInternal);
}

TEST(SnapshotTest, MaterializeRestartsVersionCounters) {
  MvccCatalog catalog;
  CatalogEdit e1(catalog.Snapshot());
  ASSERT_TRUE(e1.Create("A", BoxRelation(4, 1)).ok());
  catalog.PublishSnapshot(e1.Build());
  CatalogEdit e2(catalog.Snapshot());
  e2.CreateOrReplace("A", SharedBoxes(6, 2));
  catalog.PublishSnapshot(e2.Build());
  SnapshotPtr snap = catalog.Snapshot();
  ASSERT_EQ(snap->Version("A"), 2u);

  Database copy = MaterializeSnapshot(*snap);
  EXPECT_EQ(copy.Names(), snap->Names());
  EXPECT_EQ((*copy.Get("A"))->ToString(), snap->Find("A")->ToString());
  EXPECT_EQ(copy.Version("A"), 1u) << "a materialized copy is a new lineage";
}

// ---------------------------------------------------------------------
// Transaction-statement classification
// ---------------------------------------------------------------------

TEST(TxnStatementTest, ClassifiesWholeStatementKeywordsOnly) {
  using lang::ClassifyTxnStatement;
  using lang::TxnStatement;
  EXPECT_EQ(ClassifyTxnStatement("BEGIN"), TxnStatement::kBegin);
  EXPECT_EQ(ClassifyTxnStatement("  begin  "), TxnStatement::kBegin);
  EXPECT_EQ(ClassifyTxnStatement("Begin Transaction"), TxnStatement::kBegin);
  EXPECT_EQ(ClassifyTxnStatement("COMMIT"), TxnStatement::kCommit);
  EXPECT_EQ(ClassifyTxnStatement("commit transaction"),
            TxnStatement::kCommit);
  EXPECT_EQ(ClassifyTxnStatement("ROLLBACK"), TxnStatement::kRollback);
  EXPECT_EQ(ClassifyTxnStatement("# note\nCOMMIT\n"), TxnStatement::kCommit);

  EXPECT_EQ(ClassifyTxnStatement(""), TxnStatement::kNone);
  EXPECT_EQ(ClassifyTxnStatement("BEGINX"), TxnStatement::kNone);
  EXPECT_EQ(ClassifyTxnStatement("COMMIT NOW"), TxnStatement::kNone);
  EXPECT_EQ(ClassifyTxnStatement("BEGIN TRANSACTION EXTRA"),
            TxnStatement::kNone);
  EXPECT_EQ(ClassifyTxnStatement("R0 = select x >= 0 from Boxes"),
            TxnStatement::kNone);
  // Multi-statement scripts are never transaction controls.
  EXPECT_EQ(ClassifyTxnStatement("BEGIN\nR0 = select x >= 0 from Boxes"),
            TxnStatement::kNone);
}

// ---------------------------------------------------------------------
// Service transactions
// ---------------------------------------------------------------------

service::ServiceOptions OneWorker() {
  service::ServiceOptions options;
  options.num_workers = 1;
  return options;
}

TEST(TxnTest, ReadYourWritesAndIsolationUntilCommit) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(10, 1)).ok());
  service::QueryService service(&base, OneWorker());
  const auto writer = service.OpenSession();
  const auto other = service.OpenSession();

  auto info = service.TransactionInfo(writer);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->active);

  ASSERT_TRUE(service.Begin(writer).ok());
  ASSERT_TRUE(
      service.CreateRelation(writer, "T", BoxRelation(8, 2)).ok());
  ASSERT_TRUE(service.DropRelation(writer, "Boxes").ok());

  // The transaction reads its own writes...
  EXPECT_TRUE(service.Execute(writer, "R0 = select x >= 0 from T").ok());
  EXPECT_EQ(service
                .Execute(writer, "R1 = select x >= 0 from Boxes")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(service.GetRelation(writer, "T").ok());
  auto names = service.VisibleNames(writer);
  EXPECT_TRUE(std::count(names.begin(), names.end(), "T") == 1);
  EXPECT_TRUE(std::count(names.begin(), names.end(), "Boxes") == 0);

  // ...and nobody else sees them before COMMIT.
  EXPECT_EQ(service.GetRelation(other, "T").status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(service.Execute(other, "R0 = select x >= 0 from Boxes").ok());

  info = service.TransactionInfo(writer);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->active);
  EXPECT_GT(info->txn_id, 0u);
  EXPECT_EQ(info->snapshot_epoch, service.CatalogEpoch());
  EXPECT_EQ(info->staged_writes,
            (std::vector<std::string>{"Boxes", "T"}));

  const uint64_t epoch_before = service.CatalogEpoch();
  ASSERT_TRUE(service.Commit(writer).ok());
  EXPECT_EQ(service.CatalogEpoch(), epoch_before + 1)
      << "one transaction = one snapshot publication";
  EXPECT_TRUE(service.GetRelation(other, "T").ok());
  EXPECT_EQ(service.GetRelation(other, "Boxes").status().code(),
            StatusCode::kNotFound);

  const auto m = service.Metrics();
  EXPECT_EQ(m.txn_begins, 1u);
  EXPECT_EQ(m.txn_commits, 1u);
  EXPECT_EQ(m.txn_rollbacks, 0u);
}

TEST(TxnTest, RollbackDiscardsStagedWritesExactly) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(10, 1)).ok());
  service::QueryService service(&base, OneWorker());
  const auto id = service.OpenSession();
  const uint64_t epoch = service.CatalogEpoch();

  ASSERT_TRUE(service.Begin(id).ok());
  ASSERT_TRUE(service.ReplaceRelation(id, "Boxes", BoxRelation(3, 9)).ok());
  ASSERT_TRUE(service.CreateRelation(id, "New", BoxRelation(2, 8)).ok());
  ASSERT_TRUE(service.Rollback(id).ok());

  EXPECT_EQ(service.CatalogEpoch(), epoch);
  EXPECT_EQ(service.GetRelation(id, "New").status().code(),
            StatusCode::kNotFound);
  auto boxes = service.GetRelation(id, "Boxes");
  ASSERT_TRUE(boxes.ok());
  EXPECT_EQ(boxes->size(), BoxRelation(10, 1).size());
  EXPECT_EQ(service.Metrics().txn_rollbacks, 1u);
  // Rollback without a transaction is a typed error.
  EXPECT_EQ(service.Rollback(id).code(), StatusCode::kInvalidArgument);
}

TEST(TxnTest, StatementsRouteThroughExecute) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(10, 1)).ok());
  service::QueryService service(&base, OneWorker());
  const auto id = service.OpenSession();

  auto begun = service.Execute(id, "BEGIN");
  ASSERT_TRUE(begun.ok()) << begun.status().ToString();
  EXPECT_EQ(begun->step, "BEGIN");
  auto info = service.TransactionInfo(id);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->active);

  // Ordinary statements still run inside the transaction.
  EXPECT_TRUE(service.Execute(id, "R0 = select x >= 0 from Boxes").ok());

  auto committed = service.Execute(id, "commit transaction");
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  EXPECT_EQ(committed->step, "COMMIT");
  // COMMIT without a transaction fails typed, through the same route.
  EXPECT_EQ(service.Execute(id, "COMMIT").status().code(),
            StatusCode::kInvalidArgument);

  auto rolled = service.Execute(id, "BEGIN");
  ASSERT_TRUE(rolled.ok());
  rolled = service.Execute(id, "ROLLBACK");
  ASSERT_TRUE(rolled.ok());
  EXPECT_EQ(rolled->step, "ROLLBACK");
}

TEST(TxnTest, NoNestingAndConflictIsFirstCommitterWins) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(10, 1)).ok());
  service::QueryService service(&base, OneWorker());
  const auto s1 = service.OpenSession();
  const auto s2 = service.OpenSession();

  ASSERT_TRUE(service.Begin(s1).ok());
  EXPECT_EQ(service.Begin(s1).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(service.Begin(s2).ok());

  ASSERT_TRUE(service.ReplaceRelation(s1, "Boxes", BoxRelation(4, 2)).ok());
  ASSERT_TRUE(service.ReplaceRelation(s2, "Boxes", BoxRelation(5, 3)).ok());

  ASSERT_TRUE(service.Commit(s1).ok());
  Status lost = service.Commit(s2);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.code(), StatusCode::kUnavailable);
  EXPECT_GE(lost.retry_after_ms(), 1);
  // The losing transaction is rolled back, not left open.
  auto info = service.TransactionInfo(s2);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->active);
  auto boxes = service.GetRelation(s2, "Boxes");
  ASSERT_TRUE(boxes.ok());
  EXPECT_EQ(boxes->size(), BoxRelation(4, 2).size()) << "winner's write holds";
  EXPECT_EQ(service.Metrics().txn_conflicts, 1u);

  // The retry path: begin again over the new snapshot and win.
  ASSERT_TRUE(service.Begin(s2).ok());
  ASSERT_TRUE(service.ReplaceRelation(s2, "Boxes", BoxRelation(5, 3)).ok());
  EXPECT_TRUE(service.Commit(s2).ok());

  // Disjoint writers never conflict.
  ASSERT_TRUE(service.Begin(s1).ok());
  ASSERT_TRUE(service.Begin(s2).ok());
  ASSERT_TRUE(service.CreateRelation(s1, "C", BoxRelation(2, 4)).ok());
  ASSERT_TRUE(service.CreateRelation(s2, "D", BoxRelation(2, 5)).ok());
  EXPECT_TRUE(service.Commit(s1).ok());
  EXPECT_TRUE(service.Commit(s2).ok());
  EXPECT_TRUE(service.GetRelation(s1, "C").ok());
  EXPECT_TRUE(service.GetRelation(s1, "D").ok());
}

TEST(TxnTest, EmptyAndNetNoopCommitsDoNotPublish) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(10, 1)).ok());
  service::QueryService service(&base, OneWorker());
  const auto id = service.OpenSession();
  const uint64_t epoch = service.CatalogEpoch();

  // Read-only transaction.
  ASSERT_TRUE(service.Begin(id).ok());
  EXPECT_TRUE(service.Execute(id, "R0 = select x >= 0 from Boxes").ok());
  EXPECT_TRUE(service.Commit(id).ok());
  EXPECT_EQ(service.CatalogEpoch(), epoch);

  // Create-then-drop nets out to nothing.
  ASSERT_TRUE(service.Begin(id).ok());
  ASSERT_TRUE(service.CreateRelation(id, "Temp", BoxRelation(3, 2)).ok());
  ASSERT_TRUE(service.DropRelation(id, "Temp").ok());
  EXPECT_TRUE(service.Commit(id).ok());
  EXPECT_EQ(service.CatalogEpoch(), epoch);
  EXPECT_EQ(service.GetRelation(id, "Temp").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.Metrics().txn_commits, 2u);
}

TEST(TxnTest, InTxnQueriesBypassTheResultCache) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(20, 1)).ok());
  service::QueryService service(&base, OneWorker());
  const auto id = service.OpenSession();
  const std::string script = "R0 = select x >= 0 from Boxes";

  ASSERT_TRUE(service.Execute(id, script).ok());  // miss + insert
  ASSERT_TRUE(service.Execute(id, script).ok());  // hit
  EXPECT_EQ(service.Metrics().cache_hits, 1u);

  ASSERT_TRUE(service.Begin(id).ok());
  ASSERT_TRUE(service.Execute(id, script).ok());
  ASSERT_TRUE(service.Execute(id, script).ok());
  EXPECT_EQ(service.Metrics().cache_hits, 1u)
      << "queries inside a transaction must not read the shared cache";
  ASSERT_TRUE(service.Rollback(id).ok());

  ASSERT_TRUE(service.Execute(id, script).ok());
  EXPECT_EQ(service.Metrics().cache_hits, 2u);
}

// Regression (pre-MVCC TOCTOU): the result-cache key used to stamp
// versions at insert time, so a commit landing between execution and
// insert registered stale results under post-commit versions. Keys now
// come from the pinned snapshot, so the staled entry stays keyed under
// the version it was computed from.
TEST(TxnTest, CacheInsertCannotBePoisonedByConcurrentCommit) {
  Database base;
  ASSERT_TRUE(base.Create("Boxes", BoxRelation(20, 1)).ok());
  service::ServiceOptions options = OneWorker();
  service::QueryService* svc = nullptr;
  std::atomic<int> hook_fires{0};
  options.post_execute_hook = [&] {
    // Runs on the worker between execution and the cache insert — the
    // historical race window. Commit a replacement right there.
    if (hook_fires.fetch_add(1) == 0) {
      ASSERT_TRUE(svc->ReplaceRelation("Boxes", BoxRelation(7, 2)).ok());
    }
  };
  service::QueryService service(&base, options);
  svc = &service;
  const auto id = service.OpenSession();
  const std::string script = "R0 = select x >= 0 from Boxes";

  auto stale = service.Execute(id, script);
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  ASSERT_GE(hook_fires.load(), 1);
  EXPECT_EQ(stale->relation.size(), BoxRelation(20, 1).size())
      << "first run executed against the pinned pre-commit snapshot";

  // The re-run keys on the *new* version: it must recompute against the
  // replacement, not replay the stale insert.
  auto fresh = service.Execute(id, script);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh->relation.size(), BoxRelation(7, 2).size());
  EXPECT_EQ(service.Metrics().cache_hits, 0u);
}

TEST(TxnTest, CommitIsOneAtomicWalBatch) {
  PageManager disk;
  auto store = DurableStore::Create(&disk);
  ASSERT_TRUE(store.ok());
  const PageId wal_root = (*store)->wal_root();
  {
    Database base;
    service::ServiceOptions options = OneWorker();
    options.store = store->get();
    service::QueryService service(&base, options);
    ASSERT_TRUE(service.CreateRelation("Boxes", BoxRelation(10, 1)).ok());
    const uint64_t batches = service.Metrics().wal_batches;

    const auto id = service.OpenSession();
    ASSERT_TRUE(service.Begin(id).ok());
    ASSERT_TRUE(service.CreateRelation(id, "A", BoxRelation(4, 2)).ok());
    ASSERT_TRUE(service.CreateRelation(id, "B", BoxRelation(5, 3)).ok());
    ASSERT_TRUE(service.ReplaceRelation(id, "Boxes", BoxRelation(6, 4)).ok());
    ASSERT_TRUE(service.Commit(id).ok());
    EXPECT_EQ(service.Metrics().wal_batches, batches + 1)
        << "three staged writes, exactly one WAL batch";
  }
  // All three writes recover together.
  auto reopened = DurableStore::Open(&disk, wal_root);
  ASSERT_TRUE(reopened.ok());
  auto loaded = (*reopened)->LoadCatalog();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Names(), (std::vector<std::string>{"A", "B", "Boxes"}));
  EXPECT_EQ((*loaded->Get("Boxes"))->size(), BoxRelation(6, 4).size());
}

// ---------------------------------------------------------------------
// Crash matrix: transaction atomicity at every I/O fault point
// ---------------------------------------------------------------------

std::string Fingerprint(const Database& db) {
  std::string out;
  for (const std::string& name : db.Names()) {
    auto rel = db.Get(name);
    out += name + "#" + std::to_string(rel.ok() ? (*rel)->size() : 0) + ";";
  }
  return out;
}

struct TxnMatrixRun {
  bool store_ok = false;
  PageId wal_root = kInvalidPageId;
  std::string last_acked;  // fingerprint of the last acknowledged state
  std::string pending;     // target of the first failed commit, if any
  std::string in_memory;   // service-visible state at the end
};

/// Workload: autocommit Seed(6); then one transaction staging
/// {create A(4), replace Seed(9)} committed as a unit. Legal durable
/// states: "", "Seed#6;", "A#4;Seed#9;" — never A without the new Seed.
TxnMatrixRun RunTxnMatrixWorkload(FaultInjectingPager* disk) {
  TxnMatrixRun out;
  auto store = DurableStore::Create(disk);
  if (!store.ok()) return out;
  out.store_ok = true;
  out.wal_root = (*store)->wal_root();
  Database base;
  service::ServiceOptions options = OneWorker();
  options.store = store->get();
  service::QueryService service(&base, options);

  auto attempt = [&](const std::string& target, Status status) {
    if (status.ok()) {
      out.last_acked = target;
    } else if (out.pending.empty()) {
      out.pending = target;
    }
  };
  attempt("Seed#6;", service.CreateRelation("Seed", BoxRelation(6, 1)));

  const auto id = service.OpenSession();
  EXPECT_TRUE(service.Begin(id).ok());
  EXPECT_TRUE(service.CreateRelation(id, "A", BoxRelation(4, 2)).ok());
  EXPECT_TRUE(service.ReplaceRelation(id, "Seed", BoxRelation(9, 3)).ok());
  attempt("A#4;Seed#9;", service.Commit(id));

  out.in_memory = Fingerprint(service.CloneBase());
  return out;
}

void RunTxnCrashMatrix(FaultInjectingPager::Fault fault, const char* label) {
  uint64_t total_ios = 0;
  {
    FaultInjectingPager disk;
    const TxnMatrixRun all = RunTxnMatrixWorkload(&disk);
    ASSERT_TRUE(all.store_ok);
    ASSERT_EQ(all.last_acked, "A#4;Seed#9;");
    ASSERT_EQ(all.in_memory, all.last_acked);
    total_ios = disk.io_count();
  }
  ASSERT_GT(total_ios, 0u);

  size_t verified = 0;
  for (uint64_t n = 0; n < total_ios; ++n) {
    SCOPED_TRACE(std::string(label) + " fault at I/O " + std::to_string(n));
    FaultInjectingPager disk;
    disk.Arm(fault, n);
    const TxnMatrixRun run = RunTxnMatrixWorkload(&disk);
    if (!run.store_ok) continue;  // died before the store existed

    // The failed-commit rollback pin, at every fault point: the
    // service's published catalog tracks acknowledgements exactly.
    ASSERT_EQ(run.in_memory, run.last_acked);

    // Reboot and recover: the durable state is the last acked one, or
    // the single indeterminate in-flight commit — never a mix, and in
    // particular never A without the transaction's Seed replacement.
    disk.ClearFault();
    auto reopened = DurableStore::Open(&disk, run.wal_root);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    auto loaded = (*reopened)->LoadCatalog();
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const std::string recovered = Fingerprint(*loaded);
    if (recovered != run.last_acked) {
      ASSERT_FALSE(run.pending.empty())
          << "recovered un-attempted state: " << recovered;
      ASSERT_EQ(recovered, run.pending);
    }
    ++verified;
  }
  EXPECT_GT(verified, 0u);
}

TEST(TxnCrashMatrixTest, TransientFailureAtEveryIoPoint) {
  RunTxnCrashMatrix(FaultInjectingPager::Fault::kFail, "kFail");
}

TEST(TxnCrashMatrixTest, TornWriteAtEveryIoPoint) {
  RunTxnCrashMatrix(FaultInjectingPager::Fault::kTornWrite, "kTornWrite");
}

TEST(TxnCrashMatrixTest, CrashAtEveryIoPoint) {
  RunTxnCrashMatrix(FaultInjectingPager::Fault::kCrash, "kCrash");
}

// ---------------------------------------------------------------------
// N writers x M readers stress
// ---------------------------------------------------------------------

// Writers atomically replace the pair (A, B) with identical contents in
// one transaction each; readers difference them inside single scripts
// (one pinned snapshot per script). A non-empty difference means a
// reader saw a torn catalog. TSan-clean by construction: readers run
// lock-free on frozen snapshots.
TEST(MvccStressTest, WriterStormNeverTearsReaders) {
  Database base;
  ASSERT_TRUE(base.Create("A", BoxRelation(6, 100)).ok());
  ASSERT_TRUE(base.Create("B", BoxRelation(6, 100)).ok());
  service::ServiceOptions options;
  options.num_workers = 2;
  service::QueryService service(&base, options);

  constexpr int kWriters = 3;
  constexpr int kReaders = 3;
  constexpr int kWritesEach = 12;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> conflicts{0};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> torn{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const auto id = service.OpenSession();
      for (int i = 0; i < kWritesEach; ++i) {
        ASSERT_TRUE(service.Begin(id).ok());
        const Relation next = BoxRelation(4 + (i % 5), 200 + w * 37 + i);
        ASSERT_TRUE(service.ReplaceRelation(id, "A", next).ok());
        ASSERT_TRUE(service.ReplaceRelation(id, "B", next).ok());
        Status committed = service.Commit(id);
        if (committed.ok()) {
          ++commits;
        } else {
          ASSERT_EQ(committed.code(), StatusCode::kUnavailable)
              << committed.ToString();
          ++conflicts;
        }
      }
      EXPECT_TRUE(service.CloseSession(id).ok());
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      const auto id = service.OpenSession();
      while (!stop.load()) {
        auto diff = service.Execute(id, "R0 = minus A and B");
        ASSERT_TRUE(diff.ok()) << diff.status().ToString();
        ++reads;
        if (diff->relation.size() != 0) ++torn;
      }
      EXPECT_TRUE(service.CloseSession(id).ok());
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u) << "a reader observed a torn catalog";
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(commits.load(), 0u);
  EXPECT_EQ(commits.load() + conflicts.load(),
            static_cast<uint64_t>(kWriters * kWritesEach));
  // Every successful commit published exactly one snapshot.
  EXPECT_EQ(service.CatalogEpoch(), 1u + commits.load());
  const auto m = service.Metrics();
  EXPECT_EQ(m.txn_commits, commits.load());
  EXPECT_EQ(m.txn_conflicts, conflicts.load());
  EXPECT_EQ(m.catalog_epoch, service.CatalogEpoch());
}

}  // namespace
}  // namespace ccdb
