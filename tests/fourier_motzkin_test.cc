#include "constraint/fourier_motzkin.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ccdb {
namespace {

LinearExpr V(const std::string& name) { return LinearExpr::Variable(name); }
LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

// --- EliminateVariable -----------------------------------------------------

TEST(FourierMotzkinTest, EliminateBetweenBounds) {
  // 1 <= x AND x <= y  =>  (exists x)  gives  1 <= y.
  Conjunction c({Constraint::Ge(V("x"), C(1)), Constraint::Le(V("x"), V("y"))});
  Conjunction out = fm::EliminateVariable(c, "x");
  EXPECT_FALSE(out.Mentions("x"));
  EXPECT_TRUE(out.IsSatisfiedBy({{"y", Rational(1)}}));
  EXPECT_FALSE(out.IsSatisfiedBy({{"y", Rational(0)}}));
}

TEST(FourierMotzkinTest, EliminatePreservesStrictness) {
  // 1 < x AND x <= y  =>  1 < y.
  Conjunction c({Constraint::Gt(V("x"), C(1)), Constraint::Le(V("x"), V("y"))});
  Conjunction out = fm::EliminateVariable(c, "x");
  EXPECT_FALSE(out.IsSatisfiedBy({{"y", Rational(1)}}));
  EXPECT_TRUE(out.IsSatisfiedBy({{"y", Rational(2)}}));
}

TEST(FourierMotzkinTest, EliminateUnboundedSideDropsConstraints) {
  // x >= y alone: eliminating x leaves "true" (x can always be large).
  Conjunction c({Constraint::Ge(V("x"), V("y"))});
  Conjunction out = fm::EliminateVariable(c, "x");
  EXPECT_TRUE(out.IsTriviallyTrue());
}

TEST(FourierMotzkinTest, EliminateAbsentVariableIsIdentity) {
  Conjunction c({Constraint::Le(V("y"), C(3))});
  EXPECT_EQ(fm::EliminateVariable(c, "x"), c);
}

TEST(FourierMotzkinTest, EliminateViaEqualitySubstitution) {
  // x = 2y AND x <= 6  =>  2y <= 6, i.e. y <= 3.
  Conjunction c({Constraint::Eq(V("x"), V("y") * Rational(2)),
                 Constraint::Le(V("x"), C(6))});
  Conjunction out = fm::EliminateVariable(c, "x");
  EXPECT_FALSE(out.Mentions("x"));
  EXPECT_TRUE(out.IsSatisfiedBy({{"y", Rational(3)}}));
  EXPECT_FALSE(out.IsSatisfiedBy({{"y", Rational(4)}}));
}

TEST(FourierMotzkinTest, EliminateDetectsContradiction) {
  // x <= 1 AND x >= 2.
  Conjunction c({Constraint::Le(V("x"), C(1)), Constraint::Ge(V("x"), C(2))});
  Conjunction out = fm::EliminateVariable(c, "x");
  EXPECT_TRUE(out.IsKnownFalse());
}

TEST(FourierMotzkinTest, StrictContradictionAtSharedPoint) {
  // x < 1 AND x >= 1 is unsatisfiable; x <= 1 AND x >= 1 is x = 1.
  Conjunction strict({Constraint::Lt(V("x"), C(1)),
                      Constraint::Ge(V("x"), C(1))});
  EXPECT_FALSE(fm::IsSatisfiable(strict));
  Conjunction touching({Constraint::Le(V("x"), C(1)),
                        Constraint::Ge(V("x"), C(1))});
  EXPECT_TRUE(fm::IsSatisfiable(touching));
}

// Soundness property: if a point satisfies the input, its restriction
// satisfies the eliminated form; completeness at rational sample points:
// if restriction satisfies output, some x extends it (checked via interval).
TEST(FourierMotzkinTest, EliminationSemanticsRandomized) {
  Rng rng(314159);
  for (int iter = 0; iter < 200; ++iter) {
    // Random conjunction over x, y with small integer coefficients.
    Conjunction c;
    int n = static_cast<int>(rng.UniformInt(1, 5));
    for (int i = 0; i < n; ++i) {
      LinearExpr e = V("x") * Rational(rng.UniformInt(-3, 3)) +
                     V("y") * Rational(rng.UniformInt(-3, 3)) +
                     C(rng.UniformInt(-10, 10));
      int op = static_cast<int>(rng.UniformInt(0, 2));
      c.Add(Constraint(e, op == 0   ? ConstraintOp::kLe
                          : op == 1 ? ConstraintOp::kLt
                                    : ConstraintOp::kEq));
    }
    Conjunction projected = fm::EliminateVariable(c, "x");
    EXPECT_FALSE(projected.Mentions("x"));
    for (int sample = 0; sample < 20; ++sample) {
      Rational x(rng.UniformInt(-12, 12), rng.UniformInt(1, 4));
      Rational y(rng.UniformInt(-12, 12), rng.UniformInt(1, 4));
      if (c.IsSatisfiedBy({{"x", x}, {"y", y}})) {
        EXPECT_TRUE(projected.IsSatisfiedBy({{"y", y}}))
            << "soundness violated at x=" << x.ToString()
            << " y=" << y.ToString() << " for " << c.ToString();
      }
      // Completeness: if y satisfies the projection, the interval of x
      // values compatible with this y must be non-empty.
      if (projected.IsSatisfiedBy({{"y", y}})) {
        Conjunction with_y = c.Substitute("y", LinearExpr::Constant(y));
        EXPECT_TRUE(fm::IsSatisfiable(with_y))
            << "completeness violated at y=" << y.ToString() << " for "
            << c.ToString();
      }
    }
  }
}

// --- Project ----------------------------------------------------------------

TEST(FourierMotzkinTest, ProjectKeepsOnlyRequestedVariables) {
  Conjunction c({Constraint::Le(V("x") + V("y") + V("z"), C(3)),
                 Constraint::Ge(V("x"), C(0)), Constraint::Ge(V("y"), C(0)),
                 Constraint::Ge(V("z"), C(0))});
  Conjunction out = fm::Project(c, {"x"});
  EXPECT_FALSE(out.Mentions("y"));
  EXPECT_FALSE(out.Mentions("z"));
  // x ranges over [0, 3].
  EXPECT_TRUE(out.IsSatisfiedBy({{"x", Rational(3)}}));
  EXPECT_TRUE(out.IsSatisfiedBy({{"x", Rational(0)}}));
  EXPECT_FALSE(out.IsSatisfiedBy({{"x", Rational(4)}}));
  EXPECT_FALSE(out.IsSatisfiedBy({{"x", Rational(-1)}}));
}

TEST(FourierMotzkinTest, ProjectOntoEmptySetDecidesSatisfiability) {
  Conjunction sat({Constraint::Le(V("x"), V("y"))});
  EXPECT_TRUE(fm::Project(sat, {}).IsTriviallyTrue());
  Conjunction unsat({Constraint::Lt(V("x"), V("y")),
                     Constraint::Lt(V("y"), V("x"))});
  EXPECT_TRUE(fm::Project(unsat, {}).IsKnownFalse());
}

// --- IsSatisfiable ----------------------------------------------------------

TEST(FourierMotzkinTest, SatisfiabilityBasics) {
  EXPECT_TRUE(fm::IsSatisfiable(Conjunction()));
  EXPECT_FALSE(fm::IsSatisfiable(Conjunction::False()));

  // Triangle: x >= 0, y >= 0, x + y <= 1.
  Conjunction triangle({Constraint::Ge(V("x"), C(0)),
                        Constraint::Ge(V("y"), C(0)),
                        Constraint::Le(V("x") + V("y"), C(1))});
  EXPECT_TRUE(fm::IsSatisfiable(triangle));

  // Infeasible: x + y <= 0, x >= 1, y >= 1.
  Conjunction infeasible({Constraint::Le(V("x") + V("y"), C(0)),
                          Constraint::Ge(V("x"), C(1)),
                          Constraint::Ge(V("y"), C(1))});
  EXPECT_FALSE(fm::IsSatisfiable(infeasible));
}

TEST(FourierMotzkinTest, SatisfiabilityWithEqualityChains) {
  // x = y, y = z, z = 3, x <= 2 is unsatisfiable.
  Conjunction c({Constraint::Eq(V("x"), V("y")), Constraint::Eq(V("y"), V("z")),
                 Constraint::Eq(V("z"), C(3)), Constraint::Le(V("x"), C(2))});
  EXPECT_FALSE(fm::IsSatisfiable(c));
  // Relax the bound: satisfiable.
  Conjunction ok({Constraint::Eq(V("x"), V("y")), Constraint::Eq(V("y"), V("z")),
                  Constraint::Eq(V("z"), C(3)), Constraint::Le(V("x"), C(3))});
  EXPECT_TRUE(fm::IsSatisfiable(ok));
}

TEST(FourierMotzkinTest, OpenPolytopeIsSatisfiableOverRationals) {
  // 0 < x < 1/1000000: dense order has points in any open interval.
  Conjunction c({Constraint::Gt(V("x"), C(0)),
                 Constraint::Lt(V("x") * Rational(1000000), C(1))});
  EXPECT_TRUE(fm::IsSatisfiable(c));
}

// --- Entails / AreEquivalent -------------------------------------------------

TEST(FourierMotzkinTest, EntailsBasics) {
  Conjunction c({Constraint::Ge(V("x"), C(2)), Constraint::Le(V("x"), C(3))});
  EXPECT_TRUE(fm::Entails(c, Constraint::Ge(V("x"), C(1))));
  EXPECT_TRUE(fm::Entails(c, Constraint::Le(V("x"), C(3))));
  EXPECT_TRUE(fm::Entails(c, Constraint::Lt(V("x"), C(4))));
  EXPECT_FALSE(fm::Entails(c, Constraint::Lt(V("x"), C(3))));
  EXPECT_FALSE(fm::Entails(c, Constraint::Ge(V("x"), C(3))));
  EXPECT_FALSE(fm::Entails(c, Constraint::Eq(V("x"), C(2))));
}

TEST(FourierMotzkinTest, EntailsEqualityClaim) {
  Conjunction pin({Constraint::Ge(V("x"), C(2)), Constraint::Le(V("x"), C(2))});
  EXPECT_TRUE(fm::Entails(pin, Constraint::Eq(V("x"), C(2))));
  EXPECT_FALSE(fm::Entails(pin, Constraint::Eq(V("x"), C(3))));
}

TEST(FourierMotzkinTest, FalsePremiseEntailsEverything) {
  EXPECT_TRUE(
      fm::Entails(Conjunction::False(), Constraint::Eq(V("x"), C(42))));
}

TEST(FourierMotzkinTest, EntailsTransitiveChain) {
  // x <= y, y <= z  entails  x <= z.
  Conjunction c({Constraint::Le(V("x"), V("y")),
                 Constraint::Le(V("y"), V("z"))});
  EXPECT_TRUE(fm::Entails(c, Constraint::Le(V("x"), V("z"))));
  EXPECT_FALSE(fm::Entails(c, Constraint::Lt(V("x"), V("z"))));
}

TEST(FourierMotzkinTest, AreEquivalentDetectsSyntacticVariants) {
  // {x = 1} vs {x <= 1, x >= 1}.
  Conjunction eq({Constraint::Eq(V("x"), C(1))});
  Conjunction pinched({Constraint::Le(V("x"), C(1)),
                       Constraint::Ge(V("x"), C(1))});
  EXPECT_TRUE(fm::AreEquivalent(eq, pinched));
  Conjunction other({Constraint::Eq(V("x"), C(2))});
  EXPECT_FALSE(fm::AreEquivalent(eq, other));
  EXPECT_TRUE(fm::AreEquivalent(Conjunction::False(),
                                Conjunction({Constraint::Lt(V("x"), V("x"))})));
}

// --- RemoveRedundant ----------------------------------------------------------

TEST(FourierMotzkinTest, RemoveRedundantDropsImpliedBound) {
  // x <= 1 makes x <= 5 redundant.
  Conjunction c({Constraint::Le(V("x"), C(1)), Constraint::Le(V("x"), C(5))});
  Conjunction out = fm::RemoveRedundant(c);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(fm::AreEquivalent(c, out));
}

TEST(FourierMotzkinTest, RemoveRedundantDropsDerivedDiagonal) {
  // x <= 2, y <= 2 make x + y <= 4 redundant.
  Conjunction c({Constraint::Le(V("x"), C(2)), Constraint::Le(V("y"), C(2)),
                 Constraint::Le(V("x") + V("y"), C(4))});
  Conjunction out = fm::RemoveRedundant(c);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(fm::AreEquivalent(c, out));
}

TEST(FourierMotzkinTest, RemoveRedundantKeepsIndependentBounds) {
  Conjunction c({Constraint::Le(V("x"), C(2)), Constraint::Ge(V("x"), C(0)),
                 Constraint::Le(V("y"), C(1))});
  EXPECT_EQ(fm::RemoveRedundant(c).size(), 3u);
}

TEST(FourierMotzkinTest, RemoveRedundantCollapsesUnsatisfiable) {
  Conjunction c({Constraint::Le(V("x") + V("y"), C(0)),
                 Constraint::Ge(V("x"), C(1)), Constraint::Ge(V("y"), C(1))});
  EXPECT_TRUE(fm::RemoveRedundant(c).IsKnownFalse());
}

// --- VariableInterval / BoundingBox -------------------------------------------

TEST(FourierMotzkinTest, IntervalClosed) {
  Conjunction c({Constraint::Ge(V("x"), C(1)), Constraint::Le(V("x"), C(4))});
  fm::Interval iv = fm::VariableInterval(c, "x");
  ASSERT_TRUE(iv.lower && iv.upper);
  EXPECT_EQ(iv.lower->value, Rational(1));
  EXPECT_FALSE(iv.lower->strict);
  EXPECT_EQ(iv.upper->value, Rational(4));
  EXPECT_FALSE(iv.upper->strict);
  EXPECT_EQ(iv.ToString(), "[1, 4]");
}

TEST(FourierMotzkinTest, IntervalOpenAndHalfOpen) {
  Conjunction c({Constraint::Gt(V("x"), C(0)), Constraint::Lt(V("x"), C(1))});
  fm::Interval iv = fm::VariableInterval(c, "x");
  ASSERT_TRUE(iv.lower && iv.upper);
  EXPECT_TRUE(iv.lower->strict);
  EXPECT_TRUE(iv.upper->strict);
  EXPECT_FALSE(iv.Contains(Rational(0)));
  EXPECT_TRUE(iv.Contains(Rational(1, 2)));
  EXPECT_FALSE(iv.Contains(Rational(1)));
}

TEST(FourierMotzkinTest, IntervalThroughOtherVariables) {
  // y in [0, 2], x = 2y  =>  x in [0, 4].
  Conjunction c({Constraint::Ge(V("y"), C(0)), Constraint::Le(V("y"), C(2)),
                 Constraint::Eq(V("x"), V("y") * Rational(2))});
  fm::Interval iv = fm::VariableInterval(c, "x");
  ASSERT_TRUE(iv.lower && iv.upper);
  EXPECT_EQ(iv.lower->value, Rational(0));
  EXPECT_EQ(iv.upper->value, Rational(4));
}

TEST(FourierMotzkinTest, IntervalUnbounded) {
  Conjunction c({Constraint::Ge(V("x"), C(7))});
  fm::Interval iv = fm::VariableInterval(c, "x");
  ASSERT_TRUE(iv.lower);
  EXPECT_FALSE(iv.upper);
  EXPECT_EQ(iv.lower->value, Rational(7));
  EXPECT_EQ(iv.ToString(), "[7, +inf)");

  fm::Interval free = fm::VariableInterval(Conjunction(), "x");
  EXPECT_FALSE(free.lower);
  EXPECT_FALSE(free.upper);
  EXPECT_TRUE(free.Contains(Rational(-1000000)));
}

TEST(FourierMotzkinTest, IntervalPointFromEquality) {
  Conjunction c({Constraint::Eq(V("x"), C(3))});
  fm::Interval iv = fm::VariableInterval(c, "x");
  EXPECT_TRUE(iv.IsPoint());
  EXPECT_TRUE(iv.Contains(Rational(3)));
  EXPECT_FALSE(iv.Contains(Rational(2)));
}

TEST(FourierMotzkinTest, IntervalEmptyOnContradiction) {
  Conjunction c({Constraint::Ge(V("x"), C(4)), Constraint::Le(V("x"), C(1))});
  EXPECT_TRUE(fm::VariableInterval(c, "x").empty);
  Conjunction strict({Constraint::Gt(V("x"), C(1)),
                      Constraint::Le(V("x"), C(1))});
  EXPECT_TRUE(fm::VariableInterval(strict, "x").empty);
}

TEST(FourierMotzkinTest, BoundingBoxOfTriangle) {
  // Triangle (0,0), (2,0), (0,2): x,y >= 0, x + y <= 2.
  Conjunction tri({Constraint::Ge(V("x"), C(0)), Constraint::Ge(V("y"), C(0)),
                   Constraint::Le(V("x") + V("y"), C(2))});
  auto box = fm::BoundingBox(tri, {"x", "y"});
  EXPECT_EQ(box.at("x").lower->value, Rational(0));
  EXPECT_EQ(box.at("x").upper->value, Rational(2));
  EXPECT_EQ(box.at("y").lower->value, Rational(0));
  EXPECT_EQ(box.at("y").upper->value, Rational(2));
}

}  // namespace
}  // namespace ccdb
