#include "data/schema.h"

#include <gtest/gtest.h>

namespace ccdb {
namespace {

Schema Hurricane() {
  // The paper's §3.3 Hurricane relation: [t, x, y: rational, constraint].
  return Schema::Make({Schema::ConstraintRational("t"),
                       Schema::ConstraintRational("x"),
                       Schema::ConstraintRational("y")})
      .value();
}

Schema Landownership() {
  return Schema::Make({Schema::RelationalString("name"),
                       Schema::ConstraintRational("t"),
                       Schema::RelationalString("landId")})
      .value();
}

TEST(SchemaTest, MakeValidatesNames) {
  EXPECT_FALSE(Schema::Make({Attribute{"", AttributeDomain::kString,
                                       AttributeKind::kRelational}})
                   .ok());
  EXPECT_FALSE(Schema::Make({Schema::RelationalString("a"),
                             Schema::RelationalString("a")})
                   .ok());
}

TEST(SchemaTest, ConstraintAttributesMustBeRational) {
  // The C/R flag composes with domains: a string constraint attr is invalid.
  auto bad = Schema::Make({Attribute{"name", AttributeDomain::kString,
                                     AttributeKind::kConstraint}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, FindAndNames) {
  Schema s = Landownership();
  EXPECT_EQ(s.arity(), 3u);
  ASSERT_NE(s.Find("t"), nullptr);
  EXPECT_EQ(s.Find("t")->kind, AttributeKind::kConstraint);
  EXPECT_EQ(s.Find("missing"), nullptr);
  EXPECT_EQ(s.Names(),
            (std::vector<std::string>{"name", "t", "landId"}));
}

TEST(SchemaTest, ProjectKeepsOrderOfRequest) {
  Schema s = Landownership();
  auto p = s.Project({"landId", "name"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->Names(), (std::vector<std::string>{"landId", "name"}));
  EXPECT_FALSE(s.Project({"nope"}).ok());
  EXPECT_FALSE(s.Project({"name", "name"}).ok());
}

TEST(SchemaTest, NaturalJoinMergesAndChecksConflicts) {
  Schema land = Schema::Make({Schema::RelationalString("landId"),
                              Schema::ConstraintRational("x"),
                              Schema::ConstraintRational("y")})
                    .value();
  auto joined = Landownership().NaturalJoin(land);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->Names(),
            (std::vector<std::string>{"name", "t", "landId", "x", "y"}));

  // Kind conflict on shared attribute: t constraint vs t relational.
  Schema conflicting =
      Schema::Make({Schema::RelationalRational("t")}).value();
  EXPECT_FALSE(Landownership().NaturalJoin(conflicting).ok());
}

TEST(SchemaTest, NaturalJoinWithDisjointIsCrossProductSchema) {
  Schema a = Schema::Make({Schema::RelationalString("a")}).value();
  Schema b = Schema::Make({Schema::RelationalString("b")}).value();
  auto j = a.NaturalJoin(b);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->arity(), 2u);
}

TEST(SchemaTest, Rename) {
  Schema s = Hurricane();
  auto r = s.Rename("t", "time");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Has("time"));
  EXPECT_FALSE(r->Has("t"));
  EXPECT_EQ(r->Find("time")->kind, AttributeKind::kConstraint);
  EXPECT_FALSE(s.Rename("missing", "z").ok());
  EXPECT_FALSE(s.Rename("t", "x").ok()) << "target exists";
}

TEST(SchemaTest, EqualityIsExact) {
  EXPECT_EQ(Hurricane(), Hurricane());
  EXPECT_NE(Hurricane(), Landownership());
  // Same names, different kind: not equal.
  Schema relational_t =
      Schema::Make({Schema::RelationalRational("t"),
                    Schema::ConstraintRational("x"),
                    Schema::ConstraintRational("y")})
          .value();
  EXPECT_NE(Hurricane(), relational_t);
}

TEST(SchemaTest, ToStringMatchesPaperStyle) {
  Schema s = Schema::Make({Schema::RelationalString("landId"),
                           Schema::ConstraintRational("x")})
                 .value();
  EXPECT_EQ(s.ToString(),
            "[landId: string, relational; x: rational, constraint]");
}

}  // namespace
}  // namespace ccdb
