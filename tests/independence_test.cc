#include "constraint/independence.h"

#include <gtest/gtest.h>

#include "core/advisor.h"

namespace ccdb {
namespace {

LinearExpr V(const std::string& n) { return LinearExpr::Variable(n); }
LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

TEST(IndependenceTest, BoxIsIndependent) {
  Conjunction box({Constraint::Ge(V("x"), C(0)), Constraint::Le(V("x"), C(2)),
                   Constraint::Ge(V("y"), C(0)), Constraint::Le(V("y"), C(3))});
  EXPECT_TRUE(fm::AreIndependent(box, "x", "y"));
}

TEST(IndependenceTest, DiagonalCouplingIsDetected) {
  Conjunction diag({Constraint::Eq(V("x"), V("y"))});
  EXPECT_FALSE(fm::AreIndependent(diag, "x", "y"));

  Conjunction halfplane({Constraint::Le(V("x") + V("y"), C(2)),
                         Constraint::Ge(V("x"), C(0)),
                         Constraint::Ge(V("y"), C(0))});
  EXPECT_FALSE(fm::AreIndependent(halfplane, "x", "y"));
}

TEST(IndependenceTest, ImplicitProductIsIndependent) {
  // x+y <= 2, x >= 1, y >= 1 pins the single point (1,1): a product of
  // singletons, hence independent despite the coupled-looking syntax.
  Conjunction point({Constraint::Le(V("x") + V("y"), C(2)),
                     Constraint::Ge(V("x"), C(1)),
                     Constraint::Ge(V("y"), C(1))});
  EXPECT_TRUE(fm::AreIndependent(point, "x", "y"));
}

TEST(IndependenceTest, MissingVariableIsIndependent) {
  Conjunction only_x({Constraint::Le(V("x"), C(1))});
  EXPECT_TRUE(fm::AreIndependent(only_x, "x", "y"));
  EXPECT_TRUE(fm::AreIndependent(Conjunction(), "x", "y"));
  EXPECT_TRUE(fm::AreIndependent(Conjunction::False(), "x", "y"));
}

TEST(IndependenceTest, UnsatisfiableIsTriviallyIndependent) {
  Conjunction unsat({Constraint::Le(V("x") + V("y"), C(0)),
                     Constraint::Ge(V("x"), C(1)),
                     Constraint::Ge(V("y"), C(1))});
  EXPECT_TRUE(fm::AreIndependent(unsat, "x", "y"));
}

TEST(IndependenceTest, SplitByVariables) {
  Conjunction c({Constraint::Le(V("x"), C(1)), Constraint::Ge(V("y"), C(0)),
                 Constraint::Le(V("x") + V("y"), C(5)),
                 Constraint::Le(V("z"), C(9))});
  auto split = fm::SplitByVariables(c, "x", "y");
  EXPECT_EQ(split.x_only.size(), 2u) << "x bound + the z member";
  EXPECT_EQ(split.y_only.size(), 2u) << "y bound + the z member";
  EXPECT_EQ(split.coupled.size(), 1u);
}

TEST(IndependenceTest, RelationLevelCheck) {
  Schema schema = Schema::Make({Schema::ConstraintRational("x"),
                                Schema::ConstraintRational("y")})
                      .value();
  Relation boxes(schema);
  Tuple box;
  box.AddConstraint(Constraint::Ge(V("x"), C(0)));
  box.AddConstraint(Constraint::Le(V("x"), C(1)));
  box.AddConstraint(Constraint::Ge(V("y"), C(0)));
  box.AddConstraint(Constraint::Le(V("y"), C(1)));
  ASSERT_TRUE(boxes.Insert(box).ok());
  EXPECT_TRUE(cqa::AreAttributesIndependent(boxes, "x", "y"));

  Tuple diagonal;
  diagonal.AddConstraint(Constraint::Eq(V("x"), V("y")));
  diagonal.AddConstraint(Constraint::Ge(V("x"), C(0)));
  diagonal.AddConstraint(Constraint::Le(V("x"), C(1)));
  ASSERT_TRUE(boxes.Insert(diagonal).ok());
  EXPECT_FALSE(cqa::AreAttributesIndependent(boxes, "x", "y"))
      << "one coupled tuple breaks relation-level independence";
}

TEST(IndependenceTest, RelationalAttributeAlwaysIndependent) {
  // §3.2: "if an attribute is known to be relational, it is automatically
  // independent of all other attributes."
  Schema schema = Schema::Make({Schema::RelationalRational("x"),
                                Schema::ConstraintRational("y")})
                      .value();
  Relation rel(schema);
  EXPECT_TRUE(cqa::AreAttributesIndependent(rel, "x", "y"));
  EXPECT_FALSE(cqa::AreAttributesIndependent(rel, "x", "nope"));
}

}  // namespace
}  // namespace ccdb
