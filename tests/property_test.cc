// Parameterized property suites: randomized invariants swept over sizes,
// dimensions, and seeds with INSTANTIATE_TEST_SUITE_P.

#include <cmath>

#include <gtest/gtest.h>

#include "ccdb.h"

namespace ccdb {
namespace {

LinearExpr V(const std::string& n) { return LinearExpr::Variable(n); }
LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

// --- BigInt: division identities over magnitude ranges -------------------------

class BigIntDivisionProperty
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(BigIntDivisionProperty, QuotientRemainderIdentity) {
  auto [dividend_digits, divisor_digits, seed] = GetParam();
  Rng rng(seed);
  for (int iter = 0; iter < 50; ++iter) {
    std::string a_text, b_text;
    for (int i = 0; i < dividend_digits; ++i) {
      a_text += static_cast<char>('0' + rng.UniformInt(i ? 0 : 1, 9));
    }
    for (int i = 0; i < divisor_digits; ++i) {
      b_text += static_cast<char>('0' + rng.UniformInt(i ? 0 : 1, 9));
    }
    if (rng.UniformInt(0, 1)) a_text.insert(0, "-");
    if (rng.UniformInt(0, 1)) b_text.insert(0, "-");
    BigInt a = BigInt::FromString(a_text).value();
    BigInt b = BigInt::FromString(b_text).value();
    ASSERT_FALSE(b.IsZero());
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    // Euclid: a = qb + r, |r| < |b|, sign(r) in {0, sign(a)}.
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.Abs().Compare(b.Abs()), 0);
    if (!r.IsZero()) EXPECT_EQ(r.Sign(), a.Sign());
    // Gcd divides both.
    BigInt g = BigInt::Gcd(a, b);
    EXPECT_TRUE((a % g).IsZero());
    EXPECT_TRUE((b % g).IsZero());
    // String round-trip.
    EXPECT_EQ(BigInt::FromString(a.ToString()).value(), a);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MagnitudeSweep, BigIntDivisionProperty,
    ::testing::Values(std::tuple{5, 3, 1}, std::tuple{12, 9, 2},
                      std::tuple{25, 10, 3}, std::tuple{40, 20, 4},
                      std::tuple{60, 35, 5}, std::tuple{30, 30, 6}),
    [](const auto& info) {
      return "a" + std::to_string(std::get<0>(info.param)) + "_b" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// --- Fourier-Motzkin: projection soundness/completeness over shapes -------------

struct FmCase {
  int vars;
  int constraints;
  uint64_t seed;
};

class FmProjectionProperty : public ::testing::TestWithParam<FmCase> {};

TEST_P(FmProjectionProperty, ProjectionIsExact) {
  const FmCase param = GetParam();
  Rng rng(param.seed);
  std::vector<std::string> names;
  for (int v = 0; v < param.vars; ++v) {
    names.push_back("v" + std::to_string(v));
  }
  for (int iter = 0; iter < 25; ++iter) {
    Conjunction c;
    for (int i = 0; i < param.constraints; ++i) {
      LinearExpr e;
      for (const std::string& name : names) {
        e.AddTerm(name, Rational(rng.UniformInt(-2, 2)));
      }
      e.AddConstant(Rational(rng.UniformInt(-8, 8)));
      int op = static_cast<int>(rng.UniformInt(0, 2));
      c.Add(Constraint(std::move(e), op == 0   ? ConstraintOp::kLe
                                      : op == 1 ? ConstraintOp::kLt
                                                : ConstraintOp::kEq));
    }
    // Project away the last variable.
    const std::string& gone = names.back();
    std::set<std::string> keep(names.begin(), names.end() - 1);
    Conjunction projected = fm::Project(c, keep);
    EXPECT_FALSE(projected.Mentions(gone));

    for (int s = 0; s < 10; ++s) {
      Assignment full, partial;
      for (const std::string& name : names) {
        Rational value(rng.UniformInt(-10, 10), rng.UniformInt(1, 3));
        full[name] = value;
        if (name != gone) partial[name] = value;
      }
      // Soundness: a satisfying full point restricts to a satisfying
      // partial point.
      if (c.IsSatisfiedBy(full)) {
        EXPECT_TRUE(projected.IsSatisfiedBy(partial));
      }
      // Completeness: a satisfying partial point extends to some value of
      // the eliminated variable.
      if (projected.IsSatisfiedBy(partial)) {
        Conjunction pinned = c;
        for (const auto& [name, value] : partial) {
          pinned = pinned.Substitute(name, LinearExpr::Constant(value));
        }
        EXPECT_TRUE(fm::IsSatisfiable(pinned));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, FmProjectionProperty,
    ::testing::Values(FmCase{2, 3, 11}, FmCase{2, 6, 12}, FmCase{3, 4, 13},
                      FmCase{3, 8, 14}, FmCase{4, 5, 15}, FmCase{4, 9, 16}),
    [](const auto& info) {
      return "v" + std::to_string(info.param.vars) + "_c" +
             std::to_string(info.param.constraints) + "_s" +
             std::to_string(info.param.seed);
    });

// --- RemoveRedundant: equivalence preserved over shapes --------------------------

class FmRedundancyProperty : public ::testing::TestWithParam<FmCase> {};

TEST_P(FmRedundancyProperty, MinimizationPreservesSemantics) {
  const FmCase param = GetParam();
  Rng rng(param.seed * 7919);
  for (int iter = 0; iter < 15; ++iter) {
    Conjunction c;
    for (int i = 0; i < param.constraints; ++i) {
      LinearExpr e;
      for (int v = 0; v < param.vars; ++v) {
        e.AddTerm("v" + std::to_string(v), Rational(rng.UniformInt(-2, 2)));
      }
      e.AddConstant(Rational(rng.UniformInt(-8, 8)));
      c.Add(Constraint(std::move(e), rng.UniformInt(0, 1)
                                         ? ConstraintOp::kLe
                                         : ConstraintOp::kLt));
    }
    Conjunction reduced = fm::RemoveRedundant(c);
    EXPECT_LE(reduced.size(), c.size());
    EXPECT_TRUE(fm::AreEquivalent(c, reduced))
        << c.ToString() << "  vs  " << reduced.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(ShapeSweep, FmRedundancyProperty,
                         ::testing::Values(FmCase{2, 4, 1}, FmCase{2, 8, 2},
                                           FmCase{3, 6, 3}, FmCase{3, 10, 4}),
                         [](const auto& info) {
                           return "v" + std::to_string(info.param.vars) +
                                  "_c" +
                                  std::to_string(info.param.constraints) +
                                  "_s" + std::to_string(info.param.seed);
                         });

// --- R*-tree: invariants + exactness over dims / sizes / caches ------------------

struct TreeCase {
  int dims;
  int entries;
  size_t cache_pages;
  uint64_t seed;
};

class RTreeProperty : public ::testing::TestWithParam<TreeCase> {};

TEST_P(RTreeProperty, InvariantsAndExactSearch) {
  const TreeCase param = GetParam();
  PageManager disk;
  BufferPool pool(&disk, param.cache_pages);
  RStarTree tree(&pool, param.dims);
  Rng rng(param.seed);
  auto random_box = [&]() {
    double x = static_cast<double>(rng.UniformInt(0, 3000));
    double w = static_cast<double>(rng.UniformInt(1, 100));
    if (param.dims == 1) return Rect::Make1D(x, x + w);
    double y = static_cast<double>(rng.UniformInt(0, 3000));
    double h = static_cast<double>(rng.UniformInt(1, 100));
    if (param.dims == 2) return Rect::Make2D(x, x + w, y, y + h);
    double z = static_cast<double>(rng.UniformInt(0, 3000));
    double d = static_cast<double>(rng.UniformInt(1, 100));
    return Rect::Make3D(x, x + w, y, y + h, z, z + d);
  };
  std::vector<Rect> boxes;
  for (int i = 0; i < param.entries; ++i) {
    boxes.push_back(random_box());
    ASSERT_TRUE(tree.Insert(boxes.back(), static_cast<uint64_t>(i)).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int q = 0; q < 20; ++q) {
    Rect query = random_box();
    auto hits = tree.Search(query);
    ASSERT_TRUE(hits.ok());
    std::vector<uint64_t> got = *hits;
    std::sort(got.begin(), got.end());
    std::vector<uint64_t> expected;
    for (size_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].Intersects(query)) expected.push_back(i);
    }
    EXPECT_EQ(got, expected);
  }
  // Delete a third, re-verify.
  for (int i = 0; i < param.entries; i += 3) {
    ASSERT_TRUE(tree.Delete(boxes[static_cast<size_t>(i)],
                            static_cast<uint64_t>(i))
                    .ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(
    DimsSizesCaches, RTreeProperty,
    ::testing::Values(TreeCase{1, 300, 0, 1}, TreeCase{1, 1500, 8, 2},
                      TreeCase{2, 300, 0, 3}, TreeCase{2, 1500, 8, 4},
                      TreeCase{2, 3000, 0, 5}, TreeCase{2, 800, 2, 6},
                      TreeCase{3, 400, 0, 7}, TreeCase{3, 1500, 8, 8}),
    [](const auto& info) {
      return std::to_string(info.param.dims) + "d_n" +
             std::to_string(info.param.entries) + "_c" +
             std::to_string(info.param.cache_pages) + "_s" +
             std::to_string(info.param.seed);
    });

// --- CQA operators: closure semantics over seeds ---------------------------------

class OperatorClosureProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OperatorClosureProperty, AlgebraMatchesPointSemantics) {
  Rng rng(GetParam());
  Schema schema = Schema::Make({Schema::ConstraintRational("x"),
                                Schema::ConstraintRational("y")})
                      .value();
  auto random_relation = [&]() {
    Relation rel(schema);
    int n = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < n; ++i) {
      Tuple t;
      int m = static_cast<int>(rng.UniformInt(1, 3));
      for (int j = 0; j < m; ++j) {
        LinearExpr e = V("x") * Rational(rng.UniformInt(-2, 2)) +
                       V("y") * Rational(rng.UniformInt(-2, 2)) +
                       C(rng.UniformInt(-5, 5));
        t.AddConstraint(Constraint(
            std::move(e), rng.UniformInt(0, 1) ? ConstraintOp::kLe
                                               : ConstraintOp::kLt));
      }
      EXPECT_TRUE(rel.Insert(std::move(t)).ok());
    }
    return rel;
  };
  for (int iter = 0; iter < 15; ++iter) {
    Relation r1 = random_relation();
    Relation r2 = random_relation();
    auto joined = cqa::NaturalJoin(r1, r2);
    auto united = cqa::Union(r1, r2);
    auto diffed = cqa::Difference(r1, r2);
    ASSERT_TRUE(joined.ok() && united.ok() && diffed.ok());
    for (int s = 0; s < 20; ++s) {
      PointRow p{{},
                 {{"x", Rational(rng.UniformInt(-7, 7), rng.UniformInt(1, 2))},
                  {"y", Rational(rng.UniformInt(-7, 7),
                                 rng.UniformInt(1, 2))}}};
      bool in1 = r1.ContainsPoint(p);
      bool in2 = r2.ContainsPoint(p);
      EXPECT_EQ(joined->ContainsPoint(p), in1 && in2);
      EXPECT_EQ(united->ContainsPoint(p), in1 || in2);
      EXPECT_EQ(diffed->ContainsPoint(p), in1 && !in2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, OperatorClosureProperty,
                         ::testing::Values(101, 202, 303, 404, 505),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- Geometry: conversion round-trips over polygon families ----------------------

class ConvexRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConvexRoundTripProperty, RingThroughConstraintsAndBack) {
  const int sides = GetParam();
  // A convex polygon on a circle of radius 100 with exact rational-ish
  // vertices (rounded to integers, deduplicated by construction).
  std::vector<geom::Point> ring;
  for (int i = 0; i < sides; ++i) {
    double angle = 2.0 * 3.14159265358979 * i / sides;
    int64_t x = static_cast<int64_t>(100.0 * std::cos(angle) * 100);
    int64_t y = static_cast<int64_t>(100.0 * std::sin(angle) * 100);
    ring.emplace_back(x, y);
  }
  auto hull = geom::ConvexHull(ring);
  ASSERT_GE(hull.size(), 3u);
  auto polygon = geom::Polygon::Make(hull);
  ASSERT_TRUE(polygon.ok()) << polygon.status().ToString();

  Conjunction c = geom::ConvexRingToConjunction(polygon->vertices(), "x", "y");
  auto back = geom::ConjunctionToRegion(c, "x", "y");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->kind(), geom::ConvexRegion::Kind::kPolygon);
  EXPECT_EQ(back->polygon().Area(), polygon->Area());
  EXPECT_EQ(back->polygon().size(), polygon->size());
}

INSTANTIATE_TEST_SUITE_P(SideCounts, ConvexRoundTripProperty,
                         ::testing::Values(3, 4, 5, 6, 8, 12, 20),
                         [](const auto& info) {
                           return "sides" + std::to_string(info.param);
                         });

// --- Storage: serialization fuzz over record shapes -------------------------------

class SerdeFuzzProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerdeFuzzProperty, RandomTuplesRoundTrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    Tuple t;
    int values = static_cast<int>(rng.UniformInt(0, 3));
    for (int i = 0; i < values; ++i) {
      std::string name = "a" + std::to_string(i);
      if (rng.UniformInt(0, 1)) {
        std::string s;
        int len = static_cast<int>(rng.UniformInt(0, 20));
        for (int k = 0; k < len; ++k) {
          s += static_cast<char>(rng.UniformInt(32, 126));
        }
        t.SetValue(name, Value::String(s));
      } else {
        t.SetValue(name, Value::Number(Rational(rng.UniformInt(-1000, 1000),
                                                rng.UniformInt(1, 999))));
      }
    }
    int constraints = static_cast<int>(rng.UniformInt(0, 4));
    for (int i = 0; i < constraints; ++i) {
      LinearExpr e = V("x") * Rational(rng.UniformInt(-9, 9),
                                       rng.UniformInt(1, 9)) +
                     V("y") * Rational(rng.UniformInt(-9, 9)) +
                     C(rng.UniformInt(-100, 100));
      int op = static_cast<int>(rng.UniformInt(0, 2));
      t.AddConstraint(Constraint(std::move(e), op == 0 ? ConstraintOp::kLe
                                               : op == 1 ? ConstraintOp::kLt
                                                         : ConstraintOp::kEq));
    }
    auto back = DeserializeTuple(SerializeTuple(t));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, t);
  }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, SerdeFuzzProperty,
                         ::testing::Values(9001, 9002, 9003, 9004),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- Truncation fuzz: corrupt records must fail cleanly, never crash -------------

class SerdeTruncationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerdeTruncationProperty, TruncatedAndCorruptedRecordsFailCleanly) {
  Rng rng(GetParam());
  Tuple t;
  t.SetValue("name", Value::String("truncate-me"));
  t.AddConstraint(Constraint::Le(V("x") + V("y"), C(10)));
  auto bytes = SerializeTuple(t);
  // Every strict prefix either fails or (rarely) parses to some tuple —
  // but must never crash or loop.
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> prefix(bytes.begin(),
                                bytes.begin() + static_cast<ptrdiff_t>(len));
    auto result = DeserializeTuple(prefix);
    if (result.ok()) {
      // Acceptable only if a shorter valid encoding exists; record it.
      SUCCEED();
    }
  }
  // Random single-byte corruptions.
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<uint8_t> corrupt = bytes;
    size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(corrupt.size()) - 1));
    corrupt[pos] ^= static_cast<uint8_t>(rng.UniformInt(1, 255));
    auto result = DeserializeTuple(corrupt);  // must not crash
    (void)result;
  }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, SerdeTruncationProperty,
                         ::testing::Values(31, 32),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ccdb
