#include "geom/convert.h"

#include <gtest/gtest.h>

#include "constraint/fourier_motzkin.h"
#include "util/random.h"

namespace ccdb::geom {
namespace {

LinearExpr X() { return LinearExpr::Variable("x"); }
LinearExpr Y() { return LinearExpr::Variable("y"); }
LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

Polygon MustMake(std::vector<Point> ring) {
  auto p = Polygon::Make(std::move(ring));
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return p.value();
}

// --- geometry -> constraints ---------------------------------------------------

TEST(ConvertTest, ConvexRingToConjunctionMatchesContainment) {
  Polygon tri = MustMake({Point(0, 0), Point(4, 0), Point(0, 4)});
  Conjunction c = ConvexRingToConjunction(tri.vertices(), "x", "y");
  EXPECT_EQ(c.size(), 3u);
  Rng rng(21);
  for (int i = 0; i < 300; ++i) {
    Point p(Rational(rng.UniformInt(-2, 10), 2),
            Rational(rng.UniformInt(-2, 10), 2));
    EXPECT_EQ(tri.Contains(p),
              c.IsSatisfiedBy({{"x", p.x}, {"y", p.y}}))
        << p.ToString();
  }
}

TEST(ConvertTest, PolygonToConstraintTuplesCoversConcaveShape) {
  Polygon l = MustMake({Point(0, 0), Point(4, 0), Point(4, 2), Point(2, 2),
                        Point(2, 4), Point(0, 4)});
  auto tuples = PolygonToConstraintTuples(l, "x", "y");
  ASSERT_GE(tuples.size(), 2u);
  Rng rng(22);
  for (int i = 0; i < 300; ++i) {
    Point p(Rational(rng.UniformInt(-4, 20), 4),
            Rational(rng.UniformInt(-4, 20), 4));
    bool in_any = false;
    for (const Conjunction& t : tuples) {
      if (t.IsSatisfiedBy({{"x", p.x}, {"y", p.y}})) {
        in_any = true;
        break;
      }
    }
    EXPECT_EQ(l.Contains(p), in_any) << p.ToString();
  }
}

TEST(ConvertTest, SegmentToConjunctionIsThePaperEncoding) {
  // §6.2: one tuple per segment — the collinear line plus endpoint bounds.
  Segment s(Point(0, 0), Point(4, 2));
  Conjunction c = SegmentToConjunction(s, "x", "y");
  // Exactly the points of the segment satisfy it.
  EXPECT_TRUE(c.IsSatisfiedBy({{"x", Rational(2)}, {"y", Rational(1)}}));
  EXPECT_TRUE(c.IsSatisfiedBy({{"x", Rational(0)}, {"y", Rational(0)}}));
  EXPECT_TRUE(c.IsSatisfiedBy({{"x", Rational(4)}, {"y", Rational(2)}}));
  EXPECT_FALSE(c.IsSatisfiedBy({{"x", Rational(2)}, {"y", Rational(2)}}));
  EXPECT_FALSE(c.IsSatisfiedBy({{"x", Rational(6)}, {"y", Rational(3)}}))
      << "beyond the endpoint";
  EXPECT_FALSE(c.IsSatisfiedBy({{"x", Rational(-2)}, {"y", Rational(-1)}}));
}

TEST(ConvertTest, VerticalSegmentConjunction) {
  Segment s(Point(2, 0), Point(2, 5));
  Conjunction c = SegmentToConjunction(s, "x", "y");
  EXPECT_TRUE(c.IsSatisfiedBy({{"x", Rational(2)}, {"y", Rational(3)}}));
  EXPECT_FALSE(c.IsSatisfiedBy({{"x", Rational(2)}, {"y", Rational(6)}}));
  EXPECT_FALSE(c.IsSatisfiedBy({{"x", Rational(3)}, {"y", Rational(3)}}));
}

TEST(ConvertTest, PointToConjunction) {
  Conjunction c = PointToConjunction(Point(Rational(1, 2), Rational(3)), "x", "y");
  EXPECT_TRUE(c.IsSatisfiedBy({{"x", Rational(1, 2)}, {"y", Rational(3)}}));
  EXPECT_FALSE(c.IsSatisfiedBy({{"x", Rational(1, 2)}, {"y", Rational(4)}}));
}

TEST(ConvertTest, PolylineToConstraintTuplesOnePerSegment) {
  Polyline line({Point(0, 0), Point(2, 0), Point(2, 3)});
  auto tuples = PolylineToConstraintTuples(line, "x", "y");
  EXPECT_EQ(tuples.size(), 2u);
}

// --- constraints -> geometry -----------------------------------------------------

TEST(ConvertTest, ConjunctionToRegionPolygon) {
  // Triangle: x >= 0, y >= 0, x + y <= 2.
  Conjunction tri({Constraint::Ge(X(), C(0)), Constraint::Ge(Y(), C(0)),
                   Constraint::Le(X() + Y(), C(2))});
  auto region = ConjunctionToRegion(tri, "x", "y");
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  ASSERT_EQ(region->kind(), ConvexRegion::Kind::kPolygon);
  EXPECT_EQ(region->polygon().Area(), Rational(2));
  EXPECT_EQ(region->polygon().size(), 3u);
}

TEST(ConvertTest, ConjunctionToRegionSegment) {
  Conjunction seg({Constraint::Eq(X(), C(1)), Constraint::Ge(Y(), C(0)),
                   Constraint::Le(Y(), C(2))});
  auto region = ConjunctionToRegion(seg, "x", "y");
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  ASSERT_EQ(region->kind(), ConvexRegion::Kind::kSegment);
  Box box = region->BoundingBox();
  EXPECT_EQ(box, Box::FromCorners(Point(1, 0), Point(1, 2)));
}

TEST(ConvertTest, ConjunctionToRegionPoint) {
  Conjunction pt({Constraint::Eq(X(), C(3)), Constraint::Eq(Y(), C(4))});
  auto region = ConjunctionToRegion(pt, "x", "y");
  ASSERT_TRUE(region.ok());
  ASSERT_EQ(region->kind(), ConvexRegion::Kind::kPoint);
  EXPECT_EQ(region->point(), Point(3, 4));
}

TEST(ConvertTest, ConjunctionToRegionRejectsUnboundedAndUnsat) {
  Conjunction unbounded({Constraint::Ge(X(), C(0)), Constraint::Ge(Y(), C(0))});
  auto r1 = ConjunctionToRegion(unbounded, "x", "y");
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kUnsupported);

  Conjunction unsat({Constraint::Le(X(), C(0)), Constraint::Ge(X(), C(1))});
  auto r2 = ConjunctionToRegion(unsat, "x", "y");
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  Conjunction extra_var({Constraint::Le(X(), C(1)),
                         Constraint::Ge(X(), C(0)),
                         Constraint::Eq(LinearExpr::Variable("t"), C(0))});
  EXPECT_FALSE(ConjunctionToRegion(extra_var, "x", "y").ok());
}

TEST(ConvertTest, RoundTripPolygonThroughConstraints) {
  Polygon pentagon = MustMake({Point(0, 0), Point(4, 0), Point(5, 2),
                               Point(2, 4), Point(-1, 2)});
  Conjunction c = ConvexRingToConjunction(pentagon.vertices(), "x", "y");
  auto region = ConjunctionToRegion(c, "x", "y");
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  ASSERT_EQ(region->kind(), ConvexRegion::Kind::kPolygon);
  EXPECT_EQ(region->polygon().Area(), pentagon.Area());
  EXPECT_EQ(region->polygon().size(), pentagon.size());
}

TEST(ConvertTest, RoundTripSegmentThroughConstraints) {
  Segment s(Point(1, 1), Point(5, 3));
  auto region = ConjunctionToRegion(SegmentToConjunction(s, "x", "y"), "x", "y");
  ASSERT_TRUE(region.ok());
  ASSERT_EQ(region->kind(), ConvexRegion::Kind::kSegment);
  EXPECT_EQ(region->segment().BoundingBox(), s.BoundingBox());
}

TEST(ConvertTest, StrictConstraintsAreClosed) {
  // Open square (0,2)x(0,2): region is its closure.
  Conjunction open_sq({Constraint::Gt(X(), C(0)), Constraint::Lt(X(), C(2)),
                       Constraint::Gt(Y(), C(0)), Constraint::Lt(Y(), C(2))});
  auto region = ConjunctionToRegion(open_sq, "x", "y");
  ASSERT_TRUE(region.ok());
  ASSERT_EQ(region->kind(), ConvexRegion::Kind::kPolygon);
  EXPECT_EQ(region->polygon().Area(), Rational(4));
}

// --- region distances -------------------------------------------------------------

TEST(ConvertTest, RegionDistancesAllKindPairs) {
  ConvexRegion p = ConvexRegion::MakePoint(Point(0, 0));
  ConvexRegion s = ConvexRegion::MakeSegment(Segment(Point(3, 0), Point(3, 4)));
  ConvexRegion poly = ConvexRegion::MakePolygon(
      MustMake({Point(5, 0), Point(7, 0), Point(7, 2), Point(5, 2)}));
  EXPECT_EQ(SquaredDistance(p, p), Rational(0));
  EXPECT_EQ(SquaredDistance(p, s), Rational(9));
  EXPECT_EQ(SquaredDistance(s, p), Rational(9));
  EXPECT_EQ(SquaredDistance(p, poly), Rational(25));
  EXPECT_EQ(SquaredDistance(poly, p), Rational(25));
  EXPECT_EQ(SquaredDistance(s, poly), Rational(4));
  EXPECT_EQ(SquaredDistance(poly, s), Rational(4));
  EXPECT_EQ(SquaredDistance(poly, poly), Rational(0));
}

TEST(ConvertTest, ConstraintDistanceMatchesGeometricDistance) {
  // Distance between two constraint tuples equals the distance between the
  // regions they denote — the bridge the whole-feature operators rely on.
  Conjunction a({Constraint::Ge(X(), C(0)), Constraint::Le(X(), C(1)),
                 Constraint::Ge(Y(), C(0)), Constraint::Le(Y(), C(1))});
  Conjunction b({Constraint::Ge(X(), C(4)), Constraint::Le(X(), C(5)),
                 Constraint::Ge(Y(), C(4)), Constraint::Le(Y(), C(5))});
  auto ra = ConjunctionToRegion(a, "x", "y");
  auto rb = ConjunctionToRegion(b, "x", "y");
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(SquaredDistance(*ra, *rb), Rational(18));
}

}  // namespace
}  // namespace ccdb::geom
