#include "data/relation.h"

#include <gtest/gtest.h>

#include "data/database.h"
#include "data/workload.h"

namespace ccdb {
namespace {

LinearExpr V(const std::string& n) { return LinearExpr::Variable(n); }
LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

Schema MixedSchema() {
  return Schema::Make({Schema::RelationalString("name"),
                       Schema::ConstraintRational("t")})
      .value();
}

// --- Value ---------------------------------------------------------------------

TEST(ValueTest, NullSemantics) {
  Value null = Value::Null();
  EXPECT_TRUE(null.IsNull());
  // Narrow query equality: null equals nothing, not even null.
  EXPECT_FALSE(null.EqualsForQuery(null));
  EXPECT_FALSE(null.EqualsForQuery(Value::Number(1)));
  // Representation identity: null == null.
  EXPECT_EQ(null, Value::Null());
}

TEST(ValueTest, TypedValues) {
  Value s = Value::String("A");
  Value n = Value::Number(Rational(7, 2));
  EXPECT_TRUE(s.IsString());
  EXPECT_TRUE(n.IsNumber());
  EXPECT_EQ(s.AsString(), "A");
  EXPECT_EQ(n.AsNumber(), Rational(7, 2));
  EXPECT_TRUE(s.EqualsForQuery(Value::String("A")));
  EXPECT_FALSE(s.EqualsForQuery(Value::String("B")));
  EXPECT_FALSE(s.EqualsForQuery(n));
  EXPECT_TRUE(s.MatchesDomain(AttributeDomain::kString));
  EXPECT_FALSE(s.MatchesDomain(AttributeDomain::kRational));
  EXPECT_EQ(s.ToString(), "\"A\"");
  EXPECT_EQ(n.ToString(), "7/2");
}

// --- Tuple ---------------------------------------------------------------------

TEST(TupleTest, SetNullErases) {
  Tuple t;
  t.SetValue("a", Value::String("x"));
  EXPECT_FALSE(t.GetValue("a").IsNull());
  t.SetValue("a", Value::Null());
  EXPECT_TRUE(t.GetValue("a").IsNull());
  EXPECT_TRUE(t.values().empty());
}

TEST(TupleTest, MatchesPointHeterogeneous) {
  Schema schema = MixedSchema();
  Tuple t;
  t.SetValue("name", Value::String("Smith"));
  t.AddConstraint(Constraint::Ge(V("t"), C(4)));
  t.AddConstraint(Constraint::Le(V("t"), C(9)));

  PointRow inside{{{"name", Value::String("Smith")}}, {{"t", Rational(5)}}};
  EXPECT_TRUE(t.MatchesPoint(schema, inside));
  PointRow wrong_name{{{"name", Value::String("Jones")}},
                      {{"t", Rational(5)}}};
  EXPECT_FALSE(t.MatchesPoint(schema, wrong_name));
  PointRow outside_t{{{"name", Value::String("Smith")}},
                     {{"t", Rational(10)}}};
  EXPECT_FALSE(t.MatchesPoint(schema, outside_t));
}

TEST(TupleTest, MissingRelationalAttributeMatchesNothing) {
  // §3.1 narrow semantics: tuple with null name matches no point.
  Schema schema = MixedSchema();
  Tuple t;  // name missing
  t.AddConstraint(Constraint::Eq(V("t"), C(1)));
  PointRow p{{{"name", Value::String("anyone")}}, {{"t", Rational(1)}}};
  EXPECT_FALSE(t.MatchesPoint(schema, p));
}

TEST(TupleTest, UnconstrainedConstraintAttributeMatchesEverything) {
  // §3.1 broad semantics: unconstrained t admits every rational.
  Schema schema = MixedSchema();
  Tuple t;
  t.SetValue("name", Value::String("Smith"));
  for (int64_t v : {-1000000, 0, 42}) {
    PointRow p{{{"name", Value::String("Smith")}}, {{"t", Rational(v)}}};
    EXPECT_TRUE(t.MatchesPoint(schema, p)) << v;
  }
}

TEST(TupleTest, OrderingAndEquality) {
  Tuple a;
  a.SetValue("name", Value::String("A"));
  Tuple b;
  b.SetValue("name", Value::String("B"));
  EXPECT_NE(a, b);
  EXPECT_TRUE((a < b) != (b < a));
  Tuple a2;
  a2.SetValue("name", Value::String("A"));
  EXPECT_EQ(a, a2);
}

// --- Relation ---------------------------------------------------------------------

TEST(RelationTest, InsertValidatesAgainstSchema) {
  Relation rel(MixedSchema());

  Tuple bad_attr;
  bad_attr.SetValue("unknown", Value::String("x"));
  EXPECT_FALSE(rel.Insert(bad_attr).ok());

  Tuple value_on_constraint;
  value_on_constraint.SetValue("t", Value::Number(1));
  EXPECT_FALSE(rel.Insert(value_on_constraint).ok());

  Tuple wrong_domain;
  wrong_domain.SetValue("name", Value::Number(1));
  EXPECT_FALSE(rel.Insert(wrong_domain).ok());

  Tuple constraint_on_relational;
  constraint_on_relational.AddConstraint(
      Constraint::Eq(V("name"), C(1)));
  EXPECT_FALSE(rel.Insert(constraint_on_relational).ok());

  Tuple good;
  good.SetValue("name", Value::String("Smith"));
  good.AddConstraint(Constraint::Ge(V("t"), C(0)));
  EXPECT_TRUE(rel.Insert(good).ok());
  EXPECT_EQ(rel.size(), 1u);
}

TEST(RelationTest, InsertDropsSyntacticallyFalseTuple) {
  Relation rel(MixedSchema());
  Tuple t;
  t.SetValue("name", Value::String("S"));
  t.AddConstraint(Constraint::Le(C(1), C(0)));
  EXPECT_TRUE(rel.Insert(t).ok());
  EXPECT_EQ(rel.size(), 0u);
}

TEST(RelationTest, NormalizeDropsDeepUnsatAndMinimizes) {
  Relation rel(MixedSchema());
  Tuple unsat;
  unsat.AddConstraint(Constraint::Ge(V("t"), C(5)));
  unsat.AddConstraint(Constraint::Le(V("t"), C(1)));
  ASSERT_TRUE(rel.Insert(unsat).ok());
  EXPECT_EQ(rel.size(), 1u) << "deep unsat not caught at insert";

  Tuple redundant;
  redundant.AddConstraint(Constraint::Ge(V("t"), C(0)));
  redundant.AddConstraint(Constraint::Ge(V("t"), C(-5)));
  ASSERT_TRUE(rel.Insert(redundant).ok());

  rel.Normalize();
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel.tuples()[0].constraints().size(), 1u)
      << "redundant bound t >= -5 must be removed";
}

TEST(RelationTest, DeduplicateRemovesIdenticalRepresentations) {
  Relation rel(MixedSchema());
  for (int i = 0; i < 3; ++i) {
    Tuple t;
    t.SetValue("name", Value::String("same"));
    ASSERT_TRUE(rel.Insert(t).ok());
  }
  rel.Deduplicate();
  EXPECT_EQ(rel.size(), 1u);
}

TEST(RelationTest, ContainsPointOverMultipleTuples) {
  Relation rel(MixedSchema());
  Tuple t1;
  t1.SetValue("name", Value::String("A"));
  t1.AddConstraint(Constraint::Le(V("t"), C(0)));
  Tuple t2;
  t2.SetValue("name", Value::String("B"));
  t2.AddConstraint(Constraint::Ge(V("t"), C(10)));
  ASSERT_TRUE(rel.Insert(t1).ok());
  ASSERT_TRUE(rel.Insert(t2).ok());

  EXPECT_TRUE(rel.ContainsPoint(
      {{{"name", Value::String("A")}}, {{"t", Rational(-1)}}}));
  EXPECT_TRUE(rel.ContainsPoint(
      {{{"name", Value::String("B")}}, {{"t", Rational(11)}}}));
  EXPECT_FALSE(rel.ContainsPoint(
      {{{"name", Value::String("A")}}, {{"t", Rational(11)}}}));
  EXPECT_FALSE(rel.ContainsPoint(
      {{{"name", Value::String("C")}}, {{"t", Rational(0)}}}));
}

TEST(RelationTest, InsertAllRequiresSameSchema) {
  Relation a(MixedSchema());
  Relation b(Schema::Make({Schema::RelationalString("other")}).value());
  EXPECT_FALSE(a.InsertAll(b).ok());
}


TEST(RelationTest, RemoveSubsumedDropsContainedTuples) {
  Schema schema = Schema::Make({Schema::RelationalString("name"),
                                Schema::ConstraintRational("t")})
                      .value();
  Relation rel(schema);
  Tuple wide;  // t in [0, 10]
  wide.SetValue("name", Value::String("A"));
  wide.AddConstraint(Constraint::Ge(V("t"), C(0)));
  wide.AddConstraint(Constraint::Le(V("t"), C(10)));
  Tuple narrow;  // t in [2, 5] -- subsumed by wide
  narrow.SetValue("name", Value::String("A"));
  narrow.AddConstraint(Constraint::Ge(V("t"), C(2)));
  narrow.AddConstraint(Constraint::Le(V("t"), C(5)));
  Tuple other_name;  // same range, different relational part: kept
  other_name.SetValue("name", Value::String("B"));
  other_name.AddConstraint(Constraint::Ge(V("t"), C(2)));
  other_name.AddConstraint(Constraint::Le(V("t"), C(5)));
  ASSERT_TRUE(rel.Insert(wide).ok());
  ASSERT_TRUE(rel.Insert(narrow).ok());
  ASSERT_TRUE(rel.Insert(other_name).ok());

  rel.RemoveSubsumed();
  ASSERT_EQ(rel.size(), 2u);
  // Semantics unchanged.
  EXPECT_TRUE(rel.ContainsPoint(
      {{{"name", Value::String("A")}}, {{"t", Rational(3)}}}));
  EXPECT_TRUE(rel.ContainsPoint(
      {{{"name", Value::String("B")}}, {{"t", Rational(3)}}}));
  EXPECT_FALSE(rel.ContainsPoint(
      {{{"name", Value::String("B")}}, {{"t", Rational(9)}}}));
}

TEST(RelationTest, RemoveSubsumedKeepsOneOfEquivalentPair) {
  Schema schema =
      Schema::Make({Schema::ConstraintRational("t")}).value();
  Relation rel(schema);
  Tuple a;  // t >= 0 AND t <= 4
  a.AddConstraint(Constraint::Ge(V("t"), C(0)));
  a.AddConstraint(Constraint::Le(V("t"), C(4)));
  Tuple b;  // 2t >= 0 AND 2t <= 8: same set, different syntax after scale
  b.AddConstraint(Constraint::Ge(V("t") * Rational(2), C(0)));
  b.AddConstraint(Constraint::Le(V("t") + V("t"), C(8)));
  ASSERT_TRUE(rel.Insert(a).ok());
  ASSERT_TRUE(rel.Insert(b).ok());
  rel.RemoveSubsumed();
  EXPECT_EQ(rel.size(), 1u) << "mutually-subsuming tuples collapse to one";
}

TEST(RelationTest, RemoveSubsumedHandlesOverlapWithoutContainment) {
  Schema schema =
      Schema::Make({Schema::ConstraintRational("t")}).value();
  Relation rel(schema);
  Tuple a;  // [0, 5]
  a.AddConstraint(Constraint::Ge(V("t"), C(0)));
  a.AddConstraint(Constraint::Le(V("t"), C(5)));
  Tuple b;  // [3, 9] -- overlaps, neither contains the other
  b.AddConstraint(Constraint::Ge(V("t"), C(3)));
  b.AddConstraint(Constraint::Le(V("t"), C(9)));
  ASSERT_TRUE(rel.Insert(a).ok());
  ASSERT_TRUE(rel.Insert(b).ok());
  rel.RemoveSubsumed();
  EXPECT_EQ(rel.size(), 2u);
}

// --- Database ---------------------------------------------------------------------

TEST(DatabaseTest, CatalogLifecycle) {
  Database db;
  EXPECT_TRUE(db.Create("Land", Relation(MixedSchema())).ok());
  EXPECT_FALSE(db.Create("Land", Relation(MixedSchema())).ok());
  EXPECT_TRUE(db.Has("Land"));
  ASSERT_TRUE(db.Get("Land").ok());
  EXPECT_FALSE(db.Get("Sea").ok());
  db.CreateOrReplace("Land", Relation(MixedSchema()));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_TRUE(db.Drop("Land").ok());
  EXPECT_FALSE(db.Drop("Land").ok());
  EXPECT_EQ(db.size(), 0u);
}

TEST(DatabaseTest, NamesSorted) {
  Database db;
  ASSERT_TRUE(db.Create("b", Relation()).ok());
  ASSERT_TRUE(db.Create("a", Relation()).ok());
  EXPECT_EQ(db.Names(), (std::vector<std::string>{"a", "b"}));
}

// --- Workload generator ---------------------------------------------------------------

TEST(WorkloadTest, RectanglesMatchPaperParameters) {
  WorkloadParams params;
  auto boxes = GenerateRectangles(500, 1, params);
  ASSERT_EQ(boxes.size(), 500u);
  for (const geom::Box& b : boxes) {
    EXPECT_GE(b.Width(), Rational(1));
    EXPECT_LE(b.Width(), Rational(100));
    EXPECT_GE(b.Height(), Rational(1));
    EXPECT_LE(b.Height(), Rational(100));
    EXPECT_GE(b.x_min, Rational(0));
    EXPECT_LE(b.x_min, Rational(3000));
    EXPECT_LE(b.y_max, Rational(3000));
    EXPECT_GE(b.y_max, Rational(0));
  }
}

TEST(WorkloadTest, DeterministicAcrossCalls) {
  auto a = GenerateRectangles(50, 42);
  auto b = GenerateRectangles(50, 42);
  EXPECT_EQ(a, b);
  auto c = GenerateRectangles(50, 43);
  EXPECT_NE(a, c);
}

TEST(WorkloadTest, ConstraintRelationHoldsBoxes) {
  auto boxes = GenerateRectangles(20, 7);
  Relation rel = BoxesToConstraintRelation(boxes);
  ASSERT_EQ(rel.size(), 20u);
  EXPECT_EQ(rel.schema().Find("x")->kind, AttributeKind::kConstraint);
  // Tuple 0's semantics contain its box center and exclude far points.
  geom::Point center = boxes[0].Center();
  EXPECT_TRUE(rel.tuples()[0].MatchesPoint(
      rel.schema(), PointRow{{}, {{"x", center.x}, {"y", center.y}}}));
  EXPECT_FALSE(rel.tuples()[0].MatchesPoint(
      rel.schema(),
      PointRow{{}, {{"x", Rational(-10)}, {"y", Rational(-10)}}}));
}

TEST(WorkloadTest, RelationalRelationHoldsCenters) {
  auto boxes = GenerateRectangles(5, 7);
  Relation rel = BoxesToRelationalRelation(boxes);
  ASSERT_EQ(rel.size(), 5u);
  EXPECT_EQ(rel.schema().Find("x")->kind, AttributeKind::kRelational);
  EXPECT_EQ(rel.tuples()[0].GetValue("x").AsNumber(), boxes[0].Center().x);
}

TEST(WorkloadTest, MixedRelationSplitsKinds) {
  auto boxes = GenerateRectangles(5, 7);
  Relation rel = BoxesToMixedRelation(boxes);
  EXPECT_EQ(rel.schema().Find("x")->kind, AttributeKind::kConstraint);
  EXPECT_EQ(rel.schema().Find("y")->kind, AttributeKind::kRelational);
}

}  // namespace
}  // namespace ccdb
