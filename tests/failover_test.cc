// Tests for the failover & retry layer: replica promotion with leader-
// term fencing, idempotent COMMIT retries through the bounded dedup
// table, the retryable/fatal status taxonomy, ResilientClient reconnect
// behavior, backoff under a down leader, disconnect-abort accounting,
// graceful drain under in-flight commits, and the deterministic
// network-chaos matrix (drop / corrupt / cut / delay at every shipment
// index, then kill-the-leader and promote).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/workload.h"
#include "net/client.h"
#include "net/replica.h"
#include "net/resilient_client.h"
#include "net/server.h"
#include "net/status_server.h"
#include "net/wire.h"
#include "obs/event_log.h"
#include "obs/metric_names.h"
#include "obs/registry.h"
#include "service/query_service.h"
#include "storage/wal.h"
#include "util/backoff.h"
#include "util/socket.h"
#include "util/status.h"

namespace ccdb {
namespace {

Relation BoxRelation(size_t count, uint64_t seed) {
  WorkloadParams params;
  params.data_count = count;
  return BoxesToConstraintRelation(GenerateDataBoxes(seed, params));
}

/// A leader node: durable service + wire server, on an ephemeral or
/// caller-fixed port.
class Leader {
 public:
  explicit Leader(net::ShipFaults faults = {},
                  service::ServiceOptions sopts = {}, uint16_t port = 0) {
    EXPECT_TRUE(db_.Create("Boxes", BoxRelation(50, 7)).ok());
    auto store = DurableStore::Create(&disk_);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(*store);
    EXPECT_TRUE(store_->CommitCatalog(db_).ok());
    sopts.disk = &disk_;
    sopts.store = store_.get();
    service_ = std::make_unique<service::QueryService>(&db_, sopts);
    net::ServerOptions nopts;
    nopts.port = port;
    nopts.store = store_.get();
    nopts.ship_faults = faults;
    nopts.event_log = sopts.event_log;
    auto server = net::Server::Start(service_.get(), nopts);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  uint16_t port() const { return server_->port(); }
  service::QueryService* service() { return service_.get(); }
  net::Server* server() { return server_.get(); }

  /// The leader "crashes": stops serving, connections die.
  void Kill() { server_->Shutdown(); }

  std::unique_ptr<net::Client> Connect(net::ClientOptions copts = {}) {
    auto client = net::Client::Connect("127.0.0.1", port(), copts);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : nullptr;
  }

  void WaitSessionsDrained() {
    for (int i = 0; i < 1000; ++i) {
      if (service_->Metrics().sessions == 0) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    FAIL() << "sessions leaked: " << service_->Metrics().sessions;
  }

 private:
  Database db_;
  PageManager disk_;
  std::unique_ptr<DurableStore> store_;
  std::unique_ptr<service::QueryService> service_;
  std::unique_ptr<net::Server> server_;
};

/// A follower node: read-only service + paused (or continuous) replica,
/// optionally fronted by a read-only wire server whose promote handler
/// is wired to the replica.
class Follower {
 public:
  explicit Follower(uint16_t leader_port, net::ReplicaOptions opts = {}) {
    service_ = std::make_unique<service::QueryService>(&db_);
    auto replica =
        net::Replica::Start("127.0.0.1", leader_port, service_.get(), opts);
    EXPECT_TRUE(replica.ok()) << replica.status().ToString();
    if (replica.ok()) replica_ = std::move(*replica);
  }

  static net::ReplicaOptions Paused() {
    net::ReplicaOptions opts;
    opts.start_paused = true;
    return opts;
  }

  net::Replica* replica() { return replica_.get(); }
  service::QueryService* service() { return service_.get(); }

  /// Starts the read-only front-end with the promotion handler attached.
  net::Server* Front() {
    net::ServerOptions nopts;
    nopts.read_only = true;
    nopts.term = 0;
    nopts.server_name = "follower";
    nopts.promote_handler = [this]() -> Result<net::Promotion> {
      auto promoted = replica_->Promote();
      if (!promoted.ok()) return promoted.status();
      net::Promotion out;
      out.term = promoted->term;
      out.store = promoted->store;
      return out;
    };
    auto front = net::Server::Start(service_.get(), nopts);
    EXPECT_TRUE(front.ok()) << front.status().ToString();
    front_ = std::move(*front);
    return front_.get();
  }

  /// Drives sync until a round that ran entirely after this call reports
  /// caught-up (recovering from injected faults along the way). Uses
  /// WaitCaughtUp rather than polling stats().caught_up directly: the
  /// flag is latched by the last *successful* round, so after a faulted
  /// shipment it still says "caught up" about stale state.
  void SyncUntilCaughtUp() {
    Status caught = replica_->WaitCaughtUp(5000);
    EXPECT_TRUE(caught.ok()) << caught.ToString();
  }

 private:
  Database db_;
  std::unique_ptr<service::QueryService> service_;
  std::unique_ptr<net::Replica> replica_;
  std::unique_ptr<net::Server> front_;
};

/// One HTTP request/response over a raw socket (the status server is
/// close-delimited).
std::string HttpExchange(uint16_t port, const std::string& request) {
  auto sock = TcpConnect("127.0.0.1", port);
  EXPECT_TRUE(sock.ok());
  if (!sock.ok()) return "";
  EXPECT_TRUE(sock->SendAll(request.data(), request.size()).ok());
  sock->ShutdownSend();
  std::string response;
  char buf[2048];
  while (true) {
    auto got = sock->RecvSome(buf, sizeof(buf));
    if (!got.ok() || *got == 0) break;
    response.append(buf, *got);
  }
  return response;
}

std::string RelationText(service::QueryService* service,
                         const std::string& name) {
  const auto session = service->OpenSession();
  auto rel = service->GetRelation(session, name);
  EXPECT_TRUE(service->CloseSession(session).ok());
  if (!rel.ok()) return "<" + rel.status().ToString() + ">";
  return rel->ToString();
}

// ---------------------------------------------------------------------
// Promotion + fencing
// ---------------------------------------------------------------------

TEST(Failover, PromoteServesWritesUnderNewTerm) {
  Leader leader;
  Follower follower(leader.port(), Follower::Paused());
  ASSERT_TRUE(follower.replica()->SyncOnce().ok());
  ASSERT_TRUE(
      leader.service()->ReplaceRelation("Boxes", BoxRelation(31, 13)).ok());
  ASSERT_TRUE(follower.replica()->SyncOnce().ok());
  const std::string last_acked = RelationText(leader.service(), "Boxes");

  leader.Kill();
  auto promoted = follower.replica()->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  EXPECT_GE(promoted->term, 2u);
  ASSERT_NE(promoted->store, nullptr);

  // Everything replicated survived the failover, exactly once.
  EXPECT_EQ(RelationText(follower.service(), "Boxes"), last_acked);

  // The promoted service accepts (durable) writes.
  ASSERT_TRUE(
      follower.service()->ReplaceRelation("Boxes", BoxRelation(8, 99)).ok());
  EXPECT_GT(promoted->store->next_lsn(), 1u);

  // Promotion is idempotent, and further syncs are refused.
  auto again = follower.replica()->Promote();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->term, promoted->term);
  EXPECT_EQ(again->store, promoted->store);
  EXPECT_EQ(follower.replica()->SyncOnce().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Failover, WirePromoteFlipsFrontEndAndHealthz) {
  Leader leader;
  Follower follower(leader.port(), Follower::Paused());
  ASSERT_TRUE(follower.replica()->SyncOnce().ok());
  net::Server* front = follower.Front();

  auto client = net::Client::Connect("127.0.0.1", front->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->server_read_only());
  // Writes are refused with a typed, retryable status carrying a hint.
  Status refused = (*client)->LoadRelation("X", BoxRelation(3, 1));
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  EXPECT_GT(refused.retry_after_ms(), 0);
  EXPECT_TRUE(net::Client::Retryable(refused));

  leader.Kill();
  auto term = (*client)->Promote();
  ASSERT_TRUE(term.ok()) << term.status().ToString();
  EXPECT_GE(*term, 2u);
  EXPECT_FALSE(front->read_only());
  EXPECT_EQ(front->term(), *term);

  // Same connection now writes; a second PROMOTE is an idempotent echo.
  EXPECT_TRUE((*client)->LoadRelation("X", BoxRelation(3, 1)).ok());
  auto echo = (*client)->Promote();
  ASSERT_TRUE(echo.ok());
  EXPECT_EQ(*echo, *term);

  // A fresh handshake sees the new role and term; /healthz agrees.
  auto fresh = net::Client::Connect("127.0.0.1", front->port());
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE((*fresh)->server_read_only());
  EXPECT_EQ((*fresh)->server_term(), *term);

  net::StatusServerOptions sopts;
  sopts.replica = follower.replica();
  auto status = net::StatusServer::Start(front, sopts);
  ASSERT_TRUE(status.ok());
  const std::string body = HttpExchange(
      (*status)->port(), "GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n");
  EXPECT_NE(body.find("\"role\":\"leader\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"term\":" + std::to_string(*term)), std::string::npos)
      << body;
}

TEST(Failover, StaleLeaderIsFencedAtHello) {
  Leader leader;
  Follower follower(leader.port(), Follower::Paused());
  ASSERT_TRUE(follower.replica()->SyncOnce().ok());
  // Promote while the old leader still runs: the classic split-brain
  // setup. (The final drain keeps the promoted state identical.)
  auto promoted = follower.replica()->Promote();
  ASSERT_TRUE(promoted.ok());

  // A client that followed the promotion is refused by the stale leader.
  net::ClientOptions fenced;
  fenced.known_term = promoted->term;
  auto refused = net::Client::Connect("127.0.0.1", leader.port(), fenced);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(net::Client::Retryable(refused.status()));

  // A term-ignorant client still connects (reads keep working).
  auto legacy = net::Client::Connect("127.0.0.1", leader.port());
  EXPECT_TRUE(legacy.ok()) << legacy.status().ToString();
}

// ---------------------------------------------------------------------
// Idempotent COMMIT retries
// ---------------------------------------------------------------------

TEST(Failover, CommitRetryAfterLostAckReturnsOriginalOutcome) {
  Leader leader;
  auto client = leader.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Execute("BEGIN").ok());
  ASSERT_TRUE(client->LoadRelation("T", BoxRelation(12, 4)).ok());

  // Deliver the COMMIT but cut the connection before its ack arrives.
  service::QueryOptions opts;
  opts.request_id = 0x7777;
  SocketFaults faults;
  faults.cut_after_at = 1;
  client->SetSocketFaults(faults);
  auto lost = client->Execute("COMMIT", opts);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(net::Client::Retryable(lost.status()));
  leader.WaitSessionsDrained();

  // The retry — fresh connection, fresh session, no open transaction —
  // returns the original (applied) outcome instead of re-applying or
  // failing with "no transaction in progress".
  auto retry_client = leader.Connect();
  ASSERT_NE(retry_client, nullptr);
  auto retried = retry_client->Execute("COMMIT", opts);
  EXPECT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(RelationText(leader.service(), "T"),
            BoxRelation(12, 4).ToString());
  EXPECT_EQ(leader.service()->MetricsSnapshot().Value(
                obs::names::kTxnDedupHits),
            1u);
}

TEST(Failover, CommitRetryOnPromotedReplicaIsDeduplicated) {
  Leader leader;
  Follower follower(leader.port(), Follower::Paused());
  ASSERT_TRUE(follower.replica()->SyncOnce().ok());
  net::Server* front = follower.Front();

  auto client = leader.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Execute("BEGIN").ok());
  ASSERT_TRUE(client->LoadRelation("T", BoxRelation(9, 5)).ok());
  service::QueryOptions opts;
  opts.request_id = 0x31337;
  ASSERT_TRUE(client->Execute("COMMIT", opts).ok());  // acked by old leader

  // The batch — request id included — ships before the leader dies.
  follower.SyncUntilCaughtUp();
  leader.Kill();
  auto failover = net::Client::Connect("127.0.0.1", front->port());
  ASSERT_TRUE(failover.ok());
  ASSERT_TRUE((*failover)->Promote().ok());

  // Retrying the already-acked COMMIT against the new leader hits the
  // dedup table seeded from the applied WAL batches: original outcome,
  // no double-apply, no "no transaction in progress" surprise.
  auto retried = (*failover)->Execute("COMMIT", opts);
  EXPECT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_GE(follower.service()->MetricsSnapshot().Value(
                obs::names::kTxnDedupHits),
            1u);
  EXPECT_EQ(RelationText(follower.service(), "T"),
            BoxRelation(9, 5).ToString());
}

TEST(Failover, UnshippedCommitLossIsTypedNotSilent) {
  Leader leader;
  Follower follower(leader.port(), Follower::Paused());
  ASSERT_TRUE(follower.replica()->SyncOnce().ok());
  net::Server* front = follower.Front();

  auto client = leader.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Execute("BEGIN").ok());
  ASSERT_TRUE(client->LoadRelation("T", BoxRelation(9, 5)).ok());
  service::QueryOptions opts;
  opts.request_id = 0x5150;
  ASSERT_TRUE(client->Execute("COMMIT", opts).ok());

  // Kill the leader BEFORE the batch ships: the tail is lost.
  leader.Kill();
  auto failover = net::Client::Connect("127.0.0.1", front->port());
  ASSERT_TRUE(failover.ok());
  ASSERT_TRUE((*failover)->Promote().ok());

  // A retry of the lost COMMIT is refused with a typed error — the
  // client learns the transaction must be re-staged; nothing pretends
  // it survived.
  auto retried = (*failover)->Execute("COMMIT", opts);
  ASSERT_FALSE(retried.ok());
  EXPECT_EQ(retried.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(RelationText(follower.service(), "T").find("NotFound"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Retry taxonomy + ResilientClient
// ---------------------------------------------------------------------

TEST(Failover, RetryTaxonomySeparatesTransportFromProtocol) {
  Leader leader;
  {
    // Protocol corruption (client's own frame fails the server CRC):
    // fatal, not retryable.
    auto client = leader.Connect();
    ASSERT_NE(client, nullptr);
    SocketFaults faults;
    faults.corrupt_at = 1;
    client->SetSocketFaults(faults);
    auto result = client->Execute("R0 = select x >= 0 from Boxes");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_FALSE(net::Client::Retryable(result.status()));
  }
  {
    // Transport loss (peer vanishes): retryable kUnavailable.
    auto client = leader.Connect();
    ASSERT_NE(client, nullptr);
    leader.Kill();
    auto result = client->Execute("R0 = select x >= 0 from Boxes");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
    EXPECT_TRUE(net::Client::Retryable(result.status()));
  }
}

TEST(Failover, RecvTimeoutSurfacesAsRetryableUnavailable) {
  Leader leader;
  Follower follower(leader.port(), Follower::Paused());
  ASSERT_TRUE(follower.replica()->SyncOnce().ok());
  net::Server* front = follower.Front();
  auto client = net::Client::Connect("127.0.0.1", front->port());
  ASSERT_TRUE(client.ok());
  // Drop the outgoing request frame entirely: the reply never comes and
  // the bounded wait converts the silence into a retryable status.
  ASSERT_TRUE((*client)->SetRecvTimeout(50).ok());
  SocketFaults faults;
  faults.drop_at = 1;
  (*client)->SetSocketFaults(faults);
  auto result = (*client)->Execute("R0 = select x >= 0 from Boxes");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(net::Client::Retryable(result.status()));
}

TEST(Failover, ResilientClientReconnectsAcrossServerRestart) {
  auto first = std::make_unique<Leader>();
  const uint16_t port = first->port();
  net::ResilientClientOptions ropts;
  ropts.deadline_ms = 5000;
  auto rc = net::ResilientClient::Connect("127.0.0.1", port, ropts);
  ASSERT_TRUE(rc.ok()) << rc.status().ToString();
  ASSERT_TRUE((*rc)->Execute("R0 = select x >= 0 from Boxes").ok());
  EXPECT_EQ((*rc)->reconnects(), 0u);

  // The server dies and a replacement binds the same port: the next
  // statement reconnects and succeeds instead of failing fast.
  first->Kill();
  first.reset();
  Leader second({}, {}, port);
  auto result = (*rc)->Execute("R0 = select x >= 0 from Boxes");
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE((*rc)->reconnects(), 1u);
}

TEST(Failover, ResilientClientFailsOverThroughPromotion) {
  Leader leader;
  Follower follower(leader.port(), Follower::Paused());
  ASSERT_TRUE(follower.replica()->SyncOnce().ok());
  net::Server* front = follower.Front();

  net::ResilientClientOptions ropts;
  ropts.deadline_ms = 300;  // bound the pre-promotion write attempts
  auto rc = net::ResilientClient::Connect("127.0.0.1", front->port(), ropts);
  ASSERT_TRUE(rc.ok());
  // Reads always work; writes are refused (retried under the hood until
  // the deadline, then surfaced with the typed refusal).
  EXPECT_TRUE((*rc)->Execute("R0 = select x >= 0 from Boxes").ok());
  Status refused = (*rc)->LoadRelation("X", BoxRelation(3, 1));
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  EXPECT_GE((*rc)->retried_calls(), 1u);

  leader.Kill();
  auto term = (*rc)->Promote();
  ASSERT_TRUE(term.ok()) << term.status().ToString();
  EXPECT_TRUE((*rc)->LoadRelation("X", BoxRelation(3, 1)).ok());
  EXPECT_EQ((*rc)->highest_term(), *term);
}

// ---------------------------------------------------------------------
// Backoff + disconnect accounting + drain
// ---------------------------------------------------------------------

TEST(Failover, SyncBackoffBoundsAttemptsAgainstDownLeader) {
  Leader leader;
  obs::MetricsRegistry registry;
  net::ReplicaOptions ropts;
  ropts.poll_interval_ms = 1;
  ropts.max_backoff_ms = 200;
  ropts.registry = &registry;
  Follower follower(leader.port(), ropts);  // continuous sync
  ASSERT_TRUE(follower.replica()->WaitCaughtUp(2000).ok());
  const uint64_t healthy_failures = follower.replica()->stats().sync_failures;

  leader.Kill();
  SleepForMs(600);
  const uint64_t failures =
      follower.replica()->stats().sync_failures - healthy_failures;
  // Without backoff a 1 ms poll would fail ~600 times; the capped
  // exponential schedule keeps it to a handful.
  EXPECT_GE(failures, 2u);
  EXPECT_LE(failures, 40u);
  EXPECT_GT(registry.TakeSnapshot().Value(obs::names::kReplicaBackoffMs), 0u);
}

TEST(Failover, DisconnectRollsBackOpenTransaction) {
  std::ostringstream events;
  obs::EventLog event_log(&events);
  service::ServiceOptions sopts;
  sopts.event_log = &event_log;
  Leader leader({}, sopts);
  {
    auto client = leader.Connect();
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(client->Execute("BEGIN").ok());
    ASSERT_TRUE(client->LoadRelation("Staged", BoxRelation(6, 2)).ok());
    // Client vanishes mid-transaction.
  }
  leader.WaitSessionsDrained();
  EXPECT_EQ(leader.service()->MetricsSnapshot().Value(
                obs::names::kTxnAbortsOnDisconnect),
            1u);
  // The staged write died with the session.
  const auto session = leader.service()->OpenSession();
  EXPECT_EQ(leader.service()->GetRelation(session, "Staged").status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(leader.service()->CloseSession(session).ok());
  EXPECT_NE(events.str().find("txn_abort_on_disconnect"), std::string::npos)
      << events.str();
}

TEST(Failover, DrainUnderInFlightCommitsIsDecisive) {
  Leader leader;
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  std::vector<int> last_acked(kWriters, -1);
  std::atomic<bool> go{true};
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      auto client = net::Client::Connect("127.0.0.1", leader.port());
      if (!client.ok()) return;
      for (int k = 0; go.load() && k < 10000; ++k) {
        const std::string name = "W" + std::to_string(t);
        Status wrote =
            (*client)->LoadRelation(name, BoxRelation(5 + k % 7, t * 100 + k));
        if (!wrote.ok()) {
          // The refusal must be typed, never a fake success.
          EXPECT_NE(wrote.code(), StatusCode::kOk) << wrote.ToString();
          return;
        }
        last_acked[t] = k;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  leader.Kill();  // graceful drain while commits are in flight
  go.store(false);
  for (std::thread& w : writers) w.join();

  // The oracle: every acknowledged write survived — the state is the
  // last acked write k, or the k+1 the shutdown applied but never acked
  // (a lost ack is legal; a lost acked write is not).
  for (int t = 0; t < kWriters; ++t) {
    if (last_acked[t] < 0) continue;
    const int k = last_acked[t];
    const std::string got = RelationText(leader.service(), "W" + std::to_string(t));
    const std::string acked = BoxRelation(5 + k % 7, t * 100 + k).ToString();
    const std::string in_flight =
        BoxRelation(5 + (k + 1) % 7, t * 100 + k + 1).ToString();
    EXPECT_TRUE(got == acked || got == in_flight)
        << "writer " << t << " acked write " << k
        << " which then vanished (relation matches neither write " << k
        << " nor in-flight write " << k + 1 << ")";
  }
}

// ---------------------------------------------------------------------
// The chaos matrix
// ---------------------------------------------------------------------

struct ChaosCase {
  const char* name;
  net::ShipFaults faults;
};

/// Every fault type at every shipment index: the follower must recover
/// (re-sync), converge to the leader's exact state, and then survive a
/// kill-the-leader promotion with that state intact.
TEST(FailoverChaos, EveryFaultAtEveryShipmentIndexThenPromote) {
  constexpr int kWrites = 4;
  for (uint64_t at = 1; at <= kWrites; ++at) {
    std::vector<ChaosCase> cases;
    {
      ChaosCase drop{"drop", {}};
      drop.faults.drop_at = at;
      ChaosCase corrupt{"corrupt", {}};
      corrupt.faults.corrupt_at = at;
      ChaosCase cut{"cut", {}};
      cut.faults.cut_at = at;
      ChaosCase delay{"delay", {}};
      delay.faults.delay_at = at;
      delay.faults.delay_ms = 25;
      cases = {drop, corrupt, cut, delay};
    }
    for (const ChaosCase& c : cases) {
      SCOPED_TRACE(std::string(c.name) + " at shipment " +
                   std::to_string(at));
      Leader leader(c.faults);
      Follower follower(leader.port(), Follower::Paused());
      ASSERT_TRUE(follower.replica()->SyncOnce().ok());
      for (int j = 0; j < kWrites; ++j) {
        ASSERT_TRUE(
            leader.service()
                ->ReplaceRelation("Boxes", BoxRelation(30 + j, 11 + j))
                .ok());
        follower.SyncUntilCaughtUp();
      }
      const std::string last_acked = RelationText(leader.service(), "Boxes");
      EXPECT_EQ(RelationText(follower.service(), "Boxes"), last_acked);

      leader.Kill();
      auto promoted = follower.replica()->Promote();
      ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
      EXPECT_GE(promoted->term, 2u);
      // Exactly-once: the promoted catalog is the acked state, and the
      // new leader accepts writes.
      EXPECT_EQ(RelationText(follower.service(), "Boxes"), last_acked);
      ASSERT_TRUE(follower.service()
                      ->ReplaceRelation("Boxes", BoxRelation(7, 77))
                      .ok());
    }
  }
}

/// Leader crashes mid-shipment (cut at index i, never recovers): the
/// incomplete shipment is atomic — the promoted follower serves the last
/// fully-synced prefix, never a torn batch.
TEST(FailoverChaos, LeaderCrashMidShipmentPromotesCleanPrefix) {
  for (uint64_t cut_at = 1; cut_at <= 3; ++cut_at) {
    SCOPED_TRACE("cut at shipment " + std::to_string(cut_at));
    net::ShipFaults faults;
    faults.cut_at = cut_at;
    Leader leader(faults);
    Follower follower(leader.port(), Follower::Paused());
    ASSERT_TRUE(follower.replica()->SyncOnce().ok());  // bootstrap

    // One write + one sync round per step; round `cut_at` dies mid-ship.
    std::vector<std::string> acked_states;
    acked_states.push_back(RelationText(leader.service(), "Boxes"));
    bool cut_seen = false;
    for (int j = 1; j <= 3 && !cut_seen; ++j) {
      ASSERT_TRUE(leader.service()
                      ->ReplaceRelation("Boxes", BoxRelation(20 + j, 40 + j))
                      .ok());
      acked_states.push_back(RelationText(leader.service(), "Boxes"));
      cut_seen = !follower.replica()->SyncOnce().ok();
    }
    ASSERT_TRUE(cut_seen);
    leader.Kill();  // the crash the cut simulated becomes real

    auto promoted = follower.replica()->Promote();
    ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
    // The promoted state is exactly the last state whose sync completed:
    // writes before the cut survive, the torn shipment is absent whole.
    EXPECT_EQ(RelationText(follower.service(), "Boxes"),
              acked_states[cut_at - 1]);
  }
}

}  // namespace
}  // namespace ccdb
