#include "core/operators.h"

#include <gtest/gtest.h>

#include "constraint/fourier_motzkin.h"
#include "util/random.h"

namespace ccdb::cqa {
namespace {

LinearExpr V(const std::string& n) { return LinearExpr::Variable(n); }
LinearExpr C(int64_t v) { return LinearExpr::Constant(Rational(v)); }

Schema TwoConstraintAttrs() {
  return Schema::Make({Schema::ConstraintRational("x"),
                       Schema::ConstraintRational("y")})
      .value();
}

Relation MustRelation(Schema schema, std::vector<Tuple> tuples) {
  Relation rel(std::move(schema));
  for (Tuple& t : tuples) {
    Status s = rel.Insert(std::move(t));
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  return rel;
}

Tuple ConstraintTuple(std::vector<Constraint> constraints) {
  Tuple t;
  for (Constraint& c : constraints) t.AddConstraint(std::move(c));
  return t;
}

Predicate LinearPred(std::vector<Constraint> constraints) {
  Predicate p;
  p.linear = std::move(constraints);
  return p;
}

// --- The paper's Example 2: the missing attribute inconsistency -------------------

TEST(SelectTest, PaperExample2BroadSemantics) {
  // R over constraint attributes {x, y} with the single tuple (x = 1).
  // Under broad semantics, ς_{y=17} R = {(x = 1, y = 17)}.
  Relation r = MustRelation(
      TwoConstraintAttrs(),
      {ConstraintTuple({Constraint::Eq(V("x"), C(1))})});
  auto out = Select(r, LinearPred({Constraint::Eq(V("y"), C(17))}));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  EXPECT_TRUE(out->ContainsPoint(
      {{}, {{"x", Rational(1)}, {"y", Rational(17)}}}));
  EXPECT_FALSE(out->ContainsPoint(
      {{}, {{"x", Rational(1)}, {"y", Rational(18)}}}));
}

TEST(SelectTest, PaperExample2NarrowSemantics) {
  // Same data, but y is *relational*: the tuple's y is null, so
  // ς_{y=17} R = ∅ — upward compatibility with relational semantics.
  Schema schema = Schema::Make({Schema::ConstraintRational("x"),
                                Schema::RelationalRational("y")})
                      .value();
  Relation r = MustRelation(
      schema, {ConstraintTuple({Constraint::Eq(V("x"), C(1))})});
  auto out = Select(r, LinearPred({Constraint::Eq(V("y"), C(17))}));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 0u);
}

// --- The paper's Example 3: dual behaviour under the C/R flag ------------------------

TEST(SelectTest, PaperExample3AsymmetricSchema) {
  // R = {(x = 1), (y = 1), (x = 17, y = 17)} with
  // schema [x: relational, y: constraint].
  Schema schema = Schema::Make({Schema::RelationalRational("x"),
                                Schema::ConstraintRational("y")})
                      .value();
  Tuple t1;  // (x = 1)
  t1.SetValue("x", Value::Number(1));
  Tuple t2;  // (y = 1)
  t2.AddConstraint(Constraint::Eq(V("y"), C(1)));
  Tuple t3;  // (x = 17, y = 17)
  t3.SetValue("x", Value::Number(17));
  t3.AddConstraint(Constraint::Eq(V("y"), C(17)));
  Relation r = MustRelation(schema, {t1, t2, t3});

  // ς_{x=17} R returns {(x = 17, y = 17)}.
  auto by_x = Select(r, LinearPred({Constraint::Eq(V("x"), C(17))}));
  ASSERT_TRUE(by_x.ok());
  ASSERT_EQ(by_x->size(), 1u);
  EXPECT_EQ(by_x->tuples()[0].GetValue("x").AsNumber(), Rational(17));

  // ς_{y=17} R returns {(x = 1, y = 17), (x = 17, y = 17)}.
  auto by_y = Select(r, LinearPred({Constraint::Eq(V("y"), C(17))}));
  ASSERT_TRUE(by_y.ok());
  ASSERT_EQ(by_y->size(), 2u);
  for (const Tuple& t : by_y->tuples()) {
    EXPECT_TRUE(fm::Entails(t.constraints(),
                            Constraint::Eq(V("y"), C(17))));
  }
}

// --- Select mechanics -------------------------------------------------------------

TEST(SelectTest, ConjoinsIntoStoreAndDropsUnsat) {
  Relation r = MustRelation(
      TwoConstraintAttrs(),
      {ConstraintTuple({Constraint::Le(V("x"), C(5))}),
       ConstraintTuple({Constraint::Ge(V("x"), C(10))})});
  auto out = Select(r, LinearPred({Constraint::Le(V("x"), C(7))}));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u) << "second tuple is unsatisfiable with x <= 7";
  EXPECT_TRUE(out->ContainsPoint({{}, {{"x", Rational(5)}, {"y", Rational(0)}}}));
  EXPECT_FALSE(out->ContainsPoint({{}, {{"x", Rational(6)}, {"y", Rational(0)}}}))
      << "the surviving tuple keeps its own x <= 5 bound";
}

TEST(SelectTest, DeepUnsatIsCaught) {
  // x <= y in the tuple, pred x >= y + 1: each constraint pair is fine
  // syntactically; only the solver sees the contradiction.
  Relation r = MustRelation(
      TwoConstraintAttrs(),
      {ConstraintTuple({Constraint::Le(V("x"), V("y"))})});
  auto out = Select(
      r, LinearPred({Constraint::Ge(V("x"), V("y") + C(1))}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 0u);
}

TEST(SelectTest, StringAtoms) {
  Schema schema = Schema::Make({Schema::RelationalString("name"),
                                Schema::ConstraintRational("t")})
                      .value();
  Tuple smith;
  smith.SetValue("name", Value::String("Smith"));
  Tuple jones;
  jones.SetValue("name", Value::String("Jones"));
  Tuple anon;  // null name
  anon.AddConstraint(Constraint::Ge(V("t"), C(0)));
  Relation r = MustRelation(schema, {smith, jones, anon});

  Predicate eq;
  eq.strings.push_back(StringAtom::EqualsLiteral("name", "Smith"));
  auto out = Select(r, eq);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);

  Predicate ne;
  ne.strings.push_back(StringAtom::NotEqualsLiteral("name", "Smith"));
  auto out2 = Select(r, ne);
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2->size(), 1u) << "null name matches neither = nor !=";
}

TEST(SelectTest, AttrEqualsAttrAtom) {
  Schema schema = Schema::Make({Schema::RelationalString("a"),
                                Schema::RelationalString("b")})
                      .value();
  Tuple same;
  same.SetValue("a", Value::String("x"));
  same.SetValue("b", Value::String("x"));
  Tuple diff;
  diff.SetValue("a", Value::String("x"));
  diff.SetValue("b", Value::String("y"));
  Relation r = MustRelation(schema, {same, diff});
  Predicate p;
  p.strings.push_back(StringAtom::EqualsAttr("a", "b"));
  auto out = Select(r, p);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
}

TEST(SelectTest, ValidatesPredicateTypes) {
  Schema schema = Schema::Make({Schema::RelationalString("name"),
                                Schema::ConstraintRational("t")})
                      .value();
  Relation r(schema);
  // Arithmetic on a string attribute.
  EXPECT_FALSE(Select(r, LinearPred({Constraint::Eq(V("name"), C(1))})).ok());
  // String atom on a rational attribute.
  Predicate p;
  p.strings.push_back(StringAtom::EqualsLiteral("t", "x"));
  EXPECT_FALSE(Select(r, p).ok());
  // Unknown attribute.
  EXPECT_FALSE(Select(r, LinearPred({Constraint::Eq(V("zz"), C(1))})).ok());
}

// --- Project ------------------------------------------------------------------------

TEST(ProjectTest, EliminatesConstraintAttributeExistentially) {
  // Triangle x,y >= 0, x + y <= 2 projected to x gives [0, 2].
  Relation r = MustRelation(
      TwoConstraintAttrs(),
      {ConstraintTuple({Constraint::Ge(V("x"), C(0)),
                        Constraint::Ge(V("y"), C(0)),
                        Constraint::Le(V("x") + V("y"), C(2))})});
  auto out = Project(r, {"x"});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_TRUE(out->ContainsPoint({{}, {{"x", Rational(2)}}}));
  EXPECT_TRUE(out->ContainsPoint({{}, {{"x", Rational(0)}}}));
  EXPECT_FALSE(out->ContainsPoint({{}, {{"x", Rational(3)}}}));
  EXPECT_FALSE(out->tuples()[0].constraints().Mentions("y"));
}

TEST(ProjectTest, RelationalProjectionDeduplicates) {
  Schema schema = Schema::Make({Schema::RelationalString("name"),
                                Schema::RelationalString("city")})
                      .value();
  Tuple a1;
  a1.SetValue("name", Value::String("A"));
  a1.SetValue("city", Value::String("X"));
  Tuple a2;
  a2.SetValue("name", Value::String("A"));
  a2.SetValue("city", Value::String("Y"));
  Relation r = MustRelation(schema, {a1, a2});
  auto out = Project(r, {"name"});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
}

TEST(ProjectTest, DropsUnsatisfiableTuples) {
  Relation r = MustRelation(
      TwoConstraintAttrs(),
      {ConstraintTuple({Constraint::Ge(V("y"), C(5)),
                        Constraint::Le(V("y"), C(1))})});
  auto out = Project(r, {"x"});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 0u)
      << "projection of an empty tuple must not become 'true'";
}

TEST(ProjectTest, ReordersAttributes) {
  auto out = Project(Relation(TwoConstraintAttrs()), {"y", "x"});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->schema().Names(), (std::vector<std::string>{"y", "x"}));
  EXPECT_FALSE(Project(Relation(TwoConstraintAttrs()), {"zz"}).ok());
}

// --- NaturalJoin ------------------------------------------------------------------------

TEST(JoinTest, SharedConstraintAttributeConjoins) {
  // Land extents join hurricane path on (x, y).
  Relation land = MustRelation(
      TwoConstraintAttrs(),
      {ConstraintTuple({Constraint::Ge(V("x"), C(0)), Constraint::Le(V("x"), C(2)),
                        Constraint::Ge(V("y"), C(0)), Constraint::Le(V("y"), C(2))})});
  Relation path = MustRelation(
      TwoConstraintAttrs(),
      {ConstraintTuple({Constraint::Eq(V("y"), V("x")),
                        Constraint::Ge(V("x"), C(1)),
                        Constraint::Le(V("x"), C(5))})});
  auto out = NaturalJoin(land, path);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  // The joined region is the diagonal from (1,1) to (2,2).
  EXPECT_TRUE(out->ContainsPoint(
      {{}, {{"x", Rational(3, 2)}, {"y", Rational(3, 2)}}}));
  EXPECT_FALSE(out->ContainsPoint(
      {{}, {{"x", Rational(3)}, {"y", Rational(3)}}}));
  EXPECT_FALSE(out->ContainsPoint(
      {{}, {{"x", Rational(3, 2)}, {"y", Rational(1)}}}));
}

TEST(JoinTest, DisjointConstraintTuplesVanish) {
  Relation a = MustRelation(
      TwoConstraintAttrs(),
      {ConstraintTuple({Constraint::Le(V("x"), C(0))})});
  Relation b = MustRelation(
      TwoConstraintAttrs(),
      {ConstraintTuple({Constraint::Ge(V("x"), C(1))})});
  auto out = NaturalJoin(a, b);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 0u);
}

TEST(JoinTest, SharedRelationalAttributeIsEquiJoin) {
  Schema owners = Schema::Make({Schema::RelationalString("name"),
                                Schema::RelationalString("landId")})
                      .value();
  Schema lands = Schema::Make({Schema::RelationalString("landId"),
                               Schema::ConstraintRational("x")})
                     .value();
  Tuple o1;
  o1.SetValue("name", Value::String("Smith"));
  o1.SetValue("landId", Value::String("A"));
  Tuple o2;
  o2.SetValue("name", Value::String("Jones"));
  o2.SetValue("landId", Value::String("B"));
  Tuple null_owner;  // null landId joins nothing
  null_owner.SetValue("name", Value::String("Ghost"));
  Tuple l1;
  l1.SetValue("landId", Value::String("A"));
  l1.AddConstraint(Constraint::Ge(V("x"), C(0)));
  Relation r_owners = MustRelation(owners, {o1, o2, null_owner});
  Relation r_lands = MustRelation(lands, {l1});

  auto out = NaturalJoin(r_owners, r_lands);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->tuples()[0].GetValue("name").AsString(), "Smith");
  EXPECT_EQ(out->schema().Names(),
            (std::vector<std::string>{"name", "landId", "x"}));
}

TEST(JoinTest, CrossProductAndIntersect) {
  Schema sa = Schema::Make({Schema::ConstraintRational("a")}).value();
  Schema sb = Schema::Make({Schema::ConstraintRational("b")}).value();
  Relation ra = MustRelation(sa, {ConstraintTuple({Constraint::Le(V("a"), C(1))}),
                                  ConstraintTuple({Constraint::Ge(V("a"), C(5))})});
  Relation rb = MustRelation(sb, {ConstraintTuple({Constraint::Eq(V("b"), C(0))})});
  auto cross = CrossProduct(ra, rb);
  ASSERT_TRUE(cross.ok());
  EXPECT_EQ(cross->size(), 2u);
  EXPECT_FALSE(CrossProduct(ra, ra).ok()) << "shared attrs rejected";

  Relation rc = MustRelation(sa, {ConstraintTuple({Constraint::Ge(V("a"), C(0))})});
  auto inter = Intersect(ra, rc);
  ASSERT_TRUE(inter.ok());
  ASSERT_EQ(inter->size(), 2u);
  EXPECT_TRUE(inter->ContainsPoint({{}, {{"a", Rational(0)}}}));
  EXPECT_TRUE(inter->ContainsPoint({{}, {{"a", Rational(6)}}}));
  EXPECT_FALSE(inter->ContainsPoint({{}, {{"a", Rational(-1)}}}));
  EXPECT_FALSE(Intersect(ra, rb).ok()) << "schema mismatch rejected";
}

// --- Union / Rename ------------------------------------------------------------------------

TEST(UnionTest, MergesAndDeduplicates) {
  Relation a = MustRelation(
      TwoConstraintAttrs(),
      {ConstraintTuple({Constraint::Le(V("x"), C(0))})});
  Relation b = MustRelation(
      TwoConstraintAttrs(),
      {ConstraintTuple({Constraint::Le(V("x"), C(0))}),
       ConstraintTuple({Constraint::Ge(V("x"), C(9))})});
  auto out = Union(a, b);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  Schema other = Schema::Make({Schema::ConstraintRational("z")}).value();
  EXPECT_FALSE(Union(a, Relation(other)).ok());
}

TEST(RenameTest, ConstraintAttribute) {
  Relation r = MustRelation(
      TwoConstraintAttrs(),
      {ConstraintTuple({Constraint::Le(V("x") + V("y"), C(3))})});
  auto out = Rename(r, "x", "t");
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->schema().Has("t"));
  EXPECT_TRUE(out->ContainsPoint({{}, {{"t", Rational(1)}, {"y", Rational(1)}}}));
  EXPECT_FALSE(out->ContainsPoint({{}, {{"t", Rational(2)}, {"y", Rational(2)}}}));
}

TEST(RenameTest, RelationalAttribute) {
  Schema schema = Schema::Make({Schema::RelationalString("name")}).value();
  Tuple t;
  t.SetValue("name", Value::String("Ada"));
  Relation r = MustRelation(schema, {t});
  auto out = Rename(r, "name", "who");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->tuples()[0].GetValue("who").AsString(), "Ada");
  EXPECT_TRUE(out->tuples()[0].GetValue("name").IsNull());
  EXPECT_FALSE(Rename(r, "missing", "z").ok());
}

// --- Difference ------------------------------------------------------------------------

TEST(DifferenceTest, IntervalSubtraction) {
  // [0, 10] minus [3, 5] = [0, 3) ∪ (5, 10].
  Schema schema = Schema::Make({Schema::ConstraintRational("x")}).value();
  Relation a = MustRelation(
      schema, {ConstraintTuple({Constraint::Ge(V("x"), C(0)),
                                Constraint::Le(V("x"), C(10))})});
  Relation b = MustRelation(
      schema, {ConstraintTuple({Constraint::Ge(V("x"), C(3)),
                                Constraint::Le(V("x"), C(5))})});
  auto out = Difference(a, b);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
  EXPECT_TRUE(out->ContainsPoint({{}, {{"x", Rational(1)}}}));
  EXPECT_TRUE(out->ContainsPoint({{}, {{"x", Rational(6)}}}));
  EXPECT_TRUE(out->ContainsPoint({{}, {{"x", Rational(29, 10)}}}));
  EXPECT_FALSE(out->ContainsPoint({{}, {{"x", Rational(3)}}}))
      << "boundary of the subtrahend is removed (closed interval)";
  EXPECT_FALSE(out->ContainsPoint({{}, {{"x", Rational(4)}}}));
  EXPECT_FALSE(out->ContainsPoint({{}, {{"x", Rational(5)}}}));
  EXPECT_FALSE(out->ContainsPoint({{}, {{"x", Rational(11)}}}));
}

TEST(DifferenceTest, SubtractingEqualityLeavesPuncturedInterval) {
  Schema schema = Schema::Make({Schema::ConstraintRational("x")}).value();
  Relation a = MustRelation(
      schema, {ConstraintTuple({Constraint::Ge(V("x"), C(0)),
                                Constraint::Le(V("x"), C(2))})});
  Relation b = MustRelation(
      schema, {ConstraintTuple({Constraint::Eq(V("x"), C(1))})});
  auto out = Difference(a, b);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->ContainsPoint({{}, {{"x", Rational(0)}}}));
  EXPECT_TRUE(out->ContainsPoint({{}, {{"x", Rational(2)}}}));
  EXPECT_TRUE(out->ContainsPoint({{}, {{"x", Rational(999, 1000)}}}));
  EXPECT_FALSE(out->ContainsPoint({{}, {{"x", Rational(1)}}}));
}

TEST(DifferenceTest, RespectsRelationalAttributes) {
  Schema schema = Schema::Make({Schema::RelationalString("name"),
                                Schema::ConstraintRational("t")})
                      .value();
  Tuple smith;
  smith.SetValue("name", Value::String("Smith"));
  smith.AddConstraint(Constraint::Ge(V("t"), C(0)));
  smith.AddConstraint(Constraint::Le(V("t"), C(10)));
  Relation a = MustRelation(schema, {smith});

  Tuple jones;  // different relational value: subtracts nothing
  jones.SetValue("name", Value::String("Jones"));
  jones.AddConstraint(Constraint::Ge(V("t"), C(0)));
  jones.AddConstraint(Constraint::Le(V("t"), C(10)));
  auto unaffected = Difference(a, MustRelation(schema, {jones}));
  ASSERT_TRUE(unaffected.ok());
  EXPECT_EQ(unaffected->size(), 1u);
  EXPECT_TRUE(unaffected->ContainsPoint(
      {{{"name", Value::String("Smith")}}, {{"t", Rational(5)}}}));

  Tuple smith2;  // same relational value: subtracts the middle
  smith2.SetValue("name", Value::String("Smith"));
  smith2.AddConstraint(Constraint::Ge(V("t"), C(4)));
  smith2.AddConstraint(Constraint::Le(V("t"), C(6)));
  auto out = Difference(a, MustRelation(schema, {smith2}));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->ContainsPoint(
      {{{"name", Value::String("Smith")}}, {{"t", Rational(1)}}}));
  EXPECT_FALSE(out->ContainsPoint(
      {{{"name", Value::String("Smith")}}, {{"t", Rational(5)}}}));
}

TEST(DifferenceTest, TotalSubtractionGivesEmpty) {
  Schema schema = Schema::Make({Schema::ConstraintRational("x")}).value();
  Relation a = MustRelation(
      schema, {ConstraintTuple({Constraint::Ge(V("x"), C(2)),
                                Constraint::Le(V("x"), C(4))})});
  Relation b = MustRelation(
      schema, {ConstraintTuple({Constraint::Ge(V("x"), C(0)),
                                Constraint::Le(V("x"), C(10))})});
  auto out = Difference(a, b);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 0u);
}

TEST(DifferenceTest, EmptyStoreSubtrahendSwallowsEverything) {
  // An rhs tuple with empty store means "all (x, y)" — total subtraction.
  Relation a = MustRelation(
      TwoConstraintAttrs(),
      {ConstraintTuple({Constraint::Ge(V("x"), C(0))})});
  Relation b = MustRelation(TwoConstraintAttrs(), {Tuple()});
  auto out = Difference(a, b);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 0u);
}

// --- Closure / semantics property test ------------------------------------------------

// Random relations over constraint attributes {x, y}; verify that operator
// outputs have exactly the semantics of the corresponding set operation,
// at sampled rational points (the §2.5 closure principle, semantically).
TEST(OperatorSemanticsTest, RandomizedPointSemantics) {
  Rng rng(987654);
  auto random_relation = [&](int max_tuples) {
    Relation rel(TwoConstraintAttrs());
    int n = static_cast<int>(rng.UniformInt(1, max_tuples));
    for (int i = 0; i < n; ++i) {
      Tuple t;
      int m = static_cast<int>(rng.UniformInt(1, 3));
      for (int j = 0; j < m; ++j) {
        LinearExpr e = V("x") * Rational(rng.UniformInt(-2, 2)) +
                       V("y") * Rational(rng.UniformInt(-2, 2)) +
                       C(rng.UniformInt(-6, 6));
        int op = static_cast<int>(rng.UniformInt(0, 2));
        t.AddConstraint(Constraint(e, op == 0   ? ConstraintOp::kLe
                                      : op == 1 ? ConstraintOp::kLt
                                                : ConstraintOp::kEq));
      }
      EXPECT_TRUE(rel.Insert(std::move(t)).ok());
    }
    return rel;
  };

  for (int iter = 0; iter < 60; ++iter) {
    Relation r1 = random_relation(3);
    Relation r2 = random_relation(3);

    auto joined = NaturalJoin(r1, r2);
    auto united = Union(r1, r2);
    auto diffed = Difference(r1, r2);
    auto projected = Project(r1, {"x"});
    Predicate pred = LinearPred({Constraint::Le(V("x") + V("y"), C(3))});
    auto selected = Select(r1, pred);
    ASSERT_TRUE(joined.ok() && united.ok() && diffed.ok() &&
                projected.ok() && selected.ok());

    for (int s = 0; s < 25; ++s) {
      Rational x(rng.UniformInt(-8, 8), rng.UniformInt(1, 3));
      Rational y(rng.UniformInt(-8, 8), rng.UniformInt(1, 3));
      PointRow p{{}, {{"x", x}, {"y", y}}};
      const bool in1 = r1.ContainsPoint(p);
      const bool in2 = r2.ContainsPoint(p);

      EXPECT_EQ(joined->ContainsPoint(p), in1 && in2) << "join";
      EXPECT_EQ(united->ContainsPoint(p), in1 || in2) << "union";
      EXPECT_EQ(diffed->ContainsPoint(p), in1 && !in2) << "difference";
      EXPECT_EQ(selected->ContainsPoint(p),
                in1 && (x + y <= Rational(3)))
          << "select";
      // Projection: x in π_x(R1) iff some sampled y' works — check the
      // forward direction (soundness) plus membership of this very point.
      if (in1) {
        EXPECT_TRUE(projected->ContainsPoint({{}, {{"x", x}}}))
            << "project soundness";
      }
    }
  }
}

}  // namespace
}  // namespace ccdb::cqa
