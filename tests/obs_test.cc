// Tests for the observability layer (src/obs) and its integration:
// registry correctness under concurrent writers (run under
// -DCCDB_SANITIZE=thread to prove the lock-free paths race-free),
// trace-tree shape vs. the optimized plan, the ExecStats root-exclusion
// semantics, the slow-query log, and JSONL export well-formedness.

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ccdb.h"

namespace ccdb {
namespace {

// --- Registry primitives under concurrent writers -------------------------

TEST(CounterTest, ConcurrentAddsSumExactly) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), uint64_t{kThreads} * kPerThread);
}

TEST(HistogramTest, ConcurrentRecordsKeepCountAndSum) {
  obs::Histogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  const obs::Histogram::Snapshot snap = hist.snapshot();
  const uint64_t n = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(snap.count, n);
  EXPECT_EQ(snap.sum, n * (n - 1) / 2);  // 0 + 1 + ... + n-1
}

TEST(HistogramTest, PercentileUpperBoundIsConservative) {
  obs::Histogram hist;
  for (uint64_t v = 0; v < 1000; ++v) hist.Record(v);
  const obs::Histogram::Snapshot snap = hist.snapshot();
  // The true p50 is ~500; the log2 bucket upper bound must cover it but
  // stay within a factor of 2.
  const uint64_t p50 = snap.PercentileUpperBound(0.50);
  EXPECT_GE(p50, uint64_t{500});
  EXPECT_LE(p50, uint64_t{1023});
  EXPECT_GE(snap.PercentileUpperBound(0.99), uint64_t{990});
  // Percentiles are monotone in the fraction.
  EXPECT_LE(p50, snap.PercentileUpperBound(0.90));
}

TEST(RegistryTest, SameNameYieldsSameHandleUnderRaces) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<obs::Counter*> handles(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &handles, t] {
      obs::Counter* c = registry.GetCounter("races.test");
      handles[static_cast<size_t>(t)] = c;
      for (int i = 0; i < 1000; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(handles[0], handles[t]);
  EXPECT_EQ(handles[0]->Value(), uint64_t{8000});

  registry.SetGauge("races.gauge", 42);
  const obs::MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.Value("races.test"), uint64_t{8000});
  EXPECT_EQ(snap.Value("races.gauge"), uint64_t{42});
  EXPECT_EQ(snap.Value("no.such.metric"), uint64_t{0});
}

// --- The thread-local trace context ---------------------------------------

TEST(CounterScopeTest, NestedScopesFoldIntoParent) {
  EXPECT_FALSE(obs::TracingActive());
  obs::NoteConjunction();  // no scope installed: must be a no-op
  {
    obs::CounterScope outer;
    EXPECT_TRUE(obs::TracingActive());
    obs::NoteConjunction();
    {
      obs::CounterScope inner;
      obs::NoteFmElimination();
      obs::NoteFmElimination();
      obs::NoteRedundancyCulls(3);
      EXPECT_EQ(inner.counters().fm_eliminations, uint64_t{2});
      EXPECT_EQ(inner.counters().conjunctions, uint64_t{0});
    }
    // The inner scope's totals folded back into the outer scope.
    EXPECT_EQ(outer.counters().conjunctions, uint64_t{1});
    EXPECT_EQ(outer.counters().fm_eliminations, uint64_t{2});
    EXPECT_EQ(outer.counters().redundancy_culls, uint64_t{3});
  }
  EXPECT_FALSE(obs::TracingActive());
}

// --- Trace trees from the executor ----------------------------------------

/// A database with one constraint relation of generated boxes.
Database BoxDatabase(size_t count) {
  WorkloadParams params;
  params.data_count = count;
  Database db;
  EXPECT_TRUE(
      db.Create("Boxes", BoxesToConstraintRelation(GenerateDataBoxes(7, params)))
          .ok());
  return db;
}

constexpr const char* kJoinScript =
    "R0 = select x >= 100, x <= 600 from Boxes\n"
    "R1 = select y >= 100, y <= 600 from Boxes\n"
    "R2 = join R0 and R1";

/// Structural equality of a plan and its trace: same labels, same shape.
void ExpectTraceMatchesPlan(const cqa::PlanNode& plan,
                            const obs::TraceNode& trace) {
  EXPECT_EQ(trace.label, plan.Label());
  ASSERT_EQ(trace.children.size(), plan.children.size());
  for (size_t i = 0; i < plan.children.size(); ++i) {
    ExpectTraceMatchesPlan(*plan.children[i], trace.children[i]);
  }
}

TEST(TraceTest, TreeShapeMatchesOptimizedPlan) {
  Database db = BoxDatabase(60);
  auto compiled = lang::CompileScript(kJoinScript, db);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  std::unique_ptr<cqa::PlanNode> plan =
      cqa::Optimize(std::move(compiled->plan), db);

  obs::TraceNode root;
  auto result = cqa::ExecuteTraced(*plan, db, &root);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ExpectTraceMatchesPlan(*plan, root);
  EXPECT_EQ(root.tuples_out, result->size());
  EXPECT_GT(root.wall_us, 0.0);
  // Every operator in this plan touches constraint stores, so the
  // subtree totals must show constraint-layer work.
  EXPECT_GT(root.TotalCounters().conjunctions, uint64_t{0});
  // self time never exceeds inclusive wall time.
  EXPECT_LE(root.self_us, root.wall_us);
}

TEST(TraceTest, ExecStatsExcludeRootFromIntermediates) {
  Database db = BoxDatabase(60);
  auto compiled = lang::CompileScript(kJoinScript, db);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  std::unique_ptr<cqa::PlanNode> plan =
      cqa::Optimize(std::move(compiled->plan), db);

  obs::TraceNode root;
  auto traced = cqa::ExecuteTraced(*plan, db, &root);
  ASSERT_TRUE(traced.ok());

  cqa::ExecStats stats;
  auto result = cqa::Execute(*plan, db, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.nodes_evaluated, root.NodeCount());
  // intermediate_tuples counts every operator *below* the root — the
  // root's own output is the result, not an intermediate.
  EXPECT_EQ(stats.intermediate_tuples, root.SumTuplesOut() - root.tuples_out);
}

TEST(TraceTest, JsonOutputIsWellFormed) {
  Database db = BoxDatabase(30);
  auto compiled = lang::CompileScript(kJoinScript, db);
  ASSERT_TRUE(compiled.ok());
  std::unique_ptr<cqa::PlanNode> plan =
      cqa::Optimize(std::move(compiled->plan), db);
  obs::TraceNode root;
  ASSERT_TRUE(cqa::ExecuteTraced(*plan, db, &root).ok());

  const std::string json = root.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must be one line";
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;  // skip the escaped character
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0) << "unbalanced braces in: " << json;
  EXPECT_FALSE(in_string) << "unterminated string in: " << json;
  EXPECT_NE(json.find("\"children\""), std::string::npos);
}

// --- Service integration: Trace(), the slow-query log, metrics ------------

TEST(ServiceTraceTest, ExplicitTraceUsesOptimizedPlan) {
  Database db = BoxDatabase(60);
  std::ostringstream jsonl;
  obs::TraceSink sink(&jsonl);
  service::ServiceOptions options;
  options.num_workers = 2;
  options.trace_sink = &sink;
  service::QueryService svc(&db, options);
  const service::SessionId session = svc.OpenSession();

  auto report = svc.Trace(session, kJoinScript);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->used_plan);
  EXPECT_FALSE(report->plan_text.empty());
  EXPECT_FALSE(report->root.children.empty());
  EXPECT_EQ(report->root.tuples_out, report->response.relation.size());
  EXPECT_GT(report->root.TotalCounters().conjunctions, uint64_t{0});

  const service::ServiceMetrics m = svc.Metrics();
  EXPECT_EQ(m.traced_queries, uint64_t{1});
  EXPECT_GT(m.conjunctions, uint64_t{0});
  EXPECT_GT(m.fm_eliminations, uint64_t{0});

  // The sink got one well-formed JSONL line for the trace.
  EXPECT_EQ(sink.events(), uint64_t{1});
  const std::string line = jsonl.str();
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.find('\n'), line.size() - 1) << "exactly one line";
  EXPECT_NE(line.find("\"trace\""), std::string::npos);
}

TEST(ServiceTraceTest, NonCompilableScriptFallsBackToStatementSpans) {
  Database db = BoxDatabase(30);
  service::ServiceOptions options;
  options.num_workers = 1;
  service::QueryService svc(&db, options);
  const service::SessionId session = svc.OpenSession();

  // `normalize` executes fine but has no algebra form, so the report
  // must fall back to statement-level spans.
  auto report = svc.Trace(session,
                          "R0 = select x >= 100, x <= 900 from Boxes\n"
                          "R1 = normalize R0");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->used_plan);
  EXPECT_EQ(report->root.children.size(), size_t{2});
  EXPECT_EQ(report->root.children[1].label, "R1 = normalize R0");
}

TEST(ServiceTraceTest, SlowQueryLogFiresAtThreshold) {
  Database db = BoxDatabase(60);
  std::ostringstream jsonl;
  obs::TraceSink sink(&jsonl);
  service::ServiceOptions options;
  options.num_workers = 2;
  options.slow_query_us = 0.001;  // everything is slow
  options.trace_sink = &sink;
  service::QueryService svc(&db, options);
  const service::SessionId session = svc.OpenSession();

  auto response = svc.Execute(session, kJoinScript);
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  const service::ServiceMetrics m = svc.Metrics();
  EXPECT_GE(m.slow_queries, uint64_t{1});
  EXPECT_GE(sink.events(), uint64_t{1});
  const std::string line = jsonl.str();
  EXPECT_NE(line.find("\"slow\":true"), std::string::npos);

  // The latency histogram saw the query.
  bool found_latency = false;
  for (const auto& h : m.histograms) {
    if (h.name == obs::names::kQueryLatencyUs) {
      found_latency = true;
      EXPECT_GE(h.count, uint64_t{1});
    }
  }
  EXPECT_TRUE(found_latency);
}

TEST(ServiceTraceTest, FastQueriesDoNotTripTheSlowLog) {
  Database db = BoxDatabase(20);
  std::ostringstream jsonl;
  obs::TraceSink sink(&jsonl);
  service::ServiceOptions options;
  options.num_workers = 1;
  options.slow_query_us = 60e6;  // a minute: nothing here is that slow
  options.trace_sink = &sink;
  service::QueryService svc(&db, options);
  const service::SessionId session = svc.OpenSession();

  auto response =
      svc.Execute(session, "R0 = select x >= 100, x <= 200 from Boxes");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(svc.Metrics().slow_queries, uint64_t{0});
  EXPECT_EQ(sink.events(), uint64_t{0});
}

TEST(ServiceTraceTest, ConcurrentQueriesPublishExactEngineTotals) {
  Database db = BoxDatabase(40);
  service::ServiceOptions options;
  options.num_workers = 4;
  options.cache_capacity = 0;  // no cache: every query runs the engine
  service::QueryService svc(&db, options);

  constexpr int kClients = 4;
  constexpr int kQueriesEach = 5;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&svc, &failures, c] {
      const service::SessionId session = svc.OpenSession();
      for (int i = 0; i < kQueriesEach; ++i) {
        const int lo = 100 + 37 * (c * kQueriesEach + i);
        auto r = svc.Execute(
            session, "R0 = select x >= " + std::to_string(lo) + ", x <= " +
                         std::to_string(lo + 400) + " from Boxes");
        if (!r.ok()) failures.fetch_add(1);
      }
      if (!svc.CloseSession(session).ok()) failures.fetch_add(1);
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  const service::ServiceMetrics m = svc.Metrics();
  EXPECT_EQ(m.completed, uint64_t{kClients * kQueriesEach});
  // Every select materializes at least one constraint store per output
  // tuple, so engine counters drained from all workers must be visible.
  EXPECT_GT(m.conjunctions, uint64_t{0});
}

}  // namespace
}  // namespace ccdb
