#ifndef CCDB_STORAGE_SERDE_H_
#define CCDB_STORAGE_SERDE_H_

/// \file serde.h
/// Binary serialization primitives plus tuple/schema codecs.
///
/// Rationals serialize as decimal strings of numerator and denominator —
/// exact at any magnitude (BigInt coefficients grow without bound under
/// query evaluation, so fixed-width encodings would be lossy). Layout is
/// little-endian length-prefixed fields; records are self-describing
/// enough to round-trip without consulting the schema.

#include <cstdint>
#include <string>
#include <vector>

#include "data/relation.h"
#include "util/status.h"

namespace ccdb {

/// Append-only byte sink.
class Writer {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutString(const std::string& s);  // u32 length + bytes
  void PutRational(const Rational& r);   // numerator + denominator strings
  void PutBytes(const uint8_t* data, size_t len);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked byte source.
class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit Reader(const std::vector<uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<std::string> GetString();
  Result<Rational> GetRational();

  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }

 private:
  Status Need(size_t n) const;

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// Serializes a heterogeneous tuple (relational values + constraint store).
std::vector<uint8_t> SerializeTuple(const Tuple& tuple);
/// Inverse of SerializeTuple.
Result<Tuple> DeserializeTuple(const std::vector<uint8_t>& bytes);

/// Serializes a schema (for catalog persistence).
std::vector<uint8_t> SerializeSchema(const Schema& schema);
Result<Schema> DeserializeSchema(const std::vector<uint8_t>& bytes);

}  // namespace ccdb

#endif  // CCDB_STORAGE_SERDE_H_
