#include "storage/wal.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>

#include "storage/catalog.h"
#include "util/lock_graph.h"

namespace ccdb {

namespace {

// On-disk framing constants. A batch record is
//   [u32 kBatchMagic][u64 lsn][u64 catalog_root][u64 txn_id]
//   [u64 request_id][u32 n_frames]
//   n_frames x ([u64 page_id][kPageSize image])
//   [u32 crc over lsn..frames][u32 kCommitMagic]
// streamed across log pages of layout [u64 next][payload]. `txn_id` is 0
// for autocommit batches; a multi-statement transaction commits as ONE
// batch carrying its id, so batch atomicity (one CRC-framed record,
// all-or-nothing replay) *is* transaction atomicity — recovery and the
// shipping replica never see a partial transaction by construction.
// `request_id` (0 = unkeyed) is the client's idempotency key, journaled
// so a promoted replica can seed its commit dedup table from the log.
constexpr uint32_t kHeaderMagic = 0x57414C48;  // "WALH"
constexpr uint32_t kBatchMagic = 0x57414C42;   // "WALB"
constexpr uint32_t kCommitMagic = 0x57414C43;  // "WALC"
constexpr size_t kFrameSize = 8 + kPageSize;
constexpr size_t kRecordHeader = 40;  // magic + lsn + root + txn + req + n
constexpr size_t kRecordOverhead = kRecordHeader + 8;  // + crc + commit
constexpr uint32_t kMaxFrames = 1u << 20;   // sanity bound while parsing

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

void StoreU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xff);
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

void StoreU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xff);
}

void AppendU32(std::vector<uint8_t>* buf, uint32_t v) {
  uint8_t tmp[4];
  StoreU32(tmp, v);
  buf->insert(buf->end(), tmp, tmp + 4);
}

void AppendU64(std::vector<uint8_t>* buf, uint64_t v) {
  uint8_t tmp[8];
  StoreU64(tmp, v);
  buf->insert(buf->end(), tmp, tmp + 8);
}

/// Outcome of probing one batch record at a stream position.
enum class RecordProbe {
  kNone,       ///< no record starts here (end of log, or zeroed space)
  kTorn,       ///< a record starts but fails validation (torn/corrupt)
  kCommitted,  ///< a whole, CRC-intact, committed record
};

/// Parsed header of a committed record (frames are decoded separately).
struct RecordView {
  uint64_t lsn = 0;
  PageId catalog_root = kInvalidPageId;
  uint64_t txn_id = 0;      ///< 0 = autocommit batch
  uint64_t request_id = 0;  ///< 0 = unkeyed commit
  uint32_t n_frames = 0;
  size_t frames_at = 0;    ///< offset of the first frame, from record start
  size_t total_size = 0;   ///< whole record incl. CRC and commit marker
};

/// The one framing check shared by recovery, shipping re-reads, and the
/// replica's apply path: magic, bounded frame count, full body present,
/// CRC-32 over the body, commit marker, and (when `expect_lsn` != 0) the
/// exactly-sequential LSN rule.
RecordProbe ProbeRecord(const uint8_t* data, size_t len, size_t pos,
                        uint64_t expect_lsn, RecordView* out) {
  if (len - pos < kRecordOverhead) return RecordProbe::kNone;
  if (LoadU32(data + pos) != kBatchMagic) return RecordProbe::kNone;
  out->lsn = LoadU64(data + pos + 4);
  out->catalog_root = LoadU64(data + pos + 12);
  out->txn_id = LoadU64(data + pos + 20);
  out->request_id = LoadU64(data + pos + 28);
  out->n_frames = LoadU32(data + pos + 36);
  if (out->n_frames > kMaxFrames) return RecordProbe::kTorn;
  const size_t body =
      kRecordHeader + static_cast<size_t>(out->n_frames) * kFrameSize;
  if (len - pos < body + 8) return RecordProbe::kTorn;
  const uint32_t crc = LoadU32(data + pos + body);
  const uint32_t commit = LoadU32(data + pos + body + 4);
  if (commit != kCommitMagic || crc != Crc32(data + pos + 4, body - 4) ||
      (expect_lsn != 0 && out->lsn != expect_lsn)) {
    return RecordProbe::kTorn;
  }
  out->frames_at = kRecordHeader;
  out->total_size = body + 8;
  return RecordProbe::kCommitted;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// --- WriteAheadLog ----------------------------------------------------------------

Status WriteAheadLog::Create() {
  header_page_ = disk_->Allocate();
  if (header_page_ == kInvalidPageId) {
    return Status::IoError("WAL header page allocation failed");
  }
  PageId first = disk_->Allocate();
  if (first == kInvalidPageId) {
    return Status::IoError("WAL log page allocation failed");
  }
  log_pages_.assign(1, first);
  append_pos_ = 0;
  next_lsn_ = 1;
  lsn_floor_ = 1;
  recovered_root_ = kInvalidPageId;
  tail_image_.Zero();
  StoreU64(tail_image_.bytes(), kInvalidPageId);
  CCDB_RETURN_IF_ERROR(disk_->Write(first, tail_image_));
  return WriteHeader(kInvalidPageId, next_lsn_);
}

Status WriteAheadLog::Open(PageId header_page) {
  header_page_ = header_page;
  Page header;
  CCDB_RETURN_IF_ERROR(disk_->Read(header_page, &header));
  if (LoadU32(header.bytes()) != kHeaderMagic) {
    return Status::IoError("page " + std::to_string(header_page) +
                           " is not a WAL header");
  }
  const PageId first = LoadU64(header.bytes() + 4);
  const PageId header_root = LoadU64(header.bytes() + 12);
  const uint64_t lsn_floor = LoadU64(header.bytes() + 20);

  // Walk the log chain. An unreadable or repeated next pointer — or one
  // aimed at the header — ends the chain (a torn tail page cannot corrupt
  // the links before it).
  log_pages_.clear();
  std::vector<Page> images;
  std::vector<uint8_t> stream;
  std::set<PageId> visited;
  PageId current = first;
  while (current != kInvalidPageId && current != header_page_ &&
         visited.insert(current).second) {
    Page page;
    if (!disk_->Read(current, &page).ok()) break;
    log_pages_.push_back(current);
    stream.insert(stream.end(), page.bytes() + 8, page.bytes() + kPageSize);
    images.push_back(page);
    current = LoadU64(page.bytes());
  }
  if (log_pages_.empty()) {
    return Status::IoError("WAL log chain is unreadable from page " +
                           std::to_string(first));
  }

  // Parse and replay committed batches. Records must be exactly
  // sequentially numbered starting at the header's LSN floor — anything
  // else (torn tail, pre-checkpoint leftovers, garbage) ends the log.
  size_t pos = 0;
  uint64_t expect = lsn_floor;
  PageId root = header_root;
  while (true) {
    RecordView view;
    RecordProbe probe =
        ProbeRecord(stream.data(), stream.size(), pos, expect, &view);
    if (probe == RecordProbe::kNone) break;
    if (probe == RecordProbe::kTorn) {
      discarded_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    // Committed: redo every page image (idempotent).
    for (uint32_t f = 0; f < view.n_frames; ++f) {
      const size_t frame =
          pos + view.frames_at + static_cast<size_t>(f) * kFrameSize;
      const PageId page_id = LoadU64(&stream[frame]);
      Page image;
      std::memcpy(image.bytes(), &stream[frame + 8], kPageSize);
      CCDB_RETURN_IF_ERROR(disk_->Write(page_id, image));
    }
    recovered_.fetch_add(1, std::memory_order_relaxed);
    root = view.catalog_root;
    ++expect;
    pos += view.total_size;
  }

  lsn_floor_ = lsn_floor;
  next_lsn_ = expect;
  recovered_root_ = root;
  append_pos_ = pos;
  size_t tail_index = pos / kPayloadSize;
  if (tail_index >= log_pages_.size()) {
    // The stream ended exactly at a page boundary with no successor (only
    // possible after unlucky tearing): extend the chain by one page,
    // persisting the successor before linking it.
    PageId fresh = disk_->Allocate();
    if (fresh == kInvalidPageId) {
      return Status::IoError("WAL log page allocation failed during open");
    }
    Page empty;
    empty.Zero();
    StoreU64(empty.bytes(), kInvalidPageId);
    CCDB_RETURN_IF_ERROR(disk_->Write(fresh, empty));
    StoreU64(images.back().bytes(), fresh);
    CCDB_RETURN_IF_ERROR(disk_->Write(log_pages_.back(), images.back()));
    log_pages_.push_back(fresh);
    images.push_back(empty);
  }
  tail_image_ = images[tail_index];
  return Status::OK();
}

Status WriteAheadLog::AppendBytes(const std::vector<uint8_t>& bytes) {
  const size_t pos = append_pos_;
  size_t i = pos / kPayloadSize;
  size_t off = pos % kPayloadSize;
  if (i >= log_pages_.size()) {
    return Status::Internal("WAL tail position beyond the log chain");
  }
  size_t consumed = 0;
  while (consumed < bytes.size()) {
    const size_t n = std::min(kPayloadSize - off, bytes.size() - consumed);
    std::memcpy(tail_image_.bytes() + 8 + off, bytes.data() + consumed, n);
    consumed += n;
    off += n;
    if (off == kPayloadSize) {
      // Page full: link a successor (reusing the chain when one exists)
      // before flushing, so a flushed-full page always points onward.
      if (i + 1 >= log_pages_.size()) {
        const PageId fresh = disk_->Allocate();
        if (fresh == kInvalidPageId) {
          return Status::IoError("WAL log page allocation failed");
        }
        // Persist the successor as an explicit end-of-chain page BEFORE
        // linking it: a linked page must never carry garbage in its next
        // field (a fresh all-zero page would read as "next = page 0" and
        // send the recovery walk into the header).
        Page empty;
        empty.Zero();
        StoreU64(empty.bytes(), kInvalidPageId);
        CCDB_RETURN_IF_ERROR(disk_->Write(fresh, empty));
        log_pages_.push_back(fresh);
      }
      StoreU64(tail_image_.bytes(), log_pages_[i + 1]);
      CCDB_RETURN_IF_ERROR(disk_->Write(log_pages_[i], tail_image_));
      ++i;
      off = 0;
      tail_image_.Zero();
      StoreU64(tail_image_.bytes(),
               i + 1 < log_pages_.size() ? log_pages_[i + 1] : kInvalidPageId);
    }
  }
  if (off > 0) {
    StoreU64(tail_image_.bytes(),
             i + 1 < log_pages_.size() ? log_pages_[i + 1] : kInvalidPageId);
    CCDB_RETURN_IF_ERROR(disk_->Write(log_pages_[i], tail_image_));
  }
  append_pos_ = pos + bytes.size();
  return Status::OK();
}

Status WriteAheadLog::CommitBatch(const std::vector<WalFrame>& frames,
                                  PageId catalog_root, uint64_t txn_id,
                                  uint64_t request_id) {
  std::vector<uint8_t> record;
  record.reserve(kRecordOverhead + frames.size() * kFrameSize);
  AppendU32(&record, kBatchMagic);
  AppendU64(&record, next_lsn_);
  AppendU64(&record, catalog_root);
  AppendU64(&record, txn_id);
  AppendU64(&record, request_id);
  AppendU32(&record, static_cast<uint32_t>(frames.size()));
  for (const WalFrame& frame : frames) {
    AppendU64(&record, frame.page_id);
    record.insert(record.end(), frame.image.bytes(),
                  frame.image.bytes() + kPageSize);
  }
  const size_t body = record.size();
  AppendU32(&record, Crc32(record.data() + 4, body - 4));
  AppendU32(&record, kCommitMagic);

  // On failure, roll the tail back to the record start so the next commit
  // overwrites the torn bytes instead of appending after them.
  const size_t saved_pos = append_pos_;
  const Page saved_tail = tail_image_;
  Status appended = AppendBytes(record);
  if (!appended.ok()) {
    append_pos_ = saved_pos;
    tail_image_ = saved_tail;
    return appended;
  }
  ++next_lsn_;
  bytes_appended_.fetch_add(record.size(), std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  CCDB_NOTE_BLOCKING_CALL("wal.fsync");
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status WriteAheadLog::Truncate(PageId catalog_root) {
  // Header first: once the root and LSN floor are durable, any records
  // still in the log are below the floor and recovery ignores them. The
  // reverse order could zero acknowledged batches before the root that
  // supersedes them is saved.
  CCDB_RETURN_IF_ERROR(WriteHeader(catalog_root, next_lsn_));
  recovered_root_ = catalog_root;
  lsn_floor_ = next_lsn_;
  // Reset the tail before zeroing: even if a zeroing write fails below,
  // new commits must overwrite from the front (their LSNs are at the
  // floor, so leftover old records can never be replayed).
  append_pos_ = 0;
  tail_image_.Zero();
  StoreU64(tail_image_.bytes(),
           log_pages_.size() > 1 ? log_pages_[1] : kInvalidPageId);
  Page zero;
  for (size_t i = 0; i < log_pages_.size(); ++i) {
    zero.Zero();
    StoreU64(zero.bytes(),
             i + 1 < log_pages_.size() ? log_pages_[i + 1] : kInvalidPageId);
    CCDB_RETURN_IF_ERROR(disk_->Write(log_pages_[i], zero));
  }
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status WriteAheadLog::ReadCommittedRecords(
    uint64_t from_lsn, std::vector<std::vector<uint8_t>>* out) {
  out->clear();
  if (from_lsn < lsn_floor_ || from_lsn > next_lsn_) {
    return Status::OutOfRange(
        "LSN " + std::to_string(from_lsn) + " outside the served window [" +
        std::to_string(lsn_floor_) + ", " + std::to_string(next_lsn_) + "]");
  }
  if (from_lsn == next_lsn_) return Status::OK();  // caught up

  // Rebuild the payload stream from disk — committed records occupy
  // exactly [0, append_pos_); every page up to there was durably written
  // by its commit's AppendBytes.
  std::vector<uint8_t> stream;
  stream.reserve(append_pos_);
  for (PageId id : log_pages_) {
    if (stream.size() >= append_pos_) break;
    Page page;
    CCDB_RETURN_IF_ERROR(disk_->Read(id, &page));
    stream.insert(stream.end(), page.bytes() + 8, page.bytes() + kPageSize);
  }
  if (stream.size() < append_pos_) {
    return Status::Internal("WAL chain shorter than its append position");
  }
  stream.resize(append_pos_);

  size_t pos = 0;
  uint64_t expect = lsn_floor_;
  while (pos < stream.size()) {
    RecordView view;
    if (ProbeRecord(stream.data(), stream.size(), pos, expect, &view) !=
        RecordProbe::kCommitted) {
      return Status::Internal("committed WAL record failed to re-parse at "
                              "LSN " + std::to_string(expect));
    }
    if (view.lsn >= from_lsn) {
      out->emplace_back(stream.begin() + static_cast<ptrdiff_t>(pos),
                        stream.begin() +
                            static_cast<ptrdiff_t>(pos + view.total_size));
    }
    ++expect;
    pos += view.total_size;
  }
  if (expect != next_lsn_) {
    return Status::Internal("WAL re-read stopped at LSN " +
                            std::to_string(expect) + ", expected " +
                            std::to_string(next_lsn_));
  }
  return Status::OK();
}

Status WriteAheadLog::WriteHeader(PageId catalog_root, uint64_t next_lsn) {
  Page header;
  header.Zero();
  StoreU32(header.bytes(), kHeaderMagic);
  StoreU64(header.bytes() + 4,
           log_pages_.empty() ? kInvalidPageId : log_pages_.front());
  StoreU64(header.bytes() + 12, catalog_root);
  StoreU64(header.bytes() + 20, next_lsn);
  CCDB_RETURN_IF_ERROR(disk_->Write(header_page_, header));
  CCDB_NOTE_BLOCKING_CALL("wal.fsync");
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ParseShippedBatch(const std::vector<uint8_t>& record,
                         uint64_t expect_lsn, ShippedBatch* out) {
  RecordView view;
  RecordProbe probe = ProbeRecord(record.data(), record.size(), 0, 0, &view);
  if (probe != RecordProbe::kCommitted) {
    return Status::InvalidArgument(
        "batch record rejected: " +
        std::string(probe == RecordProbe::kNone ? "no record framing"
                                                : "torn or corrupt record"));
  }
  if (view.total_size != record.size()) {
    return Status::InvalidArgument("batch record carries trailing bytes");
  }
  if (expect_lsn != 0 && view.lsn != expect_lsn) {
    return Status::OutOfRange("batch LSN " + std::to_string(view.lsn) +
                              ", expected " + std::to_string(expect_lsn) +
                              " (dropped or reordered shipment)");
  }
  out->lsn = view.lsn;
  out->catalog_root = view.catalog_root;
  out->txn_id = view.txn_id;
  out->request_id = view.request_id;
  out->frames.clear();
  out->frames.reserve(view.n_frames);
  for (uint32_t f = 0; f < view.n_frames; ++f) {
    const size_t at = view.frames_at + static_cast<size_t>(f) * kFrameSize;
    WalFrame frame;
    frame.page_id = LoadU64(&record[at]);
    std::memcpy(frame.image.bytes(), &record[at + 8], kPageSize);
    out->frames.push_back(std::move(frame));
  }
  return Status::OK();
}

// --- WalPager ---------------------------------------------------------------------

void WalPager::Begin() {
  assert(!in_batch_ && "WAL batches do not nest");
  staged_.clear();
  batch_poisoned_ = false;
  in_batch_ = true;
}

Status WalPager::Read(PageId id, Page* out) {
  if (in_batch_) {
    auto staged = staged_.find(id);
    if (staged != staged_.end()) {
      *out = staged->second;
      return Status::OK();
    }
  }
  auto pending = unapplied_.find(id);
  if (pending != unapplied_.end()) {
    *out = pending->second;
    return Status::OK();
  }
  return base_->Read(id, out);
}

Status WalPager::Write(PageId id, const Page& page) {
  if (in_batch_) {
    // Refuse to stage garbage ids (e.g. after a failed Allocate): a
    // journaled frame must be applicable to the base disk.
    if (id == kInvalidPageId) {
      return Status::IoError("staged write to an invalid page id");
    }
    staged_[id] = page;
    return Status::OK();
  }
  return base_->Write(id, page);
}

Status WalPager::Commit(PageId catalog_root, uint64_t txn_id,
                        uint64_t request_id) {
  in_batch_ = false;
  if (batch_poisoned_) {
    staged_.clear();
    return Status::IoError("page allocation failed during the batch");
  }
  std::vector<WalFrame> frames;
  frames.reserve(staged_.size());
  for (const auto& [id, image] : staged_) {
    frames.push_back(WalFrame{id, image});
  }
  Status committed =
      wal_->CommitBatch(frames, catalog_root, txn_id, request_id);
  if (!committed.ok()) {
    staged_.clear();
    return committed;
  }
  // Acknowledged. Apply to home pages; failures keep the image in the
  // overlay (reads stay correct) and recovery re-applies from the log.
  for (auto& [id, image] : staged_) {
    unapplied_[id] = std::move(image);
  }
  staged_.clear();
  // Best-effort eager apply: a failure here leaves the images in the
  // overlay for a later ApplyUnapplied or recovery — the batch is already
  // durably committed either way.
  IgnoreError(ApplyUnapplied());
  return Status::OK();
}

void WalPager::Abort() {
  staged_.clear();
  in_batch_ = false;
}

Status WalPager::ApplyUnapplied() {
  Status first_failure = Status::OK();
  for (auto it = unapplied_.begin(); it != unapplied_.end();) {
    Status applied = base_->Write(it->first, it->second);
    if (applied.ok()) {
      it = unapplied_.erase(it);
    } else {
      apply_failures_.fetch_add(1, std::memory_order_relaxed);
      if (first_failure.ok()) first_failure = applied;
      ++it;
    }
  }
  return first_failure;
}

// --- DurableStore -----------------------------------------------------------------

Result<std::unique_ptr<DurableStore>> DurableStore::Create(
    PageManager* disk, size_t cache_capacity) {
  std::unique_ptr<DurableStore> store(new DurableStore(disk, cache_capacity));
  MutexLock lock(store->mu_);
  CCDB_RETURN_IF_ERROR(store->wal_.Create());
  return store;
}

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    PageManager* disk, PageId wal_root, size_t cache_capacity) {
  std::unique_ptr<DurableStore> store(new DurableStore(disk, cache_capacity));
  MutexLock lock(store->mu_);
  CCDB_RETURN_IF_ERROR(store->wal_.Open(wal_root));
  store->catalog_root_ = store->wal_.recovered_catalog_root();
  return store;
}

Result<std::unique_ptr<DurableStore>> DurableStore::CreateAtRoot(
    PageManager* disk, PageId catalog_root, size_t cache_capacity) {
  std::unique_ptr<DurableStore> store(new DurableStore(disk, cache_capacity));
  MutexLock lock(store->mu_);
  // A fresh log on the adopted disk; the existing pages (including the
  // catalog at `catalog_root`) are untouched and become the new leader's
  // base state.
  CCDB_RETURN_IF_ERROR(store->wal_.Create());
  store->catalog_root_ = catalog_root;
  return store;
}

Status DurableStore::CommitCatalog(const Database& db, uint64_t txn_id,
                                   uint64_t request_id) {
  MutexLock lock(mu_);
  wal_pager_.Begin();
  Result<PageId> root = SaveDatabase(&pool_, db);
  if (!root.ok()) {
    wal_pager_.Abort();
    pool_.Clear();  // drop cached copies of the aborted pages
    return root.status();
  }
  Status committed = wal_pager_.Commit(*root, txn_id, request_id);
  if (!committed.ok()) {
    pool_.Clear();
    return committed;
  }
  catalog_root_ = *root;
  return Status::OK();
}

Result<Database> DurableStore::LoadCatalog() {
  MutexLock lock(mu_);
  if (catalog_root_ == kInvalidPageId) return Database{};
  return LoadDatabase(&pool_, catalog_root_);
}

Result<DurableStore::ReplicationSnapshot> DurableStore::SnapshotForReplica() {
  MutexLock lock(mu_);
  ReplicationSnapshot snap;
  snap.next_lsn = wal_.next_lsn();
  snap.catalog_root = catalog_root_;
  const size_t n = disk_->num_pages();
  snap.pages.resize(n);
  for (PageId id = 0; id < n; ++id) {
    // Through the staging overlay: a committed-but-unapplied image is the
    // page's true content (recovery would re-apply it).
    CCDB_RETURN_IF_ERROR(wal_pager_.Read(id, &snap.pages[id]));
  }
  return snap;
}

Status DurableStore::ReadShipment(uint64_t from_lsn,
                                  std::vector<std::vector<uint8_t>>* records,
                                  uint64_t* next_lsn) {
  MutexLock lock(mu_);
  *next_lsn = wal_.next_lsn();
  return wal_.ReadCommittedRecords(from_lsn, records);
}

Status DurableStore::Checkpoint() {
  MutexLock lock(mu_);
  // The log is the only redo copy of unapplied images — they must reach
  // their home pages before the log may be truncated.
  CCDB_RETURN_IF_ERROR(wal_pager_.ApplyUnapplied());
  return wal_.Truncate(catalog_root_);
}

}  // namespace ccdb
