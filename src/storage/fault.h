#ifndef CCDB_STORAGE_FAULT_H_
#define CCDB_STORAGE_FAULT_H_

/// \file fault.h
/// Fault injection for crash-safety testing.
///
/// `FaultInjectingPager` is a simulated disk (it inherits the real
/// `PageManager` storage) that can be armed to misbehave at the Nth I/O:
///
///  - `kFail`      — that one operation returns an error, then the disk is
///                   healthy again (a transient I/O error).
///  - `kTornWrite` — the write persists only the first half of the new
///                   image over the old page (a torn sector), reports
///                   failure, and the disk "crashes": every later
///                   operation fails until `ClearFault()`.
///  - `kCrash`     — the operation does nothing and fails, and so does
///                   every later one until `ClearFault()` (power loss:
///                   whatever was durable before stays, nothing new
///                   lands).
///
/// `ClearFault()` models the reboot: the page array is whatever survived,
/// and recovery code can be pointed at it. The crash-matrix test in
/// `tests/wal_test.cc` arms each mode at every I/O index in turn.

#include <cstdint>

#include "storage/page.h"
#include "storage/pager.h"
#include "util/mutex.h"
#include "util/status.h"

namespace ccdb {

class FaultInjectingPager : public PageManager {
 public:
  enum class Fault { kNone, kFail, kTornWrite, kCrash };

  /// Arms `fault` to fire on the first operation after `ios_before_fault`
  /// further operations have succeeded (0 = the very next one).
  void Arm(Fault fault, uint64_t ios_before_fault);

  /// Reboot: clears the crashed state (and any armed fault). Durable pages
  /// are untouched.
  void ClearFault();

  /// True once the armed fault has fired (sticky until the next Arm).
  bool fired() const;

  /// True while the disk is down after a kTornWrite/kCrash fault.
  bool crashed() const;

  /// Operations seen so far (including failed ones) — the injection-point
  /// index space used by Arm().
  uint64_t io_count() const;

  PageId Allocate() override;
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;

 private:
  enum class Decision { kProceed, kFailOp, kTear };

  /// Counts one operation and decides its fate.
  Decision Account(bool is_write) CCDB_EXCLUDES(mu_);

  mutable Mutex mu_{"storage.fault"};
  Fault armed_ CCDB_GUARDED_BY(mu_) = Fault::kNone;
  uint64_t remaining_ CCDB_GUARDED_BY(mu_) = 0;
  bool fired_ CCDB_GUARDED_BY(mu_) = false;
  bool crashed_ CCDB_GUARDED_BY(mu_) = false;
  uint64_t io_count_ CCDB_GUARDED_BY(mu_) = 0;
};

}  // namespace ccdb

#endif  // CCDB_STORAGE_FAULT_H_
