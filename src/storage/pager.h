#ifndef CCDB_STORAGE_PAGER_H_
#define CCDB_STORAGE_PAGER_H_

/// \file pager.h
/// The simulated disk: a growable array of pages with access counters.

#include <atomic>
#include <memory>
#include <vector>

#include "storage/page.h"
#include "util/mutex.h"
#include "util/status.h"

namespace ccdb {

/// I/O statistics snapshot of a PageManager.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;

  uint64_t total_accesses() const { return reads + writes; }
};

/// A simulated disk: page-granular reads and writes, each one counted.
///
/// Thread-safe: concurrent reads share a lock, writes and allocations are
/// exclusive, and the access counters are atomic so parallel queries can
/// be metered without tearing (the service layer runs many read-only
/// queries at once — see `service/query_service.h`).
/// The accessors are virtual too so wrappers (the WAL's staging pager,
/// the fault injector) can delegate or override them.
class PageManager {
 public:
  PageManager() = default;
  virtual ~PageManager() = default;

  /// Allocates a new zeroed page and returns its id.
  virtual PageId Allocate();

  /// Copies page `id` into `*out`; counts one disk read.
  virtual Status Read(PageId id, Page* out);

  /// Stores `page` at `id`; counts one disk write.
  virtual Status Write(PageId id, const Page& page);

  virtual size_t num_pages() const {
    ReaderLock lock(mu_);
    return pages_.size();
  }

  /// A consistent point-in-time copy of the counters.
  virtual IoStats stats() const {
    IoStats snapshot;
    snapshot.reads = reads_.load(std::memory_order_relaxed);
    snapshot.writes = writes_.load(std::memory_order_relaxed);
    snapshot.allocations = allocations_.load(std::memory_order_relaxed);
    return snapshot;
  }

  virtual void ResetStats() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
    allocations_.store(0, std::memory_order_relaxed);
  }

 private:
  mutable SharedMutex mu_{"storage.pager"};
  std::vector<std::unique_ptr<Page>> pages_ CCDB_GUARDED_BY(mu_);
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> allocations_{0};
};

}  // namespace ccdb

#endif  // CCDB_STORAGE_PAGER_H_
