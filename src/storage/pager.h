#ifndef CCDB_STORAGE_PAGER_H_
#define CCDB_STORAGE_PAGER_H_

/// \file pager.h
/// The simulated disk: a growable array of pages with access counters.

#include <memory>
#include <vector>

#include "storage/page.h"
#include "util/status.h"

namespace ccdb {

/// I/O statistics of a PageManager.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;

  uint64_t total_accesses() const { return reads + writes; }
};

/// A simulated disk: page-granular reads and writes, each one counted.
/// Not thread-safe (CCDB is a single-threaded prototype, like CQA/CDB).
/// Read/Write are virtual so tests can inject I/O failures.
class PageManager {
 public:
  PageManager() = default;
  virtual ~PageManager() = default;

  /// Allocates a new zeroed page and returns its id.
  virtual PageId Allocate();

  /// Copies page `id` into `*out`; counts one disk read.
  virtual Status Read(PageId id, Page* out);

  /// Stores `page` at `id`; counts one disk write.
  virtual Status Write(PageId id, const Page& page);

  size_t num_pages() const { return pages_.size(); }
  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats{}; }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
  IoStats stats_;
};

}  // namespace ccdb

#endif  // CCDB_STORAGE_PAGER_H_
