#ifndef CCDB_STORAGE_CATALOG_H_
#define CCDB_STORAGE_CATALOG_H_

/// \file catalog.h
/// Database persistence on the simulated disk.
///
/// A persisted database is a *catalog heap file* whose records are
/// (relation name, serialized schema, first page of the relation's tuple
/// heap, tuple count); each relation's tuples live in their own chained
/// heap file. `SaveDatabase` returns the catalog's first page id — the
/// single root from which `LoadDatabase` reconstructs everything after a
/// "restart" (a fresh process over the same PageManager).

#include "data/database.h"
#include "storage/heap_file.h"

namespace ccdb {

/// Writes `db` to `pool`'s disk; returns the catalog root page id.
Result<PageId> SaveDatabase(BufferPool* pool, const Database& db);

/// Reconstructs a database from a catalog root written by SaveDatabase.
/// Every tuple is re-validated against its schema on the way in.
Result<Database> LoadDatabase(BufferPool* pool, PageId catalog_root);

}  // namespace ccdb

#endif  // CCDB_STORAGE_CATALOG_H_
