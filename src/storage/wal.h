#ifndef CCDB_STORAGE_WAL_H_
#define CCDB_STORAGE_WAL_H_

/// \file wal.h
/// Crash safety: page-level write-ahead logging and recovery.
///
/// The original CQA/CDB was a persistent system; this layer gives CCDB the
/// durability story the simulated disk was missing. The design is a classic
/// redo-only (after-image) WAL:
///
///  - A *batch* is the unit of atomicity: the set of dirty pages produced
///    by one logical mutation (e.g. one catalog save). `WalPager` stages a
///    batch's page writes in memory; nothing touches the heap area of the
///    disk until the batch is journaled.
///  - `WriteAheadLog::CommitBatch` serializes the batch — LSN, catalog
///    root, full 4 KiB after-images of every dirty page, a CRC-32 over all
///    of it, and a trailing commit marker — and appends it to a chain of
///    log pages. On the simulated write-through disk a page write that
///    returns OK is durable, so the final log-page write (the one carrying
///    the CRC and commit marker) doubles as the fsync: `CommitBatch`
///    returns OK if and only if the commit record is durable, and that is
///    the acknowledgment point.
///  - Only after the commit record is durable are the staged images
///    applied to their home pages. An apply failure does not un-commit the
///    batch: the images stay in `WalPager`'s overlay (so reads remain
///    correct) and recovery re-applies them from the log at next open.
///  - `WriteAheadLog::Open` replays: it walks the log chain, accepts
///    records while the framing is intact (magic, CRC, commit marker) and
///    LSNs are exactly sequential starting from the header's `next_lsn`,
///    rewrites every accepted page image (idempotent redo), and discards
///    the torn tail. The sequential-LSN rule also rejects stale records
///    left over from before a checkpoint.
///  - `Truncate` (the `\checkpoint` operation) first persists the current
///    catalog root and next LSN in the WAL header, then zeroes the log
///    chain. Crashing between the two steps is safe: the stale records
///    that survive carry LSNs below the header's floor and are ignored.
///
/// `DurableStore` packages the stack — base disk, WAL, staging pager,
/// buffer pool — behind a catalog-level API (`CommitCatalog` /
/// `LoadCatalog` / `Checkpoint`) used by the query service and the shell.
/// The store serializes its own mutations on an internal annotated mutex
/// (the WAL and staging pager are `CCDB_GUARDED_BY` it), so the documented
/// "commits are serialized" contract is machine-checked rather than an
/// obligation on callers; `stats()` may be called concurrently (it takes
/// the same lock).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "data/database.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/pager.h"
#include "util/mutex.h"
#include "util/status.h"

namespace ccdb {

/// CRC-32 (IEEE 802.3 polynomial, as in zlib) over a byte range.
uint32_t Crc32(const uint8_t* data, size_t len);

/// Point-in-time snapshot of a WAL's counters.
struct WalStats {
  uint64_t bytes_appended = 0;      ///< log bytes written by commits
  uint64_t batches_committed = 0;   ///< acknowledged commits
  uint64_t fsyncs = 0;              ///< commit-record and header syncs
  uint64_t batches_recovered = 0;   ///< batches replayed by Open()
  uint64_t records_discarded = 0;   ///< torn/stale tail records dropped
  uint64_t apply_failures = 0;      ///< post-commit home-page write errors
  uint64_t checkpoints = 0;         ///< successful Truncate() calls
};

/// One dirty page queued for journaling: a full after-image.
struct WalFrame {
  PageId page_id = kInvalidPageId;
  Page image;
};

/// One committed batch decoded from its on-wire/on-disk record — what a
/// read replica applies. Produced by `ParseShippedBatch`.
struct ShippedBatch {
  uint64_t lsn = 0;
  PageId catalog_root = kInvalidPageId;
  /// Transaction id carried by the commit record; 0 for autocommit
  /// batches. A multi-statement transaction is exactly one batch, so a
  /// parsed record is always a whole transaction.
  uint64_t txn_id = 0;
  /// Client-minted idempotency key of the commit that produced this
  /// batch; 0 for local/unkeyed commits. Replicas feed it to the service
  /// dedup table so a retried COMMIT stays deduplicated across failover.
  uint64_t request_id = 0;
  std::vector<WalFrame> frames;
};

/// Validates and decodes one raw batch record (the exact bytes
/// `WriteAheadLog` journals: magic, LSN, root, frames, CRC-32, commit
/// marker). This is the same framing check recovery applies, so a replica
/// rejects a dropped/truncated/corrupted/reordered shipment exactly where
/// recovery would reject a torn tail. `expect_lsn` enforces the sequential
/// apply order (0 skips the check — used by tests).
Status ParseShippedBatch(const std::vector<uint8_t>& record,
                         uint64_t expect_lsn, ShippedBatch* out);

/// The page-chained redo log. See the file comment for the protocol.
class WriteAheadLog {
 public:
  explicit WriteAheadLog(PageManager* disk) : disk_(disk) {}

  /// Formats a fresh log: allocates the header and first log page and
  /// writes both. The header's page id (`header_page()`) is the root a
  /// later `Open` needs.
  Status Create();

  /// Opens an existing log: replays every committed batch onto the disk,
  /// discards the torn tail, and positions appends after the last
  /// committed record.
  Status Open(PageId header_page);

  /// Journals one batch; `catalog_root` is the batch's commit metadata
  /// (the catalog root the database has after this batch), `txn_id` tags
  /// the batch with the committing transaction (0 = autocommit), and
  /// `request_id` carries the client's idempotency key (0 = unkeyed).
  /// Returns OK iff the commit record is durable — the acknowledgment
  /// point. On failure the in-memory append position is rolled back so
  /// the next commit overwrites the torn record.
  Status CommitBatch(const std::vector<WalFrame>& frames, PageId catalog_root,
                     uint64_t txn_id = 0, uint64_t request_id = 0);

  /// Checkpoint: persists `catalog_root` and the LSN floor in the header,
  /// then zeroes the log chain so recovery replays nothing.
  Status Truncate(PageId catalog_root);

  /// Re-reads the log chain and returns the raw record bytes of every
  /// committed batch with LSN >= `from_lsn`, in LSN order (the shipping
  /// source for read replicas; each record round-trips through
  /// `ParseShippedBatch`). kOutOfRange when `from_lsn` is below the
  /// current LSN floor (a checkpoint truncated those records — the
  /// follower must re-bootstrap from a snapshot) or beyond `next_lsn()`.
  Status ReadCommittedRecords(uint64_t from_lsn,
                              std::vector<std::vector<uint8_t>>* out);

  PageId header_page() const { return header_page_; }

  /// LSN of the oldest record the log can still serve (advanced by
  /// Truncate to the post-checkpoint position).
  uint64_t lsn_floor() const { return lsn_floor_; }

  /// Catalog root recovered by Open() (or written by the last Truncate);
  /// kInvalidPageId when no batch has ever committed.
  PageId recovered_catalog_root() const { return recovered_root_; }

  uint64_t next_lsn() const { return next_lsn_; }
  size_t log_page_count() const { return log_pages_.size(); }

  WalStats stats() const {
    WalStats out;
    out.bytes_appended = bytes_appended_.load(std::memory_order_relaxed);
    out.batches_committed = batches_.load(std::memory_order_relaxed);
    out.fsyncs = fsyncs_.load(std::memory_order_relaxed);
    out.batches_recovered = recovered_.load(std::memory_order_relaxed);
    out.records_discarded = discarded_.load(std::memory_order_relaxed);
    out.checkpoints = checkpoints_.load(std::memory_order_relaxed);
    return out;
  }

  /// Bytes of log-page payload per page (the rest is the chain pointer).
  static constexpr size_t kPayloadSize = kPageSize - 8;

 private:
  /// Streams `bytes` into the log starting at `append_pos_`, writing every
  /// touched page; the final page write carries the record's tail.
  Status AppendBytes(const std::vector<uint8_t>& bytes);

  /// Writes the header page with the given root and LSN floor.
  Status WriteHeader(PageId catalog_root, uint64_t next_lsn);

  PageManager* disk_;
  PageId header_page_ = kInvalidPageId;
  std::vector<PageId> log_pages_;  // the chain, in order
  size_t append_pos_ = 0;          // byte offset into the payload stream
  Page tail_image_;                // in-memory image of the tail log page
  uint64_t next_lsn_ = 1;
  uint64_t lsn_floor_ = 1;
  PageId recovered_root_ = kInvalidPageId;

  std::atomic<uint64_t> bytes_appended_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> recovered_{0};
  std::atomic<uint64_t> discarded_{0};
  std::atomic<uint64_t> checkpoints_{0};
};

/// A PageManager that stages writes for write-ahead logging.
///
/// Between `Begin()` and `Commit()`, writes land in an in-memory staging
/// map instead of the base disk, and reads resolve staged pages first —
/// so `HeapFile`/catalog code runs unmodified while its dirty pages are
/// captured for the batch. `Commit` journals the staged images through the
/// WAL (the acknowledgment point) and then applies them to their home
/// pages; images whose apply failed stay visible through the overlay until
/// a later apply or recovery fixes the base disk. Outside a batch, writes
/// pass straight through.
class WalPager : public PageManager {
 public:
  WalPager(PageManager* base, WriteAheadLog* wal) : base_(base), wal_(wal) {}

  /// Starts staging a batch. Batches do not nest.
  void Begin();

  /// Journals the staged pages with `catalog_root` (plus the committing
  /// transaction's id and the client's idempotency key, both 0 when
  /// absent) as commit metadata and applies them. Returns OK iff the
  /// batch is durable in the log; on failure the staged writes are
  /// discarded (the batch never happened).
  Status Commit(PageId catalog_root, uint64_t txn_id = 0,
                uint64_t request_id = 0);

  /// Discards the staged writes.
  void Abort();

  /// Retries any committed-but-unapplied images (used by checkpoint).
  Status ApplyUnapplied();

  bool in_batch() const { return in_batch_; }
  size_t unapplied_count() const { return unapplied_.size(); }
  uint64_t apply_failures() const {
    return apply_failures_.load(std::memory_order_relaxed);
  }

  /// Allocation failure inside a batch poisons it: callers like HeapFile
  /// ignore a failed Allocate and may never touch the bogus page again,
  /// so without the poison flag an "empty heap on an invalid page" could
  /// silently commit as the catalog root.
  PageId Allocate() override {
    PageId id = base_->Allocate();
    if (in_batch_ && id == kInvalidPageId) batch_poisoned_ = true;
    return id;
  }
  Status Read(PageId id, Page* out) override;
  Status Write(PageId id, const Page& page) override;
  size_t num_pages() const override { return base_->num_pages(); }
  IoStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

 private:
  PageManager* base_;
  WriteAheadLog* wal_;
  bool in_batch_ = false;
  bool batch_poisoned_ = false;
  std::map<PageId, Page> staged_;     // current batch's dirty pages
  std::map<PageId, Page> unapplied_;  // committed, home write still pending
  std::atomic<uint64_t> apply_failures_{0};
};

/// The durable storage stack: base disk -> WAL -> staging pager -> buffer
/// pool, plus the catalog root the WAL last committed or recovered.
class DurableStore {
 public:
  /// Formats a fresh store on `disk` (not owned; must outlive the store).
  static Result<std::unique_ptr<DurableStore>> Create(
      PageManager* disk, size_t cache_capacity = 64);

  /// Reopens a store: runs WAL recovery, replaying committed batches and
  /// discarding the torn tail. `wal_root` is a previous store's
  /// `wal_root()`.
  static Result<std::unique_ptr<DurableStore>> Open(
      PageManager* disk, PageId wal_root, size_t cache_capacity = 64);

  /// Promotion path: adopts an existing disk whose pages already hold a
  /// consistent catalog at `catalog_root` (a caught-up replica's state)
  /// and formats a *fresh* WAL on it, making the store writable. Unlike
  /// `Open`, nothing is replayed — the replica applied every shipped
  /// batch before calling this. The next commit starts at LSN 1 of the
  /// new leader's log.
  static Result<std::unique_ptr<DurableStore>> CreateAtRoot(
      PageManager* disk, PageId catalog_root, size_t cache_capacity = 64);

  /// Saves `db` as one logged atomic batch (a snapshot read view works —
  /// `db` is only read through its virtual interface). `txn_id` tags the
  /// batch's commit record (0 = autocommit), making a multi-statement
  /// transaction exactly one all-or-nothing batch for recovery and the
  /// shipping replica. Returns OK iff the batch is durable — the write is
  /// acknowledged only after the WAL commit record is on disk. On failure
  /// the store's state is unchanged.
  Status CommitCatalog(const Database& db, uint64_t txn_id = 0,
                       uint64_t request_id = 0) CCDB_EXCLUDES(mu_);

  /// Loads the last committed catalog (empty when none was ever
  /// committed).
  Result<Database> LoadCatalog() CCDB_EXCLUDES(mu_);

  /// Applies any pending images and truncates the log.
  Status Checkpoint() CCDB_EXCLUDES(mu_);

  // --- Replication (the WAL-shipping leader side) ---

  /// A consistent point-in-time image for replica bootstrap: every disk
  /// page (read through the staging overlay, so committed-but-unapplied
  /// images are included), the catalog root, and the LSN the follower is
  /// caught up to after loading it.
  struct ReplicationSnapshot {
    uint64_t next_lsn = 1;           ///< follower is at next_lsn - 1
    PageId catalog_root = kInvalidPageId;
    std::vector<Page> pages;         ///< page id = vector index
  };
  Result<ReplicationSnapshot> SnapshotForReplica() CCDB_EXCLUDES(mu_);

  /// Raw committed batch records with LSN >= `from_lsn`, in order, plus
  /// the current `*next_lsn` (what the follower should ask for next).
  /// kOutOfRange when the log can no longer serve `from_lsn` (checkpoint
  /// truncated it, or the follower is ahead of this leader) — the
  /// follower must re-bootstrap from `SnapshotForReplica`.
  Status ReadShipment(uint64_t from_lsn,
                      std::vector<std::vector<uint8_t>>* records,
                      uint64_t* next_lsn) CCDB_EXCLUDES(mu_);

  /// The WAL header page id — the single root needed to `Open` the store.
  PageId wal_root() const CCDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return wal_.header_page();
  }
  PageId catalog_root() const CCDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return catalog_root_;
  }

  /// The LSN the next commit will receive (health surface: `wal.lsn`).
  uint64_t next_lsn() const CCDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return wal_.next_lsn();
  }

  WalStats stats() const CCDB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    WalStats out = wal_.stats();
    out.apply_failures = wal_pager_.apply_failures();
    return out;
  }

  BufferPool* pool() { return &pool_; }

 private:
  DurableStore(PageManager* disk, size_t cache_capacity)
      : disk_(disk), wal_(disk), wal_pager_(disk, &wal_),
        pool_(&wal_pager_, cache_capacity) {}

  PageManager* disk_;
  /// Serializes commits, checkpoints, and loads against each other: the
  /// whole WAL/staging stack below is single-writer by construction.
  mutable Mutex mu_ CCDB_LOCK_ORDER(
      "storage.pager", "storage.pool_shard", "storage.fault")
      {"storage.store"};
  WriteAheadLog wal_ CCDB_GUARDED_BY(mu_);
  WalPager wal_pager_ CCDB_GUARDED_BY(mu_);
  /// Internally synchronized; reads through it are additionally serialized
  /// against commits by the service's exclusive catalog lock.
  BufferPool pool_;
  PageId catalog_root_ CCDB_GUARDED_BY(mu_) = kInvalidPageId;
};

}  // namespace ccdb

#endif  // CCDB_STORAGE_WAL_H_
