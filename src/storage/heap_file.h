#ifndef CCDB_STORAGE_HEAP_FILE_H_
#define CCDB_STORAGE_HEAP_FILE_H_

/// \file heap_file.h
/// Slotted-page heap files over the simulated disk.
///
/// A heap file is the unindexed base storage for a relation: the
/// sequential-scan baseline that §5's index structures are compared
/// against. Records are stored in slotted pages (slot directory grows from
/// the page tail) and addressed by stable `RecordId`s, which the R*-tree
/// stores as its leaf payloads. Pages are chained on disk (each header
/// holds the next page id), so a heap file can be *reopened* from its
/// first page — the mechanism catalog persistence builds on.

#include <functional>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace ccdb {

/// Stable address of a record: page + slot.
struct RecordId {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const RecordId& other) const {
    return page == other.page && slot == other.slot;
  }
  bool operator!=(const RecordId& other) const { return !(*this == other); }
  bool operator<(const RecordId& other) const {
    if (page != other.page) return page < other.page;
    return slot < other.slot;
  }

  /// Packs into a u64 (page in the high 48 bits) for index payloads.
  uint64_t Pack() const {
    return (page << 16) | slot;
  }
  static RecordId Unpack(uint64_t packed) {
    return RecordId{packed >> 16, static_cast<uint16_t>(packed & 0xffff)};
  }
};

/// An append-only slotted-page heap file.
///
/// Page layout:
///   [u16 slot_count][u16 free_offset][u64 next_page][records ...][slots]
/// where each slot (from the page end, backwards) is [u16 offset][u16 len]
/// and next_page is kInvalidPageId on the last page.
class HeapFile {
 public:
  /// Creates an empty heap file (allocates its first page).
  explicit HeapFile(BufferPool* pool);

  /// Reopens an existing heap file from its first page, following the
  /// on-disk page chain.
  static Result<HeapFile> Open(BufferPool* pool, PageId first_page);

  /// Appends a record; fails if it cannot fit in a fresh page.
  Result<RecordId> Append(const std::vector<uint8_t>& record);

  /// Reads one record.
  Result<std::vector<uint8_t>> Read(RecordId id);

  /// Full scan in storage order; the visitor returns false to stop early.
  Status Scan(
      const std::function<bool(RecordId, const std::vector<uint8_t>&)>&
          visitor);

  size_t num_records() const { return num_records_; }
  size_t num_pages() const { return pages_.size(); }
  PageId first_page() const { return pages_.front(); }

  /// Largest record a fresh page can hold.
  static constexpr size_t MaxRecordSize() {
    return kPageSize - kHeaderSize - kSlotSize;
  }

 private:
  HeapFile() = default;

  static constexpr size_t kHeaderSize = 12;  // slot_count+free_offset+next
  static constexpr size_t kSlotSize = 4;     // offset + len

  BufferPool* pool_ = nullptr;
  std::vector<PageId> pages_;  // in append order
  size_t num_records_ = 0;
};

}  // namespace ccdb

#endif  // CCDB_STORAGE_HEAP_FILE_H_
