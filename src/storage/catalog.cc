#include "storage/catalog.h"

#include "storage/serde.h"

namespace ccdb {

Result<PageId> SaveDatabase(BufferPool* pool, const Database& db) {
  HeapFile catalog(pool);
  for (const std::string& name : db.Names()) {
    CCDB_ASSIGN_OR_RETURN(const Relation* rel, db.Get(name));
    // The relation's tuples in their own heap file.
    HeapFile tuples(pool);
    for (const Tuple& t : rel->tuples()) {
      CCDB_RETURN_IF_ERROR(tuples.Append(SerializeTuple(t)).status());
    }
    // One catalog record describing the relation.
    Writer w;
    w.PutString(name);
    std::vector<uint8_t> schema_bytes = SerializeSchema(rel->schema());
    w.PutU32(static_cast<uint32_t>(schema_bytes.size()));
    w.PutBytes(schema_bytes.data(), schema_bytes.size());
    w.PutU64(tuples.first_page());
    w.PutU64(rel->size());
    CCDB_RETURN_IF_ERROR(catalog.Append(w.TakeBuffer()).status());
  }
  return catalog.first_page();
}

Result<Database> LoadDatabase(BufferPool* pool, PageId catalog_root) {
  CCDB_ASSIGN_OR_RETURN(HeapFile catalog, HeapFile::Open(pool, catalog_root));
  Database db;
  Status failure = Status::OK();
  Status scanned = catalog.Scan([&](RecordId,
                                    const std::vector<uint8_t>& record) {
    Reader r(record);
    auto parse = [&]() -> Status {
      CCDB_ASSIGN_OR_RETURN(std::string name, r.GetString());
      CCDB_ASSIGN_OR_RETURN(uint32_t schema_len, r.GetU32());
      if (schema_len > record.size()) {
        return Status::IoError("corrupt catalog record for '" + name + "'");
      }
      std::vector<uint8_t> schema_bytes;
      schema_bytes.reserve(schema_len);
      for (uint32_t i = 0; i < schema_len; ++i) {
        CCDB_ASSIGN_OR_RETURN(uint8_t byte, r.GetU8());
        schema_bytes.push_back(byte);
      }
      CCDB_ASSIGN_OR_RETURN(Schema schema,
                            DeserializeSchema(schema_bytes));
      CCDB_ASSIGN_OR_RETURN(uint64_t first_page, r.GetU64());
      CCDB_ASSIGN_OR_RETURN(uint64_t expected_count, r.GetU64());

      CCDB_ASSIGN_OR_RETURN(HeapFile tuples, HeapFile::Open(pool, first_page));
      Relation rel(std::move(schema));
      Status tuple_failure = Status::OK();
      CCDB_RETURN_IF_ERROR(tuples.Scan(
          [&](RecordId, const std::vector<uint8_t>& bytes) {
            auto tuple = DeserializeTuple(bytes);
            if (!tuple.ok()) {
              tuple_failure = tuple.status();
              return false;
            }
            Status inserted = rel.Insert(std::move(tuple).value());
            if (!inserted.ok()) {
              tuple_failure = inserted;
              return false;
            }
            return true;
          }));
      CCDB_RETURN_IF_ERROR(tuple_failure);
      if (rel.size() != expected_count) {
        return Status::IoError(
            "relation '" + name + "': catalog says " +
            std::to_string(expected_count) + " tuples, heap holds " +
            std::to_string(rel.size()));
      }
      return db.Create(name, std::move(rel));
    };
    failure = parse();
    return failure.ok();
  });
  CCDB_RETURN_IF_ERROR(scanned);
  CCDB_RETURN_IF_ERROR(failure);
  return db;
}

}  // namespace ccdb
