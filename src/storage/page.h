#ifndef CCDB_STORAGE_PAGE_H_
#define CCDB_STORAGE_PAGE_H_

/// \file page.h
/// Fixed-size pages of the simulated disk.
///
/// The paper's indexing experiments (§5.4) measure *number of disk
/// accesses*. CCDB substitutes a simulated page-granular store for a real
/// disk (see DESIGN.md): the metric is a deterministic structural count, so
/// a simulated pager measures exactly what the original measured, minus
/// hardware noise.

#include <array>
#include <cstdint>
#include <cstring>

namespace ccdb {

/// Size of every page in bytes (a common DBMS default).
inline constexpr size_t kPageSize = 4096;

/// Page identifier; 0 is a valid id (the first allocated page).
using PageId = uint64_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = ~PageId{0};

/// A page image in memory.
struct Page {
  std::array<uint8_t, kPageSize> data{};

  void Zero() { data.fill(0); }
  uint8_t* bytes() { return data.data(); }
  const uint8_t* bytes() const { return data.data(); }
};

}  // namespace ccdb

#endif  // CCDB_STORAGE_PAGE_H_
