#ifndef CCDB_STORAGE_BUFFER_POOL_H_
#define CCDB_STORAGE_BUFFER_POOL_H_

/// \file buffer_pool.h
/// LRU page cache over the simulated disk.
///
/// The §5.4 experiments count *structural* disk accesses per query, so the
/// benchmark harness runs with `capacity == 0` (pass-through: every page
/// touch is a disk access, as in the classic R-tree evaluation
/// methodology). A non-zero capacity turns caching on for the system's
/// normal operation and for the cache-sensitivity ablation.

#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/pager.h"

namespace ccdb {

/// Cache statistics.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
};

/// Write-through LRU buffer pool.
class BufferPool {
 public:
  /// `capacity` pages of cache; 0 disables caching entirely.
  BufferPool(PageManager* disk, size_t capacity)
      : disk_(disk), capacity_(capacity) {}

  /// Reads a page through the cache.
  Status Get(PageId id, Page* out);

  /// Writes a page through the cache (write-through: the disk write always
  /// happens; the cached copy is refreshed).
  Status Put(PageId id, const Page& page);

  /// Drops all cached pages (does not touch the disk or disk stats).
  void Clear();

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }
  size_t capacity() const { return capacity_; }
  PageManager* disk() const { return disk_; }

 private:
  void Touch(PageId id);
  void InsertCached(PageId id, const Page& page);

  PageManager* disk_;
  size_t capacity_;
  // LRU list: front = most recent. Map gives O(1) lookup into the list.
  std::list<std::pair<PageId, Page>> lru_;
  std::unordered_map<PageId, std::list<std::pair<PageId, Page>>::iterator>
      index_;
  CacheStats stats_;
};

}  // namespace ccdb

#endif  // CCDB_STORAGE_BUFFER_POOL_H_
