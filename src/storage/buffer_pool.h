#ifndef CCDB_STORAGE_BUFFER_POOL_H_
#define CCDB_STORAGE_BUFFER_POOL_H_

/// \file buffer_pool.h
/// LRU page cache over the simulated disk.
///
/// The §5.4 experiments count *structural* disk accesses per query, so the
/// benchmark harness runs with `capacity == 0` (pass-through: every page
/// touch is a disk access, as in the classic R-tree evaluation
/// methodology). A non-zero capacity turns caching on for the system's
/// normal operation and for the cache-sensitivity ablation.
///
/// Thread-safety: the pool is sharded by `PageId % shard_count` and each
/// shard has its own mutex and LRU list, so parallel queries touching
/// different pages rarely contend. Pools of fewer than `kShardThreshold`
/// pages keep a single shard — exact global LRU order, which the
/// §5.4-style eviction-order experiments (and tests) rely on.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/pager.h"
#include "util/mutex.h"

namespace ccdb {

/// Cache statistics snapshot.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
};

/// Write-through LRU buffer pool with per-shard locking.
class BufferPool {
 public:
  /// Capacities below this keep a single shard (exact LRU order).
  static constexpr size_t kShardThreshold = 64;
  /// Shard count for large pools.
  static constexpr size_t kMaxShards = 8;

  /// `capacity` pages of cache; 0 disables caching entirely.
  BufferPool(PageManager* disk, size_t capacity);

  /// Reads a page through the cache.
  Status Get(PageId id, Page* out);

  /// Writes a page through the cache (write-through: the disk write always
  /// happens; the cached copy is refreshed).
  Status Put(PageId id, const Page& page);

  /// Drops all cached pages (does not touch the disk or disk stats).
  void Clear();

  /// A consistent point-in-time copy of the counters.
  CacheStats stats() const {
    CacheStats snapshot;
    snapshot.hits = hits_.load(std::memory_order_relaxed);
    snapshot.misses = misses_.load(std::memory_order_relaxed);
    return snapshot;
  }

  void ResetStats() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }
  PageManager* disk() const { return disk_; }

 private:
  /// One independently locked LRU cache over a slice of the page-id space.
  struct Shard {
    Mutex mu CCDB_LOCK_ORDER("storage.pager", "storage.fault")
        {"storage.pool_shard"};
    size_t capacity = 0;  // set once at pool construction, then read-only
    // LRU list: front = most recent. Map gives O(1) lookup into the list.
    std::list<std::pair<PageId, Page>> lru CCDB_GUARDED_BY(mu);
    std::unordered_map<PageId, std::list<std::pair<PageId, Page>>::iterator>
        index CCDB_GUARDED_BY(mu);

    void Touch(PageId id) CCDB_REQUIRES(mu);
    void InsertCached(PageId id, const Page& page) CCDB_REQUIRES(mu);
  };

  Shard& ShardFor(PageId id) { return *shards_[id % shards_.size()]; }

  PageManager* disk_;
  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace ccdb

#endif  // CCDB_STORAGE_BUFFER_POOL_H_
