#include "storage/pager.h"

namespace ccdb {

PageId PageManager::Allocate() {
  WriterLock lock(mu_);
  pages_.push_back(std::make_unique<Page>());
  allocations_.fetch_add(1, std::memory_order_relaxed);
  return pages_.size() - 1;
}

Status PageManager::Read(PageId id, Page* out) {
  ReaderLock lock(mu_);
  if (id >= pages_.size()) {
    return Status::IoError("read of unallocated page " + std::to_string(id));
  }
  *out = *pages_[id];
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status PageManager::Write(PageId id, const Page& page) {
  WriterLock lock(mu_);
  if (id >= pages_.size()) {
    return Status::IoError("write to unallocated page " + std::to_string(id));
  }
  *pages_[id] = page;
  writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace ccdb
