#include "storage/pager.h"

namespace ccdb {

PageId PageManager::Allocate() {
  pages_.push_back(std::make_unique<Page>());
  ++stats_.allocations;
  return pages_.size() - 1;
}

Status PageManager::Read(PageId id, Page* out) {
  if (id >= pages_.size()) {
    return Status::IoError("read of unallocated page " + std::to_string(id));
  }
  *out = *pages_[id];
  ++stats_.reads;
  return Status::OK();
}

Status PageManager::Write(PageId id, const Page& page) {
  if (id >= pages_.size()) {
    return Status::IoError("write to unallocated page " + std::to_string(id));
  }
  *pages_[id] = page;
  ++stats_.writes;
  return Status::OK();
}

}  // namespace ccdb
