#include "storage/fault.h"

#include <cstring>
#include <string>

namespace ccdb {

void FaultInjectingPager::Arm(Fault fault, uint64_t ios_before_fault) {
  MutexLock lock(mu_);
  armed_ = fault;
  remaining_ = ios_before_fault;
  fired_ = false;
}

void FaultInjectingPager::ClearFault() {
  MutexLock lock(mu_);
  armed_ = Fault::kNone;
  crashed_ = false;
}

bool FaultInjectingPager::fired() const {
  MutexLock lock(mu_);
  return fired_;
}

bool FaultInjectingPager::crashed() const {
  MutexLock lock(mu_);
  return crashed_;
}

uint64_t FaultInjectingPager::io_count() const {
  MutexLock lock(mu_);
  return io_count_;
}

FaultInjectingPager::Decision FaultInjectingPager::Account(bool is_write) {
  MutexLock lock(mu_);
  ++io_count_;
  if (crashed_) return Decision::kFailOp;
  if (armed_ == Fault::kNone || fired_) return Decision::kProceed;
  if (remaining_ > 0) {
    --remaining_;
    return Decision::kProceed;
  }
  fired_ = true;
  switch (armed_) {
    case Fault::kFail:
      armed_ = Fault::kNone;  // transient: only this operation fails
      return Decision::kFailOp;
    case Fault::kTornWrite:
      crashed_ = true;
      return is_write ? Decision::kTear : Decision::kFailOp;
    case Fault::kCrash:
      crashed_ = true;
      return Decision::kFailOp;
    case Fault::kNone:
      break;
  }
  return Decision::kProceed;
}

PageId FaultInjectingPager::Allocate() {
  if (Account(/*is_write=*/false) != Decision::kProceed) return kInvalidPageId;
  return PageManager::Allocate();
}

Status FaultInjectingPager::Read(PageId id, Page* out) {
  if (Account(/*is_write=*/false) != Decision::kProceed) {
    return Status::IoError("injected fault: read of page " +
                           std::to_string(id));
  }
  return PageManager::Read(id, out);
}

Status FaultInjectingPager::Write(PageId id, const Page& page) {
  switch (Account(/*is_write=*/true)) {
    case Decision::kProceed:
      return PageManager::Write(id, page);
    case Decision::kTear: {
      // Persist a half-new, half-old image, then report failure.
      Page mixed;
      if (PageManager::Read(id, &mixed).ok()) {
        std::memcpy(mixed.bytes(), page.bytes(), kPageSize / 2);
        // Best-effort: the injected torn image lands if the base write
        // works; either way this operation reports the injected failure.
        IgnoreError(PageManager::Write(id, mixed));
      }
      return Status::IoError("injected fault: torn write of page " +
                             std::to_string(id));
    }
    case Decision::kFailOp:
    default:
      return Status::IoError("injected fault: write of page " +
                             std::to_string(id));
  }
}

}  // namespace ccdb
