#include "storage/serde.h"

#include <cstring>

namespace ccdb {

void Writer::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v & 0xff));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void Writer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

void Writer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>((v >> (8 * i)) & 0xff));
}

void Writer::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

void Writer::PutRational(const Rational& r) {
  PutString(r.numerator().ToString());
  PutString(r.denominator().ToString());
}

void Writer::PutBytes(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

Status Reader::Need(size_t n) const {
  if (pos_ + n > len_) {
    return Status::IoError("record truncated: need " + std::to_string(n) +
                           " bytes, have " + std::to_string(len_ - pos_));
  }
  return Status::OK();
}

Result<uint8_t> Reader::GetU8() {
  CCDB_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint16_t> Reader::GetU16() {
  CCDB_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> Reader::GetU32() {
  CCDB_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> Reader::GetU64() {
  CCDB_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<std::string> Reader::GetString() {
  CCDB_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  CCDB_RETURN_IF_ERROR(Need(len));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Result<Rational> Reader::GetRational() {
  CCDB_ASSIGN_OR_RETURN(std::string num, GetString());
  CCDB_ASSIGN_OR_RETURN(std::string den, GetString());
  CCDB_ASSIGN_OR_RETURN(BigInt n, BigInt::FromString(num));
  CCDB_ASSIGN_OR_RETURN(BigInt d, BigInt::FromString(den));
  if (d.IsZero()) return Status::IoError("corrupt rational: zero denominator");
  return Rational(std::move(n), std::move(d));
}

namespace {

// Value tags.
constexpr uint8_t kValueNull = 0;
constexpr uint8_t kValueString = 1;
constexpr uint8_t kValueNumber = 2;

void PutValue(Writer* w, const Value& v) {
  if (v.IsNull()) {
    w->PutU8(kValueNull);
  } else if (v.IsString()) {
    w->PutU8(kValueString);
    w->PutString(v.AsString());
  } else {
    w->PutU8(kValueNumber);
    w->PutRational(v.AsNumber());
  }
}

Result<Value> GetValue(Reader* r) {
  CCDB_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (tag) {
    case kValueNull:
      return Value::Null();
    case kValueString: {
      CCDB_ASSIGN_OR_RETURN(std::string s, r->GetString());
      return Value::String(std::move(s));
    }
    case kValueNumber: {
      CCDB_ASSIGN_OR_RETURN(Rational q, r->GetRational());
      return Value::Number(std::move(q));
    }
    default:
      return Status::IoError("corrupt value tag " + std::to_string(tag));
  }
}

void PutConstraint(Writer* w, const Constraint& c) {
  w->PutU8(static_cast<uint8_t>(c.op()));
  w->PutRational(c.expr().constant());
  w->PutU32(static_cast<uint32_t>(c.expr().terms().size()));
  for (const auto& [var, coeff] : c.expr().terms()) {
    w->PutString(var);
    w->PutRational(coeff);
  }
}

Result<Constraint> GetConstraint(Reader* r) {
  CCDB_ASSIGN_OR_RETURN(uint8_t op, r->GetU8());
  if (op > static_cast<uint8_t>(ConstraintOp::kLt)) {
    return Status::IoError("corrupt constraint op " + std::to_string(op));
  }
  CCDB_ASSIGN_OR_RETURN(Rational constant, r->GetRational());
  LinearExpr expr = LinearExpr::Constant(std::move(constant));
  CCDB_ASSIGN_OR_RETURN(uint32_t nterms, r->GetU32());
  for (uint32_t i = 0; i < nterms; ++i) {
    CCDB_ASSIGN_OR_RETURN(std::string var, r->GetString());
    CCDB_ASSIGN_OR_RETURN(Rational coeff, r->GetRational());
    expr.AddTerm(var, coeff);
  }
  return Constraint(std::move(expr), static_cast<ConstraintOp>(op));
}

}  // namespace

std::vector<uint8_t> SerializeTuple(const Tuple& tuple) {
  Writer w;
  w.PutU32(static_cast<uint32_t>(tuple.values().size()));
  for (const auto& [name, value] : tuple.values()) {
    w.PutString(name);
    PutValue(&w, value);
  }
  w.PutU8(tuple.constraints().IsKnownFalse() ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(tuple.constraints().constraints().size()));
  for (const Constraint& c : tuple.constraints().constraints()) {
    PutConstraint(&w, c);
  }
  return w.TakeBuffer();
}

Result<Tuple> DeserializeTuple(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  Tuple tuple;
  CCDB_ASSIGN_OR_RETURN(uint32_t nvalues, r.GetU32());
  for (uint32_t i = 0; i < nvalues; ++i) {
    CCDB_ASSIGN_OR_RETURN(std::string name, r.GetString());
    CCDB_ASSIGN_OR_RETURN(Value value, GetValue(&r));
    tuple.SetValue(name, std::move(value));
  }
  CCDB_ASSIGN_OR_RETURN(uint8_t known_false, r.GetU8());
  if (known_false) {
    tuple.SetConstraints(Conjunction::False());
  }
  CCDB_ASSIGN_OR_RETURN(uint32_t nconstraints, r.GetU32());
  for (uint32_t i = 0; i < nconstraints; ++i) {
    CCDB_ASSIGN_OR_RETURN(Constraint c, GetConstraint(&r));
    tuple.AddConstraint(std::move(c));
  }
  return tuple;
}

std::vector<uint8_t> SerializeSchema(const Schema& schema) {
  Writer w;
  w.PutU32(static_cast<uint32_t>(schema.arity()));
  for (const Attribute& attr : schema.attributes()) {
    w.PutString(attr.name);
    w.PutU8(static_cast<uint8_t>(attr.domain));
    w.PutU8(static_cast<uint8_t>(attr.kind));
  }
  return w.TakeBuffer();
}

Result<Schema> DeserializeSchema(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  CCDB_ASSIGN_OR_RETURN(uint32_t arity, r.GetU32());
  std::vector<Attribute> attrs;
  attrs.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    Attribute attr;
    CCDB_ASSIGN_OR_RETURN(attr.name, r.GetString());
    CCDB_ASSIGN_OR_RETURN(uint8_t domain, r.GetU8());
    CCDB_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
    if (domain > static_cast<uint8_t>(AttributeDomain::kRational) ||
        kind > static_cast<uint8_t>(AttributeKind::kConstraint)) {
      return Status::IoError("corrupt schema attribute");
    }
    attr.domain = static_cast<AttributeDomain>(domain);
    attr.kind = static_cast<AttributeKind>(kind);
    attrs.push_back(std::move(attr));
  }
  return Schema::Make(std::move(attrs));
}

}  // namespace ccdb
