#include "storage/buffer_pool.h"

#include "obs/governance.h"
#include "obs/trace.h"

namespace ccdb {

BufferPool::BufferPool(PageManager* disk, size_t capacity)
    : disk_(disk), capacity_(capacity) {
  const size_t count =
      capacity >= kShardThreshold ? kMaxShards : static_cast<size_t>(1);
  shards_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    // Spread the page budget evenly; the first shards take the remainder.
    shards_.back()->capacity =
        capacity / count + (i < capacity % count ? 1 : 0);
  }
}

Status BufferPool::Get(PageId id, Page* out) {
  // Governance check-point: a governed query's page reads stop at its
  // deadline / cancellation (writes are never interrupted — a torn batch
  // is worse than a late one). Each miss also charges the page image
  // against the query's memory budget.
  CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::NotePageRead();
    obs::GovernBytes(kPageSize);
    return disk_->Read(id, out);
  }
  Shard& shard = ShardFor(id);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs::NotePoolHit();
    *out = it->second->second;
    shard.Touch(id);
    return Status::OK();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  obs::NotePageRead();
  obs::GovernBytes(kPageSize);
  CCDB_RETURN_IF_ERROR(disk_->Read(id, out));
  shard.InsertCached(id, *out);
  return Status::OK();
}

Status BufferPool::Put(PageId id, const Page& page) {
  CCDB_RETURN_IF_ERROR(disk_->Write(id, page));
  if (capacity_ == 0) return Status::OK();
  Shard& shard = ShardFor(id);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    it->second->second = page;
    shard.Touch(id);
  } else {
    shard.InsertCached(id, page);
  }
  return Status::OK();
}

void BufferPool::Clear() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

void BufferPool::Shard::Touch(PageId id) {
  mu.AssertHeld();
  auto it = index.find(id);
  lru.splice(lru.begin(), lru, it->second);
  it->second = lru.begin();
}

void BufferPool::Shard::InsertCached(PageId id, const Page& page) {
  mu.AssertHeld();
  lru.emplace_front(id, page);
  index[id] = lru.begin();
  if (lru.size() > capacity) {
    index.erase(lru.back().first);
    lru.pop_back();
  }
}

}  // namespace ccdb
