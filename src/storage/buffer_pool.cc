#include "storage/buffer_pool.h"

namespace ccdb {

Status BufferPool::Get(PageId id, Page* out) {
  if (capacity_ == 0) {
    ++stats_.misses;
    return disk_->Read(id, out);
  }
  auto it = index_.find(id);
  if (it != index_.end()) {
    ++stats_.hits;
    *out = it->second->second;
    Touch(id);
    return Status::OK();
  }
  ++stats_.misses;
  CCDB_RETURN_IF_ERROR(disk_->Read(id, out));
  InsertCached(id, *out);
  return Status::OK();
}

Status BufferPool::Put(PageId id, const Page& page) {
  CCDB_RETURN_IF_ERROR(disk_->Write(id, page));
  if (capacity_ == 0) return Status::OK();
  auto it = index_.find(id);
  if (it != index_.end()) {
    it->second->second = page;
    Touch(id);
  } else {
    InsertCached(id, page);
  }
  return Status::OK();
}

void BufferPool::Clear() {
  lru_.clear();
  index_.clear();
}

void BufferPool::Touch(PageId id) {
  auto it = index_.find(id);
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
}

void BufferPool::InsertCached(PageId id, const Page& page) {
  lru_.emplace_front(id, page);
  index_[id] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

}  // namespace ccdb
