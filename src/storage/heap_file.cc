#include "storage/heap_file.h"

#include <cstring>
#include <set>

namespace ccdb {

namespace {

uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

void StoreU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v & 0xff);
  p[1] = static_cast<uint8_t>(v >> 8);
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

void StoreU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xff);
}

struct SlotRef {
  uint16_t offset;
  uint16_t length;
};

SlotRef LoadSlot(const Page& page, uint16_t slot) {
  const uint8_t* base =
      page.bytes() + kPageSize - (static_cast<size_t>(slot) + 1) * 4;
  return SlotRef{LoadU16(base), LoadU16(base + 2)};
}

void StoreSlot(Page* page, uint16_t slot, SlotRef ref) {
  uint8_t* base =
      page->bytes() + kPageSize - (static_cast<size_t>(slot) + 1) * 4;
  StoreU16(base, ref.offset);
  StoreU16(base + 2, ref.length);
}

void InitPage(Page* page) {
  page->Zero();
  StoreU16(page->bytes(), 0);      // slot_count
  StoreU16(page->bytes() + 2, 12); // free_offset (== kHeaderSize)
  StoreU64(page->bytes() + 4, kInvalidPageId);
}

}  // namespace

HeapFile::HeapFile(BufferPool* pool) : pool_(pool) {
  PageId first = pool_->disk()->Allocate();
  Page page;
  InitPage(&page);
  Status s = pool_->Put(first, page);
  IgnoreError(s);  // writes to a freshly allocated page cannot fail
  pages_.push_back(first);
}

Result<HeapFile> HeapFile::Open(BufferPool* pool, PageId first_page) {
  HeapFile heap;
  heap.pool_ = pool;
  PageId current = first_page;
  std::set<PageId> visited;
  while (current != kInvalidPageId) {
    if (!visited.insert(current).second) {
      return Status::IoError("heap page chain contains a cycle at page " +
                             std::to_string(current));
    }
    Page page;
    CCDB_RETURN_IF_ERROR(pool->Get(current, &page));
    heap.pages_.push_back(current);
    heap.num_records_ += LoadU16(page.bytes());
    current = LoadU64(page.bytes() + 4);
  }
  if (heap.pages_.empty()) {
    return Status::InvalidArgument("heap file must have a first page");
  }
  return heap;
}

Result<RecordId> HeapFile::Append(const std::vector<uint8_t>& record) {
  if (record.size() > MaxRecordSize()) {
    return Status::InvalidArgument(
        "record of " + std::to_string(record.size()) +
        " bytes exceeds page capacity " + std::to_string(MaxRecordSize()));
  }
  Page page;
  PageId pid = pages_.back();
  CCDB_RETURN_IF_ERROR(pool_->Get(pid, &page));
  uint16_t slot_count = LoadU16(page.bytes());
  uint16_t free_offset = LoadU16(page.bytes() + 2);
  size_t needed = record.size() + kSlotSize;
  size_t available =
      kPageSize - free_offset - static_cast<size_t>(slot_count) * kSlotSize;
  if (needed > available) {
    // Chain a fresh page after the current tail.
    PageId fresh = pool_->disk()->Allocate();
    StoreU64(page.bytes() + 4, fresh);
    CCDB_RETURN_IF_ERROR(pool_->Put(pid, page));
    pid = fresh;
    InitPage(&page);
    slot_count = 0;
    free_offset = kHeaderSize;
    pages_.push_back(pid);
  }
  std::memcpy(page.bytes() + free_offset, record.data(), record.size());
  StoreSlot(&page, slot_count,
            SlotRef{free_offset, static_cast<uint16_t>(record.size())});
  StoreU16(page.bytes(), static_cast<uint16_t>(slot_count + 1));
  StoreU16(page.bytes() + 2,
           static_cast<uint16_t>(free_offset + record.size()));
  CCDB_RETURN_IF_ERROR(pool_->Put(pid, page));
  ++num_records_;
  return RecordId{pid, slot_count};
}

Result<std::vector<uint8_t>> HeapFile::Read(RecordId id) {
  Page page;
  CCDB_RETURN_IF_ERROR(pool_->Get(id.page, &page));
  uint16_t slot_count = LoadU16(page.bytes());
  if (id.slot >= slot_count) {
    return Status::NotFound("no slot " + std::to_string(id.slot) +
                            " in page " + std::to_string(id.page));
  }
  SlotRef ref = LoadSlot(page, id.slot);
  return std::vector<uint8_t>(page.bytes() + ref.offset,
                              page.bytes() + ref.offset + ref.length);
}

Status HeapFile::Scan(
    const std::function<bool(RecordId, const std::vector<uint8_t>&)>&
        visitor) {
  for (PageId pid : pages_) {
    Page page;
    CCDB_RETURN_IF_ERROR(pool_->Get(pid, &page));
    uint16_t slot_count = LoadU16(page.bytes());
    for (uint16_t slot = 0; slot < slot_count; ++slot) {
      SlotRef ref = LoadSlot(page, slot);
      std::vector<uint8_t> record(page.bytes() + ref.offset,
                                  page.bytes() + ref.offset + ref.length);
      if (!visitor(RecordId{pid, slot}, record)) return Status::OK();
    }
  }
  return Status::OK();
}

}  // namespace ccdb
