#ifndef CCDB_CONSTRAINT_CONSTRAINT_H_
#define CCDB_CONSTRAINT_CONSTRAINT_H_

/// \file constraint.h
/// Atomic linear constraints.
///
/// Every atomic constraint in CCDB is canonically `expr ⊲ 0` with
/// ⊲ ∈ {=, ≤, <}. Input forms using ≥ and > are normalized by negating the
/// expression; `≠` is not an atomic constraint in this class (it is a
/// disjunction, handled by producing two constraint tuples at the relation
/// layer, mirroring how the paper's DNF representation absorbs it).
///
/// Canonicalization scales the expression so coefficients are coprime
/// integers (with a positive leading coefficient for equalities), giving a
/// syntactic identity that makes duplicate detection exact.

#include <optional>
#include <string>
#include <vector>

#include "constraint/linear_expr.h"
#include "util/status.h"

namespace ccdb {

/// Canonical comparison operators: `expr Op 0`.
enum class ConstraintOp {
  kEq,  ///< expr = 0
  kLe,  ///< expr <= 0
  kLt,  ///< expr < 0
};

/// Name of an operator as used in rendered constraints ("=", "<=", "<").
const char* ConstraintOpName(ConstraintOp op);

/// An atomic linear constraint `expr ⊲ 0`, ⊲ ∈ {=, ≤, <}.
class Constraint {
 public:
  /// Builds `expr op 0` and canonicalizes.
  Constraint(LinearExpr expr, ConstraintOp op);

  /// Builds `lhs cmp rhs` where `cmp` is one of "=", "==", "<=", "<",
  /// ">=", ">" and canonicalizes. Rejects "!=" (not atomic) and unknown
  /// operators.
  static Result<Constraint> Make(const LinearExpr& lhs, const std::string& cmp,
                                 const LinearExpr& rhs);

  /// Convenience relational builders.
  static Constraint Eq(const LinearExpr& lhs, const LinearExpr& rhs) {
    return Constraint(lhs - rhs, ConstraintOp::kEq);
  }
  static Constraint Le(const LinearExpr& lhs, const LinearExpr& rhs) {
    return Constraint(lhs - rhs, ConstraintOp::kLe);
  }
  static Constraint Lt(const LinearExpr& lhs, const LinearExpr& rhs) {
    return Constraint(lhs - rhs, ConstraintOp::kLt);
  }
  static Constraint Ge(const LinearExpr& lhs, const LinearExpr& rhs) {
    return Le(rhs, lhs);
  }
  static Constraint Gt(const LinearExpr& lhs, const LinearExpr& rhs) {
    return Lt(rhs, lhs);
  }

  const LinearExpr& expr() const { return expr_; }
  ConstraintOp op() const { return op_; }

  /// True if the constraint has no variables and is satisfied
  /// (e.g. "-1 <= 0"); such constraints are trivially true.
  bool IsTriviallyTrue() const;

  /// True if the constraint has no variables and is violated
  /// (e.g. "1 <= 0").
  bool IsTriviallyFalse() const;

  /// Variables mentioned by the constraint.
  std::set<std::string> Variables() const { return expr_.Variables(); }

  bool Mentions(const std::string& var) const { return expr_.Mentions(var); }

  /// Evaluates the constraint at a point (all mentioned variables must be
  /// present in `point`).
  bool IsSatisfiedBy(const Assignment& point) const;

  /// Substitutes `var := replacement` and re-canonicalizes.
  Constraint Substitute(const std::string& var,
                        const LinearExpr& replacement) const;

  /// Renames a variable.
  Constraint RenameVariable(const std::string& from,
                            const std::string& to) const;

  /// The negation as a disjunction of atomic constraints:
  /// ¬(e<=0) = {-e<0};  ¬(e<0) = {-e<=0};  ¬(e=0) = {e<0, -e<0}.
  std::vector<Constraint> Negate() const;

  /// Syntactic identity (exact after canonicalization).
  bool operator==(const Constraint& other) const {
    return op_ == other.op_ && expr_ == other.expr_;
  }
  bool operator!=(const Constraint& other) const { return !(*this == other); }

  /// Total order for storage in ordered containers.
  bool operator<(const Constraint& other) const;

  /// Renders as e.g. "2x + 3y - 7 <= 0".
  std::string ToString() const;

  /// Renders with the constant moved to the right-hand side,
  /// e.g. "2x + 3y <= 7" (the style used in the paper's examples).
  std::string ToPrettyString() const;

 private:
  void Canonicalize();

  LinearExpr expr_;
  ConstraintOp op_;
};

}  // namespace ccdb

#endif  // CCDB_CONSTRAINT_CONSTRAINT_H_
