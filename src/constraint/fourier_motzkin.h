#ifndef CCDB_CONSTRAINT_FOURIER_MOTZKIN_H_
#define CCDB_CONSTRAINT_FOURIER_MOTZKIN_H_

/// \file fourier_motzkin.h
/// Fourier–Motzkin variable elimination and derived decision procedures.
///
/// This is the constraint-solving core that makes CQA's closure principle
/// (§2.5 of the paper) executable for rational linear constraints:
///
///  - `EliminateVariable` / `Project` implement the existential quantifier —
///    the engine behind the CQA *project* operator.
///  - `IsSatisfiable` decides emptiness of a constraint tuple (eliminate
///    every variable, inspect the residual ground constraints); it is sound
///    and complete over the rationals (a dense order), including strict
///    inequalities.
///  - `Entails` reduces to unsatisfiability of the conjunction with the
///    negated constraint.
///  - `RemoveRedundant` minimizes a tuple's representation, keeping query
///    outputs small (important after joins, whose naive outputs accumulate
///    redundant members).
///  - `VariableInterval` / `BoundingBox` extract the attribute ranges that
///    the index layer (§5) uses as R*-tree keys.
///
/// Equalities are eliminated by Gaussian substitution before inequality
/// pairing, which both preserves exactness and avoids the quadratic blowup
/// of translating `=` into `<= ∧ >=`.

#include <map>
#include <optional>
#include <set>
#include <string>

#include "constraint/conjunction.h"

namespace ccdb::fm {

/// One-sided bound on a variable.
struct Bound {
  Rational value;
  bool strict = false;  ///< true for <, false for <=

  bool operator==(const Bound& other) const {
    return value == other.value && strict == other.strict;
  }
};

/// A (possibly unbounded / empty) interval of rationals.
struct Interval {
  std::optional<Bound> lower;  ///< absent = unbounded below
  std::optional<Bound> upper;  ///< absent = unbounded above
  bool empty = false;          ///< true when no value satisfies the bounds

  /// True when the interval pins exactly one value.
  bool IsPoint() const {
    return !empty && lower && upper && !lower->strict && !upper->strict &&
           lower->value == upper->value;
  }

  /// True if `v` lies inside the interval.
  bool Contains(const Rational& v) const;

  /// Renders like "[1, 3)" / "(-inf, 2]" / "empty".
  std::string ToString() const;
};

/// Existentially eliminates `var`: the result is satisfied by exactly the
/// assignments (to the remaining variables) that extend to a satisfying
/// assignment of `input`. Returns `input` unchanged if `var` is absent.
Conjunction EliminateVariable(const Conjunction& input,
                              const std::string& var);

/// Projects onto `keep`: eliminates every variable of `input` not in
/// `keep`, cheapest-first (fewest lower×upper products).
Conjunction Project(const Conjunction& input,
                    const std::set<std::string>& keep);

/// Decides satisfiability over the rationals (exact).
bool IsSatisfiable(const Conjunction& input);

/// True when every rational point satisfying `premise` satisfies `claim`.
bool Entails(const Conjunction& premise, const Constraint& claim);

/// True when the two conjunctions have identical rational solution sets.
bool AreEquivalent(const Conjunction& a, const Conjunction& b);

/// Removes members entailed by the remaining members. The result is
/// equivalent to the input; an unsatisfiable input collapses to `False()`.
Conjunction RemoveRedundant(const Conjunction& input);

/// Tightest interval containing the projection of `input`'s solution set
/// onto `var`. An unsatisfiable input yields an empty interval; a variable
/// that is unconstrained yields (-inf, +inf).
Interval VariableInterval(const Conjunction& input, const std::string& var);

/// `VariableInterval` for each of `vars` in one call (the per-attribute
/// bounding box used for R*-tree keys, §5 of the paper).
std::map<std::string, Interval> BoundingBox(const Conjunction& input,
                                            const std::set<std::string>& vars);

}  // namespace ccdb::fm

#endif  // CCDB_CONSTRAINT_FOURIER_MOTZKIN_H_
