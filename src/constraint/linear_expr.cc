#include "constraint/linear_expr.h"

#include <cassert>

namespace ccdb {

namespace {
const Rational kZero;
}  // namespace

LinearExpr LinearExpr::Variable(const std::string& var) {
  return Term(var, Rational(1));
}

LinearExpr LinearExpr::Term(const std::string& var, Rational coeff) {
  LinearExpr expr;
  if (!coeff.IsZero()) expr.terms_.emplace(var, std::move(coeff));
  return expr;
}

const Rational& LinearExpr::Coeff(const std::string& var) const {
  auto it = terms_.find(var);
  return it == terms_.end() ? kZero : it->second;
}

std::set<std::string> LinearExpr::Variables() const {
  std::set<std::string> vars;
  for (const auto& [var, coeff] : terms_) vars.insert(var);
  return vars;
}

LinearExpr LinearExpr::operator+(const LinearExpr& other) const {
  LinearExpr out = *this;
  out.constant_ += other.constant_;
  for (const auto& [var, coeff] : other.terms_) out.AddTerm(var, coeff);
  return out;
}

LinearExpr LinearExpr::operator-(const LinearExpr& other) const {
  return *this + (-other);
}

LinearExpr LinearExpr::operator-() const {
  LinearExpr out;
  out.constant_ = -constant_;
  for (const auto& [var, coeff] : terms_) out.terms_.emplace(var, -coeff);
  return out;
}

LinearExpr LinearExpr::operator*(const Rational& factor) const {
  LinearExpr out;
  if (factor.IsZero()) return out;
  out.constant_ = constant_ * factor;
  for (const auto& [var, coeff] : terms_) {
    out.terms_.emplace(var, coeff * factor);
  }
  return out;
}

void LinearExpr::AddTerm(const std::string& var, const Rational& coeff) {
  if (coeff.IsZero()) return;
  auto [it, inserted] = terms_.emplace(var, coeff);
  if (!inserted) {
    it->second += coeff;
    if (it->second.IsZero()) terms_.erase(it);
  }
}

LinearExpr LinearExpr::Substitute(const std::string& var,
                                  const LinearExpr& replacement) const {
  auto it = terms_.find(var);
  if (it == terms_.end()) return *this;
  Rational coeff = it->second;
  LinearExpr out = *this;
  out.terms_.erase(var);
  return out + replacement * coeff;
}

LinearExpr LinearExpr::RenameVariable(const std::string& from,
                                      const std::string& to) const {
  auto it = terms_.find(from);
  if (it == terms_.end()) return *this;
  assert(terms_.find(to) == terms_.end() && "rename target already present");
  LinearExpr out = *this;
  Rational coeff = it->second;
  out.terms_.erase(from);
  out.terms_.emplace(to, std::move(coeff));
  return out;
}

Rational LinearExpr::Evaluate(const Assignment& point) const {
  Rational value = constant_;
  for (const auto& [var, coeff] : terms_) {
    auto it = point.find(var);
    assert(it != point.end() && "assignment missing a mentioned variable");
    value += coeff * it->second;
  }
  return value;
}

bool LinearExpr::operator<(const LinearExpr& other) const {
  auto lhs = terms_.begin();
  auto rhs = other.terms_.begin();
  for (; lhs != terms_.end() && rhs != other.terms_.end(); ++lhs, ++rhs) {
    if (lhs->first != rhs->first) return lhs->first < rhs->first;
    int cmp = lhs->second.Compare(rhs->second);
    if (cmp != 0) return cmp < 0;
  }
  if (lhs != terms_.end()) return false;
  if (rhs != other.terms_.end()) return true;
  return constant_ < other.constant_;
}

std::string LinearExpr::ToString() const {
  if (terms_.empty()) return constant_.ToString();
  std::string out;
  bool first = true;
  for (const auto& [var, coeff] : terms_) {
    if (first) {
      if (coeff == Rational(1)) {
        out += var;
      } else if (coeff == Rational(-1)) {
        out += "-" + var;
      } else {
        out += coeff.ToString() + var;
      }
      first = false;
      continue;
    }
    if (coeff.Sign() > 0) {
      out += " + ";
      out += (coeff == Rational(1)) ? var : coeff.ToString() + var;
    } else {
      out += " - ";
      Rational mag = coeff.Abs();
      out += (mag == Rational(1)) ? var : mag.ToString() + var;
    }
  }
  if (!constant_.IsZero()) {
    if (constant_.Sign() > 0) {
      out += " + " + constant_.ToString();
    } else {
      out += " - " + constant_.Abs().ToString();
    }
  }
  return out;
}

}  // namespace ccdb
