#include "constraint/constraint.h"

#include <cassert>

namespace ccdb {

const char* ConstraintOpName(ConstraintOp op) {
  switch (op) {
    case ConstraintOp::kEq:
      return "=";
    case ConstraintOp::kLe:
      return "<=";
    case ConstraintOp::kLt:
      return "<";
  }
  return "?";
}

Constraint::Constraint(LinearExpr expr, ConstraintOp op)
    : expr_(std::move(expr)), op_(op) {
  Canonicalize();
}

Result<Constraint> Constraint::Make(const LinearExpr& lhs,
                                    const std::string& cmp,
                                    const LinearExpr& rhs) {
  if (cmp == "=" || cmp == "==") return Eq(lhs, rhs);
  if (cmp == "<=") return Le(lhs, rhs);
  if (cmp == "<") return Lt(lhs, rhs);
  if (cmp == ">=") return Ge(lhs, rhs);
  if (cmp == ">") return Gt(lhs, rhs);
  if (cmp == "!=" || cmp == "<>") {
    return Status::Unsupported(
        "'!=' is a disjunction, not an atomic constraint; split the tuple");
  }
  return Status::ParseError("unknown comparison operator '" + cmp + "'");
}

void Constraint::Canonicalize() {
  if (expr_.IsConstant()) return;
  // Scale so all coefficients (and the constant) become coprime integers:
  // multiply by lcm of denominators, divide by gcd of numerators. For
  // equalities additionally force the leading (first in term order)
  // coefficient positive — both sides of `= 0` are equivalent.
  BigInt denom_lcm(1);
  for (const auto& [var, coeff] : expr_.terms()) {
    const BigInt& d = coeff.denominator();
    denom_lcm = denom_lcm / BigInt::Gcd(denom_lcm, d) * d;
  }
  {
    const BigInt& d = expr_.constant().denominator();
    denom_lcm = denom_lcm / BigInt::Gcd(denom_lcm, d) * d;
  }
  LinearExpr scaled = expr_ * Rational(denom_lcm);
  BigInt num_gcd(0);
  for (const auto& [var, coeff] : scaled.terms()) {
    num_gcd = BigInt::Gcd(num_gcd, coeff.numerator());
  }
  num_gcd = BigInt::Gcd(num_gcd, scaled.constant().numerator());
  if (!num_gcd.IsZero() && !num_gcd.IsOne()) {
    scaled = scaled * Rational(BigInt(1), num_gcd);
  }
  if (op_ == ConstraintOp::kEq &&
      scaled.terms().begin()->second.Sign() < 0) {
    scaled = -scaled;
  }
  expr_ = std::move(scaled);
}

bool Constraint::IsTriviallyTrue() const {
  if (!expr_.IsConstant()) return false;
  int sign = expr_.constant().Sign();
  switch (op_) {
    case ConstraintOp::kEq:
      return sign == 0;
    case ConstraintOp::kLe:
      return sign <= 0;
    case ConstraintOp::kLt:
      return sign < 0;
  }
  return false;
}

bool Constraint::IsTriviallyFalse() const {
  return expr_.IsConstant() && !IsTriviallyTrue();
}

bool Constraint::IsSatisfiedBy(const Assignment& point) const {
  int sign = expr_.Evaluate(point).Sign();
  switch (op_) {
    case ConstraintOp::kEq:
      return sign == 0;
    case ConstraintOp::kLe:
      return sign <= 0;
    case ConstraintOp::kLt:
      return sign < 0;
  }
  return false;
}

Constraint Constraint::Substitute(const std::string& var,
                                  const LinearExpr& replacement) const {
  return Constraint(expr_.Substitute(var, replacement), op_);
}

Constraint Constraint::RenameVariable(const std::string& from,
                                      const std::string& to) const {
  return Constraint(expr_.RenameVariable(from, to), op_);
}

std::vector<Constraint> Constraint::Negate() const {
  switch (op_) {
    case ConstraintOp::kLe:
      return {Constraint(-expr_, ConstraintOp::kLt)};
    case ConstraintOp::kLt:
      return {Constraint(-expr_, ConstraintOp::kLe)};
    case ConstraintOp::kEq:
      return {Constraint(expr_, ConstraintOp::kLt),
              Constraint(-expr_, ConstraintOp::kLt)};
  }
  return {};
}

bool Constraint::operator<(const Constraint& other) const {
  if (op_ != other.op_) return static_cast<int>(op_) < static_cast<int>(other.op_);
  return expr_ < other.expr_;
}

std::string Constraint::ToString() const {
  return expr_.ToString() + " " + ConstraintOpName(op_) + " 0";
}

std::string Constraint::ToPrettyString() const {
  LinearExpr lhs = expr_;
  Rational rhs = -expr_.constant();
  LinearExpr vars_only = lhs - LinearExpr::Constant(lhs.constant());
  return vars_only.ToString() + " " + ConstraintOpName(op_) + " " +
         rhs.ToString();
}

}  // namespace ccdb
