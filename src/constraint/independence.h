#ifndef CCDB_CONSTRAINT_INDEPENDENCE_H_
#define CCDB_CONSTRAINT_INDEPENDENCE_H_

/// \file independence.h
/// Variable independence analysis.
///
/// §3.2 of the paper notes a side benefit of the C/R flag: "Attribute type
/// plays a role, for example, in establishing variable independence [5];
/// if an attribute is known to be relational, it is automatically
/// independent of all other attributes." (Chomicki, Goldin, Kuper, Toman,
/// "Variable Independence in Constraint Databases".)
///
/// Two variables x, y are *independent* in a conjunction φ when φ's
/// solution set is a product of its projections — equivalently, when φ is
/// equivalent to (∃y φ) ∧ (∃x φ) restricted to the two variables. CCDB
/// decides this exactly with Fourier–Motzkin machinery. Independence
/// matters operationally: independent attributes lose nothing under
/// separate 1-D indexing, while coupled attributes are exactly the case
/// where §5's joint index wins.

#include <set>
#include <string>

#include "constraint/conjunction.h"

namespace ccdb::fm {

/// True when `x` and `y` are independent in `input`: the conjunction's
/// solution set equals the conjunction of its x-only and y-only parts
/// (no constraint couples the two, even implicitly).
bool AreIndependent(const Conjunction& input, const std::string& x,
                    const std::string& y);

/// Decomposes `input` into (x-part, y-part, coupled-part) syntactically:
/// members mentioning only x, only y, and both. (Other variables are left
/// in whichever member they appear.)
struct IndependenceSplit {
  Conjunction x_only;
  Conjunction y_only;
  Conjunction coupled;
};
IndependenceSplit SplitByVariables(const Conjunction& input,
                                   const std::string& x,
                                   const std::string& y);

}  // namespace ccdb::fm

#endif  // CCDB_CONSTRAINT_INDEPENDENCE_H_
