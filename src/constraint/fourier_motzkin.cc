#include "constraint/fourier_motzkin.h"

#include <cassert>
#include <vector>

#include "obs/governance.h"
#include "obs/trace.h"

// Governance bail-outs: FM functions return Conjunctions by value and
// cannot propagate a Status, so when the active query has tripped its
// deadline / cancellation (obs::GovernanceAborting()) the loops below
// return early with a partial — semantically WRONG — value. The contract
// (see obs/governance.h) is that the nearest Status-returning caller
// checks obs::CheckGovernance() before using FM output, which converts
// the latched trip into a typed error and discards the garbage. Under
// budget truncation (allow_partial) FM never bails: a partial result must
// stay a sound subset, so in-flight constraint math runs to completion.

namespace ccdb::fm {

namespace {

/// Picks an equality mentioning `var`, if any.
const Constraint* FindEqualityWith(const Conjunction& input,
                                   const std::string& var) {
  for (const Constraint& c : input.constraints()) {
    if (c.op() == ConstraintOp::kEq && c.Mentions(var)) return &c;
  }
  return nullptr;
}

/// Cost heuristic for eliminating `var`: number of pairings FM would create.
/// Equality substitution is always preferred (cost 0).
size_t EliminationCost(const Conjunction& input, const std::string& var) {
  if (FindEqualityWith(input, var) != nullptr) return 0;
  size_t lowers = 0;
  size_t uppers = 0;
  for (const Constraint& c : input.constraints()) {
    int sign = c.expr().Coeff(var).Sign();
    if (sign > 0) ++uppers;  // a·v + r <= 0, a > 0  =>  v <= -r/a
    if (sign < 0) ++lowers;
  }
  return lowers * uppers;
}

}  // namespace

bool Interval::Contains(const Rational& v) const {
  if (empty) return false;
  if (lower) {
    int cmp = v.Compare(lower->value);
    if (cmp < 0 || (cmp == 0 && lower->strict)) return false;
  }
  if (upper) {
    int cmp = v.Compare(upper->value);
    if (cmp > 0 || (cmp == 0 && upper->strict)) return false;
  }
  return true;
}

std::string Interval::ToString() const {
  if (empty) return "empty";
  std::string out;
  out += lower ? (lower->strict ? "(" : "[") + lower->value.ToString()
               : "(-inf";
  out += ", ";
  out += upper ? upper->value.ToString() + (upper->strict ? ")" : "]")
               : "+inf)";
  return out;
}

Conjunction EliminateVariable(const Conjunction& input,
                              const std::string& var) {
  if (input.IsKnownFalse()) return Conjunction::False();
  if (!input.Mentions(var)) return input;
  obs::NoteFmElimination();

  // Gaussian step: if an equality a·v + r = 0 mentions v, substitute
  // v := -r/a into every other member and drop the equality.
  if (const Constraint* eq = FindEqualityWith(input, var)) {
    const Rational& a = eq->expr().Coeff(var);
    assert(!a.IsZero());
    LinearExpr rest = eq->expr() - LinearExpr::Term(var, a);
    LinearExpr replacement = rest * (-a.Inverse());
    Conjunction out;
    for (const Constraint& c : input.constraints()) {
      if (&c == eq) continue;
      out.Add(c.Substitute(var, replacement));
      if (out.IsKnownFalse()) return Conjunction::False();
    }
    return out;
  }

  // FM pairing step over inequalities.
  std::vector<const Constraint*> lowers;  // coeff(v) < 0: bound v from below
  std::vector<const Constraint*> uppers;  // coeff(v) > 0: bound v from above
  Conjunction out;
  for (const Constraint& c : input.constraints()) {
    int sign = c.expr().Coeff(var).Sign();
    if (sign == 0) {
      out.Add(c);
    } else if (sign > 0) {
      uppers.push_back(&c);
    } else {
      lowers.push_back(&c);
    }
  }
  for (const Constraint* lo : lowers) {
    const Rational& b = lo->expr().Coeff(var);  // b < 0
    for (const Constraint* hi : uppers) {
      // The lowers×uppers pairing is THE quadratic blowup of FM; bail
      // between pairs once the query is past its deadline / cancelled.
      if (obs::GovernanceAborting()) return out;
      const Rational& a = hi->expr().Coeff(var);  // a > 0
      // From a·v + s <= 0 and b·v + r <= 0 derive a·r - b·s <= 0
      // (scale the upper by -b > 0 and the lower by a > 0, then add;
      // the v terms cancel exactly).
      LinearExpr combined = hi->expr() * (-b) + lo->expr() * a;
      bool strict = hi->op() == ConstraintOp::kLt ||
                    lo->op() == ConstraintOp::kLt;
      out.Add(Constraint(std::move(combined),
                         strict ? ConstraintOp::kLt : ConstraintOp::kLe));
      if (out.IsKnownFalse()) return Conjunction::False();
    }
  }
  return out;
}

Conjunction Project(const Conjunction& input,
                    const std::set<std::string>& keep) {
  Conjunction current = input;
  while (true) {
    if (obs::GovernanceAborting()) return current;
    if (current.IsKnownFalse()) return Conjunction::False();
    std::set<std::string> vars = current.Variables();
    std::string best;
    size_t best_cost = 0;
    bool found = false;
    for (const std::string& var : vars) {
      if (keep.count(var)) continue;
      size_t cost = EliminationCost(current, var);
      if (!found || cost < best_cost) {
        best = var;
        best_cost = cost;
        found = true;
      }
    }
    if (!found) return current;
    current = EliminateVariable(current, best);
  }
}

bool IsSatisfiable(const Conjunction& input) {
  Conjunction residual = Project(input, {});
  // A governance bail leaves the projection unfinished (variables remain);
  // answer conservatively — the caller's CheckGovernance() unwinds before
  // the answer can select or drop a tuple.
  if (obs::GovernanceAborting()) return true;
  // After eliminating every variable, members would be ground constraints;
  // Conjunction::Add resolves those to true/false on insertion, so the
  // residual is either known-false or empty.
  assert(residual.IsKnownFalse() || residual.constraints().empty());
  return !residual.IsKnownFalse();
}

bool Entails(const Conjunction& premise, const Constraint& claim) {
  if (premise.IsKnownFalse()) return true;  // vacuous
  for (const Constraint& negated : claim.Negate()) {
    Conjunction test = premise;
    test.Add(negated);
    if (IsSatisfiable(test)) return false;
  }
  return true;
}

bool AreEquivalent(const Conjunction& a, const Conjunction& b) {
  const bool a_sat = IsSatisfiable(a);
  const bool b_sat = IsSatisfiable(b);
  if (a_sat != b_sat) return false;
  if (!a_sat) return true;
  for (const Constraint& c : b.constraints()) {
    if (!Entails(a, c)) return false;
  }
  for (const Constraint& c : a.constraints()) {
    if (!Entails(b, c)) return false;
  }
  return true;
}

Conjunction RemoveRedundant(const Conjunction& input) {
  if (input.IsKnownFalse()) return Conjunction::False();
  if (!IsSatisfiable(input)) return Conjunction::False();
  std::vector<Constraint> kept(input.constraints().begin(),
                               input.constraints().end());
  // Greedy: try dropping each member; keep it only if the rest do not
  // entail it. Iterating over a shrinking set keeps the result equivalent.
  for (size_t i = 0; i < kept.size();) {
    if (obs::GovernanceAborting()) break;
    Conjunction rest;
    for (size_t j = 0; j < kept.size(); ++j) {
      if (j != i) rest.Add(kept[j]);
    }
    if (Entails(rest, kept[i])) {
      kept.erase(kept.begin() + static_cast<ptrdiff_t>(i));
      obs::NoteRedundancyCulls(1);
    } else {
      ++i;
    }
  }
  return Conjunction(kept);
}

Interval VariableInterval(const Conjunction& input, const std::string& var) {
  Interval interval;
  Conjunction onto = Project(input, {var});
  if (onto.IsKnownFalse()) {
    interval.empty = true;
    return interval;
  }
  for (const Constraint& c : onto.constraints()) {
    const Rational& a = c.expr().Coeff(var);
    assert(!a.IsZero() && "projection left a ground constraint");
    // a·v + k op 0  =>  v op' -k/a  (op' flips direction when a < 0).
    Rational bound = -c.expr().constant() / a;
    if (c.op() == ConstraintOp::kEq) {
      // v = bound: acts as both bounds.
      if (!interval.lower || bound > interval.lower->value ||
          (bound == interval.lower->value && interval.lower->strict)) {
        interval.lower = Bound{bound, false};
      }
      if (!interval.upper || bound < interval.upper->value ||
          (bound == interval.upper->value && interval.upper->strict)) {
        interval.upper = Bound{bound, false};
      }
      continue;
    }
    bool strict = c.op() == ConstraintOp::kLt;
    if (a.Sign() > 0) {
      // v <(=) bound: upper bound.
      if (!interval.upper || bound < interval.upper->value ||
          (bound == interval.upper->value && strict &&
           !interval.upper->strict)) {
        interval.upper = Bound{bound, strict};
      }
    } else {
      // v >(=) bound: lower bound.
      if (!interval.lower || bound > interval.lower->value ||
          (bound == interval.lower->value && strict &&
           !interval.lower->strict)) {
        interval.lower = Bound{bound, strict};
      }
    }
  }
  if (interval.lower && interval.upper) {
    int cmp = interval.lower->value.Compare(interval.upper->value);
    if (cmp > 0 ||
        (cmp == 0 && (interval.lower->strict || interval.upper->strict))) {
      interval = Interval{};
      interval.empty = true;
    }
  }
  return interval;
}

std::map<std::string, Interval> BoundingBox(
    const Conjunction& input, const std::set<std::string>& vars) {
  std::map<std::string, Interval> box;
  for (const std::string& var : vars) {
    box.emplace(var, VariableInterval(input, var));
  }
  return box;
}

}  // namespace ccdb::fm
