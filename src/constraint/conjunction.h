#ifndef CCDB_CONSTRAINT_CONJUNCTION_H_
#define CCDB_CONSTRAINT_CONJUNCTION_H_

/// \file conjunction.h
/// Conjunctions of atomic constraints.
///
/// A `Conjunction` is the formula φ(t) of a constraint tuple (Definition 1
/// of the paper): the conjunction of a finite set of atomic linear
/// constraints. CCDB keeps conjunctions deduplicated and canonical, drops
/// trivially-true members, and collapses to an explicit "false" state on a
/// trivially-false member so that unsatisfiable tuples are cheap to detect
/// early.

#include <set>
#include <string>
#include <vector>

#include "constraint/constraint.h"

namespace ccdb {

/// A finite conjunction of atomic constraints (a constraint tuple's formula).
class Conjunction {
 public:
  /// The empty conjunction (equivalent to `true`).
  Conjunction() = default;

  /// Builds from a list of constraints.
  explicit Conjunction(const std::vector<Constraint>& constraints);

  /// The canonical unsatisfiable conjunction.
  static Conjunction False();

  /// Adds a constraint; trivially-true members are dropped, a
  /// trivially-false member collapses the conjunction to `false`.
  void Add(Constraint constraint);

  /// Conjoins all constraints of `other`.
  void AddAll(const Conjunction& other);

  /// The conjunction of `a` and `b`.
  static Conjunction And(const Conjunction& a, const Conjunction& b);

  /// The stored constraints (empty when trivially true OR false; check
  /// `IsKnownFalse` to distinguish).
  const std::set<Constraint>& constraints() const { return constraints_; }

  size_t size() const { return constraints_.size(); }

  /// True when a syntactically-false member was added. Note the converse
  /// does not hold: a conjunction can be unsatisfiable without being known
  /// false — use `fm::IsSatisfiable` for the semantic test.
  bool IsKnownFalse() const { return known_false_; }

  /// True when the conjunction holds no constraints and is not false —
  /// i.e. it is the formula `true` (every point satisfies it).
  bool IsTriviallyTrue() const {
    return !known_false_ && constraints_.empty();
  }

  /// All variables mentioned by any member.
  std::set<std::string> Variables() const;

  bool Mentions(const std::string& var) const;

  /// True if `point` (covering all mentioned variables) satisfies every
  /// member. A known-false conjunction is satisfied by nothing.
  bool IsSatisfiedBy(const Assignment& point) const;

  /// Substitutes `var := replacement` in every member.
  Conjunction Substitute(const std::string& var,
                         const LinearExpr& replacement) const;

  /// Renames a variable in every member.
  Conjunction RenameVariable(const std::string& from,
                             const std::string& to) const;

  /// Syntactic identity (canonical forms compared member-wise).
  bool operator==(const Conjunction& other) const {
    return known_false_ == other.known_false_ &&
           constraints_ == other.constraints_;
  }
  bool operator!=(const Conjunction& other) const {
    return !(*this == other);
  }
  bool operator<(const Conjunction& other) const {
    if (known_false_ != other.known_false_) return known_false_;
    return constraints_ < other.constraints_;
  }

  /// Renders as "c1 AND c2 AND ..." ("true"/"false" when degenerate), in the
  /// pretty constant-on-the-right style.
  std::string ToString() const;

 private:
  std::set<Constraint> constraints_;
  bool known_false_ = false;
};

}  // namespace ccdb

#endif  // CCDB_CONSTRAINT_CONJUNCTION_H_
