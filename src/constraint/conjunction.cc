#include "constraint/conjunction.h"

#include "obs/governance.h"

namespace ccdb {

namespace {
/// Approximate heap footprint of one stored constraint: set node plus
/// per-term map node, attribute-name string, and rational. The governance
/// memory budget meters cumulative allocation, so a rough per-constraint
/// estimate is enough to bound Fourier–Motzkin blowups.
uint64_t ApproxConstraintBytes(const Constraint& c) {
  return 64 + 96 * static_cast<uint64_t>(c.expr().terms().size());
}
}  // namespace

Conjunction::Conjunction(const std::vector<Constraint>& constraints) {
  for (const Constraint& c : constraints) Add(c);
}

Conjunction Conjunction::False() {
  Conjunction out;
  out.known_false_ = true;
  return out;
}

void Conjunction::Add(Constraint constraint) {
  if (known_false_) return;
  if (constraint.IsTriviallyTrue()) return;
  if (constraint.IsTriviallyFalse()) {
    known_false_ = true;
    constraints_.clear();
    return;
  }
  // Governance charge: every materialized constraint counts against the
  // query's constraint and (approximate) memory budgets — this is the
  // meter that catches Fourier–Motzkin pairing blowups as they grow.
  obs::GovernanceConstraintCharge(ApproxConstraintBytes(constraint));
  constraints_.insert(std::move(constraint));
}

void Conjunction::AddAll(const Conjunction& other) {
  if (other.known_false_) {
    known_false_ = true;
    constraints_.clear();
    return;
  }
  for (const Constraint& c : other.constraints_) Add(c);
}

Conjunction Conjunction::And(const Conjunction& a, const Conjunction& b) {
  Conjunction out = a;
  out.AddAll(b);
  return out;
}

std::set<std::string> Conjunction::Variables() const {
  std::set<std::string> vars;
  for (const Constraint& c : constraints_) {
    auto cv = c.Variables();
    vars.insert(cv.begin(), cv.end());
  }
  return vars;
}

bool Conjunction::Mentions(const std::string& var) const {
  for (const Constraint& c : constraints_) {
    if (c.Mentions(var)) return true;
  }
  return false;
}

bool Conjunction::IsSatisfiedBy(const Assignment& point) const {
  if (known_false_) return false;
  for (const Constraint& c : constraints_) {
    if (!c.IsSatisfiedBy(point)) return false;
  }
  return true;
}

Conjunction Conjunction::Substitute(const std::string& var,
                                    const LinearExpr& replacement) const {
  if (known_false_) return *this;
  Conjunction out;
  for (const Constraint& c : constraints_) {
    out.Add(c.Substitute(var, replacement));
    if (out.known_false_) break;
  }
  return out;
}

Conjunction Conjunction::RenameVariable(const std::string& from,
                                        const std::string& to) const {
  if (known_false_) return *this;
  Conjunction out;
  for (const Constraint& c : constraints_) {
    out.Add(c.RenameVariable(from, to));
  }
  return out;
}

std::string Conjunction::ToString() const {
  if (known_false_) return "false";
  if (constraints_.empty()) return "true";
  std::string out;
  bool first = true;
  for (const Constraint& c : constraints_) {
    if (!first) out += " AND ";
    out += c.ToPrettyString();
    first = false;
  }
  return out;
}

}  // namespace ccdb
