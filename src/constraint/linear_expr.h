#ifndef CCDB_CONSTRAINT_LINEAR_EXPR_H_
#define CCDB_CONSTRAINT_LINEAR_EXPR_H_

/// \file linear_expr.h
/// Linear expressions over named variables with rational coefficients.
///
/// A `LinearExpr` is `constant + Σ coeff_i · var_i`. It is the building
/// block of CCDB's constraint class: every atomic constraint is a linear
/// expression compared against zero. Variables are attribute names from the
/// relation schema (§2.3 of the paper ranges constraint variables over the
/// rationals).

#include <map>
#include <set>
#include <string>

#include "num/rational.h"

namespace ccdb {

/// A variable assignment: attribute name -> rational value.
using Assignment = std::map<std::string, Rational>;

/// Immutable-by-convention linear expression `constant + Σ coeff·var`.
///
/// Invariant: no stored coefficient is zero.
class LinearExpr {
 public:
  /// The zero expression.
  LinearExpr() = default;

  /// A constant expression.
  explicit LinearExpr(Rational constant) : constant_(std::move(constant)) {}

  /// The expression `1·var`.
  static LinearExpr Variable(const std::string& var);

  /// The expression `coeff·var`.
  static LinearExpr Term(const std::string& var, Rational coeff);

  /// The constant expression `value`.
  static LinearExpr Constant(Rational value) {
    return LinearExpr(std::move(value));
  }

  /// Coefficient of `var` (zero if absent).
  const Rational& Coeff(const std::string& var) const;

  const Rational& constant() const { return constant_; }
  const std::map<std::string, Rational>& terms() const { return terms_; }

  /// True if the expression has no variable terms.
  bool IsConstant() const { return terms_.empty(); }

  /// True if this is the zero expression.
  bool IsZero() const { return terms_.empty() && constant_.IsZero(); }

  /// Set of variables with non-zero coefficients.
  std::set<std::string> Variables() const;

  /// True if `var` occurs with non-zero coefficient.
  bool Mentions(const std::string& var) const {
    return terms_.count(var) > 0;
  }

  LinearExpr operator+(const LinearExpr& other) const;
  LinearExpr operator-(const LinearExpr& other) const;
  LinearExpr operator-() const;

  /// Scales every coefficient and the constant by `factor`.
  LinearExpr operator*(const Rational& factor) const;

  /// Adds `coeff·var` in place.
  void AddTerm(const std::string& var, const Rational& coeff);

  /// Adds a constant in place.
  void AddConstant(const Rational& value) { constant_ += value; }

  /// Replaces every occurrence of `var` with `replacement`
  /// (e.g. Gaussian substitution of an equality).
  LinearExpr Substitute(const std::string& var,
                        const LinearExpr& replacement) const;

  /// Renames variable `from` to `to`; `to` must not already occur.
  LinearExpr RenameVariable(const std::string& from,
                            const std::string& to) const;

  /// Evaluates at a point. Variables absent from `point` are an error in
  /// debug builds; callers must supply all mentioned variables.
  Rational Evaluate(const Assignment& point) const;

  bool operator==(const LinearExpr& other) const {
    return constant_ == other.constant_ && terms_ == other.terms_;
  }
  bool operator!=(const LinearExpr& other) const { return !(*this == other); }

  /// Total order for canonical storage (lexicographic on terms, constant).
  bool operator<(const LinearExpr& other) const;

  /// Human-readable form, e.g. "2x + 3/2y - 7".
  std::string ToString() const;

 private:
  std::map<std::string, Rational> terms_;
  Rational constant_;
};

}  // namespace ccdb

#endif  // CCDB_CONSTRAINT_LINEAR_EXPR_H_
