#include "constraint/independence.h"

#include "constraint/fourier_motzkin.h"

namespace ccdb::fm {

IndependenceSplit SplitByVariables(const Conjunction& input,
                                   const std::string& x,
                                   const std::string& y) {
  IndependenceSplit split;
  if (input.IsKnownFalse()) {
    split.coupled = Conjunction::False();
    return split;
  }
  for (const Constraint& c : input.constraints()) {
    const bool has_x = c.Mentions(x);
    const bool has_y = c.Mentions(y);
    if (has_x && has_y) {
      split.coupled.Add(c);
    } else if (has_x) {
      split.x_only.Add(c);
    } else if (has_y) {
      split.y_only.Add(c);
    } else {
      // Variable-free-of-{x,y} members constrain the context either way;
      // keep them with both sides via the x-part (they must hold
      // regardless of the split).
      split.x_only.Add(c);
      split.y_only.Add(c);
    }
  }
  return split;
}

bool AreIndependent(const Conjunction& input, const std::string& x,
                    const std::string& y) {
  if (input.IsKnownFalse()) return true;  // empty set is a trivial product
  if (!input.Mentions(x) || !input.Mentions(y)) return true;
  if (!IsSatisfiable(input)) return true;
  // φ is x⊥y iff φ ≡ (∃y. φ) ∧ (∃x. φ): the product of its projections.
  // (⊆ always holds; equality fails exactly when some implicit coupling
  // survives projection recombination.)
  Conjunction without_y = EliminateVariable(input, y);
  Conjunction without_x = EliminateVariable(input, x);
  Conjunction product = Conjunction::And(without_y, without_x);
  // product ⊇ input always; independence iff product entails input.
  for (const Constraint& c : input.constraints()) {
    if (!Entails(product, c)) return false;
  }
  return true;
}

}  // namespace ccdb::fm
