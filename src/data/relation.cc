#include "data/relation.h"

#include <algorithm>
#include <set>

#include "constraint/fourier_motzkin.h"
#include "obs/governance.h"

namespace ccdb {

Status Relation::Insert(Tuple tuple) {
  for (const auto& [name, value] : tuple.values()) {
    const Attribute* attr = schema_.Find(name);
    if (attr == nullptr) {
      return Status::InvalidArgument("tuple value for unknown attribute '" +
                                     name + "'");
    }
    if (attr->kind != AttributeKind::kRelational) {
      return Status::InvalidArgument(
          "tuple value for constraint attribute '" + name +
          "'; use the constraint store");
    }
    if (!value.MatchesDomain(attr->domain)) {
      return Status::InvalidArgument("value " + value.ToString() +
                                     " does not match domain of '" + name +
                                     "'");
    }
  }
  for (const std::string& var : tuple.constraints().Variables()) {
    const Attribute* attr = schema_.Find(var);
    if (attr == nullptr) {
      return Status::InvalidArgument("constraint on unknown attribute '" +
                                     var + "'");
    }
    if (attr->kind != AttributeKind::kConstraint) {
      return Status::InvalidArgument(
          "constraint on relational attribute '" + var +
          "'; relational attributes take values");
    }
  }
  if (tuple.constraints().IsKnownFalse()) {
    return Status::OK();  // denotes the empty set; nothing to store
  }
  // Governance charge: every stored tuple counts against the query's
  // tuple budget (intermediate results included — quadratic joins are
  // exactly what the budget exists to bound).
  obs::GovernTuples(1);
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

Status Relation::InsertAll(const Relation& other) {
  if (schema_ != other.schema_) {
    return Status::InvalidArgument("InsertAll: schema mismatch " +
                                   schema_.ToString() + " vs " +
                                   other.schema_.ToString());
  }
  for (const Tuple& t : other.tuples_) {
    CCDB_RETURN_IF_ERROR(Insert(t));
  }
  return Status::OK();
}

void Relation::Deduplicate() {
  std::set<Tuple> seen;
  std::vector<Tuple> unique;
  unique.reserve(tuples_.size());
  for (Tuple& t : tuples_) {
    if (seen.insert(t).second) unique.push_back(std::move(t));
  }
  tuples_ = std::move(unique);
}

void Relation::Normalize() {
  std::vector<Tuple> kept;
  kept.reserve(tuples_.size());
  for (Tuple& t : tuples_) {
    if (!fm::IsSatisfiable(t.constraints())) continue;
    t.SetConstraints(fm::RemoveRedundant(t.constraints()));
    kept.push_back(std::move(t));
  }
  tuples_ = std::move(kept);
  Deduplicate();
}

void Relation::RemoveSubsumed() {
  // t is subsumed by s when their relational parts are identical and every
  // constraint of s's store is entailed by t's store (s's region contains
  // t's region). Ties (mutual subsumption = equivalence) keep the earlier
  // tuple.
  std::vector<bool> dead(tuples_.size(), false);
  auto subsumes = [&](const Tuple& big, const Tuple& small) {
    if (big.values() != small.values()) return false;
    for (const Constraint& c : big.constraints().constraints()) {
      if (!fm::Entails(small.constraints(), c)) return false;
    }
    return true;
  };
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (dead[i]) continue;
    for (size_t j = 0; j < tuples_.size(); ++j) {
      if (i == j || dead[j]) continue;
      if (subsumes(tuples_[i], tuples_[j])) dead[j] = true;
    }
  }
  std::vector<Tuple> kept;
  kept.reserve(tuples_.size());
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (!dead[i]) kept.push_back(std::move(tuples_[i]));
  }
  tuples_ = std::move(kept);
}

bool Relation::ContainsPoint(const PointRow& point) const {
  return std::any_of(tuples_.begin(), tuples_.end(), [&](const Tuple& t) {
    return t.MatchesPoint(schema_, point);
  });
}

std::string Relation::ToString() const {
  std::string out = schema_.ToString() + " {";
  for (const Tuple& t : tuples_) {
    out += "\n  " + t.ToString();
  }
  out += tuples_.empty() ? "}" : "\n}";
  return out;
}

}  // namespace ccdb
