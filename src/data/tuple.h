#ifndef CCDB_DATA_TUPLE_H_
#define CCDB_DATA_TUPLE_H_

/// \file tuple.h
/// Heterogeneous tuples: relational values + a constraint store.
///
/// A CCDB tuple generalizes both the relational tuple and the paper's
/// constraint tuple (Definition 1): relational attributes hold concrete
/// `Value`s (missing = null, narrow semantics), and constraint attributes
/// are described collectively by a `Conjunction` of linear constraints
/// (unconstrained = all values, broad semantics). A traditional relational
/// tuple is the special case with an empty constraint store; a pure
/// constraint tuple is the special case with no relational values.

#include <map>
#include <string>

#include "constraint/conjunction.h"
#include "data/schema.h"
#include "data/value.h"

namespace ccdb {

/// A fully-instantiated point of a heterogeneous relation's semantics:
/// one concrete value per relational attribute and one rational per
/// constraint attribute. Used to sample/verify query semantics.
struct PointRow {
  std::map<std::string, Value> relational;
  Assignment constraint;
};

/// One heterogeneous tuple.
class Tuple {
 public:
  Tuple() = default;

  /// Sets a relational attribute's value. Setting null erases the entry
  /// (absent and null are the same state).
  void SetValue(const std::string& attribute, Value value);

  /// The stored value, or null when absent.
  const Value& GetValue(const std::string& attribute) const;

  const std::map<std::string, Value>& values() const { return values_; }

  /// Adds an atomic constraint to the constraint store.
  void AddConstraint(Constraint constraint) {
    constraints_.Add(std::move(constraint));
  }

  const Conjunction& constraints() const { return constraints_; }
  Conjunction& mutable_constraints() { return constraints_; }
  void SetConstraints(Conjunction constraints) {
    constraints_ = std::move(constraints);
  }

  /// True when `point` is in this tuple's semantics under `schema`:
  /// every relational attribute's stored value is non-null and equals the
  /// point's value (narrow), and the point's constraint-attribute values
  /// satisfy the constraint store (broad).
  bool MatchesPoint(const Schema& schema, const PointRow& point) const;

  /// Representation identity (used to deduplicate relations).
  bool operator==(const Tuple& other) const {
    return values_ == other.values_ && constraints_ == other.constraints_;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const {
    if (values_ != other.values_) return values_ < other.values_;
    return constraints_ < other.constraints_;
  }

  /// Renders as "(name = "Smith", t >= 4 AND t <= 9)".
  std::string ToString() const;

 private:
  std::map<std::string, Value> values_;  // relational attrs; absent = null
  Conjunction constraints_;              // over constraint attrs
};

}  // namespace ccdb

#endif  // CCDB_DATA_TUPLE_H_
