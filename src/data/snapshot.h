#ifndef CCDB_DATA_SNAPSHOT_H_
#define CCDB_DATA_SNAPSHOT_H_

/// \file snapshot.h
/// Copy-on-write catalog multi-versioning (MVCC).
///
/// The catalog is published as a chain of *immutable snapshots*: each
/// commit builds a new `CatalogSnapshot` by structurally sharing every
/// untouched relation with its predecessor (`shared_ptr` per relation, so
/// a commit copies a map of pointers, never tuple data) and installs it
/// with one pointer swap under a short mutex. Readers pin the current
/// snapshot once and then run entirely lock-free against frozen state —
/// a committing writer can never block, tear, or retro-actively change a
/// running query.
///
///  - `CatalogSnapshot` — one frozen catalog version. Carries the PR 1
///    per-name version counters (including counters of currently-unbound
///    names, so versions never repeat across a drop/recreate) plus a
///    global *epoch* stamped at publication.
///  - `CatalogEdit` — a commit candidate: copy-on-write builder seeded
///    from a snapshot. Nothing it does is visible until the built
///    snapshot is published; discarding an edit (e.g. because the WAL
///    commit failed) leaves no trace — version counters included, which
///    is what makes "a failed commit restores the exact pre-commit
///    versions" structural rather than a rollback path.
///  - `MvccCatalog` — the mutable cell holding the current snapshot.
///    `Snapshot()` pins; `PublishSnapshot()` stamps the next epoch and
///    swaps. Publication order (who wins a race) is the caller's job —
///    the query service serializes committers on its commit mutex.
///  - `SnapshotReadView` — a `Database`-interface adapter over a pinned
///    snapshot, optionally overlaid with a session transaction's staged
///    writes (read-your-writes). It is how the unchanged execution and
///    serialization code (`lang::ExecuteScript`, `SaveDatabase`) reads
///    snapshot state without deep copies.
///
/// `tools/ccdb_lint.py` confines `CatalogEdit` / `PublishSnapshot` to
/// this pair of files and the query service's commit path: every other
/// layer reads snapshots or goes through the service's write API.

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "data/database.h"
#include "data/relation.h"
#include "util/mutex.h"
#include "util/status.h"

namespace ccdb {

class CatalogSnapshot;

/// A pinned, immutable catalog version.
using SnapshotPtr = std::shared_ptr<const CatalogSnapshot>;

/// Staged (uncommitted) transaction writes: name -> replacement relation,
/// where a null pointer means "dropped in this transaction".
using StagedWrites = std::map<std::string, std::shared_ptr<const Relation>>;

/// One frozen catalog version. All methods are const and thread-safe by
/// immutability; pin with a `SnapshotPtr` and read freely.
class CatalogSnapshot {
 public:
  /// The empty catalog (what a fresh `MvccCatalog` publishes at epoch 1).
  static SnapshotPtr Empty();

  /// Deep-copies a mutable catalog into a snapshot — the service's
  /// bootstrap from a loaded / caller-supplied `Database`.
  static SnapshotPtr FromDatabase(const Database& db);

  /// Publication stamp: strictly increasing across published snapshots
  /// of one `MvccCatalog`; 0 on a built-but-unpublished candidate.
  uint64_t epoch() const { return epoch_; }

  /// The relation bound to `name`, or null when unbound.
  const Relation* Find(const std::string& name) const;

  bool Has(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  /// `Database::Version` semantics: 0 when the name is unbound, otherwise
  /// the name's counter.
  uint64_t Version(const std::string& name) const;

  /// The raw per-name counter, *including* currently-unbound names (a
  /// counter survives Drop so versions never repeat). First-committer-wins
  /// conflict detection compares these between a transaction's pinned
  /// snapshot and the current one.
  uint64_t VersionCounter(const std::string& name) const;

  /// Bound names in sorted order.
  std::vector<std::string> Names() const;

  size_t size() const { return relations_.size(); }

 private:
  friend class CatalogEdit;
  friend class MvccCatalog;
  CatalogSnapshot() = default;

  uint64_t epoch_ = 0;
  std::map<std::string, std::shared_ptr<const Relation>> relations_;
  /// Raw counters; keys are a superset of `relations_` keys (dropped
  /// names keep their counter).
  std::map<std::string, uint64_t> versions_;
};

/// A commit candidate: copy-on-write edits over a base snapshot.
///
/// Construction shallow-copies the base's maps (pointers, not relations);
/// each mutation bumps the touched name's version counter in the copy.
/// `Build()` freezes the result for `MvccCatalog::PublishSnapshot`.
/// Destroying an un-built or un-published edit has no observable effect.
class CatalogEdit {
 public:
  explicit CatalogEdit(const SnapshotPtr& base);

  /// Registers a relation; kAlreadyExists if the name is bound.
  Status Create(const std::string& name, Relation relation);

  /// Replaces or registers.
  void CreateOrReplace(const std::string& name,
                       std::shared_ptr<const Relation> relation);

  /// Unbinds a name; kNotFound if it is not bound.
  Status Drop(const std::string& name);

  bool Has(const std::string& name) const {
    return work_->relations_.count(name) > 0;
  }

  /// True once any mutation happened.
  bool dirty() const { return !touched_.empty(); }

  /// Names this edit created / replaced / dropped.
  const std::set<std::string>& touched() const { return touched_; }

  /// Freezes the edited catalog as an unpublished snapshot (epoch 0 until
  /// published). The edit must not be used afterwards.
  std::shared_ptr<CatalogSnapshot> Build();

 private:
  std::shared_ptr<CatalogSnapshot> work_;
  std::set<std::string> touched_;
};

/// The mutable cell holding the current published snapshot.
///
/// `Snapshot()` is the only thing readers ever lock (a pointer copy under
/// a short mutex); `PublishSnapshot()` is the only way state changes.
/// Commit *ordering* — conflict checks, WAL durability before visibility —
/// is the caller's protocol; this class only guarantees that publication
/// is atomic and epochs are strictly increasing.
class MvccCatalog {
 public:
  /// Starts at the empty snapshot, epoch 1.
  MvccCatalog();

  /// Starts at a deep copy of `seed`, epoch 1.
  explicit MvccCatalog(const Database& seed);

  MvccCatalog(const MvccCatalog&) = delete;
  MvccCatalog& operator=(const MvccCatalog&) = delete;

  /// Replaces the current snapshot with a deep copy of `seed` at epoch 1.
  /// Bootstrap only: must run before any reader or publisher exists.
  void Seed(const Database& seed) CCDB_EXCLUDES(mu_);

  /// Pins the current snapshot.
  SnapshotPtr Snapshot() const CCDB_EXCLUDES(mu_);

  /// Stamps `next` with the next epoch and installs it as current,
  /// returning the now-published snapshot. Callers serialize commits
  /// externally (the service's commit mutex) — concurrent publishes
  /// would be atomic but unordered.
  SnapshotPtr PublishSnapshot(std::shared_ptr<CatalogSnapshot> next)
      CCDB_EXCLUDES(mu_);

  /// Epoch of the current snapshot.
  uint64_t epoch() const CCDB_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{"catalog.cell"};
  SnapshotPtr current_ CCDB_GUARDED_BY(mu_);
  uint64_t next_epoch_ CCDB_GUARDED_BY(mu_) = 2;
};

/// A `Database`-interface *read* adapter over a pinned snapshot, with an
/// optional overlay of staged transaction writes (read-your-writes for
/// queries running inside BEGIN/COMMIT). The overlay, when supplied, must
/// outlive the view and not change while the view is in use (the service
/// holds the session mutex across both).
///
/// Write methods fail: execution step-writes go to the session's private
/// step catalog (the `SessionView` layered on top), and catalog writes go
/// through the service's commit protocol — never through a read view.
class SnapshotReadView : public Database {
 public:
  explicit SnapshotReadView(SnapshotPtr snapshot,
                            const StagedWrites* staged = nullptr)
      : snapshot_(std::move(snapshot)), staged_(staged) {}

  Status Create(const std::string& name, Relation relation) override;
  void CreateOrReplace(const std::string& name, Relation relation) override;
  Status Drop(const std::string& name) override;

  Result<const Relation*> Get(const std::string& name) const override;
  bool Has(const std::string& name) const override;
  uint64_t Version(const std::string& name) const override;
  std::vector<std::string> Names() const override;
  size_t size() const override;

 private:
  SnapshotPtr snapshot_;
  const StagedWrites* staged_;  ///< not owned; may be null
};

/// Deep-copies a snapshot into a standalone mutable `Database` (the
/// shell's `save`). Version counters restart (each name at 1) — a
/// materialized copy is a new lineage, exactly like a catalog reload.
Database MaterializeSnapshot(const CatalogSnapshot& snapshot);

}  // namespace ccdb

#endif  // CCDB_DATA_SNAPSHOT_H_
