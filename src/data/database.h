#ifndef CCDB_DATA_DATABASE_H_
#define CCDB_DATA_DATABASE_H_

/// \file database.h
/// The catalog: a named collection of relations.
///
/// "A Constraint Database is a finite set of constraint relations"
/// (Definition 2 of the paper). `Database` is that set plus the naming that
/// the step-based query language (§3.3's `R0 = select ... from Land`) needs.
///
/// The accessors are virtual so other layers can interpose read views:
/// the service's session overlay (step results go to a private per-session
/// catalog while base relations resolve from the shared one) and the MVCC
/// snapshot adapter (`SnapshotReadView` in `data/snapshot.h`, which serves
/// an immutable published catalog snapshot through this interface).
/// `Database` itself stays single-threaded; concurrent access is
/// coordinated by the service layer's snapshot publication (see
/// `service/query_service.h`).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/relation.h"
#include "util/status.h"

namespace ccdb {

/// A catalog of named heterogeneous relations.
///
/// Every registration under a name bumps that name's version counter;
/// versions never repeat for a name, so (name, version) identifies one
/// immutable relation state — the result cache's key material.
class Database {
 public:
  Database() = default;
  virtual ~Database() = default;
  Database(const Database&) = default;
  Database& operator=(const Database&) = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Registers a relation; fails if the name is taken.
  virtual Status Create(const std::string& name, Relation relation);

  /// Replaces or registers (used by the query language for step results).
  virtual void CreateOrReplace(const std::string& name, Relation relation);

  /// Looks up a relation.
  virtual Result<const Relation*> Get(const std::string& name) const;

  /// Removes a relation; fails if absent.
  virtual Status Drop(const std::string& name);

  virtual bool Has(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  /// Version of the relation currently registered under `name`: 0 when the
  /// name is unbound, otherwise a counter bumped by every Create /
  /// CreateOrReplace / Drop of that name.
  virtual uint64_t Version(const std::string& name) const;

  /// Names in sorted order.
  virtual std::vector<std::string> Names() const;

  virtual size_t size() const { return relations_.size(); }

 private:
  std::map<std::string, Relation> relations_;
  std::map<std::string, uint64_t> versions_;
};

}  // namespace ccdb

#endif  // CCDB_DATA_DATABASE_H_
