#ifndef CCDB_DATA_DATABASE_H_
#define CCDB_DATA_DATABASE_H_

/// \file database.h
/// The catalog: a named collection of relations.
///
/// "A Constraint Database is a finite set of constraint relations"
/// (Definition 2 of the paper). `Database` is that set plus the naming that
/// the step-based query language (§3.3's `R0 = select ... from Land`) needs.

#include <map>
#include <string>
#include <vector>

#include "data/relation.h"
#include "util/status.h"

namespace ccdb {

/// A catalog of named heterogeneous relations.
class Database {
 public:
  /// Registers a relation; fails if the name is taken.
  Status Create(const std::string& name, Relation relation);

  /// Replaces or registers (used by the query language for step results).
  void CreateOrReplace(const std::string& name, Relation relation);

  /// Looks up a relation.
  Result<const Relation*> Get(const std::string& name) const;

  /// Removes a relation; fails if absent.
  Status Drop(const std::string& name);

  bool Has(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  /// Names in sorted order.
  std::vector<std::string> Names() const;

  size_t size() const { return relations_.size(); }

 private:
  std::map<std::string, Relation> relations_;
};

}  // namespace ccdb

#endif  // CCDB_DATA_DATABASE_H_
