#include "data/database.h"

namespace ccdb {

Status Database::Create(const std::string& name, Relation relation) {
  if (relations_.count(name)) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  relations_.emplace(name, std::move(relation));
  ++versions_[name];
  return Status::OK();
}

void Database::CreateOrReplace(const std::string& name, Relation relation) {
  relations_[name] = std::move(relation);
  ++versions_[name];
}

Result<const Relation*> Database::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return &it->second;
}

Status Database::Drop(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  ++versions_[name];
  return Status::OK();
}

uint64_t Database::Version(const std::string& name) const {
  if (relations_.count(name) == 0) return 0;
  auto it = versions_.find(name);
  return it == versions_.end() ? 0 : it->second;
}

std::vector<std::string> Database::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

}  // namespace ccdb
