#include "data/tuple.h"

namespace ccdb {

namespace {
const Value kNull;
}  // namespace

void Tuple::SetValue(const std::string& attribute, Value value) {
  if (value.IsNull()) {
    values_.erase(attribute);
    return;
  }
  values_[attribute] = std::move(value);
}

const Value& Tuple::GetValue(const std::string& attribute) const {
  auto it = values_.find(attribute);
  return it == values_.end() ? kNull : it->second;
}

bool Tuple::MatchesPoint(const Schema& schema, const PointRow& point) const {
  for (const Attribute& attr : schema.attributes()) {
    if (attr.kind == AttributeKind::kRelational) {
      const Value& stored = GetValue(attr.name);
      auto it = point.relational.find(attr.name);
      const Value& asked = it == point.relational.end() ? kNull : it->second;
      // Narrow semantics: a null on either side matches nothing.
      if (!stored.EqualsForQuery(asked)) return false;
    }
  }
  // Broad semantics: the constraint store constrains only the attributes it
  // mentions; all others are free.
  Assignment assignment;
  for (const std::string& var : constraints_.Variables()) {
    auto it = point.constraint.find(var);
    if (it == point.constraint.end()) return false;  // underspecified point
    assignment.emplace(var, it->second);
  }
  return constraints_.IsSatisfiedBy(assignment);
}

std::string Tuple::ToString() const {
  std::string out = "(";
  bool first = true;
  for (const auto& [name, value] : values_) {
    if (!first) out += ", ";
    out += name + " = " + value.ToString();
    first = false;
  }
  if (!constraints_.IsTriviallyTrue() || first) {
    if (!first) out += ", ";
    out += constraints_.ToString();
  }
  return out + ")";
}

}  // namespace ccdb
