#ifndef CCDB_DATA_SCHEMA_H_
#define CCDB_DATA_SCHEMA_H_

/// \file schema.h
/// Heterogeneous relation schemas with the C/R flag.
///
/// §3 of the paper shows that pure constraint semantics are inconsistent
/// with relational semantics for missing attributes (Proposition 1): a
/// missing *constraint* attribute admits all domain values (broad), while a
/// missing *relational* attribute must behave as null and match nothing
/// (narrow). CQA/CDB's fix — adopted here — is a per-attribute flag in the
/// schema marking each attribute as "constraint" or "relational", yielding
/// the *heterogeneous data model*, which is fully upward-compatible with
/// relational databases.

#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace ccdb {

/// The C/R flag: how missing values of the attribute are interpreted.
enum class AttributeKind {
  kRelational,  ///< narrow semantics: missing = null, matches nothing
  kConstraint,  ///< broad semantics: unconstrained = all domain values
};

/// Value domain of an attribute.
enum class AttributeDomain {
  kString,    ///< finite uninterpreted constants (names, feature IDs)
  kRational,  ///< the rationals (constraint-capable)
};

const char* AttributeKindName(AttributeKind kind);
const char* AttributeDomainName(AttributeDomain domain);

/// One schema column.
struct Attribute {
  std::string name;
  AttributeDomain domain = AttributeDomain::kRational;
  AttributeKind kind = AttributeKind::kRelational;

  bool operator==(const Attribute& other) const {
    return name == other.name && domain == other.domain &&
           kind == other.kind;
  }
  bool operator!=(const Attribute& other) const { return !(*this == other); }

  /// e.g. "x: rational, constraint" (the paper's §3.3 style).
  std::string ToString() const;
};

/// An ordered list of uniquely-named attributes.
///
/// Invariants enforced by `Make`: names unique and non-empty; constraint
/// attributes have rational domain (constraints are arithmetic).
class Schema {
 public:
  /// Empty schema (zero-ary relation).
  Schema() = default;

  static Result<Schema> Make(std::vector<Attribute> attributes);

  /// Shorthand builders used widely in tests and examples.
  static Attribute RelationalString(const std::string& name) {
    return Attribute{name, AttributeDomain::kString,
                     AttributeKind::kRelational};
  }
  static Attribute RelationalRational(const std::string& name) {
    return Attribute{name, AttributeDomain::kRational,
                     AttributeKind::kRelational};
  }
  static Attribute ConstraintRational(const std::string& name) {
    return Attribute{name, AttributeDomain::kRational,
                     AttributeKind::kConstraint};
  }

  const std::vector<Attribute>& attributes() const { return attributes_; }
  size_t arity() const { return attributes_.size(); }

  /// The attribute named `name`, if present.
  const Attribute* Find(const std::string& name) const;
  bool Has(const std::string& name) const { return Find(name) != nullptr; }

  /// All attribute names in schema order.
  std::vector<std::string> Names() const;

  /// Schema of a projection onto `names` (kept in `names` order).
  /// Fails on unknown names or duplicates.
  Result<Schema> Project(const std::vector<std::string>& names) const;

  /// Schema of the natural join with `other`: shared names must agree on
  /// domain and kind; result lists this schema's attributes then `other`'s
  /// new ones.
  Result<Schema> NaturalJoin(const Schema& other) const;

  /// Schema with `from` renamed to `to`. Fails if `from` is missing or
  /// `to` already exists.
  Result<Schema> Rename(const std::string& from, const std::string& to) const;

  /// True when the schemas are identical (required by union/difference).
  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }
  bool operator!=(const Schema& other) const { return !(*this == other); }

  /// e.g. "[landId: string, relational; x: rational, constraint]".
  std::string ToString() const;

 private:
  explicit Schema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  std::vector<Attribute> attributes_;
};

}  // namespace ccdb

#endif  // CCDB_DATA_SCHEMA_H_
