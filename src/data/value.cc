#include "data/value.h"

namespace ccdb {

std::string Value::ToString() const {
  if (IsNull()) return "null";
  if (IsString()) return "\"" + AsString() + "\"";
  return AsNumber().ToString();
}

}  // namespace ccdb
