#ifndef CCDB_DATA_WORKLOAD_H_
#define CCDB_DATA_WORKLOAD_H_

/// \file workload.h
/// The paper's experimental workload generator (§5.4).
///
/// "Prior to running the experiments, we randomly generated a data file and
///  a query file as follows:
///   1. Randomly generate 10,000 bounding boxes representing data tuples,
///      with height and width in [1,100]; ...
///   2. Randomly generate 100 queries, which are rectangles of height and
///      width in [1,100]; ... For experiment 3, generate 500 queries.
///   3. All rectangles are obtained by randomly generating (a) the
///      upper-left coordinates, and (b) the height and width of each
///      rectangle. All coordinates are between [0, 3000]."
///
/// The authors' random files are not published; CCDB regenerates
/// statistically identical workloads from fixed seeds (documented
/// substitution, see DESIGN.md).

#include <vector>

#include "data/relation.h"
#include "geom/box.h"
#include "util/random.h"

namespace ccdb {

/// Workload parameters, defaulting to the paper's values.
struct WorkloadParams {
  int64_t coord_min = 0;
  int64_t coord_max = 3000;   ///< upper-left coordinates in [0, 3000]
  int64_t extent_min = 1;     ///< width/height lower bound
  int64_t extent_max = 100;   ///< width/height upper bound
  size_t data_count = 10000;  ///< data rectangles
  size_t query_count = 100;   ///< query rectangles (500 for experiment 3)
};

/// One random rectangle per the paper's recipe: upper-left corner uniform
/// in [coord_min, coord_max]^2, extents uniform in [extent_min, extent_max].
geom::Box RandomRectangle(Rng* rng, const WorkloadParams& params);

/// `count` random rectangles.
std::vector<geom::Box> GenerateRectangles(size_t count, uint64_t seed,
                                          const WorkloadParams& params = {});

/// The data file: `params.data_count` rectangles.
std::vector<geom::Box> GenerateDataBoxes(uint64_t seed,
                                         const WorkloadParams& params = {});

/// The query file: `params.query_count` rectangles.
std::vector<geom::Box> GenerateQueryBoxes(uint64_t seed,
                                          const WorkloadParams& params = {});

/// Materializes boxes as a heterogeneous relation over attributes (x, y):
///  - constraint variant (experiments 1-A, 2-A): x, y are constraint
///    attributes; each tuple is the box's four bound constraints;
///  - relational variant (experiments 1-B, 2-B): x, y are relational
///    attributes holding the box center (a point per tuple — relational
///    attributes have "a single value for any given tuple").
Relation BoxesToConstraintRelation(const std::vector<geom::Box>& boxes);
Relation BoxesToRelationalRelation(const std::vector<geom::Box>& boxes);

/// Heterogeneous variant (experiment 3 assumption, see DESIGN.md):
/// x constraint (the box's x-range), y relational (the center's y).
Relation BoxesToMixedRelation(const std::vector<geom::Box>& boxes);

}  // namespace ccdb

#endif  // CCDB_DATA_WORKLOAD_H_
