#ifndef CCDB_DATA_VALUE_H_
#define CCDB_DATA_VALUE_H_

/// \file value.h
/// Values of relational attributes.
///
/// Relational attributes hold concrete values (or null). Constraint
/// attributes never hold a `Value`; their content lives in the tuple's
/// constraint store. Null follows the narrow semantics of §3.1: it is
/// distinct from every domain value, so a selection or join on a null
/// attribute matches nothing.

#include <string>
#include <variant>

#include "data/schema.h"
#include "num/rational.h"

namespace ccdb {

/// A relational attribute value: null, a string constant, or a rational.
class Value {
 public:
  /// Null.
  Value() = default;

  static Value Null() { return Value(); }
  static Value String(std::string s) {
    Value v;
    v.data_ = std::move(s);
    return v;
  }
  static Value Number(Rational r) {
    Value v;
    v.data_ = std::move(r);
    return v;
  }
  static Value Number(int64_t n) { return Number(Rational(n)); }

  bool IsNull() const { return std::holds_alternative<std::monostate>(data_); }
  bool IsString() const { return std::holds_alternative<std::string>(data_); }
  bool IsNumber() const { return std::holds_alternative<Rational>(data_); }

  /// Requires IsString().
  const std::string& AsString() const { return std::get<std::string>(data_); }
  /// Requires IsNumber().
  const Rational& AsNumber() const { return std::get<Rational>(data_); }

  /// True when the value's type matches the attribute domain (null matches
  /// any domain).
  bool MatchesDomain(AttributeDomain domain) const {
    if (IsNull()) return true;
    return domain == AttributeDomain::kString ? IsString() : IsNumber();
  }

  /// Narrow-semantics equality: null equals nothing, not even null.
  /// (Used by selection and join predicates.)
  bool EqualsForQuery(const Value& other) const {
    if (IsNull() || other.IsNull()) return false;
    return data_ == other.data_;
  }

  /// Representation identity: null == null here. (Used by set operations —
  /// union/difference deduplicate identical representations.)
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return data_ < other.data_; }

  /// "null", a quoted string, or the exact rational.
  std::string ToString() const;

 private:
  std::variant<std::monostate, std::string, Rational> data_;
};

}  // namespace ccdb

#endif  // CCDB_DATA_VALUE_H_
