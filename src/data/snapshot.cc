#include "data/snapshot.h"

#include <utility>

namespace ccdb {

// --- CatalogSnapshot --------------------------------------------------------------

SnapshotPtr CatalogSnapshot::Empty() {
  auto snap = std::shared_ptr<CatalogSnapshot>(new CatalogSnapshot());
  snap->epoch_ = 1;
  return snap;
}

SnapshotPtr CatalogSnapshot::FromDatabase(const Database& db) {
  auto snap = std::shared_ptr<CatalogSnapshot>(new CatalogSnapshot());
  snap->epoch_ = 1;
  for (const std::string& name : db.Names()) {
    auto relation = db.Get(name);
    if (!relation.ok()) continue;  // cannot happen for a name Names() listed
    snap->relations_[name] = std::make_shared<const Relation>(**relation);
    snap->versions_[name] = db.Version(name);
  }
  return snap;
}

const Relation* CatalogSnapshot::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

uint64_t CatalogSnapshot::Version(const std::string& name) const {
  if (relations_.count(name) == 0) return 0;
  return VersionCounter(name);
}

uint64_t CatalogSnapshot::VersionCounter(const std::string& name) const {
  auto it = versions_.find(name);
  return it == versions_.end() ? 0 : it->second;
}

std::vector<std::string> CatalogSnapshot::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, relation] : relations_) names.push_back(name);
  return names;
}

// --- CatalogEdit ------------------------------------------------------------------

CatalogEdit::CatalogEdit(const SnapshotPtr& base)
    : work_(std::shared_ptr<CatalogSnapshot>(new CatalogSnapshot())) {
  // Shallow copy: shared relation pointers, so an edit costs O(names),
  // never O(tuples).
  work_->relations_ = base->relations_;
  work_->versions_ = base->versions_;
}

Status CatalogEdit::Create(const std::string& name, Relation relation) {
  if (work_->relations_.count(name) > 0) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  work_->relations_[name] =
      std::make_shared<const Relation>(std::move(relation));
  ++work_->versions_[name];
  touched_.insert(name);
  return Status::OK();
}

void CatalogEdit::CreateOrReplace(const std::string& name,
                                  std::shared_ptr<const Relation> relation) {
  work_->relations_[name] = std::move(relation);
  ++work_->versions_[name];
  touched_.insert(name);
}

Status CatalogEdit::Drop(const std::string& name) {
  if (work_->relations_.erase(name) == 0) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  // The counter survives the drop (never repeats across recreate).
  ++work_->versions_[name];
  touched_.insert(name);
  return Status::OK();
}

std::shared_ptr<CatalogSnapshot> CatalogEdit::Build() {
  return std::move(work_);
}

// --- MvccCatalog ------------------------------------------------------------------

MvccCatalog::MvccCatalog() : current_(CatalogSnapshot::Empty()) {}

MvccCatalog::MvccCatalog(const Database& seed)
    : current_(CatalogSnapshot::FromDatabase(seed)) {}

void MvccCatalog::Seed(const Database& seed) {
  MutexLock lock(mu_);
  current_ = CatalogSnapshot::FromDatabase(seed);
  next_epoch_ = 2;
}

SnapshotPtr MvccCatalog::Snapshot() const {
  MutexLock lock(mu_);
  return current_;
}

SnapshotPtr MvccCatalog::PublishSnapshot(
    std::shared_ptr<CatalogSnapshot> next) {
  MutexLock lock(mu_);
  next->epoch_ = next_epoch_++;
  current_ = std::move(next);
  return current_;
}

uint64_t MvccCatalog::epoch() const {
  MutexLock lock(mu_);
  return current_->epoch();
}

// --- SnapshotReadView -------------------------------------------------------------

Status SnapshotReadView::Create(const std::string& name, Relation relation) {
  (void)name;
  (void)relation;
  return Status::Internal("write through a snapshot read view");
}

void SnapshotReadView::CreateOrReplace(const std::string& name,
                                       Relation relation) {
  // Unreachable by construction: step results land in the SessionView's
  // private step catalog, never its base. The interface requires void, so
  // the misuse is dropped rather than reported.
  (void)name;
  (void)relation;
}

Status SnapshotReadView::Drop(const std::string& name) {
  (void)name;
  return Status::Internal("write through a snapshot read view");
}

Result<const Relation*> SnapshotReadView::Get(const std::string& name) const {
  if (staged_ != nullptr) {
    auto it = staged_->find(name);
    if (it != staged_->end()) {
      if (it->second == nullptr) {
        return Status::NotFound("no relation named '" + name +
                                "' (dropped in this transaction)");
      }
      return it->second.get();
    }
  }
  const Relation* relation = snapshot_->Find(name);
  if (relation == nullptr) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return relation;
}

bool SnapshotReadView::Has(const std::string& name) const {
  if (staged_ != nullptr) {
    auto it = staged_->find(name);
    if (it != staged_->end()) return it->second != nullptr;
  }
  return snapshot_->Has(name);
}

uint64_t SnapshotReadView::Version(const std::string& name) const {
  if (staged_ != nullptr) {
    auto it = staged_->find(name);
    if (it != staged_->end()) {
      // A staged write is "one commit ahead" of the pinned snapshot;
      // a staged drop reads as unbound. Queries inside a transaction are
      // never cached, so these versions are informational only.
      return it->second == nullptr ? 0
                                   : snapshot_->VersionCounter(name) + 1;
    }
  }
  return snapshot_->Version(name);
}

std::vector<std::string> SnapshotReadView::Names() const {
  if (staged_ == nullptr || staged_->empty()) return snapshot_->Names();
  std::set<std::string> names;
  for (const std::string& name : snapshot_->Names()) names.insert(name);
  for (const auto& [name, relation] : *staged_) {
    if (relation == nullptr) {
      names.erase(name);
    } else {
      names.insert(name);
    }
  }
  return std::vector<std::string>(names.begin(), names.end());
}

size_t SnapshotReadView::size() const { return Names().size(); }

Database MaterializeSnapshot(const CatalogSnapshot& snapshot) {
  Database db;
  for (const std::string& name : snapshot.Names()) {
    const Relation* relation = snapshot.Find(name);
    if (relation != nullptr) db.CreateOrReplace(name, *relation);
  }
  return db;
}

}  // namespace ccdb
