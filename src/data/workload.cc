#include "data/workload.h"

#include <cassert>

namespace ccdb {

geom::Box RandomRectangle(Rng* rng, const WorkloadParams& params) {
  // The paper generates the upper-left corner and the extents. With y up,
  // "upper-left" is (x_min, y_max).
  Rational x_min(rng->UniformInt(params.coord_min, params.coord_max));
  Rational y_max(rng->UniformInt(params.coord_min, params.coord_max));
  Rational width(rng->UniformInt(params.extent_min, params.extent_max));
  Rational height(rng->UniformInt(params.extent_min, params.extent_max));
  return geom::Box{x_min, x_min + width, y_max - height, y_max};
}

std::vector<geom::Box> GenerateRectangles(size_t count, uint64_t seed,
                                          const WorkloadParams& params) {
  Rng rng(seed);
  std::vector<geom::Box> boxes;
  boxes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    boxes.push_back(RandomRectangle(&rng, params));
  }
  return boxes;
}

std::vector<geom::Box> GenerateDataBoxes(uint64_t seed,
                                         const WorkloadParams& params) {
  return GenerateRectangles(params.data_count, seed, params);
}

std::vector<geom::Box> GenerateQueryBoxes(uint64_t seed,
                                          const WorkloadParams& params) {
  return GenerateRectangles(params.query_count, seed, params);
}

namespace {

LinearExpr X() { return LinearExpr::Variable("x"); }
LinearExpr Y() { return LinearExpr::Variable("y"); }

void AddBoxConstraints(const geom::Box& box, Tuple* tuple) {
  tuple->AddConstraint(Constraint::Ge(X(), LinearExpr::Constant(box.x_min)));
  tuple->AddConstraint(Constraint::Le(X(), LinearExpr::Constant(box.x_max)));
  tuple->AddConstraint(Constraint::Ge(Y(), LinearExpr::Constant(box.y_min)));
  tuple->AddConstraint(Constraint::Le(Y(), LinearExpr::Constant(box.y_max)));
}

}  // namespace

Relation BoxesToConstraintRelation(const std::vector<geom::Box>& boxes) {
  Schema schema = Schema::Make({Schema::ConstraintRational("x"),
                                Schema::ConstraintRational("y")})
                      .value();
  Relation rel(schema);
  for (const geom::Box& box : boxes) {
    Tuple t;
    AddBoxConstraints(box, &t);
    Status s = rel.Insert(std::move(t));
    assert(s.ok());
    IgnoreError(s);  // generated tuples always match the schema just built
  }
  return rel;
}

Relation BoxesToRelationalRelation(const std::vector<geom::Box>& boxes) {
  Schema schema = Schema::Make({Schema::RelationalRational("x"),
                                Schema::RelationalRational("y")})
                      .value();
  Relation rel(schema);
  for (const geom::Box& box : boxes) {
    geom::Point center = box.Center();
    Tuple t;
    t.SetValue("x", Value::Number(center.x));
    t.SetValue("y", Value::Number(center.y));
    Status s = rel.Insert(std::move(t));
    assert(s.ok());
    IgnoreError(s);  // generated tuples always match the schema just built
  }
  return rel;
}

Relation BoxesToMixedRelation(const std::vector<geom::Box>& boxes) {
  Schema schema = Schema::Make({Schema::ConstraintRational("x"),
                                Schema::RelationalRational("y")})
                      .value();
  Relation rel(schema);
  for (const geom::Box& box : boxes) {
    Tuple t;
    t.AddConstraint(Constraint::Ge(X(), LinearExpr::Constant(box.x_min)));
    t.AddConstraint(Constraint::Le(X(), LinearExpr::Constant(box.x_max)));
    t.SetValue("y", Value::Number(box.Center().y));
    Status s = rel.Insert(std::move(t));
    assert(s.ok());
    IgnoreError(s);  // generated tuples always match the schema just built
  }
  return rel;
}

}  // namespace ccdb
