#ifndef CCDB_DATA_RELATION_H_
#define CCDB_DATA_RELATION_H_

/// \file relation.h
/// Heterogeneous constraint relations.
///
/// A constraint relation (Definition 2 of the paper) is a finite set of
/// constraint tuples over the same attributes; its formula is the DNF
/// disjunction of the tuples' conjunctions, and its semantics the possibly
/// infinite set of points satisfying that formula. CCDB relations carry a
/// heterogeneous `Schema` (§3) so tuples mix relational values with
/// constraint stores.

#include <string>
#include <vector>

#include "data/schema.h"
#include "data/tuple.h"

namespace ccdb {

/// A finite set of heterogeneous tuples under one schema.
class Relation {
 public:
  /// The empty zero-ary relation.
  Relation() = default;

  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Validates and appends a tuple:
  ///  - relational values only for relational attributes, matching domains;
  ///  - constraint-store variables only over constraint attributes.
  /// A tuple whose constraint store is *syntactically* false is dropped
  /// (it denotes the empty point set); deep unsatisfiability is left to
  /// `Normalize`. Duplicate representations are kept (set semantics are
  /// restored by `Deduplicate`).
  Status Insert(Tuple tuple);

  /// Appends all tuples of `other` (schemas must match).
  Status InsertAll(const Relation& other);

  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Removes tuples with identical representation (set semantics).
  void Deduplicate();

  /// Semantic cleanup: drops unsatisfiable tuples (Fourier–Motzkin check),
  /// minimizes each store (`fm::RemoveRedundant`), then deduplicates.
  /// The result is equivalent (same point-set semantics).
  void Normalize();

  /// DNF minimization across tuples: removes any tuple whose semantics are
  /// contained in another single tuple's (equal relational part and an
  /// entailed constraint store). Quadratic with an entailment check per
  /// pair — use after `Difference`/`Union` when compact output matters.
  /// The result is equivalent (same point-set semantics).
  void RemoveSubsumed();

  /// True when some tuple's semantics contain `point` (see
  /// Tuple::MatchesPoint). This is the reference semantics used by tests.
  bool ContainsPoint(const PointRow& point) const;

  /// Multi-line rendering: schema, then one tuple per line.
  std::string ToString() const;

 private:
  Schema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace ccdb

#endif  // CCDB_DATA_RELATION_H_
