#include "data/schema.h"

#include <set>

namespace ccdb {

const char* AttributeKindName(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kRelational:
      return "relational";
    case AttributeKind::kConstraint:
      return "constraint";
  }
  return "?";
}

const char* AttributeDomainName(AttributeDomain domain) {
  switch (domain) {
    case AttributeDomain::kString:
      return "string";
    case AttributeDomain::kRational:
      return "rational";
  }
  return "?";
}

std::string Attribute::ToString() const {
  return name + ": " + AttributeDomainName(domain) + ", " +
         AttributeKindName(kind);
}

Result<Schema> Schema::Make(std::vector<Attribute> attributes) {
  std::set<std::string> seen;
  for (const Attribute& attr : attributes) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute with empty name");
    }
    if (!seen.insert(attr.name).second) {
      return Status::InvalidArgument("duplicate attribute '" + attr.name +
                                     "'");
    }
    if (attr.kind == AttributeKind::kConstraint &&
        attr.domain != AttributeDomain::kRational) {
      return Status::InvalidArgument(
          "constraint attribute '" + attr.name +
          "' must have rational domain (constraints are arithmetic)");
    }
  }
  return Schema(std::move(attributes));
}

const Attribute* Schema::Find(const std::string& name) const {
  for (const Attribute& attr : attributes_) {
    if (attr.name == name) return &attr;
  }
  return nullptr;
}

std::vector<std::string> Schema::Names() const {
  std::vector<std::string> names;
  names.reserve(attributes_.size());
  for (const Attribute& attr : attributes_) names.push_back(attr.name);
  return names;
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Attribute> kept;
  std::set<std::string> seen;
  for (const std::string& name : names) {
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("duplicate projection attribute '" +
                                     name + "'");
    }
    const Attribute* attr = Find(name);
    if (attr == nullptr) {
      return Status::NotFound("projection attribute '" + name +
                              "' not in schema " + ToString());
    }
    kept.push_back(*attr);
  }
  return Schema(std::move(kept));
}

Result<Schema> Schema::NaturalJoin(const Schema& other) const {
  std::vector<Attribute> merged = attributes_;
  for (const Attribute& attr : other.attributes_) {
    const Attribute* mine = Find(attr.name);
    if (mine == nullptr) {
      merged.push_back(attr);
      continue;
    }
    if (mine->domain != attr.domain || mine->kind != attr.kind) {
      return Status::InvalidArgument(
          "natural join: shared attribute '" + attr.name +
          "' differs in domain or C/R kind (" + mine->ToString() + " vs " +
          attr.ToString() + ")");
    }
  }
  return Schema(std::move(merged));
}

Result<Schema> Schema::Rename(const std::string& from,
                              const std::string& to) const {
  if (Find(from) == nullptr) {
    return Status::NotFound("rename: no attribute '" + from + "'");
  }
  if (Find(to) != nullptr) {
    return Status::AlreadyExists("rename: attribute '" + to +
                                 "' already exists");
  }
  std::vector<Attribute> renamed = attributes_;
  for (Attribute& attr : renamed) {
    if (attr.name == from) attr.name = to;
  }
  return Schema(std::move(renamed));
}

std::string Schema::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i) out += "; ";
    out += attributes_[i].ToString();
  }
  return out + "]";
}

}  // namespace ccdb
