#include "service/plan_cache.h"

namespace ccdb::service {

bool ResultCache::Lookup(const std::string& key, CachedResult* out) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
  *out = lru_.begin()->second;
  return true;
}

void ResultCache::Insert(const std::string& key, CachedResult value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second = lru_.begin();
    return;
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  out.hits = hits_;
  out.misses = misses_;
  out.entries = lru_.size();
  return out;
}

}  // namespace ccdb::service
