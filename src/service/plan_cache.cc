#include "service/plan_cache.h"

namespace ccdb::service {

std::shared_ptr<const CachedResult> ResultCache::Lookup(
    const std::string& key) {
  if (!enabled()) return nullptr;
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
  return lru_.begin()->second;
}

void ResultCache::Insert(const std::string& key, CachedResult value) {
  if (!enabled()) return;
  // Build the shared entry before taking the lock: the deep move/copy of
  // the step relations must not happen inside the critical section.
  auto entry = std::make_shared<const CachedResult>(std::move(value));
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second = lru_.begin();
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void ResultCache::Clear() {
  MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
}

ResultCache::Stats ResultCache::stats() const {
  MutexLock lock(mu_);
  Stats out;
  out.hits = hits_;
  out.misses = misses_;
  out.entries = lru_.size();
  return out;
}

}  // namespace ccdb::service
