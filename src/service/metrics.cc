#include "service/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ccdb::service {

double NearestRankPercentile(std::vector<double> samples, double fraction) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  auto rank = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(samples.size())));
  rank = std::min(std::max<size_t>(rank, 1), samples.size());
  return samples[rank - 1];
}

void LatencyRecorder::Record(double micros) {
  MutexLock lock(mu_);
  if (count_ == 0 || micros < min_) min_ = micros;
  sum_ += micros;
  if (window_.size() < kWindow) {
    window_.push_back(micros);
  } else {
    window_[count_ % kWindow] = micros;
  }
  ++count_;
}

LatencyRecorder::Summary LatencyRecorder::Summarize() const {
  MutexLock lock(mu_);
  Summary out;
  out.count = count_;
  if (count_ == 0) return out;
  out.min_us = min_;
  out.mean_us = sum_ / static_cast<double>(count_);
  out.p50_us = NearestRankPercentile(window_, 0.50);
  out.p99_us = NearestRankPercentile(window_, 0.99);
  return out;
}

std::string ServiceMetrics::ToString() const {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "queries:  submitted %llu, completed %llu, failed %llu, "
                "rejected %llu\n",
                static_cast<unsigned long long>(submitted),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(rejected));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "service:  %llu workers, %llu sessions, queue depth %llu "
                "(high water %llu)\n",
                static_cast<unsigned long long>(workers),
                static_cast<unsigned long long>(sessions),
                static_cast<unsigned long long>(queue_depth),
                static_cast<unsigned long long>(queue_high_water));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "          %llu slow (threshold), %llu traced\n",
                static_cast<unsigned long long>(slow_queries),
                static_cast<unsigned long long>(traced_queries));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "engine:   %llu conjunctions, %llu fm eliminations, "
                "%llu culls, idx %llu/%llu, pool %llu/%llu\n",
                static_cast<unsigned long long>(conjunctions),
                static_cast<unsigned long long>(fm_eliminations),
                static_cast<unsigned long long>(redundancy_culls),
                static_cast<unsigned long long>(index_node_visits),
                static_cast<unsigned long long>(index_leaf_hits),
                static_cast<unsigned long long>(pool_hits),
                static_cast<unsigned long long>(pool_misses));
  out += buf;
  const uint64_t lookups = cache_hits + cache_misses;
  std::snprintf(buf, sizeof(buf),
                "cache:    %llu hits / %llu lookups (%.1f%%), %llu entries\n",
                static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(lookups),
                lookups ? 100.0 * static_cast<double>(cache_hits) /
                              static_cast<double>(lookups)
                        : 0.0,
                static_cast<unsigned long long>(cache_entries));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "txn:      %llu begun, %llu committed, %llu rolled back, "
                "%llu conflicts, epoch %llu\n",
                static_cast<unsigned long long>(txn_begins),
                static_cast<unsigned long long>(txn_commits),
                static_cast<unsigned long long>(txn_rollbacks),
                static_cast<unsigned long long>(txn_conflicts),
                static_cast<unsigned long long>(catalog_epoch));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "governance: %llu deadline, %llu budget, %llu cancelled, "
                "%llu shed, %llu truncated\n",
                static_cast<unsigned long long>(deadline_hits),
                static_cast<unsigned long long>(budget_trips),
                static_cast<unsigned long long>(cancels),
                static_cast<unsigned long long>(sheds),
                static_cast<unsigned long long>(truncated));
  out += buf;
  std::snprintf(buf, sizeof(buf), "storage:  %llu pages read\n",
                static_cast<unsigned long long>(pages_read));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "wal:      %llu batches, %llu bytes, %llu fsyncs, "
                "%llu checkpoints\n",
                static_cast<unsigned long long>(wal_batches),
                static_cast<unsigned long long>(wal_bytes),
                static_cast<unsigned long long>(wal_fsyncs),
                static_cast<unsigned long long>(wal_checkpoints));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "latency:  n=%llu, min %.1fus, mean %.1fus, p50 %.1fus, "
                "p99 %.1fus",
                static_cast<unsigned long long>(latency_count), latency_min_us,
                latency_mean_us, latency_p50_us, latency_p99_us);
  out += buf;
  for (const obs::Histogram::Snapshot& h : histograms) {
    out += "\nhist:     " + h.ToString();
  }
  return out;
}

}  // namespace ccdb::service
