#ifndef CCDB_SERVICE_PLAN_CACHE_H_
#define CCDB_SERVICE_PLAN_CACHE_H_

/// \file plan_cache.h
/// LRU plan/result cache for the query service.
///
/// A cache entry is the *complete* outcome of one script: every step
/// relation it defined (so a hit can replay the registrations into the
/// session exactly as execution would have) plus the final step's name.
/// Keys are built by the service from the script's canonical text
/// (`lang::CanonicalizeScript`) and the (name, version) pairs of the base
/// relations it reads — replacing an input relation bumps its version and
/// silently invalidates every dependent entry (stale keys can never hit;
/// stale entries age out of the LRU).

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/relation.h"
#include "util/mutex.h"

namespace ccdb::service {

/// The cached outcome of one script execution.
struct CachedResult {
  /// Every step the script defined, in registration order (last = result).
  std::vector<std::pair<std::string, Relation>> steps;
  /// Name of the final step.
  std::string final_step;
};

/// Thread-safe LRU map from cache key to CachedResult.
///
/// Entries are immutable and shared: a hit hands out a
/// `shared_ptr<const CachedResult>`, so only the pointer is copied under
/// the cache mutex — concurrent hits on large results no longer serialize
/// on deep copies inside the critical section. Callers copy the relations
/// they need (if any) outside the lock.
class ResultCache {
 public:
  /// `capacity` entries; 0 disables the cache (lookups always miss,
  /// inserts are dropped).
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  bool enabled() const { return capacity_ > 0; }

  /// On hit, marks the entry most-recent and returns it; nullptr on miss.
  /// Counts a hit or a miss either way.
  std::shared_ptr<const CachedResult> Lookup(const std::string& key);

  /// Inserts (or refreshes) an entry, evicting the least-recent one when
  /// over capacity. No-op when disabled.
  void Insert(const std::string& key, CachedResult value);

  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t entries = 0;
  };
  Stats stats() const;

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const CachedResult>>;

  mutable Mutex mu_{"service.result_cache"};
  const size_t capacity_;  // immutable after construction; read off-lock
  // LRU list: front = most recent. Map gives O(1) lookup into the list.
  std::list<Entry> lru_ CCDB_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      CCDB_GUARDED_BY(mu_);
  uint64_t hits_ CCDB_GUARDED_BY(mu_) = 0;
  uint64_t misses_ CCDB_GUARDED_BY(mu_) = 0;
};

}  // namespace ccdb::service

#endif  // CCDB_SERVICE_PLAN_CACHE_H_
