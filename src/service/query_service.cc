#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <optional>
#include <set>

#include "lang/query.h"
#include "storage/wal.h"

namespace ccdb::service {

namespace {

/// The per-session overlay the query language executes against: step
/// registrations go to the session's private catalog, lookups resolve
/// steps first and fall back to the shared base. The caller holds the
/// session mutex and a shared lock on the base catalog, so the base
/// pointers handed out stay valid for the whole execution.
class SessionView : public Database {
 public:
  SessionView(const Database* base, Database* steps)
      : base_(base), steps_(steps) {}

  Status Create(const std::string& name, Relation relation) override {
    RecordDefinition(name);
    return steps_->Create(name, std::move(relation));
  }

  void CreateOrReplace(const std::string& name, Relation relation) override {
    RecordDefinition(name);
    steps_->CreateOrReplace(name, std::move(relation));
  }

  Result<const Relation*> Get(const std::string& name) const override {
    auto step = steps_->Get(name);
    if (step.ok()) return step;
    return base_->Get(name);
  }

  Status Drop(const std::string& name) override { return steps_->Drop(name); }

  bool Has(const std::string& name) const override {
    return steps_->Has(name) || base_->Has(name);
  }

  /// Names this view registered, in first-definition order.
  const std::vector<std::string>& defined() const { return defined_; }

 private:
  void RecordDefinition(const std::string& name) {
    if (seen_.insert(name).second) defined_.push_back(name);
  }

  const Database* base_;
  Database* steps_;
  std::vector<std::string> defined_;
  std::set<std::string> seen_;
};

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

/// A session: a private step catalog plus the mutex that serializes the
/// session's queries (different sessions run in parallel).
struct QueryService::Session {
  std::mutex mu;
  Database steps;
};

/// One queued script execution.
struct QueryService::Task {
  std::shared_ptr<Session> session;
  std::string script;
  std::promise<Result<QueryResponse>> promise;
  std::chrono::steady_clock::time_point enqueued;
};

QueryService::QueryService(Database* base, ServiceOptions options)
    : base_(base),
      options_(options),
      cache_(options.cache_capacity),
      paused_(options.start_paused) {
  const size_t workers = std::max<size_t>(1, options_.num_workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

SessionId QueryService::OpenSession() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  SessionId id = next_session_++;
  sessions_[id] = std::make_shared<Session>();
  return id;
}

Status QueryService::CloseSession(SessionId id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (sessions_.erase(id) == 0) {
    return Status::NotFound("no session " + std::to_string(id));
  }
  return Status::OK();
}

std::shared_ptr<QueryService::Session> QueryService::FindSession(
    SessionId id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

Result<std::future<Result<QueryResponse>>> QueryService::Submit(
    SessionId id, std::string script) {
  std::shared_ptr<Session> session = FindSession(id);
  if (!session) {
    return Status::NotFound("no session " + std::to_string(id));
  }
  auto task = std::make_unique<Task>();
  task->session = std::move(session);
  task->script = std::move(script);
  task->enqueued = std::chrono::steady_clock::now();
  std::future<Result<QueryResponse>> future = task->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("service is shutting down");
    }
    if (queue_.size() >= options_.max_queue_depth) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "request queue full (" + std::to_string(queue_.size()) + " of " +
          std::to_string(options_.max_queue_depth) + " slots)");
    }
    queue_.push_back(std::move(task));
    queue_high_water_ = std::max<uint64_t>(queue_high_water_, queue_.size());
    submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  queue_cv_.notify_one();
  return future;
}

Result<QueryResponse> QueryService::Execute(SessionId id,
                                            const std::string& script) {
  CCDB_ASSIGN_OR_RETURN(std::future<Result<QueryResponse>> future,
                        Submit(id, script));
  return future.get();
}

void QueryService::WorkerLoop() {
  for (;;) {
    std::unique_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return (!paused_ && !queue_.empty()) || (stopping_ && queue_.empty());
      });
      if (queue_.empty()) return;  // stopping, fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Exception barrier: a throw out of execution (bad_alloc, a parser
    // edge case, ...) must fail this one request, not terminate the
    // process — the worker thread stays alive for the next task.
    Result<QueryResponse> result = [&]() -> Result<QueryResponse> {
      try {
        return RunScript(task->session.get(), task->script);
      } catch (const std::exception& e) {
        return Status::Internal(std::string("uncaught exception in worker: ") +
                                e.what());
      } catch (...) {
        return Status::Internal("uncaught non-standard exception in worker");
      }
    }();
    const double latency_us = MicrosSince(task->enqueued);
    latency_.Record(latency_us);
    if (result.ok()) {
      result->latency_us = latency_us;
      completed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    task->promise.set_value(std::move(result));
  }
}

Result<QueryResponse> QueryService::RunScript(Session* session,
                                              const std::string& script) {
  CCDB_ASSIGN_OR_RETURN(std::string canon, lang::CanonicalizeScript(script));
  CCDB_ASSIGN_OR_RETURN(std::vector<std::string> referenced,
                        lang::ScriptInputs(canon));

  std::lock_guard<std::mutex> session_lock(session->mu);
  std::shared_lock<std::shared_mutex> catalog_lock(catalog_mu_);

  // Cache key: canonical text + versioned base inputs. A script that reads
  // a session step is uncacheable (its inputs are not versioned catalog
  // state shared between sessions).
  bool cacheable = cache_.enabled();
  std::string key = canon;
  for (const std::string& name : referenced) {
    if (session->steps.Has(name)) {
      cacheable = false;
      break;
    }
    if (base_->Has(name)) {
      key += "\n@";
      key += name;
      key += '#';
      key += std::to_string(base_->Version(name));
    }
  }

  if (cacheable) {
    if (std::shared_ptr<const CachedResult> hit = cache_.Lookup(key)) {
      // Replay the registrations so the session sees exactly the state
      // execution would have produced. The deep copies happen here, on
      // the shared immutable entry, outside the cache's critical section.
      for (const auto& [name, relation] : hit->steps) {
        session->steps.CreateOrReplace(name, relation);
      }
      QueryResponse response;
      response.step = hit->final_step;
      response.cache_hit = true;
      for (const auto& [name, relation] : hit->steps) {
        if (name == hit->final_step) response.relation = relation;
      }
      return response;
    }
  }

  SessionView view(base_, &session->steps);
  CCDB_ASSIGN_OR_RETURN(std::string last, lang::ExecuteScript(canon, &view));
  CCDB_ASSIGN_OR_RETURN(const Relation* final_rel, session->steps.Get(last));

  QueryResponse response;
  response.step = last;
  response.relation = *final_rel;

  if (cacheable) {
    CachedResult outcome;
    outcome.final_step = last;
    for (const std::string& name : view.defined()) {
      auto step = session->steps.Get(name);
      if (step.ok()) outcome.steps.emplace_back(name, **step);
    }
    cache_.Insert(key, std::move(outcome));
  }
  return response;
}

Status QueryService::CommitBaseLocked() {
  if (options_.store == nullptr) return Status::OK();
  return options_.store->CommitCatalog(*base_);
}

Status QueryService::CreateRelation(const std::string& name,
                                    Relation relation) {
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  CCDB_RETURN_IF_ERROR(base_->Create(name, std::move(relation)));
  Status committed = CommitBaseLocked();
  if (!committed.ok()) {
    // The write was never acknowledged — undo it so memory matches disk.
    (void)base_->Drop(name);
    return committed;
  }
  return Status::OK();
}

Status QueryService::ReplaceRelation(const std::string& name,
                                     Relation relation) {
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  std::optional<Relation> previous;
  if (auto old = base_->Get(name); old.ok()) previous = **old;
  base_->CreateOrReplace(name, std::move(relation));
  Status committed = CommitBaseLocked();
  if (!committed.ok()) {
    if (previous.has_value()) {
      base_->CreateOrReplace(name, std::move(*previous));
    } else {
      (void)base_->Drop(name);
    }
    return committed;
  }
  return Status::OK();
}

Status QueryService::DropRelation(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  std::optional<Relation> previous;
  if (auto old = base_->Get(name); old.ok()) previous = **old;
  CCDB_RETURN_IF_ERROR(base_->Drop(name));
  Status committed = CommitBaseLocked();
  if (!committed.ok()) {
    if (previous.has_value()) {
      base_->CreateOrReplace(name, std::move(*previous));
    }
    return committed;
  }
  return Status::OK();
}

Status QueryService::Checkpoint() {
  std::unique_lock<std::shared_mutex> lock(catalog_mu_);
  if (options_.store == nullptr) {
    return Status::Unavailable("service has no durable store attached");
  }
  return options_.store->Checkpoint();
}

Result<Relation> QueryService::GetRelation(SessionId id,
                                           const std::string& name) const {
  std::shared_ptr<Session> session = FindSession(id);
  if (!session) {
    return Status::NotFound("no session " + std::to_string(id));
  }
  std::lock_guard<std::mutex> session_lock(session->mu);
  auto step = session->steps.Get(name);
  if (step.ok()) return **step;
  std::shared_lock<std::shared_mutex> catalog_lock(catalog_mu_);
  CCDB_ASSIGN_OR_RETURN(const Relation* relation, base_->Get(name));
  return *relation;
}

std::vector<std::string> QueryService::VisibleNames(SessionId id) const {
  std::set<std::string> names;
  {
    std::shared_lock<std::shared_mutex> catalog_lock(catalog_mu_);
    for (const std::string& name : base_->Names()) names.insert(name);
  }
  if (std::shared_ptr<Session> session = FindSession(id)) {
    std::lock_guard<std::mutex> session_lock(session->mu);
    for (const std::string& name : session->steps.Names()) {
      names.insert(name);
    }
  }
  return std::vector<std::string>(names.begin(), names.end());
}

Database QueryService::CloneBase() const {
  std::shared_lock<std::shared_mutex> lock(catalog_mu_);
  return *base_;
}

void QueryService::Resume() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    paused_ = false;
  }
  queue_cv_.notify_all();
}

void QueryService::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      stopping_ = true;
      paused_ = false;  // a paused service still drains on shutdown
    }
    queue_cv_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  });
}

ServiceMetrics QueryService::Metrics() const {
  ServiceMetrics m;
  m.submitted = submitted_.load(std::memory_order_relaxed);
  m.rejected = rejected_.load(std::memory_order_relaxed);
  m.completed = completed_.load(std::memory_order_relaxed);
  m.failed = failed_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    m.queue_depth = queue_.size();
    m.queue_high_water = queue_high_water_;
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    m.sessions = sessions_.size();
  }
  m.workers = workers_.size();
  ResultCache::Stats cache = cache_.stats();
  m.cache_hits = cache.hits;
  m.cache_misses = cache.misses;
  m.cache_entries = cache.entries;
  if (options_.disk != nullptr) m.pages_read = options_.disk->stats().reads;
  if (options_.store != nullptr) {
    WalStats wal = options_.store->stats();
    m.wal_bytes = wal.bytes_appended;
    m.wal_batches = wal.batches_committed;
    m.wal_fsyncs = wal.fsyncs;
    m.wal_checkpoints = wal.checkpoints;
  }
  LatencyRecorder::Summary latency = latency_.Summarize();
  m.latency_count = latency.count;
  m.latency_min_us = latency.min_us;
  m.latency_mean_us = latency.mean_us;
  m.latency_p50_us = latency.p50_us;
  m.latency_p99_us = latency.p99_us;
  return m;
}

}  // namespace ccdb::service
