#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <optional>
#include <set>

#include "core/plan.h"
#include "lang/compile.h"
#include "lang/query.h"
#include "obs/exposition.h"
#include "obs/metric_names.h"
#include "storage/wal.h"
#include "util/lock_graph.h"

namespace ccdb::service {

namespace {

/// The per-session overlay the query language executes against: step
/// registrations go to the session's private catalog, lookups resolve
/// steps first and fall back to the shared base — here a
/// `SnapshotReadView` over the query's pinned catalog snapshot. The
/// caller holds the session mutex and a pin on the snapshot, so the base
/// pointers handed out stay valid for the whole execution.
class SessionView : public Database {
 public:
  SessionView(const Database* base, Database* steps)
      : base_(base), steps_(steps) {}

  Status Create(const std::string& name, Relation relation) override {
    RecordDefinition(name);
    return steps_->Create(name, std::move(relation));
  }

  void CreateOrReplace(const std::string& name, Relation relation) override {
    RecordDefinition(name);
    steps_->CreateOrReplace(name, std::move(relation));
  }

  Result<const Relation*> Get(const std::string& name) const override {
    auto step = steps_->Get(name);
    if (step.ok()) return step;
    return base_->Get(name);
  }

  Status Drop(const std::string& name) override { return steps_->Drop(name); }

  bool Has(const std::string& name) const override {
    return steps_->Has(name) || base_->Has(name);
  }

  /// Names this view registered, in first-definition order.
  const std::vector<std::string>& defined() const { return defined_; }

 private:
  void RecordDefinition(const std::string& name) {
    if (seen_.insert(name).second) defined_.push_back(name);
  }

  const Database* base_;
  Database* steps_;
  std::vector<std::string> defined_;
  std::set<std::string> seen_;
};

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

/// A session: a private step catalog, the mutex that serializes the
/// session's queries (different sessions run in parallel), and the
/// session's transaction state — a snapshot pinned at BEGIN plus the
/// staged catalog writes that commit as one batch.
struct QueryService::Session {
  /// Serializes the session's queries; held across execution, so it sits
  /// above the whole commit path in the lock order.
  Mutex mu CCDB_LOCK_ORDER(
      "service.commit", "catalog.cell", "service.result_cache",
      "obs.event_log", "obs.trace_sink")
      {"service.session"};
  Database steps CCDB_GUARDED_BY(mu);
  bool in_txn CCDB_GUARDED_BY(mu) = false;
  uint64_t txn_id CCDB_GUARDED_BY(mu) = 0;
  SnapshotPtr txn_snap CCDB_GUARDED_BY(mu);
  StagedWrites staged CCDB_GUARDED_BY(mu);
};

/// One queued script execution.
struct QueryService::Task {
  std::shared_ptr<Session> session;
  SessionId owner = 0;
  uint64_t query_id = 0;
  std::string script;
  /// The catalog snapshot pinned at Submit: the query reads this frozen
  /// state no matter what commits while it is queued or running.
  SnapshotPtr snapshot;
  std::promise<Result<QueryResponse>> promise;
  std::chrono::steady_clock::time_point enqueued;
  obs::GovernanceLimits limits;
  std::shared_ptr<obs::CancelFlag> cancel;
  /// True when the submitter supplied its own cancellation flag (as
  /// opposed to the service-created one every task carries for Cancel()).
  bool externally_cancellable = false;
  /// Client-assigned correlation id; stamps the slow-query log line.
  uint64_t trace_id = 0;
  /// Client-minted idempotency key; a COMMIT statement records/reads the
  /// dedup table under it (0 = no idempotency).
  uint64_t request_id = 0;
};

QueryService::QueryService(Database* base, ServiceOptions options)
    : options_(options),
      store_(options.store),
      cache_(options.cache_capacity),
      paused_(options.start_paused),
      submitted_(registry_.GetCounter(obs::names::kQueriesSubmitted)),
      rejected_(registry_.GetCounter(obs::names::kQueriesRejected)),
      completed_(registry_.GetCounter(obs::names::kQueriesCompleted)),
      failed_(registry_.GetCounter(obs::names::kQueriesFailed)),
      slow_(registry_.GetCounter(obs::names::kQueriesSlow)),
      traced_(registry_.GetCounter(obs::names::kQueriesTraced)),
      conjunctions_(registry_.GetCounter(obs::names::kCqaConjunctions)),
      fm_eliminations_(registry_.GetCounter(obs::names::kFmEliminations)),
      redundancy_culls_(registry_.GetCounter(obs::names::kFmRedundancyCulls)),
      index_node_visits_(registry_.GetCounter(obs::names::kIndexNodeVisits)),
      index_leaf_hits_(registry_.GetCounter(obs::names::kIndexLeafHits)),
      pages_read_(registry_.GetCounter(obs::names::kStoragePagesRead)),
      pool_hits_(registry_.GetCounter(obs::names::kStoragePoolHits)),
      txn_begins_(registry_.GetCounter(obs::names::kTxnBegins)),
      txn_commits_(registry_.GetCounter(obs::names::kTxnCommits)),
      txn_rollbacks_(registry_.GetCounter(obs::names::kTxnRollbacks)),
      txn_conflicts_(registry_.GetCounter(obs::names::kTxnConflicts)),
      txn_dedup_hits_(registry_.GetCounter(obs::names::kTxnDedupHits)),
      txn_aborts_on_disconnect_(
          registry_.GetCounter(obs::names::kTxnAbortsOnDisconnect)),
      gov_deadline_hits_(registry_.GetCounter(obs::names::kGovDeadlineHits)),
      gov_budget_trips_(registry_.GetCounter(obs::names::kGovBudgetTrips)),
      gov_cancels_(registry_.GetCounter(obs::names::kGovCancels)),
      gov_sheds_(registry_.GetCounter(obs::names::kGovSheds)),
      gov_truncated_(registry_.GetCounter(obs::names::kGovTruncated)),
      latency_hist_(registry_.GetHistogram(obs::names::kQueryLatencyUs)),
      fm_hist_(registry_.GetHistogram(obs::names::kQueryFmEliminations)),
      tuples_out_hist_(registry_.GetHistogram(obs::names::kQueryTuplesOut)) {
  if (base != nullptr) catalog_.Seed(*base);
  const size_t workers = std::max<size_t>(1, options_.num_workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

SessionId QueryService::OpenSession() {
  MutexLock lock(sessions_mu_);
  SessionId id = next_session_++;
  sessions_[id] = std::make_shared<Session>();
  return id;
}

Status QueryService::CloseSession(SessionId id) {
  std::shared_ptr<Session> session;
  {
    MutexLock lock(sessions_mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::NotFound("no session " + std::to_string(id));
    }
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // An open transaction dies with its session: the staged writes were
  // never published, so dropping them IS the rollback — count it. The
  // disconnect-abort counter and event let operators tell "client chose
  // ROLLBACK" from "client vanished mid-transaction".
  MutexLock lock(session->mu);
  if (session->in_txn) {
    txn_rollbacks_->Increment();
    txn_aborts_on_disconnect_->Increment();
    if (options_.event_log != nullptr) {
      obs::Event event;
      event.type = "txn_abort_on_disconnect";
      event.session = id;
      event.detail = "txn " + std::to_string(session->txn_id) +
                     " rolled back: session closed while open";
      options_.event_log->Emit(event);
    }
  }
  return Status::OK();
}

std::shared_ptr<QueryService::Session> QueryService::FindSession(
    SessionId id) const {
  MutexLock lock(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

obs::GovernanceLimits QueryService::ResolveLimits(
    const QueryOptions& opts) const {
  obs::GovernanceLimits limits = options_.governance;
  if (opts.deadline_us) limits.deadline_us = *opts.deadline_us;
  if (opts.max_tuples) limits.max_tuples = *opts.max_tuples;
  if (opts.max_constraints) limits.max_constraints = *opts.max_constraints;
  if (opts.max_memory_bytes) limits.max_memory_bytes = *opts.max_memory_bytes;
  if (opts.allow_partial) limits.allow_partial = *opts.allow_partial;
  if (opts.trip_at_check > 0) {
    limits.trip_at_check = opts.trip_at_check;
    limits.check_stride = 1;  // deterministic check indices for tests
  }
  return limits;
}

double QueryService::EstimateInflightUsLocked() const {
  queue_mu_.AssertHeld();
  // 1 ms prior until real latencies exist: shedding the very first query
  // because we know nothing about it would be strictly worse than a guess.
  double p50 = latency_.Summarize().p50_us;
  if (p50 <= 0) p50 = 1000.0;
  return static_cast<double>(queue_.size() + running_ + 1) * p50;
}

Result<Submission> QueryService::Submit(SessionId id, std::string script,
                                        QueryOptions opts) {
  std::shared_ptr<Session> session = FindSession(id);
  if (!session) {
    return Status::NotFound("no session " + std::to_string(id));
  }
  auto task = std::make_unique<Task>();
  task->session = std::move(session);
  task->owner = id;
  task->query_id = next_query_id_.fetch_add(1, std::memory_order_relaxed);
  task->script = std::move(script);
  // Pin the catalog NOW: whatever commits after this point, the query
  // executes against this frozen snapshot (and is cache-keyed by it).
  task->snapshot = catalog_.Snapshot();
  task->enqueued = std::chrono::steady_clock::now();
  task->limits = ResolveLimits(opts);
  // Every task carries a cancellation flag (the caller's, or a fresh one)
  // so Cancel(session, query_id) works without client cooperation.
  task->externally_cancellable = opts.cancel != nullptr;
  task->cancel = opts.cancel ? opts.cancel
                             : std::make_shared<obs::CancelFlag>(false);
  task->trace_id = opts.trace_id;
  task->request_id = opts.request_id;
  Submission submission;
  submission.query_id = task->query_id;
  submission.future = task->promise.get_future();
  {
    MutexLock lock(queue_mu_);
    if (stopping_) {
      rejected_->Increment();
      return Status::Unavailable("service is shutting down");
    }
    // Admission control: a full queue always sheds; with a configured
    // in-flight budget, shed when the backlog's estimated cost exceeds
    // it. Either refusal carries a retry-after hint sized to the recent
    // p50 so well-behaved clients back off proportionally to real load.
    const bool queue_full = queue_.size() >= options_.max_queue_depth;
    const bool over_cost =
        options_.shed_inflight_us > 0 &&
        EstimateInflightUsLocked() > options_.shed_inflight_us;
    if (queue_full || over_cost) {
      rejected_->Increment();
      gov_sheds_->Increment();
      double p50 = latency_.Summarize().p50_us;
      if (p50 <= 0) p50 = 1000.0;
      const auto retry_ms = static_cast<int64_t>(
          std::max(1.0, std::ceil(p50 / 1000.0)));
      Status shed =
          queue_full
              ? Status::Unavailable(
                    "request queue full (" + std::to_string(queue_.size()) +
                    " of " + std::to_string(options_.max_queue_depth) +
                    " slots)")
              : Status::Unavailable(
                    "estimated in-flight work exceeds shed threshold");
      shed.WithRetryAfter(retry_ms);
      if (options_.event_log != nullptr) {
        obs::Event event;
        event.type = "shed";
        event.session = id;
        event.trace_id = opts.trace_id;
        event.detail = queue_full ? "queue full" : "over cost threshold";
        options_.event_log->Emit(event);
      }
      return shed;
    }
    queue_.push_back(std::move(task));
    queue_high_water_ = std::max<uint64_t>(queue_high_water_, queue_.size());
    submitted_->Increment();
  }
  queue_cv_.NotifyOne();
  return submission;
}

Result<QueryResponse> QueryService::Execute(SessionId id,
                                            const std::string& script,
                                            QueryOptions opts) {
  CCDB_ASSIGN_OR_RETURN(Submission submission,
                        Submit(id, script, std::move(opts)));
  return submission.future.get();
}

Status QueryService::Cancel(SessionId session, uint64_t query_id) {
  std::unique_ptr<Task> queued;
  {
    MutexLock lock(queue_mu_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if ((*it)->query_id == query_id) {
        if ((*it)->owner != session) {
          return Status::NotFound("query " + std::to_string(query_id) +
                                  " does not belong to this session");
        }
        queued = std::move(*it);
        queue_.erase(it);
        break;
      }
    }
    if (!queued) {
      auto it = running_cancels_.find(query_id);
      if (it == running_cancels_.end() || it->second.first != session) {
        return Status::NotFound("no active query " + std::to_string(query_id));
      }
      // Running: raise the flag; the worker unwinds at its next
      // governance check-point and counts the cancellation itself.
      it->second.second->store(true, std::memory_order_relaxed);
      return Status::OK();
    }
  }
  // Queued: fail the future right here — the worker never sees the task.
  failed_->Increment();
  gov_cancels_->Increment();
  queued->promise.set_value(Status::Cancelled(
      "query " + std::to_string(query_id) + " cancelled while queued"));
  return Status::OK();
}

Result<TraceReport> QueryService::Trace(SessionId id,
                                        const std::string& script,
                                        uint64_t trace_id) {
  std::shared_ptr<Session> session = FindSession(id);
  if (!session) {
    return Status::NotFound("no session " + std::to_string(id));
  }
  CCDB_ASSIGN_OR_RETURN(std::string canon, lang::CanonicalizeScript(script));

  MutexLock session_lock(session->mu);
  // Trace pins the catalog here (no queue): the BEGIN-time snapshot plus
  // staged writes inside a transaction, the current snapshot otherwise.
  SnapshotPtr snap = session->in_txn ? session->txn_snap : catalog_.Snapshot();
  SnapshotReadView base(snap, session->in_txn ? &session->staged : nullptr);
  SessionView view(&base, &session->steps);

  TraceReport report;
  const auto start = std::chrono::steady_clock::now();
  obs::LayerCounters counters;
  {
    obs::CounterScope scope;
    auto compiled = lang::CompileScript(canon, view);
    if (compiled.ok()) {
      // EXPLAIN ANALYZE proper: one optimized plan, per-operator spans.
      std::unique_ptr<cqa::PlanNode> plan =
          cqa::Optimize(std::move(compiled->plan), view);
      report.plan_text = plan->ToString();
      report.used_plan = true;
      CCDB_ASSIGN_OR_RETURN(Relation rel,
                            cqa::ExecuteTraced(*plan, view, &report.root));
      view.CreateOrReplace(compiled->final_step, rel);
      report.response.step = compiled->final_step;
      report.response.relation = std::move(rel);
    } else if (compiled.status().code() == StatusCode::kUnsupported) {
      // Outside the algebra subset: statement-level spans.
      CCDB_ASSIGN_OR_RETURN(
          std::string last,
          lang::ExecuteScriptTraced(canon, &view, &report.root));
      CCDB_ASSIGN_OR_RETURN(const Relation* rel, session->steps.Get(last));
      report.response.step = last;
      report.response.relation = *rel;
    } else {
      return compiled.status();
    }
    counters = scope.counters();
  }
  report.response.latency_us = MicrosSince(start);
  report.trace_id = trace_id;

  traced_->Increment();
  DrainCounters(counters);
  fm_hist_->Record(counters.fm_eliminations);
  tuples_out_hist_->Record(report.response.relation.size());
  if (options_.trace_sink != nullptr) {
    obs::TraceEvent event;
    event.query = canon;
    event.latency_us = report.response.latency_us;
    event.slow = options_.slow_query_us > 0 &&
                 report.response.latency_us >= options_.slow_query_us;
    event.session = id;
    event.trace_id = trace_id;
    event.root = &report.root;
    options_.trace_sink->Emit(event);
  }
  return report;
}

void QueryService::WorkerLoop() {
  for (;;) {
    std::unique_ptr<Task> task;
    {
      MutexLock lock(queue_mu_);
      // Predicate loop in the annotated caller (not a lambda handed to the
      // cv) so the guarded reads stay visible to the thread-safety
      // analysis.
      while (!((!paused_ && !queue_.empty()) ||
               (stopping_ && queue_.empty()))) {
        queue_cv_.Wait(queue_mu_);
      }
      if (queue_.empty()) return;  // stopping, fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
      running_cancels_[task->query_id] = {task->owner, task->cancel};
    }
    // Statement-level spans are worth recording if the sink could see
    // them: via the slow-query log, or via a governance trip's trace.
    // "Governed" means actual governance intent — limits or a caller-held
    // cancellation flag — not the service-created flag every task carries,
    // so ungoverned queries never pay the span-recording overhead.
    const bool governed = task->limits.Any() || task->externally_cancellable;
    const bool span_trace =
        options_.trace_sink != nullptr &&
        (options_.slow_query_us > 0 || governed);
    obs::TraceNode trace;
    obs::LayerCounters counters;
    // The governance context: armed from the *enqueue* time, so queue
    // wait counts against the deadline. Installed for every task (limits
    // may be all-zero — then only the cancellation flag is live).
    obs::ExecContext exec(task->limits, task->enqueued, task->cancel);
    // Exception barrier: a throw out of execution (bad_alloc, a parser
    // edge case, ...) must fail this one request, not terminate the
    // process — the worker thread stays alive for the next task.
    Result<QueryResponse> result = [&]() -> Result<QueryResponse> {
      try {
        obs::CounterScope scope;
        obs::ExecContextScope governance(&exec);
        // A task that spent its whole deadline in the queue fails before
        // touching the engine.
        exec.FullCheck();
        if (exec.aborting()) return exec.trip_status();
        auto r = RunScript(task->session.get(), task->script, task->snapshot,
                           task->request_id, span_trace ? &trace : nullptr);
        counters = scope.counters();
        // Backstop over RunScript's trailing check-point: once an abort
        // has latched, FM helpers bail early and return semantically
        // wrong partial values, so an OK result here must be discarded
        // in favor of the typed trip status — it must never escape.
        if (r.ok() && exec.aborting()) return exec.trip_status();
        return r;
      } catch (const std::exception& e) {
        // Normalized for the wire: what() is unbounded attacker/library
        // text, so clamp it to exactly what a remote client would see —
        // in-process callers and network callers get the identical
        // status.
        return NormalizeStatusForWire(Status::Internal(
            std::string("uncaught exception in worker: ") + e.what()));
      } catch (...) {
        return Status::Internal("uncaught non-standard exception in worker");
      }
    }();
    const double latency_us = MicrosSince(task->enqueued);
    latency_.Record(latency_us);
    latency_hist_->Record(static_cast<uint64_t>(latency_us));
    DrainCounters(counters);
    fm_hist_->Record(counters.fm_eliminations);
    const bool truncated =
        result.ok() && exec.budget_tripped() && !exec.aborting();
    if (result.ok()) {
      result->latency_us = latency_us;
      result->truncated = truncated;
      completed_->Increment();
      tuples_out_hist_->Record(result->relation.size());
    } else {
      failed_->Increment();
    }
    RecordGovernanceOutcome(exec, result.ok() ? Status::OK() : result.status(),
                            truncated);
    const bool slow =
        options_.slow_query_us > 0 && latency_us >= options_.slow_query_us;
    if (slow) slow_->Increment();
    // The slow-query log doubles as the governance post-mortem: a query
    // that tripped (deadline, budget, cancel) emits its trace alongside
    // genuinely slow ones, so "why did this die?" has the same answer
    // path as "why was this slow?". Cache hits leave the trace empty —
    // the latency is still reported.
    if ((slow || exec.tripped()) && options_.trace_sink != nullptr) {
      obs::TraceEvent event;
      event.query = task->script;
      event.latency_us = latency_us;
      event.slow = slow;
      event.query_id = task->query_id;
      event.session = task->owner;
      event.trace_id = task->trace_id;
      event.root = trace.children.empty() ? nullptr : &trace;
      options_.trace_sink->Emit(event);
    }
    {
      MutexLock lock(queue_mu_);
      --running_;
      running_cancels_.erase(task->query_id);
    }
    task->promise.set_value(std::move(result));
  }
}

void QueryService::RecordGovernanceOutcome(const obs::ExecContext& ctx,
                                           const Status& status,
                                           bool truncated) {
  if (ctx.budget_tripped()) gov_budget_trips_->Increment();
  if (truncated) gov_truncated_->Increment();
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      gov_deadline_hits_->Increment();
      break;
    case StatusCode::kCancelled:
      gov_cancels_->Increment();
      break;
    default:
      break;  // kResourceExhausted is covered by budget_tripped()
  }
}

void QueryService::DrainCounters(const obs::LayerCounters& counters) {
  if (counters.IsZero()) return;
  conjunctions_->Add(counters.conjunctions);
  fm_eliminations_->Add(counters.fm_eliminations);
  redundancy_culls_->Add(counters.redundancy_culls);
  index_node_visits_->Add(counters.index_node_visits);
  index_leaf_hits_->Add(counters.index_leaf_hits);
  pages_read_->Add(counters.pages_read);
  pool_hits_->Add(counters.pool_hits);
}

Result<QueryResponse> QueryService::RunScript(Session* session,
                                              const std::string& script,
                                              const SnapshotPtr& pinned,
                                              uint64_t request_id,
                                              obs::TraceNode* trace) {
  // Transaction controls are whole-statement keywords, dispatched before
  // the step-statement parser ever sees them. Routing them through the
  // normal queue (not Submit) preserves program order with the session's
  // in-flight queries, and makes BEGIN/COMMIT work identically through
  // the network edge — the server's QUERY opcode lands here too.
  switch (lang::ClassifyTxnStatement(script)) {
    case lang::TxnStatement::kBegin: {
      CCDB_RETURN_IF_ERROR(BeginTxn(session));
      QueryResponse response;
      response.step = "BEGIN";
      return response;
    }
    case lang::TxnStatement::kCommit: {
      CCDB_RETURN_IF_ERROR(CommitTxn(session, request_id));
      QueryResponse response;
      response.step = "COMMIT";
      return response;
    }
    case lang::TxnStatement::kRollback: {
      CCDB_RETURN_IF_ERROR(RollbackTxn(session));
      QueryResponse response;
      response.step = "ROLLBACK";
      return response;
    }
    case lang::TxnStatement::kNone:
      break;
  }

  if (options_.execution_hook) options_.execution_hook(script);

  CCDB_ASSIGN_OR_RETURN(std::string canon, lang::CanonicalizeScript(script));
  CCDB_ASSIGN_OR_RETURN(std::vector<std::string> referenced,
                        lang::ScriptInputs(canon));

  MutexLock session_lock(session->mu);
  // The read view: inside a transaction, the BEGIN-time snapshot overlaid
  // with the transaction's own staged writes (read-your-writes); outside,
  // the snapshot pinned at Submit. Either way the state is frozen — no
  // concurrent commit can tear it.
  const bool in_txn = session->in_txn;
  const SnapshotPtr& snap = in_txn ? session->txn_snap : pinned;
  SnapshotReadView base(snap, in_txn ? &session->staged : nullptr);

  // Cache key: canonical text + versioned base inputs, with the versions
  // read from the SAME snapshot the script executes against — so what the
  // key claims and what execution saw cannot diverge (the pre-MVCC
  // version-stamp/insert TOCTOU). A script that reads a session step is
  // uncacheable (its inputs are not versioned catalog state shared
  // between sessions); so is any query inside a transaction (its inputs
  // include uncommitted staged writes).
  bool cacheable = cache_.enabled() && !in_txn;
  std::string key = canon;
  if (cacheable) {
    for (const std::string& name : referenced) {
      if (session->steps.Has(name)) {
        cacheable = false;
        break;
      }
      if (snap->Has(name)) {
        key += "\n@";
        key += name;
        key += '#';
        key += std::to_string(snap->Version(name));
      }
    }
  }

  if (cacheable) {
    if (std::shared_ptr<const CachedResult> hit = cache_.Lookup(key)) {
      // Replay the registrations so the session sees exactly the state
      // execution would have produced. The deep copies happen here, on
      // the shared immutable entry, outside the cache's critical section.
      for (const auto& [name, relation] : hit->steps) {
        session->steps.CreateOrReplace(name, relation);
      }
      QueryResponse response;
      response.step = hit->final_step;
      response.cache_hit = true;
      for (const auto& [name, relation] : hit->steps) {
        if (name == hit->final_step) response.relation = relation;
      }
      return response;
    }
  }

  SessionView view(&base, &session->steps);
  std::string last;
  if (trace != nullptr) {
    CCDB_ASSIGN_OR_RETURN(last, lang::ExecuteScriptTraced(canon, &view, trace));
  } else {
    CCDB_ASSIGN_OR_RETURN(last, lang::ExecuteScript(canon, &view));
  }
  // A trip can latch during the final statement's last operator iteration
  // — after that iteration's top-of-loop check-point — via a charge. FM
  // helpers bail early once aborting is latched and return semantically
  // wrong partial values, so convert the trip into its typed error here,
  // before the result could be returned as OK or seed the cache.
  CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
  CCDB_ASSIGN_OR_RETURN(const Relation* final_rel, session->steps.Get(last));

  QueryResponse response;
  response.step = last;
  response.relation = *final_rel;

  // A truncated (partial) result is a sound answer for *this* governed
  // query, but it must never satisfy a future ungoverned one — skip the
  // cache when any budget tripped under allow_partial.
  if (cacheable && !obs::GovernanceTruncating()) {
    if (options_.post_execute_hook) options_.post_execute_hook();
    CachedResult outcome;
    outcome.final_step = last;
    for (const std::string& name : view.defined()) {
      auto step = session->steps.Get(name);
      if (step.ok()) outcome.steps.emplace_back(name, **step);
    }
    cache_.Insert(key, std::move(outcome));
  }
  return response;
}

// --- Transactions & catalog commits -----------------------------------------------

Status QueryService::Begin(SessionId id) {
  std::shared_ptr<Session> session = FindSession(id);
  if (!session) return Status::NotFound("no session " + std::to_string(id));
  return BeginTxn(session.get());
}

Status QueryService::Commit(SessionId id) {
  std::shared_ptr<Session> session = FindSession(id);
  if (!session) return Status::NotFound("no session " + std::to_string(id));
  return CommitTxn(session.get());
}

Status QueryService::Rollback(SessionId id) {
  std::shared_ptr<Session> session = FindSession(id);
  if (!session) return Status::NotFound("no session " + std::to_string(id));
  return RollbackTxn(session.get());
}

Result<QueryService::TxnInfo> QueryService::TransactionInfo(
    SessionId id) const {
  std::shared_ptr<Session> session = FindSession(id);
  if (!session) return Status::NotFound("no session " + std::to_string(id));
  MutexLock lock(session->mu);
  TxnInfo info;
  info.active = session->in_txn;
  if (session->in_txn) {
    info.txn_id = session->txn_id;
    info.snapshot_epoch = session->txn_snap->epoch();
    for (const auto& entry : session->staged) {
      info.staged_writes.push_back(entry.first);
    }
  }
  return info;
}

Status QueryService::BeginTxn(Session* session) {
  MutexLock lock(session->mu);
  if (session->in_txn) {
    return Status::InvalidArgument(
        "a transaction is already open in this session (no nesting)");
  }
  session->in_txn = true;
  session->txn_id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  session->txn_snap = catalog_.Snapshot();
  session->staged.clear();
  txn_begins_->Increment();
  return Status::OK();
}

Status QueryService::RollbackTxn(Session* session) {
  MutexLock lock(session->mu);
  if (!session->in_txn) {
    return Status::InvalidArgument("no transaction in progress");
  }
  session->in_txn = false;
  session->txn_id = 0;
  session->txn_snap.reset();
  session->staged.clear();
  txn_rollbacks_->Increment();
  return Status::OK();
}

Status QueryService::CommitTxn(Session* session, uint64_t request_id) {
  // Idempotent retry: a COMMIT whose acknowledgement was lost arrives
  // again — usually on a fresh session after a reconnect, with no open
  // transaction — and must observe the original outcome, not re-apply
  // and not report a spurious "no transaction in progress".
  if (request_id != 0) {
    if (std::optional<Status> prior = LookupRequestOutcome(request_id)) {
      txn_dedup_hits_->Increment();
      return *prior;
    }
  }
  Status outcome = CommitTxnImpl(session, request_id);
  // Record every *decided* commit — success, conflict, or storage
  // failure — so the retry replays the decision. "No transaction in
  // progress" is not a decision about this request id (the transaction
  // never reached COMMIT) and stays unrecorded.
  if (request_id != 0 &&
      outcome.code() != StatusCode::kInvalidArgument) {
    RecordRequestOutcome(request_id, outcome);
  }
  return outcome;
}

Status QueryService::CommitTxnImpl(Session* session, uint64_t request_id) {
  MutexLock session_lock(session->mu);
  if (!session->in_txn) {
    return Status::InvalidArgument("no transaction in progress");
  }
  // Whatever happens below, the transaction is over: a failed commit
  // (conflict or storage error) rolls back — the candidate snapshot is
  // discarded unpublished, so no version counter ever records it.
  const uint64_t txn_id = session->txn_id;
  StagedWrites staged = std::move(session->staged);
  SnapshotPtr txn_snap = std::move(session->txn_snap);
  session->in_txn = false;
  session->txn_id = 0;
  session->staged.clear();

  if (staged.empty()) {
    txn_commits_->Increment();
    return Status::OK();  // read-only transaction: nothing to publish
  }

  MutexLock commit_lock(commit_mu_);
  SnapshotPtr current = catalog_.Snapshot();
  // First committer wins: a name this transaction wrote that was
  // committed (created / replaced / dropped) since BEGIN aborts the
  // commit. Raw counters — not bound-versions — so drop/recreate races
  // are caught too.
  for (const auto& [name, relation] : staged) {
    if (current->VersionCounter(name) != txn_snap->VersionCounter(name)) {
      txn_conflicts_->Increment();
      if (options_.event_log != nullptr) {
        obs::Event event;
        event.type = "txn_conflict";
        event.detail = "txn " + std::to_string(txn_id) + " conflicts on '" +
                       name + "'";
        options_.event_log->Emit(event);
      }
      Status conflict = Status::Unavailable(
          "transaction " + std::to_string(txn_id) + " conflicts on '" + name +
          "': committed concurrently (first committer wins); rolled back");
      conflict.WithRetryAfter(1);
      return conflict;
    }
  }
  CatalogEdit edit(current);
  for (const auto& [name, relation] : staged) {
    if (relation == nullptr) {
      // A staged drop of a name absent from `current` means the
      // transaction created and then dropped it — a net no-op.
      if (edit.Has(name)) CCDB_RETURN_IF_ERROR(edit.Drop(name));
    } else {
      edit.CreateOrReplace(name, relation);
    }
  }
  if (!edit.dirty()) {
    txn_commits_->Increment();
    return Status::OK();
  }
  CCDB_RETURN_IF_ERROR(CommitEditLocked(std::move(edit), txn_id, request_id));
  txn_commits_->Increment();
  return Status::OK();
}

Status QueryService::CommitEditLocked(CatalogEdit&& edit, uint64_t txn_id,
                                      uint64_t request_id) {
  commit_mu_.AssertHeld();
  std::shared_ptr<CatalogSnapshot> candidate = edit.Build();
  DurableStore* store = store_.load(std::memory_order_acquire);
  if (store != nullptr) {
    // Durability before visibility: journal the candidate as one WAL
    // batch tagged with the transaction and request ids. Reading through
    // the view serializes the snapshot without deep-copying a relation.
    SnapshotReadView view(candidate);
    CCDB_RETURN_IF_ERROR(store->CommitCatalog(view, txn_id, request_id));
  }
  catalog_.PublishSnapshot(std::move(candidate));
  return Status::OK();
}

void QueryService::AttachStore(DurableStore* store) {
  MutexLock commit_lock(commit_mu_);
  store_.store(store, std::memory_order_release);
}

void QueryService::RecordCommittedRequest(uint64_t request_id) {
  RecordRequestOutcome(request_id, Status::OK());
}

void QueryService::RecordRequestOutcome(uint64_t request_id,
                                        const Status& outcome) {
  if (request_id == 0) return;
  MutexLock lock(dedup_mu_);
  auto [it, inserted] = dedup_results_.emplace(request_id, outcome);
  if (!inserted) {
    it->second = outcome;
    return;
  }
  dedup_fifo_.push_back(request_id);
  while (dedup_fifo_.size() > kDedupCapacity) {
    dedup_results_.erase(dedup_fifo_.front());
    dedup_fifo_.pop_front();
  }
}

std::optional<Status> QueryService::LookupRequestOutcome(
    uint64_t request_id) const {
  MutexLock lock(dedup_mu_);
  auto it = dedup_results_.find(request_id);
  if (it == dedup_results_.end()) return std::nullopt;
  return it->second;
}

Status QueryService::SessionWrite(SessionId id, WriteKind kind,
                                  const std::string& name, Relation relation) {
  std::shared_ptr<Session> session = FindSession(id);
  if (!session) return Status::NotFound("no session " + std::to_string(id));
  MutexLock lock(session->mu);
  if (!session->in_txn) {
    return AutocommitWrite(kind, name, std::move(relation));
  }
  // Stage privately; visibility checks run against the transaction's own
  // view (pinned snapshot + staged writes), so the transaction reads its
  // writes and cannot be confused by concurrent commits.
  SnapshotReadView view(session->txn_snap, &session->staged);
  switch (kind) {
    case WriteKind::kCreate:
      if (view.Has(name)) {
        return Status::AlreadyExists("relation '" + name +
                                     "' already exists");
      }
      session->staged[name] =
          std::make_shared<const Relation>(std::move(relation));
      return Status::OK();
    case WriteKind::kReplace:
      session->staged[name] =
          std::make_shared<const Relation>(std::move(relation));
      return Status::OK();
    case WriteKind::kDrop:
      if (!view.Has(name)) {
        return Status::NotFound("no relation named '" + name + "'");
      }
      session->staged[name] = nullptr;
      return Status::OK();
  }
  return Status::Internal("unreachable write kind");
}

Status QueryService::AutocommitWrite(WriteKind kind, const std::string& name,
                                     Relation relation) {
  MutexLock commit_lock(commit_mu_);
  CatalogEdit edit(catalog_.Snapshot());
  switch (kind) {
    case WriteKind::kCreate:
      CCDB_RETURN_IF_ERROR(edit.Create(name, std::move(relation)));
      break;
    case WriteKind::kReplace:
      edit.CreateOrReplace(
          name, std::make_shared<const Relation>(std::move(relation)));
      break;
    case WriteKind::kDrop:
      CCDB_RETURN_IF_ERROR(edit.Drop(name));
      break;
  }
  return CommitEditLocked(std::move(edit), /*txn_id=*/0);
}

Status QueryService::CreateRelation(SessionId id, const std::string& name,
                                    Relation relation) {
  return SessionWrite(id, WriteKind::kCreate, name, std::move(relation));
}

Status QueryService::ReplaceRelation(SessionId id, const std::string& name,
                                     Relation relation) {
  return SessionWrite(id, WriteKind::kReplace, name, std::move(relation));
}

Status QueryService::DropRelation(SessionId id, const std::string& name) {
  return SessionWrite(id, WriteKind::kDrop, name, Relation{});
}

Status QueryService::CreateRelation(const std::string& name,
                                    Relation relation) {
  return AutocommitWrite(WriteKind::kCreate, name, std::move(relation));
}

Status QueryService::ReplaceRelation(const std::string& name,
                                     Relation relation) {
  return AutocommitWrite(WriteKind::kReplace, name, std::move(relation));
}

Status QueryService::DropRelation(const std::string& name) {
  return AutocommitWrite(WriteKind::kDrop, name, Relation{});
}

Status QueryService::Checkpoint() {
  MutexLock commit_lock(commit_mu_);
  DurableStore* store = store_.load(std::memory_order_acquire);
  if (store == nullptr) {
    return Status::Unavailable("service has no durable store attached");
  }
  CCDB_RETURN_IF_ERROR(store->Checkpoint());
  if (options_.event_log != nullptr) {
    obs::Event event;
    event.type = "checkpoint";
    event.detail =
        "wal truncated at lsn " + std::to_string(store->next_lsn());
    options_.event_log->Emit(event);
  }
  return Status::OK();
}

Result<Relation> QueryService::GetRelation(SessionId id,
                                           const std::string& name) const {
  std::shared_ptr<Session> session = FindSession(id);
  if (!session) {
    return Status::NotFound("no session " + std::to_string(id));
  }
  MutexLock session_lock(session->mu);
  auto step = session->steps.Get(name);
  if (step.ok()) return **step;
  SnapshotPtr snap = session->in_txn ? session->txn_snap : catalog_.Snapshot();
  SnapshotReadView base(snap, session->in_txn ? &session->staged : nullptr);
  CCDB_ASSIGN_OR_RETURN(const Relation* relation, base.Get(name));
  return *relation;
}

std::vector<std::string> QueryService::VisibleNames(SessionId id) const {
  std::set<std::string> names;
  std::shared_ptr<Session> session = FindSession(id);
  if (session) {
    MutexLock session_lock(session->mu);
    SnapshotPtr snap =
        session->in_txn ? session->txn_snap : catalog_.Snapshot();
    SnapshotReadView base(snap,
                          session->in_txn ? &session->staged : nullptr);
    for (const std::string& name : base.Names()) names.insert(name);
    for (const std::string& name : session->steps.Names()) {
      names.insert(name);
    }
  } else {
    SnapshotPtr snap = catalog_.Snapshot();
    for (const std::string& name : snap->Names()) names.insert(name);
  }
  return std::vector<std::string>(names.begin(), names.end());
}

Database QueryService::CloneBase() const {
  SnapshotPtr snap = catalog_.Snapshot();
  return MaterializeSnapshot(*snap);
}

uint64_t QueryService::CatalogEpoch() const { return catalog_.epoch(); }

void QueryService::Resume() {
  {
    MutexLock lock(queue_mu_);
    paused_ = false;
  }
  queue_cv_.NotifyAll();
}

void QueryService::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    std::deque<std::unique_ptr<Task>> orphaned;
    {
      MutexLock lock(queue_mu_);
      stopping_ = true;
      paused_ = false;
      // Tasks already running finish; tasks still queued fail fast with a
      // typed kCancelled so callers holding futures are never stranded
      // (and can tell "shut down" from a query error).
      orphaned.swap(queue_);
    }
    queue_cv_.NotifyAll();
    for (std::unique_ptr<Task>& task : orphaned) {
      failed_->Increment();
      gov_cancels_->Increment();
      task->promise.set_value(Status::Cancelled(
          "query " + std::to_string(task->query_id) +
          " cancelled: service shutting down"));
    }
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  });
}

ServiceMetrics QueryService::Metrics() const {
  ServiceMetrics m;
  m.submitted = submitted_->Value();
  m.rejected = rejected_->Value();
  m.completed = completed_->Value();
  m.failed = failed_->Value();
  m.slow_queries = slow_->Value();
  m.traced_queries = traced_->Value();
  m.conjunctions = conjunctions_->Value();
  m.fm_eliminations = fm_eliminations_->Value();
  m.redundancy_culls = redundancy_culls_->Value();
  m.index_node_visits = index_node_visits_->Value();
  m.index_leaf_hits = index_leaf_hits_->Value();
  m.pool_hits = pool_hits_->Value();
  m.pool_misses = pages_read_->Value();
  m.txn_begins = txn_begins_->Value();
  m.txn_commits = txn_commits_->Value();
  m.txn_rollbacks = txn_rollbacks_->Value();
  m.txn_conflicts = txn_conflicts_->Value();
  m.catalog_epoch = catalog_.epoch();
  m.deadline_hits = gov_deadline_hits_->Value();
  m.budget_trips = gov_budget_trips_->Value();
  m.cancels = gov_cancels_->Value();
  m.sheds = gov_sheds_->Value();
  m.truncated = gov_truncated_->Value();
  {
    MutexLock lock(queue_mu_);
    m.queue_depth = queue_.size();
    m.queue_high_water = queue_high_water_;
  }
  {
    MutexLock lock(sessions_mu_);
    m.sessions = sessions_.size();
  }
  m.workers = workers_.size();
  ResultCache::Stats cache = cache_.stats();
  m.cache_hits = cache.hits;
  m.cache_misses = cache.misses;
  m.cache_entries = cache.entries;
  if (options_.disk != nullptr) m.pages_read = options_.disk->stats().reads;
  if (DurableStore* store = store_.load(std::memory_order_acquire)) {
    WalStats wal = store->stats();
    m.wal_bytes = wal.bytes_appended;
    m.wal_batches = wal.batches_committed;
    m.wal_fsyncs = wal.fsyncs;
    m.wal_checkpoints = wal.checkpoints;
  }
  LatencyRecorder::Summary latency = latency_.Summarize();
  m.latency_count = latency.count;
  m.latency_min_us = latency.min_us;
  m.latency_mean_us = latency.mean_us;
  m.latency_p50_us = latency.p50_us;
  m.latency_p99_us = latency.p99_us;
  // Publish the component stats as registry gauges so a registry dump is
  // self-contained, then snapshot the histograms for the caller.
  registry_.SetGauge(obs::names::kQueueDepth, m.queue_depth);
  registry_.SetGauge(obs::names::kQueueHighWater, m.queue_high_water);
  registry_.SetGauge(obs::names::kSessionsOpen, m.sessions);
  registry_.SetGauge(obs::names::kCacheHits, m.cache_hits);
  registry_.SetGauge(obs::names::kCacheMisses, m.cache_misses);
  registry_.SetGauge(obs::names::kCacheEntries, m.cache_entries);
  registry_.SetGauge(obs::names::kWalBytes, m.wal_bytes);
  registry_.SetGauge(obs::names::kWalBatches, m.wal_batches);
  registry_.SetGauge(obs::names::kWalFsyncs, m.wal_fsyncs);
  registry_.SetGauge(obs::names::kWalCheckpoints, m.wal_checkpoints);
  registry_.SetGauge(obs::names::kCatalogEpoch, m.catalog_epoch);
  m.histograms = registry_.TakeSnapshot().histograms;
  return m;
}

obs::MetricsRegistry::Snapshot QueryService::MetricsSnapshot() const {
  Metrics();  // publishes the component gauges into the registry
  if (DurableStore* store = store_.load(std::memory_order_acquire)) {
    registry_.SetGauge(obs::names::kWalLsn, store->next_lsn());
  }
  // Conflicts per 1000 commit attempts, so scrapers get a rate without
  // delta arithmetic; 0 while no transaction has tried to commit.
  const uint64_t commits = txn_commits_->Value();
  const uint64_t conflicts = txn_conflicts_->Value();
  const uint64_t attempts = commits + conflicts;
  registry_.SetGauge(obs::names::kTxnConflictRate,
                     attempts == 0 ? 0 : conflicts * 1000 / attempts);
  obs::PublishProcessGauges(&registry_);
  // 0 unless built with CCDB_DEADLOCK_DETECT; a nonzero value names a
  // lock held across a blocking call (fsync, socket I/O) — see the
  // held_over_block section of the lock-graph JSON dump for the site.
  registry_.SetGauge(obs::names::kLockHeldOverBlock,
                     lock_graph::HeldOverBlockCount());
  return registry_.TakeSnapshot();
}

}  // namespace ccdb::service
