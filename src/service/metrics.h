#ifndef CCDB_SERVICE_METRICS_H_
#define CCDB_SERVICE_METRICS_H_

/// \file metrics.h
/// Observability for the query service.
///
/// `ServiceMetrics` is a plain-value snapshot (safe to copy out of the
/// running service and print, e.g. by the shell's `\metrics` command);
/// `LatencyRecorder` is the thread-safe accumulator behind its latency
/// fields.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "util/mutex.h"

namespace ccdb::service {

/// Point-in-time view of the service's counters — a plain-value snapshot
/// over the service's `obs::MetricsRegistry` plus its component stats.
/// All latencies are in microseconds; zero when no query has completed
/// yet.
struct ServiceMetrics {
  // Lifecycle counters.
  uint64_t submitted = 0;       ///< accepted into the queue
  uint64_t rejected = 0;        ///< refused (queue full or shutting down)
  uint64_t completed = 0;       ///< finished successfully
  uint64_t failed = 0;          ///< finished with a non-OK status
  uint64_t slow_queries = 0;    ///< latency crossed ServiceOptions::slow_query_us
  uint64_t traced_queries = 0;  ///< explicit Trace() calls
  // Queue.
  uint64_t queue_depth = 0;     ///< tasks waiting right now
  uint64_t queue_high_water = 0;  ///< max depth ever observed
  uint64_t sessions = 0;        ///< currently open sessions
  uint64_t workers = 0;         ///< worker threads
  // Result cache.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_entries = 0;
  // Engine work totals over all executed queries (drained from per-query
  // trace contexts; see obs/trace.h).
  uint64_t conjunctions = 0;       ///< constraint stores materialized
  uint64_t fm_eliminations = 0;    ///< Fourier–Motzkin variable eliminations
  uint64_t redundancy_culls = 0;   ///< constraints dropped as redundant
  uint64_t index_node_visits = 0;  ///< R*-tree nodes loaded
  uint64_t index_leaf_hits = 0;    ///< R*-tree leaf entries matched
  uint64_t pool_hits = 0;          ///< buffer-pool hits during queries
  uint64_t pool_misses = 0;        ///< buffer-pool misses during queries
  // Transactions & MVCC.
  uint64_t txn_begins = 0;      ///< BEGIN statements accepted
  uint64_t txn_commits = 0;     ///< transactions committed (incl. empty)
  uint64_t txn_rollbacks = 0;   ///< explicit ROLLBACKs
  uint64_t txn_conflicts = 0;   ///< commits refused (first committer won)
  uint64_t catalog_epoch = 0;   ///< epoch of the current catalog snapshot
  // Resource governance (deadlines, budgets, cancellation, shedding).
  uint64_t deadline_hits = 0;   ///< queries failed with kDeadlineExceeded
  uint64_t budget_trips = 0;    ///< tuple/constraint/memory budget trips
  uint64_t cancels = 0;         ///< queries cancelled (Cancel() or shutdown)
  uint64_t sheds = 0;           ///< submissions refused by admission control
  uint64_t truncated = 0;       ///< partial results returned (allow_partial)
  // Storage (0 unless the service is wired to a PageManager).
  uint64_t pages_read = 0;
  // Durability (0 unless the service is wired to a DurableStore).
  uint64_t wal_bytes = 0;        ///< log bytes appended by commits
  uint64_t wal_batches = 0;      ///< acknowledged logged batches
  uint64_t wal_fsyncs = 0;       ///< commit-record and header syncs
  uint64_t wal_checkpoints = 0;  ///< log truncations
  // Per-query latency.
  uint64_t latency_count = 0;
  double latency_min_us = 0;
  double latency_mean_us = 0;
  double latency_p50_us = 0;
  double latency_p99_us = 0;
  // Registry histogram snapshots (query.latency_us, query.fm_eliminations,
  // query.tuples_out, ...), sorted by name.
  std::vector<obs::Histogram::Snapshot> histograms;

  /// Multi-line human-readable rendering (the `\metrics` output).
  std::string ToString() const;
};

/// Nearest-rank percentile: the value at rank ceil(fraction * N) (1-based)
/// of the sorted samples — the smallest sample such that at least
/// `fraction` of all samples are <= it. Returns 0 on an empty set.
double NearestRankPercentile(std::vector<double> samples, double fraction);

/// Thread-safe per-query latency accumulator.
///
/// Min and mean are exact over all recorded samples; percentiles are
/// computed over a sliding window of the most recent `kWindow` samples
/// (a bounded-memory ring, overwritten oldest-first).
class LatencyRecorder {
 public:
  static constexpr size_t kWindow = 4096;

  void Record(double micros);

  struct Summary {
    uint64_t count = 0;
    double min_us = 0;
    double mean_us = 0;
    double p50_us = 0;
    double p99_us = 0;
  };
  Summary Summarize() const;

 private:
  mutable Mutex mu_{"service.latency"};
  std::vector<double> window_ CCDB_GUARDED_BY(mu_);
  uint64_t count_ CCDB_GUARDED_BY(mu_) = 0;
  double sum_ CCDB_GUARDED_BY(mu_) = 0;
  double min_ CCDB_GUARDED_BY(mu_) = 0;
};

}  // namespace ccdb::service

#endif  // CCDB_SERVICE_METRICS_H_
