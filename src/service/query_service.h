#ifndef CCDB_SERVICE_QUERY_SERVICE_H_
#define CCDB_SERVICE_QUERY_SERVICE_H_

/// \file query_service.h
/// The concurrent front door of CCDB.
///
/// The paper's Figure 1 places CQA as the middle layer of a *system*; this
/// is the layer above it: a `QueryService` that accepts §3.3 step-scripts
/// from many concurrent sessions and executes them on a fixed worker
/// thread pool with a bounded queue.
///
/// Threading model (lock order: session mutex -> catalog rw-lock; queue
/// and metrics locks are leaves, never held across execution):
///  - The *base catalog* (the `Database` the service wraps) is guarded by
///    a reader-writer lock. Every query holds it shared for its whole
///    execution, so base relations are immutable while any query runs;
///    `Create/Replace/DropRelation` take it exclusive and therefore
///    serialize against the fleet — writes wait for readers to drain.
///  - *Step results* never touch the base catalog: each session owns a
///    private step `Database`, and queries execute against an overlay view
///    (steps first, base second). Queries within one session serialize on
///    the session's mutex; different sessions run fully in parallel.
///  - The *result cache* keys on canonical script text plus the
///    (name, version) of every base relation the script reads, so a
///    replaced input can never satisfy a stale hit. Scripts that read
///    session-local steps are executed uncached (their inputs are not
///    versioned catalog state).

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>  // std::once_flag / std::call_once only
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "data/database.h"
#include "obs/governance.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"
#include "service/metrics.h"
#include "service/plan_cache.h"
#include "storage/pager.h"
#include "util/mutex.h"
#include "util/status.h"

namespace ccdb {
class DurableStore;
}

namespace ccdb::service {

using SessionId = uint64_t;

/// Construction-time knobs of a QueryService.
struct ServiceOptions {
  size_t num_workers = 4;       ///< worker threads (min 1)
  size_t max_queue_depth = 64;  ///< queued (not yet running) task bound
  size_t cache_capacity = 128;  ///< result-cache entries; 0 disables
  bool start_paused = false;    ///< workers wait for Resume() (tests)
  PageManager* disk = nullptr;  ///< optional: pages-read in metrics
  /// Optional durable catalog. When set, every base-catalog write is
  /// journaled through the store's WAL and acknowledged only after the
  /// commit record is on disk; on commit failure the in-memory catalog is
  /// rolled back, so the caller never observes an unlogged mutation.
  DurableStore* store = nullptr;
  /// Slow-query threshold in microseconds; 0 disables the slow-query log.
  /// A query whose end-to-end latency (queue wait included) reaches the
  /// threshold is counted in `queries.slow`, and — when a `trace_sink` is
  /// attached — its statement-level trace is emitted there as JSONL.
  double slow_query_us = 0;
  /// Optional sink receiving slow-query traces and every explicit Trace()
  /// result. Not owned; must outlive the service.
  obs::TraceSink* trace_sink = nullptr;
  /// Default resource governance for every query (deadline, tuple /
  /// constraint / memory budgets, partial-result policy). Per-query
  /// `QueryOptions` override individual fields. Zero fields = ungoverned.
  /// The deadline covers queue wait: it is armed at Submit time.
  obs::GovernanceLimits governance;
  /// Overload shedding: refuse a submission (kUnavailable + retry-after
  /// hint) when the estimated in-flight work — (queued + running + 1)
  /// tasks × recent p50 latency (1 ms prior while no query has finished
  /// yet) — exceeds this many microseconds. 0 disables cost-based
  /// shedding; a saturated queue always sheds.
  double shed_inflight_us = 0;
};

/// Per-query overrides of the service-level governance defaults, plus an
/// optional external cancellation token.
struct QueryOptions {
  std::optional<double> deadline_us;
  std::optional<uint64_t> max_tuples;
  std::optional<uint64_t> max_constraints;
  std::optional<uint64_t> max_memory_bytes;
  std::optional<bool> allow_partial;
  /// Fault injection for tests: cancel at the Nth governance check
  /// (see obs::GovernanceLimits::trip_at_check). Also forces
  /// check_stride = 1 so check indices are deterministic.
  uint64_t trip_at_check = 0;
  /// External cancellation token; the query also gets an internal one so
  /// Cancel(session, query_id) works without supplying this.
  std::shared_ptr<obs::CancelFlag> cancel;
};

/// A successfully executed script.
struct QueryResponse {
  std::string step;        ///< name of the final step
  Relation relation;       ///< the final step's relation
  bool cache_hit = false;  ///< served from the result cache
  bool truncated = false;  ///< partial result: a budget tripped under
                           ///< allow_partial (sound subset, never cached)
  double latency_us = 0;   ///< execution latency (queue wait included)
};

/// An accepted submission: the id to Cancel() by and the future that
/// resolves when a worker finishes (or cancels) the query.
struct Submission {
  uint64_t query_id = 0;
  std::future<Result<QueryResponse>> future;
};

/// The result of an explicit Trace() call — the EXPLAIN ANALYZE view.
struct TraceReport {
  QueryResponse response;  ///< the query result (never a cache hit)
  obs::TraceNode root;     ///< per-operator (or per-statement) span tree
  bool used_plan = false;  ///< true: compiled + optimized plan was traced;
                           ///< false: statement-level fallback spans
  std::string plan_text;   ///< optimized plan rendering (when used_plan)
};

/// A concurrent, cached, metered executor of CQA step-scripts.
///
/// All public methods are thread-safe. The wrapped base `Database` must
/// not be mutated behind the service's back while the service is live.
class QueryService {
 public:
  /// Serves queries over `base` (not owned; must outlive the service).
  explicit QueryService(Database* base, ServiceOptions options = {});

  /// Drains and joins (equivalent to Shutdown()).
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // --- Sessions ---

  /// Opens a session: a private step namespace + FIFO execution context.
  SessionId OpenSession();

  /// Closes a session; its step results are discarded once in-flight
  /// queries finish. Fails if the id is unknown.
  Status CloseSession(SessionId id);

  // --- Query execution ---

  /// Enqueues a script; the returned future resolves when a worker
  /// finishes it. Fails immediately with kNotFound for an unknown
  /// session, and with kUnavailable when the service is shutting down or
  /// admission control sheds the request (queue full, or estimated
  /// in-flight cost above ServiceOptions::shed_inflight_us) — shed
  /// statuses carry a `retry_after_ms()` backoff hint derived from the
  /// recent p50 latency. `opts` overrides the service's governance
  /// defaults for this query; its deadline is armed now, so queue wait
  /// counts against it.
  Result<Submission> Submit(SessionId id, std::string script,
                            QueryOptions opts = {});

  /// Submit + wait. Queries within one session are serialized, so a
  /// client that alternates Execute calls sees strict program order.
  Result<QueryResponse> Execute(SessionId id, const std::string& script,
                                QueryOptions opts = {});

  /// Cancels a query of `session`. A still-queued query fails its future
  /// with kCancelled immediately; a running query's cancellation flag is
  /// raised and it unwinds with kCancelled at its next governance
  /// check-point (OK here means "requested", not "already stopped").
  /// kNotFound if the id is unknown, finished, or owned by another
  /// session.
  Status Cancel(SessionId session, uint64_t query_id);

  /// Executes `script` with full tracing on the calling thread (the
  /// shell's `\trace`). Scripts in the algebra subset are compiled to one
  /// plan, optimized, and traced per-operator; scripts outside it fall
  /// back to per-statement spans. Bypasses the result cache; only the
  /// final step is registered in the session (intermediate steps of a
  /// compiled script are inlined into the plan). The trace is also
  /// emitted to `ServiceOptions::trace_sink` when one is attached.
  Result<TraceReport> Trace(SessionId id, const std::string& script);

  // --- Base-catalog writes (exclusive; wait for running queries) ---
  //
  // With a DurableStore attached, OK means the write is durable (its WAL
  // commit record is on disk); any failure means the catalog is exactly
  // as it was before the call.

  Status CreateRelation(const std::string& name, Relation relation);
  Status ReplaceRelation(const std::string& name, Relation relation);
  Status DropRelation(const std::string& name);

  /// Applies pending page images and truncates the WAL (the shell's
  /// `\checkpoint`). Fails with kUnavailable when no store is attached.
  Status Checkpoint();

  // --- Reads for front-ends (shell `show`, `list`, ...) ---

  /// Copies a relation, resolving session steps before base relations.
  Result<Relation> GetRelation(SessionId id, const std::string& name) const;

  /// Sorted names visible to a session (its steps + base relations).
  std::vector<std::string> VisibleNames(SessionId id) const;

  /// Copy of the base catalog (e.g. for `save`).
  Database CloneBase() const;

  // --- Lifecycle ---

  /// Releases workers constructed with `start_paused` (no-op otherwise).
  void Resume();

  /// Graceful shutdown: stop accepting, fail every still-queued task with
  /// kCancelled, let tasks already running finish, join the workers.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  /// Point-in-time metrics snapshot.
  ServiceMetrics Metrics() const;

 private:
  struct Session;
  struct Task;

  void WorkerLoop();

  /// Executes one script. When `trace` is non-null the script runs with
  /// statement-level spans recorded into it (used for the slow-query log;
  /// cache hits leave the trace empty).
  Result<QueryResponse> RunScript(Session* session, const std::string& script,
                                  obs::TraceNode* trace = nullptr);
  std::shared_ptr<Session> FindSession(SessionId id) const;

  /// Service defaults overlaid with the per-query overrides.
  obs::GovernanceLimits ResolveLimits(const QueryOptions& opts) const;

  /// Estimated microseconds of in-flight work if one more task were
  /// admitted: (queued + running + 1) x max(recent p50, 1 ms prior).
  double EstimateInflightUsLocked() const CCDB_REQUIRES(queue_mu_);

  /// Counts a finished governed query against the governance counters and
  /// emits its trace to the sink when it tripped. Returns nothing; safe to
  /// call for ungoverned queries (no-op on an OK, untripped result).
  void RecordGovernanceOutcome(const obs::ExecContext& ctx,
                               const Status& status, bool truncated);

  /// Adds a finished query's layer counters to the engine totals.
  void DrainCounters(const obs::LayerCounters& counters);

  /// Journals the base catalog through the attached store (no-op when
  /// none).
  Status CommitBaseLocked() CCDB_REQUIRES(catalog_mu_);

  Database* base_;
  ServiceOptions options_;
  /// Guards the base catalog: queries hold it shared for their whole
  /// execution, Create/Replace/Drop take it exclusive (`*base_` itself
  /// carries the guarded state; the pointer is fixed at construction).
  mutable SharedMutex catalog_mu_;
  ResultCache cache_;

  // Task queue. `running_` counts tasks popped but not yet finished (for
  // admission-control cost estimates); `running_cancels_` maps in-flight
  // query ids to their cancellation flags so Cancel() can reach them.
  mutable Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<std::unique_ptr<Task>> queue_ CCDB_GUARDED_BY(queue_mu_);
  bool stopping_ CCDB_GUARDED_BY(queue_mu_) = false;
  bool paused_ CCDB_GUARDED_BY(queue_mu_) = false;
  uint64_t queue_high_water_ CCDB_GUARDED_BY(queue_mu_) = 0;
  size_t running_ CCDB_GUARDED_BY(queue_mu_) = 0;
  std::map<uint64_t, std::pair<SessionId, std::shared_ptr<obs::CancelFlag>>>
      running_cancels_ CCDB_GUARDED_BY(queue_mu_);
  std::atomic<uint64_t> next_query_id_{1};
  std::vector<std::thread> workers_;
  std::once_flag shutdown_once_;

  // Sessions.
  mutable Mutex sessions_mu_ CCDB_ACQUIRED_BEFORE(queue_mu_);
  std::map<SessionId, std::shared_ptr<Session>> sessions_
      CCDB_GUARDED_BY(sessions_mu_);
  SessionId next_session_ CCDB_GUARDED_BY(sessions_mu_) = 1;

  // Metrics: the registry owns every counter/histogram; the named handles
  // below are resolved once in the constructor (hot path is lock-free).
  mutable obs::MetricsRegistry registry_;
  obs::Counter* submitted_;
  obs::Counter* rejected_;
  obs::Counter* completed_;
  obs::Counter* failed_;
  obs::Counter* slow_;
  obs::Counter* traced_;
  obs::Counter* conjunctions_;
  obs::Counter* fm_eliminations_;
  obs::Counter* redundancy_culls_;
  obs::Counter* index_node_visits_;
  obs::Counter* index_leaf_hits_;
  obs::Counter* pages_read_;
  obs::Counter* pool_hits_;
  obs::Counter* gov_deadline_hits_;
  obs::Counter* gov_budget_trips_;
  obs::Counter* gov_cancels_;
  obs::Counter* gov_sheds_;
  obs::Counter* gov_truncated_;
  obs::Histogram* latency_hist_;
  obs::Histogram* fm_hist_;
  obs::Histogram* tuples_out_hist_;
  LatencyRecorder latency_;
};

}  // namespace ccdb::service

#endif  // CCDB_SERVICE_QUERY_SERVICE_H_
