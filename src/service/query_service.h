#ifndef CCDB_SERVICE_QUERY_SERVICE_H_
#define CCDB_SERVICE_QUERY_SERVICE_H_

/// \file query_service.h
/// The concurrent front door of CCDB.
///
/// The paper's Figure 1 places CQA as the middle layer of a *system*; this
/// is the layer above it: a `QueryService` that accepts §3.3 step-scripts
/// from many concurrent sessions and executes them on a fixed worker
/// thread pool with a bounded queue.
///
/// Threading model (lock order: session mutex -> commit mutex -> store
/// mutex; the snapshot cell, queue, and metrics locks are leaves, never
/// held across execution):
///  - The *base catalog* is MVCC: an immutable `CatalogSnapshot` chain
///    (see data/snapshot.h). Every query pins the current snapshot at
///    Submit and executes against frozen state — readers never block
///    behind a committing writer, and a writer never waits for readers
///    to drain. Writers serialize on the commit mutex only against each
///    other: build a copy-on-write candidate, journal it through the
///    store's WAL, then publish with one pointer swap.
///  - *Transactions*: `Begin`/`Commit`/`Rollback` (also reachable as
///    `BEGIN`/`COMMIT`/`ROLLBACK` statements through Execute, locally or
///    over the wire). A transaction pins its snapshot at BEGIN, stages
///    catalog writes privately (queries inside the transaction read
///    their own staged writes), and commits everything as ONE WAL batch
///    carrying the transaction id — recovery and WAL-shipping replicas
///    apply it all-or-nothing. Conflict rule: first committer wins; a
///    commit that would overwrite a concurrently-committed name fails
///    with kUnavailable (retry hint attached) and the transaction is
///    rolled back.
///  - *Step results* never touch the base catalog: each session owns a
///    private step `Database`, and queries execute against an overlay view
///    (steps first, snapshot second). Queries within one session serialize
///    on the session's mutex; different sessions run fully in parallel.
///  - The *result cache* keys on canonical script text plus the
///    (name, version) of every base relation the script reads — with both
///    the versions and the executed-against state taken from the SAME
///    pinned snapshot, so a write committing mid-execution can never
///    cache a stale result under new versions (the pre-MVCC TOCTOU).
///    Scripts that read session-local steps, and any query inside a
///    transaction, are executed uncached.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>  // std::once_flag / std::call_once only
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "data/database.h"
#include "data/snapshot.h"
#include "obs/event_log.h"
#include "obs/governance.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"
#include "service/metrics.h"
#include "service/plan_cache.h"
#include "storage/pager.h"
#include "util/mutex.h"
#include "util/status.h"

namespace ccdb {
class DurableStore;
}

namespace ccdb::service {

using SessionId = uint64_t;

/// Construction-time knobs of a QueryService.
struct ServiceOptions {
  size_t num_workers = 4;       ///< worker threads (min 1)
  size_t max_queue_depth = 64;  ///< queued (not yet running) task bound
  size_t cache_capacity = 128;  ///< result-cache entries; 0 disables
  bool start_paused = false;    ///< workers wait for Resume() (tests)
  PageManager* disk = nullptr;  ///< optional: pages-read in metrics
  /// Optional durable catalog. When set, every base-catalog write is
  /// journaled through the store's WAL and acknowledged only after the
  /// commit record is on disk; on commit failure the in-memory catalog is
  /// rolled back, so the caller never observes an unlogged mutation.
  DurableStore* store = nullptr;
  /// Slow-query threshold in microseconds; 0 disables the slow-query log.
  /// A query whose end-to-end latency (queue wait included) reaches the
  /// threshold is counted in `queries.slow`, and — when a `trace_sink` is
  /// attached — its statement-level trace is emitted there as JSONL.
  double slow_query_us = 0;
  /// Optional sink receiving slow-query traces and every explicit Trace()
  /// result. Not owned; must outlive the service.
  obs::TraceSink* trace_sink = nullptr;
  /// Optional structured event log receiving admission sheds, transaction
  /// conflicts, and checkpoints. Not owned; must outlive the service.
  obs::EventLog* event_log = nullptr;
  /// Default resource governance for every query (deadline, tuple /
  /// constraint / memory budgets, partial-result policy). Per-query
  /// `QueryOptions` override individual fields. Zero fields = ungoverned.
  /// The deadline covers queue wait: it is armed at Submit time.
  obs::GovernanceLimits governance;
  /// Overload shedding: refuse a submission (kUnavailable + retry-after
  /// hint) when the estimated in-flight work — (queued + running + 1)
  /// tasks × recent p50 latency (1 ms prior while no query has finished
  /// yet) — exceeds this many microseconds. 0 disables cost-based
  /// shedding; a saturated queue always sheds.
  double shed_inflight_us = 0;
  /// Test-only: invoked on the worker at the start of every script
  /// execution (after transaction-control dispatch). May throw — this is
  /// how tests exercise the worker's exception barrier now that execution
  /// reads immutable snapshots instead of a caller-subclassable Database.
  std::function<void(const std::string& script)> execution_hook;
  /// Test-only: invoked on the worker between a script's execution and
  /// its result-cache insert — the window the pre-MVCC result-cache
  /// TOCTOU lived in. Interleaving tests commit writes here and assert
  /// the cached entry can never be served under post-commit versions.
  std::function<void()> post_execute_hook;
};

/// Per-query overrides of the service-level governance defaults, plus an
/// optional external cancellation token.
struct QueryOptions {
  std::optional<double> deadline_us;
  std::optional<uint64_t> max_tuples;
  std::optional<uint64_t> max_constraints;
  std::optional<uint64_t> max_memory_bytes;
  std::optional<bool> allow_partial;
  /// Fault injection for tests: cancel at the Nth governance check
  /// (see obs::GovernanceLimits::trip_at_check). Also forces
  /// check_stride = 1 so check indices are deterministic.
  uint64_t trip_at_check = 0;
  /// External cancellation token; the query also gets an internal one so
  /// Cancel(session, query_id) works without supplying this.
  std::shared_ptr<obs::CancelFlag> cancel;
  /// Client-assigned trace id (0 = unassigned). Stamped onto slow-query
  /// log lines and event-log entries for this query, and carried across
  /// the wire by the network protocol, so one id follows a request
  /// through every process it touches.
  uint64_t trace_id = 0;
  /// Client-minted idempotency key (0 = none). A COMMIT carrying a
  /// request id has its outcome registered in a bounded dedup table, so
  /// a retry of the same COMMIT — after a lost acknowledgement — returns
  /// the original outcome instead of re-applying or reporting a spurious
  /// "no transaction in progress". The id is also journaled in the WAL
  /// commit record, so a promoted replica can seed its own table from
  /// the batches it applied.
  uint64_t request_id = 0;
};

/// A successfully executed script.
struct QueryResponse {
  std::string step;        ///< name of the final step
  Relation relation;       ///< the final step's relation
  bool cache_hit = false;  ///< served from the result cache
  bool truncated = false;  ///< partial result: a budget tripped under
                           ///< allow_partial (sound subset, never cached)
  double latency_us = 0;   ///< execution latency (queue wait included)
};

/// An accepted submission: the id to Cancel() by and the future that
/// resolves when a worker finishes (or cancels) the query.
struct Submission {
  uint64_t query_id = 0;
  std::future<Result<QueryResponse>> future;
};

/// The result of an explicit Trace() call — the EXPLAIN ANALYZE view.
struct TraceReport {
  QueryResponse response;  ///< the query result (never a cache hit)
  obs::TraceNode root;     ///< per-operator (or per-statement) span tree
  bool used_plan = false;  ///< true: compiled + optimized plan was traced;
                           ///< false: statement-level fallback spans
  std::string plan_text;   ///< optimized plan rendering (when used_plan)
  uint64_t trace_id = 0;   ///< the caller's trace id, echoed back
};

/// A concurrent, cached, metered, transactional executor of CQA
/// step-scripts.
///
/// All public methods are thread-safe.
class QueryService {
 public:
  /// Serves queries over a catalog seeded with a deep copy of `*base`
  /// (pass an empty `Database` — or null — for a fresh catalog). The
  /// service owns its catalog from here on: later mutations of `*base`
  /// are not observed, and service writes do not touch `*base` (read the
  /// current state back with `CloneBase()`).
  explicit QueryService(Database* base, ServiceOptions options = {});

  /// Drains and joins (equivalent to Shutdown()).
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // --- Sessions ---

  /// Opens a session: a private step namespace + FIFO execution context.
  SessionId OpenSession();

  /// Closes a session; its step results are discarded once in-flight
  /// queries finish. Fails if the id is unknown.
  Status CloseSession(SessionId id);

  // --- Query execution ---

  /// Enqueues a script; the returned future resolves when a worker
  /// finishes it. Fails immediately with kNotFound for an unknown
  /// session, and with kUnavailable when the service is shutting down or
  /// admission control sheds the request (queue full, or estimated
  /// in-flight cost above ServiceOptions::shed_inflight_us) — shed
  /// statuses carry a `retry_after_ms()` backoff hint derived from the
  /// recent p50 latency. `opts` overrides the service's governance
  /// defaults for this query; its deadline is armed now, so queue wait
  /// counts against it.
  Result<Submission> Submit(SessionId id, std::string script,
                            QueryOptions opts = {});

  /// Submit + wait. Queries within one session are serialized, so a
  /// client that alternates Execute calls sees strict program order.
  Result<QueryResponse> Execute(SessionId id, const std::string& script,
                                QueryOptions opts = {});

  /// Cancels a query of `session`. A still-queued query fails its future
  /// with kCancelled immediately; a running query's cancellation flag is
  /// raised and it unwinds with kCancelled at its next governance
  /// check-point (OK here means "requested", not "already stopped").
  /// kNotFound if the id is unknown, finished, or owned by another
  /// session.
  Status Cancel(SessionId session, uint64_t query_id);

  /// Executes `script` with full tracing on the calling thread (the
  /// shell's `\trace`). Scripts in the algebra subset are compiled to one
  /// plan, optimized, and traced per-operator; scripts outside it fall
  /// back to per-statement spans. Bypasses the result cache; only the
  /// final step is registered in the session (intermediate steps of a
  /// compiled script are inlined into the plan). The trace is also
  /// emitted to `ServiceOptions::trace_sink` when one is attached,
  /// stamped with `trace_id` (a client-assigned correlation id; 0 =
  /// unassigned — the wire server passes the id from the request frame).
  Result<TraceReport> Trace(SessionId id, const std::string& script,
                            uint64_t trace_id = 0);

  // --- Transactions ---
  //
  // A session holds at most one open transaction (no nesting). BEGIN pins
  // the current catalog snapshot; session-scoped writes then stage
  // privately (queries in the session read their own staged writes on top
  // of the pinned snapshot, uncached); COMMIT publishes everything as one
  // WAL batch carrying the transaction id. The same controls are
  // reachable as `BEGIN` / `COMMIT` / `ROLLBACK` statements through
  // Submit/Execute — which is how remote clients get them.

  /// Opens a transaction. kInvalidArgument if one is already open.
  Status Begin(SessionId id);

  /// Commits the open transaction: first-committer-wins conflict check,
  /// one durable WAL batch (when a store is attached), one atomic
  /// snapshot publication. ANY failure — conflict (kUnavailable with a
  /// retry hint) or commit error — rolls the transaction back: staged
  /// writes are discarded and per-name versions are exactly as if the
  /// transaction never happened. kInvalidArgument if none is open.
  Status Commit(SessionId id);

  /// Discards the open transaction's staged writes. kInvalidArgument if
  /// none is open.
  Status Rollback(SessionId id);

  /// Point-in-time view of a session's transaction (the shell's `\txn`).
  struct TxnInfo {
    bool active = false;
    uint64_t txn_id = 0;          ///< 0 when inactive
    uint64_t snapshot_epoch = 0;  ///< epoch pinned at BEGIN
    std::vector<std::string> staged_writes;  ///< names staged, sorted
  };
  Result<TxnInfo> TransactionInfo(SessionId id) const;

  // --- Base-catalog writes ---
  //
  // Session-scoped writes stage into the session's open transaction when
  // one is active, and autocommit otherwise. The session-less overloads
  // always autocommit (an internally serialized single-write commit).
  // For an autocommit write with a DurableStore attached, OK means the
  // write is durable (its WAL commit record is on disk); any failure
  // means the published catalog — per-name version counters included —
  // is exactly as it was before the call (the failed candidate snapshot
  // is simply discarded, never published).

  Status CreateRelation(SessionId id, const std::string& name,
                        Relation relation);
  Status ReplaceRelation(SessionId id, const std::string& name,
                         Relation relation);
  Status DropRelation(SessionId id, const std::string& name);

  Status CreateRelation(const std::string& name, Relation relation);
  Status ReplaceRelation(const std::string& name, Relation relation);
  Status DropRelation(const std::string& name);

  /// Applies pending page images and truncates the WAL (the shell's
  /// `\checkpoint`). Fails with kUnavailable when no store is attached.
  Status Checkpoint();

  /// Attaches (or replaces) the durable store every later commit
  /// journals through. This is the promotion hook: a replica's service
  /// runs storeless (reads only) until `Replica::Promote()` reopens the
  /// disk writable and hands the new store here. Serializes against
  /// in-flight commits on the commit mutex.
  void AttachStore(DurableStore* store) CCDB_EXCLUDES(commit_mu_);

  /// Records `request_id` (0 = ignored) as durably committed with an OK
  /// outcome in the COMMIT dedup table. Promotion seeds the new leader's
  /// table from the request ids journaled in every WAL batch it applied,
  /// so a client whose COMMIT was acked by the old leader — or applied
  /// but unacked — retries against the new leader and still gets
  /// exactly-once semantics.
  void RecordCommittedRequest(uint64_t request_id);

  // --- Reads for front-ends (shell `show`, `list`, ...) ---

  /// Copies a relation, resolving session steps before base relations.
  Result<Relation> GetRelation(SessionId id, const std::string& name) const;

  /// Sorted names visible to a session (its steps + base relations; an
  /// open transaction's staged writes included).
  std::vector<std::string> VisibleNames(SessionId id) const;

  /// Deep copy of the current catalog snapshot (e.g. for `save`). Version
  /// counters restart in the copy — it is a new lineage.
  Database CloneBase() const;

  /// Epoch of the currently published catalog snapshot (starts at 1;
  /// bumped by every commit).
  uint64_t CatalogEpoch() const;

  // --- Lifecycle ---

  /// Releases workers constructed with `start_paused` (no-op otherwise).
  void Resume();

  /// Graceful shutdown: stop accepting, fail every still-queued task with
  /// kCancelled, let tasks already running finish, join the workers.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  /// Point-in-time metrics snapshot.
  ServiceMetrics Metrics() const;

  /// Raw registry snapshot for exposition: everything `Metrics()` reads
  /// plus the durability/health gauges (`wal.lsn`, `txn.conflict_rate`)
  /// and the process-identity gauges. The network server merges this
  /// with its own registry to build the scrape surfaces.
  obs::MetricsRegistry::Snapshot MetricsSnapshot() const;

 private:
  struct Session;
  struct Task;

  void WorkerLoop();

  /// Executes one script against `pinned` (the snapshot pinned at Submit;
  /// a session with an open transaction reads its BEGIN-time snapshot
  /// plus staged writes instead). Transaction-control statements are
  /// dispatched here, before parsing. When `trace` is non-null the script
  /// runs with statement-level spans recorded into it (used for the
  /// slow-query log; cache hits leave the trace empty).
  Result<QueryResponse> RunScript(Session* session, const std::string& script,
                                  const SnapshotPtr& pinned,
                                  uint64_t request_id = 0,
                                  obs::TraceNode* trace = nullptr);
  std::shared_ptr<Session> FindSession(SessionId id) const;

  // Transaction control on a resolved session (the public SessionId
  // overloads and the worker's statement dispatch both land here).
  Status BeginTxn(Session* session);
  Status CommitTxn(Session* session, uint64_t request_id = 0);
  Status RollbackTxn(Session* session);

  /// CommitTxn minus the dedup wrapper: the actual conflict check,
  /// journaling, and publication.
  Status CommitTxnImpl(Session* session, uint64_t request_id);

  /// The one committed-write path: applies `edit` — conflict-checked
  /// staged transaction writes or a single autocommit mutation — as one
  /// WAL batch and one atomic snapshot publication. On any failure the
  /// candidate is discarded unpublished (version counters never move).
  Status CommitEditLocked(CatalogEdit&& edit, uint64_t txn_id,
                          uint64_t request_id = 0)
      CCDB_REQUIRES(commit_mu_);

  /// Dedup-table internals (leaf mutex; never held across commits).
  void RecordRequestOutcome(uint64_t request_id, const Status& outcome)
      CCDB_EXCLUDES(dedup_mu_);
  std::optional<Status> LookupRequestOutcome(uint64_t request_id) const
      CCDB_EXCLUDES(dedup_mu_);

  /// A session-scoped write: stages into the open transaction, or
  /// autocommits when none is open.
  enum class WriteKind { kCreate, kReplace, kDrop };
  Status SessionWrite(SessionId id, WriteKind kind, const std::string& name,
                      Relation relation);
  Status AutocommitWrite(WriteKind kind, const std::string& name,
                         Relation relation);

  /// Service defaults overlaid with the per-query overrides.
  obs::GovernanceLimits ResolveLimits(const QueryOptions& opts) const;

  /// Estimated microseconds of in-flight work if one more task were
  /// admitted: (queued + running + 1) x max(recent p50, 1 ms prior).
  double EstimateInflightUsLocked() const CCDB_REQUIRES(queue_mu_);

  /// Counts a finished governed query against the governance counters and
  /// emits its trace to the sink when it tripped. Returns nothing; safe to
  /// call for ungoverned queries (no-op on an OK, untripped result).
  void RecordGovernanceOutcome(const obs::ExecContext& ctx,
                               const Status& status, bool truncated);

  /// Adds a finished query's layer counters to the engine totals.
  void DrainCounters(const obs::LayerCounters& counters);

  ServiceOptions options_;
  /// The MVCC catalog cell: readers pin snapshots lock-free (modulo the
  /// cell's short internal mutex), committers publish through it.
  MvccCatalog catalog_;
  /// Serializes committers (autocommit writes, transaction commits,
  /// checkpoints) against each other only — never against readers.
  /// Acquired after a session mutex, before the store's internal mutex.
  /// (protocol-lock: guards the commit *ordering* protocol, not fields —
  /// WAL durability precedes snapshot publication.)
  mutable Mutex commit_mu_ CCDB_LOCK_ORDER("storage.store", "catalog.cell")
      {"service.commit"};
  std::atomic<uint64_t> next_txn_id_{1};
  /// The durable store commits journal through. Atomic because
  /// AttachStore (promotion) may swap it while metric snapshots read it;
  /// commit-path readers hold commit_mu_, so a commit never straddles a
  /// swap.
  std::atomic<DurableStore*> store_;
  ResultCache cache_;

  /// COMMIT idempotency: the outcomes of the most recent request-id
  /// carrying commits, FIFO-bounded at kDedupCapacity so a chatty client
  /// cannot grow it without bound. Eviction is oldest-first — a retry
  /// arriving after 4096 newer decided commits is outside the window and
  /// sees normal (non-dedup) semantics.
  static constexpr size_t kDedupCapacity = 4096;
  mutable Mutex dedup_mu_{"service.dedup"};
  std::map<uint64_t, Status> dedup_results_ CCDB_GUARDED_BY(dedup_mu_);
  std::deque<uint64_t> dedup_fifo_ CCDB_GUARDED_BY(dedup_mu_);

  // Task queue. `running_` counts tasks popped but not yet finished (for
  // admission-control cost estimates); `running_cancels_` maps in-flight
  // query ids to their cancellation flags so Cancel() can reach them.
  mutable Mutex queue_mu_ CCDB_LOCK_ORDER("service.latency")
      {"service.queue"};
  CondVar queue_cv_;
  std::deque<std::unique_ptr<Task>> queue_ CCDB_GUARDED_BY(queue_mu_);
  bool stopping_ CCDB_GUARDED_BY(queue_mu_) = false;
  bool paused_ CCDB_GUARDED_BY(queue_mu_) = false;
  uint64_t queue_high_water_ CCDB_GUARDED_BY(queue_mu_) = 0;
  size_t running_ CCDB_GUARDED_BY(queue_mu_) = 0;
  std::map<uint64_t, std::pair<SessionId, std::shared_ptr<obs::CancelFlag>>>
      running_cancels_ CCDB_GUARDED_BY(queue_mu_);
  std::atomic<uint64_t> next_query_id_{1};
  std::vector<std::thread> workers_;
  std::once_flag shutdown_once_;

  // Sessions.
  mutable Mutex sessions_mu_ CCDB_ACQUIRED_BEFORE(queue_mu_)
      {"service.sessions"};
  std::map<SessionId, std::shared_ptr<Session>> sessions_
      CCDB_GUARDED_BY(sessions_mu_);
  SessionId next_session_ CCDB_GUARDED_BY(sessions_mu_) = 1;

  // Metrics: the registry owns every counter/histogram; the named handles
  // below are resolved once in the constructor (hot path is lock-free).
  mutable obs::MetricsRegistry registry_;
  obs::Counter* submitted_;
  obs::Counter* rejected_;
  obs::Counter* completed_;
  obs::Counter* failed_;
  obs::Counter* slow_;
  obs::Counter* traced_;
  obs::Counter* conjunctions_;
  obs::Counter* fm_eliminations_;
  obs::Counter* redundancy_culls_;
  obs::Counter* index_node_visits_;
  obs::Counter* index_leaf_hits_;
  obs::Counter* pages_read_;
  obs::Counter* pool_hits_;
  obs::Counter* txn_begins_;
  obs::Counter* txn_commits_;
  obs::Counter* txn_rollbacks_;
  obs::Counter* txn_conflicts_;
  obs::Counter* txn_dedup_hits_;
  obs::Counter* txn_aborts_on_disconnect_;
  obs::Counter* gov_deadline_hits_;
  obs::Counter* gov_budget_trips_;
  obs::Counter* gov_cancels_;
  obs::Counter* gov_sheds_;
  obs::Counter* gov_truncated_;
  obs::Histogram* latency_hist_;
  obs::Histogram* fm_hist_;
  obs::Histogram* tuples_out_hist_;
  LatencyRecorder latency_;
};

}  // namespace ccdb::service

#endif  // CCDB_SERVICE_QUERY_SERVICE_H_
