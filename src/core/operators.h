#ifndef CCDB_CORE_OPERATORS_H_
#define CCDB_CORE_OPERATORS_H_

/// \file operators.h
/// The Constraint Query Algebra (CQA) operators.
///
/// §2.4 of the paper defines CQA as the relational-algebra operator set —
/// project, select, natural-join, union, rename, difference — reinterpreted
/// over constraint relations, with cross-product and intersection as
/// special cases of natural-join. Each operator here is *closed* (§2.5):
/// the output is again a heterogeneous relation over rational linear
/// constraints, and its point-set semantics equal the corresponding
/// relational-algebra operation on the (possibly infinite) input point
/// sets. Tests verify this against `Relation::ContainsPoint` sampling.
///
/// Heterogeneous (C/R) semantics follow §3: selections and joins on
/// relational attributes are narrow (null matches nothing); constraint
/// attributes are broad (unconstrained means every value).

#include "core/predicate.h"
#include "data/relation.h"

namespace ccdb::cqa {

/// ς_pred(R): tuples whose semantics intersect `pred`, with the linear
/// atoms conjoined into the surviving tuples' constraint stores.
Result<Relation> Select(const Relation& input, const Predicate& pred);

/// π_X(R): projection onto attributes `names` (in the given order).
/// Dropped constraint attributes are existentially eliminated
/// (Fourier–Motzkin); dropped relational attributes are removed.
Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& names);

/// R1 ⋈ R2: natural join. Shared relational attributes must hold equal
/// non-null values; shared constraint attributes conjoin their stores
/// (kept only when satisfiable).
Result<Relation> NaturalJoin(const Relation& lhs, const Relation& rhs);

/// R1 × R2: cross product — natural join of relations with disjoint
/// attribute sets (provided for convenience; checked).
Result<Relation> CrossProduct(const Relation& lhs, const Relation& rhs);

/// R1 ∩ R2: intersection — natural join of same-schema relations.
Result<Relation> Intersect(const Relation& lhs, const Relation& rhs);

/// R1 ∪ R2: union of same-schema relations (deduplicated).
Result<Relation> Union(const Relation& lhs, const Relation& rhs);

/// ρ_{B|A}(R): renames attribute `from` to `to` in schema and tuples.
Result<Relation> Rename(const Relation& input, const std::string& from,
                        const std::string& to);

/// R1 − R2: difference of same-schema relations. Each R1 tuple is split
/// against the negation of every matching R2 tuple's store (the DNF
/// complement construction); unsatisfiable pieces are dropped.
Result<Relation> Difference(const Relation& lhs, const Relation& rhs);

}  // namespace ccdb::cqa

#endif  // CCDB_CORE_OPERATORS_H_
