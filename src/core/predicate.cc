#include "core/predicate.h"

namespace ccdb {

std::string StringAtom::ToString() const {
  std::string op = negated ? " != " : " = ";
  if (kind == Kind::kAttrEqualsLiteral) {
    return attribute + op + "\"" + literal + "\"";
  }
  return attribute + op + attribute2;
}

Predicate Predicate::And(Predicate a, const Predicate& b) {
  a.linear.insert(a.linear.end(), b.linear.begin(), b.linear.end());
  a.strings.insert(a.strings.end(), b.strings.begin(), b.strings.end());
  return a;
}

std::string Predicate::ToString() const {
  std::string out;
  for (const Constraint& c : linear) {
    if (!out.empty()) out += ", ";
    out += c.ToPrettyString();
  }
  for (const StringAtom& s : strings) {
    if (!out.empty()) out += ", ";
    out += s.ToString();
  }
  return out.empty() ? "true" : out;
}

}  // namespace ccdb
