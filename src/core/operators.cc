#include "core/operators.h"

#include <set>

#include "constraint/fourier_motzkin.h"
#include "obs/governance.h"
#include "obs/trace.h"

// Governance check-points: every per-tuple loop below polls
// obs::CheckGovernance() (deadline / cancellation / hard budgets unwind
// with a typed status; any constraint math the current iteration computed
// past the trip is discarded with the loop), and breaks out early under
// budget truncation so a partial result is a sound prefix subset.

namespace ccdb::cqa {

namespace {

/// Validates that a predicate is well-typed against a schema.
Status ValidatePredicate(const Schema& schema, const Predicate& pred) {
  for (const StringAtom& atom : pred.strings) {
    const Attribute* attr = schema.Find(atom.attribute);
    if (attr == nullptr) {
      return Status::NotFound("selection on unknown attribute '" +
                              atom.attribute + "'");
    }
    if (attr->domain != AttributeDomain::kString ||
        attr->kind != AttributeKind::kRelational) {
      return Status::InvalidArgument("string atom on non-string attribute '" +
                                     atom.attribute + "'");
    }
    if (atom.kind == StringAtom::Kind::kAttrEqualsAttr) {
      const Attribute* attr2 = schema.Find(atom.attribute2);
      if (attr2 == nullptr || attr2->domain != AttributeDomain::kString ||
          attr2->kind != AttributeKind::kRelational) {
        return Status::InvalidArgument(
            "string atom on non-string attribute '" + atom.attribute2 + "'");
      }
    }
  }
  for (const Constraint& c : pred.linear) {
    for (const std::string& var : c.Variables()) {
      const Attribute* attr = schema.Find(var);
      if (attr == nullptr) {
        return Status::NotFound("selection on unknown attribute '" + var +
                                "'");
      }
      if (attr->domain != AttributeDomain::kRational) {
        return Status::InvalidArgument(
            "arithmetic constraint on string attribute '" + var + "'");
      }
    }
  }
  return Status::OK();
}

/// Narrow evaluation of one string atom against a tuple.
bool StringAtomHolds(const StringAtom& atom, const Tuple& tuple) {
  const Value& lhs = tuple.GetValue(atom.attribute);
  bool equal;
  if (atom.kind == StringAtom::Kind::kAttrEqualsLiteral) {
    equal = lhs.EqualsForQuery(Value::String(atom.literal));
  } else {
    equal = lhs.EqualsForQuery(tuple.GetValue(atom.attribute2));
  }
  if (atom.negated) {
    // Narrow semantics for != as well: null is not unequal to anything —
    // it simply fails the atom (SQL three-valued logic collapsed to false).
    if (lhs.IsNull()) return false;
    if (atom.kind == StringAtom::Kind::kAttrEqualsAttr &&
        tuple.GetValue(atom.attribute2).IsNull()) {
      return false;
    }
    return !equal;
  }
  return equal;
}

}  // namespace

Result<Relation> Select(const Relation& input, const Predicate& pred) {
  CCDB_RETURN_IF_ERROR(ValidatePredicate(input.schema(), pred));
  Relation out(input.schema());
  for (const Tuple& tuple : input.tuples()) {
    CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
    if (obs::GovernanceTruncating()) break;
    bool keep = true;
    for (const StringAtom& atom : pred.strings) {
      if (!StringAtomHolds(atom, tuple)) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;

    Conjunction store = tuple.constraints();
    obs::NoteConjunction();
    for (const Constraint& c : pred.linear) {
      // Substitute values of relational rational attributes (narrow: a
      // mentioned-but-null attribute fails the tuple).
      Constraint grounded = c;
      for (const std::string& var : c.Variables()) {
        const Attribute* attr = input.schema().Find(var);
        if (attr->kind != AttributeKind::kRelational) continue;
        const Value& value = tuple.GetValue(var);
        if (value.IsNull()) {
          keep = false;
          break;
        }
        grounded = grounded.Substitute(
            var, LinearExpr::Constant(value.AsNumber()));
      }
      if (!keep) break;
      store.Add(std::move(grounded));
      if (store.IsKnownFalse()) {
        keep = false;
        break;
      }
    }
    if (!keep || !fm::IsSatisfiable(store)) continue;
    Tuple result = tuple;
    result.SetConstraints(std::move(store));
    CCDB_RETURN_IF_ERROR(out.Insert(std::move(result)));
  }
  return out;
}

Result<Relation> Project(const Relation& input,
                         const std::vector<std::string>& names) {
  CCDB_ASSIGN_OR_RETURN(Schema schema, input.schema().Project(names));
  std::set<std::string> kept_constraint_attrs;
  std::set<std::string> kept(names.begin(), names.end());
  for (const Attribute& attr : schema.attributes()) {
    if (attr.kind == AttributeKind::kConstraint) {
      kept_constraint_attrs.insert(attr.name);
    }
  }
  Relation out(schema);
  for (const Tuple& tuple : input.tuples()) {
    CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
    if (obs::GovernanceTruncating()) break;
    Tuple projected;
    for (const auto& [name, value] : tuple.values()) {
      if (kept.count(name)) projected.SetValue(name, value);
    }
    Conjunction store = fm::Project(tuple.constraints(),
                                    kept_constraint_attrs);
    obs::NoteConjunction();
    if (store.IsKnownFalse()) continue;  // tuple was unsatisfiable
    projected.SetConstraints(std::move(store));
    CCDB_RETURN_IF_ERROR(out.Insert(std::move(projected)));
  }
  out.Deduplicate();
  return out;
}

Result<Relation> NaturalJoin(const Relation& lhs, const Relation& rhs) {
  CCDB_ASSIGN_OR_RETURN(Schema schema,
                        lhs.schema().NaturalJoin(rhs.schema()));
  // Shared relational attributes must match with non-null values.
  std::vector<std::string> shared_relational;
  for (const Attribute& attr : lhs.schema().attributes()) {
    if (rhs.schema().Has(attr.name) &&
        attr.kind == AttributeKind::kRelational) {
      shared_relational.push_back(attr.name);
    }
  }
  Relation out(schema);
  for (const Tuple& left : lhs.tuples()) {
    if (obs::GovernanceTruncating()) break;
    for (const Tuple& right : rhs.tuples()) {
      CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
      if (obs::GovernanceTruncating()) break;
      bool match = true;
      for (const std::string& attr : shared_relational) {
        if (!left.GetValue(attr).EqualsForQuery(right.GetValue(attr))) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      Conjunction store =
          Conjunction::And(left.constraints(), right.constraints());
      obs::NoteConjunction();
      if (store.IsKnownFalse() || !fm::IsSatisfiable(store)) continue;
      Tuple joined;
      for (const auto& [name, value] : left.values()) {
        joined.SetValue(name, value);
      }
      for (const auto& [name, value] : right.values()) {
        joined.SetValue(name, value);
      }
      joined.SetConstraints(std::move(store));
      CCDB_RETURN_IF_ERROR(out.Insert(std::move(joined)));
    }
  }
  return out;
}

Result<Relation> CrossProduct(const Relation& lhs, const Relation& rhs) {
  for (const Attribute& attr : lhs.schema().attributes()) {
    if (rhs.schema().Has(attr.name)) {
      return Status::InvalidArgument(
          "cross product requires disjoint schemas; shared attribute '" +
          attr.name + "' (use NaturalJoin or Rename)");
    }
  }
  return NaturalJoin(lhs, rhs);
}

Result<Relation> Intersect(const Relation& lhs, const Relation& rhs) {
  if (lhs.schema() != rhs.schema()) {
    return Status::InvalidArgument("intersection requires identical schemas");
  }
  return NaturalJoin(lhs, rhs);
}

Result<Relation> Union(const Relation& lhs, const Relation& rhs) {
  if (lhs.schema() != rhs.schema()) {
    return Status::InvalidArgument("union requires identical schemas: " +
                                   lhs.schema().ToString() + " vs " +
                                   rhs.schema().ToString());
  }
  Relation out(lhs.schema());
  CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
  CCDB_RETURN_IF_ERROR(out.InsertAll(lhs));
  CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
  CCDB_RETURN_IF_ERROR(out.InsertAll(rhs));
  out.Deduplicate();
  return out;
}

Result<Relation> Rename(const Relation& input, const std::string& from,
                        const std::string& to) {
  CCDB_ASSIGN_OR_RETURN(Schema schema, input.schema().Rename(from, to));
  const bool is_relational =
      input.schema().Find(from)->kind == AttributeKind::kRelational;
  Relation out(schema);
  for (const Tuple& tuple : input.tuples()) {
    CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
    if (obs::GovernanceTruncating()) break;
    Tuple renamed = tuple;
    if (is_relational) {
      Value value = renamed.GetValue(from);
      renamed.SetValue(from, Value::Null());
      renamed.SetValue(to, std::move(value));
    } else {
      renamed.SetConstraints(tuple.constraints().RenameVariable(from, to));
    }
    CCDB_RETURN_IF_ERROR(out.Insert(std::move(renamed)));
  }
  return out;
}

Result<Relation> Difference(const Relation& lhs, const Relation& rhs) {
  if (lhs.schema() != rhs.schema()) {
    return Status::InvalidArgument("difference requires identical schemas: " +
                                   lhs.schema().ToString() + " vs " +
                                   rhs.schema().ToString());
  }
  std::vector<std::string> relational_attrs;
  for (const Attribute& attr : lhs.schema().attributes()) {
    if (attr.kind == AttributeKind::kRelational) {
      relational_attrs.push_back(attr.name);
    }
  }
  Relation out(lhs.schema());
  for (const Tuple& left : lhs.tuples()) {
    CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
    if (obs::GovernanceTruncating()) break;
    // Pieces of `left`'s constraint store not yet covered by rhs tuples.
    std::vector<Conjunction> pieces{left.constraints()};
    for (const Tuple& right : rhs.tuples()) {
      CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
      // Only rhs tuples whose relational part matches can subtract.
      bool matches = true;
      for (const std::string& attr : relational_attrs) {
        if (!left.GetValue(attr).EqualsForQuery(right.GetValue(attr))) {
          matches = false;
          break;
        }
      }
      if (!matches) continue;
      // Subtract: piece ∧ ¬(c1 ∧ ... ∧ cn), as the disjoint expansion
      //   (piece ∧ ¬c1) ∨ (piece ∧ c1 ∧ ¬c2) ∨ ...
      std::vector<Conjunction> next;
      for (const Conjunction& piece : pieces) {
        Conjunction accumulated = piece;  // piece ∧ c1 ∧ ... ∧ c_{i-1}
        for (const Constraint& c : right.constraints().constraints()) {
          for (const Constraint& negated : c.Negate()) {
            Conjunction candidate = accumulated;
            candidate.Add(negated);
            obs::NoteConjunction();
            if (!candidate.IsKnownFalse() && fm::IsSatisfiable(candidate)) {
              next.push_back(std::move(candidate));
            }
          }
          accumulated.Add(c);
          if (accumulated.IsKnownFalse()) break;
        }
        // An empty rhs store is `true`: it swallows the piece entirely
        // (no disjuncts were produced, and the loop above adds none).
      }
      pieces = std::move(next);
      if (pieces.empty()) break;
    }
    for (Conjunction& piece : pieces) {
      Tuple survivor;
      for (const auto& [name, value] : left.values()) {
        survivor.SetValue(name, value);
      }
      survivor.SetConstraints(fm::RemoveRedundant(piece));
      CCDB_RETURN_IF_ERROR(out.Insert(std::move(survivor)));
    }
  }
  out.Deduplicate();
  return out;
}

}  // namespace ccdb::cqa
