#ifndef CCDB_CORE_ACCESS_H_
#define CCDB_CORE_ACCESS_H_

/// \file access.h
/// Stored relations: heap files + multi-attribute indexes + refinement.
///
/// This is the access layer of Figure 1 — the bridge between CQA and the
/// simulated disk. A `StoredRelation` persists a heterogeneous relation
/// into a slotted heap file and optionally maintains a *joint* (one 2-D
/// R*-tree) or *separate* (two 1-D R*-trees) index over a pair of rational
/// attributes (§5). Rectangular selections then run as filter + refine:
/// the index returns candidate record ids by conservative bounding box,
/// the records are fetched and the exact CQA `Select` predicate decides.
///
/// Per-tuple index keys follow the heterogeneous model:
///  - a constraint attribute contributes its exact interval
///    (`fm::VariableInterval`), conservatively rounded outward; unbounded
///    sides extend to the configured domain;
///  - a relational rational attribute contributes the point [v, v];
///  - a tuple with a *null* relational attribute is indexed nowhere — it
///    can never satisfy a range predicate on that attribute (narrow
///    semantics), and for queries that do not constrain that attribute it
///    is kept in an outlier list that every query re-checks exactly.

#include <memory>
#include <optional>
#include <vector>

#include "core/operators.h"
#include "index/strategy.h"
#include "storage/heap_file.h"

namespace ccdb::cqa {

/// Which index (if any) a StoredRelation maintains.
enum class AccessIndexKind {
  kNone,      ///< heap file only; every selection is a full scan
  kJoint,     ///< one 2-D R*-tree over both attributes
  kSeparate,  ///< two 1-D R*-trees, intersected for conjunctive queries
};

/// The index key of one tuple over attributes (x, y), following the
/// heterogeneous rules in the file comment. `nullopt` marks an outlier
/// (null relational value on either attribute). Unsatisfiable constraint
/// stores key at the domain corner (they refine to nothing anyway).
Result<std::optional<Rect>> TupleIndexKey(const Tuple& tuple,
                                          const Attribute& x,
                                          const Attribute& y,
                                          const Rect& domain);

/// A relation persisted to the simulated disk with optional indexing.
class StoredRelation {
 public:
  /// Writes `rel` into a fresh heap file under `pool` and builds the
  /// requested index over rational attributes (`xattr`, `yattr`).
  /// `domain` bounds substitute for unbounded constraint intervals and for
  /// the unqueried attribute of a joint-index search.
  static Result<std::unique_ptr<StoredRelation>> Create(
      BufferPool* pool, const Relation& rel, AccessIndexKind kind,
      const std::string& xattr = "x", const std::string& yattr = "y",
      const Rect& domain = Rect::Make2D(-1e12, 1e12, -1e12, 1e12));

  /// Rectangular selection via the configured access path (index filter +
  /// exact refinement; full scan when kNone). Result semantics are
  /// identical to `ScanSelect`.
  Result<Relation> BoxSelect(const BoxQuery& query);

  /// The same selection evaluated by scanning every record (the baseline
  /// access path).
  Result<Relation> ScanSelect(const BoxQuery& query);

  /// Reconstructs the full relation from the heap file.
  Result<Relation> Materialize();

  const Schema& schema() const { return schema_; }
  size_t size() const { return heap_->num_records(); }
  AccessIndexKind index_kind() const { return kind_; }

 private:
  StoredRelation() = default;

  /// Translates the box query into an exact CQA predicate over
  /// (xattr, yattr).
  Result<Predicate> QueryPredicate(const BoxQuery& query) const;

  /// Fetches + deserializes records and refines them with `pred`.
  Result<Relation> RefineRecords(const std::vector<RecordId>& ids,
                                 const Predicate& pred);

  BufferPool* pool_ = nullptr;
  Schema schema_;
  std::string xattr_;
  std::string yattr_;
  AccessIndexKind kind_ = AccessIndexKind::kNone;
  Rect domain_ = Rect::Make2D(0, 0, 0, 0);
  std::unique_ptr<HeapFile> heap_;
  std::unique_ptr<AttributeIndex> index_;
  std::vector<RecordId> all_records_;
  std::vector<RecordId> outliers_;  ///< records excluded from the index
};

}  // namespace ccdb::cqa

#endif  // CCDB_CORE_ACCESS_H_
