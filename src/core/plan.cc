#include "core/plan.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>
#include <utility>

#include "obs/governance.h"

namespace ccdb::cqa {

std::unique_ptr<PlanNode> PlanNode::Scan(std::string relation) {
  auto node = std::make_unique<PlanNode>();
  node->op = Op::kScan;
  node->relation_name = std::move(relation);
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Select(std::unique_ptr<PlanNode> child,
                                           Predicate predicate) {
  auto node = std::make_unique<PlanNode>();
  node->op = Op::kSelect;
  node->predicate = std::move(predicate);
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Project(std::unique_ptr<PlanNode> child,
                                            std::vector<std::string> attrs) {
  auto node = std::make_unique<PlanNode>();
  node->op = Op::kProject;
  node->attrs = std::move(attrs);
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Join(std::unique_ptr<PlanNode> lhs,
                                         std::unique_ptr<PlanNode> rhs) {
  auto node = std::make_unique<PlanNode>();
  node->op = Op::kJoin;
  node->children.push_back(std::move(lhs));
  node->children.push_back(std::move(rhs));
  return node;
}

std::unique_ptr<PlanNode> PlanNode::UnionOf(std::unique_ptr<PlanNode> lhs,
                                            std::unique_ptr<PlanNode> rhs) {
  auto node = std::make_unique<PlanNode>();
  node->op = Op::kUnion;
  node->children.push_back(std::move(lhs));
  node->children.push_back(std::move(rhs));
  return node;
}

std::unique_ptr<PlanNode> PlanNode::DifferenceOf(
    std::unique_ptr<PlanNode> lhs, std::unique_ptr<PlanNode> rhs) {
  auto node = std::make_unique<PlanNode>();
  node->op = Op::kDifference;
  node->children.push_back(std::move(lhs));
  node->children.push_back(std::move(rhs));
  return node;
}

std::unique_ptr<PlanNode> PlanNode::RenameAttr(
    std::unique_ptr<PlanNode> child, std::string from, std::string to) {
  auto node = std::make_unique<PlanNode>();
  node->op = Op::kRename;
  node->rename_from = std::move(from);
  node->rename_to = std::move(to);
  node->children.push_back(std::move(child));
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto node = std::make_unique<PlanNode>();
  node->op = op;
  node->relation_name = relation_name;
  node->predicate = predicate;
  node->attrs = attrs;
  node->rename_from = rename_from;
  node->rename_to = rename_to;
  for (const auto& child : children) {
    node->children.push_back(child->Clone());
  }
  return node;
}

std::string PlanNode::Label() const {
  switch (op) {
    case Op::kScan:
      return "Scan " + relation_name;
    case Op::kSelect:
      return "Select [" + predicate.ToString() + "]";
    case Op::kProject: {
      std::string out = "Project [";
      for (size_t i = 0; i < attrs.size(); ++i) {
        if (i) out += ", ";
        out += attrs[i];
      }
      return out + "]";
    }
    case Op::kJoin:
      return "Join";
    case Op::kUnion:
      return "Union";
    case Op::kDifference:
      return "Difference";
    case Op::kRename:
      return "Rename " + rename_from + " -> " + rename_to;
  }
  return "?";
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + Label();
  for (const auto& child : children) {
    out += "\n" + child->ToString(indent + 1);
  }
  return out;
}

Result<Schema> InferSchema(const PlanNode& plan, const Database& db) {
  switch (plan.op) {
    case PlanNode::Op::kScan: {
      CCDB_ASSIGN_OR_RETURN(const Relation* rel, db.Get(plan.relation_name));
      return rel->schema();
    }
    case PlanNode::Op::kSelect:
      return InferSchema(*plan.children[0], db);
    case PlanNode::Op::kProject: {
      CCDB_ASSIGN_OR_RETURN(Schema child, InferSchema(*plan.children[0], db));
      return child.Project(plan.attrs);
    }
    case PlanNode::Op::kJoin: {
      CCDB_ASSIGN_OR_RETURN(Schema lhs, InferSchema(*plan.children[0], db));
      CCDB_ASSIGN_OR_RETURN(Schema rhs, InferSchema(*plan.children[1], db));
      return lhs.NaturalJoin(rhs);
    }
    case PlanNode::Op::kUnion:
    case PlanNode::Op::kDifference: {
      CCDB_ASSIGN_OR_RETURN(Schema lhs, InferSchema(*plan.children[0], db));
      CCDB_ASSIGN_OR_RETURN(Schema rhs, InferSchema(*plan.children[1], db));
      if (lhs != rhs) {
        return Status::InvalidArgument("schema mismatch under set operator");
      }
      return lhs;
    }
    case PlanNode::Op::kRename: {
      CCDB_ASSIGN_OR_RETURN(Schema child, InferSchema(*plan.children[0], db));
      return child.Rename(plan.rename_from, plan.rename_to);
    }
  }
  return Status::Internal("unknown plan op");
}

namespace {

/// Applies `plan`'s own operator to already-evaluated child relations.
Result<Relation> ApplyOp(const PlanNode& plan, const Database& db,
                         std::vector<Relation>& inputs) {
  switch (plan.op) {
    case PlanNode::Op::kScan: {
      CCDB_ASSIGN_OR_RETURN(const Relation* rel, db.Get(plan.relation_name));
      return *rel;
    }
    case PlanNode::Op::kSelect:
      return Select(inputs[0], plan.predicate);
    case PlanNode::Op::kProject:
      return Project(inputs[0], plan.attrs);
    case PlanNode::Op::kJoin:
      return NaturalJoin(inputs[0], inputs[1]);
    case PlanNode::Op::kUnion:
      return Union(inputs[0], inputs[1]);
    case PlanNode::Op::kDifference:
      return Difference(inputs[0], inputs[1]);
    case PlanNode::Op::kRename:
      return Rename(inputs[0], plan.rename_from, plan.rename_to);
  }
  return Status::Internal("unknown plan op");
}

/// Untraced bottom-up evaluation (the zero-overhead path).
Result<Relation> ExecutePlain(const PlanNode& plan, const Database& db) {
  CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
  std::vector<Relation> inputs;
  inputs.reserve(plan.children.size());
  for (const auto& child : plan.children) {
    CCDB_ASSIGN_OR_RETURN(Relation rel, ExecutePlain(*child, db));
    inputs.push_back(std::move(rel));
  }
  return ApplyOp(plan, db, inputs);
}

/// Traced evaluation: fills one TraceNode per plan node. Counter deltas
/// are exclusive (snapshotted around this node's own operator, after the
/// children have already run); wall time is inclusive.
Result<Relation> ExecuteNode(const PlanNode& plan, const Database& db,
                             obs::TraceNode* trace) {
  CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
  const auto start = std::chrono::steady_clock::now();
  std::vector<Relation> inputs;
  inputs.reserve(plan.children.size());
  double children_wall_us = 0;
  for (const auto& child : plan.children) {
    obs::TraceNode& child_trace = trace->children.emplace_back();
    CCDB_ASSIGN_OR_RETURN(Relation rel, ExecuteNode(*child, db, &child_trace));
    children_wall_us += child_trace.wall_us;
    trace->tuples_in += rel.size();
    inputs.push_back(std::move(rel));
  }
  const obs::LayerCounters before = obs::ActiveSnapshot();
  CCDB_ASSIGN_OR_RETURN(Relation out, ApplyOp(plan, db, inputs));
  trace->counters = obs::ActiveSnapshot() - before;
  trace->tuples_out = out.size();
  trace->wall_us = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  trace->self_us = std::max(0.0, trace->wall_us - children_wall_us);
  return out;
}

/// Fills in span labels after the clocks have stopped — label rendering
/// (predicate text, attribute lists) must not count against the timed
/// regions. Tolerates a trace tree cut short by an execution error.
void AssignLabels(const PlanNode& plan, obs::TraceNode* trace) {
  trace->label = plan.Label();
  const size_t n = std::min(plan.children.size(), trace->children.size());
  for (size_t i = 0; i < n; ++i) {
    AssignLabels(*plan.children[i], &trace->children[i]);
  }
}

}  // namespace

Result<Relation> Execute(const PlanNode& plan, const Database& db,
                         ExecStats* stats) {
  if (stats == nullptr) return ExecutePlain(plan, db);
  obs::TraceNode root;
  CCDB_ASSIGN_OR_RETURN(Relation out, ExecuteTraced(plan, db, &root));
  stats->nodes_evaluated = root.NodeCount();
  stats->intermediate_tuples = root.SumTuplesOut() - root.tuples_out;
  return out;
}

Result<Relation> ExecuteTraced(const PlanNode& plan, const Database& db,
                               obs::TraceNode* root) {
  std::optional<obs::CounterScope> scope;
  if (!obs::TracingActive()) scope.emplace();
  Result<Relation> out = ExecuteNode(plan, db, root);
  AssignLabels(plan, root);
  return out;
}

namespace {

/// Attributes mentioned by one linear atom.
std::set<std::string> AtomAttrs(const Constraint& c) { return c.Variables(); }

std::set<std::string> AtomAttrs(const StringAtom& atom) {
  std::set<std::string> attrs{atom.attribute};
  if (atom.kind == StringAtom::Kind::kAttrEqualsAttr) {
    attrs.insert(atom.attribute2);
  }
  return attrs;
}

bool CoveredBy(const std::set<std::string>& attrs, const Schema& schema) {
  for (const std::string& attr : attrs) {
    if (!schema.Has(attr)) return false;
  }
  return true;
}

/// Renames attribute `to` back to `from` inside a predicate (for pushing a
/// selection through ρ_{to|from}).
Predicate RenamePredicate(const Predicate& pred, const std::string& to,
                          const std::string& from) {
  Predicate out;
  for (const Constraint& c : pred.linear) {
    out.linear.push_back(c.Mentions(to) ? c.RenameVariable(to, from) : c);
  }
  for (StringAtom atom : pred.strings) {
    if (atom.attribute == to) atom.attribute = from;
    if (atom.kind == StringAtom::Kind::kAttrEqualsAttr &&
        atom.attribute2 == to) {
      atom.attribute2 = from;
    }
    out.strings.push_back(std::move(atom));
  }
  return out;
}

/// Projection-specific rewrites. Returns the (possibly replaced) node.
std::unique_ptr<PlanNode> RewriteProject(std::unique_ptr<PlanNode> node,
                                         const Database& db, bool* changed) {
  PlanNode& child = *node->children[0];

  // Rule: identity projection vanishes.
  if (auto child_schema = InferSchema(child, db); child_schema.ok()) {
    if (node->attrs == child_schema->Names()) {
      *changed = true;
      return std::move(node->children[0]);
    }
  }

  // Rule: compose adjacent projections (π_X ∘ π_Y = π_X when X ⊆ Y,
  // which schema validity guarantees).
  if (child.op == PlanNode::Op::kProject) {
    auto composed = PlanNode::Project(std::move(child.children[0]),
                                      node->attrs);
    *changed = true;
    return composed;
  }

  // Rule: push projection below union.
  if (child.op == PlanNode::Op::kUnion) {
    auto lhs = PlanNode::Project(std::move(child.children[0]), node->attrs);
    auto rhs = PlanNode::Project(std::move(child.children[1]), node->attrs);
    *changed = true;
    return PlanNode::UnionOf(std::move(lhs), std::move(rhs));
  }

  // NOTE: no π/ς swap here — the select-side rule canonicalizes to
  // "selection below projection" (selection first shrinks the input of
  // the expensive FM projection); a mirror rule would oscillate.

  // Rule: narrow join inputs — π_X(A ⋈ B) keeps only X plus the join
  // attributes on each side. Fire only when a side actually loses
  // attributes (otherwise this oscillates).
  if (child.op == PlanNode::Op::kJoin) {
    auto lhs_schema = InferSchema(*child.children[0], db);
    auto rhs_schema = InferSchema(*child.children[1], db);
    if (!lhs_schema.ok() || !rhs_schema.ok()) return node;
    std::set<std::string> shared;
    for (const Attribute& attr : lhs_schema->attributes()) {
      if (rhs_schema->Has(attr.name)) shared.insert(attr.name);
    }
    std::set<std::string> kept(node->attrs.begin(), node->attrs.end());
    auto narrow = [&](const Schema& schema,
                      std::unique_ptr<PlanNode> side) {
      std::vector<std::string> keep;
      for (const Attribute& attr : schema.attributes()) {
        if (kept.count(attr.name) || shared.count(attr.name)) {
          keep.push_back(attr.name);
        }
      }
      if (keep.size() == schema.arity()) return side;  // nothing to drop
      *changed = true;
      return PlanNode::Project(std::move(side), std::move(keep));
    };
    bool fired_before = *changed;
    (void)fired_before;
    bool local_change = false;
    bool saved = *changed;
    *changed = false;
    auto lhs = narrow(*lhs_schema, std::move(child.children[0]));
    auto rhs = narrow(*rhs_schema, std::move(child.children[1]));
    local_change = *changed;
    *changed = saved || local_change;
    auto join = PlanNode::Join(std::move(lhs), std::move(rhs));
    if (!local_change) {
      node->children[0] = std::move(join);
      return node;
    }
    return PlanNode::Project(std::move(join), node->attrs);
  }
  return node;
}

/// One pass of local rewrites; sets `changed` when anything fired.
std::unique_ptr<PlanNode> RewriteOnce(std::unique_ptr<PlanNode> node,
                                      const Database& db, bool* changed) {
  for (auto& child : node->children) {
    child = RewriteOnce(std::move(child), db, changed);
  }
  if (node->op == PlanNode::Op::kProject) {
    return RewriteProject(std::move(node), db, changed);
  }
  if (node->op != PlanNode::Op::kSelect) return node;

  // Rule: empty selection vanishes.
  if (node->predicate.empty()) {
    *changed = true;
    return std::move(node->children[0]);
  }
  PlanNode& child = *node->children[0];

  // Rule: merge adjacent selections.
  if (child.op == PlanNode::Op::kSelect) {
    child.predicate = Predicate::And(std::move(node->predicate),
                                     child.predicate);
    *changed = true;
    return std::move(node->children[0]);
  }

  // Rule: push selection below union (both branches).
  if (child.op == PlanNode::Op::kUnion) {
    auto lhs = PlanNode::Select(std::move(child.children[0]),
                                node->predicate);
    auto rhs = PlanNode::Select(std::move(child.children[1]),
                                node->predicate);
    *changed = true;
    return PlanNode::UnionOf(std::move(lhs), std::move(rhs));
  }

  // Rule: push selection below projection — always valid (a well-typed
  // predicate only mentions surviving attributes) and always beneficial
  // (selection shrinks the input of the expensive FM projection).
  if (child.op == PlanNode::Op::kProject) {
    auto selected = PlanNode::Select(std::move(child.children[0]),
                                     std::move(node->predicate));
    *changed = true;
    return PlanNode::Project(std::move(selected), child.attrs);
  }

  // Rule: push selection through rename (rewrite the predicate).
  if (child.op == PlanNode::Op::kRename) {
    Predicate rewritten = RenamePredicate(node->predicate, child.rename_to,
                                          child.rename_from);
    auto inner = PlanNode::Select(std::move(child.children[0]),
                                  std::move(rewritten));
    *changed = true;
    return PlanNode::RenameAttr(std::move(inner), child.rename_from,
                                child.rename_to);
  }

  // Rule: partition selection atoms across a join.
  if (child.op == PlanNode::Op::kJoin) {
    auto lhs_schema = InferSchema(*child.children[0], db);
    auto rhs_schema = InferSchema(*child.children[1], db);
    if (!lhs_schema.ok() || !rhs_schema.ok()) return node;  // let Execute report
    Predicate lhs_pred, rhs_pred, rest;
    for (const Constraint& c : node->predicate.linear) {
      auto attrs = AtomAttrs(c);
      if (CoveredBy(attrs, *lhs_schema)) {
        lhs_pred.linear.push_back(c);
      } else if (CoveredBy(attrs, *rhs_schema)) {
        rhs_pred.linear.push_back(c);
      } else {
        rest.linear.push_back(c);
      }
    }
    for (const StringAtom& atom : node->predicate.strings) {
      auto attrs = AtomAttrs(atom);
      if (CoveredBy(attrs, *lhs_schema)) {
        lhs_pred.strings.push_back(atom);
      } else if (CoveredBy(attrs, *rhs_schema)) {
        rhs_pred.strings.push_back(atom);
      } else {
        rest.strings.push_back(atom);
      }
    }
    if (lhs_pred.empty() && rhs_pred.empty()) return node;  // nothing to push
    *changed = true;
    auto lhs = std::move(child.children[0]);
    auto rhs = std::move(child.children[1]);
    if (!lhs_pred.empty()) {
      lhs = PlanNode::Select(std::move(lhs), std::move(lhs_pred));
    }
    if (!rhs_pred.empty()) {
      rhs = PlanNode::Select(std::move(rhs), std::move(rhs_pred));
    }
    auto join = PlanNode::Join(std::move(lhs), std::move(rhs));
    if (rest.empty()) return join;
    return PlanNode::Select(std::move(join), std::move(rest));
  }
  return node;
}

}  // namespace

std::unique_ptr<PlanNode> Optimize(std::unique_ptr<PlanNode> plan,
                                   const Database& db) {
  bool changed = true;
  int guard = 0;
  while (changed && guard++ < 32) {
    changed = false;
    plan = RewriteOnce(std::move(plan), db, &changed);
  }
  return plan;
}

}  // namespace ccdb::cqa
