#include "core/advisor.h"

#include <algorithm>
#include <cassert>

#include "constraint/independence.h"
#include "storage/serde.h"

namespace ccdb::cqa {

const char* IndexChoiceName(IndexChoice choice) {
  switch (choice) {
    case IndexChoice::kJoint:
      return "joint(x,y)";
    case IndexChoice::kSeparate:
      return "separate(x)+separate(y)";
    case IndexChoice::kXOnly:
      return "x-only";
    case IndexChoice::kYOnly:
      return "y-only";
  }
  return "?";
}

std::string AdvisorReport::ToString() const {
  std::string out = "recommendation: ";
  out += IndexChoiceName(recommendation);
  out += "\nworkload: " + std::to_string(queries_both) + " conjunctive, " +
         std::to_string(queries_x_only) + " x-only, " +
         std::to_string(queries_y_only) + " y-only";
  out += "\nattributes independent: ";
  out += attributes_independent ? "yes" : "no";
  out += "\ncosts (page accesses over the replayed workload):";
  for (const Candidate& c : candidates) {
    out += "\n  " + std::string(IndexChoiceName(c.choice)) + ": " +
           std::to_string(c.total_accesses);
  }
  return out;
}

namespace {

/// Cost of replaying the workload against one configuration.
struct Replayer {
  virtual ~Replayer() = default;
  /// Returns page accesses for the query: index reads + candidate
  /// fetches, or a full heap scan when the config cannot serve it.
  virtual Result<uint64_t> Cost(const BoxQuery& query) = 0;
};

class JointReplayer final : public Replayer {
 public:
  JointReplayer(const std::vector<Rect>& keys, const Rect& domain,
                size_t outliers)
      : pool_(&disk_, 0), index_(&pool_, domain), outliers_(outliers) {
    for (size_t i = 0; i < keys.size(); ++i) {
      Status s = index_.Insert(keys[i], i);
      assert(s.ok());
      IgnoreError(s);  // in-memory replay disk: inserts cannot fail
    }
  }
  Result<uint64_t> Cost(const BoxQuery& query) override {
    disk_.ResetStats();
    CCDB_ASSIGN_OR_RETURN(auto hits, index_.Search(query));
    return disk_.stats().reads + hits.size() + outliers_;
  }

 private:
  PageManager disk_;
  BufferPool pool_;
  JointIndex index_;
  size_t outliers_;
};

class SeparateReplayer final : public Replayer {
 public:
  SeparateReplayer(const std::vector<Rect>& keys, size_t outliers)
      : pool_(&disk_, 0), index_(&pool_), outliers_(outliers) {
    for (size_t i = 0; i < keys.size(); ++i) {
      Status s = index_.Insert(keys[i], i);
      assert(s.ok());
      IgnoreError(s);  // in-memory replay disk: inserts cannot fail
    }
  }
  Result<uint64_t> Cost(const BoxQuery& query) override {
    disk_.ResetStats();
    CCDB_ASSIGN_OR_RETURN(auto hits, index_.Search(query));
    return disk_.stats().reads + hits.size() + outliers_;
  }

 private:
  PageManager disk_;
  BufferPool pool_;
  SeparateIndex index_;
  size_t outliers_;
};

class SingleAxisReplayer final : public Replayer {
 public:
  SingleAxisReplayer(const std::vector<Rect>& keys, int axis,
                     size_t outliers, uint64_t heap_pages)
      : pool_(&disk_, 0),
        tree_(&pool_, 1),
        axis_(axis),
        outliers_(outliers),
        heap_pages_(heap_pages) {
    for (size_t i = 0; i < keys.size(); ++i) {
      Status s = tree_.Insert(
          Rect::Make1D(keys[i].lo[axis], keys[i].hi[axis]), i);
      assert(s.ok());
      IgnoreError(s);  // in-memory replay disk: inserts cannot fail
    }
  }
  Result<uint64_t> Cost(const BoxQuery& query) override {
    const auto& range = axis_ == 0 ? query.x : query.y;
    if (!range) return heap_pages_;  // unsupported: full scan
    disk_.ResetStats();
    CCDB_ASSIGN_OR_RETURN(
        auto hits, tree_.Search(Rect::Make1D(range->first, range->second)));
    // Candidates matching one attribute still need fetching + refining.
    return disk_.stats().reads + hits.size() + outliers_;
  }

 private:
  PageManager disk_;
  BufferPool pool_;
  RStarTree tree_;
  int axis_;
  size_t outliers_;
  uint64_t heap_pages_;
};

}  // namespace

bool AreAttributesIndependent(const Relation& rel, const std::string& x,
                              const std::string& y) {
  const Attribute* ax = rel.schema().Find(x);
  const Attribute* ay = rel.schema().Find(y);
  if (ax == nullptr || ay == nullptr) return false;
  // A relational attribute holds one concrete value per tuple: it is
  // independent of everything (the paper's §3.2 observation).
  if (ax->kind == AttributeKind::kRelational ||
      ay->kind == AttributeKind::kRelational) {
    return true;
  }
  for (const Tuple& t : rel.tuples()) {
    if (!fm::AreIndependent(t.constraints(), x, y)) return false;
  }
  return true;
}

Result<AdvisorReport> AdviseIndexing(const Relation& rel,
                                     const std::vector<BoxQuery>& workload,
                                     const std::string& xattr,
                                     const std::string& yattr,
                                     const Rect& domain,
                                     size_t sample_tuples) {
  const Attribute* x = rel.schema().Find(xattr);
  const Attribute* y = rel.schema().Find(yattr);
  if (x == nullptr || y == nullptr ||
      x->domain != AttributeDomain::kRational ||
      y->domain != AttributeDomain::kRational) {
    return Status::InvalidArgument(
        "advisor needs rational attributes '" + xattr + "' and '" + yattr +
        "'");
  }
  if (workload.empty()) {
    return Status::InvalidArgument("advisor needs a non-empty workload");
  }

  AdvisorReport report;
  for (const BoxQuery& q : workload) {
    if (q.x && q.y) {
      ++report.queries_both;
    } else if (q.x) {
      ++report.queries_x_only;
    } else if (q.y) {
      ++report.queries_y_only;
    } else {
      return Status::InvalidArgument("workload query constrains nothing");
    }
  }

  // Index keys for every tuple; null relational values become outliers
  // that every configuration must re-check.
  std::vector<Rect> keys;
  size_t outliers = 0;
  for (const Tuple& t : rel.tuples()) {
    CCDB_ASSIGN_OR_RETURN(auto key, TupleIndexKey(t, *x, *y, domain));
    if (key) {
      keys.push_back(*key);
    } else {
      ++outliers;
    }
  }

  // Heap size (the full-scan cost unit) measured on a scratch heap file.
  PageManager heap_disk;
  BufferPool heap_pool(&heap_disk, 0);
  HeapFile heap(&heap_pool);
  for (const Tuple& t : rel.tuples()) {
    CCDB_RETURN_IF_ERROR(heap.Append(SerializeTuple(t)).status());
  }
  const uint64_t heap_pages = heap.num_pages();

  // §3.2 independence probe over a sample of tuples.
  if (x->kind == AttributeKind::kRelational ||
      y->kind == AttributeKind::kRelational) {
    report.attributes_independent = true;
  } else {
    report.attributes_independent = true;
    size_t checked = 0;
    for (const Tuple& t : rel.tuples()) {
      if (checked++ >= sample_tuples) break;
      if (!fm::AreIndependent(t.constraints(), xattr, yattr)) {
        report.attributes_independent = false;
        break;
      }
    }
  }

  // Replay the workload against each configuration.
  JointReplayer joint(keys, domain, outliers);
  SeparateReplayer separate(keys, outliers);
  SingleAxisReplayer x_only(keys, 0, outliers, heap_pages);
  SingleAxisReplayer y_only(keys, 1, outliers, heap_pages);
  struct Entry {
    IndexChoice choice;
    Replayer* replayer;
  };
  Entry entries[] = {{IndexChoice::kJoint, &joint},
                     {IndexChoice::kSeparate, &separate},
                     {IndexChoice::kXOnly, &x_only},
                     {IndexChoice::kYOnly, &y_only}};
  for (const Entry& entry : entries) {
    AdvisorReport::Candidate candidate;
    candidate.choice = entry.choice;
    for (const BoxQuery& q : workload) {
      CCDB_ASSIGN_OR_RETURN(uint64_t cost, entry.replayer->Cost(q));
      candidate.total_accesses += cost;
    }
    report.candidates.push_back(candidate);
  }
  // Ties break toward lower maintenance cost: one small 1-D tree beats one
  // 2-D tree beats two trees.
  auto maintenance_rank = [](IndexChoice c) {
    switch (c) {
      case IndexChoice::kXOnly:
      case IndexChoice::kYOnly:
        return 0;
      case IndexChoice::kJoint:
        return 1;
      case IndexChoice::kSeparate:
        return 2;
    }
    return 3;
  };
  std::sort(report.candidates.begin(), report.candidates.end(),
            [&](const auto& a, const auto& b) {
              if (a.total_accesses != b.total_accesses) {
                return a.total_accesses < b.total_accesses;
              }
              return maintenance_rank(a.choice) < maintenance_rank(b.choice);
            });
  report.recommendation = report.candidates.front().choice;
  return report;
}

}  // namespace ccdb::cqa
