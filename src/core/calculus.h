#ifndef CCDB_CORE_CALCULUS_H_
#define CCDB_CORE_CALCULUS_H_

/// \file calculus.h
/// The Constraint Query Calculus (CQC), evaluated by translation to CQA.
///
/// §2.2 of the paper: CQC is "a generalization of relational calculus to
/// constraints", and CQA "was proven to have equivalent expressiveness to
/// CQC" — the declarative layer of Figure 1 that gets translated to
/// algebra for evaluation. CCDB makes the equivalence executable: a CQC
/// formula is compiled bottom-up into CQA operations.
///
/// Semantics match the CDB framework exactly:
///  - a constraint atom `x + y <= 2` alone IS a valid (infinite but
///    finitely representable) relation — no relational-calculus
///    range-restriction needed;
///  - a free variable absent from a disjunct is *broad* (all values), so
///    `x < 1 OR y < 1` evaluates over {x, y} by padding each side;
///  - negation is closed for constraint variables (the complement of a
///    linear DNF is a linear DNF, computed via Difference from the
///    universal relation) but REJECTED when the formula's free variables
///    include relational (string) ones — exactly the safety boundary the
///    framework prescribes (§2.4's closed-form requirement);
///  - ∃ is Fourier–Motzkin projection.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/operators.h"
#include "data/database.h"

namespace ccdb::cqc {

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// An immutable CQC formula tree.
class Formula {
 public:
  enum class Kind {
    kAtom,      ///< linear constraint over variables
    kStrAtom,   ///< string (in)equality over variables
    kRelation,  ///< R(v1, ..., vk): positional binding to R's attributes
    kAnd,
    kOr,
    kNot,
    kExists,
  };

  /// A linear-constraint atom, e.g. x + y <= 2.
  static FormulaPtr Atom(Constraint constraint);

  /// A string atom over variables, e.g. name = "Smith".
  static FormulaPtr StrAtom(StringAtom atom);

  /// A database atom R(v1, ..., vk): the i-th variable binds the i-th
  /// attribute of R. Repeating a variable expresses equality, e.g.
  /// R(x, x). Arity is checked at evaluation time.
  static FormulaPtr Rel(std::string relation, std::vector<std::string> vars);

  static FormulaPtr And(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr Or(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr Not(FormulaPtr inner);
  static FormulaPtr Exists(std::string var, FormulaPtr inner);
  /// Guard: a brace list of variables must go to ExistsAll — without this
  /// deleted overload, {"x", "y"} would silently select the two-pointer
  /// std::string iterator constructor (undefined behaviour).
  static FormulaPtr Exists(std::initializer_list<const char*> vars,
                           FormulaPtr inner) = delete;
  /// Convenience: ∃ over several variables.
  static FormulaPtr ExistsAll(const std::vector<std::string>& vars,
                              FormulaPtr inner);

  Kind kind() const { return kind_; }
  const Constraint& constraint() const { return *constraint_; }
  const StringAtom& string_atom() const { return *string_atom_; }
  const std::string& relation() const { return relation_; }
  const std::vector<std::string>& vars() const { return vars_; }
  const std::string& bound_var() const { return bound_var_; }
  const FormulaPtr& lhs() const { return lhs_; }
  const FormulaPtr& rhs() const { return rhs_; }

  /// Free variables of the formula.
  std::set<std::string> FreeVariables() const;

  /// Prefix rendering, e.g. "EXISTS t. (Hurricane(t, x, y) AND t >= 4)".
  std::string ToString() const;

 private:
  Formula() = default;

  Kind kind_ = Kind::kAtom;
  std::shared_ptr<const Constraint> constraint_;   // kAtom
  std::shared_ptr<const StringAtom> string_atom_;  // kStrAtom
  std::string relation_;                           // kRelation
  std::vector<std::string> vars_;                  // kRelation
  std::string bound_var_;                          // kExists
  FormulaPtr lhs_;                                 // kAnd/kOr/kNot/kExists
  FormulaPtr rhs_;                                 // kAnd/kOr
};

/// Evaluates a CQC formula against `db` by translation to CQA. The output
/// schema has one attribute per free variable: variables bound to
/// relational attributes keep that kind/domain (conflicts are errors);
/// all others become rational constraint attributes.
Result<Relation> Evaluate(const Formula& formula, const Database& db);

}  // namespace ccdb::cqc

#endif  // CCDB_CORE_CALCULUS_H_
