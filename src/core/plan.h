#ifndef CCDB_CORE_PLAN_H_
#define CCDB_CORE_PLAN_H_

/// \file plan.h
/// Logical CQA plans, rule-based optimization, and evaluation.
///
/// Figure 1 of the paper places CQA as the middle layer of a constraint
/// database system: user queries are translated into algebra expressions,
/// *optimized* ("through the use of indexing and through operator
/// reordering"), and then evaluated bottom-up. `PlanNode` is that algebra
/// expression tree; `Optimize` applies the classical reorderings
/// reinterpreted for constraint relations:
///
///  - adjacent selections merge (ς_a(ς_b(R)) = ς_{a∧b}(R));
///  - selections push below unions and through renames;
///  - selection atoms push below a join to whichever side covers their
///    attributes (atoms spanning both sides stay above);
///  - empty selections vanish.
///
/// `Execute` evaluates any plan against a `Database`; optimization never
/// changes results (verified by randomized tests), only the amount of
/// intermediate work.

#include <memory>
#include <string>
#include <vector>

#include "core/operators.h"
#include "data/database.h"
#include "obs/trace.h"

namespace ccdb::cqa {

/// One node of a logical CQA plan.
struct PlanNode {
  enum class Op {
    kScan,        ///< leaf: a named relation
    kSelect,      ///< predicate over the child
    kProject,     ///< attribute list over the child
    kJoin,        ///< natural join of two children
    kUnion,       ///< union of two children
    kDifference,  ///< difference of two children
    kRename,      ///< attribute rename over the child
  };

  Op op;
  std::string relation_name;        ///< kScan
  Predicate predicate;              ///< kSelect
  std::vector<std::string> attrs;   ///< kProject
  std::string rename_from;          ///< kRename
  std::string rename_to;            ///< kRename
  std::vector<std::unique_ptr<PlanNode>> children;

  /// Leaf scanning a stored relation.
  static std::unique_ptr<PlanNode> Scan(std::string relation);
  static std::unique_ptr<PlanNode> Select(std::unique_ptr<PlanNode> child,
                                          Predicate predicate);
  static std::unique_ptr<PlanNode> Project(std::unique_ptr<PlanNode> child,
                                           std::vector<std::string> attrs);
  static std::unique_ptr<PlanNode> Join(std::unique_ptr<PlanNode> lhs,
                                        std::unique_ptr<PlanNode> rhs);
  static std::unique_ptr<PlanNode> UnionOf(std::unique_ptr<PlanNode> lhs,
                                           std::unique_ptr<PlanNode> rhs);
  static std::unique_ptr<PlanNode> DifferenceOf(
      std::unique_ptr<PlanNode> lhs, std::unique_ptr<PlanNode> rhs);
  static std::unique_ptr<PlanNode> RenameAttr(std::unique_ptr<PlanNode> child,
                                              std::string from,
                                              std::string to);

  std::unique_ptr<PlanNode> Clone() const;

  /// One-node description without children, e.g. "Select [t >= 4]"
  /// (also used as the span label in execution traces).
  std::string Label() const;

  /// Indented one-node-per-line rendering, e.g.
  ///   Project [name]
  ///     Select [t >= 4]
  ///       Scan Hurricane
  std::string ToString(int indent = 0) const;
};

/// The output schema the plan would produce against `db` (errors on
/// unknown relations / ill-typed operators — the same checks evaluation
/// performs, usable for validation before execution).
Result<Schema> InferSchema(const PlanNode& plan, const Database& db);

/// Per-evaluation statistics (filled by Execute when non-null).
struct ExecStats {
  size_t nodes_evaluated = 0;

  /// Tuples produced by every operator *below* the root. The root's own
  /// output is the query result, not intermediate work, so it is excluded
  /// (earlier versions counted it too, inflating the metric by exactly the
  /// result cardinality).
  size_t intermediate_tuples = 0;
};

/// Evaluates the plan bottom-up. When `stats` is non-null the evaluation
/// is traced internally and the tree is reduced to the two summary fields.
Result<Relation> Execute(const PlanNode& plan, const Database& db,
                         ExecStats* stats = nullptr);

/// Evaluates the plan bottom-up, recording a per-operator span tree into
/// `root`: each node gets the operator label, inclusive wall time,
/// exclusive self time, tuple flow, and the layer-counter deltas
/// attributable to that operator alone. If no obs::CounterScope is active
/// on this thread, one is installed for the duration so standalone traces
/// still capture FM / index / buffer-pool work.
Result<Relation> ExecuteTraced(const PlanNode& plan, const Database& db,
                               obs::TraceNode* root);

/// Applies the rewrite rules to a fixpoint. Semantics-preserving.
std::unique_ptr<PlanNode> Optimize(std::unique_ptr<PlanNode> plan,
                                   const Database& db);

}  // namespace ccdb::cqa

#endif  // CCDB_CORE_PLAN_H_
