#include "core/calculus.h"

#include <algorithm>

namespace ccdb::cqc {

FormulaPtr Formula::Atom(Constraint constraint) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kAtom;
  f->constraint_ = std::make_shared<const Constraint>(std::move(constraint));
  return f;
}

FormulaPtr Formula::StrAtom(StringAtom atom) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kStrAtom;
  f->string_atom_ = std::make_shared<const StringAtom>(std::move(atom));
  return f;
}

FormulaPtr Formula::Rel(std::string relation,
                        std::vector<std::string> vars) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kRelation;
  f->relation_ = std::move(relation);
  f->vars_ = std::move(vars);
  return f;
}

FormulaPtr Formula::And(FormulaPtr lhs, FormulaPtr rhs) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kAnd;
  f->lhs_ = std::move(lhs);
  f->rhs_ = std::move(rhs);
  return f;
}

FormulaPtr Formula::Or(FormulaPtr lhs, FormulaPtr rhs) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kOr;
  f->lhs_ = std::move(lhs);
  f->rhs_ = std::move(rhs);
  return f;
}

FormulaPtr Formula::Not(FormulaPtr inner) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kNot;
  f->lhs_ = std::move(inner);
  return f;
}

FormulaPtr Formula::Exists(std::string var, FormulaPtr inner) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kExists;
  f->bound_var_ = std::move(var);
  f->lhs_ = std::move(inner);
  return f;
}

FormulaPtr Formula::ExistsAll(const std::vector<std::string>& vars,
                              FormulaPtr inner) {
  FormulaPtr f = std::move(inner);
  for (size_t i = vars.size(); i-- > 0;) {
    f = Exists(vars[i], std::move(f));
  }
  return f;
}

std::set<std::string> Formula::FreeVariables() const {
  switch (kind_) {
    case Kind::kAtom:
      return constraint_->Variables();
    case Kind::kStrAtom: {
      std::set<std::string> out{string_atom_->attribute};
      if (string_atom_->kind == StringAtom::Kind::kAttrEqualsAttr) {
        out.insert(string_atom_->attribute2);
      }
      return out;
    }
    case Kind::kRelation:
      return std::set<std::string>(vars_.begin(), vars_.end());
    case Kind::kAnd:
    case Kind::kOr: {
      std::set<std::string> out = lhs_->FreeVariables();
      auto r = rhs_->FreeVariables();
      out.insert(r.begin(), r.end());
      return out;
    }
    case Kind::kNot:
      return lhs_->FreeVariables();
    case Kind::kExists: {
      std::set<std::string> out = lhs_->FreeVariables();
      out.erase(bound_var_);
      return out;
    }
  }
  return {};
}

std::string Formula::ToString() const {
  switch (kind_) {
    case Kind::kAtom:
      return constraint_->ToPrettyString();
    case Kind::kStrAtom:
      return string_atom_->ToString();
    case Kind::kRelation: {
      std::string out = relation_ + "(";
      for (size_t i = 0; i < vars_.size(); ++i) {
        if (i) out += ", ";
        out += vars_[i];
      }
      return out + ")";
    }
    case Kind::kAnd:
      return "(" + lhs_->ToString() + " AND " + rhs_->ToString() + ")";
    case Kind::kOr:
      return "(" + lhs_->ToString() + " OR " + rhs_->ToString() + ")";
    case Kind::kNot:
      return "NOT " + lhs_->ToString();
    case Kind::kExists:
      return "EXISTS " + bound_var_ + ". " + lhs_->ToString();
  }
  return "?";
}

namespace {

/// The universal relation over constraint-rational variables: one tuple
/// with an empty store (broad semantics = every assignment).
Result<Relation> Universe(const std::set<std::string>& vars) {
  std::vector<Attribute> attrs;
  for (const std::string& var : vars) {
    attrs.push_back(Schema::ConstraintRational(var));
  }
  CCDB_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs)));
  Relation rel(std::move(schema));
  CCDB_RETURN_IF_ERROR(rel.Insert(Tuple()));
  return rel;
}

/// Evaluates a database atom R(v1, ..., vk): positional rename with
/// repeated-variable equality handling.
Result<Relation> EvalRelationAtom(const Formula& f, const Database& db) {
  CCDB_ASSIGN_OR_RETURN(const Relation* base, db.Get(f.relation()));
  if (f.vars().size() != base->schema().arity()) {
    return Status::InvalidArgument(
        f.relation() + " has arity " + std::to_string(base->schema().arity()) +
        ", got " + std::to_string(f.vars().size()) + " variables");
  }
  // Rename every attribute to a unique placeholder first (the relation's
  // own attribute names must not collide with the target variables).
  Relation current = *base;
  std::vector<std::string> temps;
  for (size_t i = 0; i < f.vars().size(); ++i) {
    std::string temp = "#cqc" + std::to_string(i);
    CCDB_ASSIGN_OR_RETURN(
        current,
        cqa::Rename(current, current.schema().attributes()[i].name, temp));
    temps.push_back(std::move(temp));
  }
  // Repeated variables become equality selections on the placeholders.
  Predicate equalities;
  std::map<std::string, size_t> first_position;
  std::vector<std::string> keep;
  for (size_t i = 0; i < f.vars().size(); ++i) {
    auto [it, inserted] = first_position.emplace(f.vars()[i], i);
    if (inserted) {
      keep.push_back(temps[i]);
      continue;
    }
    const Attribute& attr = current.schema().attributes()[i];
    if (attr.domain == AttributeDomain::kString) {
      equalities.strings.push_back(
          StringAtom::EqualsAttr(temps[it->second], temps[i]));
    } else {
      equalities.linear.push_back(
          Constraint::Eq(LinearExpr::Variable(temps[it->second]),
                         LinearExpr::Variable(temps[i])));
    }
  }
  if (!equalities.empty()) {
    CCDB_ASSIGN_OR_RETURN(current, cqa::Select(current, equalities));
    CCDB_ASSIGN_OR_RETURN(current, cqa::Project(current, keep));
  }
  // Placeholders -> variables.
  for (const auto& [var, position] : first_position) {
    CCDB_ASSIGN_OR_RETURN(current,
                          cqa::Rename(current, temps[position], var));
  }
  return current;
}

Result<Relation> Eval(const Formula& f, const Database& db);

/// Flattens an AND tree into conjuncts.
void CollectConjuncts(const FormulaPtr& f, std::vector<const Formula*>* out) {
  if (f->kind() == Formula::Kind::kAnd) {
    CollectConjuncts(f->lhs(), out);
    CollectConjuncts(f->rhs(), out);
    return;
  }
  out->push_back(f.get());
}

/// Evaluates a conjunction: join the relation-valued conjuncts, extend
/// with universal variables for uncovered atom variables, then select.
Result<Relation> EvalConjunction(const std::vector<const Formula*>& conjuncts,
                                 const Database& db) {
  Predicate atoms;
  std::vector<const Formula*> relational;
  std::set<std::string> atom_vars;
  for (const Formula* c : conjuncts) {
    switch (c->kind()) {
      case Formula::Kind::kAtom: {
        atoms.linear.push_back(c->constraint());
        auto vars = c->constraint().Variables();
        atom_vars.insert(vars.begin(), vars.end());
        break;
      }
      case Formula::Kind::kStrAtom: {
        atoms.strings.push_back(c->string_atom());
        atom_vars.insert(c->string_atom().attribute);
        if (c->string_atom().kind == StringAtom::Kind::kAttrEqualsAttr) {
          atom_vars.insert(c->string_atom().attribute2);
        }
        break;
      }
      default:
        relational.push_back(c);
    }
  }

  std::optional<Relation> joined;
  for (const Formula* c : relational) {
    CCDB_ASSIGN_OR_RETURN(Relation rel, Eval(*c, db));
    if (!joined) {
      joined = std::move(rel);
    } else {
      CCDB_ASSIGN_OR_RETURN(joined, cqa::NaturalJoin(*joined, rel));
    }
  }

  // Variables the atoms mention but no relation binds.
  std::set<std::string> missing;
  for (const std::string& var : atom_vars) {
    if (!joined || !joined->schema().Has(var)) missing.insert(var);
  }
  // String atoms need bound string attributes — except a positive literal
  // equality, which denotes a singleton we can materialize.
  for (auto it = atoms.strings.begin(); it != atoms.strings.end();) {
    const StringAtom& atom = *it;
    bool bound = joined && joined->schema().Has(atom.attribute);
    if (!bound) {
      if (atom.kind == StringAtom::Kind::kAttrEqualsLiteral &&
          !atom.negated) {
        CCDB_ASSIGN_OR_RETURN(
            Schema schema,
            Schema::Make({Schema::RelationalString(atom.attribute)}));
        Relation singleton(schema);
        Tuple t;
        t.SetValue(atom.attribute, Value::String(atom.literal));
        CCDB_RETURN_IF_ERROR(singleton.Insert(std::move(t)));
        if (!joined) {
          joined = std::move(singleton);
        } else {
          CCDB_ASSIGN_OR_RETURN(joined, cqa::NaturalJoin(*joined, singleton));
        }
        missing.erase(atom.attribute);
        it = atoms.strings.erase(it);
        continue;
      }
      return Status::Unsupported(
          "string variable '" + atom.attribute +
          "' is not bound by any relation atom (unsafe)");
    }
    ++it;
  }
  // Any leftover missing variable is rational: cover it with the universe.
  if (!missing.empty()) {
    CCDB_ASSIGN_OR_RETURN(Relation universe, Universe(missing));
    if (!joined) {
      joined = std::move(universe);
    } else {
      CCDB_ASSIGN_OR_RETURN(joined, cqa::NaturalJoin(*joined, universe));
    }
  }
  if (!joined) {
    // Conjunction of nothing: the zero-ary TRUE relation.
    Relation truth{Schema()};
    CCDB_RETURN_IF_ERROR(truth.Insert(Tuple()));
    joined = std::move(truth);
  }
  if (atoms.empty()) return *joined;
  return cqa::Select(*joined, atoms);
}

/// Pads `rel` to `target` (a superset schema): missing constraint
/// attributes are broad; missing relational attributes stay null.
Result<Relation> PadToSchema(const Relation& rel, const Schema& target) {
  Relation out(target);
  for (const Tuple& t : rel.tuples()) {
    CCDB_RETURN_IF_ERROR(out.Insert(t));
  }
  return out;
}

Result<Relation> EvalOr(const Formula& f, const Database& db) {
  CCDB_ASSIGN_OR_RETURN(Relation lhs, Eval(*f.lhs(), db));
  CCDB_ASSIGN_OR_RETURN(Relation rhs, Eval(*f.rhs(), db));
  // Target schema: union of attributes, name-sorted for determinism.
  std::map<std::string, Attribute> merged;
  for (const Relation* side : {&lhs, &rhs}) {
    for (const Attribute& attr : side->schema().attributes()) {
      auto [it, inserted] = merged.emplace(attr.name, attr);
      if (!inserted && it->second != attr) {
        return Status::InvalidArgument(
            "variable '" + attr.name +
            "' has conflicting kinds across OR branches");
      }
    }
  }
  std::vector<Attribute> attrs;
  for (auto& [name, attr] : merged) attrs.push_back(attr);
  CCDB_ASSIGN_OR_RETURN(Schema target, Schema::Make(std::move(attrs)));
  CCDB_ASSIGN_OR_RETURN(Relation padded_lhs, PadToSchema(lhs, target));
  CCDB_ASSIGN_OR_RETURN(Relation padded_rhs, PadToSchema(rhs, target));
  return cqa::Union(padded_lhs, padded_rhs);
}

Result<Relation> EvalNot(const Formula& f, const Database& db) {
  CCDB_ASSIGN_OR_RETURN(Relation inner, Eval(*f.lhs(), db));
  for (const Attribute& attr : inner.schema().attributes()) {
    if (attr.kind != AttributeKind::kConstraint) {
      return Status::Unsupported(
          "negation over relational variable '" + attr.name +
          "' is unsafe (infinite uninterpreted domain)");
    }
  }
  Relation universe(inner.schema());
  CCDB_RETURN_IF_ERROR(universe.Insert(Tuple()));
  return cqa::Difference(universe, inner);
}

Result<Relation> Eval(const Formula& f, const Database& db) {
  switch (f.kind()) {
    case Formula::Kind::kAtom:
    case Formula::Kind::kStrAtom:
    case Formula::Kind::kRelation:
    case Formula::Kind::kAnd: {
      if (f.kind() == Formula::Kind::kRelation) {
        return EvalRelationAtom(f, db);
      }
      std::vector<const Formula*> conjuncts;
      if (f.kind() == Formula::Kind::kAnd) {
        CollectConjuncts(f.lhs(), &conjuncts);
        CollectConjuncts(f.rhs(), &conjuncts);
      } else {
        conjuncts.push_back(&f);
      }
      return EvalConjunction(conjuncts, db);
    }
    case Formula::Kind::kOr:
      return EvalOr(f, db);
    case Formula::Kind::kNot:
      return EvalNot(f, db);
    case Formula::Kind::kExists: {
      CCDB_ASSIGN_OR_RETURN(Relation inner, Eval(*f.lhs(), db));
      if (!inner.schema().Has(f.bound_var())) {
        return inner;  // vacuous quantification
      }
      std::vector<std::string> keep;
      for (const Attribute& attr : inner.schema().attributes()) {
        if (attr.name != f.bound_var()) keep.push_back(attr.name);
      }
      return cqa::Project(inner, keep);
    }
  }
  return Status::Internal("unknown formula kind");
}

}  // namespace

Result<Relation> Evaluate(const Formula& formula, const Database& db) {
  return Eval(formula, db);
}

}  // namespace ccdb::cqc
