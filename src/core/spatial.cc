#include "core/spatial.h"

#include <algorithm>
#include <map>
#include <memory>

#include "index/strategy.h"
#include "obs/governance.h"

namespace ccdb::cqa {

Result<FeatureSet> FeatureSet::FromRelation(const Relation& input,
                                            const std::string& id_attr,
                                            const std::string& xvar,
                                            const std::string& yvar) {
  const Attribute* id = input.schema().Find(id_attr);
  if (id == nullptr || id->kind != AttributeKind::kRelational ||
      id->domain != AttributeDomain::kString) {
    return Status::InvalidArgument(
        "spatial constraint relation needs relational string attribute '" +
        id_attr + "'");
  }
  for (const std::string& var : {xvar, yvar}) {
    const Attribute* attr = input.schema().Find(var);
    if (attr == nullptr || attr->kind != AttributeKind::kConstraint) {
      return Status::InvalidArgument(
          "spatial constraint relation needs constraint attribute '" + var +
          "'");
    }
  }

  std::map<std::string, Feature> by_id;
  for (const Tuple& tuple : input.tuples()) {
    const Value& value = tuple.GetValue(id_attr);
    if (value.IsNull()) {
      return Status::InvalidArgument(
          "spatial tuple with null feature ID: " + tuple.ToString());
    }
    CCDB_ASSIGN_OR_RETURN(
        geom::ConvexRegion region,
        geom::ConjunctionToRegion(tuple.constraints(), xvar, yvar));
    Feature& feature = by_id[value.AsString()];
    feature.id = value.AsString();
    feature.bounds = feature.bounds.ExpandedBy(region.BoundingBox());
    feature.parts.push_back(std::move(region));
  }
  FeatureSet set;
  set.features_.reserve(by_id.size());
  for (auto& [key, feature] : by_id) {
    set.features_.push_back(std::move(feature));
  }
  return set;
}

Rational FeatureSet::SquaredDistance(const Feature& a, const Feature& b) {
  Rational best(-1);
  for (const geom::ConvexRegion& pa : a.parts) {
    geom::Box box_a = pa.BoundingBox();
    for (const geom::ConvexRegion& pb : b.parts) {
      // Bounding-box lower bound: exact geometry only when it can improve
      // on the best pair found so far.
      if (best.Sign() >= 0 &&
          geom::Box::SquaredDistance(box_a, pb.BoundingBox()) >= best) {
        continue;
      }
      Rational d = geom::SquaredDistance(pa, pb);
      if (best.Sign() < 0 || d < best) best = d;
      if (best.IsZero()) return best;
    }
  }
  return best.Sign() < 0 ? Rational(0) : best;
}

namespace {

Schema PairSchema(const SpatialOptions& options) {
  return Schema::Make({Schema::RelationalString(options.out_left),
                       Schema::RelationalString(options.out_right)})
      .value();
}

Status EmitPair(Relation* out, const SpatialOptions& options,
                const std::string& left, const std::string& right) {
  Tuple pair;
  pair.SetValue(options.out_left, Value::String(left));
  pair.SetValue(options.out_right, Value::String(right));
  return out->Insert(std::move(pair));
}

Rect FeatureRect(const geom::Box& box) {
  return Rect::Make2D(Rect::RoundDown(box.x_min), Rect::RoundUp(box.x_max),
                      Rect::RoundDown(box.y_min), Rect::RoundUp(box.y_max));
}

/// An R*-tree over the bounding boxes of `features` (ids = indices).
struct FeatureIndex {
  std::unique_ptr<PageManager> own_disk;
  std::unique_ptr<BufferPool> own_pool;
  std::unique_ptr<RStarTree> tree;

  static Result<FeatureIndex> Build(const std::vector<Feature>& features,
                                    BufferPool* pool) {
    FeatureIndex index;
    if (pool == nullptr) {
      index.own_disk = std::make_unique<PageManager>();
      index.own_pool = std::make_unique<BufferPool>(index.own_disk.get(), 0);
      pool = index.own_pool.get();
    }
    index.tree = std::make_unique<RStarTree>(pool, 2);
    for (size_t i = 0; i < features.size(); ++i) {
      CCDB_RETURN_IF_ERROR(
          index.tree->Insert(FeatureRect(features[i].bounds), i));
    }
    return index;
  }
};

}  // namespace

Result<Relation> BufferJoin(const FeatureSet& lhs, const FeatureSet& rhs,
                            const Rational& distance,
                            const SpatialOptions& options) {
  if (distance.Sign() < 0) {
    return Status::InvalidArgument("buffer distance must be non-negative");
  }
  Relation out(PairSchema(options));
  const Rational distance_sq = distance * distance;

  auto refine_and_emit = [&](const Feature& left,
                             const Feature& right) -> Status {
    if (options.exclude_same_id && left.id == right.id) return Status::OK();
    if (FeatureSet::SquaredDistance(left, right) <= distance_sq) {
      return EmitPair(&out, options, left.id, right.id);
    }
    return Status::OK();
  };

  if (!options.use_index) {
    for (const Feature& left : lhs.features()) {
      CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
      // Buffer join is monotone — each emitted pair holds regardless of
      // which other features exist — so truncating mid-query still
      // leaves a sound subset.
      if (obs::GovernanceTruncating()) break;
      for (const Feature& right : rhs.features()) {
        CCDB_RETURN_IF_ERROR(refine_and_emit(left, right));
      }
    }
    out.Deduplicate();
    return out;
  }

  CCDB_ASSIGN_OR_RETURN(FeatureIndex index,
                        FeatureIndex::Build(rhs.features(), options.pool));
  // Filter: grow the probe's bounding box by d (conservatively in doubles);
  // any feature within distance d must intersect the grown box.
  const double grow = Rect::RoundUp(distance);
  for (const Feature& left : lhs.features()) {
    CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
    if (obs::GovernanceTruncating()) break;
    Rect window = FeatureRect(left.bounds);
    for (int d = 0; d < 2; ++d) {
      window.lo[d] -= grow;
      window.hi[d] += grow;
    }
    CCDB_ASSIGN_OR_RETURN(std::vector<uint64_t> candidates,
                          index.tree->Search(window));
    for (uint64_t candidate : candidates) {
      CCDB_RETURN_IF_ERROR(
          refine_and_emit(left, rhs.features()[candidate]));
    }
  }
  out.Deduplicate();
  return out;
}

Result<Relation> KNearest(const FeatureSet& lhs, const FeatureSet& rhs,
                          size_t k, const SpatialOptions& options) {
  Relation out(PairSchema(options));
  // k-nearest is non-monotone: over a truncated (subset) rhs the k slots
  // fill with farther features whose pairs are NOT in the true answer, so
  // a query already truncating gets the empty relation — the only sound
  // subset. A trip latching mid-query (from this operator's own output
  // charges) only stops the outer loop below: pairs already emitted were
  // ranked against the full rhs and remain sound.
  if (obs::GovernanceTruncating()) return out;
  if (k == 0 || rhs.size() == 0) return out;

  // (distance², id) ordering with ID tiebreak.
  auto closer = [](const std::pair<Rational, const Feature*>& a,
                   const std::pair<Rational, const Feature*>& b) {
    int cmp = a.first.Compare(b.first);
    if (cmp != 0) return cmp < 0;
    return a.second->id < b.second->id;
  };

  auto emit_k_nearest =
      [&](const Feature& left,
          std::vector<std::pair<Rational, const Feature*>> candidates)
      -> Status {
    std::sort(candidates.begin(), candidates.end(), closer);
    size_t emitted = 0;
    for (const auto& [dist, right] : candidates) {
      if (emitted == k) break;
      CCDB_RETURN_IF_ERROR(EmitPair(&out, options, left.id, right->id));
      ++emitted;
    }
    return Status::OK();
  };

  if (!options.use_index) {
    for (const Feature& left : lhs.features()) {
      CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
      if (obs::GovernanceTruncating()) break;
      std::vector<std::pair<Rational, const Feature*>> candidates;
      candidates.reserve(rhs.size());
      for (const Feature& right : rhs.features()) {
        if (options.exclude_same_id && left.id == right.id) continue;
        candidates.emplace_back(FeatureSet::SquaredDistance(left, right),
                                &right);
      }
      CCDB_RETURN_IF_ERROR(emit_k_nearest(left, std::move(candidates)));
    }
    return out;
  }

  CCDB_ASSIGN_OR_RETURN(FeatureIndex index,
                        FeatureIndex::Build(rhs.features(), options.pool));
  for (const Feature& left : lhs.features()) {
    CCDB_RETURN_IF_ERROR(obs::CheckGovernance());
    if (obs::GovernanceTruncating()) break;
    // Expanding-window search: radius doubles until at least k candidates
    // are *confirmed* within the radius — then no unseen feature can be
    // closer than the k found (its bounding box would intersect the
    // window).
    Rect base = FeatureRect(left.bounds);
    double radius = 64.0;
    std::vector<std::pair<Rational, const Feature*>> candidates;
    while (true) {
      Rect window = base;
      for (int d = 0; d < 2; ++d) {
        window.lo[d] -= radius;
        window.hi[d] += radius;
      }
      CCDB_ASSIGN_OR_RETURN(std::vector<uint64_t> hits,
                            index.tree->Search(window));
      candidates.clear();
      size_t usable = 0;
      for (uint64_t hit : hits) {
        const Feature& right = rhs.features()[hit];
        if (options.exclude_same_id && left.id == right.id) continue;
        candidates.emplace_back(FeatureSet::SquaredDistance(left, right),
                                &right);
        ++usable;
      }
      const Rational radius_sq =
          Rational::FromString(std::to_string(radius)).value() *
          Rational::FromString(std::to_string(radius)).value();
      size_t confirmed = 0;
      for (const auto& [dist, right] : candidates) {
        if (dist <= radius_sq) ++confirmed;
      }
      const bool exhausted =
          usable >= rhs.size() - (options.exclude_same_id ? 1 : 0);
      if (confirmed >= k || exhausted) break;
      radius *= 2;
    }
    CCDB_RETURN_IF_ERROR(emit_k_nearest(left, std::move(candidates)));
  }
  return out;
}

}  // namespace ccdb::cqa
