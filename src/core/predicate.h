#ifndef CCDB_CORE_PREDICATE_H_
#define CCDB_CORE_PREDICATE_H_

/// \file predicate.h
/// Selection predicates over heterogeneous relations.
///
/// A CQA selection condition ξ is a conjunction of constraints over α(R)
/// (§2.4). In the heterogeneous model the attributes mentioned can be:
///  - constraint attributes — the constraint is conjoined with the tuple's
///    store (broad semantics);
///  - relational rational attributes — the stored value is substituted into
///    the constraint, which then must hold (narrow: a null value satisfies
///    nothing);
///  - relational string attributes — only (in)equality against a string
///    literal or another string attribute is meaningful; expressed as
///    `StringAtom`s.

#include <string>
#include <vector>

#include "constraint/constraint.h"

namespace ccdb {

/// An equality/inequality test on string-valued relational attributes.
struct StringAtom {
  enum class Kind {
    kAttrEqualsLiteral,  ///< attr = "literal"
    kAttrEqualsAttr,     ///< attr = attr2
  };

  Kind kind = Kind::kAttrEqualsLiteral;
  std::string attribute;
  std::string literal;     ///< for kAttrEqualsLiteral
  std::string attribute2;  ///< for kAttrEqualsAttr
  bool negated = false;    ///< != instead of =

  static StringAtom EqualsLiteral(std::string attr, std::string lit) {
    StringAtom a;
    a.attribute = std::move(attr);
    a.literal = std::move(lit);
    return a;
  }
  static StringAtom NotEqualsLiteral(std::string attr, std::string lit) {
    StringAtom a = EqualsLiteral(std::move(attr), std::move(lit));
    a.negated = true;
    return a;
  }
  static StringAtom EqualsAttr(std::string attr, std::string attr2) {
    StringAtom a;
    a.kind = Kind::kAttrEqualsAttr;
    a.attribute = std::move(attr);
    a.attribute2 = std::move(attr2);
    return a;
  }

  std::string ToString() const;
};

/// A conjunctive selection condition.
struct Predicate {
  std::vector<Constraint> linear;    ///< arithmetic atoms
  std::vector<StringAtom> strings;   ///< string atoms

  bool empty() const { return linear.empty() && strings.empty(); }

  /// And-composition of two predicates.
  static Predicate And(Predicate a, const Predicate& b);

  std::string ToString() const;
};

}  // namespace ccdb

#endif  // CCDB_CORE_PREDICATE_H_
