#include "core/access.h"

#include <algorithm>

#include "constraint/fourier_motzkin.h"
#include "storage/serde.h"

namespace ccdb::cqa {

namespace {

/// Index key interval of one tuple along `attr`; nullopt marks an outlier
/// (null relational value). `lo_default`/`hi_default` bound unbounded
/// constraint intervals.
Result<std::optional<std::pair<double, double>>> TupleInterval(
    const Tuple& tuple, const Attribute& attr, double lo_default,
    double hi_default) {
  if (attr.kind == AttributeKind::kRelational) {
    const Value& value = tuple.GetValue(attr.name);
    if (value.IsNull()) return std::optional<std::pair<double, double>>();
    double lo = Rect::RoundDown(value.AsNumber());
    double hi = Rect::RoundUp(value.AsNumber());
    return std::optional<std::pair<double, double>>({lo, hi});
  }
  fm::Interval interval = fm::VariableInterval(tuple.constraints(), attr.name);
  if (interval.empty) {
    // Unsatisfiable tuple: empty key at the domain's corner; it will never
    // refine to true, so any placement is sound — keep it out of results
    // via refinement.
    return std::optional<std::pair<double, double>>({lo_default, lo_default});
  }
  double lo = interval.lower ? Rect::RoundDown(interval.lower->value)
                             : lo_default;
  double hi = interval.upper ? Rect::RoundUp(interval.upper->value)
                             : hi_default;
  return std::optional<std::pair<double, double>>({lo, hi});
}

}  // namespace

Result<std::optional<Rect>> TupleIndexKey(const Tuple& tuple,
                                          const Attribute& x,
                                          const Attribute& y,
                                          const Rect& domain) {
  CCDB_ASSIGN_OR_RETURN(auto xi,
                        TupleInterval(tuple, x, domain.lo[0], domain.hi[0]));
  CCDB_ASSIGN_OR_RETURN(auto yi,
                        TupleInterval(tuple, y, domain.lo[1], domain.hi[1]));
  if (!xi || !yi) return std::optional<Rect>();
  return std::optional<Rect>(
      Rect::Make2D(xi->first, xi->second, yi->first, yi->second));
}

Result<std::unique_ptr<StoredRelation>> StoredRelation::Create(
    BufferPool* pool, const Relation& rel, AccessIndexKind kind,
    const std::string& xattr, const std::string& yattr, const Rect& domain) {
  const Attribute* x = rel.schema().Find(xattr);
  const Attribute* y = rel.schema().Find(yattr);
  if (x == nullptr || y == nullptr ||
      x->domain != AttributeDomain::kRational ||
      y->domain != AttributeDomain::kRational) {
    return Status::InvalidArgument(
        "StoredRelation needs rational attributes '" + xattr + "' and '" +
        yattr + "' in " + rel.schema().ToString());
  }
  auto stored = std::unique_ptr<StoredRelation>(new StoredRelation());
  stored->pool_ = pool;
  stored->schema_ = rel.schema();
  stored->xattr_ = xattr;
  stored->yattr_ = yattr;
  stored->kind_ = kind;
  stored->domain_ = domain;
  stored->heap_ = std::make_unique<HeapFile>(pool);
  switch (kind) {
    case AccessIndexKind::kNone:
      break;
    case AccessIndexKind::kJoint:
      stored->index_ = std::make_unique<JointIndex>(pool, domain);
      break;
    case AccessIndexKind::kSeparate:
      stored->index_ = std::make_unique<SeparateIndex>(pool);
      break;
  }

  for (const Tuple& tuple : rel.tuples()) {
    CCDB_ASSIGN_OR_RETURN(RecordId rid,
                          stored->heap_->Append(SerializeTuple(tuple)));
    stored->all_records_.push_back(rid);
    if (stored->index_ == nullptr) continue;
    CCDB_ASSIGN_OR_RETURN(auto key, TupleIndexKey(tuple, *x, *y, domain));
    if (!key) {
      stored->outliers_.push_back(rid);
      continue;
    }
    CCDB_RETURN_IF_ERROR(stored->index_->Insert(*key, rid.Pack()));
  }
  return stored;
}

Result<Predicate> StoredRelation::QueryPredicate(
    const BoxQuery& query) const {
  Predicate pred;
  auto add_range = [&](const std::string& attr,
                       const std::pair<double, double>& range) {
    LinearExpr var = LinearExpr::Variable(attr);
    CCDB_ASSIGN_OR_RETURN(Rational lo,
                          Rational::FromString(std::to_string(range.first)));
    CCDB_ASSIGN_OR_RETURN(Rational hi,
                          Rational::FromString(std::to_string(range.second)));
    pred.linear.push_back(Constraint::Ge(var, LinearExpr::Constant(lo)));
    pred.linear.push_back(Constraint::Le(var, LinearExpr::Constant(hi)));
    return Status::OK();
  };
  if (query.x) CCDB_RETURN_IF_ERROR(add_range(xattr_, *query.x));
  if (query.y) CCDB_RETURN_IF_ERROR(add_range(yattr_, *query.y));
  if (pred.empty()) {
    return Status::InvalidArgument("BoxQuery constrains no attribute");
  }
  return pred;
}

Result<Relation> StoredRelation::RefineRecords(
    const std::vector<RecordId>& ids, const Predicate& pred) {
  Relation candidates(schema_);
  for (RecordId rid : ids) {
    CCDB_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, heap_->Read(rid));
    CCDB_ASSIGN_OR_RETURN(Tuple tuple, DeserializeTuple(bytes));
    CCDB_RETURN_IF_ERROR(candidates.Insert(std::move(tuple)));
  }
  return Select(candidates, pred);
}

Result<Relation> StoredRelation::BoxSelect(const BoxQuery& query) {
  CCDB_ASSIGN_OR_RETURN(Predicate pred, QueryPredicate(query));
  if (index_ == nullptr) {
    return RefineRecords(all_records_, pred);
  }
  CCDB_ASSIGN_OR_RETURN(std::vector<uint64_t> packed, index_->Search(query));
  std::vector<RecordId> ids;
  ids.reserve(packed.size() + outliers_.size());
  for (uint64_t p : packed) ids.push_back(RecordId::Unpack(p));
  ids.insert(ids.end(), outliers_.begin(), outliers_.end());
  std::sort(ids.begin(), ids.end());
  return RefineRecords(ids, pred);
}

Result<Relation> StoredRelation::ScanSelect(const BoxQuery& query) {
  CCDB_ASSIGN_OR_RETURN(Predicate pred, QueryPredicate(query));
  return RefineRecords(all_records_, pred);
}

Result<Relation> StoredRelation::Materialize() {
  Relation out(schema_);
  // A record that fails to decode or insert must fail the whole
  // materialization: silently skipping it would return a truncated
  // relation as if it were the full answer (unsound under closure).
  Status inner = Status::OK();
  CCDB_RETURN_IF_ERROR(
      heap_->Scan([&](RecordId, const std::vector<uint8_t>& bytes) {
        auto tuple = DeserializeTuple(bytes);
        if (!tuple.ok()) {
          inner = tuple.status();
          return false;
        }
        inner = out.Insert(std::move(tuple).value());
        return inner.ok();
      }));
  CCDB_RETURN_IF_ERROR(inner);
  return out;
}

}  // namespace ccdb::cqa
