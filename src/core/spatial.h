#ifndef CCDB_CORE_SPATIAL_H_
#define CCDB_CORE_SPATIAL_H_

/// \file spatial.h
/// Whole-feature spatial operators: Buffer-Join and k-Nearest (§4).
///
/// A raw `distance(p, q)` operator is *unsafe* in a linear constraint
/// database: the set of points at distance d from a feature has a circular
/// boundary, which no finite set of linear constraints represents, so the
/// closure requirement of §2.4 fails. The paper's fix is *whole-feature*
/// operators that never materialize distance as data: they return a
/// relation of feature-ID pairs, which is trivially representable —
/// queries stay safe by construction.
///
/// A *spatial constraint relation* groups constraint tuples by a feature-ID
/// attribute: one feature = one ID = the union of its tuples' regions
/// (segments of a trajectory, convex pieces of a region, ...).
///
/// Both operators come in a nested-loop and an R*-tree-accelerated form;
/// the index filters candidate pairs by bounding box, exact rational
/// geometry refines (filter-refine, [3] in the paper).

#include <string>
#include <vector>

#include "data/relation.h"
#include "geom/convert.h"
#include "storage/buffer_pool.h"

namespace ccdb::cqa {

/// One spatial feature: an ID plus the convex regions of its tuples.
struct Feature {
  std::string id;
  std::vector<geom::ConvexRegion> parts;
  geom::Box bounds = geom::Box::Empty();  ///< bounding box of all parts
};

/// A spatial constraint relation materialized as features.
class FeatureSet {
 public:
  /// Groups `input`'s tuples by `id_attr` (a relational string attribute)
  /// and converts each tuple's constraint store over (xvar, yvar) into a
  /// convex region. Fails when the schema does not match the spatial
  /// constraint relation shape or a tuple's region is unbounded.
  static Result<FeatureSet> FromRelation(const Relation& input,
                                         const std::string& id_attr = "fid",
                                         const std::string& xvar = "x",
                                         const std::string& yvar = "y");

  const std::vector<Feature>& features() const { return features_; }
  size_t size() const { return features_.size(); }

  /// Exact squared distance between two features: the minimum over their
  /// part pairs (0 when they touch or overlap).
  static Rational SquaredDistance(const Feature& a, const Feature& b);

 private:
  std::vector<Feature> features_;
};

/// Evaluation knobs for the whole-feature operators.
struct SpatialOptions {
  /// Use an R*-tree over feature bounding boxes; false = nested loop.
  bool use_index = true;
  /// Pool for the operator's index pages; nullptr = private in-memory pool.
  /// Benchmarks pass their own pool to count disk accesses.
  BufferPool* pool = nullptr;
  /// Drop pairs with equal feature IDs (self-join hygiene).
  bool exclude_same_id = false;
  /// Output attribute names.
  std::string out_left = "fid1";
  std::string out_right = "fid2";
};

/// Buffer-Join(R, S, d): the relation of pairs (fid1, fid2) with
/// distance(feature fid1 of R, feature fid2 of S) <= d. `distance` must be
/// non-negative. Output is a traditional relation — safe by construction.
Result<Relation> BufferJoin(const FeatureSet& lhs, const FeatureSet& rhs,
                            const Rational& distance,
                            const SpatialOptions& options = {});

/// k-Nearest(R, S, k): for every feature of R, its k nearest features of S
/// (ties broken by feature ID; fewer than k when S is small). Returns
/// pairs (fid1, fid2).
Result<Relation> KNearest(const FeatureSet& lhs, const FeatureSet& rhs,
                          size_t k, const SpatialOptions& options = {});

}  // namespace ccdb::cqa

#endif  // CCDB_CORE_SPATIAL_H_
