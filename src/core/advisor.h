#ifndef CCDB_CORE_ADVISOR_H_
#define CCDB_CORE_ADVISOR_H_

/// \file advisor.h
/// The index-grouping advisor.
///
/// §5.4 of the paper closes with an open problem: "Given a constraint
/// relation over attributes X = {x1, ..., xk}, determine a set of subsets
/// of X that should correspond to indices over X, with one index per
/// subset", noting that "the selectivity of various attributes and the
/// kinds of queries that are typical will need to be considered".
///
/// CCDB implements the workload-driven heuristic the paper sketches: given
/// a relation and a representative query workload, every candidate
/// configuration (joint 2-D; two separate 1-D; one 1-D on either
/// attribute) is built on a scratch disk and the workload is *replayed*,
/// counting actual page accesses — index pages touched plus candidate
/// record fetches, with unsupported queries charged a full heap scan. The
/// cheapest configuration is recommended. The report also carries the
/// workload shape (how many queries constrain both attributes) and the
/// §3.2 variable-independence signal, which explains *why* a
/// recommendation wins: coupled attributes with conjunctive workloads are
/// exactly where the joint index dominates.

#include <string>
#include <vector>

#include "core/access.h"

namespace ccdb::cqa {

/// One candidate indexing configuration for a two-attribute relation.
enum class IndexChoice {
  kJoint,     ///< one 2-D R*-tree over (x, y)
  kSeparate,  ///< two 1-D R*-trees
  kXOnly,     ///< a single 1-D R*-tree on x
  kYOnly,     ///< a single 1-D R*-tree on y
};

const char* IndexChoiceName(IndexChoice choice);

/// The advisor's findings.
struct AdvisorReport {
  IndexChoice recommendation = IndexChoice::kJoint;

  struct Candidate {
    IndexChoice choice;
    uint64_t total_accesses = 0;  ///< replayed workload cost in page reads
  };
  std::vector<Candidate> candidates;  ///< sorted, cheapest first

  // Workload shape.
  size_t queries_both = 0;
  size_t queries_x_only = 0;
  size_t queries_y_only = 0;

  /// §3.2 signal: true when x and y are independent in every sampled
  /// tuple (separate indexing loses little information then).
  bool attributes_independent = false;

  std::string ToString() const;
};

/// The paper's §3.2 observation made executable: attributes x and y are
/// independent in `rel` when they are independent in every tuple's
/// constraint store; a relational attribute is independent of everything
/// by construction.
bool AreAttributesIndependent(const Relation& rel, const std::string& x,
                              const std::string& y);

/// Replays `workload` against every candidate configuration of `rel`'s
/// attributes (`xattr`, `yattr`) and recommends the cheapest.
/// At most `sample_tuples` tuples are used for the independence probe.
Result<AdvisorReport> AdviseIndexing(
    const Relation& rel, const std::vector<BoxQuery>& workload,
    const std::string& xattr = "x", const std::string& yattr = "y",
    const Rect& domain = Rect::Make2D(-1e12, 1e12, -1e12, 1e12),
    size_t sample_tuples = 100);

}  // namespace ccdb::cqa

#endif  // CCDB_CORE_ADVISOR_H_
