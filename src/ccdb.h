#ifndef CCDB_CCDB_H_
#define CCDB_CCDB_H_

/// \file ccdb.h
/// Umbrella header: the public API of CCDB.
///
/// CCDB is a rational linear constraint database — a from-scratch C++
/// reproduction of the CQA/CDB system of "The Constraint Database
/// Framework: Lessons Learned from CQA/CDB" (ICDE 2003). See README.md for
/// the architecture overview and DESIGN.md for the paper-to-code map.

#include "constraint/conjunction.h"        // constraint tuples' formulas
#include "constraint/constraint.h"         // atomic linear constraints
#include "constraint/fourier_motzkin.h"    // projection / satisfiability
#include "constraint/linear_expr.h"        // rational linear expressions
#include "constraint/independence.h"       // variable independence (§3.2)
#include "core/access.h"                   // stored relations + access paths
#include "core/advisor.h"                  // the §5.4 index advisor
#include "core/calculus.h"                 // CQC: declarative layer over CQA
#include "core/operators.h"                // the CQA operator set
#include "core/plan.h"                     // logical plans + optimizer
#include "core/predicate.h"                // selection predicates
#include "core/spatial.h"                  // Buffer-Join / k-Nearest
#include "data/database.h"                 // the catalog
#include "data/relation.h"                 // heterogeneous relations
#include "data/schema.h"                   // schemas with the C/R flag
#include "data/tuple.h"                    // heterogeneous tuples
#include "data/value.h"                    // relational values
#include "data/workload.h"                 // the paper's workload generator
#include "geom/convert.h"                  // constraint <-> vector (§6)
#include "geom/decompose.h"                // convex decomposition
#include "geom/clip.h"                     // exact convex clipping
#include "geom/minkowski.h"                // buffers via Minkowski sums
#include "geom/polygon.h"                  // vector geometry
#include "index/rstar_tree.h"              // the R*-tree
#include "index/strategy.h"                // joint vs separate indexing
#include "lang/compile.h"                  // script -> logical plan
#include "net/client.h"                    // blocking wire-protocol client
#include "net/replica.h"                   // WAL-shipping read replicas
#include "net/resilient_client.h"          // reconnecting/retrying client
#include "net/server.h"                    // the TCP front door
#include "net/status_server.h"             // HTTP /metrics + /healthz
#include "net/wire.h"                      // binary frame + payload codecs
#include "lang/data_parser.h"              // .cdb data files
#include "lang/query.h"                    // the step-based query language
#include "num/bigint.h"                    // arbitrary-precision integers
#include "num/rational.h"                  // exact rationals
#include "obs/event_log.h"                 // structured operational events
#include "obs/exposition.h"                // Prometheus text rendering
#include "obs/metric_names.h"              // canonical metric names
#include "obs/registry.h"                  // cross-layer metrics registry
#include "obs/trace.h"                     // per-operator spans + counters
#include "obs/trace_sink.h"                // JSONL trace export
#include "service/metrics.h"               // service observability
#include "service/plan_cache.h"            // LRU plan/result cache
#include "service/query_service.h"         // concurrent query front door
#include "storage/buffer_pool.h"           // LRU cache
#include "storage/catalog.h"               // database persistence
#include "storage/fault.h"                 // crash/fault injection
#include "storage/heap_file.h"             // slotted heap files
#include "storage/serde.h"                 // tuple/schema codecs
#include "storage/pager.h"                 // the simulated disk
#include "storage/wal.h"                   // write-ahead log + recovery
#include "util/status.h"                   // Status / Result error model

#endif  // CCDB_CCDB_H_
