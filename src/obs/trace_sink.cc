#include "obs/trace_sink.h"

#include <cstdio>

namespace ccdb::obs {

void TraceSink::Emit(const TraceEvent& event) {
  std::string line = "{\"query\":\"" + JsonEscape(event.query) + "\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"latency_us\":%.3f", event.latency_us);
  line += buf;
  line += event.slow ? ",\"slow\":true" : ",\"slow\":false";
  std::snprintf(buf, sizeof(buf),
                ",\"query_id\":%llu,\"session\":%llu,\"trace_id\":%llu",
                static_cast<unsigned long long>(event.query_id),
                static_cast<unsigned long long>(event.session),
                static_cast<unsigned long long>(event.trace_id));
  line += buf;
  if (event.root != nullptr) {
    line += ",\"trace\":";
    line += event.root->ToJson();
  }
  line += '}';
  MutexLock lock(mu_);
  *out_ << line << '\n';
  out_->flush();
  ++events_;
}

uint64_t TraceSink::events() const {
  MutexLock lock(mu_);
  return events_;
}

}  // namespace ccdb::obs
