#include "obs/governance.h"

namespace ccdb::obs {

namespace internal {
thread_local ExecContext* g_exec_context = nullptr;
}  // namespace internal

ExecContext::ExecContext(const GovernanceLimits& limits,
                         std::chrono::steady_clock::time_point start,
                         std::shared_ptr<CancelFlag> cancel)
    : limits_(limits), start_(start), cancel_(std::move(cancel)) {
  if (limits_.check_stride == 0) limits_.check_stride = 1;
  if (limits_.deadline_us > 0) {
    deadline_ = start_ + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double, std::micro>(
                                 limits_.deadline_us));
  }
}

void ExecContext::FullCheck() {
  since_check_ = 0;
  if (aborting_) return;  // latched
  ++checks_;
  if (limits_.trip_at_check != 0 && checks_ >= limits_.trip_at_check &&
      kind_ != TripKind::kCancelled) {
    Trip(TripKind::kCancelled,
         "fault-injected cancellation at governance check " +
             std::to_string(checks_));
    return;
  }
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
    Trip(TripKind::kCancelled, "query cancelled");
    return;
  }
  if (limits_.deadline_us > 0 &&
      std::chrono::steady_clock::now() >= deadline_) {
    Trip(TripKind::kDeadline,
         "deadline of " + std::to_string(limits_.deadline_us / 1000.0) +
             " ms exceeded");
  }
}

void ExecContext::TripBudget(std::string detail) {
  // Budget trips truncate under allow_partial (the query keeps its result
  // so far); otherwise they abort like any other trip.
  kind_ = TripKind::kBudget;
  budget_tripped_ = true;
  detail_ = std::move(detail);
  aborting_ = !limits_.allow_partial;
}

void ExecContext::Trip(TripKind kind, std::string detail) {
  kind_ = kind;
  detail_ = std::move(detail);
  aborting_ = true;
}

Status ExecContext::trip_status() const {
  switch (kind_) {
    case TripKind::kDeadline:
      return Status::DeadlineExceeded(detail_);
    case TripKind::kBudget:
      return Status::ResourceExhausted(detail_);
    case TripKind::kCancelled:
      return Status::Cancelled(detail_);
    case TripKind::kNone:
      break;
  }
  return Status::Internal("trip_status() on an untripped context");
}

}  // namespace ccdb::obs
