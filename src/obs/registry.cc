#include "obs/registry.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <thread>

namespace ccdb::obs {

namespace {

/// A small per-thread cell index: threads spread over the cells, so
/// concurrent Add()s rarely share a cache line.
size_t ThreadCell() {
  static thread_local const size_t cell =
      std::hash<std::thread::id>()(std::this_thread::get_id()) %
      Counter::kCells;
  return cell;
}

}  // namespace

void Counter::Add(uint64_t n) {
  cells_[ThreadCell()].v.fetch_add(n, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Record(uint64_t value) {
  size_t bucket = static_cast<size_t>(std::bit_width(value));
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

uint64_t Histogram::Snapshot::PercentileUpperBound(double fraction) const {
  if (count == 0) return 0;
  auto rank = static_cast<uint64_t>(
      std::ceil(fraction * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      if (i == 0) return 0;
      if (i >= 64) return UINT64_MAX;
      return (uint64_t{1} << i) - 1;
    }
  }
  return UINT64_MAX;
}

uint64_t Histogram::Snapshot::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= kBuckets - 1 || i >= 64) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

std::array<uint64_t, Histogram::kBuckets> Histogram::Snapshot::CumulativeCounts()
    const {
  std::array<uint64_t, kBuckets> out{};
  uint64_t running = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    running += buckets[i];
    out[i] = running;
  }
  return out;
}

std::string Histogram::Snapshot::ToString() const {
  char buf[224];
  const double mean =
      count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  std::snprintf(buf, sizeof(buf),
                "%s: n=%llu, mean=%.1f, p50<=%llu, p90<=%llu, p99<=%llu, "
                "max<=%llu",
                name.c_str(), static_cast<unsigned long long>(count), mean,
                static_cast<unsigned long long>(PercentileUpperBound(0.50)),
                static_cast<unsigned long long>(PercentileUpperBound(0.90)),
                static_cast<unsigned long long>(PercentileUpperBound(0.99)),
                static_cast<unsigned long long>(PercentileUpperBound(1.0)));
  return buf;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::SetGauge(const std::string& name, uint64_t value) {
  MutexLock lock(mu_);
  gauges_[name] = value;
}

uint64_t MetricsRegistry::Snapshot::Value(const std::string& name) const {
  for (const auto& [key, value] : values) {
    if (key == name) return value;
  }
  return 0;
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot out;
  MutexLock lock(mu_);
  for (const auto& [name, counter] : counters_) {
    out.values.emplace_back(name, counter->Value());
  }
  for (const auto& [name, value] : gauges_) {
    out.values.emplace_back(name, value);
    out.gauges.insert(name);
  }
  // counters_ and gauges_ are each sorted; merge keeps the whole list
  // sorted only if names interleave — sort to be safe.
  std::sort(out.values.begin(), out.values.end());
  for (const auto& [name, histogram] : histograms_) {
    Histogram::Snapshot snap = histogram->snapshot();
    snap.name = name;
    out.histograms.push_back(std::move(snap));
  }
  return out;
}

std::string MetricsRegistry::ToString() const {
  Snapshot snap = TakeSnapshot();
  std::string out;
  for (const auto& [name, value] : snap.values) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-28s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const Histogram::Snapshot& histogram : snap.histograms) {
    out += histogram.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace ccdb::obs
