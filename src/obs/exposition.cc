#include "obs/exposition.h"

#include <chrono>
#include <cstdio>

#include "obs/metric_names.h"

namespace ccdb::obs {

namespace {

/// Wall-clock epoch seconds and the monotonic instant they were captured
/// at, fixed the first time any process gauge is published or rendered.
struct ProcessStart {
  std::chrono::steady_clock::time_point mono;
  uint64_t epoch_seconds;
};

const ProcessStart& StartInstant() {
  static const ProcessStart start = {
      std::chrono::steady_clock::now(),
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::seconds>(
                                std::chrono::system_clock::now()
                                    .time_since_epoch())
                                .count()),
  };
  return start;
}

bool ValidNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void AppendSample(std::string* out, const std::string& family,
                  uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %llu\n",
                static_cast<unsigned long long>(value));
  *out += family;
  *out += buf;
}

void AppendHeaders(std::string* out, const std::string& family,
                   const std::string& raw_name, const char* type) {
  *out += "# HELP " + family + " ccdb metric " + raw_name + "\n";
  *out += "# TYPE " + family + " ";
  *out += type;
  *out += '\n';
}

}  // namespace

const char* BuildVersion() {
#ifdef CCDB_GIT_DESCRIBE
  return CCDB_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string PrometheusName(const std::string& name) {
  std::string out = "ccdb_";
  out.reserve(name.size() + out.size());
  for (char c : name) {
    out += ValidNameChar(c) ? c : '_';
  }
  return out;
}

std::string PrometheusLabelEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void PublishProcessGauges(MetricsRegistry* registry) {
  const ProcessStart& start = StartInstant();
  const auto up = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - start.mono);
  registry->SetGauge(names::kProcessUptimeSeconds,
                     static_cast<uint64_t>(up.count()));
  registry->SetGauge(names::kProcessStartTime, start.epoch_seconds);
}

std::string RenderPrometheus(const MetricsRegistry::Snapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.values) {
    const std::string family = PrometheusName(name);
    const bool gauge = snapshot.gauges.count(name) != 0;
    AppendHeaders(&out, family, name, gauge ? "gauge" : "counter");
    AppendSample(&out, family, value);
  }
  for (const Histogram::Snapshot& hist : snapshot.histograms) {
    const std::string family = PrometheusName(hist.name);
    AppendHeaders(&out, family, hist.name, "histogram");
    // Emit buckets up to the last occupied one; the tail collapses into
    // the mandatory +Inf bucket, which always carries the total count.
    const std::array<uint64_t, Histogram::kBuckets> cumulative =
        hist.CumulativeCounts();
    size_t last = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (hist.buckets[i] != 0) last = i;
    }
    for (size_t i = 0; i <= last; ++i) {
      const uint64_t bound = Histogram::Snapshot::BucketUpperBound(i);
      if (bound == UINT64_MAX) break;  // folded into +Inf below
      char le[48];
      std::snprintf(le, sizeof(le), "_bucket{le=\"%llu\"}",
                    static_cast<unsigned long long>(bound));
      AppendSample(&out, family + le, cumulative[i]);
    }
    AppendSample(&out, family + "_bucket{le=\"+Inf\"}", hist.count);
    AppendSample(&out, family + "_sum", hist.sum);
    AppendSample(&out, family + "_count", hist.count);
  }
  return out;
}

std::string RenderBuildInfo() {
  const std::string family = PrometheusName(names::kBuildInfo);
  std::string out;
  AppendHeaders(&out, family, names::kBuildInfo, "gauge");
  out += family + "{version=\"" + PrometheusLabelEscape(BuildVersion()) +
         "\"} 1\n";
  return out;
}

}  // namespace ccdb::obs
