#ifndef CCDB_OBS_REGISTRY_H_
#define CCDB_OBS_REGISTRY_H_

/// \file registry.h
/// A lock-cheap cross-layer metrics registry.
///
/// `MetricsRegistry` is the single sink the engine's layers publish into:
/// monotone `Counter`s (sharded cache-line-padded atomics — concurrent
/// writers land on different lines and never take a lock), fixed-bucket
/// log2-scale `Histogram`s (one atomic bump per sample), and point-in-time
/// gauges. Registration (name → handle) takes a mutex once; the hot path
/// is handle-based and lock-free. Snapshots are taken without stopping
/// writers (counters are summed with relaxed loads — each value is exact
/// for quiesced writers, monotone-approximate while racing).
///
/// Every metric name must be declared in `obs/metric_names.h`, emitted
/// somewhere in `src/`, and documented in DESIGN.md ("Observability");
/// `tools/ccdb_lint.py` (a ctest) enforces all three.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace ccdb::obs {

/// A monotone counter sharded over cache-line-padded cells: concurrent
/// writers pick a cell by thread id, so increments never contend on one
/// line. Value() sums the cells.
class Counter {
 public:
  static constexpr size_t kCells = 8;

  void Add(uint64_t n = 1);
  void Increment() { Add(1); }
  uint64_t Value() const;

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kCells> cells_;
};

/// A log2-bucketed histogram of non-negative integer samples. Bucket `i`
/// holds samples whose bit width is `i` — bucket 0 is the value 0, bucket
/// i >= 1 covers [2^(i-1), 2^i - 1] — so one `Record` is a single relaxed
/// atomic increment and the value range up to 2^39 fits in 40 buckets.
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Record(uint64_t value);

  struct Snapshot {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, kBuckets> buckets{};

    /// Nearest-rank percentile, resolved to the *upper bound* of the
    /// bucket holding the rank (a conservative estimate: the true sample
    /// is <= the returned value, within a factor of 2).
    uint64_t PercentileUpperBound(double fraction) const;

    /// Largest sample value bucket `i` can hold: 0 for bucket 0,
    /// 2^i - 1 for 1 <= i < kBuckets - 1, UINT64_MAX for the overflow
    /// bucket (exposition renders it as +Inf).
    static uint64_t BucketUpperBound(size_t i);

    /// Cumulative counts: entry i is the number of samples <=
    /// BucketUpperBound(i). Monotone; the last entry equals `count`.
    std::array<uint64_t, kBuckets> CumulativeCounts() const;

    /// One line: "name: n=…, mean=…, p50<=…, p90<=…, p99<=…, max<=…".
    std::string ToString() const;
  };
  Snapshot snapshot() const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// Named counters, histograms, and gauges. Handles returned by Get* are
/// stable for the registry's lifetime; the same name always yields the
/// same handle.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or registers a counter.
  Counter* GetCounter(const std::string& name);

  /// Finds or registers a histogram.
  Histogram* GetHistogram(const std::string& name);

  /// Publishes a point-in-time value (overwrites any previous one).
  void SetGauge(const std::string& name, uint64_t value);

  struct Snapshot {
    /// Counter and gauge values, sorted by name.
    std::vector<std::pair<std::string, uint64_t>> values;
    std::vector<Histogram::Snapshot> histograms;
    /// Names in `values` that are gauges (point-in-time, may go down);
    /// everything else is a monotone counter. Exposition uses this to
    /// emit the right `# TYPE`.
    std::set<std::string> gauges;

    /// The value registered under `name`, or 0 when absent.
    uint64_t Value(const std::string& name) const;
  };
  Snapshot TakeSnapshot() const;

  /// Multi-line "name value" dump followed by histogram lines.
  std::string ToString() const;

 private:
  // The maps are guarded; the Counter/Histogram objects they own are
  // internally atomic, so handles returned by Get* are written lock-free.
  mutable Mutex mu_{"obs.registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      CCDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      CCDB_GUARDED_BY(mu_);
  std::map<std::string, uint64_t> gauges_ CCDB_GUARDED_BY(mu_);
};

}  // namespace ccdb::obs

#endif  // CCDB_OBS_REGISTRY_H_
