#ifndef CCDB_OBS_TRACE_SINK_H_
#define CCDB_OBS_TRACE_SINK_H_

/// \file trace_sink.h
/// Structured per-query trace export (JSONL).
///
/// A `TraceSink` serializes trace events — one JSON object per line — to
/// an `std::ostream`. The service layer writes an event for every
/// slow-query hit (see `ServiceOptions::slow_query_us`) and for every
/// explicit `QueryService::Trace` call, so an operator can tail the
/// stream or post-process it offline. Writes are mutex-serialized and
/// flushed per event, so concurrent workers never interleave lines.

#include <cstdint>
#include <ostream>
#include <string>

#include "obs/trace.h"
#include "util/mutex.h"

namespace ccdb::obs {

/// One exportable per-query record. The three ids are always emitted
/// (zero means "not assigned") so lines join against the `EventLog`
/// stream on `trace_id` and against `\jobs` output on `query_id`.
struct TraceEvent {
  std::string query;          ///< canonical script text
  double latency_us = 0;      ///< end-to-end latency
  bool slow = false;          ///< crossed the slow-query threshold
  uint64_t query_id = 0;      ///< service-assigned submission id
  uint64_t session = 0;       ///< owning session id
  uint64_t trace_id = 0;      ///< client-assigned trace id
  const TraceNode* root = nullptr;  ///< optional span tree
};

/// Thread-safe JSONL writer over a caller-owned stream.
class TraceSink {
 public:
  /// Writes to `out` (not owned; must outlive the sink).
  explicit TraceSink(std::ostream* out) : out_(out) {}

  /// Serializes one event as a single line and flushes.
  void Emit(const TraceEvent& event);

  /// Events written so far.
  uint64_t events() const;

 private:
  mutable Mutex mu_{"obs.trace_sink"};
  std::ostream* const out_;  // pointer fixed at construction...
  // ...but the stream itself is written only under mu_.
  uint64_t events_ CCDB_GUARDED_BY(mu_) = 0;
};

}  // namespace ccdb::obs

#endif  // CCDB_OBS_TRACE_SINK_H_
