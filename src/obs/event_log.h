#ifndef CCDB_OBS_EVENT_LOG_H_
#define CCDB_OBS_EVENT_LOG_H_

/// \file event_log.h
/// Structured fleet event export (JSONL).
///
/// An `EventLog` serializes operational events — one JSON object per
/// line — to an `std::ostream`, following the `TraceSink` pattern:
/// mutex-serialized writes, flushed per event, caller-owned stream. The
/// network edge and the service layer record connection opens/closes,
/// HELLO version skew, admission sheds, transaction conflicts, replica
/// re-syncs, and checkpoints. Every line carries a monotonic timestamp
/// (microseconds since the log was constructed) and, when known, the
/// originating connection/session/trace ids, so lines join against the
/// slow-query log on `trace_id`.

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>

#include "util/mutex.h"

namespace ccdb::obs {

/// One structured fleet event. `type` is a short stable tag — the set
/// used by the engine: "conn_open", "conn_close", "hello_skew", "shed",
/// "txn_conflict", "replica_resync", "checkpoint",
/// "txn_abort_on_disconnect" (open transaction rolled back with its
/// session), "promoted" (replica became leader under a new term), and
/// "stale_leader" (a write or ship under an outdated term was fenced).
struct Event {
  std::string type;
  uint64_t conn_id = 0;    ///< network connection id (0 = n/a)
  uint64_t session = 0;    ///< service session id (0 = n/a)
  uint64_t trace_id = 0;   ///< client-assigned trace id (0 = n/a)
  std::string detail;      ///< free-form context, may be empty
};

/// Thread-safe JSONL writer over a caller-owned stream.
class EventLog {
 public:
  /// Writes to `out` (not owned; must outlive the log).
  explicit EventLog(std::ostream* out);

  /// Serializes one event as a single line and flushes. Zero-valued ids
  /// are omitted from the line; `detail` is omitted when empty.
  void Emit(const Event& event);

  /// Events written so far.
  uint64_t events() const;

 private:
  mutable Mutex mu_{"obs.event_log"};
  std::ostream* const out_;  // pointer fixed at construction...
  // ...but the stream itself is written only under mu_.
  const std::chrono::steady_clock::time_point start_;
  uint64_t events_ CCDB_GUARDED_BY(mu_) = 0;
};

}  // namespace ccdb::obs

#endif  // CCDB_OBS_EVENT_LOG_H_
