#include "obs/event_log.h"

#include <cstdio>

#include "obs/trace.h"

namespace ccdb::obs {

EventLog::EventLog(std::ostream* out)
    : out_(out), start_(std::chrono::steady_clock::now()) {}

void EventLog::Emit(const Event& event) {
  const auto ts = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start_);
  std::string line = "{\"ts_us\":";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(ts.count()));
  line += buf;
  line += ",\"type\":\"" + JsonEscape(event.type) + "\"";
  if (event.conn_id != 0) {
    std::snprintf(buf, sizeof(buf), ",\"conn\":%llu",
                  static_cast<unsigned long long>(event.conn_id));
    line += buf;
  }
  if (event.session != 0) {
    std::snprintf(buf, sizeof(buf), ",\"session\":%llu",
                  static_cast<unsigned long long>(event.session));
    line += buf;
  }
  if (event.trace_id != 0) {
    std::snprintf(buf, sizeof(buf), ",\"trace_id\":%llu",
                  static_cast<unsigned long long>(event.trace_id));
    line += buf;
  }
  if (!event.detail.empty()) {
    line += ",\"detail\":\"" + JsonEscape(event.detail) + "\"";
  }
  line += '}';
  MutexLock lock(mu_);
  *out_ << line << '\n';
  out_->flush();
  ++events_;
}

uint64_t EventLog::events() const {
  MutexLock lock(mu_);
  return events_;
}

}  // namespace ccdb::obs
