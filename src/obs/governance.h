#ifndef CCDB_OBS_GOVERNANCE_H_
#define CCDB_OBS_GOVERNANCE_H_

/// \file governance.h
/// Per-query resource governance: deadlines, cooperative cancellation,
/// and work budgets.
///
/// CQA evaluation is worst-case explosive — Fourier–Motzkin projection can
/// square the constraint count per eliminated variable, and constraint
/// joins grow quadratically — so a production front door must be able to
/// *bound* a query, the lesson of the DEDALE and MLPQ engines. This file
/// is the substrate:
///
///  - `GovernanceLimits` are the knobs: a wall-clock deadline and budgets
///    on tuples materialized, constraints materialized, and (approximate,
///    cumulative) bytes allocated by the engine layers.
///  - `ExecContext` is one query's armed instance: it accumulates charges
///    published by the engine layers, polls the deadline and cancellation
///    flag on a stride, and *latches* a typed trip status
///    (kDeadlineExceeded / kResourceExhausted / kCancelled) the first time
///    a limit is crossed.
///  - Publication mirrors obs/trace.h exactly: a thread-local active
///    context installed by `ExecContextScope`, charge helpers that are a
///    thread-local load and a predictable branch when governance is off,
///    and `CheckGovernance()` — the cooperative check-point every
///    Status-returning engine loop calls to unwind cleanly.
///
/// Unwinding contract: value-returning constraint code (Fourier–Motzkin)
/// cannot propagate a Status, so it *bails early* when
/// `GovernanceAborting()` is set, returning a partial (wrong!) value; the
/// nearest Status-returning caller is required to call `CheckGovernance()`
/// before using such a value, which converts the latched trip into the
/// typed error and discards the garbage. Truncation (`allow_partial`) is
/// different: budget-tripped queries stop *consuming new tuples* at the
/// operator loops but never bail mid-constraint-computation, so a partial
/// result is always a sound subset of the true answer.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace ccdb::obs {

/// A query's cooperative cancellation flag, shared between the submitter
/// (who sets it) and the executing thread (who polls it).
using CancelFlag = std::atomic<bool>;

/// Governance knobs for one query. Zero always means "unlimited".
struct GovernanceLimits {
  double deadline_us = 0;         ///< wall-clock budget (queue wait included)
  uint64_t max_tuples = 0;        ///< tuples materialized across all operators
  uint64_t max_constraints = 0;   ///< constraints materialized (FM included)
  uint64_t max_memory_bytes = 0;  ///< approximate cumulative bytes allocated
  /// Budget trips truncate (stop consuming input, return a partial result
  /// flagged `truncated`) instead of failing. Deadline and cancellation
  /// always abort.
  bool allow_partial = false;
  /// Fault injection for tests (mirrors FaultInjectingPager): latch a
  /// cancellation on the Nth full governance check. 0 disables.
  uint64_t trip_at_check = 0;
  /// Full (clock + cancel flag) check every N charges. Tests set 1 for a
  /// deterministic check count; the default amortizes the clock read.
  uint32_t check_stride = 64;

  /// True when any limit, token trip, or deadline is configured.
  bool Any() const {
    return deadline_us > 0 || max_tuples > 0 || max_constraints > 0 ||
           max_memory_bytes > 0 || trip_at_check > 0;
  }
};

/// What tripped a governed query (kNone while within limits).
enum class TripKind { kNone, kDeadline, kBudget, kCancelled };

/// One query's armed governance state. Written only by the executing
/// thread (charges and checks); the cancellation flag is the single
/// cross-thread channel.
class ExecContext {
 public:
  /// `start` anchors the deadline (the service passes the enqueue time so
  /// the deadline covers queue wait). `cancel` may be null.
  ExecContext(const GovernanceLimits& limits,
              std::chrono::steady_clock::time_point start,
              std::shared_ptr<CancelFlag> cancel = nullptr);

  // --- Charges (engine publication points; cheap, strided full checks) ---

  void ChargeTuples(uint64_t n) {
    tuples_ += n;
    if (limits_.max_tuples != 0 && tuples_ > limits_.max_tuples &&
        !tripped()) {
      TripBudget("tuple budget exceeded (" + std::to_string(tuples_) +
                 " > " + std::to_string(limits_.max_tuples) + ")");
    }
    MaybeFullCheck();
  }

  void ChargeConstraints(uint64_t n) {
    constraints_ += n;
    if (limits_.max_constraints != 0 &&
        constraints_ > limits_.max_constraints && !tripped()) {
      TripBudget("constraint budget exceeded (" +
                 std::to_string(constraints_) + " > " +
                 std::to_string(limits_.max_constraints) + ")");
    }
    MaybeFullCheck();
  }

  void ChargeBytes(uint64_t n) {
    bytes_ += n;
    if (limits_.max_memory_bytes != 0 && bytes_ > limits_.max_memory_bytes &&
        !tripped()) {
      TripBudget("memory budget exceeded (~" + std::to_string(bytes_) +
                 " > " + std::to_string(limits_.max_memory_bytes) +
                 " bytes)");
    }
    MaybeFullCheck();
  }

  /// Deadline + cancellation + fault-injection poll. Called on a stride by
  /// the charge helpers and directly by `CheckGovernance()`. Latched: once
  /// aborting, later checks are no-ops; a truncating (budget) trip can
  /// still escalate to a deadline/cancel abort.
  void FullCheck();

  // --- State ---

  bool tripped() const { return kind_ != TripKind::kNone; }
  /// True when the query must unwind (any trip except a truncating one).
  bool aborting() const { return aborting_; }
  /// True when a budget tripped under allow_partial: operators stop
  /// consuming input but the result so far is still returned.
  bool truncating() const { return kind_ == TripKind::kBudget && !aborting_; }
  TripKind trip_kind() const { return kind_; }
  /// True if a budget ever tripped (sticky across an escalation to a
  /// deadline/cancel abort — the metrics layer counts both).
  bool budget_tripped() const { return budget_tripped_; }

  /// The typed error for an aborting trip (kInternal if none — callers
  /// gate on aborting()).
  Status trip_status() const;

  uint64_t checks() const { return checks_; }
  uint64_t tuples() const { return tuples_; }
  uint64_t constraints() const { return constraints_; }
  uint64_t bytes() const { return bytes_; }
  const GovernanceLimits& limits() const { return limits_; }

 private:
  void MaybeFullCheck() {
    if (++since_check_ >= limits_.check_stride) FullCheck();
  }
  void TripBudget(std::string detail);
  void Trip(TripKind kind, std::string detail);

  GovernanceLimits limits_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point deadline_;  // meaningful iff set
  std::shared_ptr<CancelFlag> cancel_;

  uint64_t tuples_ = 0;
  uint64_t constraints_ = 0;
  uint64_t bytes_ = 0;
  uint64_t checks_ = 0;
  uint32_t since_check_ = 0;

  TripKind kind_ = TripKind::kNone;
  bool aborting_ = false;
  bool budget_tripped_ = false;
  std::string detail_;
};

namespace internal {
/// The thread's active governance context; nullptr = ungoverned.
extern thread_local ExecContext* g_exec_context;
}  // namespace internal

/// The active context (nullptr when ungoverned).
inline ExecContext* ActiveExecContext() { return internal::g_exec_context; }

/// RAII installer: makes `ctx` the thread's active context for the extent
/// of one query execution (the worker wraps RunScript in one).
class ExecContextScope {
 public:
  explicit ExecContextScope(ExecContext* ctx)
      : prev_(internal::g_exec_context) {
    internal::g_exec_context = ctx;
  }
  ~ExecContextScope() { internal::g_exec_context = prev_; }

  ExecContextScope(const ExecContextScope&) = delete;
  ExecContextScope& operator=(const ExecContextScope&) = delete;

 private:
  ExecContext* prev_;
};

// --- Charge points (called by the engine layers, by the Note*() sites) ---

inline void GovernTuples(uint64_t n = 1) {
  if (ExecContext* c = internal::g_exec_context) c->ChargeTuples(n);
}
inline void GovernConstraints(uint64_t n = 1) {
  if (ExecContext* c = internal::g_exec_context) c->ChargeConstraints(n);
}
inline void GovernBytes(uint64_t n) {
  if (ExecContext* c = internal::g_exec_context) c->ChargeBytes(n);
}

/// One materialized constraint of approximately `bytes` footprint —
/// a combined constraint + memory charge with a single thread-local load
/// (Conjunction::Add is the hottest charge site).
inline void GovernanceConstraintCharge(uint64_t bytes) {
  if (ExecContext* c = internal::g_exec_context) {
    c->ChargeConstraints(1);
    c->ChargeBytes(bytes);
  }
}

/// Cheap latched-flag read for value-returning code (Fourier–Motzkin)
/// that must stop early but cannot return a Status. A caller seeing a
/// value computed while this was true must discard it (the nearest
/// Status boundary's CheckGovernance() does).
inline bool GovernanceAborting() {
  ExecContext* c = internal::g_exec_context;
  return c != nullptr && c->aborting();
}

/// True when a budget tripped under allow_partial: operator loops stop
/// consuming input and the query returns a truncated (sound-subset)
/// result.
inline bool GovernanceTruncating() {
  ExecContext* c = internal::g_exec_context;
  return c != nullptr && c->truncating();
}

/// The cooperative check-point for Status-returning layers: polls the
/// deadline/cancellation and converts an aborting trip into its typed
/// status. No-op (OK) when the thread is ungoverned.
inline Status CheckGovernance() {
  ExecContext* c = internal::g_exec_context;
  if (c == nullptr) return Status::OK();
  c->FullCheck();
  if (c->aborting()) return c->trip_status();
  return Status::OK();
}

}  // namespace ccdb::obs

#endif  // CCDB_OBS_GOVERNANCE_H_
