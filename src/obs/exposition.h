#ifndef CCDB_OBS_EXPOSITION_H_
#define CCDB_OBS_EXPOSITION_H_

/// \file exposition.h
/// Prometheus text exposition over `MetricsRegistry::Snapshot`.
///
/// Renders the registry in the Prometheus text format (version 0.0.4):
/// one `# HELP` / `# TYPE` header per family, `counter` or `gauge`
/// samples as single lines, and histograms as cumulative `_bucket{le=...}`
/// series plus `_sum` / `_count`. Dotted internal names (`query.latency_us`)
/// are mangled to the exposition charset (`ccdb_query_latency_us`), so a
/// stock scraper pointed at `GET /metrics` (see `net::StatusServer`) needs
/// no configuration. The same renderer backs the binary-protocol
/// `kMetricsSnapshot` surface — both endpoints agree by construction.

#include <string>

#include "obs/registry.h"

namespace ccdb::obs {

/// The build version stamped at configure time (CMake `git describe`),
/// or "unknown" when the tree was built without version info.
const char* BuildVersion();

/// Mangles an internal metric name into the Prometheus exposition
/// charset: prefixes `ccdb_`, maps '.' and every other character outside
/// `[a-zA-Z0-9_:]` to '_'. "query.latency_us" -> "ccdb_query_latency_us".
std::string PrometheusName(const std::string& name);

/// Escapes a label value for exposition: backslash, double-quote, and
/// newline become `\\`, `\"`, and `\n`.
std::string PrometheusLabelEscape(const std::string& value);

/// Publishes the process-identity gauges (`process.uptime_seconds`,
/// `process.start_time`) into `registry`. Uptime is measured from the
/// first call in this process (monotonic clock); start_time is the
/// wall-clock epoch seconds captured at that same moment.
void PublishProcessGauges(MetricsRegistry* registry);

/// Renders one snapshot as Prometheus text. Counters and gauges use the
/// snapshot's `gauges` set to pick `# TYPE`; histograms emit cumulative
/// log2 buckets up to the last occupied one, then `+Inf`, `_sum`, and
/// `_count`. Families are emitted in sorted-name order, so output is
/// deterministic for a quiesced registry.
std::string RenderPrometheus(const MetricsRegistry::Snapshot& snapshot);

/// Renders the build-info pseudo-metric:
/// `ccdb_build_info{version="<git describe>"} 1` with its headers. The
/// value is always 1 — the information rides in the label, per the
/// Prometheus build-info convention.
std::string RenderBuildInfo();

}  // namespace ccdb::obs

#endif  // CCDB_OBS_EXPOSITION_H_
