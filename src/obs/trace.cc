#include "obs/trace.h"

#include <cstdio>

namespace ccdb::obs {

namespace internal {
thread_local LayerCounters* g_active = nullptr;
}  // namespace internal

LayerCounters& LayerCounters::operator+=(const LayerCounters& other) {
  conjunctions += other.conjunctions;
  fm_eliminations += other.fm_eliminations;
  redundancy_culls += other.redundancy_culls;
  index_node_visits += other.index_node_visits;
  index_leaf_hits += other.index_leaf_hits;
  pages_read += other.pages_read;
  pool_hits += other.pool_hits;
  return *this;
}

LayerCounters LayerCounters::operator-(const LayerCounters& other) const {
  LayerCounters out;
  out.conjunctions = conjunctions - other.conjunctions;
  out.fm_eliminations = fm_eliminations - other.fm_eliminations;
  out.redundancy_culls = redundancy_culls - other.redundancy_culls;
  out.index_node_visits = index_node_visits - other.index_node_visits;
  out.index_leaf_hits = index_leaf_hits - other.index_leaf_hits;
  out.pages_read = pages_read - other.pages_read;
  out.pool_hits = pool_hits - other.pool_hits;
  return out;
}

bool LayerCounters::IsZero() const {
  return conjunctions == 0 && fm_eliminations == 0 && redundancy_culls == 0 &&
         index_node_visits == 0 && index_leaf_hits == 0 && pages_read == 0 &&
         pool_hits == 0;
}

std::string LayerCounters::ToString() const {
  char buf[192];
  std::snprintf(
      buf, sizeof(buf),
      "conj %llu, fm %llu, culls %llu, idx %llu/%llu, io %llu/%llu",
      static_cast<unsigned long long>(conjunctions),
      static_cast<unsigned long long>(fm_eliminations),
      static_cast<unsigned long long>(redundancy_culls),
      static_cast<unsigned long long>(index_node_visits),
      static_cast<unsigned long long>(index_leaf_hits),
      static_cast<unsigned long long>(pages_read),
      static_cast<unsigned long long>(pool_hits));
  return buf;
}

CounterScope::CounterScope() : prev_(internal::g_active) {
  internal::g_active = &counters_;
}

CounterScope::~CounterScope() {
  internal::g_active = prev_;
  if (prev_ != nullptr) *prev_ += counters_;
}

size_t TraceNode::NodeCount() const {
  size_t n = 1;
  for (const TraceNode& child : children) n += child.NodeCount();
  return n;
}

uint64_t TraceNode::SumTuplesOut() const {
  uint64_t n = tuples_out;
  for (const TraceNode& child : children) n += child.SumTuplesOut();
  return n;
}

LayerCounters TraceNode::TotalCounters() const {
  LayerCounters total = counters;
  for (const TraceNode& child : children) total += child.TotalCounters();
  return total;
}

namespace {

/// "1.23ms" / "45.6us" — microsecond values at human scale.
std::string FormatDuration(double us) {
  char buf[48];
  if (us >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", us / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", us);
  }
  return buf;
}

}  // namespace

std::string TraceNode::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += label;
  out += "  (wall ";
  out += FormatDuration(wall_us);
  out += ", self ";
  out += FormatDuration(self_us);
  char buf[96];
  std::snprintf(buf, sizeof(buf), ", in %llu, out %llu | ",
                static_cast<unsigned long long>(tuples_in),
                static_cast<unsigned long long>(tuples_out));
  out += buf;
  out += counters.ToString();
  out += ")";
  for (const TraceNode& child : children) {
    out += "\n" + child.ToString(indent + 1);
  }
  return out;
}

std::string TraceNode::ToJson() const {
  char buf[352];
  std::snprintf(
      buf, sizeof(buf),
      "\"wall_us\":%.3f,\"self_us\":%.3f,\"in\":%llu,\"out\":%llu,"
      "\"conjunctions\":%llu,\"fm_eliminations\":%llu,"
      "\"redundancy_culls\":%llu,\"index_node_visits\":%llu,"
      "\"index_leaf_hits\":%llu,\"pages_read\":%llu,\"pool_hits\":%llu",
      wall_us, self_us, static_cast<unsigned long long>(tuples_in),
      static_cast<unsigned long long>(tuples_out),
      static_cast<unsigned long long>(counters.conjunctions),
      static_cast<unsigned long long>(counters.fm_eliminations),
      static_cast<unsigned long long>(counters.redundancy_culls),
      static_cast<unsigned long long>(counters.index_node_visits),
      static_cast<unsigned long long>(counters.index_leaf_hits),
      static_cast<unsigned long long>(counters.pages_read),
      static_cast<unsigned long long>(counters.pool_hits));
  std::string out = "{\"op\":\"" + JsonEscape(label) + "\",";
  out += buf;
  if (!children.empty()) {
    out += ",\"children\":[";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i) out += ',';
      out += children[i].ToJson();
    }
    out += ']';
  }
  out += '}';
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace ccdb::obs
