#ifndef CCDB_OBS_METRIC_NAMES_H_
#define CCDB_OBS_METRIC_NAMES_H_

/// \file metric_names.h
/// The canonical list of registry metric names.
///
/// Every metric published into a `MetricsRegistry` is declared here and
/// documented in DESIGN.md ("Observability" — metric table);
/// `tools/ccdb_lint.py` (wired into ctest) fails when a name below is
/// missing from DESIGN.md or is never emitted anywhere in `src/`, so this
/// header is the single source of truth the lint greps.

namespace ccdb::obs::names {

// --- Service lifecycle (counters) ---
inline constexpr char kQueriesSubmitted[] = "queries.submitted";
inline constexpr char kQueriesRejected[] = "queries.rejected";
inline constexpr char kQueriesCompleted[] = "queries.completed";
inline constexpr char kQueriesFailed[] = "queries.failed";
inline constexpr char kQueriesSlow[] = "queries.slow";
inline constexpr char kQueriesTraced[] = "queries.traced";

// --- Engine layers (counters, drained from per-query trace contexts) ---
inline constexpr char kCqaConjunctions[] = "cqa.conjunctions";
inline constexpr char kFmEliminations[] = "fm.eliminations";
inline constexpr char kFmRedundancyCulls[] = "fm.redundancy_culls";
inline constexpr char kIndexNodeVisits[] = "index.node_visits";
inline constexpr char kIndexLeafHits[] = "index.leaf_hits";
inline constexpr char kStoragePagesRead[] = "storage.pages_read";
inline constexpr char kStoragePoolHits[] = "storage.pool_hits";

// --- Resource governance (counters) ---
inline constexpr char kGovDeadlineHits[] = "governance.deadline_hits";
inline constexpr char kGovBudgetTrips[] = "governance.budget_trips";
inline constexpr char kGovCancels[] = "governance.cancels";
inline constexpr char kGovSheds[] = "governance.sheds";
inline constexpr char kGovTruncated[] = "governance.truncated";

// --- Transactions & MVCC (counters; catalog.epoch is a gauge) ---
inline constexpr char kTxnBegins[] = "txn.begins";
inline constexpr char kTxnCommits[] = "txn.commits";
inline constexpr char kTxnRollbacks[] = "txn.rollbacks";
inline constexpr char kTxnConflicts[] = "txn.conflicts";
inline constexpr char kCatalogEpoch[] = "catalog.epoch";  // gauge

// --- Service view (gauges, published at snapshot time) ---
inline constexpr char kQueueDepth[] = "queue.depth";
inline constexpr char kQueueHighWater[] = "queue.high_water";
inline constexpr char kSessionsOpen[] = "sessions.open";
inline constexpr char kCacheHits[] = "cache.hits";
inline constexpr char kCacheMisses[] = "cache.misses";
inline constexpr char kCacheEntries[] = "cache.entries";
inline constexpr char kWalBytes[] = "wal.bytes";
inline constexpr char kWalBatches[] = "wal.batches";
inline constexpr char kWalFsyncs[] = "wal.fsyncs";
inline constexpr char kWalCheckpoints[] = "wal.checkpoints";

// --- Network edge (net::Server registry; counters unless noted) ---
inline constexpr char kNetConnectionsOpen[] = "net.connections.open";  // gauge
inline constexpr char kNetConnectionsTotal[] = "net.connections.total";
inline constexpr char kNetBytesIn[] = "net.bytes_in";
inline constexpr char kNetBytesOut[] = "net.bytes_out";
inline constexpr char kNetFramesIn[] = "net.frames_in";
inline constexpr char kNetProtocolErrors[] = "net.protocol_errors";
inline constexpr char kNetShipBatches[] = "net.ship.batches";
inline constexpr char kNetShipSnapshots[] = "net.ship.snapshots";

// --- Per-query distributions (histograms) ---
inline constexpr char kQueryLatencyUs[] = "query.latency_us";
inline constexpr char kQueryFmEliminations[] = "query.fm_eliminations";
inline constexpr char kQueryTuplesOut[] = "query.tuples_out";

}  // namespace ccdb::obs::names

#endif  // CCDB_OBS_METRIC_NAMES_H_
