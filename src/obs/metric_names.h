#ifndef CCDB_OBS_METRIC_NAMES_H_
#define CCDB_OBS_METRIC_NAMES_H_

/// \file metric_names.h
/// The canonical list of registry metric names.
///
/// Every metric published into a `MetricsRegistry` is declared here and
/// documented in DESIGN.md ("Observability" — metric table);
/// `tools/ccdb_lint.py` (wired into ctest) fails when a name below is
/// missing from DESIGN.md or is never emitted anywhere in `src/`, so this
/// header is the single source of truth the lint greps.

#include <vector>

namespace ccdb::obs::names {

// --- Service lifecycle (counters) ---
inline constexpr char kQueriesSubmitted[] = "queries.submitted";
inline constexpr char kQueriesRejected[] = "queries.rejected";
inline constexpr char kQueriesCompleted[] = "queries.completed";
inline constexpr char kQueriesFailed[] = "queries.failed";
inline constexpr char kQueriesSlow[] = "queries.slow";
inline constexpr char kQueriesTraced[] = "queries.traced";

// --- Engine layers (counters, drained from per-query trace contexts) ---
inline constexpr char kCqaConjunctions[] = "cqa.conjunctions";
inline constexpr char kFmEliminations[] = "fm.eliminations";
inline constexpr char kFmRedundancyCulls[] = "fm.redundancy_culls";
inline constexpr char kIndexNodeVisits[] = "index.node_visits";
inline constexpr char kIndexLeafHits[] = "index.leaf_hits";
inline constexpr char kStoragePagesRead[] = "storage.pages_read";
inline constexpr char kStoragePoolHits[] = "storage.pool_hits";

// --- Resource governance (counters) ---
inline constexpr char kGovDeadlineHits[] = "governance.deadline_hits";
inline constexpr char kGovBudgetTrips[] = "governance.budget_trips";
inline constexpr char kGovCancels[] = "governance.cancels";
inline constexpr char kGovSheds[] = "governance.sheds";
inline constexpr char kGovTruncated[] = "governance.truncated";

// --- Transactions & MVCC (counters; catalog.epoch is a gauge) ---
inline constexpr char kTxnBegins[] = "txn.begins";
inline constexpr char kTxnCommits[] = "txn.commits";
inline constexpr char kTxnRollbacks[] = "txn.rollbacks";
inline constexpr char kTxnConflicts[] = "txn.conflicts";
inline constexpr char kCatalogEpoch[] = "catalog.epoch";  // gauge
/// Conflicts per 1000 commit attempts (permille; gauge, computed at
/// exposition time so scrapers get a rate without delta arithmetic).
inline constexpr char kTxnConflictRate[] = "txn.conflict_rate";  // gauge
/// Retried COMMITs answered from the bounded request-id dedup table
/// (the retry re-read the original outcome; nothing re-applied).
inline constexpr char kTxnDedupHits[] = "txn.dedup_hits";
/// Open transactions rolled back because their session closed (client
/// disconnected, or the session was closed with a transaction open).
inline constexpr char kTxnAbortsOnDisconnect[] = "txn.aborts_on_disconnect";

// --- Service view (gauges, published at snapshot time) ---
inline constexpr char kQueueDepth[] = "queue.depth";
inline constexpr char kQueueHighWater[] = "queue.high_water";
inline constexpr char kSessionsOpen[] = "sessions.open";
inline constexpr char kCacheHits[] = "cache.hits";
inline constexpr char kCacheMisses[] = "cache.misses";
inline constexpr char kCacheEntries[] = "cache.entries";
inline constexpr char kWalBytes[] = "wal.bytes";
inline constexpr char kWalBatches[] = "wal.batches";
inline constexpr char kWalFsyncs[] = "wal.fsyncs";
inline constexpr char kWalCheckpoints[] = "wal.checkpoints";
inline constexpr char kWalLsn[] = "wal.lsn";  // gauge: next LSN to commit

// --- Replication health (gauges published after every sync round) ---
inline constexpr char kReplicaLagBatches[] = "replica.lag_batches";
inline constexpr char kReplicaLagBytes[] = "replica.lag_bytes";
inline constexpr char kReplicaLastApplyLsn[] = "replica.last_apply_lsn";
inline constexpr char kReplicaResyncs[] = "replica.resyncs";
/// Current sync-retry backoff in milliseconds (gauge; 0 while the leader
/// is healthy, grows exponentially — capped — while it is unreachable).
inline constexpr char kReplicaBackoffMs[] = "replica.backoff_ms";

// --- Process identity (gauges, published at exposition time) ---
inline constexpr char kProcessUptimeSeconds[] = "process.uptime_seconds";
inline constexpr char kProcessStartTime[] = "process.start_time";
/// Rendered as `ccdb_build_info{version="..."} 1` — the Prometheus
/// build-info convention (the version label carries git describe).
inline constexpr char kBuildInfo[] = "build.info";

// --- Network edge (net::Server registry; counters unless noted) ---
inline constexpr char kNetConnectionsOpen[] = "net.connections.open";  // gauge
inline constexpr char kNetConnectionsTotal[] = "net.connections.total";
inline constexpr char kNetBytesIn[] = "net.bytes_in";
inline constexpr char kNetBytesOut[] = "net.bytes_out";
inline constexpr char kNetFramesIn[] = "net.frames_in";
inline constexpr char kNetProtocolErrors[] = "net.protocol_errors";
inline constexpr char kNetShipBatches[] = "net.ship.batches";
inline constexpr char kNetShipSnapshots[] = "net.ship.snapshots";
/// Leader term this server is serving under (gauge; bumped by promotion,
/// the fencing token carried in HELLO_OK / SHIP_END / SNAPSHOT).
inline constexpr char kNetTerm[] = "net.term";

/// Times a thread entered a blocking call (WAL fsync, socket syscall)
/// while holding a ccdb lock (gauge; 0 unless built with
/// CCDB_DEADLOCK_DETECT — see util/lock_graph.h).
inline constexpr char kLockHeldOverBlock[] = "lock.held_over_block";

// --- Per-query distributions (histograms) ---
inline constexpr char kQueryLatencyUs[] = "query.latency_us";
inline constexpr char kQueryFmEliminations[] = "query.fm_eliminations";
inline constexpr char kQueryTuplesOut[] = "query.tuples_out";

/// Every name declared above, in declaration order. The exposition
/// coverage test registers each one and asserts it renders; the lint
/// cross-checks that no declared constant is missing from this list.
inline std::vector<const char*> AllMetricNames() {
  return {
      kQueriesSubmitted,  kQueriesRejected,    kQueriesCompleted,
      kQueriesFailed,     kQueriesSlow,        kQueriesTraced,
      kCqaConjunctions,   kFmEliminations,     kFmRedundancyCulls,
      kIndexNodeVisits,   kIndexLeafHits,      kStoragePagesRead,
      kStoragePoolHits,   kGovDeadlineHits,    kGovBudgetTrips,
      kGovCancels,        kGovSheds,           kGovTruncated,
      kTxnBegins,         kTxnCommits,         kTxnRollbacks,
      kTxnConflicts,      kCatalogEpoch,       kTxnConflictRate,
      kTxnDedupHits,      kTxnAbortsOnDisconnect,
      kQueueDepth,        kQueueHighWater,     kSessionsOpen,
      kCacheHits,         kCacheMisses,        kCacheEntries,
      kWalBytes,          kWalBatches,         kWalFsyncs,
      kWalCheckpoints,    kWalLsn,             kReplicaLagBatches,
      kReplicaLagBytes,   kReplicaLastApplyLsn, kReplicaResyncs,
      kReplicaBackoffMs,  kProcessUptimeSeconds, kProcessStartTime,
      kBuildInfo,         kNetConnectionsOpen, kNetConnectionsTotal,
      kNetBytesIn,        kNetBytesOut,        kNetFramesIn,
      kNetProtocolErrors, kNetShipBatches,     kNetShipSnapshots,
      kNetTerm,           kLockHeldOverBlock,  kQueryLatencyUs,
      kQueryFmEliminations, kQueryTuplesOut,
  };
}

/// Names in AllMetricNames() that are histograms (the rest are counters
/// or gauges); the coverage test uses this to register the right kind.
inline std::vector<const char*> HistogramMetricNames() {
  return {kQueryLatencyUs, kQueryFmEliminations, kQueryTuplesOut};
}

}  // namespace ccdb::obs::names

#endif  // CCDB_OBS_METRIC_NAMES_H_
