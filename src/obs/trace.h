#ifndef CCDB_OBS_TRACE_H_
#define CCDB_OBS_TRACE_H_

/// \file trace.h
/// Per-query tracing: cross-layer counters and per-operator spans.
///
/// The paper's evaluation (§5.4) is built on quantities the engine must
/// *observe about itself* — candidate tuples scanned vs. pruned, index
/// pages touched, constraint simplifications performed. This file is the
/// substrate for that observability:
///
///  - `LayerCounters` is the set of work counters every engine layer
///    publishes: the constraint layer counts Fourier–Motzkin eliminations
///    and redundancy culls, the CQA operators count constraint stores
///    materialized, the R*-tree counts node visits and leaf hits, and the
///    buffer pool counts page reads and cache hits.
///  - A *thread-local trace context* makes publication cheap and
///    race-free: `Note*` helpers bump plain (non-atomic) fields of the
///    thread's active `LayerCounters`, or do nothing when tracing is off
///    (one thread-local load and a predictable branch — the "tracing off"
///    cost). `CounterScope` installs a context for the extent of a query;
///    nested scopes fold their totals into the enclosing scope on exit.
///  - `TraceNode` is one span of an execution trace: an operator (or a
///    script statement) with wall time, tuple flow, and the counter
///    *deltas* attributable to it (exclusive of its children). The
///    executor builds a `TraceNode` tree shaped exactly like the plan;
///    `ToString` renders the EXPLAIN ANALYZE view and `ToJson` the
///    structured record a `TraceSink` exports.

#include <cstdint>
#include <string>
#include <vector>

namespace ccdb::obs {

/// Work counters published by the engine layers while a query runs.
/// Plain fields: a LayerCounters instance is only ever written by the
/// thread that installed it (see CounterScope).
struct LayerCounters {
  uint64_t conjunctions = 0;       ///< constraint stores materialized (CQA)
  uint64_t fm_eliminations = 0;    ///< Fourier–Motzkin variable eliminations
  uint64_t redundancy_culls = 0;   ///< members dropped by RemoveRedundant
  uint64_t index_node_visits = 0;  ///< R*-tree nodes loaded
  uint64_t index_leaf_hits = 0;    ///< R*-tree leaf entries matched
  uint64_t pages_read = 0;         ///< buffer-pool misses (simulated disk reads)
  uint64_t pool_hits = 0;          ///< buffer-pool hits

  LayerCounters& operator+=(const LayerCounters& other);
  LayerCounters operator-(const LayerCounters& other) const;
  bool IsZero() const;

  /// Compact one-line rendering, e.g.
  /// "conj 12, fm 8, culls 2, idx 3/1, io 4/2".
  std::string ToString() const;
};

namespace internal {
/// The thread's active counter sink; nullptr = tracing off.
extern thread_local LayerCounters* g_active;
}  // namespace internal

/// True when a CounterScope is installed on this thread.
inline bool TracingActive() { return internal::g_active != nullptr; }

/// Copy of the thread's running totals (zero when tracing is off).
inline LayerCounters ActiveSnapshot() {
  return internal::g_active != nullptr ? *internal::g_active
                                       : LayerCounters{};
}

// --- Publication points (called by the engine layers) ---

inline void NoteConjunction() {
  if (internal::g_active != nullptr) ++internal::g_active->conjunctions;
}
inline void NoteFmElimination() {
  if (internal::g_active != nullptr) ++internal::g_active->fm_eliminations;
}
inline void NoteRedundancyCulls(uint64_t n) {
  if (internal::g_active != nullptr) {
    internal::g_active->redundancy_culls += n;
  }
}
inline void NoteIndexNodeVisit() {
  if (internal::g_active != nullptr) ++internal::g_active->index_node_visits;
}
inline void NoteIndexLeafHit() {
  if (internal::g_active != nullptr) ++internal::g_active->index_leaf_hits;
}
inline void NotePageRead() {
  if (internal::g_active != nullptr) ++internal::g_active->pages_read;
}
inline void NotePoolHit() {
  if (internal::g_active != nullptr) ++internal::g_active->pool_hits;
}

/// RAII trace context: installs a fresh LayerCounters as this thread's
/// active sink. On destruction the previous sink is restored and this
/// scope's totals are folded into it, so an outer (e.g. per-query) scope
/// stays exact when inner scopes are used for finer attribution.
class CounterScope {
 public:
  CounterScope();
  ~CounterScope();

  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;

  /// The running totals recorded since construction.
  const LayerCounters& counters() const { return counters_; }

 private:
  LayerCounters counters_;
  LayerCounters* prev_;
};

/// One span of an execution trace: a plan operator or script statement,
/// with the time, tuple flow, and counter deltas attributable to it.
struct TraceNode {
  std::string label;        ///< operator description / statement text
  double wall_us = 0;       ///< inclusive of children
  double self_us = 0;       ///< wall_us minus the children's wall time
  uint64_t tuples_in = 0;   ///< summed input cardinality (0 for leaves)
  uint64_t tuples_out = 0;  ///< output cardinality
  LayerCounters counters;   ///< deltas exclusive of children
  std::vector<TraceNode> children;

  /// Nodes in this subtree (including this one).
  size_t NodeCount() const;

  /// Sum of tuples_out over the whole subtree (including this node).
  uint64_t SumTuplesOut() const;

  /// Counter totals over the whole subtree.
  LayerCounters TotalCounters() const;

  /// EXPLAIN ANALYZE-style annotated tree, one node per line:
  ///   Join  (wall 12.3ms, self 9.1ms, in 120, out 45 | conj 5400, fm
  ///   2100, culls 30, idx 0/0, io 0/0)
  std::string ToString(int indent = 0) const;

  /// Compact JSON object (one line; used by TraceSink).
  std::string ToJson() const;
};

/// Escapes a string for embedding in a JSON string literal.
std::string JsonEscape(const std::string& s);

}  // namespace ccdb::obs

#endif  // CCDB_OBS_TRACE_H_
