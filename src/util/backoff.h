#ifndef CCDB_UTIL_BACKOFF_H_
#define CCDB_UTIL_BACKOFF_H_

/// \file backoff.h
/// The shared retry-backoff policy: capped exponential delay with
/// deterministic jitter.
///
/// Every retry loop in the tree — the replica's continuous-sync thread,
/// `net::ResilientClient`'s reconnect path — goes through this helper
/// instead of hand-rolling a delay (`tools/ccdb_lint.py` bans raw sleep
/// calls in `src/net/` to enforce exactly that). The policy is the
/// standard one: delay doubles per consecutive failure from `initial_ms`
/// up to `max_ms`, and each delay is jittered to a uniform value in
/// [delay/2, delay] so a fleet of retriers that failed together does not
/// retry together. Jitter comes from the deterministic `ccdb::Rng`, so a
/// seeded test observes a reproducible delay sequence.
///
/// The helper computes delays; it does not sleep. Callers that actually
/// need to block use `SleepForMs`, the sanctioned sleep entry point.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "util/random.h"

namespace ccdb {

/// Tuning knobs of a `Backoff`.
struct BackoffOptions {
  double initial_ms = 1;  ///< first-failure delay (pre-jitter)
  double max_ms = 1000;   ///< delay cap (pre-jitter)
  uint64_t seed = 42;     ///< jitter PRNG seed (determinism for tests)
};

/// Capped exponential backoff with jitter. Not thread-safe; each retry
/// loop owns one.
class Backoff {
 public:
  explicit Backoff(BackoffOptions options = {})
      : options_(options), rng_(options.seed) {}

  /// The delay to wait before the next attempt, advancing the schedule:
  /// jittered `min(initial * 2^failures, max)`. Call once per failure.
  double NextDelayMs() {
    const double base = std::min(
        options_.max_ms,
        options_.initial_ms * static_cast<double>(uint64_t{1} << std::min(
                                  attempts_, uint64_t{40})));
    ++attempts_;
    // Jitter into [base/2, base]: never collapses to zero, never exceeds
    // the cap.
    return base * (0.5 + 0.5 * rng_.UniformDouble());
  }

  /// Forgets accumulated failures (call after a success).
  void Reset() { attempts_ = 0; }

  /// Consecutive failures recorded since the last Reset().
  uint64_t attempts() const { return attempts_; }

 private:
  BackoffOptions options_;
  Rng rng_;
  uint64_t attempts_ = 0;
};

/// Blocks the calling thread for `ms` milliseconds. The one sanctioned
/// sleep for retry/poll loops: `src/net/` code must call this (or a
/// condition variable) rather than a raw sleep, so every delay is
/// greppable and lintable.
inline void SleepForMs(double ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace ccdb

#endif  // CCDB_UTIL_BACKOFF_H_
