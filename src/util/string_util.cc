#include "util/string_util.h"

#include <algorithm>
#include <cctype>

namespace ccdb {

namespace {
bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view TrimView(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && IsSpace(s[begin])) ++begin;
  while (end > begin && IsSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> out = Split(s, sep);
  for (std::string& piece : out) piece = Trim(piece);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace ccdb
