#ifndef CCDB_UTIL_THREAD_ANNOTATIONS_H_
#define CCDB_UTIL_THREAD_ANNOTATIONS_H_

/// \file thread_annotations.h
/// Clang Thread Safety Analysis attribute macros.
///
/// These macros let the locking contract of a structure be stated in its
/// declaration — which fields a mutex guards (`CCDB_GUARDED_BY`), which
/// methods require a lock already held (`CCDB_REQUIRES`), which functions
/// acquire or release one (`CCDB_ACQUIRE` / `CCDB_RELEASE`) — so that an
/// off-lock access is a *compile error* under Clang's `-Wthread-safety`
/// instead of a data race TSan may or may not catch at runtime. The
/// project builds with `-Werror=thread-safety` when the compiler is Clang
/// (see the top-level CMakeLists.txt) and `tools/check_thread_safety.sh`
/// pins the enforcement with a deliberate-violation compile-fail check.
///
/// On compilers without the analysis (GCC) every macro expands to nothing,
/// so annotated code is portable. Use the `ccdb::Mutex` / `ccdb::SharedMutex`
/// wrappers from `util/mutex.h` — raw `std::mutex` cannot carry a
/// capability attribute and is banned in `src/` by `tools/ccdb_lint.py`.

#if defined(__clang__)
#define CCDB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CCDB_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability (e.g. a mutex class).
#define CCDB_CAPABILITY(x) CCDB_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define CCDB_SCOPED_CAPABILITY CCDB_THREAD_ANNOTATION_(scoped_lockable)

/// The declared field may only be accessed while holding capability `x`.
#define CCDB_GUARDED_BY(x) CCDB_THREAD_ANNOTATION_(guarded_by(x))

/// The data *pointed to* by the declared field is guarded by `x`.
#define CCDB_PT_GUARDED_BY(x) CCDB_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock detection). The arguments name
/// mutex members of the *same* class; together with CCDB_LOCK_ORDER they
/// declare the project lock DAG that `tools/lock_order_lint.py` parses,
/// cycle-checks, and cross-checks against the runtime-observed graph
/// (util/lock_graph.h).
#define CCDB_ACQUIRED_BEFORE(...) \
  CCDB_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define CCDB_ACQUIRED_AFTER(...) \
  CCDB_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Cross-class lock-ordering declaration, by *registered* lock-graph
/// names (the string a mutex is constructed with): this lock is acquired
/// before each listed name. Clang's attributes cannot reference another
/// class's private member, so these edges are declared in a form only
/// the lint reads — the macro expands to nothing on every compiler:
///
///   mutable Mutex commit_mu_ CCDB_LOCK_ORDER("storage.store")
///       {"service.commit"};
#define CCDB_LOCK_ORDER(...)

/// The function may only be called while holding the capabilities
/// (exclusively / shared); it does not acquire or release them.
#define CCDB_REQUIRES(...) \
  CCDB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define CCDB_REQUIRES_SHARED(...) \
  CCDB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (exclusively / shared) and holds
/// it on return.
#define CCDB_ACQUIRE(...) \
  CCDB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define CCDB_ACQUIRE_SHARED(...) \
  CCDB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (which must be held on entry).
#define CCDB_RELEASE(...) \
  CCDB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define CCDB_RELEASE_SHARED(...) \
  CCDB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
/// Releases a capability held in either mode (scoped shared guards).
#define CCDB_RELEASE_GENERIC(...) \
  CCDB_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// The function tries to acquire; the first argument is the return value
/// meaning success.
#define CCDB_TRY_ACQUIRE(...) \
  CCDB_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define CCDB_TRY_ACQUIRE_SHARED(...) \
  CCDB_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// The function must be called while *not* holding the capabilities
/// (non-reentrancy declaration).
#define CCDB_EXCLUDES(...) CCDB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code paths the
/// analysis cannot follow).
#define CCDB_ASSERT_CAPABILITY(x) \
  CCDB_THREAD_ANNOTATION_(assert_capability(x))
#define CCDB_ASSERT_SHARED_CAPABILITY(x) \
  CCDB_THREAD_ANNOTATION_(assert_shared_capability(x))

/// The function returns a reference to the given capability.
#define CCDB_RETURN_CAPABILITY(x) CCDB_THREAD_ANNOTATION_(lock_returned(x))

/// Opts a function out of the analysis (use sparingly; say why).
#define CCDB_NO_THREAD_SAFETY_ANALYSIS \
  CCDB_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // CCDB_UTIL_THREAD_ANNOTATIONS_H_
