#ifndef CCDB_UTIL_STRING_UTIL_H_
#define CCDB_UTIL_STRING_UTIL_H_

/// \file string_util.h
/// Small string helpers shared by the parsers and printers.

#include <string>
#include <string_view>
#include <vector>

namespace ccdb {

/// Returns `s` with ASCII whitespace removed from both ends.
std::string_view TrimView(std::string_view s);

/// Returns a trimmed copy of `s`.
std::string Trim(std::string_view s);

/// Splits `s` on `sep`, trimming each piece; empty pieces are kept.
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

/// Splits `s` on `sep` without trimming.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// True if `s` begins with `prefix` (case-sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `a` equals `b` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

}  // namespace ccdb

#endif  // CCDB_UTIL_STRING_UTIL_H_
