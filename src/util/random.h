#ifndef CCDB_UTIL_RANDOM_H_
#define CCDB_UTIL_RANDOM_H_

/// \file random.h
/// Deterministic pseudo-random source for workload generation.
///
/// The paper's indexing experiments (§5.4) use randomly generated data and
/// query rectangles. The original random files are not published, so CCDB
/// regenerates them from fixed seeds; a self-contained splitmix64/
/// xoshiro256** generator keeps the streams identical across platforms and
/// standard-library versions (std::mt19937 would too, but distributions are
/// not portable).

#include <cstdint>

namespace ccdb {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams on any platform.
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) state_[i] = SplitMix64(&x);
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    // Unbiased rejection sampling (Lemire-style bound check kept simple:
    // span is tiny relative to 2^64 in all CCDB workloads).
    const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % span);
    uint64_t v = Next();
    while (v >= limit) v = Next();
    return lo + static_cast<int64_t>(v % span);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  static uint64_t Rotl(uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace ccdb

#endif  // CCDB_UTIL_RANDOM_H_
