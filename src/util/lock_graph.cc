/// \file lock_graph.cc
/// Runtime lock-order deadlock detector internals. Compiled to an empty
/// translation unit unless CCDB_DEADLOCK_DETECT is defined.
///
/// lint exemptions (this file is allow-listed in tools/ccdb_lint.py):
/// the instrumentation layer cannot instrument itself, so its internal
/// lock is a raw std::mutex (a leaf held only inside hooks, never while
/// calling user code); and a detected cycle is reported on stderr and
/// aborts the process — a deadlock diagnosis has no Status channel to
/// unwind through, and continuing would eventually hang for real.

#include "util/lock_graph.h"

#if defined(CCDB_DEADLOCK_DETECT)

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unistd.h>
#include <vector>

namespace ccdb::lock_graph {
namespace {

struct Edge {
  uint64_t count = 0;
  bool try_only = true;  ///< every recording so far came from TryLock
  /// First witness: the hold-stack (lock names, outermost first, the
  /// acquired lock last) and thread index that first recorded the edge.
  std::vector<std::string> witness_stack;
  int witness_thread = 0;
};

struct HeldOverBlock {
  uint64_t count = 0;
  std::vector<std::string> held;  ///< named locks held at the first hit
};

struct Graph {
  std::mutex mu;
  std::map<std::string, LockNode*> nodes;
  /// Adjacency + witness info, keyed (from, to) by node pointer order.
  std::map<std::pair<const LockNode*, const LockNode*>, Edge> edges;
  std::map<const LockNode*, std::set<const LockNode*>> adj;
  std::map<std::string, HeldOverBlock> blocked_sites;
  int next_thread_index = 1;
};

Graph& graph() {
  static Graph* g = new Graph();  // intentionally leaked: alive at exit
  return *g;
}

std::atomic<bool> g_enabled{true};
std::atomic<uint64_t> g_edge_count{0};
std::atomic<uint64_t> g_held_over_block{0};

struct Held {
  const void* instance;
  const LockNode* node;  ///< null for anonymous locks
  Mode mode;
};

struct ThreadState {
  std::vector<Held> held;
  /// Edge pairs this thread has already pushed into the global graph —
  /// the fast path that keeps repeat acquisitions off the graph mutex.
  std::set<std::pair<const LockNode*, const LockNode*>> seen;
  int index = 0;
};

ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

int ThreadIndex() {
  ThreadState& t = thread_state();
  if (t.index == 0) {
    std::lock_guard<std::mutex> lock(graph().mu);
    t.index = graph().next_thread_index++;
  }
  return t.index;
}

std::vector<std::string> StackNames(const ThreadState& t,
                                    const LockNode* acquiring);

}  // namespace

struct LockNode {
  std::string name;
};

namespace {

/// Depth-first path search from `from` to `to` over the recorded
/// (non-try) edges. Fills `path` with the nodes along the way.
bool FindPath(const Graph& g, const LockNode* from, const LockNode* to,
              std::set<const LockNode*>* visited,
              std::vector<const LockNode*>* path) {
  if (!visited->insert(from).second) return false;
  path->push_back(from);
  if (from == to) return true;
  auto it = g.adj.find(from);
  if (it != g.adj.end()) {
    for (const LockNode* next : it->second) {
      auto edge = g.edges.find({from, next});
      if (edge != g.edges.end() && edge->second.try_only) continue;
      if (FindPath(g, next, to, visited, path)) return true;
    }
  }
  path->pop_back();
  return false;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += " -> ";
    out += n;
  }
  return out;
}

/// Prints the ABBA report — the current thread's hold-stack and the
/// recorded witness stack of every edge on the opposing path — and dies.
[[noreturn]] void ReportCycleAndAbort(const Graph& g, const ThreadState& t,
                                      const LockNode* holding,
                                      const LockNode* acquiring,
                                      const std::vector<const LockNode*>& path) {
  std::fprintf(stderr,
               "\n=== ccdb lock-order violation (deadlock detector) ===\n"
               "acquiring \"%s\" while holding \"%s\" closes a cycle in the "
               "acquisition-order graph.\n\n"
               "this thread (t%d) holds: [%s], acquiring \"%s\"\n\n"
               "conflicting acquisition order previously observed:\n",
               acquiring->name.c_str(), holding->name.c_str(),
               t.index == 0 ? -1 : t.index,
               JoinNames(StackNames(t, nullptr)).c_str(),
               acquiring->name.c_str());
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    auto it = g.edges.find({path[i], path[i + 1]});
    if (it == g.edges.end()) continue;
    const Edge& e = it->second;
    std::fprintf(stderr,
                 "  edge \"%s\" -> \"%s\" first recorded by thread t%d with "
                 "hold-stack [%s] (seen %llu time%s)\n",
                 path[i]->name.c_str(), path[i + 1]->name.c_str(),
                 e.witness_thread, JoinNames(e.witness_stack).c_str(),
                 static_cast<unsigned long long>(e.count),
                 e.count == 1 ? "" : "s");
  }
  std::fprintf(stderr,
               "\nfix: make every code path agree on one order for these "
               "locks, then declare it (CCDB_ACQUIRED_BEFORE / "
               "CCDB_LOCK_ORDER) so tools/lock_order_lint.py pins it.\n"
               "=====================================================\n");
  std::fflush(stderr);
  std::abort();
}

std::vector<std::string> StackNames(const ThreadState& t,
                                    const LockNode* acquiring) {
  std::vector<std::string> out;
  for (const Held& h : t.held) {
    out.push_back(h.node ? h.node->name : "<anon>");
  }
  if (acquiring) out.push_back(acquiring->name);
  return out;
}

/// Records edges from every held named lock to `node`; `check_cycles`
/// distinguishes blocking acquisitions (abort on cycle) from try-locks.
void RecordEdges(const LockNode* node, bool check_cycles) {
  ThreadState& t = thread_state();
  // Collect the distinct held named nodes whose edge to `node` this
  // thread has not pushed yet.
  std::vector<const LockNode*> missing;
  for (const Held& h : t.held) {
    if (h.node == nullptr) continue;
    if (h.node == node) {
      if (!check_cycles) return;  // try-lock of a held rank: not a deadlock
      // Same-rank nesting: either a recursive acquisition or two
      // instances of the same lock class held at once — both are
      // rank-ambiguous and can deadlock against a sibling thread.
      std::lock_guard<std::mutex> lock(graph().mu);
      std::vector<const LockNode*> path = {node, node};
      ReportCycleAndAbort(graph(), t, h.node, node, path);
    }
    if (!t.seen.count({h.node, node}) &&
        std::find(missing.begin(), missing.end(), h.node) == missing.end()) {
      missing.push_back(h.node);
    }
  }
  if (missing.empty()) return;  // fast path: all edges already recorded

  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  if (t.index == 0) t.index = g.next_thread_index++;
  for (const LockNode* from : missing) {
    // Cycle check first: does `node` already reach `from`? Then the new
    // from -> node edge closes a loop.
    if (check_cycles) {
      std::set<const LockNode*> visited;
      std::vector<const LockNode*> path;
      if (FindPath(g, node, from, &visited, &path)) {
        ReportCycleAndAbort(g, t, from, node, path);
      }
    }
    Edge& e = g.edges[{from, node}];
    if (e.count == 0) {
      e.witness_stack = StackNames(t, node);
      e.witness_thread = t.index;
      g_edge_count.fetch_add(1, std::memory_order_relaxed);
    }
    e.count++;
    if (check_cycles) e.try_only = false;
    g.adj[from].insert(node);
    t.seen.insert({from, node});
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void AppendStringArray(std::string* out, const std::vector<std::string>& v) {
  *out += '[';
  for (size_t i = 0; i < v.size(); ++i) {
    if (i) *out += ',';
    *out += '"' + JsonEscape(v[i]) + '"';
  }
  *out += ']';
}

}  // namespace

LockNode* Register(const char* name) {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  auto it = g.nodes.find(name);
  if (it != g.nodes.end()) return it->second;
  LockNode* node = new LockNode{name};  // interned for process lifetime
  g.nodes.emplace(name, node);
  // First registration arms the at-exit JSON dump when the environment
  // asks for one (CCDB_LOCK_GRAPH_DUMP_DIR=<dir>).
  static bool armed = [] {
    const char* dir = std::getenv("CCDB_LOCK_GRAPH_DUMP_DIR");
    if (dir == nullptr || *dir == '\0') return false;
    static std::string dump_dir;
    dump_dir = dir;
    std::atexit([] { WriteDump(dump_dir); });
    return true;
  }();
  (void)armed;
  return node;
}

void OnLockAttempt(const LockNode* node) {
  if (node == nullptr || !g_enabled.load(std::memory_order_relaxed)) return;
  RecordEdges(node, /*check_cycles=*/true);
}

void OnLocked(const LockNode* node, const void* instance, Mode mode) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  thread_state().held.push_back(Held{instance, node, mode});
}

void OnTryLocked(const LockNode* node, const void* instance, Mode mode) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  if (node != nullptr) RecordEdges(node, /*check_cycles=*/false);
  thread_state().held.push_back(Held{instance, node, mode});
}

void OnReleased(const void* instance) {
  std::vector<Held>& held = thread_state().held;
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->instance == instance) {
      held.erase(std::next(it).base());
      return;
    }
  }
  // No matching entry: the lock was acquired while the detector was
  // disabled (benchmark toggling). Ignore.
}

bool HoldsLock(const void* instance) {
  for (const Held& h : thread_state().held) {
    if (h.instance == instance) return true;
  }
  return false;
}

bool HoldsLockExclusive(const void* instance) {
  for (const Held& h : thread_state().held) {
    if (h.instance == instance && h.mode == Mode::kExclusive) return true;
  }
  return false;
}

void AssertHeldFailure(const LockNode* node, const char* what) {
  const char* lock_name = node ? node->name.c_str() : "<anon>";
  ThreadState& t = thread_state();
  std::fprintf(stderr,
               "\n=== ccdb lock assertion failure ===\n"
               "%s(\"%s\") failed: the calling thread does not hold the "
               "lock.\nthread holds: [%s]\n"
               "(a CCDB_REQUIRES contract was violated — under clang this "
               "is a compile error; the deadlock detector enforces it at "
               "runtime everywhere else.)\n"
               "===================================\n",
               what, lock_name, JoinNames(StackNames(t, nullptr)).c_str());
  std::fflush(stderr);
  std::abort();
}

void NoteBlockingCall(const char* site) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  ThreadState& t = thread_state();
  std::vector<std::string> named;
  for (const Held& h : t.held) {
    if (h.node != nullptr) named.push_back(h.node->name);
  }
  if (named.empty()) return;
  g_held_over_block.fetch_add(1, std::memory_order_relaxed);
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  HeldOverBlock& rec = g.blocked_sites[site];
  if (rec.count == 0) rec.held = named;
  rec.count++;
}

uint64_t HeldOverBlockCount() {
  return g_held_over_block.load(std::memory_order_relaxed);
}

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

uint64_t EdgeCount() { return g_edge_count.load(std::memory_order_relaxed); }

std::string DumpJson() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  std::string out = "{\"pid\":" + std::to_string(::getpid());
  out += ",\"nodes\":[";
  bool first = true;
  for (const auto& [name, node] : g.nodes) {
    (void)node;
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + '"';
  }
  out += "],\"edges\":[";
  first = true;
  for (const auto& [key, edge] : g.edges) {
    if (!first) out += ',';
    first = false;
    out += "{\"from\":\"" + JsonEscape(key.first->name) + "\",\"to\":\"" +
           JsonEscape(key.second->name) +
           "\",\"count\":" + std::to_string(edge.count) +
           ",\"try_only\":" + (edge.try_only ? "true" : "false") +
           ",\"witness_thread\":" + std::to_string(edge.witness_thread) +
           ",\"witness_stack\":";
    AppendStringArray(&out, edge.witness_stack);
    out += '}';
  }
  out += "],\"held_over_block\":[";
  first = true;
  for (const auto& [site, rec] : g.blocked_sites) {
    if (!first) out += ',';
    first = false;
    out += "{\"site\":\"" + JsonEscape(site) +
           "\",\"count\":" + std::to_string(rec.count) + ",\"held\":";
    AppendStringArray(&out, rec.held);
    out += '}';
  }
  out += "],\"held_over_block_total\":" +
         std::to_string(g_held_over_block.load(std::memory_order_relaxed));
  out += '}';
  return out;
}

bool WriteDump(const std::string& dir) {
  static std::atomic<uint64_t> seq{0};
  const std::string path = dir + "/lockgraph." + std::to_string(::getpid()) +
                           "." + std::to_string(seq.fetch_add(1)) + ".json";
  const std::string json = DumpJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace ccdb::lock_graph

#endif  // CCDB_DEADLOCK_DETECT
