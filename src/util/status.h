#ifndef CCDB_UTIL_STATUS_H_
#define CCDB_UTIL_STATUS_H_

/// \file status.h
/// Error-handling primitives for CCDB.
///
/// Library boundaries never throw: fallible operations return a `Status`
/// (when there is no payload) or a `Result<T>` (when there is). This mirrors
/// the Status/Result idiom of production database codebases and keeps the
/// query-evaluation hot path exception-free.
///
/// Both types are `[[nodiscard]]` and the tree builds with
/// `-Werror=unused-result`: a call site cannot silently drop an error and
/// keep an unsound result (the closure principle lives or dies on every
/// operator's Status actually being checked). The rare *intentional*
/// discard goes through `IgnoreError(...)` so it is explicit and greppable.

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace ccdb {

/// Machine-readable error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< named entity (relation, attribute, ...) absent
  kAlreadyExists,     ///< uniqueness violated (e.g. duplicate relation name)
  kOutOfRange,        ///< index/position outside valid bounds
  kUnsupported,       ///< operation valid in general, not for these inputs
  kParseError,        ///< query/data text did not parse
  kIoError,           ///< simulated-storage failure
  kUnavailable,       ///< transient refusal (queue full, shutting down)
  kInternal,          ///< invariant violation; indicates a CCDB bug
  kCancelled,          ///< caller (or shutdown) cancelled the operation
  kDeadlineExceeded,   ///< wall-clock deadline expired before completion
  kResourceExhausted,  ///< a tuple/constraint/memory budget was exceeded
  kFailedPrecondition,  ///< system state rejects the call (stale leader term)
};

/// Human-readable name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation with no payload.
///
/// `Status::OK()` is the success value; every other status carries a code
/// and a message. Statuses are cheap to copy (success carries no allocation).
class [[nodiscard]] Status {
 public:
  /// Constructs a success status.
  Status() = default;

  /// Constructs a failure status; `code` must not be kOk.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  /// Returns the success status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Attaches a machine-readable backoff hint (overload shedding: how
  /// long a client should wait before retrying). Returns *this so a
  /// factory call can be decorated inline.
  Status& WithRetryAfter(int64_t ms) {
    retry_after_ms_ = ms;
    return *this;
  }

  /// Backoff hint in milliseconds; 0 when none was attached.
  int64_t retry_after_ms() const { return retry_after_ms_; }

  /// "OK" or "<CodeName>: <message>" (plus the retry hint when present).
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  int64_t retry_after_ms_ = 0;
};

/// Outcome of a fallible operation that yields a `T` on success.
///
/// A `Result<T>` holds either a value or a non-OK `Status`. Accessing the
/// value of a failed result is a programming error (assert in debug builds).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Success: wraps a value. Implicit by design so functions can
  /// `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Failure: wraps a non-OK status. Implicit so functions can
  /// `return Status::...;`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a failure status");
  }

  bool ok() const { return value_.has_value(); }

  /// The status: OK if a value is present.
  const Status& status() const { return status_; }

  /// The value; requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

// --- Wire serialization -----------------------------------------------------
//
// A `Status` must survive a process boundary intact: the network edge
// (src/net/) reports every failure as a serialized status, and governance's
// admission control is only useful remotely if `retry_after_ms()` crosses
// the wire with the code and message. The encoding is little-endian
// [u32 code][u64 retry_after_ms][u32 msg_len][msg bytes] — self-contained
// (no dependency on the storage serde) so util stays a leaf.

/// Longest message EncodeStatus preserves; longer messages are truncated
/// with a marker. Bounds what a hostile or buggy peer can make us allocate.
inline constexpr size_t kMaxStatusMessageBytes = 4096;

/// Serializes a status (code, message, retry hint) to its wire form.
/// Messages beyond `kMaxStatusMessageBytes` are truncated with a trailing
/// "...". OK statuses encode too (code 0, empty message).
std::string EncodeStatus(const Status& status);

/// Parses a wire-form status into `*out`. Returns kInvalidArgument on
/// short input, trailing garbage, an out-of-range code, a field set an
/// in-process Status cannot carry (kOk with a message or retry hint), or
/// a message length beyond `kMaxStatusMessageBytes`. (Not `Result<Status>`:
/// that instantiation would make the value and error constructors
/// ambiguous.)
Status DecodeStatus(const std::string& bytes, Status* out);

/// Round-trips a status through the wire encoding, so in-process callers
/// (e.g. the worker exception barrier) observe exactly what a network
/// client would: same truncation, same field set. Encode/decode of a
/// locally constructed status cannot fail; this asserts that.
Status NormalizeStatusForWire(const Status& status);

/// Explicitly discards a `Status` (or `Result<T>`) that is intentionally
/// ignored — e.g. best-effort rollback where the original error is the one
/// being reported. `[[nodiscard]]` + `-Werror=unused-result` makes a bare
/// discard a build break; this is the sanctioned, greppable escape hatch
/// (`tools/ccdb_lint.py` bans `(void)`-casting a call away instead).
inline void IgnoreError(const Status&) {}
template <typename T>
void IgnoreError(const Result<T>&) {}

/// Propagates a failure status from an expression producing `Status`.
#define CCDB_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::ccdb::Status _ccdb_status = (expr);         \
    if (!_ccdb_status.ok()) return _ccdb_status;  \
  } while (false)

/// Evaluates `rexpr` (a Result<T>), propagating failure or binding the
/// value into `lhs`.
#define CCDB_ASSIGN_OR_RETURN(lhs, rexpr)              \
  CCDB_ASSIGN_OR_RETURN_IMPL_(                         \
      CCDB_STATUS_CONCAT_(_ccdb_result, __LINE__), lhs, rexpr)

#define CCDB_STATUS_CONCAT_INNER_(a, b) a##b
#define CCDB_STATUS_CONCAT_(a, b) CCDB_STATUS_CONCAT_INNER_(a, b)
#define CCDB_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

}  // namespace ccdb

#endif  // CCDB_UTIL_STATUS_H_
