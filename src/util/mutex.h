#ifndef CCDB_UTIL_MUTEX_H_
#define CCDB_UTIL_MUTEX_H_

/// \file mutex.h
/// Annotated lock primitives — the only mutexes allowed in `src/`.
///
/// `ccdb::Mutex` and `ccdb::SharedMutex` wrap the standard mutexes with
/// Clang Thread Safety Analysis capability attributes, and the RAII guards
/// (`MutexLock`, `ReaderLock`, `WriterLock`) carry the matching
/// acquire/release annotations — so every `CCDB_GUARDED_BY` field access
/// is machine-checked against the locking contract at compile time under
/// Clang (`-Werror=thread-safety`), and compiles identically (as plain
/// `std::mutex` / `std::shared_mutex`) everywhere else.
///
/// `tools/ccdb_lint.py` bans raw `std::mutex` / `std::lock_guard` /
/// `std::condition_variable` in `src/` outside this header, and
/// `tools/check_thread_safety.sh` asserts that an off-lock access to an
/// annotated field really is a build break.

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace ccdb {

class CondVar;

/// An exclusive mutex carrying a thread-safety capability.
class CCDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CCDB_ACQUIRE() { mu_.lock(); }
  void Unlock() CCDB_RELEASE() { mu_.unlock(); }
  bool TryLock() CCDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // CondVar::Wait needs the native handle
  std::mutex mu_;
};

/// A reader-writer mutex carrying a thread-safety capability.
class CCDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() CCDB_ACQUIRE() { mu_.lock(); }
  void Unlock() CCDB_RELEASE() { mu_.unlock(); }
  void ReaderLock() CCDB_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() CCDB_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive guard over a `Mutex`.
class CCDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CCDB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() CCDB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII shared (read) guard over a `SharedMutex`.
class CCDB_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) CCDB_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderLock() CCDB_RELEASE_GENERIC() { mu_.ReaderUnlock(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (write) guard over a `SharedMutex`.
class CCDB_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) CCDB_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() CCDB_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// A condition variable bound to `ccdb::Mutex`.
///
/// `Wait` takes the *mutex* (which the caller must hold, and holds again
/// on return), not a guard object, so waiting loops keep their guarded
/// reads inside the annotated caller:
///
///     MutexLock lock(mu_);
///     while (!ready_) cv_.Wait(mu_);   // ready_ is CCDB_GUARDED_BY(mu_)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. Spurious wakeups happen: always wait in a predicate loop.
  void Wait(Mutex& mu) CCDB_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // the caller's guard still owns the lock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ccdb

#endif  // CCDB_UTIL_MUTEX_H_
