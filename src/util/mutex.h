#ifndef CCDB_UTIL_MUTEX_H_
#define CCDB_UTIL_MUTEX_H_

/// \file mutex.h
/// Annotated lock primitives — the only mutexes allowed in `src/`.
///
/// `ccdb::Mutex` and `ccdb::SharedMutex` wrap the standard mutexes with
/// Clang Thread Safety Analysis capability attributes, and the RAII guards
/// (`MutexLock`, `ReaderLock`, `WriterLock`) carry the matching
/// acquire/release annotations — so every `CCDB_GUARDED_BY` field access
/// is machine-checked against the locking contract at compile time under
/// Clang (`-Werror=thread-safety`), and compiles identically (as plain
/// `std::mutex` / `std::shared_mutex`) everywhere else.
///
/// Lock-order analysis: a mutex constructed with a name —
/// `Mutex mu_{"service.queue"}`, string literal required — is a node in
/// the lock-order graph. Under the `CCDB_DEADLOCK_DETECT` build option
/// (see util/lock_graph.h) every acquisition records acquisition-order
/// edges and aborts, with both conflicting hold-stacks, on the first
/// acquisition that closes a cycle; `tools/lock_order_lint.py` is the
/// static half, cross-checking the observed edges against the DAG
/// declared with `CCDB_ACQUIRED_BEFORE` / `CCDB_LOCK_ORDER`. In a normal
/// build the name is discarded and every hook compiles to nothing.
///
/// `AssertHeld()` / `AssertReaderHeld()` make `CCDB_REQUIRES` contracts
/// real off-Clang: under the detector they verify the calling thread
/// actually holds the lock (abort with the held stack otherwise); in a
/// normal build they are empty inlines that still carry the
/// `CCDB_ASSERT_CAPABILITY` annotation for the Clang analysis.
///
/// `tools/ccdb_lint.py` bans raw `std::mutex` / `std::lock_guard` /
/// `std::condition_variable` in `src/` outside this header (and the
/// detector's own internals in util/lock_graph.cc), and
/// `tools/check_thread_safety.sh` asserts that an off-lock access to an
/// annotated field really is a build break.

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/lock_graph.h"
#include "util/thread_annotations.h"

namespace ccdb {

class CondVar;

/// An exclusive mutex carrying a thread-safety capability.
class CCDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// Registers the mutex in the lock-order graph under `name` (string
  /// literal / static storage required). Instances sharing a name share a
  /// rank: the detector treats them as one node.
  explicit Mutex(const char* name);
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CCDB_ACQUIRE();
  void Unlock() CCDB_RELEASE();
  bool TryLock() CCDB_TRY_ACQUIRE(true);

  /// Runtime REQUIRES enforcement: aborts (with the thread's held stack)
  /// when the calling thread does not hold this mutex. No-op without the
  /// detector; under Clang it doubles as an analysis assertion.
  void AssertHeld() const CCDB_ASSERT_CAPABILITY(this);

 private:
  friend class CondVar;  // CondVar::Wait needs the native handle
  std::mutex mu_;
#if defined(CCDB_DEADLOCK_DETECT)
  lock_graph::LockNode* node_ = nullptr;
#endif
};

/// A reader-writer mutex carrying a thread-safety capability.
class CCDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  /// See Mutex(const char*).
  explicit SharedMutex(const char* name);
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() CCDB_ACQUIRE();
  void Unlock() CCDB_RELEASE();
  void ReaderLock() CCDB_ACQUIRE_SHARED();
  void ReaderUnlock() CCDB_RELEASE_SHARED();

  /// Aborts unless the calling thread holds the lock exclusively.
  void AssertHeld() const CCDB_ASSERT_CAPABILITY(this);
  /// Aborts unless the calling thread holds the lock (either mode).
  void AssertReaderHeld() const CCDB_ASSERT_SHARED_CAPABILITY(this);

 private:
  std::shared_mutex mu_;
#if defined(CCDB_DEADLOCK_DETECT)
  lock_graph::LockNode* node_ = nullptr;
#endif
};

#if defined(CCDB_DEADLOCK_DETECT)

inline Mutex::Mutex(const char* name) : node_(lock_graph::Register(name)) {}

inline void Mutex::Lock() {
  lock_graph::OnLockAttempt(node_);
  mu_.lock();
  lock_graph::OnLocked(node_, this, lock_graph::Mode::kExclusive);
}

inline void Mutex::Unlock() {
  lock_graph::OnReleased(this);
  mu_.unlock();
}

inline bool Mutex::TryLock() {
  if (!mu_.try_lock()) return false;
  lock_graph::OnTryLocked(node_, this, lock_graph::Mode::kExclusive);
  return true;
}

inline void Mutex::AssertHeld() const {
  if (lock_graph::Enabled() && !lock_graph::HoldsLockExclusive(this)) {
    lock_graph::AssertHeldFailure(node_, "Mutex::AssertHeld");
  }
}

inline SharedMutex::SharedMutex(const char* name)
    : node_(lock_graph::Register(name)) {}

inline void SharedMutex::Lock() {
  lock_graph::OnLockAttempt(node_);
  mu_.lock();
  lock_graph::OnLocked(node_, this, lock_graph::Mode::kExclusive);
}

inline void SharedMutex::Unlock() {
  lock_graph::OnReleased(this);
  mu_.unlock();
}

inline void SharedMutex::ReaderLock() {
  lock_graph::OnLockAttempt(node_);
  mu_.lock_shared();
  lock_graph::OnLocked(node_, this, lock_graph::Mode::kShared);
}

inline void SharedMutex::ReaderUnlock() {
  lock_graph::OnReleased(this);
  mu_.unlock_shared();
}

inline void SharedMutex::AssertHeld() const {
  if (lock_graph::Enabled() && !lock_graph::HoldsLockExclusive(this)) {
    lock_graph::AssertHeldFailure(node_, "SharedMutex::AssertHeld");
  }
}

inline void SharedMutex::AssertReaderHeld() const {
  if (lock_graph::Enabled() && !lock_graph::HoldsLock(this)) {
    lock_graph::AssertHeldFailure(node_, "SharedMutex::AssertReaderHeld");
  }
}

#else  // !CCDB_DEADLOCK_DETECT — plain std wrappers, names discarded.

inline Mutex::Mutex(const char* /*name*/) {}
inline void Mutex::Lock() { mu_.lock(); }
inline void Mutex::Unlock() { mu_.unlock(); }
inline bool Mutex::TryLock() { return mu_.try_lock(); }
inline void Mutex::AssertHeld() const {}

inline SharedMutex::SharedMutex(const char* /*name*/) {}
inline void SharedMutex::Lock() { mu_.lock(); }
inline void SharedMutex::Unlock() { mu_.unlock(); }
inline void SharedMutex::ReaderLock() { mu_.lock_shared(); }
inline void SharedMutex::ReaderUnlock() { mu_.unlock_shared(); }
inline void SharedMutex::AssertHeld() const {}
inline void SharedMutex::AssertReaderHeld() const {}

#endif  // CCDB_DEADLOCK_DETECT

/// RAII exclusive guard over a `Mutex`.
class CCDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CCDB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() CCDB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII shared (read) guard over a `SharedMutex`.
class CCDB_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) CCDB_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderLock() CCDB_RELEASE_GENERIC() { mu_.ReaderUnlock(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (write) guard over a `SharedMutex`.
class CCDB_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) CCDB_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() CCDB_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// A condition variable bound to `ccdb::Mutex`.
///
/// `Wait` takes the *mutex* (which the caller must hold, and holds again
/// on return), not a guard object, so waiting loops keep their guarded
/// reads inside the annotated caller:
///
///     MutexLock lock(mu_);
///     while (!ready_) cv_.Wait(mu_);   // ready_ is CCDB_GUARDED_BY(mu_)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires `mu` before
  /// returning. Spurious wakeups happen: always wait in a predicate loop.
  void Wait(Mutex& mu) CCDB_REQUIRES(mu) {
#if defined(CCDB_DEADLOCK_DETECT)
    // The wait releases the lock for its duration: keep the held stack
    // truthful, and treat the wakeup reacquisition as a fresh
    // acquisition so its ordering edges are recorded (reacquiring after
    // the wait cannot cycle-abort — the lock is already re-held by the
    // time the hook runs, and its rank was validated on first acquire).
    mu.AssertHeld();
    lock_graph::OnReleased(&mu);
#endif
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // the caller's guard still owns the lock
#if defined(CCDB_DEADLOCK_DETECT)
    lock_graph::OnTryLocked(mu.node_, &mu, lock_graph::Mode::kExclusive);
#endif
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ccdb

#endif  // CCDB_UTIL_MUTEX_H_
