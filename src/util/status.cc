#include "util/status.h"

namespace ccdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  if (retry_after_ms_ > 0) {
    out += " (retry after " + std::to_string(retry_after_ms_) + " ms)";
  }
  return out;
}

}  // namespace ccdb
