#include "util/status.h"

#include <cstdint>
#include <cstring>

namespace ccdb {

namespace {

constexpr uint32_t kMaxCode =
    static_cast<uint32_t>(StatusCode::kFailedPrecondition);

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  if (retry_after_ms_ > 0) {
    out += " (retry after " + std::to_string(retry_after_ms_) + " ms)";
  }
  return out;
}

std::string EncodeStatus(const Status& status) {
  std::string msg = status.message();
  if (msg.size() > kMaxStatusMessageBytes) {
    msg.resize(kMaxStatusMessageBytes - 3);
    msg += "...";
  }
  std::string out;
  out.reserve(16 + msg.size());
  AppendU32(&out, static_cast<uint32_t>(status.code()));
  const int64_t retry = status.ok() ? 0 : status.retry_after_ms();
  AppendU64(&out, retry > 0 ? static_cast<uint64_t>(retry) : 0);
  AppendU32(&out, static_cast<uint32_t>(msg.size()));
  out += msg;
  return out;
}

Status DecodeStatus(const std::string& bytes, Status* out) {
  if (bytes.size() < 16) {
    return Status::InvalidArgument("status wire record too short");
  }
  const uint32_t code = LoadU32(bytes.data());
  const uint64_t retry = LoadU64(bytes.data() + 4);
  const uint32_t len = LoadU32(bytes.data() + 12);
  if (code > kMaxCode) {
    return Status::InvalidArgument("status code " + std::to_string(code) +
                                   " out of range");
  }
  if (len > kMaxStatusMessageBytes) {
    return Status::InvalidArgument("status message length " +
                                   std::to_string(len) + " over the cap");
  }
  if (bytes.size() != 16 + static_cast<size_t>(len)) {
    return Status::InvalidArgument("status wire record length mismatch");
  }
  if (retry > static_cast<uint64_t>(INT64_MAX)) {
    return Status::InvalidArgument("status retry hint out of range");
  }
  if (code == 0) {
    if (len != 0 || retry != 0) {
      return Status::InvalidArgument("OK status with message or retry hint");
    }
    *out = Status::OK();
    return Status::OK();
  }
  Status decoded(static_cast<StatusCode>(code), bytes.substr(16, len));
  if (retry > 0) decoded.WithRetryAfter(static_cast<int64_t>(retry));
  *out = std::move(decoded);
  return Status::OK();
}

Status NormalizeStatusForWire(const Status& status) {
  Status decoded;
  Status parsed = DecodeStatus(EncodeStatus(status), &decoded);
  // A status we just encoded always parses; if this invariant ever broke
  // we must not lose the original failure, so fall back to it.
  assert(parsed.ok());
  if (!parsed.ok()) return status;
  return decoded;
}

}  // namespace ccdb
