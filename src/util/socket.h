#ifndef CCDB_UTIL_SOCKET_H_
#define CCDB_UTIL_SOCKET_H_

/// \file socket.h
/// Thin Status-returning TCP primitives for the network edge.
///
/// `Socket` is a move-only owner of a connected stream fd with exact-size
/// send/recv helpers; `Listener` owns a bound, listening fd and hands out
/// accepted `Socket`s. Everything returns `Status` — no exceptions, no
/// console writes — and sends suppress SIGPIPE so a peer that vanishes
/// mid-reply surfaces as an IoError on the writing thread, not a process
/// kill. These are the only files allowed to touch the raw socket
/// syscalls (`tools/ccdb_lint.py`, rule `net-socket`); the framing layer
/// in `src/net/wire.h` builds on them.

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace ccdb {

/// A connected TCP stream. Move-only; the destructor closes the fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }

  /// Writes exactly `len` bytes (retrying short writes / EINTR).
  /// IoError when the peer has gone away.
  Status SendAll(const void* data, size_t len);

  /// Reads exactly `len` bytes. kUnavailable with message "peer closed"
  /// on a clean EOF *before the first byte*; IoError on EOF mid-buffer
  /// (a torn frame) or any socket error.
  Status RecvAll(void* data, size_t len);

  /// Reads *up to* `max_len` bytes — whatever one recv returns. 0 on a
  /// clean EOF; IoError on a socket error. The byte-capped read an
  /// unframed text protocol (the HTTP status listener) needs.
  Result<size_t> RecvSome(void* data, size_t max_len);

  /// Half-close: no more sends; the peer reads EOF.
  void ShutdownSend();

  /// Full shutdown: unblocks any thread blocked in RecvAll/SendAll on
  /// this socket (used for graceful server drain). Safe to call from a
  /// thread other than the one doing I/O; does not close the fd.
  void ShutdownBoth();

  /// Closes the fd (idempotent).
  void Close();

 private:
  int fd_ = -1;
};

/// Connects to `host:port` (numeric or resolvable host). Sets TCP_NODELAY
/// — the protocol is request/response and Nagle would serialize it.
Result<Socket> TcpConnect(const std::string& host, uint16_t port);

/// A listening TCP socket bound to the loopback-reachable wildcard.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }

  Listener(Listener&& other) noexcept
      : fd_(other.fd_.exchange(-1)), port_(other.port_) {}
  Listener& operator=(Listener&& other) noexcept {
    if (this != &other) {
      Close();
      fd_.store(other.fd_.exchange(-1));
      port_ = other.port_;
    }
    return *this;
  }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens; `port` 0 picks an ephemeral port (read it back
  /// from `port()`).
  static Result<Listener> Bind(uint16_t port);

  /// Blocks for the next connection. kUnavailable once Close() has been
  /// called from another thread (the accept-loop exit signal).
  Result<Socket> Accept();

  /// Closes the listening fd; a blocked Accept() returns kUnavailable.
  void Close();

  uint16_t port() const { return port_; }
  bool valid() const { return fd_.load() >= 0; }

 private:
  /// Atomic because Close() is the cross-thread shutdown signal for a
  /// concurrently blocked Accept().
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

}  // namespace ccdb

#endif  // CCDB_UTIL_SOCKET_H_
