#ifndef CCDB_UTIL_SOCKET_H_
#define CCDB_UTIL_SOCKET_H_

/// \file socket.h
/// Thin Status-returning TCP primitives for the network edge.
///
/// `Socket` is a move-only owner of a connected stream fd with exact-size
/// send/recv helpers; `Listener` owns a bound, listening fd and hands out
/// accepted `Socket`s. Everything returns `Status` — no exceptions, no
/// console writes — and sends suppress SIGPIPE so a peer that vanishes
/// mid-reply surfaces as an IoError on the writing thread, not a process
/// kill. These are the only files allowed to touch the raw socket
/// syscalls (`tools/ccdb_lint.py`, rule `net-socket`); the framing layer
/// in `src/net/wire.h` builds on them.

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace ccdb {

/// A deterministic fault plan over a socket's send path — the network
/// sibling of `FaultInjectingPager`. Counters are 1-based over SendAll
/// calls; the framing layer writes exactly one contiguous buffer per
/// frame, so "the Nth send" is "the Nth frame" on a protocol socket.
/// Zero means "never". At most one fault fires per send; precedence when
/// indexes collide: drop, cut, cut_after, corrupt, delay.
struct SocketFaults {
  uint64_t drop_at = 0;       ///< swallow the Nth send (pretend success)
  uint64_t cut_at = 0;        ///< cut the connection *instead of* send N
  uint64_t cut_after_at = 0;  ///< deliver send N, then cut (a lost reply)
  uint64_t corrupt_at = 0;    ///< flip one byte of the Nth send
  uint64_t delay_at = 0;      ///< stall the Nth send by `delay_ms`
  double delay_ms = 0;        ///< stall length for delay_at
  uint64_t drop_every = 0;    ///< recurring: swallow every Kth send
  bool any() const {
    return drop_at || cut_at || cut_after_at || corrupt_at || delay_at ||
           drop_every;
  }
};

/// A connected TCP stream. Move-only; the destructor closes the fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept
      : fd_(std::exchange(other.fd_, -1)),
        faults_(std::exchange(other.faults_, {})),
        sends_(std::exchange(other.sends_, 0)),
        cut_(std::exchange(other.cut_, false)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
      faults_ = std::exchange(other.faults_, {});
      sends_ = std::exchange(other.sends_, 0);
      cut_ = std::exchange(other.cut_, false);
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }

  /// Writes exactly `len` bytes (retrying short writes / EINTR).
  /// IoError when the peer has gone away.
  Status SendAll(const void* data, size_t len);

  /// Reads exactly `len` bytes. kUnavailable with message "peer closed"
  /// on a clean EOF *before the first byte*; IoError on EOF mid-buffer
  /// (a torn frame) or any socket error.
  Status RecvAll(void* data, size_t len);

  /// Reads *up to* `max_len` bytes — whatever one recv returns. 0 on a
  /// clean EOF; IoError on a socket error. The byte-capped read an
  /// unframed text protocol (the HTTP status listener) needs.
  Result<size_t> RecvSome(void* data, size_t max_len);

  /// Half-close: no more sends; the peer reads EOF.
  void ShutdownSend();

  /// Full shutdown: unblocks any thread blocked in RecvAll/SendAll on
  /// this socket (used for graceful server drain). Safe to call from a
  /// thread other than the one doing I/O; does not close the fd.
  void ShutdownBoth();

  /// Closes the fd (idempotent).
  void Close();

  /// Arms (or clears, with `{}`) the deterministic send-path fault plan.
  /// The send counter restarts from zero.
  void SetFaults(const SocketFaults& faults) {
    faults_ = faults;
    sends_ = 0;
    cut_ = false;
  }

  /// Bounds every blocking receive on this socket: after `ms` with no
  /// bytes, RecvAll/RecvSome return kUnavailable ("recv timeout") instead
  /// of blocking forever — how a swallowed reply frame surfaces as a
  /// retryable error. 0 restores unbounded blocking.
  Status SetRecvTimeout(double ms);

 private:
  /// The unfaulted exact-size send loop.
  Status SendRaw(const void* data, size_t len);

  int fd_ = -1;
  SocketFaults faults_;
  uint64_t sends_ = 0;  ///< SendAll calls since SetFaults (fault clock)
  /// Set by a cut_at/cut_after_at fault: receives return EOF even for
  /// bytes the kernel buffered before the shutdown, so an injected
  /// "reply lost" cut cannot be undone by a scheduling race.
  bool cut_ = false;
};

/// Connects to `host:port` (numeric or resolvable host). Sets TCP_NODELAY
/// — the protocol is request/response and Nagle would serialize it.
Result<Socket> TcpConnect(const std::string& host, uint16_t port);

/// A listening TCP socket bound to the loopback-reachable wildcard.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }

  Listener(Listener&& other) noexcept
      : fd_(other.fd_.exchange(-1)), port_(other.port_) {}
  Listener& operator=(Listener&& other) noexcept {
    if (this != &other) {
      Close();
      fd_.store(other.fd_.exchange(-1));
      port_ = other.port_;
    }
    return *this;
  }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens; `port` 0 picks an ephemeral port (read it back
  /// from `port()`).
  static Result<Listener> Bind(uint16_t port);

  /// Blocks for the next connection. kUnavailable once Close() has been
  /// called from another thread (the accept-loop exit signal).
  Result<Socket> Accept();

  /// Closes the listening fd; a blocked Accept() returns kUnavailable.
  void Close();

  uint16_t port() const { return port_; }
  bool valid() const { return fd_.load() >= 0; }

 private:
  /// Atomic because Close() is the cross-thread shutdown signal for a
  /// concurrently blocked Accept().
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

}  // namespace ccdb

#endif  // CCDB_UTIL_SOCKET_H_
