#include "util/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include "util/backoff.h"
#include "util/lock_graph.h"

namespace ccdb {

namespace {

std::string Errno(const char* op) {
  return std::string(op) + ": " + std::strerror(errno);
}

void SetNoDelay(int fd) {
  int one = 1;
  // Best-effort: a socket without NODELAY is slower, not wrong.
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Status Socket::SendAll(const void* data, size_t len) {
  if (fd_ < 0) return Status::IoError("send on a closed socket");
  if (faults_.any()) {
    const uint64_t n = ++sends_;
    if (n == faults_.drop_at ||
        (faults_.drop_every != 0 && n % faults_.drop_every == 0)) {
      return Status::OK();  // swallowed in flight; the caller saw success
    }
    if (n == faults_.cut_at) {
      ShutdownBoth();
      cut_ = true;
      return Status::IoError("fault: connection cut at send " +
                             std::to_string(n));
    }
    if (n == faults_.cut_after_at) {
      Status sent = SendRaw(data, len);
      // The request landed; every reply is now lost. shutdown(SHUT_RD)
      // alone is not enough: the peer's reply may already sit in the
      // kernel receive buffer, which recv still drains after shutdown —
      // cut_ makes the loss unconditional instead of a scheduling race.
      ShutdownBoth();
      cut_ = true;
      return sent;
    }
    if (n == faults_.corrupt_at && len > 0) {
      std::string mangled(static_cast<const char*>(data), len);
      mangled[len / 2] = static_cast<char>(mangled[len / 2] ^ 0x40);
      return SendRaw(mangled.data(), len);
    }
    if (n == faults_.delay_at) SleepForMs(faults_.delay_ms);
  }
  return SendRaw(data, len);
}

Status Socket::SendRaw(const void* data, size_t len) {
  CCDB_NOTE_BLOCKING_CALL("net.send");
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a vanished peer must be an IoError, not SIGPIPE.
    ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno("send"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t len) {
  if (fd_ < 0) return Status::IoError("recv on a closed socket");
  if (cut_) return Status::Unavailable("peer closed");
  CCDB_NOTE_BLOCKING_CALL("net.recv");
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired: a retryable stall, not a dead link.
        return Status::Unavailable("recv timeout");
      }
      return Status::IoError(Errno("recv"));
    }
    if (n == 0) {
      if (got == 0) return Status::Unavailable("peer closed");
      return Status::IoError("peer closed mid-frame (" + std::to_string(got) +
                             "/" + std::to_string(len) + " bytes)");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> Socket::RecvSome(void* data, size_t max_len) {
  if (fd_ < 0) return Status::IoError("recv on a closed socket");
  if (cut_) return size_t{0};  // clean EOF: the connection was cut
  CCDB_NOTE_BLOCKING_CALL("net.recv");
  while (true) {
    ssize_t n = ::recv(fd_, data, max_len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Unavailable("recv timeout");
      }
      return Status::IoError(Errno("recv"));
    }
    return static_cast<size_t>(n);
  }
}

Status Socket::SetRecvTimeout(double ms) {
  if (fd_ < 0) return Status::IoError("timeout on a closed socket");
  if (ms < 0) return Status::InvalidArgument("negative recv timeout");
  struct timeval tv = {};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>(
      std::fmod(ms, 1000.0) * 1000.0);
  if (setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IoError(Errno("setsockopt SO_RCVTIMEO"));
  }
  return Status::OK();
}

void Socket::ShutdownSend() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> TcpConnect(const std::string& host, uint16_t port) {
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IoError("resolve " + host + ": " + gai_strerror(rc));
  }
  Status last = Status::IoError("no addresses for " + host);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IoError(Errno("socket"));
      continue;
    }
    CCDB_NOTE_BLOCKING_CALL("net.connect");
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Status::IoError("connect " + host + ":" + service + ": " +
                             std::strerror(errno));
      ::close(fd);
      continue;
    }
    SetNoDelay(fd);
    ::freeaddrinfo(res);
    return Socket(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

Result<Listener> Listener::Bind(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(Errno("socket"));
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Status::IoError("bind port " + std::to_string(port) + ": " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 128) != 0) {
    Status s = Status::IoError(Errno("listen"));
    ::close(fd);
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    Status s = Status::IoError(Errno("getsockname"));
    ::close(fd);
    return s;
  }
  Listener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<Socket> Listener::Accept() {
  // Snapshot the fd: Close() from another thread is the shutdown signal.
  const int fd = fd_;
  if (fd < 0) return Status::Unavailable("listener closed");
  while (true) {
    CCDB_NOTE_BLOCKING_CALL("net.accept");
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) {
      SetNoDelay(conn);
      return Socket(conn);
    }
    if (errno == EINTR) continue;
    // EBADF / EINVAL after a concurrent Close(): clean shutdown.
    return Status::Unavailable(Errno("accept"));
  }
}

void Listener::Close() {
  // exchange() makes concurrent Close() calls race-free: exactly one
  // caller sees the live fd and closes it.
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() unblocks a concurrent accept() on Linux where close()
    // alone may not.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace ccdb
