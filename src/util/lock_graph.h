#ifndef CCDB_UTIL_LOCK_GRAPH_H_
#define CCDB_UTIL_LOCK_GRAPH_H_

/// \file lock_graph.h
/// Runtime lock-order deadlock detector (the dynamic half of the
/// lock-order analysis; `tools/lock_order_lint.py` is the static half).
///
/// Compiled in only under the `CCDB_DEADLOCK_DETECT` CMake option — in a
/// normal build every hook below is an empty inline and `ccdb::Mutex`
/// carries no extra state, so the detector is zero-cost when off.
///
/// Model: every *named* `ccdb::Mutex` / `ccdb::SharedMutex` (constructed
/// with a string-literal name, e.g. `Mutex mu_{"service.queue"}`) is a
/// node keyed by that name — instances of the same class share one node,
/// which is what makes the graph a lock *ranking* rather than a per-object
/// trace. Each acquisition:
///
///   1. records a directed edge from every lock the thread currently
///      holds to the lock being acquired (with the first witness
///      hold-stack kept per edge), and
///   2. checks — before blocking — whether the new edge closes a cycle in
///      the global acquisition-order graph. A cycle is an ABBA inversion:
///      the detector prints both conflicting hold-stacks (the current
///      thread's, and the recorded witness of the opposing edge) to
///      stderr and aborts, so the inversion is caught at the first
///      acquisition that could ever deadlock, not on the unlucky
///      interleaving.
///
/// Anonymous (default-constructed) locks — test locals, short-lived
/// helpers — participate only in the per-thread held-set that backs
/// `Mutex::AssertHeld()`; they are excluded from the graph because
/// distinct anonymous locks cannot be told apart by rank.
///
/// Extras:
///   - `NoteBlockingCall(site)` (placed at the WAL fsync point and the
///     socket syscalls) counts acquisitions held across blocking calls —
///     latency hazards surfaced via the `lock.held_over_block` gauge.
///   - `DumpJson()` serializes the observed graph; when the
///     `CCDB_LOCK_GRAPH_DUMP_DIR` environment variable is set, every
///     process writes `<dir>/lockgraph.<pid>.<seq>.json` at exit, and
///     `tools/lock_order_lint.py --runtime-dir` cross-checks each
///     observed edge against the DAG declared in the source annotations.
///
/// The detector's own bookkeeping uses raw std::mutex internals
/// (lock_graph.cc is allow-listed in `tools/ccdb_lint.py`): the
/// instrumentation layer cannot instrument itself, and its one internal
/// lock is a leaf acquired only inside acquisition hooks.

#include <cstdint>
#include <string>

namespace ccdb::lock_graph {

/// Acquisition mode of a held-lock entry (reporting only; ordering edges
/// ignore mode — a shared/exclusive inversion still deadlocks writers).
enum class Mode { kExclusive, kShared };

#if defined(CCDB_DEADLOCK_DETECT)

/// Opaque per-name graph node. Returned by Register; never freed.
struct LockNode;

/// Interns `name` (which must have static storage duration — pass a
/// string literal) and returns its graph node. Thread-safe.
LockNode* Register(const char* name);

/// Pre-acquisition hook: records held→`node` edges and aborts with both
/// hold-stacks if one of them closes a cycle. Call *before* blocking on
/// the underlying lock. `node` may be null (anonymous lock: no-op).
void OnLockAttempt(const LockNode* node);

/// Post-acquisition hook: pushes the lock onto the thread's held stack.
/// Named or anonymous. Call after the underlying lock is held.
void OnLocked(const LockNode* node, const void* instance, Mode mode);

/// Post-TryLock-success hook: pushes the held entry and records edges,
/// but never aborts — a try-acquisition cannot block, so a cycle through
/// it cannot deadlock (the edge still lands in the dump for the lint).
void OnTryLocked(const LockNode* node, const void* instance, Mode mode);

/// Release hook: pops the most recent held entry for `instance`.
void OnReleased(const void* instance);

/// True when the calling thread holds `instance` (any mode / exclusive).
bool HoldsLock(const void* instance);
bool HoldsLockExclusive(const void* instance);

/// Prints the failed assertion (lock name, the thread's held stack) and
/// aborts. `node` may be null (anonymous lock).
[[noreturn]] void AssertHeldFailure(const LockNode* node, const char* what);

/// Marks a blocking call site (fsync, socket syscall): when the calling
/// thread holds any named lock, counts it and records (site, held-stack)
/// into the dump. Cheap when nothing is held.
void NoteBlockingCall(const char* site);

/// Total acquisitions observed held across a blocking call.
uint64_t HeldOverBlockCount();

/// Runtime toggle (default on in detector builds). Benchmarks use it to
/// measure hook overhead; disabling does not clear recorded state.
void SetEnabled(bool enabled);
bool Enabled();

/// Edges recorded so far (cheap counter, tests/benchmarks).
uint64_t EdgeCount();

/// The observed graph as JSON: nodes, edges (with witness stacks and
/// counts), and held-over-blocking-call records.
std::string DumpJson();

/// Writes DumpJson() to `<dir>/lockgraph.<pid>.<seq>.json`; returns false
/// on I/O failure. The atexit dump (armed by CCDB_LOCK_GRAPH_DUMP_DIR)
/// goes through this too.
bool WriteDump(const std::string& dir);

#define CCDB_NOTE_BLOCKING_CALL(site) ::ccdb::lock_graph::NoteBlockingCall(site)

#else  // !CCDB_DEADLOCK_DETECT — every hook compiles to nothing.

inline uint64_t HeldOverBlockCount() { return 0; }
inline void SetEnabled(bool) {}
inline bool Enabled() { return false; }
inline uint64_t EdgeCount() { return 0; }
inline std::string DumpJson() { return "{}"; }
inline bool WriteDump(const std::string&) { return false; }

#define CCDB_NOTE_BLOCKING_CALL(site) \
  do {                                \
  } while (false)

#endif  // CCDB_DEADLOCK_DETECT

}  // namespace ccdb::lock_graph

#endif  // CCDB_UTIL_LOCK_GRAPH_H_
