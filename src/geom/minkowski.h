#ifndef CCDB_GEOM_MINKOWSKI_H_
#define CCDB_GEOM_MINKOWSKI_H_

/// \file minkowski.h
/// Minkowski sums and polygonal buffer approximation.
///
/// The paper leans on a key property of the linear constraint model
/// (§1.1, §3.3): "a data model based on linear constraints can approximate
/// any spatial extent to an arbitrary accuracy (by making line segments
/// shorter)". The canonical curved extent in this system is the *buffer*
/// of a feature — the set of points within distance d — whose boundary
/// contains circular arcs. CCDB realizes the claim constructively:
///
///  - `ApproximateCirclePolygon` builds a convex polygon with *exactly
///    rational* vertices on (inscribed) or outside (circumscribed) the
///    circle of radius r, using the tangent-half-angle parametrization
///    t ↦ r·((1−t²)/(1+t²), 2t/(1+t²)) — no floating point anywhere;
///  - `MinkowskiSum` of two convex polygons (exact, by the classic edge
///    merge) turns a circle approximation into a buffer approximation:
///    buffer(P, d) is sandwiched between P ⊕ inscribed_k(d) and
///    P ⊕ circumscribed_k(d), and the gap vanishes as k grows.
///
/// The sandwich is testable exactly, and `bench_approximation` measures
/// the error/size trade-off the paper asserts.

#include <vector>

#include "geom/decompose.h"
#include "geom/polygon.h"

namespace ccdb::geom {

/// A convex polygon with rational vertices approximating the circle of
/// radius `radius` centered at the origin, with `segments` >= 3 vertices.
///  - inscribed (`circumscribed == false`): vertices lie exactly ON the
///    circle (tangent-half-angle rational points), polygon ⊆ disk;
///  - circumscribed (`circumscribed == true`): the polygon contains the
///    disk (the inscribed polygon of a slightly larger rational radius
///    chosen so containment is guaranteed: r' = r / cos(π/k) rounded up).
/// Requires radius > 0.
std::vector<Point> ApproximateCirclePolygon(const Rational& radius,
                                            int segments,
                                            bool circumscribed);

/// Exact Minkowski sum of two convex CCW rings (the classic linear-time
/// edge merge). The result is convex and CCW, with collinear vertices
/// removed.
std::vector<Point> MinkowskiSum(const std::vector<Point>& a,
                                const std::vector<Point>& b);

/// Polygonal approximation of buffer(`ring`, d) for a convex CCW ring:
/// the Minkowski sum with a circle approximation of radius d.
/// Under-approximates with inscribed circles, over-approximates with
/// circumscribed ones; both converge to the true buffer as `segments`
/// grows.
std::vector<Point> ApproximateBuffer(const std::vector<Point>& ring,
                                     const Rational& distance, int segments,
                                     bool outer);

}  // namespace ccdb::geom

#endif  // CCDB_GEOM_MINKOWSKI_H_
