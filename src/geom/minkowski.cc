#include "geom/minkowski.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ccdb::geom {

namespace {

/// Rational approximation of a finite double with denominator 2^20
/// (plenty for vertex placement; exactness comes from the half-angle
/// construction, not from `t`'s precision).
Rational RationalNear(double v) {
  const int64_t scale = 1 << 20;
  return Rational(static_cast<int64_t>(std::llround(v * scale)), scale);
}

/// Rotates `ring` so it starts at the lexicographically smallest vertex
/// (min y, then min x) — the canonical start for the edge merge.
std::vector<Point> StartAtLowest(std::vector<Point> ring) {
  size_t best = 0;
  for (size_t i = 1; i < ring.size(); ++i) {
    if (ring[i].y < ring[best].y ||
        (ring[i].y == ring[best].y && ring[i].x < ring[best].x)) {
      best = i;
    }
  }
  std::rotate(ring.begin(), ring.begin() + static_cast<ptrdiff_t>(best),
              ring.end());
  return ring;
}

}  // namespace

std::vector<Point> ApproximateCirclePolygon(const Rational& radius,
                                            int segments,
                                            bool circumscribed) {
  assert(radius.Sign() > 0 && "radius must be positive");
  assert(segments >= 3);
  // Tangent-half-angle points: t = tan(θ/2) gives the EXACT circle point
  // r((1-t²)/(1+t²), 2t/(1+t²)) for any rational t. Spread θ over
  // (-π, π) avoiding ±π where t blows up.
  std::vector<Point> ring;
  ring.reserve(static_cast<size_t>(segments));
  std::vector<double> angles;
  for (int i = 0; i < segments; ++i) {
    double theta =
        -M_PI + 2.0 * M_PI * (static_cast<double>(i) + 0.5) / segments;
    angles.push_back(theta);
    Rational t = RationalNear(std::tan(theta / 2.0));
    Rational t2 = t * t;
    Rational denom = t2 + Rational(1);
    Rational x = radius * (Rational(1) - t2) / denom;
    Rational y = radius * (t + t) / denom;
    ring.emplace_back(std::move(x), std::move(y));
  }
  std::vector<Point> hull = ConvexHull(ring);
  if (circumscribed) {
    // Scale so the polygon contains the disk: a convex polygon with
    // vertices on the circle and maximum central gap g contains the disk
    // of radius r·cos(g/2); dividing by a safe upper bound of cos(g/2)
    // restores containment of the radius-r disk.
    double max_gap = 0.0;
    for (size_t i = 0; i < hull.size(); ++i) {
      const Point& p = hull[i];
      const Point& q = hull[(i + 1) % hull.size()];
      double ap = std::atan2(p.y.ToDouble(), p.x.ToDouble());
      double aq = std::atan2(q.y.ToDouble(), q.x.ToDouble());
      double gap = aq - ap;
      while (gap < 0) gap += 2.0 * M_PI;
      while (gap >= 2.0 * M_PI) gap -= 2.0 * M_PI;
      max_gap = std::max(max_gap, gap);
    }
    double factor = 1.0 / std::cos(std::min(max_gap, 3.1) / 2.0);
    Rational scale = RationalNear(factor * 1.0000001 + 1e-9);
    for (Point& p : hull) {
      p.x *= scale;
      p.y *= scale;
    }
  }
  return hull;
}

std::vector<Point> MinkowskiSum(const std::vector<Point>& a,
                                const std::vector<Point>& b) {
  assert(a.size() >= 3 && b.size() >= 3 && "convex rings required");
  std::vector<Point> p = StartAtLowest(a);
  std::vector<Point> q = StartAtLowest(b);
  const size_t n = p.size();
  const size_t m = q.size();
  std::vector<Point> sum;
  sum.reserve(n + m);
  size_t i = 0, j = 0;
  while (i < n || j < m) {
    sum.push_back(p[i % n] + q[j % m]);
    // Compare the polar angles of the next edges; advance the smaller
    // (both on ties) — the classic convex Minkowski merge.
    Point ea = p[(i + 1) % n] - p[i % n];
    Point eb = q[(j + 1) % m] - q[j % m];
    Rational cross = ea.x * eb.y - ea.y * eb.x;
    if (i >= n) {
      ++j;
    } else if (j >= m) {
      ++i;
    } else if (cross.Sign() > 0) {
      ++i;
    } else if (cross.Sign() < 0) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  // Clean duplicates/collinear vertices; the sum of convex sets is convex,
  // so the hull is exact.
  return ConvexHull(sum);
}

std::vector<Point> ApproximateBuffer(const std::vector<Point>& ring,
                                     const Rational& distance, int segments,
                                     bool outer) {
  if (distance.IsZero()) return ring;
  std::vector<Point> circle =
      ApproximateCirclePolygon(distance, segments, outer);
  return MinkowskiSum(ring, circle);
}

}  // namespace ccdb::geom
