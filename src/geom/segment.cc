#include "geom/segment.h"

#include <algorithm>

namespace ccdb::geom {

bool Segment::Contains(const Point& p) const {
  if (Orientation(a, b, p) != 0) return false;
  return p.x >= Rational::Min(a.x, b.x) && p.x <= Rational::Max(a.x, b.x) &&
         p.y >= Rational::Min(a.y, b.y) && p.y <= Rational::Max(a.y, b.y);
}

bool SegmentsIntersect(const Segment& s, const Segment& t) {
  if (s.IsDegenerate()) {
    return t.IsDegenerate() ? s.a == t.a : t.Contains(s.a);
  }
  if (t.IsDegenerate()) return s.Contains(t.a);

  int o1 = Orientation(s.a, s.b, t.a);
  int o2 = Orientation(s.a, s.b, t.b);
  int o3 = Orientation(t.a, t.b, s.a);
  int o4 = Orientation(t.a, t.b, s.b);
  if (o1 != o2 && o3 != o4) return true;

  // Collinear/touching cases.
  if (o1 == 0 && s.Contains(t.a)) return true;
  if (o2 == 0 && s.Contains(t.b)) return true;
  if (o3 == 0 && t.Contains(s.a)) return true;
  if (o4 == 0 && t.Contains(s.b)) return true;
  return false;
}

Rational SquaredDistance(const Point& p, const Segment& s) {
  if (s.IsDegenerate()) return SquaredDistance(p, s.a);
  // Project p onto the supporting line; clamp the parameter to [0, 1].
  Point d = s.b - s.a;
  Rational len2 = Dot(d, d);
  Rational t = Dot(p - s.a, d) / len2;
  if (t.Sign() < 0) t = Rational(0);
  if (t > Rational(1)) t = Rational(1);
  Point closest = s.a + d * t;
  return SquaredDistance(p, closest);
}

Rational SquaredDistance(const Segment& s, const Segment& t) {
  if (SegmentsIntersect(s, t)) return Rational(0);
  // Non-intersecting segments: the minimum is attained endpoint-to-segment.
  Rational best = SquaredDistance(s.a, t);
  best = Rational::Min(best, SquaredDistance(s.b, t));
  best = Rational::Min(best, SquaredDistance(t.a, s));
  best = Rational::Min(best, SquaredDistance(t.b, s));
  return best;
}

}  // namespace ccdb::geom
