#include "geom/decompose.h"

#include <algorithm>
#include <cassert>
#include <optional>

namespace ccdb::geom {

namespace {

/// True if `p` is inside the closed triangle (a, b, c) given CCW order.
bool InClosedTriangle(const Point& a, const Point& b, const Point& c,
                      const Point& p) {
  return Orientation(a, b, p) >= 0 && Orientation(b, c, p) >= 0 &&
         Orientation(c, a, p) >= 0;
}

/// Merges two convex CCW rings sharing the directed edge (a, b) in `lhs`
/// (appearing as (b, a) in `rhs`); returns the merged ring if it is convex.
std::optional<std::vector<Point>> TryMerge(const std::vector<Point>& lhs,
                                           const std::vector<Point>& rhs) {
  const size_t n = lhs.size();
  const size_t m = rhs.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& a = lhs[i];
    const Point& b = lhs[(i + 1) % n];
    for (size_t j = 0; j < m; ++j) {
      if (rhs[j] == b && rhs[(j + 1) % m] == a) {
        // Splice: walk lhs from b around to a (all n vertices), then the
        // rhs interior from a's successor around to b's predecessor.
        std::vector<Point> merged;
        merged.reserve(n + m - 2);
        for (size_t k = 1; k <= n; ++k) merged.push_back(lhs[(i + k) % n]);
        for (size_t k = 1; k + 1 < m; ++k) {
          merged.push_back(rhs[(j + 1 + k) % m]);
        }
        // Drop collinear vertices, then verify convexity.
        std::vector<Point> cleaned;
        const size_t t = merged.size();
        for (size_t k = 0; k < t; ++k) {
          const Point& prev = merged[(k + t - 1) % t];
          const Point& cur = merged[k];
          const Point& next = merged[(k + 1) % t];
          if (Orientation(prev, cur, next) != 0) cleaned.push_back(cur);
        }
        if (cleaned.size() < 3) return std::nullopt;
        const size_t c = cleaned.size();
        for (size_t k = 0; k < c; ++k) {
          if (Orientation(cleaned[k], cleaned[(k + 1) % c],
                          cleaned[(k + 2) % c]) <= 0) {
            return std::nullopt;
          }
        }
        return cleaned;
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::vector<std::vector<Point>> Triangulate(const Polygon& polygon) {
  std::vector<Point> ring = polygon.vertices();  // CCW by construction
  std::vector<std::vector<Point>> triangles;
  while (ring.size() > 3) {
    const size_t n = ring.size();
    bool clipped = false;
    for (size_t i = 0; i < n; ++i) {
      const Point& prev = ring[(i + n - 1) % n];
      const Point& cur = ring[i];
      const Point& next = ring[(i + 1) % n];
      int turn = Orientation(prev, cur, next);
      if (turn < 0) continue;  // reflex vertex: not an ear
      if (turn == 0) {
        // Collinear vertex: remove it (zero-area ear).
        ring.erase(ring.begin() + static_cast<ptrdiff_t>(i));
        clipped = true;
        break;
      }
      bool blocked = false;
      for (size_t j = 0; j < n; ++j) {
        if (j == i || j == (i + 1) % n || j == (i + n - 1) % n) continue;
        if (InClosedTriangle(prev, cur, next, ring[j])) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;
      triangles.push_back({prev, cur, next});
      ring.erase(ring.begin() + static_cast<ptrdiff_t>(i));
      clipped = true;
      break;
    }
    assert(clipped && "simple polygon must always have an ear");
    if (!clipped) break;  // defensive: avoid infinite loop in release builds
  }
  if (ring.size() == 3 && Orientation(ring[0], ring[1], ring[2]) > 0) {
    triangles.push_back(ring);
  }
  return triangles;
}

std::vector<std::vector<Point>> DecomposeConvex(const Polygon& polygon) {
  if (polygon.IsConvex()) {
    return {polygon.vertices()};
  }
  std::vector<std::vector<Point>> pieces = Triangulate(polygon);
  // Greedy Hertel–Mehlhorn style merging: repeatedly merge any pair of
  // pieces whose union across a shared diagonal is convex.
  bool merged_any = true;
  while (merged_any) {
    merged_any = false;
    for (size_t i = 0; i < pieces.size() && !merged_any; ++i) {
      for (size_t j = i + 1; j < pieces.size() && !merged_any; ++j) {
        if (auto merged = TryMerge(pieces[i], pieces[j])) {
          pieces[i] = std::move(*merged);
          pieces.erase(pieces.begin() + static_cast<ptrdiff_t>(j));
          merged_any = true;
        }
      }
    }
  }
  return pieces;
}

std::vector<Point> ConvexHull(std::vector<Point> points) {
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  if (points.size() <= 2) return points;
  std::vector<Point> hull(points.size() * 2);
  size_t k = 0;
  // Lower hull.
  for (const Point& p : points) {
    while (k >= 2 && Orientation(hull[k - 2], hull[k - 1], p) <= 0) --k;
    hull[k++] = p;
  }
  // Upper hull.
  const size_t lower_size = k + 1;
  for (size_t i = points.size() - 1; i-- > 0;) {
    while (k >= lower_size &&
           Orientation(hull[k - 2], hull[k - 1], points[i]) <= 0) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // last point repeats the first
  if (hull.size() < 3) {
    // All input points collinear: return the two extremes.
    return {points.front(), points.back()};
  }
  return hull;
}

}  // namespace ccdb::geom
