#include "geom/convert.h"

#include <cassert>

#include "constraint/fourier_motzkin.h"

namespace ccdb::geom {

ConvexRegion ConvexRegion::MakePoint(Point p) {
  ConvexRegion r;
  r.kind_ = Kind::kPoint;
  r.point_ = std::move(p);
  return r;
}

ConvexRegion ConvexRegion::MakeSegment(Segment s) {
  ConvexRegion r;
  r.kind_ = Kind::kSegment;
  r.segment_ = std::move(s);
  return r;
}

ConvexRegion ConvexRegion::MakePolygon(Polygon p) {
  ConvexRegion r;
  r.kind_ = Kind::kPolygon;
  r.polygon_ = std::move(p);
  return r;
}

Box ConvexRegion::BoundingBox() const {
  switch (kind_) {
    case Kind::kPoint:
      return Box::FromPoint(point_);
    case Kind::kSegment:
      return segment_.BoundingBox();
    case Kind::kPolygon:
      return polygon_->BoundingBox();
  }
  return Box::Empty();
}

bool ConvexRegion::Contains(const Point& p) const {
  switch (kind_) {
    case Kind::kPoint:
      return point_ == p;
    case Kind::kSegment:
      return segment_.Contains(p);
    case Kind::kPolygon:
      return polygon_->Contains(p);
  }
  return false;
}

std::string ConvexRegion::ToString() const {
  switch (kind_) {
    case Kind::kPoint:
      return point_.ToString();
    case Kind::kSegment:
      return segment_.ToString();
    case Kind::kPolygon:
      return polygon_->ToString();
  }
  return "?";
}

Rational SquaredDistance(const ConvexRegion& a, const ConvexRegion& b) {
  using Kind = ConvexRegion::Kind;
  // Dispatch so that the "larger" shape is handled by the specialized
  // overloads in polygon.cc / segment.cc.
  if (a.kind() == Kind::kPolygon) {
    switch (b.kind()) {
      case Kind::kPoint:
        return SquaredDistance(b.point(), a.polygon());
      case Kind::kSegment:
        return SquaredDistance(b.segment(), a.polygon());
      case Kind::kPolygon:
        return SquaredDistance(a.polygon(), b.polygon());
    }
  }
  if (a.kind() == Kind::kSegment) {
    switch (b.kind()) {
      case Kind::kPoint:
        return SquaredDistance(b.point(), a.segment());
      case Kind::kSegment:
        return SquaredDistance(a.segment(), b.segment());
      case Kind::kPolygon:
        return SquaredDistance(a.segment(), b.polygon());
    }
  }
  switch (b.kind()) {
    case Kind::kPoint:
      return SquaredDistance(a.point(), b.point());
    case Kind::kSegment:
      return SquaredDistance(a.point(), b.segment());
    case Kind::kPolygon:
      return SquaredDistance(a.point(), b.polygon());
  }
  return Rational(0);
}

Conjunction ConvexRingToConjunction(const std::vector<Point>& ring,
                                    const std::string& xvar,
                                    const std::string& yvar) {
  Conjunction out;
  const size_t n = ring.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& p = ring[i];
    const Point& q = ring[(i + 1) % n];
    // Interior on the left of p->q: cross(q-p, r-p) >= 0, i.e.
    // -(q.y-p.y)·x + (q.x-p.x)·y + ((q.y-p.y)p.x - (q.x-p.x)p.y) >= 0.
    Rational dy = q.y - p.y;
    Rational dx = q.x - p.x;
    LinearExpr expr = LinearExpr::Term(xvar, -dy) + LinearExpr::Term(yvar, dx) +
                      LinearExpr::Constant(dy * p.x - dx * p.y);
    out.Add(Constraint::Ge(expr, LinearExpr()));
  }
  return out;
}

std::vector<Conjunction> PolygonToConstraintTuples(const Polygon& polygon,
                                                   const std::string& xvar,
                                                   const std::string& yvar) {
  std::vector<Conjunction> tuples;
  for (const std::vector<Point>& piece : DecomposeConvex(polygon)) {
    tuples.push_back(ConvexRingToConjunction(piece, xvar, yvar));
  }
  return tuples;
}

Conjunction SegmentToConjunction(const Segment& segment,
                                 const std::string& xvar,
                                 const std::string& yvar) {
  if (segment.IsDegenerate()) {
    return PointToConjunction(segment.a, xvar, yvar);
  }
  Conjunction out;
  // Collinear line: cross(b-a, r-a) = 0.
  Rational dy = segment.b.y - segment.a.y;
  Rational dx = segment.b.x - segment.a.x;
  LinearExpr line = LinearExpr::Term(xvar, -dy) + LinearExpr::Term(yvar, dx) +
                    LinearExpr::Constant(dy * segment.a.x - dx * segment.a.y);
  out.Add(Constraint(line, ConstraintOp::kEq));
  // Endpoint bounds.
  Box box = segment.BoundingBox();
  LinearExpr x = LinearExpr::Variable(xvar);
  LinearExpr y = LinearExpr::Variable(yvar);
  out.Add(Constraint::Ge(x, LinearExpr::Constant(box.x_min)));
  out.Add(Constraint::Le(x, LinearExpr::Constant(box.x_max)));
  out.Add(Constraint::Ge(y, LinearExpr::Constant(box.y_min)));
  out.Add(Constraint::Le(y, LinearExpr::Constant(box.y_max)));
  return out;
}

std::vector<Conjunction> PolylineToConstraintTuples(const Polyline& line,
                                                    const std::string& xvar,
                                                    const std::string& yvar) {
  std::vector<Conjunction> tuples;
  for (size_t i = 0; i < line.NumSegments(); ++i) {
    tuples.push_back(SegmentToConjunction(line.SegmentAt(i), xvar, yvar));
  }
  if (line.NumSegments() == 0 && !line.vertices().empty()) {
    tuples.push_back(PointToConjunction(line.vertices()[0], xvar, yvar));
  }
  return tuples;
}

Conjunction PointToConjunction(const Point& p, const std::string& xvar,
                               const std::string& yvar) {
  Conjunction out;
  out.Add(Constraint::Eq(LinearExpr::Variable(xvar),
                         LinearExpr::Constant(p.x)));
  out.Add(Constraint::Eq(LinearExpr::Variable(yvar),
                         LinearExpr::Constant(p.y)));
  return out;
}

namespace {

/// Coefficients of a constraint's boundary line a·x + b·y + c = 0.
struct Line {
  Rational a;
  Rational b;
  Rational c;
};

/// Satisfaction against the *closure* of a constraint.
bool SatisfiesClosure(const Constraint& constraint, const Assignment& point) {
  int sign = constraint.expr().Evaluate(point).Sign();
  if (constraint.op() == ConstraintOp::kEq) return sign == 0;
  return sign <= 0;  // both <= and < close to <=
}

}  // namespace

Result<ConvexRegion> ConjunctionToRegion(const Conjunction& conjunction,
                                         const std::string& xvar,
                                         const std::string& yvar) {
  for (const std::string& var : conjunction.Variables()) {
    if (var != xvar && var != yvar) {
      return Status::InvalidArgument(
          "conjunction mentions non-spatial variable '" + var + "'");
    }
  }
  if (conjunction.IsKnownFalse() || !fm::IsSatisfiable(conjunction)) {
    return Status::InvalidArgument("conjunction is unsatisfiable");
  }
  fm::Interval xi = fm::VariableInterval(conjunction, xvar);
  fm::Interval yi = fm::VariableInterval(conjunction, yvar);
  if (!xi.lower || !xi.upper || !yi.lower || !yi.upper) {
    return Status::Unsupported(
        "conjunction describes an unbounded region; vector form requires "
        "bounded spatial extents");
  }

  std::vector<Line> lines;
  for (const Constraint& c : conjunction.constraints()) {
    lines.push_back(Line{c.expr().Coeff(xvar), c.expr().Coeff(yvar),
                         c.expr().constant()});
  }
  // Vertex candidates: pairwise boundary-line intersections.
  std::vector<Point> candidates;
  for (size_t i = 0; i < lines.size(); ++i) {
    for (size_t j = i + 1; j < lines.size(); ++j) {
      Rational det = lines[i].a * lines[j].b - lines[j].a * lines[i].b;
      if (det.IsZero()) continue;
      // Solve a1 x + b1 y = -c1, a2 x + b2 y = -c2 by Cramer's rule.
      Rational x = (lines[j].b * (-lines[i].c) - lines[i].b * (-lines[j].c)) / det;
      Rational y = (lines[i].a * (-lines[j].c) - lines[j].a * (-lines[i].c)) / det;
      candidates.emplace_back(std::move(x), std::move(y));
    }
  }
  std::vector<Point> feasible;
  for (const Point& p : candidates) {
    Assignment point{{xvar, p.x}, {yvar, p.y}};
    bool ok = true;
    for (const Constraint& c : conjunction.constraints()) {
      if (!SatisfiesClosure(c, point)) {
        ok = false;
        break;
      }
    }
    if (ok) feasible.push_back(p);
  }
  if (feasible.empty()) {
    // A bounded nonempty closed polyhedron always has a vertex; reaching
    // here means the closure differs from the (strictly open) input in a
    // degenerate way.
    return Status::Unsupported(
        "region has no vertices after closing strict constraints");
  }
  std::vector<Point> hull = ConvexHull(std::move(feasible));
  if (hull.size() == 1) return ConvexRegion::MakePoint(hull[0]);
  if (hull.size() == 2) {
    return ConvexRegion::MakeSegment(Segment(hull[0], hull[1]));
  }
  auto polygon = Polygon::Make(std::move(hull));
  if (!polygon.ok()) return polygon.status();
  return ConvexRegion::MakePolygon(std::move(polygon).value());
}

}  // namespace ccdb::geom
