#include "geom/box.h"

namespace ccdb::geom {

Box Box::Empty() {
  Box b;
  b.x_min = Rational(1);
  b.x_max = Rational(0);
  b.y_min = Rational(1);
  b.y_max = Rational(0);
  return b;
}

Box Box::FromPoint(const Point& p) {
  return Box{p.x, p.x, p.y, p.y};
}

Box Box::FromCorners(const Point& a, const Point& b) {
  return Box{Rational::Min(a.x, b.x), Rational::Max(a.x, b.x),
             Rational::Min(a.y, b.y), Rational::Max(a.y, b.y)};
}

bool Box::Contains(const Point& p) const {
  return p.x >= x_min && p.x <= x_max && p.y >= y_min && p.y <= y_max;
}

bool Box::ContainsBox(const Box& other) const {
  if (other.IsEmpty()) return true;
  if (IsEmpty()) return false;
  return other.x_min >= x_min && other.x_max <= x_max &&
         other.y_min >= y_min && other.y_max <= y_max;
}

bool Box::Intersects(const Box& other) const {
  if (IsEmpty() || other.IsEmpty()) return false;
  return x_min <= other.x_max && other.x_min <= x_max &&
         y_min <= other.y_max && other.y_min <= y_max;
}

Box Box::ExpandedBy(const Box& other) const {
  if (IsEmpty()) return other;
  if (other.IsEmpty()) return *this;
  return Box{Rational::Min(x_min, other.x_min),
             Rational::Max(x_max, other.x_max),
             Rational::Min(y_min, other.y_min),
             Rational::Max(y_max, other.y_max)};
}

Box Box::IntersectedWith(const Box& other) const {
  if (IsEmpty() || other.IsEmpty()) return Empty();
  Box out{Rational::Max(x_min, other.x_min),
          Rational::Min(x_max, other.x_max),
          Rational::Max(y_min, other.y_min),
          Rational::Min(y_max, other.y_max)};
  if (out.IsEmpty()) return Empty();
  return out;
}

Box Box::GrownBy(const Rational& margin) const {
  if (IsEmpty()) return *this;
  return Box{x_min - margin, x_max + margin, y_min - margin, y_max + margin};
}

Rational Box::Area() const {
  if (IsEmpty()) return Rational(0);
  return Width() * Height();
}

Point Box::Center() const {
  Rational half(1, 2);
  return Point((x_min + x_max) * half, (y_min + y_max) * half);
}

Rational Box::SquaredDistance(const Box& a, const Box& b) {
  Rational dx(0);
  if (a.x_max < b.x_min) {
    dx = b.x_min - a.x_max;
  } else if (b.x_max < a.x_min) {
    dx = a.x_min - b.x_max;
  }
  Rational dy(0);
  if (a.y_max < b.y_min) {
    dy = b.y_min - a.y_max;
  } else if (b.y_max < a.y_min) {
    dy = a.y_min - b.y_max;
  }
  return dx * dx + dy * dy;
}

std::string Box::ToString() const {
  if (IsEmpty()) return "[empty box]";
  return "[" + x_min.ToString() + ", " + x_max.ToString() + "] x [" +
         y_min.ToString() + ", " + y_max.ToString() + "]";
}

}  // namespace ccdb::geom
