#ifndef CCDB_GEOM_BOX_H_
#define CCDB_GEOM_BOX_H_

/// \file box.h
/// Axis-aligned rectangles with exact rational bounds.
///
/// Boxes are the common currency between the geometry substrate and the
/// index layer: constraint tuples and features are summarized by their
/// bounding boxes (§5 of the paper), which become R*-tree keys.

#include <string>

#include "geom/point.h"

namespace ccdb::geom {

/// A closed axis-aligned rectangle [x_min, x_max] × [y_min, y_max].
/// Degenerate boxes (points, segments) are allowed; an "empty" box is
/// represented by inverted bounds via `Box::Empty()`.
struct Box {
  Rational x_min;
  Rational x_max;
  Rational y_min;
  Rational y_max;

  /// A degenerate inverted box that behaves as the identity for ExpandedBy.
  static Box Empty();

  /// The box covering a single point.
  static Box FromPoint(const Point& p);

  /// The box with the given corners (any order).
  static Box FromCorners(const Point& a, const Point& b);

  /// True when bounds are inverted (no point is contained).
  bool IsEmpty() const { return x_min > x_max || y_min > y_max; }

  bool Contains(const Point& p) const;
  /// True if `other` lies entirely inside this box.
  bool ContainsBox(const Box& other) const;
  /// Closed-box intersection test (shared boundary counts).
  bool Intersects(const Box& other) const;

  /// The smallest box containing both (empty boxes act as identity).
  Box ExpandedBy(const Box& other) const;
  /// The intersection (possibly empty).
  Box IntersectedWith(const Box& other) const;
  /// This box grown by `margin` on every side.
  Box GrownBy(const Rational& margin) const;

  Rational Width() const { return x_max - x_min; }
  Rational Height() const { return y_max - y_min; }
  Rational Area() const;
  /// Half-perimeter (the R*-tree "margin" measure).
  Rational Margin() const { return Width() + Height(); }
  Point Center() const;

  /// Exact squared distance between two boxes (0 when intersecting).
  static Rational SquaredDistance(const Box& a, const Box& b);

  bool operator==(const Box& other) const {
    return x_min == other.x_min && x_max == other.x_max &&
           y_min == other.y_min && y_max == other.y_max;
  }
  bool operator!=(const Box& other) const { return !(*this == other); }

  std::string ToString() const;
};

}  // namespace ccdb::geom

#endif  // CCDB_GEOM_BOX_H_
